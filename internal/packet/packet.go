// Package packet provides the network substrate of the Iustitia
// evaluation: a packet model (5-tuple, transport, TCP flags, payload,
// virtual timestamps) and a synthetic gateway-trace generator matching the
// shape of the UMASS gigabit trace the paper replays — bimodal payload
// sizes (most packets under 140 bytes, a spike at the 1480-byte MTU
// payload), heavy-tailed per-flow inter-arrival times, a TCP/UDP mix, and a
// fraction of flows properly closed by FIN or RST. Flow payloads are drawn
// from the synthetic corpus, which is the same substitution the paper's
// authors made with their own file pool (see DESIGN.md §4).
package packet

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Transport is the flow's transport protocol.
type Transport uint8

// Supported transports.
const (
	TCP Transport = iota + 1
	UDP
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return fmt.Sprintf("transport(%d)", uint8(t))
	}
}

// Flags is a TCP flag bitmask (UDP packets carry none).
type Flags uint8

// TCP flags relevant to flow lifetime tracking.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagPSH
	FlagFIN
	FlagRST
)

// Has reports whether all flags in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// FiveTuple identifies a flow.
type FiveTuple struct {
	SrcIP     [4]byte
	DstIP     [4]byte
	SrcPort   uint16
	DstPort   uint16
	Transport Transport
}

// String implements fmt.Stringer.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d/%s",
		t.SrcIP[0], t.SrcIP[1], t.SrcIP[2], t.SrcIP[3], t.SrcPort,
		t.DstIP[0], t.DstIP[1], t.DstIP[2], t.DstIP[3], t.DstPort, t.Transport)
}

// Marshal writes the canonical 13-byte wire form of the tuple, used as the
// input of the flow-ID hash.
func (t FiveTuple) Marshal() [13]byte {
	var out [13]byte
	copy(out[0:4], t.SrcIP[:])
	copy(out[4:8], t.DstIP[:])
	binary.BigEndian.PutUint16(out[8:10], t.SrcPort)
	binary.BigEndian.PutUint16(out[10:12], t.DstPort)
	out[12] = byte(t.Transport)
	return out
}

// Packet is one captured packet with a virtual timestamp relative to the
// start of its trace.
type Packet struct {
	Tuple   FiveTuple
	Time    time.Duration
	Flags   Flags
	Payload []byte
}

// IsData reports whether the packet carries payload bytes.
func (p *Packet) IsData() bool { return len(p.Payload) > 0 }

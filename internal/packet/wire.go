package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Standalone per-packet wire encoding, used by the networked ingest path
// (internal/ingest) to frame single packets over a stream. Unlike the
// trace-file format, which indexes packets against a flow table, this
// encoding is self-contained: every packet carries its full 5-tuple.
//
//	13-byte tuple (FiveTuple.Marshal), flags byte,
//	uvarint capture time (ns), uvarint payload length, payload bytes

// MaxWirePayload caps a single packet's payload on the wire, matching the
// trace-file reader's per-packet bound.
const MaxWirePayload = 64 << 10

// ErrBadWire is returned when a wire-encoded packet is malformed.
var ErrBadWire = errors.New("packet: malformed wire packet")

// AppendWire appends the wire encoding of p to dst and returns the
// extended slice.
func AppendWire(dst []byte, p *Packet) ([]byte, error) {
	if p.Time < 0 {
		return dst, fmt.Errorf("%w: negative capture time %v", ErrBadWire, p.Time)
	}
	if len(p.Payload) > MaxWirePayload {
		return dst, fmt.Errorf("%w: payload %d exceeds %d", ErrBadWire, len(p.Payload), MaxWirePayload)
	}
	tuple := p.Tuple.Marshal()
	dst = append(dst, tuple[:]...)
	dst = append(dst, byte(p.Flags))
	dst = binary.AppendUvarint(dst, uint64(p.Time))
	dst = binary.AppendUvarint(dst, uint64(len(p.Payload)))
	return append(dst, p.Payload...), nil
}

// DecodeWire parses one wire-encoded packet. The buffer must hold exactly
// one packet: short, oversized, or trailing-garbage inputs return an error
// wrapping ErrBadWire. The payload is copied, so the caller may reuse data.
func DecodeWire(data []byte) (Packet, error) {
	const fixed = 13 + 1 // tuple + flags
	if len(data) < fixed {
		return Packet{}, fmt.Errorf("%w: %d bytes is shorter than a header", ErrBadWire, len(data))
	}
	var wire [13]byte
	copy(wire[:], data[:13])
	tuple, err := unmarshalTuple(wire)
	if err != nil {
		return Packet{}, fmt.Errorf("%w: %v", ErrBadWire, err)
	}
	flags := Flags(data[13])
	rest := data[fixed:]
	when, n := binary.Uvarint(rest)
	if n <= 0 {
		return Packet{}, fmt.Errorf("%w: bad capture time", ErrBadWire)
	}
	if when > uint64(1<<62) {
		return Packet{}, fmt.Errorf("%w: implausible capture time %d", ErrBadWire, when)
	}
	rest = rest[n:]
	payloadLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return Packet{}, fmt.Errorf("%w: bad payload length", ErrBadWire)
	}
	if payloadLen > MaxWirePayload {
		return Packet{}, fmt.Errorf("%w: payload %d exceeds %d", ErrBadWire, payloadLen, MaxWirePayload)
	}
	rest = rest[n:]
	if uint64(len(rest)) != payloadLen {
		return Packet{}, fmt.Errorf("%w: declared payload %d, %d bytes follow", ErrBadWire, payloadLen, len(rest))
	}
	var payload []byte
	if payloadLen > 0 {
		payload = append([]byte(nil), rest...)
	}
	return Packet{Tuple: tuple, Time: time.Duration(when), Flags: flags, Payload: payload}, nil
}

package packet

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"iustitia/internal/corpus"
)

func roundTrip(t *testing.T, trace *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	n, err := trace.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	restored, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

func TestTraceRoundTrip(t *testing.T) {
	cfg := smallConfig()
	trace, err := Generate(cfg, corpus.NewGenerator(41))
	if err != nil {
		t.Fatal(err)
	}
	restored := roundTrip(t, trace)

	if len(restored.Packets) != len(trace.Packets) {
		t.Fatalf("packets = %d, want %d", len(restored.Packets), len(trace.Packets))
	}
	for i := range trace.Packets {
		a, b := &trace.Packets[i], &restored.Packets[i]
		if a.Tuple != b.Tuple || a.Time != b.Time || a.Flags != b.Flags ||
			!bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("packet %d differs after round trip", i)
		}
	}
	if len(restored.Flows) != len(trace.Flows) {
		t.Fatalf("flows = %d, want %d", len(restored.Flows), len(trace.Flows))
	}
	for tuple, info := range trace.Flows {
		got, ok := restored.Flows[tuple]
		if !ok {
			t.Fatalf("flow %v lost", tuple)
		}
		if got.Class != info.Class || got.Bytes != info.Bytes ||
			got.Packets != info.Packets || got.HasHeader != info.HasHeader ||
			got.ClosedBy != info.ClosedBy || got.Start != info.Start {
			t.Fatalf("flow %v metadata differs: %+v vs %+v", tuple, got, info)
		}
	}
}

func TestTraceRoundTripEmptyPayloads(t *testing.T) {
	tuple := FiveTuple{SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8},
		SrcPort: 80, DstPort: 81, Transport: TCP}
	trace := &Trace{
		Packets: []Packet{
			{Tuple: tuple, Time: 0, Flags: FlagSYN},
			{Tuple: tuple, Time: time.Second, Flags: FlagFIN | FlagACK},
		},
		Flows: map[FiveTuple]*FlowInfo{
			tuple: {Tuple: tuple, Class: corpus.Text, ClosedBy: FlagFIN, Packets: 2},
		},
	}
	restored := roundTrip(t, trace)
	if restored.Packets[0].IsData() || restored.Packets[1].IsData() {
		t.Error("empty payloads gained data")
	}
	if !restored.Packets[1].Flags.Has(FlagFIN) {
		t.Error("FIN flag lost")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"short":       []byte("IU"),
		"bad magic":   []byte("NOPE\x01\x00"),
		"bad version": []byte("IUTR\x07\x00"),
		"truncated":   []byte("IUTR\x01\x05"),
	}
	for name, blob := range cases {
		if _, err := ReadTrace(bytes.NewReader(blob)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err = %v, want ErrBadTrace", name, err)
		}
	}
}

func TestReadTraceRejectsBadClassAndTransport(t *testing.T) {
	cfg := smallConfig()
	cfg.Flows = 3
	trace, err := Generate(cfg, corpus.NewGenerator(43))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Corrupt the first flow's transport byte (offset: magic 4 + version 1
	// + flowcount varint 1 + 12 bytes of IPs/ports).
	corrupted := append([]byte{}, blob...)
	corrupted[4+1+1+12] = 99
	if _, err := ReadTrace(bytes.NewReader(corrupted)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad transport: err = %v, want ErrBadTrace", err)
	}

	// Corrupt the first flow's class byte (right after the 13-byte tuple).
	corrupted = append([]byte{}, blob...)
	corrupted[4+1+1+13] = 250
	if _, err := ReadTrace(bytes.NewReader(corrupted)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad class: err = %v, want ErrBadTrace", err)
	}
}

func TestWriteToRejectsUnsortedPackets(t *testing.T) {
	tuple := FiveTuple{SrcIP: [4]byte{1, 1, 1, 1}, Transport: TCP}
	trace := &Trace{
		Packets: []Packet{
			{Tuple: tuple, Time: time.Second},
			{Tuple: tuple, Time: 0},
		},
		Flows: map[FiveTuple]*FlowInfo{tuple: {Tuple: tuple, Class: corpus.Text}},
	}
	if _, err := trace.WriteTo(io.Discard); err == nil {
		t.Error("unsorted packets: want error")
	}
}

func TestWriteToRejectsUnknownFlow(t *testing.T) {
	known := FiveTuple{SrcIP: [4]byte{1, 1, 1, 1}, Transport: TCP}
	unknown := FiveTuple{SrcIP: [4]byte{2, 2, 2, 2}, Transport: TCP}
	trace := &Trace{
		Packets: []Packet{{Tuple: unknown}},
		Flows:   map[FiveTuple]*FlowInfo{known: {Tuple: known, Class: corpus.Text}},
	}
	if _, err := trace.WriteTo(io.Discard); err == nil {
		t.Error("packet with unknown flow: want error")
	}
}

func TestTraceFileDeterministic(t *testing.T) {
	cfg := smallConfig()
	trace, err := Generate(cfg, corpus.NewGenerator(47))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := trace.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization is not deterministic")
	}
}

package packet

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"

	"iustitia/internal/corpus"
)

func wireTestPacket() Packet {
	return Packet{
		Tuple: FiveTuple{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
			SrcPort: 40000, DstPort: 443, Transport: TCP,
		},
		Time:    1234567 * time.Microsecond,
		Flags:   FlagACK | FlagPSH,
		Payload: []byte("sixteen payload!"),
	}
}

func TestWireRoundTrip(t *testing.T) {
	cases := []Packet{
		wireTestPacket(),
		{Tuple: wireTestPacket().Tuple, Time: 0, Flags: FlagFIN},                          // no payload
		{Tuple: FiveTuple{Transport: UDP}, Time: time.Hour, Payload: bytes.Repeat([]byte{7}, MaxWirePayload)}, // max payload
	}
	for i, want := range cases {
		wire, err := AppendWire(nil, &want)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := DecodeWire(wire)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Tuple != want.Tuple || got.Time != want.Time || got.Flags != want.Flags ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("case %d: round trip mismatch: got %+v want %+v", i, got, want)
		}
	}
}

func TestWireDecodeCopiesPayload(t *testing.T) {
	p := wireTestPacket()
	wire, err := AppendWire(nil, &p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		wire[i] = 0xFF
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("decoded payload aliases the input buffer")
	}
}

func TestWireEncodeRejects(t *testing.T) {
	bad := wireTestPacket()
	bad.Time = -1
	if _, err := AppendWire(nil, &bad); !errors.Is(err, ErrBadWire) {
		t.Errorf("negative time: err = %v, want ErrBadWire", err)
	}
	huge := wireTestPacket()
	huge.Payload = make([]byte, MaxWirePayload+1)
	if _, err := AppendWire(nil, &huge); !errors.Is(err, ErrBadWire) {
		t.Errorf("oversized payload: err = %v, want ErrBadWire", err)
	}
}

func TestWireDecodeRejectsMalformed(t *testing.T) {
	p := wireTestPacket()
	wire, err := AppendWire(nil, &p)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly.
	for n := 0; n < len(wire); n++ {
		if _, err := DecodeWire(wire[:n]); !errors.Is(err, ErrBadWire) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrBadWire", n, err)
		}
	}
	// Trailing garbage is rejected, not silently ignored.
	if _, err := DecodeWire(append(append([]byte(nil), wire...), 0)); !errors.Is(err, ErrBadWire) {
		t.Errorf("trailing byte: err = %v, want ErrBadWire", err)
	}
	// A bad transport in the tuple is rejected.
	broken := append([]byte(nil), wire...)
	broken[12] = 99
	if _, err := DecodeWire(broken); !errors.Is(err, ErrBadWire) {
		t.Errorf("bad transport: err = %v, want ErrBadWire", err)
	}
}

// TestReadTraceHostileCountAllocation: a tiny input declaring the maximum
// flow count must not allocate anywhere near the declared size before
// parsing fails.
func TestReadTraceHostileCountAllocation(t *testing.T) {
	hostile := hugeCountHeader()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := ReadTrace(bytes.NewReader(hostile)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("hostile header parsed: err = %v", err)
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 32<<20 {
		t.Errorf("hostile 1<<26-flow header allocated %d bytes; want bounded growth", grew)
	}
}

// TestReadTraceLargeDeclaredCountStillParses: traces beyond the prealloc
// hint still parse correctly — the hint bounds only the initial capacity.
func TestReadTraceLargeDeclaredCountStillParses(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Flows = 50
	cfg.Duration = 2 * time.Second
	cfg.MaxFlowBytes = 1 << 10
	trace, err := Generate(cfg, corpus.NewGenerator(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Flows) != len(trace.Flows) || len(restored.Packets) != len(trace.Packets) {
		t.Errorf("round trip lost data: %d/%d flows, %d/%d packets",
			len(restored.Flows), len(trace.Flows), len(restored.Packets), len(trace.Packets))
	}
}

package packet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"iustitia/internal/corpus"
)

// TraceConfig parameterizes synthetic trace generation. The zero value is
// not usable; use DefaultTraceConfig as a starting point.
type TraceConfig struct {
	// Flows is the number of data flows to synthesize.
	Flows int
	// Duration is the virtual capture length flows start within.
	Duration time.Duration
	// UDPFraction is the fraction of flows carried over UDP.
	UDPFraction float64
	// CleanCloseFraction is the fraction of TCP flows terminated with a
	// FIN packet; an equal-probability RSTFraction is terminated by RST.
	// The paper observes ~46% of flows removable via FIN/RST.
	CleanCloseFraction float64
	// RSTFraction is the fraction of TCP flows terminated by RST.
	RSTFraction float64
	// MinFlowBytes and MaxFlowBytes bound each flow's payload size.
	MinFlowBytes, MaxFlowBytes int
	// HTTPHeaderFraction of flows carry a synthetic HTTP response header
	// before their content, exercising the application-header path.
	HTTPHeaderFraction float64
	// MeanPacketGap is the median per-flow inter-packet gap; per-flow
	// gaps are drawn log-normally around it for a heavy-tailed mix.
	MeanPacketGap time.Duration
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultTraceConfig returns a laptop-scale trace shaped like the UMASS
// gateway trace of the paper's §4.5.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Flows:              2000,
		Duration:           80 * time.Second,
		UDPFraction:        0.2,
		CleanCloseFraction: 0.36,
		RSTFraction:        0.10,
		MinFlowBytes:       256,
		MaxFlowBytes:       16 << 10,
		HTTPHeaderFraction: 0.3,
		MeanPacketGap:      60 * time.Millisecond,
		Seed:               1,
	}
}

// FlowInfo is the ground truth recorded for one synthesized flow.
type FlowInfo struct {
	Tuple     FiveTuple
	Class     corpus.Class
	Bytes     int
	Packets   int
	HasHeader bool
	// ClosedBy is 0 when the flow just goes quiet, otherwise FlagFIN or
	// FlagRST.
	ClosedBy Flags
	Start    time.Duration
}

// Trace is a synthesized packet capture with ground-truth flow labels.
type Trace struct {
	Packets []Packet
	Flows   map[FiveTuple]*FlowInfo
}

// DataPackets counts packets carrying payload.
func (t *Trace) DataPackets() int {
	n := 0
	for i := range t.Packets {
		if t.Packets[i].IsData() {
			n++
		}
	}
	return n
}

// Generate synthesizes a trace. Flow payloads are drawn from gen, one
// corpus file per flow, class chosen uniformly.
func Generate(cfg TraceConfig, gen *corpus.Generator) (*Trace, error) {
	if cfg.Flows <= 0 {
		return nil, errors.New("packet: config needs at least one flow")
	}
	if cfg.MinFlowBytes <= 0 || cfg.MaxFlowBytes < cfg.MinFlowBytes {
		return nil, fmt.Errorf("packet: invalid flow size range [%d, %d]",
			cfg.MinFlowBytes, cfg.MaxFlowBytes)
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("packet: duration must be positive")
	}
	if cfg.MeanPacketGap <= 0 {
		return nil, errors.New("packet: mean packet gap must be positive")
	}
	if gen == nil {
		return nil, errors.New("packet: nil corpus generator")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	trace := &Trace{Flows: make(map[FiveTuple]*FlowInfo, cfg.Flows)}
	for i := 0; i < cfg.Flows; i++ {
		tuple := randomTuple(rng, cfg.UDPFraction)
		if _, dup := trace.Flows[tuple]; dup {
			i--
			continue
		}
		class := corpus.Class(rng.Intn(corpus.NumClasses))
		size := cfg.MinFlowBytes
		if cfg.MaxFlowBytes > cfg.MinFlowBytes {
			size += rng.Intn(cfg.MaxFlowBytes - cfg.MinFlowBytes + 1)
		}
		file, err := gen.File(class, size)
		if err != nil {
			return nil, err
		}
		payload := file.Data
		hasHeader := rng.Float64() < cfg.HTTPHeaderFraction
		if hasHeader {
			payload = append(httpHeader(rng, len(payload)), payload...)
		}

		info := &FlowInfo{
			Tuple:     tuple,
			Class:     class,
			Bytes:     len(payload),
			HasHeader: hasHeader,
			Start:     time.Duration(rng.Int63n(int64(cfg.Duration))),
		}
		if tuple.Transport == TCP {
			r := rng.Float64()
			switch {
			case r < cfg.CleanCloseFraction:
				info.ClosedBy = FlagFIN
			case r < cfg.CleanCloseFraction+cfg.RSTFraction:
				info.ClosedBy = FlagRST
			}
		}

		pkts := packetize(rng, tuple, payload, info.Start, cfg.MeanPacketGap)
		if info.ClosedBy != 0 && len(pkts) > 0 {
			last := pkts[len(pkts)-1]
			pkts = append(pkts, Packet{
				Tuple: tuple,
				Time:  last.Time + gap(rng, cfg.MeanPacketGap),
				Flags: info.ClosedBy | FlagACK,
			})
		}
		info.Packets = len(pkts)
		trace.Packets = append(trace.Packets, pkts...)
		trace.Flows[tuple] = info
	}

	sort.SliceStable(trace.Packets, func(i, j int) bool {
		return trace.Packets[i].Time < trace.Packets[j].Time
	})
	return trace, nil
}

// randomTuple draws a fresh 5-tuple.
func randomTuple(rng *rand.Rand, udpFraction float64) FiveTuple {
	transport := TCP
	if rng.Float64() < udpFraction {
		transport = UDP
	}
	var t FiveTuple
	t.SrcIP = [4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))}
	t.DstIP = [4]byte{192, 168, byte(rng.Intn(256)), byte(1 + rng.Intn(254))}
	t.SrcPort = uint16(1024 + rng.Intn(64511))
	t.DstPort = uint16(1 + rng.Intn(65535))
	t.Transport = transport
	return t
}

// mtuPayload is the dominant full-size payload in the trace's bimodal
// packet-size distribution (1480 bytes, per the paper's Figure 9(a)).
const mtuPayload = 1480

// samplePayloadSize draws one packet payload size from the bimodal
// distribution of Figure 9(a): ~20% of packets are full 1480-byte
// payloads, >50% are under 140 bytes, the rest spread between.
func samplePayloadSize(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.20:
		return mtuPayload
	case r < 0.75:
		return 1 + rng.Intn(139)
	default:
		return 140 + rng.Intn(mtuPayload-140)
	}
}

// packetize chops payload into data packets with bimodal sizes and
// heavy-tailed inter-arrival gaps starting at start.
func packetize(rng *rand.Rand, tuple FiveTuple, payload []byte, start time.Duration, meanGap time.Duration) []Packet {
	var pkts []Packet
	now := start
	for off := 0; off < len(payload); {
		size := samplePayloadSize(rng)
		if off+size > len(payload) {
			size = len(payload) - off
		}
		flags := Flags(0)
		if tuple.Transport == TCP {
			flags = FlagACK | FlagPSH
		}
		pkts = append(pkts, Packet{
			Tuple:   tuple,
			Time:    now,
			Flags:   flags,
			Payload: payload[off : off+size],
		})
		off += size
		now += gap(rng, meanGap)
	}
	return pkts
}

// gap draws one inter-packet gap: log-normal around the configured median,
// giving the heavy right tail of Figure 9(b).
func gap(rng *rand.Rand, median time.Duration) time.Duration {
	g := float64(median) * math.Exp(rng.NormFloat64()*1.0)
	if g < float64(time.Microsecond) {
		g = float64(time.Microsecond)
	}
	return time.Duration(g)
}

// httpHeader synthesizes a plausible HTTP response header for a payload of
// the given length.
func httpHeader(rng *rand.Rand, contentLength int) []byte {
	types := []string{"application/octet-stream", "image/jpeg", "text/html", "application/zip"}
	return []byte(fmt.Sprintf(
		"HTTP/1.1 200 OK\r\nServer: httpd/%d.%d\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: keep-alive\r\n\r\n",
		1+rng.Intn(2), rng.Intn(10), types[rng.Intn(len(types))], contentLength))
}

package packet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"iustitia/internal/corpus"
)

// Trace file format (version 1): a compact binary capture that round-trips
// the synthetic trace including ground truth, so experiment runs can share
// one recorded workload.
//
//	magic "IUTR", version byte
//	uvarint flowCount
//	  per flow: 13-byte tuple, class byte, flags byte (hasHeader|closedBy),
//	            uvarint bytes, uvarint packets, uvarint start (ns)
//	uvarint packetCount
//	  per packet: uvarint flow index, uvarint time delta (ns), flags byte,
//	              uvarint payload length, payload bytes

var (
	traceMagic = []byte("IUTR")
	// ErrBadTrace is returned when a trace file is malformed.
	ErrBadTrace = errors.New("packet: malformed trace file")
)

const traceVersion = 1

// flow-info flag bits in the serialized form.
const (
	infoHasHeader = 1 << 0
	infoClosedFIN = 1 << 1
	infoClosedRST = 1 << 2
)

// WriteTo serializes the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}

	if err := count(bw.Write(traceMagic)); err != nil {
		return written, err
	}
	if err := count(bw.Write([]byte{traceVersion})); err != nil {
		return written, err
	}

	// Deterministic flow order: sort by marshaled tuple.
	tuples := make([]FiveTuple, 0, len(t.Flows))
	for tuple := range t.Flows {
		tuples = append(tuples, tuple)
	}
	sort.Slice(tuples, func(i, j int) bool {
		a, b := tuples[i].Marshal(), tuples[j].Marshal()
		return bytes.Compare(a[:], b[:]) < 0
	})
	index := make(map[FiveTuple]uint64, len(tuples))

	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		return count(bw.Write(scratch[:n]))
	}

	if err := putUvarint(uint64(len(tuples))); err != nil {
		return written, err
	}
	for i, tuple := range tuples {
		index[tuple] = uint64(i)
		info := t.Flows[tuple]
		wire := tuple.Marshal()
		if err := count(bw.Write(wire[:])); err != nil {
			return written, err
		}
		var flags byte
		if info.HasHeader {
			flags |= infoHasHeader
		}
		if info.ClosedBy.Has(FlagFIN) {
			flags |= infoClosedFIN
		}
		if info.ClosedBy.Has(FlagRST) {
			flags |= infoClosedRST
		}
		if err := count(bw.Write([]byte{byte(info.Class), flags})); err != nil {
			return written, err
		}
		if err := putUvarint(uint64(info.Bytes)); err != nil {
			return written, err
		}
		if err := putUvarint(uint64(info.Packets)); err != nil {
			return written, err
		}
		if err := putUvarint(uint64(info.Start)); err != nil {
			return written, err
		}
	}

	if err := putUvarint(uint64(len(t.Packets))); err != nil {
		return written, err
	}
	var prev time.Duration
	for i := range t.Packets {
		p := &t.Packets[i]
		idx, ok := index[p.Tuple]
		if !ok {
			return written, fmt.Errorf("packet: packet %d references unknown flow %v", i, p.Tuple)
		}
		if err := putUvarint(idx); err != nil {
			return written, err
		}
		if p.Time < prev {
			return written, fmt.Errorf("packet: packets not time-ordered at index %d", i)
		}
		if err := putUvarint(uint64(p.Time - prev)); err != nil {
			return written, err
		}
		prev = p.Time
		if err := count(bw.Write([]byte{byte(p.Flags)})); err != nil {
			return written, err
		}
		if err := putUvarint(uint64(len(p.Payload))); err != nil {
			return written, err
		}
		if err := count(bw.Write(p.Payload)); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	header := make([]byte, len(traceMagic)+1)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if !bytes.Equal(header[:len(traceMagic)], traceMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if header[len(traceMagic)] != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, header[len(traceMagic)])
	}

	flowCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: flow count: %v", ErrBadTrace, err)
	}
	const maxFlows = 1 << 26
	if flowCount > maxFlows {
		return nil, fmt.Errorf("%w: implausible flow count %d", ErrBadTrace, flowCount)
	}

	// The counts above are attacker-supplied: a 20-byte input declaring
	// 1<<26 flows must not pre-allocate ~1 GiB before the first read
	// fails. Seed the containers with a bounded hint and let them grow
	// only as real records actually parse.
	trace := &Trace{Flows: make(map[FiveTuple]*FlowInfo, preallocHint(flowCount))}
	tuples := make([]FiveTuple, 0, preallocHint(flowCount))
	for i := uint64(0); i < flowCount; i++ {
		var wire [13]byte
		if _, err := io.ReadFull(br, wire[:]); err != nil {
			return nil, fmt.Errorf("%w: flow %d tuple: %v", ErrBadTrace, i, err)
		}
		tuple, err := unmarshalTuple(wire)
		if err != nil {
			return nil, fmt.Errorf("%w: flow %d: %v", ErrBadTrace, i, err)
		}
		meta := make([]byte, 2)
		if _, err := io.ReadFull(br, meta); err != nil {
			return nil, fmt.Errorf("%w: flow %d meta: %v", ErrBadTrace, i, err)
		}
		info := &FlowInfo{Tuple: tuple, Class: corpus.Class(meta[0])}
		if info.Class < corpus.Text || info.Class > corpus.Encrypted {
			return nil, fmt.Errorf("%w: flow %d class %d", ErrBadTrace, i, meta[0])
		}
		info.HasHeader = meta[1]&infoHasHeader != 0
		if meta[1]&infoClosedFIN != 0 {
			info.ClosedBy |= FlagFIN
		}
		if meta[1]&infoClosedRST != 0 {
			info.ClosedBy |= FlagRST
		}
		for _, dst := range []*int{&info.Bytes, &info.Packets} {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: flow %d size: %v", ErrBadTrace, i, err)
			}
			*dst = int(v)
		}
		start, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: flow %d start: %v", ErrBadTrace, i, err)
		}
		info.Start = time.Duration(start)
		tuples = append(tuples, tuple)
		trace.Flows[tuple] = info
	}

	packetCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: packet count: %v", ErrBadTrace, err)
	}
	const maxPackets = 1 << 30
	if packetCount > maxPackets {
		return nil, fmt.Errorf("%w: implausible packet count %d", ErrBadTrace, packetCount)
	}
	trace.Packets = make([]Packet, 0, preallocHint(packetCount))
	var now time.Duration
	for i := uint64(0); i < packetCount; i++ {
		idx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d flow: %v", ErrBadTrace, i, err)
		}
		if idx >= uint64(len(tuples)) {
			return nil, fmt.Errorf("%w: packet %d flow index %d out of range", ErrBadTrace, i, idx)
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d time: %v", ErrBadTrace, i, err)
		}
		now += time.Duration(delta)
		flagByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d flags: %v", ErrBadTrace, i, err)
		}
		payloadLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: packet %d payload length: %v", ErrBadTrace, i, err)
		}
		const maxPayload = 64 << 10
		if payloadLen > maxPayload {
			return nil, fmt.Errorf("%w: packet %d payload %d exceeds %d", ErrBadTrace, i, payloadLen, maxPayload)
		}
		var payload []byte
		if payloadLen > 0 {
			payload = make([]byte, payloadLen)
			if _, err := io.ReadFull(br, payload); err != nil {
				return nil, fmt.Errorf("%w: packet %d payload: %v", ErrBadTrace, i, err)
			}
		}
		trace.Packets = append(trace.Packets, Packet{
			Tuple:   tuples[idx],
			Time:    now,
			Flags:   Flags(flagByte),
			Payload: payload,
		})
	}
	return trace, nil
}

// maxPrealloc bounds how many elements a declared-but-unverified count may
// pre-allocate: larger collections grow incrementally as records parse.
const maxPrealloc = 64 << 10

// preallocHint clamps an attacker-supplied element count to a safe
// initial-capacity hint.
func preallocHint(declared uint64) int {
	if declared > maxPrealloc {
		return maxPrealloc
	}
	return int(declared)
}

// unmarshalTuple reverses FiveTuple.Marshal.
func unmarshalTuple(wire [13]byte) (FiveTuple, error) {
	var t FiveTuple
	copy(t.SrcIP[:], wire[0:4])
	copy(t.DstIP[:], wire[4:8])
	t.SrcPort = binary.BigEndian.Uint16(wire[8:10])
	t.DstPort = binary.BigEndian.Uint16(wire[10:12])
	t.Transport = Transport(wire[12])
	if t.Transport != TCP && t.Transport != UDP {
		return t, fmt.Errorf("unknown transport %d", wire[12])
	}
	return t, nil
}

package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"iustitia/internal/corpus"
)

// FuzzReadTrace checks the trace-file parser never panics or over-allocates
// on corrupted input, and that valid prefixes either parse or fail cleanly.
func FuzzReadTrace(f *testing.F) {
	cfg := DefaultTraceConfig()
	cfg.Flows = 5
	cfg.Duration = 2 * time.Second
	cfg.MaxFlowBytes = 1 << 10
	trace, err := Generate(cfg, corpus.NewGenerator(61))
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := trace.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("IUTR\x01"))
	f.Add([]byte{})
	truncated := valid.Bytes()[:valid.Len()/2]
	f.Add(truncated)
	// A hostile header: the flow count claims the 1<<26 maximum but the
	// input ends right after it. The parser must fail cleanly without
	// pre-allocating for the declared count.
	f.Add(hugeCountHeader())

	f.Fuzz(func(t *testing.T, blob []byte) {
		restored, err := ReadTrace(bytes.NewReader(blob))
		if err != nil {
			return // malformed input must fail cleanly, which it did
		}
		// Anything that parses must be internally consistent enough to
		// re-serialize.
		var out bytes.Buffer
		if _, err := restored.WriteTo(&out); err != nil {
			t.Fatalf("parsed trace failed to re-serialize: %v", err)
		}
	})
}

// hugeCountHeader builds a syntactically valid trace header whose flow
// count claims the maximum the parser accepts, followed by nothing.
func hugeCountHeader() []byte {
	blob := []byte("IUTR\x01")
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], 1<<26)
	return append(blob, tmp[:n]...)
}

package packet

import (
	"math/rand"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/stats"
)

func TestTransportString(t *testing.T) {
	if TCP.String() != "tcp" || UDP.String() != "udp" {
		t.Error("transport names wrong")
	}
	if Transport(9).String() != "transport(9)" {
		t.Errorf("unknown transport = %q", Transport(9).String())
	}
}

func TestFlagsHas(t *testing.T) {
	f := FlagFIN | FlagACK
	if !f.Has(FlagFIN) || !f.Has(FlagACK) || !f.Has(FlagFIN|FlagACK) {
		t.Error("Has should match set flags")
	}
	if f.Has(FlagRST) {
		t.Error("Has matched an unset flag")
	}
}

func TestFiveTupleMarshalDistinct(t *testing.T) {
	a := FiveTuple{SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8},
		SrcPort: 1000, DstPort: 80, Transport: TCP}
	b := a
	b.SrcPort = 1001
	if a.Marshal() == b.Marshal() {
		t.Error("distinct tuples marshal identically")
	}
	if a.Marshal() != a.Marshal() {
		t.Error("marshal is not deterministic")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func smallConfig() TraceConfig {
	cfg := DefaultTraceConfig()
	cfg.Flows = 100
	cfg.Duration = 10 * time.Second
	cfg.MaxFlowBytes = 4096
	return cfg
}

func TestGenerateValidation(t *testing.T) {
	gen := corpus.NewGenerator(1)
	bad := smallConfig()
	bad.Flows = 0
	if _, err := Generate(bad, gen); err == nil {
		t.Error("flows=0: want error")
	}
	bad = smallConfig()
	bad.MinFlowBytes = 0
	if _, err := Generate(bad, gen); err == nil {
		t.Error("min=0: want error")
	}
	bad = smallConfig()
	bad.Duration = 0
	if _, err := Generate(bad, gen); err == nil {
		t.Error("duration=0: want error")
	}
	bad = smallConfig()
	bad.MeanPacketGap = 0
	if _, err := Generate(bad, gen); err == nil {
		t.Error("gap=0: want error")
	}
	if _, err := Generate(smallConfig(), nil); err == nil {
		t.Error("nil generator: want error")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	trace, err := Generate(cfg, corpus.NewGenerator(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Flows) != cfg.Flows {
		t.Fatalf("flows = %d, want %d", len(trace.Flows), cfg.Flows)
	}
	// Packets are time-sorted.
	for i := 1; i < len(trace.Packets); i++ {
		if trace.Packets[i].Time < trace.Packets[i-1].Time {
			t.Fatal("packets not sorted by time")
		}
	}
	// Per-flow payload bytes must reassemble to the recorded flow size.
	seen := make(map[FiveTuple]int)
	for i := range trace.Packets {
		seen[trace.Packets[i].Tuple] += len(trace.Packets[i].Payload)
	}
	for tuple, info := range trace.Flows {
		if seen[tuple] != info.Bytes {
			t.Errorf("flow %v reassembles to %d bytes, want %d", tuple, seen[tuple], info.Bytes)
		}
	}
	if trace.DataPackets() == 0 {
		t.Error("no data packets")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := smallConfig()
	t1, err := Generate(cfg, corpus.NewGenerator(3))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(cfg, corpus.NewGenerator(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Packets) != len(t2.Packets) {
		t.Fatalf("packet counts differ: %d vs %d", len(t1.Packets), len(t2.Packets))
	}
	for i := range t1.Packets {
		if t1.Packets[i].Time != t2.Packets[i].Time ||
			t1.Packets[i].Tuple != t2.Packets[i].Tuple {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
}

func TestGenerateTermination(t *testing.T) {
	cfg := smallConfig()
	cfg.Flows = 300
	trace, err := Generate(cfg, corpus.NewGenerator(4))
	if err != nil {
		t.Fatal(err)
	}
	var fin, rst, open, udp int
	for _, info := range trace.Flows {
		switch {
		case info.ClosedBy.Has(FlagFIN):
			fin++
		case info.ClosedBy.Has(FlagRST):
			rst++
		default:
			open++
		}
		if info.Tuple.Transport == UDP {
			udp++
			if info.ClosedBy != 0 {
				t.Error("UDP flow has a TCP close flag")
			}
		}
	}
	if fin == 0 || rst == 0 || open == 0 {
		t.Errorf("termination mix degenerate: fin=%d rst=%d open=%d", fin, rst, open)
	}
	if udp == 0 {
		t.Error("no UDP flows generated")
	}
	// Closed flows carry a trailing empty FIN/RST packet.
	lastByFlow := make(map[FiveTuple]Packet)
	for _, p := range trace.Packets {
		lastByFlow[p.Tuple] = p
	}
	for tuple, info := range trace.Flows {
		last := lastByFlow[tuple]
		if info.ClosedBy != 0 {
			if !last.Flags.Has(info.ClosedBy) || last.IsData() {
				t.Errorf("flow %v: last packet flags=%v len=%d, want empty close packet",
					tuple, last.Flags, len(last.Payload))
			}
		}
	}
}

func TestPayloadSizeBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sizes []float64
	mtu := 0
	for i := 0; i < 20000; i++ {
		s := samplePayloadSize(rng)
		if s <= 0 || s > mtuPayload {
			t.Fatalf("payload size %d out of range", s)
		}
		if s == mtuPayload {
			mtu++
		}
		sizes = append(sizes, float64(s))
	}
	cdf, err := stats.NewCDF(sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9(a): >50% of packets under 140 bytes, ~20% at full payload.
	if got := cdf.At(140); got < 0.5 {
		t.Errorf("P(size <= 140) = %v, want > 0.5", got)
	}
	if frac := float64(mtu) / 20000; frac < 0.15 || frac > 0.25 {
		t.Errorf("MTU fraction = %v, want ~0.20", frac)
	}
}

func TestGapHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var gaps []float64
	for i := 0; i < 5000; i++ {
		g := gap(rng, 50*time.Millisecond)
		if g <= 0 {
			t.Fatal("non-positive gap")
		}
		gaps = append(gaps, g.Seconds())
	}
	summary, err := stats.Summarize(gaps)
	if err != nil {
		t.Fatal(err)
	}
	// Log-normal: mean well above median.
	if summary.Mean <= summary.Median {
		t.Errorf("gap distribution not heavy-tailed: mean=%v median=%v",
			summary.Mean, summary.Median)
	}
}

func TestHTTPHeaderFlows(t *testing.T) {
	cfg := smallConfig()
	cfg.HTTPHeaderFraction = 1
	trace, err := Generate(cfg, corpus.NewGenerator(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range trace.Flows {
		if !info.HasHeader {
			t.Fatal("HTTPHeaderFraction=1 but flow lacks header")
		}
	}
	// The first data packet of some flow should start with an HTTP header.
	found := false
	for _, p := range trace.Packets {
		if p.IsData() && len(p.Payload) >= 8 && string(p.Payload[:8]) == "HTTP/1.1" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no flow starts with an HTTP header")
	}
}

package ingest

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// OverflowPolicy selects what a connection reader does when its queue
// budget is exhausted — the transport-level twin of flow.EvictPolicy.
type OverflowPolicy int

const (
	// OverflowBlock stalls the reader until queue space frees up. The
	// stall propagates to the client through TCP flow control, so a slow
	// engine slows senders instead of dropping their packets.
	OverflowBlock OverflowPolicy = iota
	// OverflowShed drops the packet with a synthetic fallback verdict
	// (the analogue of flow.EvictShed): the packet is accounted to the
	// server's FallbackClass queue, counted in Shed, and the connection
	// keeps going.
	OverflowShed
	// OverflowDisconnect sheds the packet and closes the connection: a
	// client outrunning the engine is cut off rather than throttled.
	OverflowDisconnect
)

// String names the policy for flags and logs.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowBlock:
		return "block"
	case OverflowShed:
		return "shed"
	case OverflowDisconnect:
		return "disconnect"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParseOverflowPolicy maps a flag value to its policy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return OverflowBlock, nil
	case "shed":
		return OverflowShed, nil
	case "disconnect":
		return OverflowDisconnect, nil
	default:
		return 0, fmt.Errorf("ingest: unknown overflow policy %q (want block|shed|disconnect)", s)
	}
}

// Config assembles an ingest server.
type Config struct {
	// Engine receives every admitted packet. Required.
	Engine *flow.ParallelEngine
	// Listeners accept framed-packet connections (TCP, unix socket, or
	// anything else implementing net.Listener). At least one is required.
	Listeners []net.Listener
	// StatusListener, when non-nil, serves a plain-text health/stats dump
	// to every connection it accepts (one dump per connection, then
	// close) — curl-able operational visibility.
	StatusListener net.Listener
	// Workers is how many supervised goroutines drain the queues into the
	// engine. Packets are routed to workers by flow ID, so all packets of
	// one flow are processed in arrival order. Zero defaults to 2.
	Workers int
	// Batch bounds how many queued packets a worker submits to the engine
	// in one ProcessBatch call. Workers take whatever is already queued
	// without waiting, so a lightly loaded server keeps per-packet
	// latency while a saturated one amortizes routing over the batch.
	// 1 selects the legacy per-packet path; zero defaults to
	// DefaultBatch.
	Batch int
	// QueueDepth bounds the total packets queued between readers and
	// workers (split evenly across workers). Zero defaults to 1024.
	QueueDepth int
	// PerConnQueue bounds how many queued packets one connection may hold
	// unprocessed, so a single firehose client cannot monopolize the
	// global queue. Zero defaults to 256.
	PerConnQueue int
	// Overflow selects the backpressure behaviour when a bound is hit.
	Overflow OverflowPolicy
	// FallbackClass is the queue shed packets are accounted to.
	FallbackClass corpus.Class
	// StreamMode names the engine's sketch backend when it runs in
	// constant-memory stream mode (e.g. "lall", "cc"); empty for a
	// buffered engine. Informational: surfaced in the status dump and the
	// STATUS line's stream= key.
	StreamMode string
	// IdleTimeout bounds how long a connection may sit between frames
	// before it is closed. Zero disables it.
	IdleTimeout time.Duration
	// ReadTimeout bounds the gap between consecutive reads inside one
	// frame, so a client stalling mid-frame cannot pin a connection
	// forever. Zero disables it.
	ReadTimeout time.Duration
	// MaxFrame bounds the payload length a frame header may declare
	// (<= 0 selects DefaultMaxFrame).
	MaxFrame int
	// Supervision tunes worker restart backoff and the crash-loop
	// breaker.
	Supervision SupervisorConfig
	// PreProcess, when non-nil, runs on every packet before it reaches
	// the engine. It is the fault-injection surface for supervision
	// tests: a panic here crashes the worker and exercises the
	// supervisor, exactly like a panic in engine code would.
	PreProcess func(*packet.Packet)
	// OnFinalCheckpoint, when non-nil, receives the engine's parallel
	// checkpoint at the end of a drain, after all pending flows are
	// flushed. Hand it to persist.SaveFile under
	// persist.KindParallelCheckpoint.
	OnFinalCheckpoint func(snapshot []byte)
	// NodeCheckpoint, when non-nil, receives quiesced node checkpoints (the
	// persist.KindNodeCheckpoint payload: delivery-sequence watermark,
	// engine checkpoint, and pending flows — see EncodeNodeCheckpoint). The
	// server pauses frame intake, drains admitted packets through the
	// engine, captures the payload atomically, then calls the hook outside
	// the pause. A nil return advances the durable ack watermark the STATUS
	// line reports as acked_seq, which tells a cluster router it may trim
	// its replay journal up to that sequence.
	NodeCheckpoint func(payload []byte) error
	// NodeCheckpointEvery is the interval between periodic node
	// checkpoints. Zero with NodeCheckpoint set means checkpoints happen
	// only on demand (CheckpointNow) and at the end of a drain.
	NodeCheckpointEvery time.Duration
	// QuiesceTimeout bounds how long a checkpoint or flow export may wait
	// for in-flight packets to drain before giving up. Zero defaults to 5s.
	QuiesceTimeout time.Duration
	// ResumeSeq primes the delivery-sequence dedup watermark from a
	// restored node checkpoint: replayed frames at or below it are
	// duplicates whose effects the restored state already contains.
	ResumeSeq uint64
	// NodeName identifies this instance on the machine-readable STATUS
	// line a cluster router consumes. Empty defaults to "node"; the name
	// must not contain whitespace or '=' (it must survive k=v parsing).
	NodeName string
	// CheckpointTime, when non-nil, reports when the last checkpoint was
	// written (the zero time means never); the STATUS line carries its
	// age so a router can spot a node whose durability has stalled.
	CheckpointTime func() time.Time
	// AdminHandler, when non-nil, receives status-listener commands the
	// server itself does not recognize — the hook the ops admin protocol
	// (internal/ops) dispatches through. It gets the upper-cased verb, its
	// arguments, the connection's buffered reader (for verbs that carry a
	// body, e.g. a model blob), and the connection for replies; it reports
	// whether it handled the verb. The handler runs on the status
	// connection's goroutine with the standard status deadlines already
	// armed; verbs that need more time must extend them on c.
	AdminHandler func(verb string, args []string, body *bufio.Reader, c net.Conn) bool
}

// Stats is a point-in-time summary of ingest activity. The frame counters
// obey the transport conservation law asserted by the chaos soak test:
// Received == Admitted + Quarantined + Shed.
type Stats struct {
	// State is the current lifecycle state.
	State State
	// ActiveConns and TotalConns count data connections.
	ActiveConns, TotalConns int
	// TimedOut counts connections closed by read/idle deadline expiry.
	TimedOut int
	// Disconnected counts connections closed by OverflowDisconnect.
	Disconnected int
	// Received counts frame events: every valid frame plus every
	// quarantine event.
	Received int
	// Admitted counts packets handed to the worker queues (and therefore
	// to the engine, panics aside).
	Admitted int
	// Quarantined counts malformed-frame events survived by resync.
	Quarantined int
	// Shed counts packets dropped by backpressure, each accounted to the
	// fallback queue.
	Shed int
	// Deduped counts duplicate sequenced frames (delivery sequence at or
	// below the watermark) discarded before the engine. Each one is also
	// counted in Received and Shed, so the conservation law holds.
	Deduped int
	// SeenSeq is the highest delivery sequence observed on any frame;
	// AckedSeq is the watermark covered by the last successful node
	// checkpoint (equal to SeenSeq when no NodeCheckpoint hook is set —
	// with nothing to persist, observation is as durable as it gets).
	SeenSeq, AckedSeq uint64
	// EngineErrors counts engine.Process errors (strict-mode
	// classification failures surfaced through the packet path).
	EngineErrors int
	// Supervisor summarizes worker supervision.
	Supervisor SupervisorStats
}

// DefaultBatch is the per-worker engine submission batch bound when
// Config.Batch is zero.
const DefaultBatch = 64

// item is one queued packet plus the credit it holds on its connection.
type item struct {
	pkt     packet.Packet
	credits chan struct{}
}

// batchState is the in-progress batch of one worker slot. It lives on the
// Server rather than the worker's stack so a supervisor restart resumes
// the batch mid-way: only the packet that crashed the worker is lost,
// exactly as on the per-packet path.
type batchState struct {
	items []item
	// pkts holds the packets that already passed PreProcess and await
	// engine submission.
	pkts []*packet.Packet
	// next indexes the first item not yet claimed for pre-processing.
	next int
}

// Server is the framed packet-ingest server.
type Server struct {
	cfg     Config
	health  healthFSM
	sup     *supervisor
	queues  []chan item
	batches []*batchState
	maxSeen atomic.Int64 // highest packet virtual time, for FlushAll

	// Live-reconfigurable knobs (see reconfig.go). The atomics shadow
	// cfg.Overflow and cfg.Batch so SET/SIGHUP can retune them while
	// readers and workers run; everything else in cfg stays immutable
	// after NewServer.
	overflow atomic.Int32
	batchN   atomic.Int32

	startTime time.Time // set once in Start, guarded by mu

	// force is closed when a drain deadline expires: blocked enqueues
	// abort and restart timers fire early.
	force     chan struct{}
	forceOnce sync.Once
	// done is closed when the first Shutdown finishes; later callers wait
	// on it and share the first call's error.
	done chan struct{}

	// gate pauses frame intake for a quiesced checkpoint or flow export:
	// readers hold it shared across the count-dedup-enqueue window of one
	// frame (never across the blocking frame read), a checkpoint holds it
	// exclusively while it drains the queues and captures state. processed
	// counts packets that have fully left the worker queues, so
	// processed == admitted under the write lock means the engine has seen
	// everything that was ever enqueued.
	gate      sync.RWMutex
	processed atomic.Int64

	// ckptStop ends the periodic checkpoint loop at the start of a drain.
	ckptStop chan struct{}
	ckptWG   sync.WaitGroup

	readerWG sync.WaitGroup // connection readers
	acceptWG sync.WaitGroup // accept loops
	workerWG sync.WaitGroup // worker slots (spans restarts)
	statusWG sync.WaitGroup

	mu           sync.Mutex
	conns        map[net.Conn]struct{}
	totalConns   int
	timedOut     int
	disconnected int
	received     int
	admitted     int
	quarantined  int
	shed         int
	deduped      int
	seenSeq      uint64
	ackedSeq     uint64
	engineErrors int
	shutdownErr  error
	started      bool
	shutdown     bool
}

// NewServer validates cfg and builds a server. Call Start to begin
// accepting.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("ingest: engine is required")
	}
	if len(cfg.Listeners) == 0 {
		return nil, errors.New("ingest: at least one listener is required")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("ingest: negative worker count %d", cfg.Workers)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("ingest: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.PerConnQueue == 0 {
		cfg.PerConnQueue = 256
	}
	if cfg.PerConnQueue < 0 {
		return nil, fmt.Errorf("ingest: negative per-connection queue %d", cfg.PerConnQueue)
	}
	if cfg.Overflow < OverflowBlock || cfg.Overflow > OverflowDisconnect {
		return nil, fmt.Errorf("ingest: unknown overflow policy %d", int(cfg.Overflow))
	}
	if cfg.FallbackClass < 0 || cfg.FallbackClass >= corpus.NumClasses {
		return nil, fmt.Errorf("ingest: fallback class %d out of range", int(cfg.FallbackClass))
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.Batch == 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("ingest: negative batch size %d", cfg.Batch)
	}
	if cfg.NodeName == "" {
		cfg.NodeName = "node"
	}
	if strings.ContainsAny(cfg.NodeName, " \t\n=") {
		return nil, fmt.Errorf("ingest: node name %q contains whitespace or '='", cfg.NodeName)
	}
	if cfg.QuiesceTimeout == 0 {
		cfg.QuiesceTimeout = 5 * time.Second
	}
	if cfg.QuiesceTimeout < 0 {
		return nil, fmt.Errorf("ingest: negative quiesce timeout %s", cfg.QuiesceTimeout)
	}
	s := &Server{
		cfg:      cfg,
		queues:   make([]chan item, cfg.Workers),
		batches:  make([]*batchState, cfg.Workers),
		force:    make(chan struct{}),
		done:     make(chan struct{}),
		ckptStop: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
		seenSeq:  cfg.ResumeSeq,
		ackedSeq: cfg.ResumeSeq,
	}
	s.overflow.Store(int32(cfg.Overflow))
	s.batchN.Store(int32(cfg.Batch))
	for i := range s.batches {
		s.batches[i] = &batchState{
			items: make([]item, 0, cfg.Batch),
			pkts:  make([]*packet.Packet, 0, cfg.Batch),
		}
	}
	per := cfg.QueueDepth / cfg.Workers
	if per < 1 {
		per = 1
	}
	for i := range s.queues {
		s.queues[i] = make(chan item, per)
	}
	s.sup = newSupervisor(cfg.Supervision, cfg.Workers,
		func() { s.health.to(StateDegraded) },
		func() { s.health.to(StateHealthy) })
	return s, nil
}

// State returns the server's lifecycle state.
func (s *Server) State() State { return s.health.state() }

// Start spawns the accept loops, the supervised workers, and the status
// listener, then marks the server healthy. It does not block.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("ingest: server already started")
	}
	s.started = true
	s.startTime = time.Now()
	s.mu.Unlock()

	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.workerRun(i)
	}
	for _, l := range s.cfg.Listeners {
		s.acceptWG.Add(1)
		go s.acceptLoop(l)
	}
	if s.cfg.StatusListener != nil {
		s.statusWG.Add(1)
		go s.statusLoop(s.cfg.StatusListener)
	}
	if s.cfg.NodeCheckpoint != nil && s.cfg.NodeCheckpointEvery > 0 {
		s.ckptWG.Add(1)
		go s.checkpointLoop()
	}
	s.health.to(StateHealthy)
	return nil
}

// acceptLoop accepts data connections until its listener is closed.
func (s *Server) acceptLoop(l net.Listener) {
	defer s.acceptWG.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed (drain) or fatal
		}
		s.mu.Lock()
		draining := s.shutdown
		if !draining {
			s.conns[c] = struct{}{}
			s.totalConns++
		}
		s.mu.Unlock()
		if draining {
			c.Close()
			continue
		}
		s.readerWG.Add(1)
		go s.serveConn(c)
	}
}

// deadlineConn applies the per-connection deadlines: the first read of
// every frame gets the idle deadline (time allowed between frames), each
// subsequent read the read deadline (progress required mid-frame).
type deadlineConn struct {
	net.Conn
	idle, read time.Duration
	atBoundary bool
}

func (d *deadlineConn) Read(p []byte) (int, error) {
	timeout := d.read
	if d.atBoundary {
		timeout = d.idle
		d.atBoundary = false
	}
	if timeout > 0 {
		if err := d.Conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
	}
	return d.Conn.Read(p)
}

// serveConn reads frames off one connection until EOF, error, deadline
// expiry, or a disconnect-policy trigger.
func (s *Server) serveConn(c net.Conn) {
	defer s.readerWG.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	credits := make(chan struct{}, s.cfg.PerConnQueue)
	dc := &deadlineConn{Conn: c, idle: s.cfg.IdleTimeout, read: s.cfg.ReadTimeout}
	fr := NewFrameReader(dc, s.cfg.MaxFrame, func() {
		s.mu.Lock()
		s.received++
		s.quarantined++
		s.mu.Unlock()
	})
	for {
		dc.atBoundary = true
		pkt, err := fr.Next()
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				s.mu.Lock()
				s.timedOut++
				s.mu.Unlock()
			}
			return
		}
		// The shared gate covers the count-dedup-enqueue window of this one
		// frame (not the blocking read above), so a quiesced checkpoint sees
		// every received packet either fully enqueued or not at all.
		seq := fr.LastSeq()
		s.gate.RLock()
		s.mu.Lock()
		s.received++
		dup := seq != 0 && seq <= s.seenSeq
		if dup {
			// A replayed frame whose effects are already in the node's state:
			// discard before the engine, accounted as shed so the transport
			// law (Received == Admitted + Quarantined + Shed) stays exact.
			s.shed++
			s.deduped++
		} else if seq != 0 {
			s.seenSeq = seq
		}
		s.mu.Unlock()
		ok := true
		if !dup {
			ok = s.enqueue(pkt, credits)
		}
		s.gate.RUnlock()
		if !ok {
			return
		}
	}
}

// workerFor routes a packet to its worker by flow ID — the same
// full-word reduction ParallelEngine uses for shards — so one flow's
// packets are always processed by one worker, in order.
func (s *Server) workerFor(p *packet.Packet) chan item {
	id := flow.IDOf(p.Tuple)
	return s.queues[binary.BigEndian.Uint64(id[:8])%uint64(len(s.queues))]
}

// enqueue applies the backpressure policy. It reports whether the
// connection should stay open. Every packet that enters here is counted
// exactly once: Admitted when queued, Shed otherwise.
func (s *Server) enqueue(pkt packet.Packet, credits chan struct{}) bool {
	q := s.workerFor(&pkt)
	it := item{pkt: pkt, credits: credits}
	switch s.OverflowPolicy() {
	case OverflowBlock:
		select {
		case credits <- struct{}{}:
		case <-s.force:
			s.countShed()
			return false
		}
		select {
		case q <- it:
			s.countAdmitted()
			return true
		case <-s.force:
			<-credits
			s.countShed()
			return false
		}
	default: // OverflowShed, OverflowDisconnect
		select {
		case credits <- struct{}{}:
		default:
			return s.shedOne()
		}
		select {
		case q <- it:
			s.countAdmitted()
			return true
		default:
			<-credits
			return s.shedOne()
		}
	}
}

// shedOne accounts one packet dropped by backpressure with its synthetic
// fallback verdict, and reports whether the connection survives the
// policy.
func (s *Server) shedOne() bool {
	s.mu.Lock()
	s.shed++
	disconnect := s.OverflowPolicy() == OverflowDisconnect
	if disconnect {
		s.disconnected++
	}
	s.mu.Unlock()
	return !disconnect
}

func (s *Server) countAdmitted() {
	s.mu.Lock()
	s.admitted++
	s.mu.Unlock()
}

func (s *Server) countShed() {
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
}

// workerRun is one supervised worker slot. A panic while processing a
// packet is recovered, counted, and answered with a delayed restart of
// the same slot; the WaitGroup is released only when the slot exits
// normally (its queue closed and drained).
func (s *Server) workerRun(id int) {
	defer func() {
		if r := recover(); r != nil {
			backoff := s.sup.recordPanic()
			go func() {
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-s.force:
					t.Stop()
				}
				s.workerRun(id)
			}()
			return
		}
		s.workerWG.Done()
	}()
	if s.cfg.Batch > 1 {
		bs, q := s.batches[id], s.queues[id]
		for {
			if len(bs.items) == 0 && !s.gatherBatch(bs, q) {
				return
			}
			s.runBatch(bs)
		}
	}
	for it := range s.queues[id] {
		s.processItem(it)
	}
}

// gatherBatch blocks for one packet, then takes whatever else is already
// queued, up to the batch bound, without waiting. It reports false when
// the queue is closed and drained.
func (s *Server) gatherBatch(bs *batchState, q chan item) bool {
	it, ok := <-q
	if !ok {
		return false
	}
	bs.items = append(bs.items, it)
	for len(bs.items) < s.Batch() {
		select {
		case it, ok := <-q:
			if !ok {
				// Process what we have; the next gather sees the close.
				return true
			}
			bs.items = append(bs.items, it)
		default:
			return true
		}
	}
	return true
}

// runBatch pre-processes the gathered items and submits them to the
// engine in one ProcessBatch call. Each item is claimed (next advanced)
// before its PreProcess hook runs, and the pending packet slice is claimed
// before the engine call, so a panic loses exactly the work that crashed —
// the restarted worker resumes the rest of the batch. Connection credits
// are released only when the whole batch is done, keeping the per-conn
// bound on genuinely unprocessed packets.
func (s *Server) runBatch(bs *batchState) {
	for bs.next < len(bs.items) {
		it := &bs.items[bs.next]
		bs.next++
		if t := int64(it.pkt.Time); t > s.maxSeen.Load() {
			s.maxSeen.Store(t)
		}
		if s.cfg.PreProcess != nil {
			s.cfg.PreProcess(&it.pkt)
		}
		bs.pkts = append(bs.pkts, &it.pkt)
	}
	pkts := bs.pkts
	bs.pkts = bs.pkts[:0]
	if len(pkts) > 0 {
		if failed, err := s.cfg.Engine.ProcessBatch(pkts); err != nil || failed > 0 {
			if failed < 1 {
				failed = 1
			}
			s.mu.Lock()
			s.engineErrors += failed
			s.mu.Unlock()
		}
		s.sup.recordSuccess()
	}
	for i := range bs.items {
		<-bs.items[i].credits
	}
	s.processed.Add(int64(len(bs.items)))
	bs.items = bs.items[:0]
	bs.next = 0
}

// processItem hands one packet to the engine. The connection credit is
// released even when the hook or engine panics (the panic then unwinds
// into workerRun's supervisor).
func (s *Server) processItem(it item) {
	defer func() { <-it.credits; s.processed.Add(1) }()
	if t := int64(it.pkt.Time); t > s.maxSeen.Load() {
		s.maxSeen.Store(t)
	}
	if s.cfg.PreProcess != nil {
		s.cfg.PreProcess(&it.pkt)
	}
	if _, err := s.cfg.Engine.Process(&it.pkt); err != nil {
		s.mu.Lock()
		s.engineErrors++
		s.mu.Unlock()
	}
	s.sup.recordSuccess()
}

// Shutdown drains the server: stop accepting, let connected clients
// finish (until ctx expires, then force-close them), drain the queues
// through the workers, flush every pending flow, and hand the final
// checkpoint to OnFinalCheckpoint. The health state walks
// draining → stopped. Shutdown is idempotent; concurrent calls share the
// first invocation's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		// Wait for the first Shutdown to finish, then share its error.
		<-s.done
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.shutdownErr
	}
	s.shutdown = true
	s.mu.Unlock()

	s.health.to(StateDraining)
	var errs []error

	// 0. Stop periodic checkpoints: the drain writes its own final one,
	// and a quiesce racing the queue close would deadlock.
	close(s.ckptStop)
	s.ckptWG.Wait()

	// 1. Stop accepting.
	for _, l := range s.cfg.Listeners {
		if err := l.Close(); err != nil {
			errs = append(errs, fmt.Errorf("ingest: close listener: %w", err))
		}
	}
	s.acceptWG.Wait()

	// 2. Let connected clients finish naturally; force-close stragglers
	// when the drain deadline expires (their unread frames are lost, and
	// blocked enqueues abort into Shed so the accounting stays exact).
	readersDone := make(chan struct{})
	go func() { s.readerWG.Wait(); close(readersDone) }()
	select {
	case <-readersDone:
	case <-ctx.Done():
		errs = append(errs, fmt.Errorf("ingest: drain deadline: %w", ctx.Err()))
		s.forceOnce.Do(func() { close(s.force) })
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-readersDone
	}

	// 3. No reader can enqueue anymore: close the queues and wait for the
	// workers (including any mid-backoff restart) to drain them.
	for _, q := range s.queues {
		close(q)
	}
	s.workerWG.Wait()
	// If the engine runs in pipelined mode, wait for its shard workers to
	// drain everything our workers enqueued before flushing.
	s.cfg.Engine.Barrier()

	// 4. Flush every still-pending flow at a virtual time safely past the
	// last packet, then persist the final checkpoint.
	now := time.Duration(s.maxSeen.Load()) + time.Minute
	if _, err := s.cfg.Engine.FlushAll(now); err != nil {
		errs = append(errs, fmt.Errorf("ingest: drain flush: %w", err))
	}
	if s.cfg.OnFinalCheckpoint != nil {
		s.cfg.OnFinalCheckpoint(s.cfg.Engine.ExportCheckpoint())
	}
	if s.cfg.NodeCheckpoint != nil {
		s.mu.Lock()
		seq := s.seenSeq
		s.mu.Unlock()
		payload := EncodeNodeCheckpoint(seq, s.cfg.Engine.ExportCheckpoint(), s.cfg.Engine.ExportPending())
		if err := s.cfg.NodeCheckpoint(payload); err != nil {
			errs = append(errs, fmt.Errorf("ingest: final node checkpoint: %w", err))
		} else {
			s.mu.Lock()
			if seq > s.ackedSeq {
				s.ackedSeq = seq
			}
			s.mu.Unlock()
		}
	}

	if s.cfg.StatusListener != nil {
		if err := s.cfg.StatusListener.Close(); err != nil {
			errs = append(errs, fmt.Errorf("ingest: close status listener: %w", err))
		}
	}
	s.statusWG.Wait()
	s.health.to(StateStopped)

	err := errors.Join(errs...)
	s.mu.Lock()
	s.shutdownErr = err
	s.mu.Unlock()
	close(s.done)
	return err
}

// Stats returns a snapshot of the ingest counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		ActiveConns:  len(s.conns),
		TotalConns:   s.totalConns,
		TimedOut:     s.timedOut,
		Disconnected: s.disconnected,
		Received:     s.received,
		Admitted:     s.admitted,
		Quarantined:  s.quarantined,
		Shed:         s.shed,
		Deduped:      s.deduped,
		SeenSeq:      s.seenSeq,
		AckedSeq:     s.ackedSeq,
		EngineErrors: s.engineErrors,
	}
	if s.cfg.NodeCheckpoint == nil {
		st.AckedSeq = st.SeenSeq
	}
	s.mu.Unlock()
	st.State = s.health.state()
	st.Supervisor = s.sup.stats()
	return st
}

// statusLoop accepts status connections and serves each in its own
// goroutine (see statusconn.go): a slow flow export must not make health
// probes queue behind it.
func (s *Server) statusLoop(l net.Listener) {
	defer s.statusWG.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s.statusWG.Add(1)
		go s.serveStatusConn(c)
	}
}

// StatusText renders the health state and counters as the plain-text
// document the status listener serves: the human-oriented dump followed
// by one machine-readable STATUS line (see status.go).
func (s *Server) StatusText() string {
	st := s.Stats()
	es := s.cfg.Engine.Stats()
	breaker := "closed"
	if st.Supervisor.BreakerOpen {
		breaker = "open"
	}
	return fmt.Sprintf(
		"state: %s\n"+
			"conns: %d active / %d total (timed-out %d, disconnected %d)\n"+
			"received: %d\nadmitted: %d\nquarantined: %d\nshed: %d\n"+
			"engine-errors: %d\n"+
			"workers: %d (panics %d, restarts %d, crash-streak %d, breaker %s)\n"+
			"engine: classified %d, pending %d, fallback %d, shed %d, dropped %d, degraded-shards %d/%d\n"+
			"fallback-class: %s\n"+
			"%s\n",
		st.State,
		st.ActiveConns, st.TotalConns, st.TimedOut, st.Disconnected,
		st.Received, st.Admitted, st.Quarantined, st.Shed,
		st.EngineErrors,
		st.Supervisor.Workers, st.Supervisor.Panics, st.Supervisor.Restarts,
		st.Supervisor.ConsecutiveCrashes, breaker,
		es.Classified, es.Pending, es.Fallback, es.Shed, es.Dropped,
		es.Degraded, s.cfg.Engine.Shards(),
		corpus.ClassNames()[s.cfg.FallbackClass],
		s.nodeStatusFrom(st, es).StatusLine())
}

package ingest

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrChaosReset is returned by a chaos connection's Write after it
// deliberately tears a frame and closes the connection.
var ErrChaosReset = errors.New("ingest: chaos: connection reset mid-frame")

// ConnChaosConfig tunes deterministic transport-fault injection. The
// faults model what a flaky network does to a framed stream: writes
// split into arbitrary chunks (TCP segmentation), stalls (congestion,
// a GC'd peer), and connections dying mid-frame (resets, crashed
// middleboxes) leaving a torn frame on the server's side.
type ConnChaosConfig struct {
	// Seed makes the fault schedule reproducible.
	Seed int64
	// ChunkRate is the probability that a Write is delivered in several
	// small chunks instead of one call.
	ChunkRate float64
	// StallEvery injects a pause before every Nth write (0 disables).
	StallEvery int
	// Stall is the pause duration (default 5ms when StallEvery is set).
	Stall time.Duration
	// ResetEvery tears the connection after roughly this many bytes
	// written (0 disables): the current Write delivers only a prefix of
	// its buffer — a torn frame — and the connection closes gracefully,
	// so the delivered prefix still reaches the peer before EOF.
	ResetEvery int
	// MaxResets bounds the total resets injected (0 = unlimited).
	MaxResets int
}

// ConnChaosStats counts injected faults across all connections wrapped
// by one ConnChaos.
type ConnChaosStats struct {
	// Resets counts mid-frame connection tears.
	Resets int
	// Stalls counts injected write pauses.
	Stalls int
	// Chunked counts writes split into multiple chunks.
	Chunked int
	// BytesWritten counts payload bytes actually delivered.
	BytesWritten int
}

// ConnChaos is shared fault-injection state: wrap every connection a
// client dials with the same ConnChaos so the byte-count reset schedule
// spans reconnects, forcing multiple tears over a long replay.
type ConnChaos struct {
	cfg ConnChaosConfig

	mu         sync.Mutex
	rng        *rand.Rand
	sinceReset int
	writes     int
	stats      ConnChaosStats
}

// NewConnChaos builds shared chaos state from cfg.
func NewConnChaos(cfg ConnChaosConfig) *ConnChaos {
	if cfg.StallEvery > 0 && cfg.Stall <= 0 {
		cfg.Stall = 5 * time.Millisecond
	}
	return &ConnChaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a snapshot of the injected-fault counters.
func (cc *ConnChaos) Stats() ConnChaosStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.stats
}

// Wrap returns conn with chaos injected into its Write path. Reads pass
// through untouched.
func (cc *ConnChaos) Wrap(conn net.Conn) net.Conn {
	return &chaosConn{Conn: conn, cc: cc}
}

type chaosConn struct {
	net.Conn
	cc *ConnChaos
}

// plan is one Write's fault decision, computed under the shared lock.
type plan struct {
	stall time.Duration
	chunk bool
	// cut, when in [1, len), tears the connection after delivering
	// exactly cut bytes.
	cut int
}

func (cc *ConnChaos) planWrite(n int) plan {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	var pl plan
	cc.writes++
	if cc.cfg.StallEvery > 0 && cc.writes%cc.cfg.StallEvery == 0 {
		pl.stall = cc.cfg.Stall
		cc.stats.Stalls++
	}
	if cc.cfg.ChunkRate > 0 && cc.rng.Float64() < cc.cfg.ChunkRate {
		pl.chunk = true
		cc.stats.Chunked++
	}
	if cc.cfg.ResetEvery > 0 && n > 1 &&
		(cc.cfg.MaxResets == 0 || cc.stats.Resets < cc.cfg.MaxResets) {
		cc.sinceReset += n
		if cc.sinceReset >= cc.cfg.ResetEvery {
			cc.sinceReset = 0
			cc.stats.Resets++
			// Tear strictly mid-buffer: at least 1 byte delivered, at
			// least 1 byte lost, so the peer always sees a torn frame.
			pl.cut = 1 + cc.rng.Intn(n-1)
		}
	}
	return pl
}

func (cc *ConnChaos) countBytes(n int) {
	cc.mu.Lock()
	cc.stats.BytesWritten += n
	cc.mu.Unlock()
}

// Write delivers p subject to the fault plan: possibly after a stall,
// possibly in chunks, and possibly torn — a strict prefix is delivered,
// the connection is closed gracefully (so the prefix is not discarded in
// flight), and ErrChaosReset is returned with the short count.
func (c *chaosConn) Write(p []byte) (int, error) {
	pl := c.cc.planWrite(len(p))
	if pl.stall > 0 {
		time.Sleep(pl.stall)
	}
	deliver := p
	torn := false
	if pl.cut > 0 && pl.cut < len(p) {
		deliver = p[:pl.cut]
		torn = true
	}
	var written int
	var err error
	if pl.chunk && len(deliver) > 1 {
		// Split into a few uneven chunks to exercise the server's
		// incremental frame reads.
		for written < len(deliver) && err == nil {
			end := written + 1 + (len(deliver)-written)/3
			if end > len(deliver) {
				end = len(deliver)
			}
			var n int
			n, err = c.Conn.Write(deliver[written:end])
			written += n
		}
	} else {
		written, err = c.Conn.Write(deliver)
	}
	c.cc.countBytes(written)
	if err != nil {
		return written, err
	}
	if torn {
		// Graceful close: FIN after the prefix is queued, so the peer
		// reads the torn frame and then EOF — a quarantine, not a loss.
		c.Conn.Close()
		return written, ErrChaosReset
	}
	return written, nil
}

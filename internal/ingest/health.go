package ingest

import (
	"fmt"
	"sync"
)

// State is the server's lifecycle/health state. The machine is strictly
// ordered around the drain path:
//
//	starting → healthy ⇄ degraded
//	    any of those → draining → stopped
//
// healthy ⇄ degraded flips with the worker crash-loop breaker; draining
// is entered exactly once by Shutdown and always terminates in stopped.
type State int32

// Server lifecycle states.
const (
	StateStarting State = iota
	StateHealthy
	StateDegraded
	StateDraining
	StateStopped
)

// String names the state for the status listener and logs.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// healthFSM guards the state transitions: illegal moves (e.g. a late
// breaker trip during drain) are ignored rather than corrupting the
// lifecycle.
type healthFSM struct {
	mu sync.Mutex
	s  State
}

func (h *healthFSM) state() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.s
}

// to attempts a transition and reports whether it was legal.
func (h *healthFSM) to(next State) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ok := false
	switch next {
	case StateHealthy:
		ok = h.s == StateStarting || h.s == StateDegraded
	case StateDegraded:
		ok = h.s == StateHealthy
	case StateDraining:
		ok = h.s == StateStarting || h.s == StateHealthy || h.s == StateDegraded
	case StateStopped:
		ok = h.s == StateDraining
	}
	if ok {
		h.s = next
	}
	return ok
}

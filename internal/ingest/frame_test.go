package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/iotest"
	"time"

	"iustitia/internal/packet"
)

func testPacket(i int) packet.Packet {
	return packet.Packet{
		Tuple: packet.FiveTuple{
			SrcIP:     [4]byte{10, 0, 0, byte(i)},
			DstIP:     [4]byte{10, 0, 1, byte(i)},
			SrcPort:   uint16(1000 + i),
			DstPort:   443,
			Transport: packet.TCP,
		},
		Time:    time.Duration(i) * time.Millisecond,
		Flags:   packet.FlagSYN,
		Payload: []byte{byte(i), 0xAB, 0xCD},
	}
}

func packetsEqual(a, b *packet.Packet) bool {
	return a.Tuple == b.Tuple && a.Time == b.Time && a.Flags == b.Flags &&
		bytes.Equal(a.Payload, b.Payload)
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	want := make([]packet.Packet, 20)
	for i := range want {
		want[i] = testPacket(i)
		var err error
		buf, err = AppendFrame(buf, &want[i])
		if err != nil {
			t.Fatalf("AppendFrame(%d): %v", i, err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf), 0, nil)
	for i := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if !packetsEqual(&got, &want[i]) {
			t.Errorf("packet %d: got %+v, want %+v", i, got, want[i])
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("after last frame: err = %v, want EOF", err)
	}
	if fr.Quarantined() != 0 {
		t.Errorf("clean stream quarantined %d events", fr.Quarantined())
	}
}

// TestFrameResync interleaves garbage runs with valid frames: every valid
// frame must still decode, and each contiguous garbage run must cost
// exactly one quarantine event.
func TestFrameResync(t *testing.T) {
	p0, p1, p2 := testPacket(0), testPacket(1), testPacket(2)
	var stream []byte
	var err error
	stream = append(stream, []byte("leading garbage!")...) // run 1
	stream, err = AppendFrame(stream, &p0)
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, 'I', 'G', 99)                  // bad version, run 2...
	stream = append(stream, []byte("more garbage IG?")...) // ...same run
	stream, err = AppendFrame(stream, &p1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendFrame(stream, &p2)
	if err != nil {
		t.Fatal(err)
	}

	events := 0
	fr := NewFrameReader(bytes.NewReader(stream), 0, func() { events++ })
	for i, want := range []*packet.Packet{&p0, &p1, &p2} {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if !packetsEqual(&got, want) {
			t.Errorf("packet %d corrupted by resync: got %+v", i, got)
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
	if fr.Quarantined() != 2 {
		t.Errorf("quarantined = %d, want 2 (one per garbage run)", fr.Quarantined())
	}
	if events != fr.Quarantined() {
		t.Errorf("callback fired %d times, counter says %d", events, fr.Quarantined())
	}
}

// TestFrameTornTail checks a stream ending mid-frame: the valid prefix
// decodes, the torn tail is quarantined, and the reader reports the
// stream error.
func TestFrameTornTail(t *testing.T) {
	p0, p1 := testPacket(0), testPacket(1)
	var stream []byte
	var err error
	stream, err = AppendFrame(stream, &p0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := AppendFrame(nil, &p1)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(append(stream[:len(stream):len(stream)], full[:cut]...)), 0, nil)
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("cut %d: valid frame: %v", cut, err)
		}
		if !packetsEqual(&got, &p0) {
			t.Fatalf("cut %d: valid frame corrupted", cut)
		}
		if _, err := fr.Next(); err == nil {
			t.Fatalf("cut %d: torn tail decoded", cut)
		}
		if fr.Quarantined() != 1 {
			t.Errorf("cut %d: quarantined = %d, want 1", cut, fr.Quarantined())
		}
	}
}

// TestFrameHostileLength checks a header declaring an enormous payload:
// the reader must quarantine and resync, not wait for gigabytes.
func TestFrameHostileLength(t *testing.T) {
	p := testPacket(0)
	hostile := []byte{'I', 'G', frameVersion, 0, 0, 0, 0, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(hostile[3:7], 1<<31)
	stream, err := AppendFrame(hostile, &p)
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(stream), 0, nil)
	got, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if !packetsEqual(&got, &p) {
		t.Errorf("frame after hostile header corrupted: %+v", got)
	}
	if fr.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", fr.Quarantined())
	}
}

// TestFrameCRCFlip corrupts each payload byte in turn: the frame must be
// quarantined, never decoded into a wrong packet silently.
func TestFrameCRCFlip(t *testing.T) {
	p := testPacket(7)
	frame, err := AppendFrame(nil, &p)
	if err != nil {
		t.Fatal(err)
	}
	for i := frameHeaderSize; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0xFF
		fr := NewFrameReader(bytes.NewReader(bad), 0, nil)
		if got, err := fr.Next(); err == nil && packetsEqual(&got, &p) {
			// Decoding a *different* valid frame out of the corrupted
			// bytes is acceptable resync behaviour; reproducing the
			// original is fine too. What matters is the corruption was
			// noticed somewhere.
			if fr.Quarantined() == 0 {
				t.Errorf("flip at %d: corrupted frame accepted without quarantine", i)
			}
		}
	}
}

// TestFrameReaderBufferSlide regression-tests a subtle resync bug: the
// header slice returned by the first Peek is invalidated when the second
// Peek slides the bufio buffer to make room for the payload. Reading the
// expected CRC from the stale slice made the reader quarantine valid
// frames. A tiny buffer plus one-byte reads forces a slide on nearly
// every frame.
func TestFrameReaderBufferSlide(t *testing.T) {
	const maxFrame = 256
	var stream []byte
	want := make([]packet.Packet, 40)
	for i := range want {
		want[i] = testPacket(i)
		want[i].Payload = bytes.Repeat([]byte{byte(i + 1)}, 150+i)
		var err error
		stream, err = AppendFrame(stream, &want[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(iotest.OneByteReader(bytes.NewReader(stream)), maxFrame, nil)
	for i := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v (quarantined %d)", i, err, fr.Quarantined())
		}
		if !packetsEqual(&got, &want[i]) {
			t.Fatalf("packet %d corrupted: got %+v", i, got)
		}
	}
	if fr.Quarantined() != 0 {
		t.Errorf("clean stream quarantined %d events under buffer slides", fr.Quarantined())
	}
}

// FuzzFrame feeds arbitrary bytes to the frame reader: it must never
// panic, never loop forever, and on streams built from valid frames it
// must recover every packet.
func FuzzFrame(f *testing.F) {
	p := testPacket(3)
	frame, err := AppendFrame(nil, &p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add(append([]byte("garbage"), frame...))
	f.Add(append(append([]byte(nil), frame...), frame[:5]...))
	f.Add([]byte{'I', 'G', frameVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 0, nil)
		frames := 0
		for {
			_, err := fr.Next()
			if err != nil {
				break
			}
			frames++
			if frames > len(data) {
				t.Fatalf("decoded %d frames from %d bytes", frames, len(data))
			}
		}
	})
}

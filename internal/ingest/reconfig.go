package ingest

import (
	"fmt"
	"time"
)

// This file is the server's live-reconfig surface. Changes are applied
// under the frame gate — the same exclusion a quiesced checkpoint or
// cluster membership change uses — so no frame is ever mid-way through
// its count-dedup-enqueue window while a policy flips, and the transport
// conservation law (Received == Admitted + Quarantined + Shed) holds
// exactly through the transition.

// Reconfigure runs fn while frame intake is paused: readers finish the
// frame they are on and wait, fn applies its changes, intake resumes.
// Unlike a quiesce this does not drain the worker queues — a reconfig
// needs mutual exclusion with admission accounting, not an empty engine.
func (s *Server) Reconfigure(fn func()) {
	s.gate.Lock()
	defer s.gate.Unlock()
	fn()
}

// OverflowPolicy returns the backpressure policy currently in force.
func (s *Server) OverflowPolicy() OverflowPolicy {
	return OverflowPolicy(s.overflow.Load())
}

// SetOverflow retunes the backpressure policy live. Connections blocked
// in OverflowBlock keep waiting for queue space (their packet is already
// mid-admission); the new policy governs every frame that follows.
func (s *Server) SetOverflow(p OverflowPolicy) error {
	if p < OverflowBlock || p > OverflowDisconnect {
		return fmt.Errorf("ingest: unknown overflow policy %d", int(p))
	}
	s.overflow.Store(int32(p))
	return nil
}

// Batch returns the per-worker engine submission bound currently in
// force.
func (s *Server) Batch() int { return int(s.batchN.Load()) }

// SetBatch retunes the batch bound live. The per-packet versus batch
// processing path is chosen structurally when the server is built, so a
// server configured with Batch 1 cannot be switched to batching (and
// vice versa the bound may be lowered to 1, which makes each gather take
// a single packet).
func (s *Server) SetBatch(n int) error {
	if n < 1 {
		return fmt.Errorf("ingest: batch size %d is not positive", n)
	}
	if s.cfg.Batch <= 1 {
		return fmt.Errorf("ingest: server was built in per-packet mode; batch size is pinned")
	}
	s.batchN.Store(int32(n))
	return nil
}

// QueueDepth reports how many packets sit in the worker queues right now
// and the total queue capacity.
func (s *Server) QueueDepth() (depth, capacity int) {
	for _, q := range s.queues {
		depth += len(q)
		capacity += cap(q)
	}
	return depth, capacity
}

// Uptime reports how long the server has been started (zero before
// Start).
func (s *Server) Uptime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.startTime.IsZero() {
		return 0
	}
	return time.Since(s.startTime)
}

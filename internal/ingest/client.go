package ingest

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"iustitia/internal/packet"
)

// ClientConfig assembles a replay client.
type ClientConfig struct {
	// Dial opens a connection to the server. Required. It is re-invoked on
	// every reconnect, so chaos wrappers and address rotation both live
	// here.
	Dial func() (net.Conn, error)
	// MaxRetries bounds how many consecutive failed delivery attempts
	// (write error or failed redial) one frame survives before Send gives
	// up. Zero defaults to 8; negative means a single attempt.
	MaxRetries int
	// BackoffBase is the reconnect delay after the first failure; each
	// consecutive failure doubles it, capped at BackoffMax. Zero defaults
	// to 10ms / 1s.
	BackoffBase time.Duration
	// BackoffMax caps the reconnect delay.
	BackoffMax time.Duration
	// Seed drives the reconnect jitter.
	Seed int64
}

// ClientStats summarizes a client's delivery activity.
type ClientStats struct {
	// Sent counts frames delivered exactly once (from the client's view:
	// the full frame was written without error).
	Sent int
	// Resent counts whole-frame retransmissions after a failed write. A
	// frame torn mid-write is resent in full on a fresh connection; the
	// server quarantines the torn prefix, so the packet is still
	// processed exactly once.
	Resent int
	// Reconnects counts successful redials after a broken connection.
	Reconnects int
	// DialFailures counts failed dial attempts.
	DialFailures int
}

// Client streams framed packets to an ingest server, transparently
// reconnecting and retransmitting across connection failures. It is safe
// for concurrent use, though frames interleave in call order.
type Client struct {
	cfg ClientConfig
	rng *rand.Rand

	mu    sync.Mutex
	conn  net.Conn
	buf   []byte
	stats ClientStats
}

// NewClient validates cfg and builds a client. The first connection is
// dialed lazily on the first Send.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("ingest: client needs a Dial function")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 8
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Send delivers one packet as a single frame. Exactly one Write call
// carries the whole frame, so a mid-frame connection reset tears at most
// this frame — which is then resent in full on a fresh connection, and
// the server's resync quarantines the torn prefix. On persistent failure
// (MaxRetries consecutive broken attempts) the last error is returned.
func (c *Client) Send(p *packet.Packet) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	frame, err := AppendFrame(c.buf[:0], p)
	if err != nil {
		return err
	}
	c.buf = frame[:0] // keep the grown buffer for reuse
	return c.deliver(frame)
}

// SendSeq delivers one packet as a version-2 frame carrying a delivery
// sequence number (see AppendFrameSeq). Retries resend the identical
// frame — same sequence — so the receiver's dedup watermark treats a
// torn-but-delivered attempt and its retransmission as one packet.
func (c *Client) SendSeq(p *packet.Packet, seq uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	frame, err := AppendFrameSeq(c.buf[:0], p, seq)
	if err != nil {
		return err
	}
	c.buf = frame[:0]
	return c.deliver(frame)
}

// deliver writes one prebuilt frame with redial + backoff. Called with
// c.mu held.
func (c *Client) deliver(frame []byte) error {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.sleepBackoff(attempt)
		}
		if c.conn == nil {
			conn, err := c.cfg.Dial()
			if err != nil {
				c.stats.DialFailures++
				lastErr = err
				continue
			}
			c.conn = conn
			if attempt > 0 || c.stats.Sent > 0 || c.stats.Resent > 0 {
				c.stats.Reconnects++
			}
		}
		if _, err := c.conn.Write(frame); err != nil {
			c.conn.Close()
			c.conn = nil
			c.stats.Resent++
			lastErr = err
			continue
		}
		c.stats.Sent++
		return nil
	}
	return fmt.Errorf("ingest: frame undeliverable after %d attempts: %w", c.cfg.MaxRetries+1, lastErr)
}

// sleepBackoff sleeps the exponential reconnect delay for the n-th
// consecutive failed attempt (n >= 1). Called with c.mu held: delivery is
// strictly ordered, so stalling subsequent Sends is the point.
func (c *Client) sleepBackoff(n int) {
	time.Sleep(backoffFor(c.cfg.BackoffBase, c.cfg.BackoffMax, n, c.rng))
}

// Stats returns a snapshot of the client's delivery counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close closes the current connection, if any. The client can still be
// reused: the next Send redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"iustitia/internal/flow"
	"iustitia/internal/persist"
)

// This file is the command side of the status listener plus the quiesced
// node-checkpoint machinery behind it. A status connection speaks a tiny
// line protocol:
//
//	STATUS                  → the plain-text dump (also served to a client
//	                          that writes nothing — the legacy probe path)
//	EXPORT <lo-hi[,lo-hi]>  → quiesce, remove every flow whose hash point
//	                          falls in one of the inclusive hex ranges,
//	                          reply "BLOB <n>\n" + a KindMigration frame
//	IMPORT <n>              → read n bytes of KindMigration frame, install
//	                          the flows, reply "OK imported=<k>"
//
// EXPORT/IMPORT are the two halves of a flow-table migration: the cluster
// router points them at the losing and gaining node when a hash arc moves.

const (
	// statusCmdTimeout is how long the server waits for a command line
	// before treating the connection as a legacy dump-only probe.
	statusCmdTimeout = 300 * time.Millisecond
	// statusIOTimeout bounds the dump write and command replies.
	statusIOTimeout = 5 * time.Second
	// statusBlobTimeout bounds one migration blob transfer.
	statusBlobTimeout = 30 * time.Second
	// maxMigrationBlob bounds the declared IMPORT length.
	maxMigrationBlob = 256 << 20
)

// EncodeNodeCheckpoint assembles a persist.KindNodeCheckpoint payload:
// the delivery-sequence watermark the checkpoint covers, the engine's
// parallel checkpoint, and the pending (mid-buffer) flows. Frame it with
// persist.SaveFile under persist.KindNodeCheckpoint.
func EncodeNodeCheckpoint(seq uint64, engineCkpt, pending []byte) []byte {
	var enc persist.Encoder
	enc.U64(seq)
	enc.Blob(engineCkpt)
	enc.Blob(pending)
	return enc.Bytes()
}

// DecodeNodeCheckpoint splits a payload written by EncodeNodeCheckpoint.
func DecodeNodeCheckpoint(payload []byte) (seq uint64, engineCkpt, pending []byte, err error) {
	d := persist.NewDecoder(payload)
	seq = d.U64()
	engineCkpt = d.Blob()
	pending = d.Blob()
	if err := d.Finish(); err != nil {
		return 0, nil, nil, fmt.Errorf("ingest: node checkpoint: %w", err)
	}
	return seq, engineCkpt, pending, nil
}

// quiesce pauses frame intake and drains every admitted packet through
// the engine, so the caller observes a state that exactly covers the
// current seenSeq watermark. The returned release func resumes intake;
// on timeout intake is resumed and an error returned.
func (s *Server) quiesce(timeout time.Duration) (release func(), err error) {
	s.gate.Lock()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		admitted := s.admitted
		s.mu.Unlock()
		inFlight := int64(admitted) - s.processed.Load()
		if inFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			s.gate.Unlock()
			return nil, fmt.Errorf("ingest: quiesce timed out after %s (%d packets in flight)", timeout, inFlight)
		}
		time.Sleep(time.Millisecond)
	}
	// Pipelined engines buffer internally past the worker queues.
	s.cfg.Engine.Barrier()
	return s.gate.Unlock, nil
}

// CheckpointNow performs one quiesced node checkpoint: pause intake,
// drain, capture {watermark, engine checkpoint, pending flows}, resume,
// then hand the payload to the NodeCheckpoint hook. The acked_seq
// watermark advances only when the hook reports success, so a router's
// replay journal is never trimmed past what is actually durable.
func (s *Server) CheckpointNow() error {
	if s.cfg.NodeCheckpoint == nil {
		return errors.New("ingest: no NodeCheckpoint hook configured")
	}
	release, err := s.quiesce(s.cfg.QuiesceTimeout)
	if err != nil {
		return err
	}
	s.mu.Lock()
	seq := s.seenSeq
	s.mu.Unlock()
	payload := EncodeNodeCheckpoint(seq, s.cfg.Engine.ExportCheckpoint(), s.cfg.Engine.ExportPending())
	release()
	if err := s.cfg.NodeCheckpoint(payload); err != nil {
		return fmt.Errorf("ingest: node checkpoint hook: %w", err)
	}
	s.mu.Lock()
	if seq > s.ackedSeq {
		s.ackedSeq = seq
	}
	s.mu.Unlock()
	return nil
}

// checkpointLoop drives periodic node checkpoints until the drain stops
// it. A failed attempt (quiesce timeout under crash-loop, hook error) is
// skipped — the watermark simply does not advance, and the STATUS line's
// checkpoint age shows the stall.
func (s *Server) checkpointLoop() {
	defer s.ckptWG.Done()
	t := time.NewTicker(s.cfg.NodeCheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.CheckpointNow()
		case <-s.ckptStop:
			return
		}
	}
}

// serveStatusConn handles one status connection: read an optional command
// line, default to the plain dump.
func (s *Server) serveStatusConn(c net.Conn) {
	defer s.statusWG.Done()
	defer c.Close()
	_ = c.SetReadDeadline(time.Now().Add(statusCmdTimeout))
	br := bufio.NewReader(c)
	line, err := br.ReadString('\n')
	_ = c.SetWriteDeadline(time.Now().Add(statusIOTimeout))
	fields := strings.Fields(line)
	if err != nil || len(fields) == 0 || strings.EqualFold(fields[0], "STATUS") {
		// A command-less connection (legacy probe, curl) gets the dump.
		_, _ = c.Write([]byte(s.StatusText()))
		return
	}
	verb := strings.ToUpper(fields[0])
	switch verb {
	case "EXPORT":
		s.handleExport(c, fields[1:])
	case "IMPORT":
		s.handleImport(br, c, fields[1:])
	default:
		if s.cfg.AdminHandler != nil && s.cfg.AdminHandler(verb, fields[1:], br, c) {
			return
		}
		fmt.Fprintf(c, "ERR unknown command %q\n", fields[0])
	}
}

// handleExport quiesces, removes every flow in the requested hash ranges,
// and streams the migration frame. If the write back fails the flows are
// re-installed locally: better a stale copy on the loser than none in the
// cluster.
func (s *Server) handleExport(c net.Conn, args []string) {
	if len(args) != 1 {
		fmt.Fprintf(c, "ERR EXPORT wants exactly one range list\n")
		return
	}
	pred, err := parseRangePred(args[0])
	if err != nil {
		fmt.Fprintf(c, "ERR %v\n", err)
		return
	}
	release, err := s.quiesce(s.cfg.QuiesceTimeout)
	if err != nil {
		fmt.Fprintf(c, "ERR %v\n", err)
		return
	}
	payload := s.cfg.Engine.ExportFlows(pred)
	release()
	frame := persist.Encode(persist.KindMigration, payload)
	_ = c.SetWriteDeadline(time.Now().Add(statusBlobTimeout))
	if _, err := fmt.Fprintf(c, "BLOB %d\n", len(frame)); err == nil {
		_, err = c.Write(frame)
	}
	if err != nil {
		// The gaining node never got the blob; put the flows back.
		_, _ = s.cfg.Engine.ImportFlows(payload)
	}
}

// handleImport reads a migration frame of the declared length and
// installs its flows.
func (s *Server) handleImport(br *bufio.Reader, c net.Conn, args []string) {
	if len(args) != 1 {
		fmt.Fprintf(c, "ERR IMPORT wants exactly one length\n")
		return
	}
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || n < 0 || n > maxMigrationBlob {
		fmt.Fprintf(c, "ERR bad IMPORT length %q\n", args[0])
		return
	}
	_ = c.SetReadDeadline(time.Now().Add(statusBlobTimeout))
	buf := make([]byte, n)
	_, err = io.ReadFull(br, buf)
	// Re-arm the write deadline: the one set at connection start may have
	// lapsed while a large blob streamed in, and replies written against an
	// expired deadline fail silently.
	_ = c.SetWriteDeadline(time.Now().Add(statusIOTimeout))
	if err != nil {
		fmt.Fprintf(c, "ERR read blob: %v\n", err)
		return
	}
	payload, err := persist.DecodeKind(buf, persist.KindMigration)
	if err != nil {
		fmt.Fprintf(c, "ERR %v\n", err)
		return
	}
	k, err := s.cfg.Engine.ImportFlows(payload)
	if err != nil {
		fmt.Fprintf(c, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(c, "OK imported=%d\n", k)
}

// parseRangePred parses "lo-hi[,lo-hi...]" (inclusive 64-bit hex bounds)
// into a predicate over the flow-ID hash point — the same first-8-bytes
// reduction the cluster ring places flows with.
func parseRangePred(spec string) (func(flow.ID) bool, error) {
	type span struct{ lo, hi uint64 }
	var spans []span
	for _, part := range strings.Split(spec, ",") {
		lo, hi, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("ingest: bad range %q (want lo-hi)", part)
		}
		l, err := strconv.ParseUint(lo, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("ingest: bad range bound %q: %v", lo, err)
		}
		h, err := strconv.ParseUint(hi, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("ingest: bad range bound %q: %v", hi, err)
		}
		if l > h {
			return nil, fmt.Errorf("ingest: inverted range %q", part)
		}
		spans = append(spans, span{l, h})
	}
	if len(spans) == 0 {
		return nil, errors.New("ingest: empty range list")
	}
	return func(id flow.ID) bool {
		p := binary.BigEndian.Uint64(id[:8])
		for _, sp := range spans {
			if p >= sp.lo && p <= sp.hi {
				return true
			}
		}
		return false
	}, nil
}

package ingest

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

// TestServerDrainDeadlineMidFrame covers the second force-close path of
// an expired drain: a reader blocked *inside a frame* (the client wrote a
// header and part of the payload, then went silent). Unlike
// TestServerDrainDeadline — whose reader is parked in enqueue behind a
// stalled worker — this reader is parked in a socket Read, so the drain
// deadline must tear it out by closing the connection, and the torn
// frame must be accounted as exactly one quarantine event so the
// conservation law closes.
func TestServerDrainDeadlineMidFrame(t *testing.T) {
	engine := newTestEngine(t, 1)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:    engine,
		Listeners: []net.Listener{l},
		Workers:   1,
	})
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Three complete frames, then a torn one: header plus half the
	// payload, and the client stalls without closing.
	const complete = 3
	var buf []byte
	for i := 0; i < complete; i++ {
		p := testPacket(i)
		buf, err = AppendFrame(buf[:0], &p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	p := testPacket(complete)
	buf, err = AppendFrame(buf[:0], &p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf[:frameHeaderSize+(len(buf)-frameHeaderSize)/2]); err != nil {
		t.Fatalf("torn write: %v", err)
	}
	waitFor(t, 5*time.Second, "complete frames admitted", func() bool {
		return s.Stats().Admitted == complete
	})

	// The reader now sits in Peek waiting for the rest of the frame, so a
	// graceful drain can never finish on its own.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = s.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("Shutdown error = %v, want drain deadline", err)
	}
	if s.State() != StateStopped {
		t.Fatalf("state = %v after forced drain, want stopped", s.State())
	}
	st := s.Stats()
	assertConservation(t, st)
	if st.Admitted != complete {
		t.Errorf("admitted %d, want %d", st.Admitted, complete)
	}
	if st.Quarantined != 1 {
		t.Errorf("quarantined %d events, want exactly 1 for the torn frame", st.Quarantined)
	}
	if st.Shed != 0 {
		t.Errorf("shed %d packets with an empty pipeline", st.Shed)
	}
}

// TestClientResendAcrossServerRestart restarts the server underneath a
// streaming client, mid-batch, with the tear landing mid-frame: the old
// instance drains into a final checkpoint, the new instance resumes from
// it on the same address, and the client's reconnect+resend must carry
// the batch across the gap with nothing lost and nothing duplicated —
// the combined transport ledger of both instances adds up to exactly the
// frames sent.
func TestClientResendAcrossServerRestart(t *testing.T) {
	trace := testTrace(t, 60, 17)

	// Schedule exactly one chaos tear roughly halfway through the byte
	// stream. The cut is strictly mid-frame (planWrite guarantees it), so
	// the first instance always sees a torn prefix — one quarantine — and
	// the client always gets a synchronous write error — one resend.
	totalBytes := 0
	var buf []byte
	for i := range trace.Packets {
		var err error
		buf, err = AppendFrame(buf[:0], &trace.Packets[i])
		if err != nil {
			t.Fatal(err)
		}
		totalBytes += len(buf)
	}
	chaos := NewConnChaos(ConnChaosConfig{
		Seed:       11,
		ResetEvery: totalBytes / 2,
		MaxResets:  1,
	})

	engine1 := newTestEngine(t, 2)
	l1 := listenLocal(t)
	addr := l1.Addr().String()
	var checkpoint []byte
	s1 := startServer(t, Config{
		Engine:            engine1,
		Listeners:         []net.Listener{l1},
		Workers:           2,
		Overflow:          OverflowBlock,
		OnFinalCheckpoint: func(snap []byte) { checkpoint = snap },
	})

	// The restart happens inside the client's redial: when the tear
	// closes the connection, the reconnect finds the old instance already
	// drained and a successor listening on the same address, resumed from
	// the final checkpoint. Sequencing it here makes the interleaving
	// deterministic — the server is always mid-restart exactly when the
	// client comes back.
	var s2 *Server
	var engine2 = newTestEngine(t, 2)
	dials := 0
	client, err := NewClient(ClientConfig{
		Dial: func() (net.Conn, error) {
			dials++
			if dials == 2 {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := s1.Shutdown(ctx); err != nil {
					t.Errorf("first instance Shutdown: %v", err)
				}
				if len(checkpoint) == 0 {
					t.Error("first instance drained without a final checkpoint")
				} else if err := engine2.ImportCheckpoint(checkpoint); err != nil {
					t.Errorf("successor ImportCheckpoint: %v", err)
				}
				l2, err := rebind(addr, 5*time.Second)
				if err != nil {
					return nil, err
				}
				s2 = startServer(t, Config{
					Engine:    engine2,
					Listeners: []net.Listener{l2},
					Workers:   2,
					Overflow:  OverflowBlock,
				})
			}
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return chaos.Wrap(c), nil
		},
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	if s2 == nil {
		t.Fatal("chaos never tore the stream: the restart path was not exercised")
	}
	waitFor(t, 10*time.Second, "successor admitted the remainder", func() bool {
		return s1.Stats().Admitted+s2.Stats().Admitted == len(trace.Packets)
	})
	client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatalf("successor Shutdown: %v", err)
	}

	// The client saw exactly one tear and rode through it.
	cls := client.Stats()
	if cls.Resent != 1 {
		t.Errorf("client resent %d frames, want exactly 1", cls.Resent)
	}
	if cls.Reconnects != 1 {
		t.Errorf("client reconnected %d times, want exactly 1", cls.Reconnects)
	}
	if cls.Sent != len(trace.Packets) {
		t.Errorf("client sent %d frames, want %d", cls.Sent, len(trace.Packets))
	}

	// Exactly-once across the restart: each instance's ledger closes on
	// its own, the torn prefix is the old instance's single quarantine,
	// and the two admitted counts partition the batch — no frame lost in
	// the gap, none delivered twice.
	st1, st2 := s1.Stats(), s2.Stats()
	assertConservation(t, st1)
	assertConservation(t, st2)
	if st1.Quarantined != 1 {
		t.Errorf("first instance quarantined %d events, want 1 (the torn prefix)", st1.Quarantined)
	}
	if st2.Quarantined != 0 {
		t.Errorf("successor quarantined %d events, want 0", st2.Quarantined)
	}
	if st1.Admitted+st2.Admitted != len(trace.Packets) {
		t.Errorf("admitted %d+%d packets across the restart, want %d",
			st1.Admitted, st2.Admitted, len(trace.Packets))
	}
	if st1.Admitted == 0 || st2.Admitted == 0 {
		t.Errorf("batch did not span the restart: admitted %d then %d", st1.Admitted, st2.Admitted)
	}
	if st1.Shed != 0 || st2.Shed != 0 {
		t.Errorf("block policy shed %d+%d packets", st1.Shed, st2.Shed)
	}

	// The successor's engine carried the predecessor's verdicts across
	// the checkpoint and added its own: no classification work vanished
	// with the restart.
	e1, e2 := engine1.Stats(), engine2.Stats()
	if e2.Classified+e2.Fallback < e1.Classified+e1.Fallback {
		t.Errorf("successor labelled %d+%d flows, predecessor had %d+%d: verdicts lost in handoff",
			e2.Classified, e2.Fallback, e1.Classified, e1.Fallback)
	}
	if e2.Pending != 0 {
		t.Errorf("successor still has %d pending flows after drain", e2.Pending)
	}
}

// rebind listens on a concrete address that was just released by a
// closed listener, retrying briefly in case the kernel has not finished
// tearing the old socket down.
func rebind(addr string, patience time.Duration) (net.Listener, error) {
	deadline := time.Now().Add(patience)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil || time.Now().After(deadline) {
			return l, err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package ingest

import (
	"math/rand"
	"sync"
	"time"
)

// SupervisorConfig tunes worker supervision: how crashed ingest workers
// are restarted and when a crash loop trips the breaker into degraded
// mode.
type SupervisorConfig struct {
	// BackoffBase is the restart delay after the first crash; each
	// consecutive crash doubles it. Zero defaults to 10ms.
	BackoffBase time.Duration
	// BackoffMax caps the restart delay. Zero defaults to 2s.
	BackoffMax time.Duration
	// TripAfter is how many consecutive worker crashes (with no
	// successfully processed packet in between) trip the crash-loop
	// breaker, flipping server health to degraded. Zero defaults to 8;
	// negative disables the breaker.
	TripAfter int
	// Seed drives the restart jitter. The jitter decorrelates restart
	// storms when several workers crash on the same poisoned input.
	Seed int64
}

const (
	defaultBackoffBase = 10 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second
	defaultTripAfter   = 8
)

func (c SupervisorConfig) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return defaultBackoffBase
	}
	return c.BackoffBase
}

func (c SupervisorConfig) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return defaultBackoffMax
	}
	return c.BackoffMax
}

func (c SupervisorConfig) tripAfter() int {
	if c.TripAfter == 0 {
		return defaultTripAfter
	}
	return c.TripAfter
}

// SupervisorStats is a snapshot of worker supervision activity.
type SupervisorStats struct {
	// Workers is the configured worker count.
	Workers int
	// Panics counts worker panics recovered by the supervisor.
	Panics int
	// Restarts counts worker restarts scheduled (equals Panics: every
	// recovered panic schedules exactly one restart).
	Restarts int
	// ConsecutiveCrashes is the current crash streak; a processed packet
	// resets it.
	ConsecutiveCrashes int
	// BreakerOpen is true while the crash-loop breaker holds the server
	// degraded.
	BreakerOpen bool
}

// supervisor tracks worker crashes, computes restart backoff, and drives
// the crash-loop breaker. The health transitions themselves are delegated
// through onTrip/onRecover so the supervisor stays testable in isolation.
type supervisor struct {
	cfg       SupervisorConfig
	onTrip    func()
	onRecover func()

	mu          sync.Mutex
	rng         *rand.Rand
	workers     int
	panics      int
	restarts    int
	consecutive int
	breakerOpen bool
}

func newSupervisor(cfg SupervisorConfig, workers int, onTrip, onRecover func()) *supervisor {
	return &supervisor{
		cfg:       cfg,
		onTrip:    onTrip,
		onRecover: onRecover,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		workers:   workers,
	}
}

// recordPanic accounts one recovered worker panic and returns the backoff
// to sleep before restarting that worker. Crossing TripAfter consecutive
// crashes opens the breaker and fires onTrip.
func (s *supervisor) recordPanic() time.Duration {
	s.mu.Lock()
	s.panics++
	s.restarts++
	s.consecutive++
	trip := false
	if ta := s.cfg.tripAfter(); ta > 0 && s.consecutive >= ta && !s.breakerOpen {
		s.breakerOpen = true
		trip = true
	}
	backoff := backoffFor(s.cfg.backoffBase(), s.cfg.backoffMax(), s.consecutive, s.rng)
	s.mu.Unlock()
	if trip && s.onTrip != nil {
		s.onTrip()
	}
	return backoff
}

// recordSuccess marks one packet fully processed: the crash streak resets
// and, if the breaker was open, it closes and fires onRecover — the
// supervision twin of the engine's degraded-mode probe recovery.
func (s *supervisor) recordSuccess() {
	s.mu.Lock()
	if s.consecutive == 0 && !s.breakerOpen {
		s.mu.Unlock()
		return
	}
	s.consecutive = 0
	recovered := s.breakerOpen
	s.breakerOpen = false
	s.mu.Unlock()
	if recovered && s.onRecover != nil {
		s.onRecover()
	}
}

func (s *supervisor) stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SupervisorStats{
		Workers:            s.workers,
		Panics:             s.panics,
		Restarts:           s.restarts,
		ConsecutiveCrashes: s.consecutive,
		BreakerOpen:        s.breakerOpen,
	}
}

// backoffFor computes the restart delay for the n-th consecutive crash
// (n >= 1): base·2^(n-1) capped at max, plus a uniform jitter of up to
// half the delay. rng may be nil for a jitter-free value (unit tests).
func backoffFor(base, max time.Duration, n int, rng *rand.Rand) time.Duration {
	if n < 1 {
		n = 1
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if rng != nil && d > 0 {
		d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	}
	if d > max {
		d = max
	}
	return d
}

package ingest

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"iustitia/internal/corpus"
)

// TestStatusLineRoundTrip renders and re-parses a fully populated
// snapshot, field for field.
func TestStatusLineRoundTrip(t *testing.T) {
	ns := NodeStatus{
		Node:             "node-a",
		State:            StateDegraded,
		Received:         101,
		Admitted:         90,
		Quarantined:      7,
		Shed:             4,
		EngineAdmitted:   80,
		EngineClassified: 70,
		EnginePending:    10,
		EngineFallback:   3,
		EngineShed:       2,
		EngineDropped:    5,
		Queue:            [corpus.NumClasses]int{40, 20, 10},
		CheckpointAge:    1500 * time.Millisecond,
		Stream:           "lall",
	}
	got, err := ParseStatusLine(ns.StatusLine())
	if err != nil {
		t.Fatalf("ParseStatusLine: %v", err)
	}
	if got != ns {
		t.Errorf("round trip diverged:\n  in:  %+v\n  out: %+v", ns, got)
	}
	if gap := got.ConservationGap(); gap != 0 {
		t.Errorf("conservation gap %d on a balanced snapshot", gap)
	}
}

// TestStatusLineNoCheckpoint pins the -1 encoding for "never
// checkpointed".
func TestStatusLineNoCheckpoint(t *testing.T) {
	ns := NodeStatus{Node: "n", State: StateHealthy, CheckpointAge: NoCheckpoint}
	line := ns.StatusLine()
	if !strings.Contains(line, "checkpoint_age_ms=-1") {
		t.Errorf("no-checkpoint line = %q", line)
	}
	got, err := ParseStatusLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointAge != NoCheckpoint {
		t.Errorf("CheckpointAge = %v, want NoCheckpoint", got.CheckpointAge)
	}
}

// TestStatusLineStreamKey pins the stream= encoding: absent for buffered
// engines (older parsers see their exact line), present in stream mode.
func TestStatusLineStreamKey(t *testing.T) {
	buffered := NodeStatus{Node: "n", State: StateHealthy, CheckpointAge: NoCheckpoint}
	if line := buffered.StatusLine(); strings.Contains(line, "stream=") {
		t.Errorf("buffered line carries a stream key: %q", line)
	}
	streaming := NodeStatus{Node: "n", State: StateHealthy, CheckpointAge: NoCheckpoint, Stream: "cc"}
	line := streaming.StatusLine()
	if !strings.Contains(line, " stream=cc") {
		t.Errorf("stream-mode line missing stream key: %q", line)
	}
	got, err := ParseStatusLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != "cc" {
		t.Errorf("Stream = %q, want cc", got.Stream)
	}
}

// TestParseStatusLineFromDocument extracts the STATUS line out of a full
// human-oriented dump, tolerates unknown keys, and rejects documents
// without one.
func TestParseStatusLineFromDocument(t *testing.T) {
	doc := "state: healthy\nconns: 0 active / 0 total\n" +
		"STATUS node=x state=healthy received=3 admitted=3 quarantined=0 shed=0 " +
		"engine_admitted=1 engine_classified=1 engine_pending=0 engine_fallback=0 " +
		"engine_shed=0 engine_dropped=0 q_text=1 q_binary=0 q_encrypted=0 " +
		"checkpoint_age_ms=42 future_key=ignored\n" +
		"fallback-class: text\n"
	ns, err := ParseStatusLine(doc)
	if err != nil {
		t.Fatalf("ParseStatusLine: %v", err)
	}
	if ns.Node != "x" || ns.Received != 3 || ns.CheckpointAge != 42*time.Millisecond {
		t.Errorf("parsed %+v", ns)
	}

	if _, err := ParseStatusLine("state: healthy\nno machine line\n"); err == nil {
		t.Error("document without a STATUS line parsed")
	}
	if _, err := ParseStatusLine("STATUS node=x state=wat"); err == nil {
		t.Error("unknown state parsed")
	}
	if _, err := ParseStatusLine("STATUS state=healthy received=1"); err == nil {
		t.Error("line without node key parsed")
	}
	if _, err := ParseStatusLine("STATUS node=x state=healthy received=abc"); err == nil {
		t.Error("non-numeric counter parsed")
	}
}

// TestParseState round-trips every state and rejects garbage.
func TestParseState(t *testing.T) {
	for st := StateStarting; st <= StateStopped; st++ {
		got, err := ParseState(st.String())
		if err != nil || got != st {
			t.Errorf("ParseState(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseState("zombie"); err == nil {
		t.Error("ParseState accepted garbage")
	}
}

// TestServerStatusLineEmitted checks the live status listener serves a
// parseable STATUS line that agrees with the server's counters, including
// the checkpoint age hook.
func TestServerStatusLineEmitted(t *testing.T) {
	ckptAt := time.Now().Add(-2 * time.Second)
	status := listenLocal(t)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:         newTestEngine(t, 2),
		Listeners:      []net.Listener{l},
		StatusListener: status,
		Workers:        1,
		NodeName:       "alpha",
		CheckpointTime: func() time.Time { return ckptAt },
	})

	client, err := NewClient(ClientConfig{Dial: func() (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	}})
	if err != nil {
		t.Fatal(err)
	}
	trace := testTrace(t, 10, 31)
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	client.Close()
	waitFor(t, 10*time.Second, "packets admitted", func() bool {
		return s.Stats().Admitted == len(trace.Packets)
	})

	ns, err := ParseStatusLine(statusDump(t, status.Addr().String()))
	if err != nil {
		t.Fatalf("status dump has no parseable STATUS line: %v", err)
	}
	if ns.Node != "alpha" {
		t.Errorf("node = %q, want alpha", ns.Node)
	}
	if ns.State != StateHealthy {
		t.Errorf("state = %v, want healthy", ns.State)
	}
	if ns.Admitted != len(trace.Packets) || ns.ConservationGap() != 0 {
		t.Errorf("counters off: %+v", ns)
	}
	if ns.EngineAdmitted == 0 {
		t.Error("engine counters missing from STATUS line")
	}
	if ns.CheckpointAge < 2*time.Second || ns.CheckpointAge > time.Minute {
		t.Errorf("checkpoint age = %v, want ~2s", ns.CheckpointAge)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ns2, err := ParseStatusLine(s.StatusText())
	if err != nil {
		t.Fatal(err)
	}
	if ns2.State != StateStopped {
		t.Errorf("post-drain STATUS state = %v, want stopped", ns2.State)
	}
}

// TestNewServerRejectsBadNodeName checks names that would break k=v
// parsing are refused up front.
func TestNewServerRejectsBadNodeName(t *testing.T) {
	l := listenLocal(t)
	defer l.Close()
	for _, name := range []string{"has space", "has=eq", "has\ttab"} {
		_, err := NewServer(Config{
			Engine:    newTestEngine(t, 1),
			Listeners: []net.Listener{l},
			NodeName:  name,
		})
		if err == nil {
			t.Errorf("NewServer accepted node name %q", name)
		}
	}
}

package ingest

import (
	"context"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// TestStatusLineUptimeForwardCompat pins the uptime_ms compatibility
// contract in both directions: a line from a server predating the key
// still parses (Uptime zero), and a current line parsed by a reader that
// knows nothing about uptime_ms is unaffected because unknown keys are
// skipped (covered by TestParseStatusLineFromDocument's future_key).
func TestStatusLineUptimeForwardCompat(t *testing.T) {
	old := statusLinePrefix + "node=x state=healthy received=3 admitted=3 quarantined=0 shed=0 " +
		"engine_admitted=1 engine_classified=1 engine_pending=0 engine_fallback=0 " +
		"engine_shed=0 engine_dropped=0 q_text=1 q_binary=0 q_encrypted=0 " +
		"checkpoint_age_ms=-1"
	ns, err := ParseStatusLine(old)
	if err != nil {
		t.Fatalf("pre-uptime line rejected: %v", err)
	}
	if ns.Uptime != 0 {
		t.Errorf("Uptime = %v from a line without the key, want 0", ns.Uptime)
	}

	cur := NodeStatus{Node: "x", State: StateHealthy, CheckpointAge: NoCheckpoint, Uptime: 2500 * time.Millisecond}
	line := cur.StatusLine()
	if !strings.Contains(line, " uptime_ms=2500 ") {
		t.Errorf("rendered line missing uptime_ms: %q", line)
	}
	got, err := ParseStatusLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Uptime != cur.Uptime {
		t.Errorf("Uptime = %v, want %v", got.Uptime, cur.Uptime)
	}
}

// TestServerUptimeOnStatusLine checks a live server reports a sane,
// monotonic uptime through the status listener.
func TestServerUptimeOnStatusLine(t *testing.T) {
	status := listenLocal(t)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:         newTestEngine(t, 1),
		Listeners:      []net.Listener{l},
		StatusListener: status,
		Workers:        1,
		NodeName:       "up",
	})
	defer shutdownServer(t, s)

	time.Sleep(20 * time.Millisecond)
	ns, err := ParseStatusLine(statusDump(t, status.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	if ns.Uptime <= 0 || ns.Uptime > time.Minute {
		t.Errorf("uptime = %v, want a small positive duration", ns.Uptime)
	}
	if up2 := s.Uptime(); up2 < ns.Uptime {
		t.Errorf("uptime went backwards: status %v then %v", ns.Uptime, up2)
	}
}

// TestServerReconfigureMidBurst flips the overflow policy, batch bound,
// and engine pending limit while a trace is streaming, then checks the
// transport conservation law held through the transitions and every flow
// still classifies exactly as the in-process reference replay — the gate
// discipline means a policy flip never lands mid-frame.
func TestServerReconfigureMidBurst(t *testing.T) {
	trace := testTrace(t, 40, 97)
	ref := replayReference(t, trace, 2)

	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:    newTestEngine(t, 2),
		Listeners: []net.Listener{l},
		Workers:   2,
		Batch:     64,
		Overflow:  OverflowBlock,
	})

	client, err := NewClient(ClientConfig{Dial: func() (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave sends with live reconfigs at several points in the burst.
	steps := map[int]func(){
		len(trace.Packets) / 4: func() {
			s.Reconfigure(func() {
				if err := s.SetOverflow(OverflowShed); err != nil {
					t.Errorf("SetOverflow: %v", err)
				}
				if err := s.SetBatch(4); err != nil {
					t.Errorf("SetBatch: %v", err)
				}
			})
		},
		len(trace.Packets) / 2: func() {
			s.Reconfigure(func() {
				if err := s.cfg.Engine.SetMaxPending(1 << 16); err != nil {
					t.Errorf("SetMaxPending: %v", err)
				}
				if err := s.SetOverflow(OverflowBlock); err != nil {
					t.Errorf("SetOverflow back: %v", err)
				}
			})
		},
		3 * len(trace.Packets) / 4: func() {
			s.Reconfigure(func() {
				if err := s.SetBatch(64); err != nil {
					t.Errorf("SetBatch back: %v", err)
				}
			})
		},
	}
	for i := range trace.Packets {
		if step := steps[i]; step != nil {
			step()
		}
		if err := client.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	client.Close()

	waitFor(t, 10*time.Second, "packets admitted", func() bool {
		return s.Stats().Admitted == len(trace.Packets)
	})
	shutdownServer(t, s)

	st := s.Stats()
	assertConservation(t, st)
	// The queue never filled (big capacity, blocking policy at the edges),
	// so the shed window must not have dropped anything: the replay is
	// byte-for-byte complete and verdicts must match the reference exactly.
	if st.Shed != 0 || st.Quarantined != 0 {
		t.Fatalf("reconfig burst lost packets: %+v", st)
	}
	assertEnginesMatch(t, trace, s.cfg.Engine, ref)

	if got := s.OverflowPolicy(); got != OverflowBlock {
		t.Errorf("final overflow policy = %v, want block", got)
	}
	if got := s.Batch(); got != 64 {
		t.Errorf("final batch = %d, want 64", got)
	}
}

// TestSetBatchPinnedInPerPacketMode pins the structural constraint: a
// server built per-packet cannot be reconfigured into batching.
func TestSetBatchPinnedInPerPacketMode(t *testing.T) {
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:    newTestEngine(t, 1),
		Listeners: []net.Listener{l},
		Workers:   1,
		Batch:     1,
	})
	defer shutdownServer(t, s)
	if err := s.SetBatch(8); err == nil {
		t.Error("SetBatch succeeded on a per-packet server")
	}
}

// TestStatusConnSilentClientDeadline checks the status listener's
// deadlines: a client that connects and says nothing gets the dump after
// the command timeout and its connection closed, and while it idles the
// listener keeps serving other probes — one stalled admin client cannot
// wedge the node.
func TestStatusConnSilentClientDeadline(t *testing.T) {
	status := listenLocal(t)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:         newTestEngine(t, 1),
		Listeners:      []net.Listener{l},
		StatusListener: status,
		Workers:        1,
		NodeName:       "quiet",
	})

	silent, err := net.Dial("tcp", status.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	// Probes from other clients are served while the silent one idles.
	if _, err := ParseStatusLine(statusDump(t, status.Addr().String())); err != nil {
		t.Fatalf("probe while another client stalls: %v", err)
	}

	// The silent connection is answered (dump) and closed once the command
	// deadline lapses — read to EOF must complete well inside the test
	// timeout rather than hanging forever.
	_ = silent.SetReadDeadline(time.Now().Add(10 * time.Second))
	doc, err := io.ReadAll(silent)
	if err != nil {
		t.Fatalf("silent connection read: %v", err)
	}
	if _, err := ParseStatusLine(string(doc)); err != nil {
		t.Errorf("silent connection got no dump: %v", err)
	}

	// The stalled-then-closed connection must not block drain.
	shutdownServer(t, s)
}

// shutdownServer drains s with a generous deadline.
func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

package ingest

import (
	"context"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// pureClassifier labels deterministically from the buffer's first byte —
// the property that makes networked and in-process replays comparable
// verdict by verdict.
func pureClassifier() flow.Classifier {
	return flow.ClassifierFunc(func(payload []byte) (corpus.Class, error) {
		return corpus.Class(int(payload[0]) % corpus.NumClasses), nil
	})
}

func newTestEngine(t *testing.T, shards int) *flow.ParallelEngine {
	t.Helper()
	pe, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize: 256,
		Classifier: pureClassifier(),
	}, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func listenLocal(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func testTrace(t *testing.T, flows int, seed int64) *packet.Trace {
	t.Helper()
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = flows
	cfg.Duration = 5 * time.Second
	cfg.MaxFlowBytes = 2 << 10
	cfg.Seed = seed
	trace, err := packet.Generate(cfg, corpus.NewGenerator(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// replayReference replays trace sequentially into a fresh engine — the
// ground truth a networked replay must match.
func replayReference(t *testing.T, trace *packet.Trace, shards int) *flow.ParallelEngine {
	t.Helper()
	ref := newTestEngine(t, shards)
	maxSeen := time.Duration(0)
	for i := range trace.Packets {
		if trace.Packets[i].Time > maxSeen {
			maxSeen = trace.Packets[i].Time
		}
		if _, err := ref.Process(&trace.Packets[i]); err != nil {
			t.Fatalf("reference Process: %v", err)
		}
	}
	if _, err := ref.FlushAll(maxSeen + time.Minute); err != nil {
		t.Fatalf("reference FlushAll: %v", err)
	}
	return ref
}

// assertConservation checks the transport conservation law on a stats
// snapshot.
func assertConservation(t *testing.T, st Stats) {
	t.Helper()
	if got := st.Admitted + st.Quarantined + st.Shed; got != st.Received {
		t.Errorf("conservation violated: Admitted(%d)+Quarantined(%d)+Shed(%d) = %d, want Received %d",
			st.Admitted, st.Quarantined, st.Shed, got, st.Received)
	}
}

// assertEnginesMatch compares classification outcomes of a networked
// replay against the in-process reference: identical aggregate stats and
// an identical label for every flow.
func assertEnginesMatch(t *testing.T, trace *packet.Trace, got, want *flow.ParallelEngine) {
	t.Helper()
	gs, ws := got.Stats(), want.Stats()
	if gs != ws {
		t.Errorf("engine stats diverge from in-process replay:\n  networked: %+v\n  reference: %+v", gs, ws)
	}
	for tuple := range trace.Flows {
		gl, gok := got.Label(tuple)
		wl, wok := want.Label(tuple)
		if gok != wok || gl != wl {
			t.Errorf("flow %v: label (%v,%v) diverges from reference (%v,%v)", tuple, gl, gok, wl, wok)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServerEndToEnd streams a full trace through TCP and checks the
// drained server's engine agrees with a sequential in-process replay,
// verdict for verdict.
func TestServerEndToEnd(t *testing.T) {
	trace := testTrace(t, 80, 5)
	engine := newTestEngine(t, 2)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:    engine,
		Listeners: []net.Listener{l},
		Workers:   2,
	})
	if s.State() != StateHealthy {
		t.Fatalf("state after Start = %v, want healthy", s.State())
	}

	addr := l.Addr().String()
	client, err := NewClient(ClientConfig{Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	client.Close()

	// Drain covers accepted connections; a connection still in the listen
	// backlog when Shutdown closes the listener is never served. Wait for
	// the frames to be accounted before draining.
	waitFor(t, 10*time.Second, "frames received", func() bool {
		return s.Stats().Received == len(trace.Packets)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if s.State() != StateStopped {
		t.Fatalf("state after Shutdown = %v, want stopped", s.State())
	}

	st := s.Stats()
	assertConservation(t, st)
	if st.Quarantined != 0 || st.Shed != 0 {
		t.Errorf("clean replay quarantined %d, shed %d", st.Quarantined, st.Shed)
	}
	if st.Admitted != len(trace.Packets) {
		t.Errorf("admitted %d packets, sent %d", st.Admitted, len(trace.Packets))
	}
	assertEnginesMatch(t, trace, engine, replayReference(t, trace, 2))
}

// replayThrough replays a trace through a server built from cfg and
// returns the final stats after a clean drain.
func replayThrough(t *testing.T, trace *packet.Trace, cfg Config, addr string, s *Server) Stats {
	t.Helper()
	client, err := NewClient(ClientConfig{Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	client.Close()
	waitFor(t, 10*time.Second, "frames received", func() bool {
		return s.Stats().Received == len(trace.Packets)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	return s.Stats()
}

// TestServerPerPacketMode pins Batch: 1 as the legacy per-packet worker
// path, equivalent to the batched default.
func TestServerPerPacketMode(t *testing.T) {
	trace := testTrace(t, 60, 21)
	engine := newTestEngine(t, 2)
	l := listenLocal(t)
	cfg := Config{Engine: engine, Listeners: []net.Listener{l}, Workers: 2, Batch: 1}
	s := startServer(t, cfg)
	st := replayThrough(t, trace, cfg, l.Addr().String(), s)
	assertConservation(t, st)
	if st.Admitted != len(trace.Packets) {
		t.Errorf("admitted %d packets, sent %d", st.Admitted, len(trace.Packets))
	}
	assertEnginesMatch(t, trace, engine, replayReference(t, trace, 2))
}

// TestServerPipelinedEngine runs the server against an engine in
// pipelined mode: ingest workers enqueue batches to the shard workers, and
// Shutdown's barrier guarantees the drain flush sees every packet.
func TestServerPipelinedEngine(t *testing.T) {
	trace := testTrace(t, 60, 23)
	engine := newTestEngine(t, 2)
	if err := engine.StartPipeline(0); err != nil {
		t.Fatal(err)
	}
	l := listenLocal(t)
	cfg := Config{Engine: engine, Listeners: []net.Listener{l}, Workers: 2}
	s := startServer(t, cfg)
	st := replayThrough(t, trace, cfg, l.Addr().String(), s)
	ps := engine.PipelineStats()
	if err := engine.StopPipeline(); err != nil {
		t.Fatal(err)
	}
	if ps.Errors != 0 {
		t.Fatalf("pipeline errors: %+v", ps)
	}
	if ps.Processed != len(trace.Packets) {
		t.Errorf("pipeline processed %d packets, sent %d", ps.Processed, len(trace.Packets))
	}
	assertConservation(t, st)
	if st.Admitted != len(trace.Packets) {
		t.Errorf("admitted %d packets, sent %d", st.Admitted, len(trace.Packets))
	}
	assertEnginesMatch(t, trace, engine, replayReference(t, trace, 2))
}

// TestServerUnixSocket checks the same framing works over a unix socket
// listener.
func TestServerUnixSocket(t *testing.T) {
	trace := testTrace(t, 10, 7)
	engine := newTestEngine(t, 1)
	sock := t.TempDir() + "/ingest.sock"
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{Engine: engine, Listeners: []net.Listener{l}, Workers: 1})
	client, err := NewClient(ClientConfig{Dial: func() (net.Conn, error) { return net.Dial("unix", sock) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	client.Close()
	waitFor(t, 5*time.Second, "frames received", func() bool {
		return s.Stats().Received == len(trace.Packets)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := s.Stats()
	assertConservation(t, st)
	if st.Admitted != len(trace.Packets) {
		t.Errorf("admitted %d, want %d", st.Admitted, len(trace.Packets))
	}
}

// blockedEngineConfig builds a server whose workers are stalled by a
// PreProcess gate, so queue bounds are reached deterministically.
func stalledServer(t *testing.T, overflow OverflowPolicy, perConn int) (*Server, net.Listener, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:       newTestEngine(t, 1),
		Listeners:    []net.Listener{l},
		Workers:      1,
		QueueDepth:   1, // per-worker queue of 1
		PerConnQueue: perConn,
		Overflow:     overflow,
		PreProcess:   func(*packet.Packet) { <-gate },
	})
	return s, l, gate
}

// TestServerShedPolicy fills the queues against stalled workers and
// checks overflow packets are shed with the connection kept alive, the
// conservation law exact, and delivery resuming once the stall clears.
func TestServerShedPolicy(t *testing.T) {
	s, l, gate := stalledServer(t, OverflowShed, 2)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const sent = 20
	var buf []byte
	for i := 0; i < sent; i++ {
		p := testPacket(i)
		buf, err = AppendFrame(buf[:0], &p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "all frames accounted", func() bool {
		st := s.Stats()
		return st.Received == sent && st.Shed > 0
	})
	close(gate) // release the workers

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn.Close()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := s.Stats()
	assertConservation(t, st)
	if st.Shed == 0 || st.Admitted == 0 {
		t.Errorf("expected both shed and admitted packets, got %+v", st)
	}
	if st.Disconnected != 0 {
		t.Errorf("shed policy disconnected %d conns", st.Disconnected)
	}
}

// TestServerDisconnectPolicy checks overflow under the disconnect policy
// closes the offending connection.
func TestServerDisconnectPolicy(t *testing.T) {
	s, l, gate := stalledServer(t, OverflowDisconnect, 1)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf []byte
	for i := 0; i < 10; i++ {
		p := testPacket(i)
		buf, err = AppendFrame(buf[:0], &p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			break // server already cut us off
		}
	}
	waitFor(t, 5*time.Second, "disconnect", func() bool { return s.Stats().Disconnected >= 1 })
	// The server closed the connection: reads must see EOF/reset.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection still open after disconnect policy triggered")
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	assertConservation(t, s.Stats())
}

// TestServerIdleTimeout checks a silent connection is reaped by the idle
// deadline.
func TestServerIdleTimeout(t *testing.T) {
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:      newTestEngine(t, 1),
		Listeners:   []net.Listener{l},
		Workers:     1,
		IdleTimeout: 30 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitFor(t, 5*time.Second, "idle reap", func() bool { return s.Stats().TimedOut == 1 })
	waitFor(t, 5*time.Second, "conn closed", func() bool { return s.Stats().ActiveConns == 0 })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestServerQuarantineKeepsConnection writes garbage between valid frames
// on a live connection: the garbage is quarantined, the valid frames all
// arrive, and the connection survives.
func TestServerQuarantineKeepsConnection(t *testing.T) {
	l := listenLocal(t)
	s := startServer(t, Config{Engine: newTestEngine(t, 1), Listeners: []net.Listener{l}, Workers: 1})
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf []byte
	for i := 0; i < 5; i++ {
		if _, err := conn.Write([]byte("!garbage between frames!")); err != nil {
			t.Fatal(err)
		}
		p := testPacket(i)
		buf, err = AppendFrame(buf[:0], &p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "frames and quarantines", func() bool {
		st := s.Stats()
		return st.Admitted == 5 && st.Quarantined == 5
	})
	st := s.Stats()
	assertConservation(t, st)
	if st.ActiveConns != 1 {
		t.Errorf("connection did not survive quarantine: %d active", st.ActiveConns)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn.Close()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestServerSupervision injects worker panics through PreProcess: each
// poison packet crashes the worker, the supervisor restarts it with
// backoff, a crash loop trips the breaker into degraded (visible in the
// status text), and a healthy packet recovers the server.
func TestServerSupervision(t *testing.T) {
	const tripAfter = 3
	poison := func(p *packet.Packet) {
		if len(p.Payload) > 0 && p.Payload[0] == 0xEE {
			panic("ingest test: poison packet")
		}
	}
	status := listenLocal(t)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:         newTestEngine(t, 1),
		Listeners:      []net.Listener{l},
		StatusListener: status,
		Workers:        1,
		PreProcess:     poison,
		Supervision: SupervisorConfig{
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
			TripAfter:   tripAfter,
			Seed:        3,
		},
	})
	addr := l.Addr().String()
	client, err := NewClient(ClientConfig{Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) }})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < tripAfter; i++ {
		p := testPacket(i)
		p.Payload = []byte{0xEE, byte(i)}
		if err := client.Send(&p); err != nil {
			t.Fatalf("Send poison %d: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, "breaker trip", func() bool {
		st := s.Stats()
		return st.Supervisor.Panics >= tripAfter && st.Supervisor.BreakerOpen
	})
	if s.State() != StateDegraded {
		t.Fatalf("state = %v after crash loop, want degraded", s.State())
	}
	if got := statusDump(t, status.Addr().String()); !strings.Contains(got, "state: degraded") {
		t.Errorf("status text does not show degradation:\n%s", got)
	}

	good := testPacket(40)
	good.Payload = []byte{1, 2, 3}
	if err := client.Send(&good); err != nil {
		t.Fatalf("Send recovery packet: %v", err)
	}
	waitFor(t, 10*time.Second, "breaker recovery", func() bool { return s.State() == StateHealthy })
	if got := statusDump(t, status.Addr().String()); !strings.Contains(got, "state: healthy") {
		t.Errorf("status text does not show recovery:\n%s", got)
	}

	client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := s.Stats()
	assertConservation(t, st)
	if st.Supervisor.Restarts < tripAfter {
		t.Errorf("restarts = %d, want >= %d", st.Supervisor.Restarts, tripAfter)
	}
	// Panicked packets are admitted but never reach the engine; the good
	// packet must have.
	if st.Admitted != tripAfter+1 {
		t.Errorf("admitted = %d, want %d", st.Admitted, tripAfter+1)
	}
}

// statusDump reads one status document from the status listener.
func statusDump(t *testing.T, addr string) string {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial status: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	b, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("read status: %v", err)
	}
	return string(b)
}

// TestServerStatusText checks the status document carries the headline
// counters.
func TestServerStatusText(t *testing.T) {
	status := listenLocal(t)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:         newTestEngine(t, 2),
		Listeners:      []net.Listener{l},
		StatusListener: status,
		Workers:        2,
	})
	got := statusDump(t, status.Addr().String())
	for _, want := range []string{
		"state: healthy", "received: 0", "admitted: 0", "quarantined: 0",
		"shed: 0", "workers: 2", "breaker closed", "fallback-class: text",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("status text missing %q:\n%s", want, got)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !strings.Contains(s.StatusText(), "state: stopped") {
		t.Error("status text after shutdown does not show stopped")
	}
}

// TestServerDrainDeadline checks an expired drain context force-closes a
// stuck connection, accounts its blocked packet as shed, and still
// reaches stopped with the conservation law intact.
func TestServerDrainDeadline(t *testing.T) {
	s, l, gate := stalledServer(t, OverflowBlock, 1)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Fill the pipeline so the reader is blocked in enqueue: the worker
	// holds one packet (credit held until processed), so the reader
	// stalls acquiring the per-connection credit for the next one.
	var buf []byte
	for i := 0; i < 4; i++ {
		p := testPacket(i)
		buf, err = AppendFrame(buf[:0], &p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "pipeline full", func() bool { return s.Stats().Received >= 2 })

	// Release the worker stall only after the drain deadline has expired,
	// so Shutdown must force the blocked reader out.
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(gate)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = s.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("Shutdown error = %v, want drain deadline", err)
	}
	if s.State() != StateStopped {
		t.Fatalf("state = %v after forced drain, want stopped", s.State())
	}
	assertConservation(t, s.Stats())
}

// TestParseOverflowPolicy round-trips the flag values.
func TestParseOverflowPolicy(t *testing.T) {
	for _, p := range []OverflowPolicy{OverflowBlock, OverflowShed, OverflowDisconnect} {
		got, err := ParseOverflowPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseOverflowPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseOverflowPolicy("nope"); err == nil {
		t.Error("ParseOverflowPolicy accepted garbage")
	}
}

// TestNewServerValidation checks config validation rejects broken setups.
func TestNewServerValidation(t *testing.T) {
	l := listenLocal(t)
	defer l.Close()
	engine := newTestEngine(t, 1)
	cases := map[string]Config{
		"no engine":      {Listeners: []net.Listener{l}},
		"no listeners":   {Engine: engine},
		"neg workers":    {Engine: engine, Listeners: []net.Listener{l}, Workers: -1},
		"neg queue":      {Engine: engine, Listeners: []net.Listener{l}, QueueDepth: -1},
		"neg conn queue": {Engine: engine, Listeners: []net.Listener{l}, PerConnQueue: -1},
		"bad overflow":   {Engine: engine, Listeners: []net.Listener{l}, Overflow: OverflowPolicy(9)},
		"bad fallback":   {Engine: engine, Listeners: []net.Listener{l}, FallbackClass: corpus.Class(99)},
		"neg batch":      {Engine: engine, Listeners: []net.Listener{l}, Batch: -1},
	}
	for name, cfg := range cases {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("%s: NewServer accepted invalid config", name)
		}
	}
}

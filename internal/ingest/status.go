package ingest

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
)

// This file is the machine-readable half of the status listener: alongside
// the human-oriented dump, every status document carries exactly one
// single-line record of the form
//
//	STATUS node=<name> state=<state> k=v ...
//
// that a cluster router (internal/cluster) or an e2e harness can parse
// without scraping the prose. The line carries the node's health state,
// the transport conservation counters (Received, Admitted, Quarantined,
// Shed — the §9 law), the engine verdict counters, the per-class queue
// depths, and the age of the last checkpoint.

// statusLinePrefix marks the machine-readable line inside a status dump.
const statusLinePrefix = "STATUS "

// NoCheckpoint is the CheckpointAge value meaning no checkpoint has been
// written yet (rendered as checkpoint_age_ms=-1).
const NoCheckpoint = time.Duration(-1)

// NodeStatus is the parsed form of one machine-readable STATUS line: the
// cluster-visible identity, health, and counters of one serve instance.
type NodeStatus struct {
	// Node is the instance's cluster name (Config.NodeName).
	Node string
	// State is the health FSM state at snapshot time.
	State State
	// Transport conservation counters: Received == Admitted + Quarantined
	// + Shed at every snapshot.
	Received, Admitted, Quarantined, Shed int
	// Engine verdict counters (flow-level, not packet-level).
	EngineAdmitted, EngineClassified, EnginePending int
	EngineFallback, EngineShed, EngineDropped       int
	// Queue holds per-class routed-packet counts, indexed by
	// corpus.Class — the verdict distribution a cluster-wide replay
	// comparison sums across nodes.
	Queue [corpus.NumClasses]int
	// SeenSeq is the highest delivery sequence observed; AckedSeq is the
	// watermark covered by the last durable node checkpoint. A router
	// trims its replay journal up to AckedSeq and quiesces a migration
	// source by waiting for SeenSeq to reach its last sent sequence.
	SeenSeq, AckedSeq uint64
	// Deduped counts duplicate sequenced frames discarded before the
	// engine (also counted in Received and Shed).
	Deduped int
	// MigratedIn/MigratedOut count flows that arrived or left via
	// flow-table migration.
	MigratedIn, MigratedOut int
	// CheckpointAge is how long ago the last checkpoint was written, or
	// NoCheckpoint if none has been.
	CheckpointAge time.Duration
	// Uptime is how long the node has been started. Zero when the line
	// came from a server that predates the uptime_ms key.
	Uptime time.Duration
	// Stream names the engine's sketch backend when it runs in
	// constant-memory stream mode ("lall", "cc"), empty for a buffered
	// engine. A router uses it to spot mixed-mode clusters.
	Stream string
}

// ConservationGap returns Received - (Admitted + Quarantined + Shed); a
// healthy snapshot reports zero.
func (ns NodeStatus) ConservationGap() int {
	return ns.Received - (ns.Admitted + ns.Quarantined + ns.Shed)
}

// StatusLine renders the single machine-readable line (no trailing
// newline).
func (ns NodeStatus) StatusLine() string {
	age := int64(-1)
	if ns.CheckpointAge >= 0 {
		age = ns.CheckpointAge.Milliseconds()
	}
	// stream= is appended only in stream mode so buffered nodes render the
	// exact line older parsers were built against.
	var stream string
	if ns.Stream != "" {
		stream = " stream=" + ns.Stream
	}
	return fmt.Sprintf(statusLinePrefix+
		"node=%s state=%s received=%d admitted=%d quarantined=%d shed=%d "+
		"engine_admitted=%d engine_classified=%d engine_pending=%d "+
		"engine_fallback=%d engine_shed=%d engine_dropped=%d "+
		"q_text=%d q_binary=%d q_encrypted=%d "+
		"seen_seq=%d acked_seq=%d deduped=%d migrated_in=%d migrated_out=%d "+
		"uptime_ms=%d checkpoint_age_ms=%d%s",
		ns.Node, ns.State,
		ns.Received, ns.Admitted, ns.Quarantined, ns.Shed,
		ns.EngineAdmitted, ns.EngineClassified, ns.EnginePending,
		ns.EngineFallback, ns.EngineShed, ns.EngineDropped,
		ns.Queue[corpus.Text], ns.Queue[corpus.Binary], ns.Queue[corpus.Encrypted],
		ns.SeenSeq, ns.AckedSeq, ns.Deduped, ns.MigratedIn, ns.MigratedOut,
		ns.Uptime.Milliseconds(), age, stream)
}

// ParseState maps a State.String() value back to its State.
func ParseState(s string) (State, error) {
	for st := StateStarting; st <= StateStopped; st++ {
		if s == st.String() {
			return st, nil
		}
	}
	return 0, fmt.Errorf("ingest: unknown state %q", s)
}

// ParseStatusLine extracts and parses the STATUS line from a status
// document (or accepts the bare line itself). Unknown keys are ignored so
// newer servers stay parseable by older routers; missing required keys
// (node, state) are an error.
func ParseStatusLine(doc string) (NodeStatus, error) {
	var line string
	for _, l := range strings.Split(doc, "\n") {
		if strings.HasPrefix(l, statusLinePrefix) {
			line = strings.TrimSpace(strings.TrimPrefix(l, statusLinePrefix))
			break
		}
	}
	if line == "" {
		return NodeStatus{}, fmt.Errorf("ingest: no STATUS line in document")
	}
	ns := NodeStatus{CheckpointAge: NoCheckpoint}
	seen := map[string]bool{}
	for _, field := range strings.Fields(line) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return NodeStatus{}, fmt.Errorf("ingest: malformed STATUS field %q", field)
		}
		seen[key] = true
		var err error
		switch key {
		case "node":
			ns.Node = val
		case "state":
			ns.State, err = ParseState(val)
		case "received":
			ns.Received, err = strconv.Atoi(val)
		case "admitted":
			ns.Admitted, err = strconv.Atoi(val)
		case "quarantined":
			ns.Quarantined, err = strconv.Atoi(val)
		case "shed":
			ns.Shed, err = strconv.Atoi(val)
		case "engine_admitted":
			ns.EngineAdmitted, err = strconv.Atoi(val)
		case "engine_classified":
			ns.EngineClassified, err = strconv.Atoi(val)
		case "engine_pending":
			ns.EnginePending, err = strconv.Atoi(val)
		case "engine_fallback":
			ns.EngineFallback, err = strconv.Atoi(val)
		case "engine_shed":
			ns.EngineShed, err = strconv.Atoi(val)
		case "engine_dropped":
			ns.EngineDropped, err = strconv.Atoi(val)
		case "q_text":
			ns.Queue[corpus.Text], err = strconv.Atoi(val)
		case "q_binary":
			ns.Queue[corpus.Binary], err = strconv.Atoi(val)
		case "q_encrypted":
			ns.Queue[corpus.Encrypted], err = strconv.Atoi(val)
		case "seen_seq":
			ns.SeenSeq, err = strconv.ParseUint(val, 10, 64)
		case "acked_seq":
			ns.AckedSeq, err = strconv.ParseUint(val, 10, 64)
		case "deduped":
			ns.Deduped, err = strconv.Atoi(val)
		case "migrated_in":
			ns.MigratedIn, err = strconv.Atoi(val)
		case "migrated_out":
			ns.MigratedOut, err = strconv.Atoi(val)
		case "stream":
			ns.Stream = val
		case "uptime_ms":
			var ms int64
			ms, err = strconv.ParseInt(val, 10, 64)
			ns.Uptime = time.Duration(ms) * time.Millisecond
		case "checkpoint_age_ms":
			var ms int64
			ms, err = strconv.ParseInt(val, 10, 64)
			if ms < 0 {
				ns.CheckpointAge = NoCheckpoint
			} else {
				ns.CheckpointAge = time.Duration(ms) * time.Millisecond
			}
		default:
			// Forward compatibility: skip keys this parser predates.
		}
		if err != nil {
			return NodeStatus{}, fmt.Errorf("ingest: STATUS field %s=%q: %v", key, val, err)
		}
	}
	if !seen["node"] || !seen["state"] {
		return NodeStatus{}, fmt.Errorf("ingest: STATUS line missing node/state: %q", line)
	}
	return ns, nil
}

// NodeStatus assembles the machine-readable snapshot the status listener
// serves: ingest counters, engine counters, and checkpoint age.
func (s *Server) NodeStatus() NodeStatus {
	return s.nodeStatusFrom(s.Stats(), s.cfg.Engine.Stats())
}

// nodeStatusFrom builds the snapshot from counters the caller already
// holds, so StatusText renders prose and STATUS line from one snapshot.
func (s *Server) nodeStatusFrom(st Stats, es flow.EngineStats) NodeStatus {
	ns := NodeStatus{
		Node:             s.cfg.NodeName,
		State:            st.State,
		Received:         st.Received,
		Admitted:         st.Admitted,
		Quarantined:      st.Quarantined,
		Shed:             st.Shed,
		EngineAdmitted:   es.Admitted,
		EngineClassified: es.Classified,
		EnginePending:    es.Pending,
		EngineFallback:   es.Fallback,
		EngineShed:       es.Shed,
		EngineDropped:    es.Dropped,
		Queue:            es.QueueCounts,
		SeenSeq:          st.SeenSeq,
		AckedSeq:         st.AckedSeq,
		Deduped:          st.Deduped,
		MigratedIn:       es.MigratedIn,
		MigratedOut:      es.MigratedOut,
		CheckpointAge:    NoCheckpoint,
		Uptime:           s.Uptime(),
		Stream:           s.cfg.StreamMode,
	}
	if s.cfg.CheckpointTime != nil {
		if t := s.cfg.CheckpointTime(); !t.IsZero() {
			ns.CheckpointAge = time.Since(t)
			if ns.CheckpointAge < 0 {
				ns.CheckpointAge = 0
			}
		}
	}
	return ns
}

package ingest

import (
	"testing"
	"time"
)

func TestBackoffFor(t *testing.T) {
	base, max := 10*time.Millisecond, 2*time.Second
	cases := []struct {
		n    int
		want time.Duration
	}{
		{0, 10 * time.Millisecond}, // clamped to n=1
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 40 * time.Millisecond},
		{8, 1280 * time.Millisecond},
		{9, 2 * time.Second}, // capped
		{50, 2 * time.Second},
	}
	for _, tc := range cases {
		if got := backoffFor(base, max, tc.n, nil); got != tc.want {
			t.Errorf("backoffFor(n=%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	s := newSupervisor(SupervisorConfig{BackoffBase: 10 * time.Millisecond, BackoffMax: 100 * time.Millisecond, Seed: 1}, 1, nil, nil)
	for i := 0; i < 200; i++ {
		d := backoffFor(10*time.Millisecond, 100*time.Millisecond, i+1, s.rng)
		if d < 10*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("crash %d: backoff %v outside [base, max]", i+1, d)
		}
	}
}

// TestSupervisorBreaker drives the crash-streak/recovery cycle: TripAfter
// consecutive panics open the breaker and fire onTrip exactly once; one
// success closes it and fires onRecover.
func TestSupervisorBreaker(t *testing.T) {
	trips, recovers := 0, 0
	s := newSupervisor(SupervisorConfig{TripAfter: 3, Seed: 1}, 2,
		func() { trips++ }, func() { recovers++ })

	s.recordPanic()
	s.recordPanic()
	if st := s.stats(); st.BreakerOpen || trips != 0 {
		t.Fatalf("breaker open after 2/3 crashes: %+v", st)
	}
	s.recordPanic()
	if st := s.stats(); !st.BreakerOpen || trips != 1 {
		t.Fatalf("breaker not open after 3 crashes: %+v (trips %d)", st, trips)
	}
	s.recordPanic() // deeper into the loop: no second trip
	if trips != 1 {
		t.Fatalf("breaker re-tripped while open: trips = %d", trips)
	}

	s.recordSuccess()
	st := s.stats()
	if st.BreakerOpen || st.ConsecutiveCrashes != 0 {
		t.Fatalf("breaker still open after success: %+v", st)
	}
	if recovers != 1 {
		t.Fatalf("onRecover fired %d times, want 1", recovers)
	}
	if st.Panics != 4 || st.Restarts != 4 {
		t.Fatalf("panics/restarts = %d/%d, want 4/4", st.Panics, st.Restarts)
	}

	s.recordSuccess() // idempotent on the fast path
	if recovers != 1 {
		t.Fatalf("onRecover refired on steady-state success")
	}
}

// TestSupervisorBackoffGrowsWithStreak checks each consecutive crash
// backs off at least as long (modulo jitter, which only adds).
func TestSupervisorBackoffGrowsWithStreak(t *testing.T) {
	s := newSupervisor(SupervisorConfig{BackoffBase: time.Millisecond, BackoffMax: time.Second, TripAfter: -1}, 1, nil, nil)
	floor := time.Duration(0)
	for i := 1; i <= 8; i++ {
		d := s.recordPanic()
		want := backoffFor(time.Millisecond, time.Second, i, nil)
		if d < want {
			t.Fatalf("crash %d: backoff %v below deterministic floor %v", i, d, want)
		}
		if want < floor {
			t.Fatalf("deterministic floor shrank: %v after %v", want, floor)
		}
		floor = want
	}
}

func TestHealthFSM(t *testing.T) {
	var h healthFSM
	if h.state() != StateStarting {
		t.Fatalf("zero state = %v, want starting", h.state())
	}
	if h.to(StateStopped) {
		t.Error("starting → stopped allowed")
	}
	if h.to(StateDegraded) {
		t.Error("starting → degraded allowed")
	}
	if !h.to(StateHealthy) || h.state() != StateHealthy {
		t.Fatal("starting → healthy refused")
	}
	if !h.to(StateDegraded) || !h.to(StateHealthy) {
		t.Fatal("healthy ⇄ degraded refused")
	}
	if !h.to(StateDegraded) || !h.to(StateDraining) {
		t.Fatal("degraded → draining refused")
	}
	if h.to(StateHealthy) || h.to(StateDegraded) {
		t.Error("draining allowed a transition back")
	}
	if !h.to(StateStopped) {
		t.Fatal("draining → stopped refused")
	}
	if h.to(StateDraining) || h.to(StateHealthy) {
		t.Error("stopped allowed a transition out")
	}
}

package ingest

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"testing"
	"time"

	"iustitia/internal/flow"
	"iustitia/internal/persist"
)

// TestFrameSeqRoundTrip interleaves version-1 and version-2 frames on one
// stream: the reader must decode both and report the carried sequence (or
// zero) per frame.
func TestFrameSeqRoundTrip(t *testing.T) {
	trace := testTrace(t, 4, 51)
	var buf []byte
	var err error
	wantSeqs := []uint64{7, 0, 8, 1 << 40}
	for i, seq := range wantSeqs {
		p := &trace.Packets[i%len(trace.Packets)]
		if seq == 0 {
			buf, err = AppendFrame(buf, p)
		} else {
			buf, err = AppendFrameSeq(buf, p, seq)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	fr := NewFrameReader(bytes.NewReader(buf), 0, nil)
	for i, want := range wantSeqs {
		if _, err := fr.Next(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := fr.LastSeq(); got != want {
			t.Errorf("frame %d: LastSeq %d, want %d", i, got, want)
		}
	}
	if fr.Quarantined() != 0 {
		t.Errorf("clean stream quarantined %d events", fr.Quarantined())
	}
}

// TestFrameSeqZeroRejected pins both halves of the zero-sequence rule:
// the writer refuses to emit it, and a hand-tampered version-2 frame
// carrying sequence 0 is quarantined (it would corrupt dedup state),
// without losing the valid frame behind it.
func TestFrameSeqZeroRejected(t *testing.T) {
	trace := testTrace(t, 2, 52)
	if _, err := AppendFrameSeq(nil, &trace.Packets[0], 0); err == nil {
		t.Error("AppendFrameSeq accepted sequence 0")
	}

	tampered, err := AppendFrameSeq(nil, &trace.Packets[0], 9)
	if err != nil {
		t.Fatal(err)
	}
	// The CRC covers the payload only, so zeroing the header's sequence
	// field forges exactly the corruption the reader must catch.
	binary.BigEndian.PutUint64(tampered[11:19], 0)
	good, err := AppendFrameSeq(nil, &trace.Packets[1], 10)
	if err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(bytes.NewReader(append(tampered, good...)), 0, nil)
	if _, err := fr.Next(); err != nil {
		t.Fatalf("valid trailing frame lost: %v", err)
	}
	if got := fr.LastSeq(); got != 10 {
		t.Errorf("LastSeq %d, want the trailing frame's 10", got)
	}
	if fr.Quarantined() == 0 {
		t.Error("zero-sequence frame not quarantined")
	}
}

// TestNodeCheckpointRoundTrip pins the node-checkpoint payload codec.
func TestNodeCheckpointRoundTrip(t *testing.T) {
	seq, ckpt, pend := uint64(12345), []byte("engine-bytes"), []byte("pending-bytes")
	gotSeq, gotCkpt, gotPend, err := DecodeNodeCheckpoint(EncodeNodeCheckpoint(seq, ckpt, pend))
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq || !bytes.Equal(gotCkpt, ckpt) || !bytes.Equal(gotPend, pend) {
		t.Errorf("round trip: seq=%d ckpt=%q pend=%q", gotSeq, gotCkpt, gotPend)
	}
	if _, _, _, err := DecodeNodeCheckpoint([]byte{1, 2, 3}); err == nil {
		t.Error("truncated payload decoded")
	}
}

// TestServerDedupesReplayedSequences is the receiver half of crash
// replay: a sequenced frame at or below the high-water mark is counted
// Received and Shed (the conservation law still balances) but never
// reaches the engine, so a router replaying its journal after a node
// crash cannot double-count a packet the node's state already covers.
func TestServerDedupesReplayedSequences(t *testing.T) {
	engine := newTestEngine(t, 2)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:    engine,
		Listeners: []net.Listener{l},
		Workers:   2,
	})

	trace := testTrace(t, 6, 53)
	cl, err := NewClient(ClientConfig{
		Dial: func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) },
	})
	if err != nil {
		t.Fatal(err)
	}

	send := func(i int, seq uint64) {
		t.Helper()
		if err := cl.SendSeq(&trace.Packets[i], seq); err != nil {
			t.Fatalf("send %d seq %d: %v", i, seq, err)
		}
	}
	send(0, 1)
	send(1, 2)
	send(2, 3)
	// Replay of 2 and 3 — identical frames, as the router journal resends.
	send(1, 2)
	send(2, 3)
	// Fresh traffic after the replay continues the stream.
	send(3, 4)
	// A version-1 frame bypasses dedup entirely.
	if err := cl.Send(&trace.Packets[4]); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	waitFor(t, 5*time.Second, "frames to arrive", func() bool {
		return s.Stats().Received == 7
	})
	st := s.Stats()
	assertConservation(t, st)
	if st.Deduped != 2 || st.Shed != 2 {
		t.Errorf("deduped %d, shed %d, want 2/2: %+v", st.Deduped, st.Shed, st)
	}
	if st.Admitted != 5 {
		t.Errorf("admitted %d, want 5 (duplicates must not reach the engine)", st.Admitted)
	}
	if st.SeenSeq != 4 {
		t.Errorf("seen_seq %d, want 4", st.SeenSeq)
	}
	// With no checkpoint hook there is nothing to persist: observation is
	// as durable as it gets, so acked tracks seen.
	if st.AckedSeq != 4 {
		t.Errorf("acked_seq %d, want 4", st.AckedSeq)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServerResumeSeqPrimesDedup pins the restart half of crash replay: a
// server restored from a node checkpoint primes its watermark from
// ResumeSeq, so replayed frames whose effects the restored state already
// contains are discarded while post-checkpoint frames are reprocessed.
func TestServerResumeSeqPrimesDedup(t *testing.T) {
	engine := newTestEngine(t, 2)
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:    engine,
		Listeners: []net.Listener{l},
		Workers:   2,
		ResumeSeq: 10,
	})
	if st := s.Stats(); st.SeenSeq != 10 {
		t.Fatalf("fresh server seen_seq %d, want primed 10", st.SeenSeq)
	}

	trace := testTrace(t, 4, 54)
	cl, err := NewClient(ClientConfig{
		Dial: func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range []uint64{9, 10, 11, 12} {
		if err := cl.SendSeq(&trace.Packets[i], seq); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	waitFor(t, 5*time.Second, "frames to arrive", func() bool {
		return s.Stats().Received == 4
	})
	st := s.Stats()
	assertConservation(t, st)
	if st.Deduped != 2 || st.Admitted != 2 || st.SeenSeq != 12 {
		t.Errorf("deduped=%d admitted=%d seen=%d, want 2/2/12: %+v",
			st.Deduped, st.Admitted, st.SeenSeq, st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointNowAdvancesAck pins the quiesced checkpoint path: the
// payload captures a consistent watermark and the acked_seq the STATUS
// line reports advances only after the hook succeeds.
func TestCheckpointNowAdvancesAck(t *testing.T) {
	engine := newTestEngine(t, 2)
	l := listenLocal(t)
	var saved []byte
	hookErr := fmt.Errorf("disk full")
	s := startServer(t, Config{
		Engine:    engine,
		Listeners: []net.Listener{l},
		Workers:   2,
		NodeCheckpoint: func(payload []byte) error {
			if hookErr != nil {
				return hookErr
			}
			saved = append([]byte(nil), payload...)
			return nil
		},
	})

	trace := testTrace(t, 4, 55)
	cl, err := NewClient(ClientConfig{
		Dial: func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := cl.SendSeq(&trace.Packets[i], uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	waitFor(t, 5*time.Second, "frames to arrive", func() bool {
		return s.Stats().Received == 4
	})

	if err := s.CheckpointNow(); err == nil {
		t.Error("failing hook reported success")
	}
	if st := s.Stats(); st.AckedSeq != 0 {
		t.Errorf("acked_seq %d advanced past a failed checkpoint", st.AckedSeq)
	}

	hookErr = nil
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.AckedSeq != 4 {
		t.Errorf("acked_seq %d, want 4 after a successful checkpoint", st.AckedSeq)
	}
	seq, _, _, err := DecodeNodeCheckpoint(saved)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Errorf("checkpoint watermark %d, want 4", seq)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStatusConnExportImport drives the migration verbs end to end over
// the status listener: every flow EXPORTed from one live server lands in
// another via IMPORT, classified state intact and readable on exactly one
// side.
func TestStatusConnExportImport(t *testing.T) {
	engA, engB := newTestEngine(t, 2), newTestEngine(t, 1)
	lA, stA := listenLocal(t), listenLocal(t)
	lB, stB := listenLocal(t), listenLocal(t)
	a := startServer(t, Config{
		Engine: engA, Listeners: []net.Listener{lA}, StatusListener: stA, Workers: 2,
	})
	b := startServer(t, Config{
		Engine: engB, Listeners: []net.Listener{lB}, StatusListener: stB, Workers: 2,
	})

	trace := testTrace(t, 20, 56)
	cl, err := NewClient(ClientConfig{
		Dial: func() (net.Conn, error) { return net.Dial("tcp", lA.Addr().String()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if err := cl.Send(&trace.Packets[i]); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	waitFor(t, 5*time.Second, "frames to arrive", func() bool {
		return a.Stats().Received == len(trace.Packets)
	})
	waitFor(t, 5*time.Second, "packets processed", func() bool {
		es := engA.Stats()
		return es.Admitted > 0 && a.Stats().Admitted == len(trace.Packets)
	})

	// EXPORT the full hash space: every pending flow and CDB record moves.
	c, err := net.Dial("tcp", stA.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(c, "EXPORT 0-%x\n", ^uint64(0))
	var n int
	if _, err := fmt.Fscanf(c, "BLOB %d\n", &n); err != nil {
		t.Fatalf("EXPORT reply: %v", err)
	}
	frame := make([]byte, n)
	if _, err := readFull(c, frame); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := persist.DecodeKind(frame, persist.KindMigration); err != nil {
		t.Fatalf("EXPORT frame: %v", err)
	}

	c, err = net.Dial("tcp", stB.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(c, "IMPORT %d\n", len(frame))
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	var k int
	if _, err := fmt.Fscanf(c, "OK imported=%d\n", &k); err != nil {
		t.Fatalf("IMPORT reply: %v", err)
	}
	c.Close()
	if k == 0 {
		t.Fatal("IMPORT landed zero flows")
	}

	// Each classified flow's verdict is now readable on B and only B; the
	// per-engine law Admitted == Classified+Fallback+Dropped+Pending holds
	// on both sides of the move.
	moved := 0
	for tuple := range trace.Flows {
		if _, ok := engA.RecordedLabel(tuple); ok {
			t.Errorf("flow %v still readable on the exporting node", tuple)
		}
		if _, ok := engB.RecordedLabel(tuple); ok {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no migrated verdict readable on the importing node")
	}
	for name, es := range map[string]flow.EngineStats{"a": engA.Stats(), "b": engB.Stats()} {
		if es.Admitted != es.Classified+es.Fallback+es.Dropped+es.Pending {
			t.Errorf("engine %s law violated after migration: %+v", name, es)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// readFull reads exactly len(buf) bytes from c.
func readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Package ingest is Iustitia's network boundary: a framed packet-ingest
// server that feeds flow.ParallelEngine from TCP or unix-socket clients,
// engineered for the failure modes a real deployment hits — slow clients,
// torn frames, disconnects, overload, and crash-looping workers. It
// extends the DESIGN.md §6 overload model across the wire: every frame a
// client sends is accounted exactly once, so
//
//	Received == Admitted + Quarantined + Shed
//
// holds at all times, the transport-level twin of the engine's
// Admitted == Classified + Fallback + Dropped + Pending invariant.
package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"iustitia/internal/packet"
)

// Frame format: a fixed self-delimiting header so a reader that lands in
// the middle of garbage can resynchronize by scanning for the magic:
//
//	[0] 'I'  [1] 'G'  [2] version (1 or 2)
//	[3:7]  payload length, uint32 BE
//	[7:11] crc32-IEEE of the payload, uint32 BE
//	[11:19] delivery sequence, uint64 BE   (version 2 only)
//	then   payload: one packet in the internal/packet wire encoding
//
// Version 2 frames carry a per-sender delivery sequence number used by
// the cluster router's replay journal: the receiver keeps a high-water
// mark and treats a frame at or below it as a duplicate, so replaying a
// journaled frame after a node crash can never double-count a packet.
// Version 1 frames (sequence 0) bypass deduplication entirely, keeping
// plain clients unchanged.
//
// A malformed frame — bad magic, bad version, implausible length, CRC
// mismatch, undecodable packet — is *quarantined*: the reader counts one
// event per contiguous run of bad bytes, skips forward to the next
// plausible header, and keeps the connection alive. One corrupt frame
// must cost one counter increment, not the whole connection.
const (
	frameMagic0       = 'I'
	frameMagic1       = 'G'
	frameVersion      = 1
	frameVersionSeq   = 2
	frameHeaderSize   = 11
	frameHeaderSeqLen = 8
)

// DefaultMaxFrame is the default bound on a frame's payload length: a
// maximum wire-encoded packet plus header slack. Headers declaring more
// are treated as garbage, so a hostile 4-byte length field cannot stall
// the reader waiting for gigabytes.
const DefaultMaxFrame = packet.MaxWirePayload + 64

// AppendFrame appends one framed packet to dst and returns the extended
// slice. The same buffer can be reused across calls to avoid allocation.
func AppendFrame(dst []byte, p *packet.Packet) ([]byte, error) {
	start := len(dst)
	dst = append(dst, frameMagic0, frameMagic1, frameVersion, 0, 0, 0, 0, 0, 0, 0, 0)
	dst, err := packet.AppendWire(dst, p)
	if err != nil {
		return dst[:start], err
	}
	body := dst[start+frameHeaderSize:]
	binary.BigEndian.PutUint32(dst[start+3:start+7], uint32(len(body)))
	binary.BigEndian.PutUint32(dst[start+7:start+11], crc32.ChecksumIEEE(body))
	return dst, nil
}

// AppendFrameSeq appends one version-2 framed packet carrying a delivery
// sequence number. seq must be non-zero: zero is the "no sequence"
// sentinel a version-1 frame reports.
func AppendFrameSeq(dst []byte, p *packet.Packet, seq uint64) ([]byte, error) {
	if seq == 0 {
		return dst, fmt.Errorf("ingest: sequence 0 is reserved for unsequenced frames")
	}
	start := len(dst)
	dst = append(dst, frameMagic0, frameMagic1, frameVersionSeq,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	dst, err := packet.AppendWire(dst, p)
	if err != nil {
		return dst[:start], err
	}
	hdrLen := frameHeaderSize + frameHeaderSeqLen
	body := dst[start+hdrLen:]
	binary.BigEndian.PutUint32(dst[start+3:start+7], uint32(len(body)))
	binary.BigEndian.PutUint32(dst[start+7:start+11], crc32.ChecksumIEEE(body))
	binary.BigEndian.PutUint64(dst[start+11:start+hdrLen], seq)
	return dst, nil
}

// FrameReader decodes framed packets from a byte stream with resync: bad
// bytes are quarantined and skipped instead of killing the stream.
type FrameReader struct {
	br           *bufio.Reader
	max          int
	onQuarantine func()
	inGarbage    bool
	quarantined  int
	lastSeq      uint64
}

// NewFrameReader wraps r. maxFrame bounds the payload length a header may
// declare (<= 0 selects DefaultMaxFrame); onQuarantine, when non-nil, is
// invoked once per quarantine event.
func NewFrameReader(r io.Reader, maxFrame int, onQuarantine func()) *FrameReader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameReader{
		br:           bufio.NewReaderSize(r, frameHeaderSize+frameHeaderSeqLen+maxFrame),
		max:          maxFrame,
		onQuarantine: onQuarantine,
	}
}

// LastSeq returns the delivery sequence carried by the most recent frame
// Next returned: zero for a version-1 frame, non-zero for version 2.
func (fr *FrameReader) LastSeq() uint64 { return fr.lastSeq }

// Quarantined returns how many quarantine events the reader has recorded:
// contiguous runs of garbage, torn frames, CRC mismatches, undecodable
// packets.
func (fr *FrameReader) Quarantined() int { return fr.quarantined }

// quarantine records one event per contiguous run of bad bytes. The run
// ends when the next valid frame decodes.
func (fr *FrameReader) quarantine() {
	if fr.inGarbage {
		return
	}
	fr.inGarbage = true
	fr.quarantined++
	if fr.onQuarantine != nil {
		fr.onQuarantine()
	}
}

// Next returns the next valid packet, quarantining and skipping any
// malformed bytes in between. It returns an error only when the stream
// itself ends or fails (io.EOF, deadline expiry, reset); a torn frame at
// the end of the stream is quarantined before the error is returned.
func (fr *FrameReader) Next() (packet.Packet, error) {
	for {
		hdr, err := fr.br.Peek(frameHeaderSize)
		if err != nil {
			// Stream over with a partial header buffered: a torn frame.
			if len(hdr) > 0 {
				fr.quarantine()
				_, _ = fr.br.Discard(len(hdr))
			}
			return packet.Packet{}, err
		}
		if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 ||
			(hdr[2] != frameVersion && hdr[2] != frameVersionSeq) {
			fr.quarantine()
			_, _ = fr.br.Discard(1)
			continue
		}
		hdrLen := frameHeaderSize
		if hdr[2] == frameVersionSeq {
			hdrLen += frameHeaderSeqLen
		}
		length := int(binary.BigEndian.Uint32(hdr[3:7]))
		if length == 0 || length > fr.max {
			// Never trust a hostile length: skip one byte and rescan
			// rather than discarding what might be valid frames.
			fr.quarantine()
			_, _ = fr.br.Discard(1)
			continue
		}
		// hdr is only valid until the next Peek: growing the window may
		// slide the buffer and shift the bytes hdr points at. Everything
		// needed from the header must be extracted before peeking again.
		wantCRC := binary.BigEndian.Uint32(hdr[7:11])
		full, err := fr.br.Peek(hdrLen + length)
		if err != nil {
			// Stream over mid-payload: a torn frame.
			fr.quarantine()
			_, _ = fr.br.Discard(fr.br.Buffered())
			return packet.Packet{}, err
		}
		var seq uint64
		if hdrLen > frameHeaderSize {
			seq = binary.BigEndian.Uint64(full[frameHeaderSize:hdrLen])
			if seq == 0 {
				// A sequenced frame must carry a real sequence; zero is
				// the unsequenced sentinel and would corrupt dedup state.
				fr.quarantine()
				_, _ = fr.br.Discard(1)
				continue
			}
		}
		body := full[hdrLen:]
		if crc32.ChecksumIEEE(body) != wantCRC {
			fr.quarantine()
			_, _ = fr.br.Discard(1)
			continue
		}
		pkt, err := packet.DecodeWire(body)
		if err != nil {
			fr.quarantine()
			_, _ = fr.br.Discard(1)
			continue
		}
		_, _ = fr.br.Discard(hdrLen + length)
		fr.inGarbage = false
		fr.lastSeq = seq
		return pkt, nil
	}
}

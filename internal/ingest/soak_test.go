package ingest

import (
	"context"
	"net"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
	"iustitia/internal/persist"
)

// TestChaosConnSoak is the acceptance test for the networked ingest path:
// a full trace is replayed through a chaos transport that chunks writes,
// injects stalls, and tears the connection mid-frame several times. The
// reconnecting client must deliver every packet exactly once despite the
// tears — the server-side engine ends byte-for-byte equivalent to a
// sequential in-process replay — the conservation law must hold exactly,
// and the graceful drain must produce a checkpoint a fresh engine can
// resume from.
func TestChaosConnSoak(t *testing.T) {
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 150
	cfg.Duration = 10 * time.Second
	cfg.MaxFlowBytes = 4 << 10
	cfg.Seed = 42
	trace := testTraceFrom(t, cfg)

	// Size the reset schedule off the actual byte volume so the tears
	// land spread across the replay, whatever the trace generator emits.
	totalBytes := 0
	var buf []byte
	for i := range trace.Packets {
		var err error
		buf, err = AppendFrame(buf[:0], &trace.Packets[i])
		if err != nil {
			t.Fatal(err)
		}
		totalBytes += len(buf)
	}
	chaos := NewConnChaos(ConnChaosConfig{
		Seed:       7,
		ChunkRate:  0.25,
		StallEvery: 200,
		Stall:      time.Millisecond,
		ResetEvery: totalBytes / 8,
		MaxResets:  6,
	})

	engine := newTestEngine(t, 2)
	var checkpoint []byte
	l := listenLocal(t)
	s := startServer(t, Config{
		Engine:            engine,
		Listeners:         []net.Listener{l},
		Workers:           2,
		Overflow:          OverflowBlock,
		ReadTimeout:       5 * time.Second,
		IdleTimeout:       5 * time.Second,
		OnFinalCheckpoint: func(snap []byte) { checkpoint = snap },
	})

	addr := l.Addr().String()
	client, err := NewClient(ClientConfig{
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return chaos.Wrap(c), nil
		},
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if err := client.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}

	// Every packet must land despite the tears: wait for the last frames
	// to clear the workers, then drain.
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().Admitted != len(trace.Packets) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: sent %d, stats %+v, chaos %+v, client %+v",
				len(trace.Packets), s.Stats(), chaos.Stats(), client.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if s.State() != StateStopped {
		t.Fatalf("state = %v after drain, want stopped", s.State())
	}

	// The chaos schedule must actually have bitten.
	ccs := chaos.Stats()
	cls := client.Stats()
	if ccs.Resets < 3 {
		t.Errorf("chaos injected %d resets, want >= 3 (ResetEvery %d over %d bytes)", ccs.Resets, totalBytes/8, totalBytes)
	}
	if cls.Reconnects < 3 {
		t.Errorf("client reconnected %d times, want >= 3", cls.Reconnects)
	}
	if ccs.Chunked == 0 || ccs.Stalls == 0 {
		t.Errorf("chaos schedule incomplete: chunked %d, stalls %d", ccs.Chunked, ccs.Stalls)
	}

	// Exact transport accounting: every frame is admitted or quarantined,
	// nothing shed, one quarantine event per torn frame.
	st := s.Stats()
	assertConservation(t, st)
	if st.Admitted != len(trace.Packets) {
		t.Errorf("admitted %d packets, sent %d: lost or duplicated frames", st.Admitted, len(trace.Packets))
	}
	if st.Quarantined != ccs.Resets {
		t.Errorf("quarantined %d events for %d mid-frame tears", st.Quarantined, ccs.Resets)
	}
	if st.Shed != 0 {
		t.Errorf("block policy shed %d packets", st.Shed)
	}
	if cls.Resent != ccs.Resets {
		t.Errorf("client resent %d frames for %d tears", cls.Resent, ccs.Resets)
	}

	// Zero duplicated / lost verdicts: the networked engine must agree
	// with a sequential in-process replay on every counter and label.
	assertEnginesMatch(t, trace, engine, replayReference(t, trace, 2))

	// The drain checkpoint resumes into a fresh engine with the same
	// shard layout...
	if len(checkpoint) == 0 {
		t.Fatal("drain produced no final checkpoint")
	}
	restored := newTestEngine(t, 2)
	if err := restored.ImportCheckpoint(checkpoint); err != nil {
		t.Fatalf("ImportCheckpoint: %v", err)
	}
	ds, rs := engine.Stats(), restored.Stats()
	if rs.Classified != ds.Classified || rs.Admitted != ds.Admitted ||
		rs.Fallback != ds.Fallback || rs.Dropped != ds.Dropped ||
		rs.Shed != ds.Shed || rs.QueueCounts != ds.QueueCounts {
		t.Errorf("restored stats diverge:\n  drained:  %+v\n  restored: %+v", ds, rs)
	}
	if rs.CDB.Size != ds.CDB.Size {
		t.Errorf("restored CDB size %d, drained %d", rs.CDB.Size, ds.CDB.Size)
	}

	// ...where an already classified flow hits the CDB on its next
	// packet: no re-buffering after resume.
	if tuple, ok := cdbResidentFlow(trace, engine); ok {
		for i := range trace.Packets {
			p := trace.Packets[i]
			if p.Tuple == tuple && p.IsData() {
				v, err := restored.Process(&p)
				if err != nil {
					t.Fatalf("resume Process: %v", err)
				}
				if !v.FromCDB {
					t.Errorf("resumed flow %v not served from CDB: %+v", tuple, v)
				}
				break
			}
		}
	} else {
		t.Log("no CDB-resident flow survived the replay; resume-hit check skipped")
	}

	// ...and refuses a mismatched shard layout outright.
	wrong := newTestEngine(t, 3)
	if err := wrong.ImportCheckpoint(checkpoint); err == nil {
		t.Error("checkpoint for 2 shards imported into 3-shard engine")
	}

	// The checkpoint must also survive the persist framing used on disk.
	framed := persist.Encode(persist.KindParallelCheckpoint, checkpoint)
	kind, payload, err := persist.Decode(framed)
	if err != nil || kind != persist.KindParallelCheckpoint {
		t.Fatalf("persist round-trip: kind %v, err %v", kind, err)
	}
	again := newTestEngine(t, 2)
	if err := again.ImportCheckpoint(payload); err != nil {
		t.Fatalf("ImportCheckpoint after persist round-trip: %v", err)
	}
}

// cdbResidentFlow finds a flow that was classified and not closed, so its
// record is still in the CDB after the replay.
func cdbResidentFlow(trace *packet.Trace, e *flow.ParallelEngine) (packet.FiveTuple, bool) {
	for tuple, info := range trace.Flows {
		if info.ClosedBy != 0 {
			continue
		}
		if _, ok := e.Label(tuple); ok {
			return tuple, true
		}
	}
	return packet.FiveTuple{}, false
}

// testTraceFrom generates a trace from an explicit config.
func testTraceFrom(t *testing.T, cfg packet.TraceConfig) *packet.Trace {
	t.Helper()
	trace, err := packet.Generate(cfg, corpus.NewGenerator(cfg.Seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

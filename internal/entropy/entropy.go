// Package entropy implements the information-theoretic primitives behind
// Iustitia: k-gram frequency counting over byte sequences, normalized
// entropy h_k (Formula 1 of the paper), entropy vectors H_F and H_b, and
// the Kullback-Leibler and Jensen-Shannon divergence measures used to
// validate the paper's hypotheses.
//
// Throughout the package "entropy" means normalized entropy: the Shannon
// entropy of the k-gram frequency distribution divided by log2(|f_k|),
// where f_k is the set of all possible k-byte elements (|f_k| = 2^(8k)).
// A normalized entropy of 0 means every element is identical; 1 means the
// elements are uniformly distributed over the whole element set.
package entropy

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrShortSequence is returned when a sequence is too short to contain a
// single element of the requested width.
var ErrShortSequence = errors.New("entropy: sequence shorter than element width")

// ErrBadWidths is returned when a requested feature-width set is empty or
// contains a non-positive width.
var ErrBadWidths = errors.New("entropy: invalid feature widths")

// bitsPerByte is the log2 of the byte alphabet size.
const bitsPerByte = 8

// ElementSetBits returns log2(|f_k|) = 8k, the number of bits needed to
// describe one element of width k. The element-set cardinality itself
// (2^(8k)) overflows int64 for k >= 8, so all normalization works in log
// space via this function.
func ElementSetBits(k int) float64 {
	return float64(bitsPerByte * k)
}

// CountKGrams returns the frequency of every consecutive k-byte element in
// data. The map is keyed by the raw element bytes. For data of length m
// there are m-k+1 elements.
func CountKGrams(data []byte, k int) (map[string]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("entropy: element width %d is not positive", k)
	}
	if len(data) < k {
		return nil, ErrShortSequence
	}
	counts := make(map[string]int, min(len(data)-k+1, 1<<12))
	for i := 0; i+k <= len(data); i++ {
		counts[string(data[i:i+k])]++
	}
	return counts, nil
}

// countBytes is the fast path for k=1: a fixed array avoids map overhead on
// the hottest feature.
func countBytes(data []byte) *[256]int {
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	return &counts
}

// H computes the normalized entropy h_k of data treated as a sequence of
// consecutive k-byte elements over the element set f_k (Formula 1):
//
//	h_k = log(m-k+1) - (1/(m-k+1)) * sum_i m_ik*log(m_ik),  normalized by log|f_k|
//
// The result is in [0, 1]. H returns ErrShortSequence when len(data) < k.
func H(data []byte, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("%w: element width %d is not positive", ErrBadWidths, k)
	}
	if len(data) < k {
		return 0, ErrShortSequence
	}
	widths := [1]int{k}
	var vec [1]float64
	if err := vectorInto(vec[:], data, widths[:]); err != nil {
		return 0, err
	}
	return vec[0], nil
}

// legacyH is the pre-packed-key reference implementation of H: one scan
// per width, string-keyed counting for k >= 2. It is retained as the
// differential-test oracle and the allocation baseline for the benchmark
// harness; the hot path never calls it for k <= 16.
func legacyH(data []byte, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("%w: element width %d is not positive", ErrBadWidths, k)
	}
	if len(data) < k {
		return 0, ErrShortSequence
	}
	n := len(data) - k + 1 // number of elements
	var sumMLogM float64
	if k == 1 {
		counts := countBytes(data)
		for _, c := range counts {
			if c > 1 {
				sumMLogM += float64(c) * math.Log2(float64(c))
			}
		}
	} else {
		counts, err := CountKGrams(data, k)
		if err != nil {
			return 0, err
		}
		sumMLogM = sumCLogC(counts)
	}
	return NormalizeS(sumMLogM, n, k), nil
}

// sumCLogC returns Σ c·log2(c) over the count map. Map iteration order is
// random in Go and float addition is not associative, so the counts are
// first folded into a count-of-counts histogram and summed in sorted
// order, making the result bit-identical across runs.
func sumCLogC(counts map[string]int) float64 {
	countOfCounts := make(map[int]int)
	for _, c := range counts {
		if c > 1 {
			countOfCounts[c]++
		}
	}
	distinct := make([]int, 0, len(countOfCounts))
	for c := range countOfCounts {
		distinct = append(distinct, c)
	}
	sort.Ints(distinct)
	var sum float64
	for _, c := range distinct {
		sum += float64(countOfCounts[c]) * float64(c) * math.Log2(float64(c))
	}
	return sum
}

// NormalizeS converts S_k = sum_i m_ik*log2(m_ik) (over n elements of width
// k) into the normalized entropy h_k per Formula 1. It is shared by the
// exact calculator above and the streaming estimator in package entest,
// which approximates S_k rather than h_k directly.
func NormalizeS(sumMLogM float64, n, k int) float64 {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		// A single element carries no diversity information.
		return 0
	}
	h := math.Log2(float64(n)) - sumMLogM/float64(n)
	norm := h / ElementSetBits(k)
	// Estimation error can nudge the value slightly outside [0,1]; clamp so
	// downstream classifiers always see a valid normalized entropy.
	return math.Min(1, math.Max(0, norm))
}

// Vector computes the entropy vector <h_1, ..., h_width> of data. It
// returns ErrShortSequence when len(data) < width, because the widest
// feature would be undefined.
func Vector(data []byte, width int) ([]float64, error) {
	if width <= 0 {
		return nil, fmt.Errorf("%w: vector width %d is not positive", ErrBadWidths, width)
	}
	if len(data) < width {
		return nil, ErrShortSequence
	}
	widths := make([]int, width)
	for k := 1; k <= width; k++ {
		widths[k-1] = k
	}
	vec := make([]float64, width)
	if err := vectorInto(vec, data, widths); err != nil {
		return nil, err
	}
	return vec, nil
}

// VectorAt computes only the features named in widths (1-based element
// widths, e.g. {1, 3, 4, 5}) and returns them in the same order. This is
// the form used after feature selection, when only a sparse subset of
// h_1..h_10 is needed per flow. The widths must be non-empty and positive
// (ErrBadWidths otherwise), and data must be at least as long as each
// width (ErrShortSequence otherwise).
func VectorAt(data []byte, widths []int) ([]float64, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("%w: empty width set", ErrBadWidths)
	}
	for _, k := range widths {
		if k <= 0 {
			return nil, fmt.Errorf("%w: element width %d is not positive", ErrBadWidths, k)
		}
		if len(data) < k {
			return nil, ErrShortSequence
		}
	}
	vec := make([]float64, len(widths))
	if err := vectorInto(vec, data, widths); err != nil {
		return nil, err
	}
	return vec, nil
}

// LegacyVectorAt is the pre-packed-key reference implementation of
// VectorAt: one full payload scan per width, string-keyed k-gram maps. It
// exists so the differential tests and the benchmark harness can compare
// the hot path against the original algorithm; production code should call
// VectorAt.
func LegacyVectorAt(data []byte, widths []int) ([]float64, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("%w: empty width set", ErrBadWidths)
	}
	vec := make([]float64, len(widths))
	for i, k := range widths {
		h, err := legacyH(data, k)
		if err != nil {
			return nil, err
		}
		vec[i] = h
	}
	return vec, nil
}

// Prefix returns the entropy vector H_b of the first b bytes of data (or of
// all of data when len(data) < b), with the given feature widths.
func Prefix(data []byte, b int, widths []int) ([]float64, error) {
	if b <= 0 {
		return nil, fmt.Errorf("entropy: prefix length %d is not positive", b)
	}
	if b > len(data) {
		b = len(data)
	}
	return VectorAt(data[:b], widths)
}

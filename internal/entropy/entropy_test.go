package entropy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHConstantSequenceIsZero(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		data := bytes.Repeat([]byte{0x41}, 64)
		h, err := H(data, k)
		if err != nil {
			t.Fatalf("H(k=%d): %v", k, err)
		}
		if h != 0 {
			t.Errorf("H(constant, k=%d) = %v, want 0", k, h)
		}
	}
}

func TestHAllDistinctBytes(t *testing.T) {
	// 256 distinct bytes, each once: the f_1 distribution is exactly
	// uniform over the whole element set, so h_1 must be 1.
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	h, err := H(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Errorf("H(all-bytes, k=1) = %v, want 1", h)
	}
}

func TestHShortSequence(t *testing.T) {
	if _, err := H([]byte{1, 2}, 3); err != ErrShortSequence {
		t.Errorf("H on short data: err = %v, want ErrShortSequence", err)
	}
	if _, err := H(nil, 1); err != ErrShortSequence {
		t.Errorf("H(nil): err = %v, want ErrShortSequence", err)
	}
}

func TestHInvalidWidth(t *testing.T) {
	for _, k := range []int{0, -1} {
		if _, err := H([]byte{1, 2, 3}, k); err == nil {
			t.Errorf("H(k=%d): want error, got nil", k)
		}
	}
}

func TestHSingleElement(t *testing.T) {
	// m == k: exactly one element; entropy is defined as 0.
	h, err := H([]byte{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Errorf("H(single element) = %v, want 0", h)
	}
}

func TestHOrderingAcrossClasses(t *testing.T) {
	// The paper's core observation: entropy(text) < entropy(mixed binary)
	// < entropy(random). Synthesize stand-ins and check the ordering.
	rng := rand.New(rand.NewSource(1))
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 40)

	binary := make([]byte, len(text))
	for i := range binary {
		// Skewed byte distribution over half the alphabet.
		binary[i] = byte(rng.Intn(128)) * 2
	}

	random := make([]byte, len(text))
	rng.Read(random)

	hText, err := H(text, 1)
	if err != nil {
		t.Fatal(err)
	}
	hBin, err := H(binary, 1)
	if err != nil {
		t.Fatal(err)
	}
	hEnc, err := H(random, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(hText < hBin && hBin < hEnc) {
		t.Errorf("entropy ordering violated: text=%v binary=%v random=%v", hText, hBin, hEnc)
	}
}

func TestCountKGrams(t *testing.T) {
	counts, err := CountKGrams([]byte("abab"), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"ab": 2, "ba": 1}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("counts[%q] = %d, want %d", k, counts[k], v)
		}
	}
}

func TestCountKGramsElementTotal(t *testing.T) {
	data := []byte("hello, entropy world")
	for k := 1; k <= 5; k++ {
		counts, err := CountKGrams(data, k)
		if err != nil {
			t.Fatal(err)
		}
		var total int
		for _, c := range counts {
			total += c
		}
		if want := len(data) - k + 1; total != want {
			t.Errorf("k=%d: total elements = %d, want %d", k, total, want)
		}
	}
}

func TestVector(t *testing.T) {
	data := []byte("abcdabcdabcdabcd")
	vec, err := Vector(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 4 {
		t.Fatalf("len(vec) = %d, want 4", len(vec))
	}
	for i, h := range vec {
		if h < 0 || h > 1 {
			t.Errorf("vec[%d] = %v outside [0,1]", i, h)
		}
	}
	// h_4 of a perfectly periodic sequence: 4 distinct 4-grams repeated —
	// low but nonzero.
	if vec[3] == 0 {
		t.Error("h_4 of periodic data = 0, want > 0 (4 distinct rotations)")
	}
}

func TestVectorAtMatchesVector(t *testing.T) {
	data := []byte("the entropy of this string is neither zero nor one")
	full, err := Vector(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := VectorAt(data, []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []int{1, 3, 5} {
		if sparse[i] != full[k-1] {
			t.Errorf("VectorAt[%d] = %v, want %v", i, sparse[i], full[k-1])
		}
	}
}

func TestPrefixClampsToDataLength(t *testing.T) {
	data := []byte("short")
	got, err := Prefix(data, 1024, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := VectorAt(data, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Errorf("Prefix(b>len) = %v, want %v", got[0], want[0])
	}
}

func TestPrefixInvalid(t *testing.T) {
	if _, err := Prefix([]byte("x"), 0, []int{1}); err == nil {
		t.Error("Prefix(b=0): want error")
	}
}

func TestNormalizeSDegenerate(t *testing.T) {
	if got := NormalizeS(0, 0, 1); got != 0 {
		t.Errorf("NormalizeS(n=0) = %v, want 0", got)
	}
	if got := NormalizeS(0, 1, 1); got != 0 {
		t.Errorf("NormalizeS(n=1) = %v, want 0", got)
	}
	// Wildly wrong estimate must still clamp into [0,1].
	if got := NormalizeS(-1e9, 100, 1); got != 1 {
		t.Errorf("NormalizeS clamp high = %v, want 1", got)
	}
	if got := NormalizeS(1e9, 100, 1); got != 0 {
		t.Errorf("NormalizeS clamp low = %v, want 0", got)
	}
}

// Property: h_k of any byte sequence is within [0, 1].
func TestHBoundsProperty(t *testing.T) {
	prop := func(data []byte, kRaw uint8) bool {
		k := int(kRaw)%4 + 1
		if len(data) < k {
			return true
		}
		h, err := H(data, k)
		if err != nil {
			return false
		}
		return h >= 0 && h <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: entropy is invariant under any byte-alphabet permutation
// (relabeling elements cannot change the frequency profile) for k=1.
func TestHPermutationInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var perm [256]byte
	for i, p := range rng.Perm(256) {
		perm[i] = byte(p)
	}
	prop := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		mapped := make([]byte, len(data))
		for i, b := range data {
			mapped[i] = perm[b]
		}
		h1, err1 := H(data, 1)
		h2, err2 := H(mapped, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(h1-h2) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: duplicating a sequence cannot increase its normalized k=1
// entropy beyond a small floor effect, and the byte distribution is
// unchanged so entropies match exactly.
func TestHConcatenationProperty(t *testing.T) {
	prop := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		h1, err1 := H(data, 1)
		h2, err2 := H(append(append([]byte{}, data...), data...), 1)
		if err1 != nil || err2 != nil {
			return false
		}
		// Same distribution, doubled counts: Shannon entropy identical.
		return math.Abs(h1-h2) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package entropy

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the allocation-free exact-counting hot path. A k-gram of
// width k <= 8 fits a single uint64, and one of width k <= 16 fits a
// [2]uint64, so instead of interning every element as a string the scanner
// packs each element into an integer key with a rolling shift-and-mask and
// counts into pooled open-addressing flat tables (k = 2 gets a dense
// 65536-entry array, k = 1 a 256-entry array). Only widths beyond
// MaxWidePackedWidth fall back to the string-keyed CountKGrams path.
//
// Determinism invariant: the per-width sums are folded through the same
// ascending count-of-counts summation as sumCLogC, with every float
// multiplication in the same order, so the packed path produces
// bit-identical h_k to the legacy string-keyed path (the differential and
// fuzz tests in packed_test.go prove it, including across mid-scan table
// growth).

// MaxPackedWidth is the widest element width whose k-grams fit a single
// uint64 rolling register. Widths up to MaxWidePackedWidth use a two-word
// register; anything wider falls back to string-keyed counting.
const MaxPackedWidth = 8

// MaxWidePackedWidth is the widest element width covered by the [2]uint64
// rolling register.
const MaxWidePackedWidth = 16

// flatInitialSlots is the starting capacity of a flat counting table:
// large enough that a 1 KiB payload of unique k-grams fits under the load
// factor without growing, small enough that a cold table is cheap.
const flatInitialSlots = 1 << 11

// maxPresizedSlots caps the capacity flatSlotsFor will pre-size to
// (payloads up to ~48 KiB scan growth-free; anything larger grows the old
// way rather than pinning huge tables in the pool).
const maxPresizedSlots = 1 << 16

// flatSlotsFor returns the power-of-two slot count whose grow-at-3/4-load
// threshold clears n distinct keys, so a payload with at most n k-grams
// scans without growing mid-scan. Payload length classes up to 1 KiB keep
// flatInitialSlots; a 4 KiB payload gets 8192 slots up front instead of
// growing 2048→4096→8192 inside the scan loop (the regression ROADMAP
// item 4 measured: 4 KiB vectors slower per byte than 1 KiB).
func flatSlotsFor(n int) int {
	capacity := flatInitialSlots
	for capacity/4*3 <= n && capacity < maxPresizedSlots {
		capacity <<= 1
	}
	return capacity
}

// maxFlatCount is the largest payload length whose per-element counts are
// guaranteed to fit the tables' uint32 counters. Anything longer (a >4 GiB
// payload — far beyond any flow buffer) takes the string-keyed fallback.
const maxFlatCount = 1<<32 - 1

// fibMul is the 64-bit Fibonacci hashing multiplier (2^64/φ): it spreads
// the low-entropy packed keys across the table's high index bits.
const fibMul = 0x9E3779B97F4A7C15

// wideMul is a second odd multiplier (from splitmix64) mixed into the high
// word of two-word keys so hi and lo contribute independently.
const wideMul = 0x94D049BB133111EB

// ---------------------------------------------------------------------------
// Memoized c·log2(c)
//
// Every fold term needs log2(c) for a count c <= payload length. The counts
// repeat endlessly across flows, so the logs are computed once into a
// shared read-only table instead of calling math.Log2 per distinct count
// per flow. Two arrays are kept because float multiplication is not
// associative and the two fold shapes multiply in different orders:
// clogc[c] = c·log2(c) is the exact single-occurrence term, while the
// multiplicity term (m·c)·log2(c) must multiply m·c first and so needs the
// bare log2[c]. Using the wrong one would break bit-identity with the
// legacy path.

// logTable is an immutable memo of log2(c) and c·log2(c) for c < len. It
// is replaced wholesale (never mutated) when a longer payload needs more
// entries, so readers can use a loaded snapshot without locking.
type logTable struct {
	log2  []float64
	clogc []float64
}

var (
	logTab   atomic.Pointer[logTable]
	logTabMu sync.Mutex
)

// logTableInitial covers counts from payloads up to 4 KiB; logTableMax
// bounds the memo's memory at 16 MiB — counts beyond it (payloads over a
// megabyte of a single repeated k-gram) compute math.Log2 inline.
const (
	logTableInitial = 1 << 12
	logTableMax     = 1 << 20
)

// logsFor returns a memo table covering counts up to min(maxCount,
// logTableMax), growing the shared table by doubling when needed. The
// returned table is read-only.
func logsFor(maxCount int) *logTable {
	if lt := logTab.Load(); lt != nil && (len(lt.log2) > maxCount || len(lt.log2) > logTableMax) {
		return lt
	}
	logTabMu.Lock()
	defer logTabMu.Unlock()
	if lt := logTab.Load(); lt != nil && (len(lt.log2) > maxCount || len(lt.log2) > logTableMax) {
		return lt
	}
	size := logTableInitial
	for size <= maxCount && size < logTableMax {
		size <<= 1
	}
	nt := &logTable{
		log2:  make([]float64, size+1),
		clogc: make([]float64, size+1),
	}
	for c := 2; c <= size; c++ {
		l := math.Log2(float64(c))
		nt.log2[c] = l
		nt.clogc[c] = float64(c) * l
	}
	logTab.Store(nt)
	return nt
}

// term returns m·c·log2(c) exactly as the legacy fold computes it:
// (float64(m)·float64(c))·log2(c), with the single-occurrence case taking
// the memoized c·log2(c) directly (multiplying by 1.0 is exact, so the two
// forms are bit-identical).
func (lt *logTable) term(mult, c int) float64 {
	if c < len(lt.log2) {
		if mult == 1 {
			return lt.clogc[c]
		}
		return float64(mult) * float64(c) * lt.log2[c]
	}
	return float64(mult) * float64(c) * math.Log2(float64(c))
}

// ---------------------------------------------------------------------------
// Flat counting tables

// flatSlot is one open-addressing slot: cnt == 0 marks it empty (a count
// never stays at zero once a key is inserted).
type flatSlot struct {
	key uint64
	cnt uint32
}

// flatTable counts single-word packed keys by linear probing over a
// power-of-two slot array, growing by doubling at 3/4 load.
type flatTable struct {
	slots  []flatSlot
	size   int
	growAt int
	shift  uint // 64 - log2(len(slots)); Fibonacci hash keeps the top bits
}

// initSlots (re)allocates the slot array at a power-of-two capacity.
func (t *flatTable) initSlots(capacity int) {
	t.slots = make([]flatSlot, capacity)
	t.size = 0
	t.growAt = capacity / 4 * 3
	t.shift = 64 - uint(trailingLog2(capacity))
}

// trailingLog2 returns log2 of a power-of-two capacity.
func trailingLog2(c int) int {
	return bits.TrailingZeros64(uint64(c))
}

// grow doubles the table and rehashes every occupied slot. Counts carry
// over verbatim, so growth mid-scan cannot change any final count.
func (t *flatTable) grow() {
	old := t.slots
	t.initSlots(2 * len(old))
	mask := uint64(len(t.slots) - 1)
	for _, s := range old {
		if s.cnt == 0 {
			continue
		}
		i := (s.key * fibMul) >> t.shift
		for t.slots[i&mask].cnt != 0 {
			i++
		}
		t.slots[i&mask] = s
		t.size++
	}
}

// scan counts every k-gram of data (3 <= k <= 8) with a rolling
// shift-and-mask register. The probe loop is written inline — a call per
// element is measurable at this frequency — with the table fields held in
// locals and refreshed after any growth.
func (t *flatTable) scan(data []byte, k int) {
	regMask := narrowMask(k)
	var reg uint64
	for _, b := range data[:k-1] {
		reg = reg<<8 | uint64(b)
	}
	slots, shift := t.slots, t.shift
	mask := uint64(len(slots) - 1)
	size, growAt := t.size, t.growAt
	for _, b := range data[k-1:] {
		reg = (reg<<8 | uint64(b)) & regMask
		i := (reg * fibMul) >> shift
		for {
			s := &slots[i&mask]
			if s.cnt == 0 {
				s.key = reg
				s.cnt = 1
				size++
				if size >= growAt {
					t.size = size
					t.grow()
					slots, shift = t.slots, t.shift
					mask = uint64(len(slots) - 1)
					size, growAt = t.size, t.growAt
				}
				break
			}
			if s.key == reg {
				s.cnt++
				break
			}
			i++
		}
	}
	t.size = size
}

// fold drains the table: it collects every count above one, zeroes the
// slots as it goes (leaving the table empty for the next scan), and
// returns the ascending count-of-counts sum Σ c·log2(c).
func (t *flatTable) fold(scratch []int, lt *logTable) (float64, []int) {
	scratch = scratch[:0]
	for i := range t.slots {
		if c := t.slots[i].cnt; c != 0 {
			if c > 1 {
				scratch = append(scratch, int(c))
			}
			t.slots[i].cnt = 0
		}
	}
	t.size = 0
	return foldCounts(scratch, lt)
}

// resetHard clears the table without folding (the error path).
func (t *flatTable) resetHard() {
	if t.slots == nil {
		return
	}
	clear(t.slots)
	t.size = 0
}

// wideSlot is one two-word-key slot; cnt == 0 marks it empty.
type wideSlot struct {
	hi, lo uint64
	cnt    uint32
}

// wideTable is the [2]uint64-keyed twin of flatTable for 9 <= k <= 16.
type wideTable struct {
	slots  []wideSlot
	size   int
	growAt int
	shift  uint
}

func (t *wideTable) initSlots(capacity int) {
	t.slots = make([]wideSlot, capacity)
	t.size = 0
	t.growAt = capacity / 4 * 3
	t.shift = 64 - uint(trailingLog2(capacity))
}

func (t *wideTable) grow() {
	old := t.slots
	t.initSlots(2 * len(old))
	mask := uint64(len(t.slots) - 1)
	for _, s := range old {
		if s.cnt == 0 {
			continue
		}
		i := (s.lo*fibMul ^ s.hi*wideMul) >> t.shift
		for t.slots[i&mask].cnt != 0 {
			i++
		}
		t.slots[i&mask] = s
		t.size++
	}
}

// scan counts every k-gram of data (9 <= k <= 16) with a two-word rolling
// register and the same inlined probe loop as flatTable.scan.
func (t *wideTable) scan(data []byte, k int) {
	hiMask := wideHiMask(k)
	var hi, lo uint64
	for _, b := range data[:k-1] {
		hi = hi<<8 | lo>>56
		lo = lo<<8 | uint64(b)
	}
	slots, shift := t.slots, t.shift
	mask := uint64(len(slots) - 1)
	size, growAt := t.size, t.growAt
	for _, b := range data[k-1:] {
		hi = (hi<<8 | lo>>56) & hiMask
		lo = lo<<8 | uint64(b)
		i := (lo*fibMul ^ hi*wideMul) >> shift
		for {
			s := &slots[i&mask]
			if s.cnt == 0 {
				s.hi, s.lo = hi, lo
				s.cnt = 1
				size++
				if size >= growAt {
					t.size = size
					t.grow()
					slots, shift = t.slots, t.shift
					mask = uint64(len(slots) - 1)
					size, growAt = t.size, t.growAt
				}
				break
			}
			if s.lo == lo && s.hi == hi {
				s.cnt++
				break
			}
			i++
		}
	}
	t.size = size
}

func (t *wideTable) fold(scratch []int, lt *logTable) (float64, []int) {
	scratch = scratch[:0]
	for i := range t.slots {
		if c := t.slots[i].cnt; c != 0 {
			if c > 1 {
				scratch = append(scratch, int(c))
			}
			t.slots[i].cnt = 0
		}
	}
	t.size = 0
	return foldCounts(scratch, lt)
}

func (t *wideTable) resetHard() {
	if t.slots == nil {
		return
	}
	clear(t.slots)
	t.size = 0
}

// bigramTable counts k = 2 into a dense 65536-entry array: no hashing, no
// probing, no growth. A touched list records each index the first time its
// count leaves zero, so folding and clearing cost O(distinct bigrams)
// instead of O(65536).
type bigramTable struct {
	counts  []uint32 // len 65536, allocated on first use
	touched []uint16
}

func (t *bigramTable) scan(data []byte) {
	if t.counts == nil {
		t.counts = make([]uint32, 1<<16)
	}
	reg := uint64(data[0])
	for _, b := range data[1:] {
		reg = (reg<<8 | uint64(b)) & 0xFFFF
		if t.counts[reg] == 0 {
			t.touched = append(t.touched, uint16(reg))
		}
		t.counts[reg]++
	}
}

func (t *bigramTable) fold(scratch []int, lt *logTable) (float64, []int) {
	scratch = scratch[:0]
	for _, idx := range t.touched {
		if c := t.counts[idx]; c > 1 {
			scratch = append(scratch, int(c))
		}
		t.counts[idx] = 0
	}
	t.touched = t.touched[:0]
	return foldCounts(scratch, lt)
}

func (t *bigramTable) resetHard() {
	for _, idx := range t.touched {
		t.counts[idx] = 0
	}
	t.touched = t.touched[:0]
}

// foldCounts sorts the collected counts ascending and sums m·c·log2(c)
// over the grouped multiplicities — the exact fold shape (and float
// multiplication order) of the legacy sumCLogC, so the result is
// bit-identical regardless of key type or table iteration order.
func foldCounts(scratch []int, lt *logTable) (float64, []int) {
	sort.Ints(scratch)
	var sum float64
	for i := 0; i < len(scratch); {
		c := scratch[i]
		j := i + 1
		for j < len(scratch) && scratch[j] == c {
			j++
		}
		sum += lt.term(j-i, c)
		i = j
	}
	return sum, scratch
}

// ---------------------------------------------------------------------------
// Pooled per-call state

// counterState is the pooled per-call scratch for exact k-gram counting.
// Tables are allocated lazily per width on first use and drained (not
// freed) by their folds, so a warm state counts without allocating.
type counterState struct {
	bytes   [256]int // k == 1
	bigrams bigramTable
	narrow  [MaxPackedWidth + 1]*flatTable     // 3 <= k <= 8, indexed by k
	wide    [MaxWidePackedWidth + 1]*wideTable // 9 <= k <= 16, indexed by k
	scratch []int
}

var counterPool = sync.Pool{New: func() any { return new(counterState) }}

// narrowTable returns the (lazily created) flat table for 3 <= k <= 8,
// pre-sized so a scan counting up to grams keys will not grow mid-scan.
// The table is empty here (folds drain it), so re-sizing is a plain
// reallocation, never a rehash.
func (st *counterState) narrowTable(k, grams int) *flatTable {
	want := flatSlotsFor(grams)
	if st.narrow[k] == nil {
		st.narrow[k] = new(flatTable)
		st.narrow[k].initSlots(want)
	} else if len(st.narrow[k].slots) < want {
		st.narrow[k].initSlots(want)
	}
	return st.narrow[k]
}

// wideTableFor returns the (lazily created) flat table for 8 < k <= 16,
// pre-sized like narrowTable.
func (st *counterState) wideTableFor(k, grams int) *wideTable {
	want := flatSlotsFor(grams)
	if st.wide[k] == nil {
		st.wide[k] = new(wideTable)
		st.wide[k].initSlots(want)
	} else if len(st.wide[k].slots) < want {
		st.wide[k].initSlots(want)
	}
	return st.wide[k]
}

// resetHard clears every table a partially completed call may have left
// populated (the error path; the happy path drains tables in the folds).
func (st *counterState) resetHard(widths []int) {
	for _, k := range widths {
		switch {
		case k == 1:
			st.bytes = [256]int{}
		case k == 2:
			st.bigrams.resetHard()
		case k <= MaxPackedWidth:
			if st.narrow[k] != nil {
				st.narrow[k].resetHard()
			}
		case k <= MaxWidePackedWidth:
			if st.wide[k] != nil {
				st.wide[k].resetHard()
			}
		}
	}
}

// narrowMask keeps the low 8k bits of the single-word register.
func narrowMask(k int) uint64 {
	if k >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*k) - 1
}

// wideHiMask keeps the k-8 high bytes of the two-word register.
func wideHiMask(k int) uint64 {
	if k >= 16 {
		return ^uint64(0)
	}
	return 1<<(8*(k-8)) - 1
}

// sumCLogCBytes replicates the legacy k=1 summation: array index order,
// counts above one only, each term the memoized c·log2(c). It zeroes the
// histogram as it goes.
func sumCLogCBytes(counts *[256]int, lt *logTable) float64 {
	var sum float64
	for i, c := range counts {
		if c > 1 {
			sum += lt.term(1, c)
		}
		counts[i] = 0
	}
	return sum
}

// vectorInto computes h_k for each width into vec (len(vec) must equal
// len(widths)). Widths must already be validated positive and no longer
// than data. Each distinct width is scanned and folded once (duplicate
// widths reuse the folded sum), the folds drain the pooled tables, and the
// state goes back to the pool clean.
func vectorInto(vec []float64, data []byte, widths []int) error {
	lt := logsFor(len(data))
	st := counterPool.Get().(*counterState)
	var (
		folded [MaxWidePackedWidth + 1]bool
		sums   [MaxWidePackedWidth + 1]float64
	)
	flatOK := len(data) <= maxFlatCount
	for i, k := range widths {
		n := len(data) - k + 1
		var sum float64
		switch {
		case k <= MaxWidePackedWidth && folded[k]:
			sum = sums[k]
		case k == 1:
			for _, b := range data {
				st.bytes[b]++
			}
			sum = sumCLogCBytes(&st.bytes, lt)
		case k == 2 && flatOK:
			st.bigrams.scan(data)
			sum, st.scratch = st.bigrams.fold(st.scratch, lt)
		case k <= MaxPackedWidth && flatOK:
			t := st.narrowTable(k, n)
			t.scan(data, k)
			sum, st.scratch = t.fold(st.scratch, lt)
		case k <= MaxWidePackedWidth && flatOK:
			t := st.wideTableFor(k, n)
			t.scan(data, k)
			sum, st.scratch = t.fold(st.scratch, lt)
		default:
			counts, err := CountKGrams(data, k)
			if err != nil {
				st.resetHard(widths[:i])
				counterPool.Put(st)
				return err
			}
			sum = sumCLogC(counts)
		}
		if k <= MaxWidePackedWidth {
			folded[k] = true
			sums[k] = sum
		}
		vec[i] = NormalizeS(sum, n, k)
	}
	counterPool.Put(st)
	return nil
}

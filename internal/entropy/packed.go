package entropy

import (
	"math"
	"sort"
	"sync"
)

// This file is the allocation-free exact-counting hot path. A k-gram of
// width k <= 8 fits a single uint64, and one of width k <= 16 fits a
// [2]uint64, so instead of interning every element as a string the scanner
// packs each element into an integer key with a rolling shift-and-mask and
// counts into pooled integer-keyed maps. One pass over the payload feeds
// every requested width at once via per-width rolling registers; only
// widths beyond maxWidePackedWidth fall back to the string-keyed
// CountKGrams path.
//
// Determinism invariant: the per-width sums are folded through the same
// ascending count-of-counts summation as sumCLogC, so the packed path
// produces bit-identical h_k to the legacy string-keyed path (the
// differential tests in packed_test.go prove it).

// MaxPackedWidth is the widest element width whose k-grams fit a single
// uint64 rolling register. Widths up to maxWidePackedWidth use a two-word
// register; anything wider falls back to string-keyed counting.
const MaxPackedWidth = 8

// maxWidePackedWidth is the widest element width covered by the [2]uint64
// rolling register.
const maxWidePackedWidth = 16

// maxScanWidths bounds how many distinct packed widths one scan tracks;
// there is one possible register per width in [2, maxWidePackedWidth].
const maxScanWidths = maxWidePackedWidth - 1

// counterState is the pooled per-call scratch for exact k-gram counting.
// Maps are allocated lazily per width on first use and cleared (not freed)
// after every call, so a warm state counts without allocating.
type counterState struct {
	bytes   [256]int                              // k == 1
	narrow  [MaxPackedWidth + 1]map[uint64]int    // 2 <= k <= 8, indexed by k
	wide    [maxWidePackedWidth + 1]map[[2]uint64]int // 9 <= k <= 16, indexed by k
	scratch []int                                 // count fold buffer
}

var counterPool = sync.Pool{New: func() any { return new(counterState) }}

// narrowMap returns the (lazily created) counter map for width k <= 8.
func (st *counterState) narrowMap(k int) map[uint64]int {
	if st.narrow[k] == nil {
		st.narrow[k] = make(map[uint64]int, 1<<10)
	}
	return st.narrow[k]
}

// wideMap returns the (lazily created) counter map for 8 < k <= 16.
func (st *counterState) wideMap(k int) map[[2]uint64]int {
	if st.wide[k] == nil {
		st.wide[k] = make(map[[2]uint64]int, 1<<10)
	}
	return st.wide[k]
}

// reset clears exactly the counters the given widths touched, leaving map
// capacity in place for the next caller.
func (st *counterState) reset(widths []int) {
	for _, k := range widths {
		switch {
		case k == 1:
			st.bytes = [256]int{}
		case k <= MaxPackedWidth:
			clear(st.narrow[k])
		case k <= maxWidePackedWidth:
			clear(st.wide[k])
		}
	}
}

// narrowMask keeps the low 8k bits of the single-word register.
func narrowMask(k int) uint64 {
	if k >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*k) - 1
}

// wideHiMask keeps the k-8 high bytes of the two-word register.
func wideHiMask(k int) uint64 {
	if k >= 16 {
		return ^uint64(0)
	}
	return 1<<(8*(k-8)) - 1
}

// scan counts the k-grams of every requested packed width in a single pass
// over data, using one rolling register per distinct width. Widths must be
// positive; widths wider than maxWidePackedWidth are ignored here (the
// caller handles them through the string fallback).
func (st *counterState) scan(data []byte, widths []int) {
	var (
		wantBytes bool
		seen      [maxWidePackedWidth + 1]bool

		narrowKs    [maxScanWidths]int
		narrowRegs  [maxScanWidths]uint64
		narrowMasks [maxScanWidths]uint64
		narrowCnt   [maxScanWidths]map[uint64]int
		nNarrow     int

		wideKs    [maxScanWidths]int
		wideRegs  [maxScanWidths][2]uint64
		wideMasks [maxScanWidths]uint64
		wideCnt   [maxScanWidths]map[[2]uint64]int
		nWide     int
	)
	for _, k := range widths {
		switch {
		case k == 1:
			wantBytes = true
		case k <= MaxPackedWidth && !seen[k]:
			seen[k] = true
			narrowKs[nNarrow] = k
			narrowMasks[nNarrow] = narrowMask(k)
			narrowCnt[nNarrow] = st.narrowMap(k)
			nNarrow++
		case k > MaxPackedWidth && k <= maxWidePackedWidth && !seen[k]:
			seen[k] = true
			wideKs[nWide] = k
			wideMasks[nWide] = wideHiMask(k)
			wideCnt[nWide] = st.wideMap(k)
			nWide++
		}
	}
	for i := 0; i < len(data); i++ {
		b := uint64(data[i])
		if wantBytes {
			st.bytes[data[i]]++
		}
		for j := 0; j < nNarrow; j++ {
			narrowRegs[j] = (narrowRegs[j]<<8 | b) & narrowMasks[j]
			if i >= narrowKs[j]-1 {
				narrowCnt[j][narrowRegs[j]]++
			}
		}
		for j := 0; j < nWide; j++ {
			hi := (wideRegs[j][0]<<8 | wideRegs[j][1]>>56) & wideMasks[j]
			lo := wideRegs[j][1]<<8 | b
			wideRegs[j] = [2]uint64{hi, lo}
			if i >= wideKs[j]-1 {
				wideCnt[j][wideRegs[j]]++
			}
		}
	}
}

// sumCLogCBytes replicates the legacy k=1 summation: array index order,
// counts above one only.
func sumCLogCBytes(counts *[256]int) float64 {
	var sum float64
	for _, c := range counts {
		if c > 1 {
			sum += float64(c) * math.Log2(float64(c))
		}
	}
	return sum
}

// sumCLogCCounts returns Σ c·log2(c) over the values of counts, folded in
// ascending-count order with per-count multiplicities so the float sum is
// bit-identical to sumCLogC's count-of-counts fold regardless of key type
// or map iteration order. It reuses (and returns) scratch to stay
// allocation-free.
func sumCLogCCounts[K comparable](counts map[K]int, scratch []int) (float64, []int) {
	scratch = scratch[:0]
	for _, c := range counts {
		if c > 1 {
			scratch = append(scratch, c)
		}
	}
	sort.Ints(scratch)
	var sum float64
	for i := 0; i < len(scratch); {
		c := scratch[i]
		j := i + 1
		for j < len(scratch) && scratch[j] == c {
			j++
		}
		sum += float64(j-i) * float64(c) * math.Log2(float64(c))
		i = j
	}
	return sum, scratch
}

// vectorInto computes h_k for each width into vec (len(vec) must equal
// len(widths)). Widths must already be validated positive and no longer
// than data. It performs the packed single-pass scan, falls back to
// string-keyed counting for widths beyond maxWidePackedWidth, and returns
// the pooled state cleared.
func vectorInto(vec []float64, data []byte, widths []int) error {
	st := counterPool.Get().(*counterState)
	st.scan(data, widths)
	for i, k := range widths {
		n := len(data) - k + 1
		var sum float64
		switch {
		case k == 1:
			sum = sumCLogCBytes(&st.bytes)
		case k <= MaxPackedWidth:
			sum, st.scratch = sumCLogCCounts(st.narrow[k], st.scratch)
		case k <= maxWidePackedWidth:
			sum, st.scratch = sumCLogCCounts(st.wide[k], st.scratch)
		default:
			counts, err := CountKGrams(data, k)
			if err != nil {
				st.reset(widths)
				counterPool.Put(st)
				return err
			}
			sum = sumCLogC(counts)
		}
		vec[i] = NormalizeS(sum, n, k)
	}
	st.reset(widths)
	counterPool.Put(st)
	return nil
}

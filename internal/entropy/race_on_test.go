//go:build race

package entropy

// raceEnabled reports whether the race detector is compiled in; allocation
// assertions are skipped under it because instrumentation changes counts.
const raceEnabled = true

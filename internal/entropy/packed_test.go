package entropy

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// payloadsFor builds a diverse set of payloads of length n: uniform random
// (mostly unique k-grams), low-diversity periodic data (heavy counts > 1),
// constant bytes, and text-like bytes.
func payloadsFor(rng *rand.Rand, n int) [][]byte {
	random := make([]byte, n)
	rng.Read(random)

	periodic := make([]byte, n)
	for i := range periodic {
		periodic[i] = byte(i % 7)
	}

	constant := bytes.Repeat([]byte{0xAB}, n)

	text := make([]byte, n)
	src := []byte("the quick brown fox jumps over the lazy dog ")
	for i := range text {
		text[i] = src[i%len(src)]
	}

	// Adversarial for the flat tables: a low-diversity prefix piles up
	// counts > 1 in a small table, then a uniform-random suffix floods in
	// distinct keys and forces grow-by-doubling mid-scan, while the
	// prefix counts must survive the rehash.
	growth := make([]byte, n)
	for i := range growth[:n/2] {
		growth[i] = byte(i % 3)
	}
	rng.Read(growth[n/2:])

	return [][]byte{random, periodic, constant, text, growth}
}

// TestDifferentialPackedVsLegacy proves the determinism invariant: the
// packed-key single-scan path produces bit-identical h_k to the legacy
// string-keyed path for every width 1..16 across payload lengths 1..4096.
// The 4 KiB random payloads exceed the initial flat-table capacity, so the
// sweep covers grow-by-doubling mid-scan in both the one- and two-word
// tables.
func TestDifferentialPackedVsLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lengths := []int{}
	for n := 1; n <= 64; n++ {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, 100, 255, 256, 257, 512, 1000, 1024, 2048, 4095, 4096)

	allWidths := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	for _, n := range lengths {
		for _, data := range payloadsFor(rng, n) {
			// Keep only widths the payload can support.
			widths := allWidths[:0:0]
			for _, k := range allWidths {
				if k <= n {
					widths = append(widths, k)
				}
			}
			fast, err := VectorAt(data, widths)
			if err != nil {
				t.Fatalf("VectorAt(n=%d, widths=%v): %v", n, widths, err)
			}
			legacy, err := LegacyVectorAt(data, widths)
			if err != nil {
				t.Fatalf("LegacyVectorAt(n=%d): %v", n, err)
			}
			for i, k := range widths {
				if math.Float64bits(fast[i]) != math.Float64bits(legacy[i]) {
					t.Errorf("n=%d k=%d: packed h=%v (%#x) != legacy h=%v (%#x)",
						n, k, fast[i], math.Float64bits(fast[i]),
						legacy[i], math.Float64bits(legacy[i]))
				}
			}
		}
	}
}

// TestDifferentialHMatchesLegacy checks the scalar entry point too,
// including a width past the wide-packed limit (string fallback).
func TestDifferentialHMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{20, 300, 2048} {
		for _, data := range payloadsFor(rng, n) {
			for k := 1; k <= 18 && k <= n; k++ {
				fast, err := H(data, k)
				if err != nil {
					t.Fatalf("H(n=%d, k=%d): %v", n, k, err)
				}
				legacy, err := legacyH(data, k)
				if err != nil {
					t.Fatalf("legacyH(n=%d, k=%d): %v", n, k, err)
				}
				if math.Float64bits(fast) != math.Float64bits(legacy) {
					t.Errorf("n=%d k=%d: H=%v != legacy=%v", n, k, fast, legacy)
				}
			}
		}
	}
}

// FuzzDifferentialPackedVsLegacy fuzzes the bit-identity invariant: for
// any payload and any width (including the string-fallback region past
// the wide-packed limit), the flat-table path and the legacy string-keyed
// path must agree on every bit of h_k.
func FuzzDifferentialPackedVsLegacy(f *testing.F) {
	f.Add([]byte("the quick brown fox"), uint8(3))
	f.Add(bytes.Repeat([]byte{0}, 64), uint8(4))
	f.Add(bytes.Repeat([]byte{0xAB, 0xCD}, 512), uint8(9))
	big := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(big)
	f.Add(big, uint8(16))
	f.Add(big[:2048], uint8(11))
	f.Add(append(bytes.Repeat([]byte{1, 2, 3}, 600), big[:1024]...), uint8(10))
	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		k := int(width)
		if k < 1 || k > 18 || k > len(data) {
			t.Skip()
		}
		fast, err := H(data, k)
		if err != nil {
			t.Fatalf("H(n=%d, k=%d): %v", len(data), k, err)
		}
		legacy, err := legacyH(data, k)
		if err != nil {
			t.Fatalf("legacyH(n=%d, k=%d): %v", len(data), k, err)
		}
		if math.Float64bits(fast) != math.Float64bits(legacy) {
			t.Errorf("n=%d k=%d: packed h=%v (%#x) != legacy h=%v (%#x)",
				len(data), k, fast, math.Float64bits(fast),
				legacy, math.Float64bits(legacy))
		}
	})
}

// TestVectorMatchesVectorAt pins Vector to the same values as VectorAt
// over 1..width.
func TestVectorMatchesVectorAt(t *testing.T) {
	data := make([]byte, 512)
	rand.New(rand.NewSource(3)).Read(data)
	vec, err := Vector(data, 10)
	if err != nil {
		t.Fatal(err)
	}
	at, err := VectorAt(data, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vec {
		if math.Float64bits(vec[i]) != math.Float64bits(at[i]) {
			t.Errorf("k=%d: Vector=%v VectorAt=%v", i+1, vec[i], at[i])
		}
	}
}

// TestVectorAtEmptyWidths pins the contract fix: an empty width set is an
// error, not a silently empty vector.
func TestVectorAtEmptyWidths(t *testing.T) {
	if _, err := VectorAt([]byte("data"), nil); !errors.Is(err, ErrBadWidths) {
		t.Errorf("VectorAt(empty widths): err = %v, want ErrBadWidths", err)
	}
	if _, err := VectorAt([]byte("data"), []int{}); !errors.Is(err, ErrBadWidths) {
		t.Errorf("VectorAt([]): err = %v, want ErrBadWidths", err)
	}
	if _, err := VectorAt([]byte("data"), []int{1, 0}); !errors.Is(err, ErrBadWidths) {
		t.Errorf("VectorAt(width 0): err = %v, want ErrBadWidths", err)
	}
	if _, err := VectorAt([]byte("ab"), []int{1, 3}); err != ErrShortSequence {
		t.Errorf("VectorAt(short data): err = %v, want ErrShortSequence", err)
	}
}

// TestNormalizeSEdgeCases re-pins the degenerate stream lengths the
// streaming estimator depends on: zero elements and a single element both
// carry zero diversity.
func TestNormalizeSEdgeCases(t *testing.T) {
	for k := 1; k <= 10; k++ {
		if got := NormalizeS(0, 0, k); got != 0 {
			t.Errorf("NormalizeS(n=0, k=%d) = %v, want 0", k, got)
		}
		if got := NormalizeS(123.45, 0, k); got != 0 {
			t.Errorf("NormalizeS(S>0, n=0, k=%d) = %v, want 0", k, got)
		}
		if got := NormalizeS(0, 1, k); got != 0 {
			t.Errorf("NormalizeS(n=1, k=%d) = %v, want 0", k, got)
		}
		if got := NormalizeS(-10, 1, k); got != 0 {
			t.Errorf("NormalizeS(S<0, n=1, k=%d) = %v, want 0", k, got)
		}
	}
}

// TestVectorAllocRegression is the alloc budget gate for the hot path: a
// warm pooled counter must extract a k <= 8 entropy vector from a 1 KiB
// payload with only the result-slice allocations, and the legacy
// string-keyed path must cost at least 5x more allocations (the PR's
// acceptance ratio).
func TestVectorAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	data := make([]byte, 1024)
	rand.New(rand.NewSource(9)).Read(data)
	widths := []int{1, 2, 3, 4, 5, 6, 7, 8}

	// Warm the pool so map capacity is in steady state.
	for i := 0; i < 4; i++ {
		if _, err := VectorAt(data, widths); err != nil {
			t.Fatal(err)
		}
	}
	fast := testing.AllocsPerRun(50, func() {
		if _, err := VectorAt(data, widths); err != nil {
			t.Fatal(err)
		}
	})
	// One alloc for the result slice; a little headroom for pool churn
	// under GC pressure.
	if fast > 4 {
		t.Errorf("packed VectorAt allocs/op = %v, want <= 4", fast)
	}
	legacy := testing.AllocsPerRun(10, func() {
		if _, err := LegacyVectorAt(data, widths); err != nil {
			t.Fatal(err)
		}
	})
	if legacy < 5*fast {
		t.Errorf("legacy allocs/op = %v, packed = %v: want >= 5x reduction", legacy, fast)
	}
	t.Logf("allocs/op: packed=%v legacy=%v (%.0fx)", fast, legacy, legacy/math.Max(fast, 1))
}

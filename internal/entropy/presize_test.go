package entropy

import (
	"math/rand"
	"testing"
)

// TestFlatSlotsForClasses pins the payload-length → capacity classes: the
// 1 KiB class keeps the historical default, 4 KiB payloads get the 8192
// slots they need to scan growth-free, and the cap bounds pool memory.
func TestFlatSlotsForClasses(t *testing.T) {
	cases := []struct{ grams, want int }{
		{0, flatInitialSlots},
		{256, flatInitialSlots},
		{1024, flatInitialSlots},
		{1535, flatInitialSlots},     // 3/4·2048 - 1: last size that fits
		{1536, 2 * flatInitialSlots}, // hits the grow threshold exactly
		{4096, 1 << 13},              // the 4 KiB payload class
		{1 << 20, maxPresizedSlots},  // capped, not unbounded
	}
	for _, c := range cases {
		if got := flatSlotsFor(c.grams); got != c.want {
			t.Errorf("flatSlotsFor(%d) = %d, want %d", c.grams, got, c.want)
		}
		if got := flatSlotsFor(c.grams); got <= maxPresizedSlots && c.grams < maxPresizedSlots/4*3 && got/4*3 <= c.grams {
			t.Errorf("flatSlotsFor(%d) = %d still grows mid-scan (growAt %d)", c.grams, got, got/4*3)
		}
	}
}

// TestNoMidScanGrowthAt4KiB scans a worst-case high-entropy 4 KiB payload
// (every k-gram distinct, maximum distinct keys) through pre-sized narrow
// and wide tables and asserts the slot array never grew mid-scan — the
// ROADMAP item 4 regression where 4 KiB packed vectors paid 2048→4096→8192
// rehashes per width.
func TestNoMidScanGrowthAt4KiB(t *testing.T) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(99)).Read(data)

	for k := 3; k <= MaxPackedWidth; k++ {
		grams := len(data) - k + 1
		tb := new(flatTable)
		tb.initSlots(flatSlotsFor(grams))
		before := len(tb.slots)
		tb.scan(data, k)
		if len(tb.slots) != before {
			t.Errorf("k=%d: narrow table grew mid-scan %d → %d slots", k, before, len(tb.slots))
		}
		if tb.size == 0 {
			t.Fatalf("k=%d: scan counted nothing", k)
		}
	}
	for k := MaxPackedWidth + 1; k <= MaxWidePackedWidth; k++ {
		grams := len(data) - k + 1
		tb := new(wideTable)
		tb.initSlots(flatSlotsFor(grams))
		before := len(tb.slots)
		tb.scan(data, k)
		if len(tb.slots) != before {
			t.Errorf("k=%d: wide table grew mid-scan %d → %d slots", k, before, len(tb.slots))
		}
	}
}

// TestPresizedVectorMatchesLegacy re-runs the bit-identity check at the 4
// KiB length class specifically, so the pre-sizing path (fresh initSlots at
// 8192, and a pooled smaller table being re-sized) cannot drift from the
// legacy fold.
func TestPresizedVectorMatchesLegacy(t *testing.T) {
	widths := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1024, 2048, 4096} {
		data := make([]byte, n)
		rng.Read(data)
		got, err := VectorAt(data, widths)
		if err != nil {
			t.Fatal(err)
		}
		want, err := LegacyVectorAt(data, widths)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("len %d width %d: packed %v != legacy %v", n, widths[i], got[i], want[i])
			}
		}
	}
}

package entropy

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmptyDistribution is returned when a divergence is requested against a
// distribution with no mass.
var ErrEmptyDistribution = errors.New("entropy: empty probability distribution")

// Distribution is a discrete probability distribution over k-byte elements,
// keyed by the raw element bytes. Probabilities are expected to sum to ~1.
type Distribution map[string]float64

// NewDistribution converts k-gram counts into a probability distribution.
func NewDistribution(counts map[string]int) (Distribution, error) {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil, ErrEmptyDistribution
	}
	dist := make(Distribution, len(counts))
	for elem, c := range counts {
		if c > 0 {
			dist[elem] = float64(c) / float64(total)
		}
	}
	return dist, nil
}

// DistributionOf builds the k-gram probability distribution of data.
func DistributionOf(data []byte, k int) (Distribution, error) {
	counts, err := CountKGrams(data, k)
	if err != nil {
		return nil, err
	}
	return NewDistribution(counts)
}

// Entropy returns the Shannon entropy of the distribution in bits.
func (p Distribution) Entropy() float64 {
	var h float64
	for _, prob := range p {
		if prob > 0 {
			h -= prob * math.Log2(prob)
		}
	}
	return h
}

// Mix returns the average distribution M = (p+q)/2.
func (p Distribution) Mix(q Distribution) Distribution {
	m := make(Distribution, len(p)+len(q))
	for elem, prob := range p {
		m[elem] += prob / 2
	}
	for elem, prob := range q {
		m[elem] += prob / 2
	}
	return m
}

// KL returns the Kullback-Leibler distance KLD(p||q) in bits. It returns an
// error when q lacks support for an element p assigns mass to, because the
// distance is then infinite.
func KL(p, q Distribution) (float64, error) {
	if len(p) == 0 || len(q) == 0 {
		return 0, ErrEmptyDistribution
	}
	var d float64
	for elem, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := q[elem]
		if qi <= 0 {
			return 0, fmt.Errorf("entropy: KL distance undefined, q has no mass on element %q", elem)
		}
		d += pi * math.Log2(pi/qi)
	}
	return d, nil
}

// JSD returns the Jensen-Shannon divergence between p and q (Formula 2):
//
//	JSD(p||q) = H(M) - H(p)/2 - H(q)/2,  M = (p+q)/2
//
// JSD is computed with base-2 logarithms and then normalized by 1 bit, so
// the result is bounded in [0, 1], symmetric, and 0 iff p == q — matching
// the "element/symbol" unit the paper plots in Figure 3.
func JSD(p, q Distribution) (float64, error) {
	if len(p) == 0 || len(q) == 0 {
		return 0, ErrEmptyDistribution
	}
	m := p.Mix(q)
	d := m.Entropy() - p.Entropy()/2 - q.Entropy()/2
	// Floating-point cancellation can push the value epsilon outside the
	// theoretical [0,1] bound.
	return math.Min(1, math.Max(0, d)), nil
}

// PrefixJSD measures how well the first-portion element distribution of
// data represents the whole: it returns JSD(P||Q) where P is the k-gram
// distribution of the first ceil(portion*len(data)) bytes and Q is the
// distribution of all of data. This is the Hypothesis-2 measurement behind
// Figure 3. portion must be in (0, 1].
func PrefixJSD(data []byte, portion float64, k int) (float64, error) {
	if portion <= 0 || portion > 1 {
		return 0, fmt.Errorf("entropy: portion %v outside (0, 1]", portion)
	}
	b := int(math.Ceil(portion * float64(len(data))))
	if b < k {
		return 0, ErrShortSequence
	}
	p, err := DistributionOf(data[:b], k)
	if err != nil {
		return 0, err
	}
	q, err := DistributionOf(data, k)
	if err != nil {
		return 0, err
	}
	return JSD(p, q)
}

package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustDist(t *testing.T, counts map[string]int) Distribution {
	t.Helper()
	d, err := NewDistribution(counts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDistributionNormalizes(t *testing.T) {
	d := mustDist(t, map[string]int{"a": 3, "b": 1})
	if got := d["a"]; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("p(a) = %v, want 0.75", got)
	}
	var sum float64
	for _, p := range d {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum = %v, want 1", sum)
	}
}

func TestNewDistributionEmpty(t *testing.T) {
	if _, err := NewDistribution(map[string]int{}); err != ErrEmptyDistribution {
		t.Errorf("err = %v, want ErrEmptyDistribution", err)
	}
}

func TestDistributionEntropy(t *testing.T) {
	uniform := mustDist(t, map[string]int{"a": 1, "b": 1, "c": 1, "d": 1})
	if got := uniform.Entropy(); math.Abs(got-2) > 1e-12 {
		t.Errorf("H(uniform-4) = %v, want 2 bits", got)
	}
	point := mustDist(t, map[string]int{"a": 10})
	if got := point.Entropy(); got != 0 {
		t.Errorf("H(point mass) = %v, want 0", got)
	}
}

func TestKLIdentity(t *testing.T) {
	p := mustDist(t, map[string]int{"a": 2, "b": 3, "c": 5})
	d, err := KL(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d) > 1e-12 {
		t.Errorf("KL(p||p) = %v, want 0", d)
	}
}

func TestKLUndefinedSupport(t *testing.T) {
	p := mustDist(t, map[string]int{"a": 1, "b": 1})
	q := mustDist(t, map[string]int{"a": 1})
	if _, err := KL(p, q); err == nil {
		t.Error("KL with missing support: want error")
	}
}

func TestKLKnownValue(t *testing.T) {
	// p = (1/2,1/2), q = (1/4,3/4):
	// KL = 0.5*log2(2) + 0.5*log2(2/3) = 0.5 - 0.5*log2(3) + 0.5
	p := mustDist(t, map[string]int{"a": 1, "b": 1})
	q := mustDist(t, map[string]int{"a": 1, "b": 3})
	d, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log2(0.5/0.25) + 0.5*math.Log2(0.5/0.75)
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", d, want)
	}
}

func TestJSDIdentity(t *testing.T) {
	p := mustDist(t, map[string]int{"x": 4, "y": 6})
	d, err := JSD(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("JSD(p||p) = %v, want 0", d)
	}
}

func TestJSDDisjointSupportIsMaximal(t *testing.T) {
	p := mustDist(t, map[string]int{"a": 1})
	q := mustDist(t, map[string]int{"b": 1})
	d, err := JSD(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("JSD(disjoint) = %v, want 1", d)
	}
}

func TestJSDEqualsAverageKLToMix(t *testing.T) {
	// Cross-check the H(M)-H(P)/2-H(Q)/2 form against the definitional
	// average-of-KL form on overlapping distributions.
	p := mustDist(t, map[string]int{"a": 1, "b": 2, "c": 3})
	q := mustDist(t, map[string]int{"b": 5, "c": 1, "d": 4})
	jsd, err := JSD(p, q)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Mix(q)
	kp, err := KL(p, m)
	if err != nil {
		t.Fatal(err)
	}
	kq, err := KL(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := (kp + kq) / 2; math.Abs(jsd-want) > 1e-9 {
		t.Errorf("JSD = %v, avg-KL form = %v", jsd, want)
	}
}

func TestJSDEmpty(t *testing.T) {
	p := mustDist(t, map[string]int{"a": 1})
	if _, err := JSD(p, Distribution{}); err != ErrEmptyDistribution {
		t.Errorf("err = %v, want ErrEmptyDistribution", err)
	}
}

func TestPrefixJSDDecreasesWithPortion(t *testing.T) {
	// For a stationary source, a longer prefix must represent the whole
	// better (smaller JSD) than a very short one, and the full file is an
	// exact match.
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(rng.Intn(64))
	}
	short, err := PrefixJSD(data, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	long, err := PrefixJSD(data, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := PrefixJSD(data, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(full < long && long < short) {
		t.Errorf("JSD should shrink with portion: 5%%=%v 50%%=%v 100%%=%v", short, long, full)
	}
	if full > 1e-12 {
		t.Errorf("JSD(whole||whole) = %v, want 0", full)
	}
}

func TestPrefixJSDInvalidPortion(t *testing.T) {
	for _, portion := range []float64{0, -0.5, 1.5} {
		if _, err := PrefixJSD([]byte("abcabc"), portion, 1); err == nil {
			t.Errorf("portion=%v: want error", portion)
		}
	}
}

func TestPrefixJSDTooShort(t *testing.T) {
	if _, err := PrefixJSD([]byte("abcdefgh"), 0.1, 2); err != ErrShortSequence {
		t.Errorf("err = %v, want ErrShortSequence", err)
	}
}

// Property: JSD is symmetric and bounded in [0,1] for arbitrary count maps.
func TestJSDSymmetryBoundsProperty(t *testing.T) {
	type counts struct {
		A, B, C, D uint8
	}
	prop := func(c1, c2 counts) bool {
		m1 := map[string]int{"a": int(c1.A), "b": int(c1.B), "c": int(c1.C), "d": int(c1.D)}
		m2 := map[string]int{"a": int(c2.A), "b": int(c2.B), "c": int(c2.C), "d": int(c2.D)}
		p, err1 := NewDistribution(m1)
		q, err2 := NewDistribution(m2)
		if err1 != nil || err2 != nil {
			return true // empty draws are fine to skip
		}
		dpq, err1 := JSD(p, q)
		dqp, err2 := JSD(q, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(dpq-dqp) < 1e-12 && dpq >= 0 && dpq <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

package ops

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ml/svm"
	"iustitia/internal/packet"
)

// trainSVMClassifier trains a small SVM over the same geometry as
// trainClassifier's CART, so the two make distinguishable swap
// candidates (Kind differs) that both serve the deployment.
func trainSVMClassifier(t *testing.T, seed int64) *core.Classifier {
	t.Helper()
	pool, err := corpus.NewGenerator(seed).Pool(12, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := core.Train(pool, core.TrainConfig{
		Kind: core.KindSVM,
		Dataset: core.DatasetConfig{
			Widths:     []int{1, 2},
			Method:     core.MethodPrefix,
			BufferSize: 8,
			Seed:       seed,
		},
		SVM: svm.Config{Kernel: svm.RBF{Gamma: 50}, C: 1000, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// The replica-swap churn proof: every shard classifies through its own
// replica while SWAP-MODEL alternates two models through the manager.
// Run under -race this is the data-race check for the ReplicaSet flip
// fan-out; at quiescence the set must not be torn (every replica serves
// the same model Kind) and flow accounting must conserve.
func TestReplicaSwapChurnUnderLoad(t *testing.T) {
	cart := trainClassifier(t, 1)
	svmClf := trainSVMClassifier(t, 2)

	const shards = 4
	rs, err := core.NewReplicaSet(cart, shards)
	if err != nil {
		t.Fatal(err)
	}
	classifiers := make([]flow.Classifier, shards)
	for i := range classifiers {
		classifiers[i] = rs.Replica(i)
	}
	eng, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize: 8,
		Classifier: cart,
		Faults:     flow.FaultPolicy{Tolerate: true},
	}, shards, classifiers)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{
		Engine:          eng,
		Classifier:      rs,
		Classes:         corpus.NumClasses,
		BufferSize:      8,
		ProbationWindow: 5 * time.Millisecond,
		ProbationPoll:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	blobs := [][]byte{jsonModel(t, cart), jsonModel(t, svmClf)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := &packet.Packet{
					Tuple:   opsTuple(uint16(w*10_000 + i + 1)),
					Time:    time.Duration(i) * time.Millisecond,
					Flags:   packet.FlagACK,
					Payload: lowEntropy,
				}
				if _, err := eng.Process(p); err != nil {
					panic(fmt.Sprintf("Process: %v", err))
				}
			}
		}(w)
	}

	swaps := 0
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		_, err := m.SwapModel(blobs[swaps%2])
		switch {
		case err == nil:
			swaps++
		case errors.Is(err, ErrSwapBusy):
			time.Sleep(time.Millisecond)
		default:
			close(stop)
			wg.Wait()
			t.Fatalf("swap %d: %v", swaps, err)
		}
	}
	close(stop)
	wg.Wait()
	waitSwapIdle(t, m)
	if swaps < 2 {
		t.Fatalf("only %d swaps landed in the churn window", swaps)
	}

	// Quiescent invariants: the set is not torn, and the ops surface
	// agrees with what the shards serve.
	want := rs.Kind()
	for i := 0; i < rs.Len(); i++ {
		if got := rs.Replica(i).Kind(); got != want {
			t.Fatalf("replica %d serves %v, set reports %v: torn replica set", i, got, want)
		}
	}
	if _, err := eng.FlushAll(time.Hour); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if got := s.Classified + s.Fallback + s.Dropped + s.Pending; got != s.Admitted {
		t.Fatalf("conservation: %d classified+fallback+dropped+pending, %d admitted", got, s.Admitted)
	}
	if nm := m.NodeMetrics(); nm.Swap.Swaps != swaps {
		t.Fatalf("manager counted %d swaps, test drove %d", nm.Swap.Swaps, swaps)
	}
}

package ops

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ingest"
	"iustitia/internal/ml/cart"
	"iustitia/internal/packet"
	"iustitia/internal/persist"
)

// trainClassifier trains a small CART model over widths {1,2} at b=8.
func trainClassifier(t *testing.T, seed int64) *core.Classifier {
	t.Helper()
	pool, err := corpus.NewGenerator(seed).Pool(12, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := core.Train(pool, core.TrainConfig{
		Kind: core.KindCART,
		Dataset: core.DatasetConfig{
			Widths:     []int{1, 2},
			Method:     core.MethodPrefix,
			BufferSize: 8,
			Seed:       seed,
		},
		CART: cart.Config{MinLeaf: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// newOpsEngine builds an engine serving clf with a hair-trigger breaker
// (two consecutive failures degrade a shard) and probes effectively
// disabled, so a degraded shard stays visibly degraded for the test.
func newOpsEngine(t *testing.T, clf *core.Classifier, shards int) *flow.ParallelEngine {
	t.Helper()
	pe, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize: 8,
		Classifier: clf,
		Faults:     flow.FaultPolicy{Tolerate: true, TripAfter: 2, ProbeEvery: 1 << 20},
	}, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func newTestManager(t *testing.T, clf *core.Classifier, eng *flow.ParallelEngine) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Engine:          eng,
		Classifier:      clf,
		Classes:         corpus.NumClasses,
		BufferSize:      8,
		ProbationWindow: 300 * time.Millisecond,
		ProbationPoll:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func jsonModel(t *testing.T, clf *core.Classifier) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func snapshotModel(t *testing.T, clf *core.Classifier) []byte {
	t.Helper()
	payload, err := clf.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	return persist.Encode(persist.KindClassifier, payload)
}

// tripModelJSON hand-crafts a CART model that behaves on low-entropy
// payloads but emits class 99 — out of range, a breaker-tripping fault —
// once the width-1 entropy exceeds 0.3. It is the "passes shadow on text
// replay, detonates on live encrypted traffic" candidate.
func tripModelJSON(t *testing.T, classes int) []byte {
	t.Helper()
	tree := &cart.Tree{
		Classes: classes,
		Width:   1,
		Root: &cart.Node{
			Feature:   0,
			Threshold: 0.3,
			Left:      &cart.Node{Label: int(corpus.Text)},
			Right:     &cart.Node{Label: 99},
		},
	}
	blob, err := json.Marshal(struct {
		Kind   core.ModelKind `json:"kind"`
		Widths []int          `json:"widths"`
		Tree   *cart.Tree     `json:"tree"`
	}{core.KindCART, []int{1}, tree})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func opsTuple(n uint16) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 9}, DstIP: [4]byte{192, 168, 0, 9},
		SrcPort: n, DstPort: 443, Transport: packet.TCP,
	}
}

// feedFlows pushes one full-buffer packet per flow so each classifies
// immediately (and, in buffered mode, lands in the shadow-sample ring).
func feedFlows(t *testing.T, eng *flow.ParallelEngine, base uint16, n int, payload []byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := &packet.Packet{
			Tuple:   opsTuple(base + uint16(i)),
			Time:    time.Duration(i) * time.Millisecond,
			Flags:   packet.FlagACK,
			Payload: payload,
		}
		if _, err := eng.Process(p); err != nil {
			t.Fatalf("Process: %v", err)
		}
	}
}

// lowEntropy fills the 8-byte buffer with one repeated byte (h1 = 0);
// highEntropy with 8 distinct bytes (h1 ≈ 0.375 > the trip threshold).
var (
	lowEntropy  = bytes.Repeat([]byte{'a'}, 8)
	highEntropy = []byte{0x01, 0x53, 0x9b, 0xe7, 0x2c, 0x78, 0xc4, 0x3f}
)

// waitSwapIdle waits out an in-flight probation window.
func waitSwapIdle(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !m.NodeMetrics().Swap.InProgress {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("swap never left probation")
}

func TestSwapModelAcceptsJSONAndSnapshot(t *testing.T) {
	live := trainClassifier(t, 1)
	eng := newOpsEngine(t, live, 2)
	m := newTestManager(t, live, eng)
	defer m.Close()

	res, err := m.SwapModel(jsonModel(t, trainClassifier(t, 2)))
	if err != nil {
		t.Fatalf("JSON swap: %v", err)
	}
	if res.Kind != "cart" || res.ShadowSamples == 0 {
		t.Errorf("SwapResult = %+v, want cart kind and shadow samples", res)
	}
	waitSwapIdle(t, m)

	if _, err := m.SwapModel(snapshotModel(t, trainClassifier(t, 3))); err != nil {
		t.Fatalf("snapshot swap: %v", err)
	}
	waitSwapIdle(t, m)

	sm := m.NodeMetrics().Swap
	if sm.Swaps != 2 || sm.Rejected != 0 || sm.Rollbacks != 0 {
		t.Errorf("swap metrics = %+v, want 2 swaps, 0 rejected, 0 rollbacks", sm)
	}
}

func TestSwapModelRejectsGarbage(t *testing.T) {
	live := trainClassifier(t, 1)
	eng := newOpsEngine(t, live, 1)
	m := newTestManager(t, live, eng)
	defer m.Close()

	if _, err := m.SwapModel([]byte("not a model")); err == nil {
		t.Fatal("garbage blob accepted")
	}
	if sm := m.NodeMetrics().Swap; sm.Rejected != 1 || sm.Swaps != 0 {
		t.Errorf("swap metrics = %+v, want 1 rejected, 0 swaps", sm)
	}
	// The live model must be untouched.
	if _, err := live.Classify(highEntropy); err != nil {
		t.Errorf("live model broken after rejected swap: %v", err)
	}
}

func TestSwapModelRejectsMetadataMismatch(t *testing.T) {
	live := trainClassifier(t, 1)

	t.Run("class count", func(t *testing.T) {
		eng := newOpsEngine(t, live, 1)
		m := newTestManager(t, live, eng)
		defer m.Close()
		_, err := m.SwapModel(tripModelJSON(t, 2)) // 2-class model vs 3-class deployment
		if err == nil || !strings.Contains(err.Error(), "classes") {
			t.Fatalf("err = %v, want class-count rejection", err)
		}
	})

	t.Run("width over buffer", func(t *testing.T) {
		eng := newOpsEngine(t, live, 1)
		m := newTestManager(t, live, eng)
		defer m.Close()
		// A model wanting 16-byte grams can never see a full vector from
		// an 8-byte buffer.
		pool, err := corpus.NewGenerator(7).Pool(8, 256, 1024)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := core.Train(pool, core.TrainConfig{
			Kind: core.KindCART,
			Dataset: core.DatasetConfig{
				Widths:     []int{1, 16},
				Method:     core.MethodPrefix,
				BufferSize: 32,
				Seed:       7,
			},
			CART: cart.Config{MinLeaf: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.SwapModel(jsonModel(t, wide))
		if err == nil || !strings.Contains(err.Error(), "buffer") {
			t.Fatalf("err = %v, want width rejection", err)
		}
	})

	t.Run("stream widths pinned", func(t *testing.T) {
		eng := newOpsEngine(t, live, 1)
		mgr, err := NewManager(Config{
			Engine: eng, Classifier: live, Classes: corpus.NumClasses,
			BufferSize: 8, Stream: true,
			ProbationWindow: 50 * time.Millisecond, ProbationPoll: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		// live widths are {1,2}; the trip model wants {1}.
		_, err = mgr.SwapModel(tripModelJSON(t, corpus.NumClasses))
		if err == nil || !strings.Contains(err.Error(), "widths") {
			t.Fatalf("err = %v, want stream width rejection", err)
		}
	})
}

func TestSwapModelShadowCatchesFaultyCandidate(t *testing.T) {
	live := trainClassifier(t, 1)
	eng := newOpsEngine(t, live, 1)
	m := newTestManager(t, live, eng)
	defer m.Close()

	// No traffic yet: shadow uses the synthetic textures, whose encrypted
	// sample drives the trip model's out-of-range branch.
	_, err := m.SwapModel(tripModelJSON(t, corpus.NumClasses))
	if err == nil || !strings.Contains(err.Error(), "shadow") {
		t.Fatalf("err = %v, want shadow rejection", err)
	}
	if sm := m.NodeMetrics().Swap; sm.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", sm.Rejected)
	}
}

func TestSwapModelProbationRollback(t *testing.T) {
	live := trainClassifier(t, 1)
	eng := newOpsEngine(t, live, 1)
	m, err := NewManager(Config{
		Engine: eng, Classifier: live, Classes: corpus.NumClasses, BufferSize: 8,
		ProbationWindow: 2 * time.Second, ProbationPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Fill the shadow-sample ring with low-entropy traffic only, so the
	// trip model survives shadow classification...
	feedFlows(t, eng, 100, 4, lowEntropy)
	if _, err := m.SwapModel(tripModelJSON(t, corpus.NumClasses)); err != nil {
		t.Fatalf("trip model should pass a text-only shadow: %v", err)
	}

	// ...then detonates on live encrypted traffic: two consecutive
	// out-of-range classes trip the breaker, probation sees the degraded
	// shard and restores the previous model.
	feedFlows(t, eng, 200, 3, highEntropy)
	deadline := time.Now().Add(4 * time.Second)
	for m.NodeMetrics().Swap.Rollbacks == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no rollback; metrics = %+v, engine degraded = %d",
				m.NodeMetrics().Swap, eng.Stats().Degraded)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The previous model is serving again.
	if cls, err := live.Classify(highEntropy); err != nil || cls < 0 || int(cls) >= corpus.NumClasses {
		t.Errorf("after rollback Classify = (%v, %v), want a valid class", cls, err)
	}
	sm := m.NodeMetrics().Swap
	if sm.Swaps != 1 || sm.Rollbacks != 1 || sm.InProgress {
		t.Errorf("swap metrics = %+v, want 1 swap, 1 rollback, idle", sm)
	}
}

func TestSwapModelBusy(t *testing.T) {
	live := trainClassifier(t, 1)
	eng := newOpsEngine(t, live, 1)
	m := newTestManager(t, live, eng)
	defer m.Close()

	if _, err := m.SwapModel(jsonModel(t, trainClassifier(t, 2))); err != nil {
		t.Fatal(err)
	}
	// The first swap is in probation; a second must be refused.
	if _, err := m.SwapModel(jsonModel(t, trainClassifier(t, 3))); !errors.Is(err, ErrSwapBusy) {
		t.Fatalf("err = %v, want ErrSwapBusy", err)
	}
	waitSwapIdle(t, m)
	if sm := m.NodeMetrics().Swap; sm.Swaps != 1 || sm.Rejected != 1 {
		t.Errorf("swap metrics = %+v, want 1 swap, 1 rejected", sm)
	}
}

func TestParseSettings(t *testing.T) {
	st, err := ParseSettings([]string{"overflow=shed", "batch=8", "max_pending=16", "evict=partial", "idle_flush=250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if *st.Overflow != ingest.OverflowShed || *st.Batch != 8 || *st.MaxPending != 16 ||
		*st.Evict != flow.EvictClassifyPartial || *st.IdleFlush != 250*time.Millisecond {
		t.Errorf("parsed settings = %+v", st)
	}
	if got := st.Keys(); strings.Join(got, ",") != "overflow,batch,max_pending,evict,idle_flush" {
		t.Errorf("Keys = %v", got)
	}

	for _, bad := range [][]string{
		{"overflow"},          // no value
		{"overflow=banana"},   // unknown policy
		{"batch=0"},           // not positive
		{"max_pending=-1"},    // negative
		{"evict=newest"},      // unknown policy
		{"idle_flush=-1s"},    // negative duration
		{"turbo=on"},          // unknown key
	} {
		if _, err := ParseSettings(bad); err == nil {
			t.Errorf("ParseSettings(%v) accepted", bad)
		}
	}
}

func TestParseConfigFile(t *testing.T) {
	st, err := ParseConfigFile([]byte("# ops config\n\noverflow = shed\nidle_flush = 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Overflow == nil || *st.Overflow != ingest.OverflowShed ||
		st.IdleFlush == nil || *st.IdleFlush != time.Second {
		t.Errorf("parsed config = %+v", st)
	}
	if _, err := ParseConfigFile([]byte("overflow=shed\nbogus=1\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-numbered unknown-key error", err)
	}
}

// startOpsServer wires a full manager + ingest server pair with a status
// listener, the way serve main does.
func startOpsServer(t *testing.T, m *Manager, eng *flow.ParallelEngine, drain func()) (srv *ingest.Server, statusAddr string) {
	t.Helper()
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	statusLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m.cfg.Drain = drain
	srv, err = ingest.NewServer(ingest.Config{
		Engine:         eng,
		Listeners:      []net.Listener{dataLn},
		StatusListener: statusLn,
		NodeName:       "ops-node",
		AdminHandler:   m.HandleAdmin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	m.AttachServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, statusLn.Addr().String()
}

// adminRoundTrip sends one verb line and returns the full reply.
func adminRoundTrip(t *testing.T, addr, line string) string {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(c, "%s\n", line); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(c); err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(buf.String())
}

func TestAdminVerbsOverStatusListener(t *testing.T) {
	live := trainClassifier(t, 1)
	eng := newOpsEngine(t, live, 2)
	m := newTestManager(t, live, eng)
	defer m.Close()
	drained := make(chan struct{}, 1)
	_, addr := startOpsServer(t, m, eng, func() { drained <- struct{}{} })

	if got := adminRoundTrip(t, addr, "OPS"); !strings.HasPrefix(got, "OK v1 verbs=") {
		t.Errorf("OPS reply = %q", got)
	}
	if got := adminRoundTrip(t, addr, "SET overflow=shed max_pending=4 evict=shed"); got != "OK v1 applied=overflow,max_pending,evict" {
		t.Errorf("SET reply = %q", got)
	}
	if got := adminRoundTrip(t, addr, "SET turbo=on"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("bad SET reply = %q", got)
	}
	if got := adminRoundTrip(t, addr, "RELOAD"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("RELOAD with no config file = %q", got)
	}
	// The EXPORT/IMPORT/STATUS verbs must still be served around the admin
	// hook; an unknown verb still errors.
	if got := adminRoundTrip(t, addr, "FROBNICATE"); !strings.HasPrefix(got, "ERR unknown command") {
		t.Errorf("unknown verb reply = %q", got)
	}

	nm, err := ProbeMetrics(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("ProbeMetrics: %v", err)
	}
	if nm.Version != Version || nm.Node != "ops-node" || nm.Settings.Overflow != "shed" {
		t.Errorf("metrics = version %d node %q overflow %q", nm.Version, nm.Node, nm.Settings.Overflow)
	}
	if nm.Swap.ModelKind != "cart" || len(nm.Verdicts) != corpus.NumClasses {
		t.Errorf("metrics model=%q verdicts=%d", nm.Swap.ModelKind, len(nm.Verdicts))
	}
	if nm.Queue.Capacity == 0 {
		t.Error("metrics queue capacity = 0, want the configured depth")
	}

	if got := adminRoundTrip(t, addr, "DRAIN"); got != "OK v1 draining" {
		t.Errorf("DRAIN reply = %q", got)
	}
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Error("DRAIN verb never fired the drain hook")
	}
}

func TestReloadConfigFile(t *testing.T) {
	live := trainClassifier(t, 1)
	eng := newOpsEngine(t, live, 1)
	path := filepath.Join(t.TempDir(), "ops.conf")
	if err := os.WriteFile(path, []byte("overflow=disconnect\nidle_flush=42ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{
		Engine: eng, Classifier: live, Classes: corpus.NumClasses, BufferSize: 8,
		ConfigPath:      path,
		ProbationWindow: 50 * time.Millisecond, ProbationPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, addr := startOpsServer(t, m, eng, nil)

	got := adminRoundTrip(t, addr, "RELOAD")
	want := fmt.Sprintf("OK v1 reloaded=%s applied=overflow,idle_flush", path)
	if got != want {
		t.Errorf("RELOAD reply = %q, want %q", got, want)
	}
	nm, err := ProbeMetrics(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Settings.Overflow != "disconnect" || nm.Swap.Reconfigs != 1 {
		t.Errorf("after RELOAD: overflow=%q reconfigs=%d", nm.Settings.Overflow, nm.Swap.Reconfigs)
	}

	// A malformed file must leave the knobs alone.
	if err := os.WriteFile(path, []byte("overflow=banana\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReloadConfig(); err == nil {
		t.Error("malformed config file applied")
	}
}

func TestNodeMetricsJSONRoundTrip(t *testing.T) {
	live := trainClassifier(t, 1)
	eng := newOpsEngine(t, live, 2)
	m := newTestManager(t, live, eng)
	defer m.Close()
	feedFlows(t, eng, 300, 6, lowEntropy)

	nm := m.NodeMetrics()
	blob, err := json.Marshal(nm)
	if err != nil {
		t.Fatal(err)
	}
	var back NodeMetrics
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Engine.Classified != 6 || len(back.ShardLatency) != 2 {
		t.Errorf("round-tripped metrics: classified=%d shards=%d", back.Engine.Classified, len(back.ShardLatency))
	}
	total := 0
	rate := 0.0
	for _, v := range back.Verdicts {
		total += v.Packets
		rate += v.Rate
	}
	if total != 6 || rate < 0.999 || rate > 1.001 {
		t.Errorf("verdicts: %d packets, rates sum %v", total, rate)
	}
	obs := 0
	for _, sh := range back.ShardLatency {
		obs += sh.Total
	}
	if obs != 6 {
		t.Errorf("latency histogram observations = %d, want 6", obs)
	}
}

package ops

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/persist"
)

// This file is the atomic model hot-swap pipeline:
//
//	decode → verify metadata → shadow-classify → flip → probation
//
// Decode accepts either a persist.KindClassifier snapshot frame or the
// JSON form. Verification refuses a candidate whose class count or
// feature geometry cannot serve the live engine. Shadow classification
// runs the candidate over recently classified payload buffers (or
// deterministic synthetic ones on a cold node) — a model that panics or
// mislabels out of range never reaches the hot path. The flip itself is
// core.Classifier.Swap: one atomic pointer store, no drain, in-flight
// classifications finish on the model they started with. Probation then
// watches the engine's degraded-shard count: a model that passes shadow
// but trips the PR 1 breaker under real traffic is rolled back to the
// previous model automatically.

// SwapResult describes a completed (flipped) swap.
type SwapResult struct {
	// Kind and Widths describe the installed model.
	Kind   string
	Widths []int
	// ShadowSamples is how many replay buffers the candidate classified
	// during verification.
	ShadowSamples int
}

// ErrSwapBusy is returned while another swap is mid-flight or in
// probation: two overlapping swaps would make "previous model" ambiguous.
var ErrSwapBusy = errors.New("ops: a model swap is already in progress")

// gated runs fn under the ingest frame gate when a server is attached
// (no frame mid-admission while the model surface flips); without a
// server — tests, or a node still booting — fn runs directly, relying on
// each replica's own atomic flip.
func (m *Manager) gated(fn func()) {
	if m.srv != nil {
		m.srv.Reconfigure(fn)
		return
	}
	fn()
}

// SwapModel runs the full pipeline on a candidate model blob. On any
// verification failure the live model is untouched and the error says
// why; on success the candidate is serving when this returns, with the
// probation watcher armed.
func (m *Manager) SwapModel(blob []byte) (SwapResult, error) {
	m.mu.Lock()
	if m.swapping {
		// A refused attempt counts as rejected, but the in-flight swap owns
		// lastSwap.
		m.rejected++
		m.mu.Unlock()
		return SwapResult{}, ErrSwapBusy
	}
	m.swapping = true
	m.mu.Unlock()

	res, err := m.swapLocked(blob)
	if err != nil {
		m.mu.Lock()
		m.rejected++
		m.lastSwap = err.Error()
		m.swapping = false
		m.mu.Unlock()
		return SwapResult{}, err
	}
	return res, nil
}

// swapLocked is the pipeline body; the caller holds the swapping flag
// (not the mutex). On success it starts the probation watcher, which is
// what eventually clears the flag.
func (m *Manager) swapLocked(blob []byte) (SwapResult, error) {
	cand, err := decodeCandidate(blob)
	if err != nil {
		return SwapResult{}, err
	}
	if err := m.verifyCandidate(cand); err != nil {
		return SwapResult{}, err
	}
	shadow, err := m.shadowClassify(cand)
	if err != nil {
		return SwapResult{}, err
	}

	baseline := m.cfg.Engine.Stats().Degraded
	var prev *core.Classifier
	// Under a ReplicaSet the flip touches one pointer per shard; running
	// it inside the ingest frame gate means no packet is admitted while
	// replicas disagree, so the swap stays observably atomic across the
	// whole set (a single shared Classifier flips in one store and gains
	// nothing, but the gate is cheap and the code stays uniform).
	m.gated(func() { prev = m.cfg.Classifier.Swap(cand) })

	m.mu.Lock()
	m.swaps++
	m.lastSwap = fmt.Sprintf("swapped to %s model (%d widths)", cand.Kind(), len(cand.Widths()))
	m.mu.Unlock()

	m.probation.Add(1)
	go m.watchProbation(prev, baseline)

	return SwapResult{
		Kind:          cand.Kind().String(),
		Widths:        cand.Widths(),
		ShadowSamples: shadow,
	}, nil
}

// watchProbation polls the engine's degraded-shard count for the
// probation window. A rise above the pre-swap baseline means the new
// model is tripping the breaker under live traffic: the previous model is
// swapped back in. (The breaker itself then recovers by probing, exactly
// as it does after any fault burst.)
func (m *Manager) watchProbation(prev *core.Classifier, baseline int) {
	defer m.probation.Done()
	deadline := time.Now().Add(m.cfg.ProbationWindow)
	for time.Now().Before(deadline) {
		time.Sleep(m.cfg.ProbationPoll)
		if m.cfg.Engine.Stats().Degraded > baseline {
			// Rollback restores every replica under the same frame gate the
			// flip used, so the set never serves mixed payloads.
			m.gated(func() { m.cfg.Classifier.Swap(prev) })
			m.mu.Lock()
			m.rollbacks++
			m.lastSwap = "probation: new model tripped the degraded breaker; previous model restored"
			m.swapping = false
			m.mu.Unlock()
			return
		}
	}
	m.mu.Lock()
	m.lastSwap = "probation passed"
	m.swapping = false
	m.mu.Unlock()
}

// decodeCandidate accepts a persist snapshot frame first (the production
// format), then the JSON form; both failing, the errors come back
// together so the operator sees why each path refused the blob.
func decodeCandidate(blob []byte) (*core.Classifier, error) {
	var snapErr error
	if payload, err := persist.DecodeKind(blob, persist.KindClassifier); err == nil {
		cand, err := core.DecodeSnapshot(payload)
		if err == nil {
			return cand, nil
		}
		snapErr = err
	} else {
		snapErr = err
	}
	cand, jsonErr := core.Load(bytes.NewReader(blob))
	if jsonErr == nil {
		return cand, nil
	}
	return nil, fmt.Errorf("ops: candidate model rejected: snapshot: %v; json: %v", snapErr, jsonErr)
}

// verifyCandidate cross-checks the candidate's metadata against the live
// deployment before any classification runs.
func (m *Manager) verifyCandidate(cand *core.Classifier) error {
	if got := cand.Classes(); got != m.cfg.Classes {
		return fmt.Errorf("ops: candidate model predicts over %d classes, deployment serves %d", got, m.cfg.Classes)
	}
	widths := cand.Widths()
	if m.cfg.Stream {
		// Sketch layout was baked to the width sequence at engine
		// construction: only an exact match can read the live vectors.
		live := m.cfg.Classifier.FeatureWidths()
		if !equalInts(widths, live) {
			return fmt.Errorf("ops: stream mode pins feature widths to %v; candidate wants %v", live, widths)
		}
		return nil
	}
	widest := 0
	for _, w := range widths {
		if w > widest {
			widest = w
		}
	}
	if widest > m.cfg.BufferSize {
		return fmt.Errorf("ops: candidate's widest feature (%d) exceeds the %d-byte buffer", widest, m.cfg.BufferSize)
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shadowClassify runs the candidate over the engine's ring of recently
// classified payload buffers; a node that has not classified yet (or runs
// in stream mode, which retains no payload) gets deterministic synthetic
// buffers instead. Every sample must classify without error, panic, or an
// out-of-range label.
func (m *Manager) shadowClassify(cand *core.Classifier) (int, error) {
	samples := m.cfg.Engine.SampleBuffers()
	if len(samples) == 0 {
		samples = syntheticSamples(m.cfg.BufferSize)
	}
	for i, sample := range samples {
		cls, err := safeClassify(cand, sample)
		if err != nil {
			return 0, fmt.Errorf("ops: shadow classification failed on sample %d/%d: %w", i+1, len(samples), err)
		}
		if cls < 0 || int(cls) >= m.cfg.Classes {
			return 0, fmt.Errorf("ops: shadow classification on sample %d/%d returned class %d, outside [0,%d)",
				i+1, len(samples), int(cls), m.cfg.Classes)
		}
	}
	return len(samples), nil
}

// safeClassify contains a panicking candidate the same way the engine's
// fault policy would — but at verification time, before it can serve.
func safeClassify(cand *core.Classifier, payload []byte) (cls corpus.Class, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ops: candidate panicked: %v", r)
		}
	}()
	return cand.Classify(payload)
}

// syntheticSamples builds three deterministic payload textures — low
// entropy (text-like), mid entropy (binary-like), high entropy
// (encrypted-like) — so even a cold node smoke-tests a candidate across
// the spectrum it will serve.
func syntheticSamples(size int) [][]byte {
	if size < 1 {
		size = 1
	}
	text := make([]byte, size)
	binary := make([]byte, size)
	encrypted := make([]byte, size)
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < size; i++ {
		text[i] = 'a' + byte(i%26)
		binary[i] = byte(i * 7)
		// xorshift64 gives a uniform-looking stream with no runtime
		// randomness, so verification is reproducible.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		encrypted[i] = byte(x)
	}
	return [][]byte{text, binary, encrypted}
}

package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"iustitia/internal/corpus"
)

// NodeMetrics is the structured metrics snapshot of one serving node,
// served as a single JSON line by the METRICS admin verb. It is the
// machine half of the ops story: where the STATUS line carries the
// conservation counters a router needs every probe, this document
// carries everything else — queue depths, verdict rates, latency
// histograms, swap history — in a schema that can grow keys without
// breaking consumers (decode with json.Unmarshal; unknown fields are
// skipped by construction).
type NodeMetrics struct {
	// Version is the admin protocol version that produced the snapshot.
	Version int `json:"version"`
	// Node and State mirror the STATUS line's identity and health FSM.
	Node  string `json:"node,omitempty"`
	State string `json:"state,omitempty"`
	// UptimeMS is milliseconds since Start; CheckpointAgeMS is
	// milliseconds since the last durable node checkpoint, -1 if none.
	UptimeMS        int64 `json:"uptime_ms"`
	CheckpointAgeMS int64 `json:"checkpoint_age_ms"`

	Transport TransportMetrics `json:"transport"`
	Engine    EngineMetrics    `json:"engine"`
	Queue     QueueMetrics     `json:"queue"`
	// Verdicts holds one entry per corpus class, in class order.
	Verdicts []VerdictMetrics `json:"verdicts"`
	// ShardLatency holds one classification-latency histogram per engine
	// shard.
	ShardLatency []LatencyMetrics `json:"shard_latency"`
	Swap         SwapMetrics      `json:"swap"`
	Settings     SettingsMetrics  `json:"settings"`
}

// TransportMetrics are the ingest-side counters (§9 law: received ==
// admitted + quarantined + shed).
type TransportMetrics struct {
	Received    int    `json:"received"`
	Admitted    int    `json:"admitted"`
	Quarantined int    `json:"quarantined"`
	Shed        int    `json:"shed"`
	Deduped     int    `json:"deduped"`
	SeenSeq     uint64 `json:"seen_seq"`
	AckedSeq    uint64 `json:"acked_seq"`
}

// EngineMetrics are the flow-engine verdict counters (§6 law: admitted ==
// classified + fallback + dropped + pending).
type EngineMetrics struct {
	Admitted       int `json:"admitted"`
	Classified     int `json:"classified"`
	Pending        int `json:"pending"`
	Fallback       int `json:"fallback"`
	Shed           int `json:"shed"`
	Dropped        int `json:"dropped"`
	Evicted        int `json:"evicted"`
	Failed         int `json:"failed"`
	DegradedShards int `json:"degraded_shards"`
	MigratedIn     int `json:"migrated_in"`
	MigratedOut    int `json:"migrated_out"`
}

// QueueMetrics is the ingest frame-queue occupancy, summed over workers.
type QueueMetrics struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// VerdictMetrics is one class's routed-packet count and its share of all
// routed packets (0 when nothing has been routed).
type VerdictMetrics struct {
	Class   string  `json:"class"`
	Packets int     `json:"packets"`
	Rate    float64 `json:"rate"`
}

// LatencyMetrics is one shard's classification-latency histogram. Bin i
// counts decides whose log2(1+µs) fell in [i, i+1) — so bin 0 is
// sub-microsecond, bin 10 is ~1ms, bin 20 is ~1s.
type LatencyMetrics struct {
	Shard int   `json:"shard"`
	Total int   `json:"total"`
	Bins  []int `json:"bins"`
}

// SwapMetrics is the hot-swap and reconfig history.
type SwapMetrics struct {
	// Swaps counts models flipped in; Rejected counts candidates refused
	// before the flip; Rollbacks counts probation reversals. InProgress
	// is true while a swap is mid-flight or in probation.
	Swaps      int    `json:"swaps"`
	Rejected   int    `json:"rejected"`
	Rollbacks  int    `json:"rollbacks"`
	Reconfigs  int    `json:"reconfigs"`
	InProgress bool   `json:"in_progress"`
	Last       string `json:"last,omitempty"`
	// ModelKind names the currently serving model.
	ModelKind string `json:"model_kind"`
}

// SettingsMetrics echoes the live-tunable knob values, so an operator can
// confirm a SET/RELOAD landed.
type SettingsMetrics struct {
	Overflow string `json:"overflow"`
	Batch    int    `json:"batch"`
}

// NodeMetrics assembles the snapshot. Safe without an attached server
// (engine- and swap-side fields only), so it can be built mid-bootstrap.
func (m *Manager) NodeMetrics() NodeMetrics {
	nm := NodeMetrics{Version: Version, CheckpointAgeMS: -1}

	es := m.cfg.Engine.Stats()
	nm.Engine = EngineMetrics{
		Admitted:       es.Admitted,
		Classified:     es.Classified,
		Pending:        es.Pending,
		Fallback:       es.Fallback,
		Shed:           es.Shed,
		Dropped:        es.Dropped,
		Evicted:        es.Evicted,
		Failed:         es.Failed,
		DegradedShards: es.Degraded,
		MigratedIn:     es.MigratedIn,
		MigratedOut:    es.MigratedOut,
	}

	routed := 0
	for _, n := range es.QueueCounts {
		routed += n
	}
	names := corpus.ClassNames()
	for cls, n := range es.QueueCounts {
		v := VerdictMetrics{Class: names[cls], Packets: n}
		if routed > 0 {
			v.Rate = float64(n) / float64(routed)
		}
		nm.Verdicts = append(nm.Verdicts, v)
	}

	for shard, h := range m.cfg.Engine.LatencyHistograms() {
		nm.ShardLatency = append(nm.ShardLatency, LatencyMetrics{
			Shard: shard,
			Total: h.Total,
			Bins:  append([]int(nil), h.Counts...),
		})
	}

	m.mu.Lock()
	nm.Swap = SwapMetrics{
		Swaps:      m.swaps,
		Rejected:   m.rejected,
		Rollbacks:  m.rollbacks,
		Reconfigs:  m.reconfigs,
		InProgress: m.swapping,
		Last:       m.lastSwap,
		ModelKind:  m.cfg.Classifier.Kind().String(),
	}
	m.mu.Unlock()

	if m.srv != nil {
		ns := m.srv.NodeStatus()
		nm.Node = ns.Node
		nm.State = ns.State.String()
		nm.UptimeMS = ns.Uptime.Milliseconds()
		if ns.CheckpointAge >= 0 {
			nm.CheckpointAgeMS = ns.CheckpointAge.Milliseconds()
		}
		nm.Transport = TransportMetrics{
			Received:    ns.Received,
			Admitted:    ns.Admitted,
			Quarantined: ns.Quarantined,
			Shed:        ns.Shed,
			Deduped:     ns.Deduped,
			SeenSeq:     ns.SeenSeq,
			AckedSeq:    ns.AckedSeq,
		}
		nm.Queue.Depth, nm.Queue.Capacity = m.srv.QueueDepth()
		nm.Settings = SettingsMetrics{
			Overflow: m.srv.OverflowPolicy().String(),
			Batch:    m.srv.Batch(),
		}
	}
	return nm
}

// ProbeMetrics fetches one node's metrics document through its status
// listener — the cluster prober's path to federated metrics.
func ProbeMetrics(statusAddr string, timeout time.Duration) (*NodeMetrics, error) {
	c, err := net.DialTimeout("tcp", statusAddr, timeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(timeout))
	if _, err := c.Write([]byte("METRICS\n")); err != nil {
		return nil, err
	}
	doc, err := io.ReadAll(c)
	if err != nil {
		return nil, err
	}
	var nm NodeMetrics
	if err := json.Unmarshal(doc, &nm); err != nil {
		return nil, fmt.Errorf("ops: metrics document: %w", err)
	}
	return &nm, nil
}

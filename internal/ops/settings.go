package ops

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"iustitia/internal/flow"
	"iustitia/internal/ingest"
)

// Settings is the live-reconfigurable key set, shared verbatim by the SET
// verb, the RELOAD verb, and the SIGHUP config file: one parser, one
// applier, three ways in. Nil fields are "leave unchanged".
type Settings struct {
	// Overflow is the ingest backpressure policy (key "overflow":
	// block|shed|disconnect).
	Overflow *ingest.OverflowPolicy
	// Batch is the per-worker engine submission bound (key "batch").
	Batch *int
	// MaxPending is the per-shard pending-flow cap (key "max_pending").
	MaxPending *int
	// Evict is the full-table admission policy (key "evict":
	// oldest|partial|shed).
	Evict *flow.EvictPolicy
	// IdleFlush is the idle-flush window (key "idle_flush", a Go
	// duration; "0" disables idle flushing).
	IdleFlush *time.Duration
}

// Keys reports which settings are present, in a fixed order — reply and
// log material.
func (st Settings) Keys() []string {
	var keys []string
	if st.Overflow != nil {
		keys = append(keys, "overflow")
	}
	if st.Batch != nil {
		keys = append(keys, "batch")
	}
	if st.MaxPending != nil {
		keys = append(keys, "max_pending")
	}
	if st.Evict != nil {
		keys = append(keys, "evict")
	}
	if st.IdleFlush != nil {
		keys = append(keys, "idle_flush")
	}
	return keys
}

// ParseSettings parses k=v pairs (the SET verb's arguments). Every key
// must be known — a typo silently ignored would leave an operator
// believing a knob turned when it did not.
func ParseSettings(pairs []string) (Settings, error) {
	var st Settings
	for _, pair := range pairs {
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return Settings{}, fmt.Errorf("ops: malformed setting %q (want key=value)", pair)
		}
		if err := st.set(key, val); err != nil {
			return Settings{}, err
		}
	}
	return st, nil
}

// ParseConfigFile parses the SIGHUP/RELOAD config file: one k=v per
// line, blank lines and #-comments ignored. The keys are exactly the SET
// verb's.
func ParseConfigFile(data []byte) (Settings, error) {
	var st Settings
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return Settings{}, fmt.Errorf("ops: config line %d: malformed %q (want key=value)", i+1, line)
		}
		if err := st.set(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
			return Settings{}, fmt.Errorf("ops: config line %d: %w", i+1, err)
		}
	}
	return st, nil
}

func (st *Settings) set(key, val string) error {
	switch key {
	case "overflow":
		p, err := ingest.ParseOverflowPolicy(val)
		if err != nil {
			return err
		}
		st.Overflow = &p
	case "batch":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("ops: batch %q is not a positive integer", val)
		}
		st.Batch = &n
	case "max_pending":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("ops: max_pending %q is not a non-negative integer", val)
		}
		st.MaxPending = &n
	case "evict":
		p, err := flow.ParseEvictPolicy(val)
		if err != nil {
			return err
		}
		st.Evict = &p
	case "idle_flush":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("ops: idle_flush %q is not a non-negative duration", val)
		}
		st.IdleFlush = &d
	default:
		return fmt.Errorf("ops: unknown setting %q", key)
	}
	return nil
}

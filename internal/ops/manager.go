// Package ops is the operational control plane of a serving node: a
// versioned admin protocol (RELOAD / SWAP-MODEL / SET / METRICS / DRAIN)
// dispatched through the ingest status listener, live reconfiguration of
// the overflow, batch, and governor knobs, atomic model hot-swap with
// verification, shadow classification, and breaker-watched rollback, and
// the structured metrics snapshot a cluster router federates.
package ops

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/flow"
	"iustitia/internal/ingest"
)

// Version is the admin protocol version. Every OK reply is prefixed
// "OK v<Version>", so a client can refuse to drive a node it does not
// understand.
const Version = 1

// Verbs lists the admin verbs this protocol version serves.
var Verbs = []string{"METRICS", "SET", "RELOAD", "SWAP-MODEL", "DRAIN", "OPS"}

const (
	// maxModelBlob bounds the declared SWAP-MODEL length.
	maxModelBlob = 256 << 20
	// swapBlobTimeout bounds one model blob transfer.
	swapBlobTimeout = 30 * time.Second
	// replyTimeout bounds a verb reply write.
	replyTimeout = 5 * time.Second

	defaultProbationWindow = 3 * time.Second
	defaultProbationPoll   = 25 * time.Millisecond
)

// ModelSurface is what the hot-swap pipeline needs from the serving
// model: a single *core.Classifier shared by every shard satisfies it,
// and so does a *core.ReplicaSet that fans one payload out to per-shard
// replicas. Swap installs a candidate and returns the previous payload
// for probation rollback; Kind and FeatureWidths describe what is
// currently serving.
type ModelSurface interface {
	Swap(next *core.Classifier) (prev *core.Classifier)
	Kind() core.ModelKind
	FeatureWidths() []int
}

// Config assembles a Manager.
type Config struct {
	// Engine is the serving engine: reconfig fans out to its shards, and
	// the hot-swap probation watches its degraded-shard count.
	Engine *flow.ParallelEngine
	// Classifier is the live model surface every shard classifies
	// through — a shared *core.Classifier or a *core.ReplicaSet;
	// SWAP-MODEL flips its atomic model payload(s).
	Classifier ModelSurface
	// Classes is the number of output classes the deployment serves
	// (corpus.NumClasses); a candidate model predicting over a different
	// class set is refused.
	Classes int
	// BufferSize is the engine's b. In buffered mode a candidate whose
	// widest feature exceeds it could never see a full vector, so it is
	// refused.
	BufferSize int
	// Stream marks a constant-memory engine: sketch layout is baked to
	// the feature-width sequence at engine construction, so a candidate
	// must match the live widths exactly.
	Stream bool
	// ConfigPath is the file RELOAD and SIGHUP re-read (empty disables
	// RELOAD).
	ConfigPath string
	// Drain, when non-nil, triggers a graceful drain (the DRAIN verb).
	Drain func()
	// ProbationWindow is how long a freshly swapped model is watched for
	// breaker trips before the previous model is released; ProbationPoll
	// is the check interval. Zero selects the defaults.
	ProbationWindow, ProbationPoll time.Duration
}

// Manager serves the admin protocol for one node. Wire HandleAdmin into
// ingest.Config.AdminHandler, then AttachServer once the server exists.
type Manager struct {
	cfg Config
	srv *ingest.Server

	mu        sync.Mutex
	swapping  bool // a swap is mid-flight or in probation
	swaps     int
	rejected  int
	rollbacks int
	reconfigs int
	lastSwap  string // last swap outcome, for METRICS

	probation sync.WaitGroup
}

// NewManager validates cfg and builds a manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Engine == nil {
		return nil, errors.New("ops: engine is required")
	}
	if cfg.Classifier == nil {
		return nil, errors.New("ops: classifier is required")
	}
	if cfg.Classes < 1 {
		return nil, fmt.Errorf("ops: class count %d is not positive", cfg.Classes)
	}
	if cfg.BufferSize < 1 {
		return nil, fmt.Errorf("ops: buffer size %d is not positive", cfg.BufferSize)
	}
	if cfg.ProbationWindow == 0 {
		cfg.ProbationWindow = defaultProbationWindow
	}
	if cfg.ProbationPoll == 0 {
		cfg.ProbationPoll = defaultProbationPoll
	}
	if cfg.ProbationWindow < 0 || cfg.ProbationPoll < 0 {
		return nil, errors.New("ops: negative probation window or poll")
	}
	return &Manager{cfg: cfg}, nil
}

// AttachServer hands the manager the ingest server it reconfigures and
// reads metrics through. Separate from NewManager because the server's
// Config needs HandleAdmin before the server can be built.
func (m *Manager) AttachServer(s *ingest.Server) { m.srv = s }

// Close waits for an in-flight probation watcher to finish. Call during
// shutdown so a rollback never races process exit.
func (m *Manager) Close() { m.probation.Wait() }

// HandleAdmin dispatches one admin verb; it is the
// ingest.Config.AdminHandler implementation. Unknown verbs report false
// so the server's own error path answers.
func (m *Manager) HandleAdmin(verb string, args []string, body *bufio.Reader, c net.Conn) bool {
	switch verb {
	case "OPS":
		m.reply(c, "OK v%d verbs=%s", Version, strings.Join(Verbs, ","))
	case "METRICS":
		blob, err := json.Marshal(m.NodeMetrics())
		if err != nil {
			m.reply(c, "ERR metrics: %v", err)
			return true
		}
		_ = c.SetWriteDeadline(time.Now().Add(replyTimeout))
		_, _ = c.Write(append(blob, '\n'))
	case "SET":
		st, err := ParseSettings(args)
		if err != nil {
			m.reply(c, "ERR %v", err)
			return true
		}
		if err := m.Apply(st); err != nil {
			m.reply(c, "ERR %v", err)
			return true
		}
		m.reply(c, "OK v%d applied=%s", Version, strings.Join(st.Keys(), ","))
	case "RELOAD":
		st, err := m.ReloadConfig()
		if err != nil {
			m.reply(c, "ERR %v", err)
			return true
		}
		m.reply(c, "OK v%d reloaded=%s applied=%s", Version, m.cfg.ConfigPath, strings.Join(st.Keys(), ","))
	case "SWAP-MODEL":
		m.handleSwap(args, body, c)
	case "DRAIN":
		if m.cfg.Drain == nil {
			m.reply(c, "ERR drain is not wired on this node")
			return true
		}
		m.reply(c, "OK v%d draining", Version)
		m.cfg.Drain()
	default:
		return false
	}
	return true
}

// reply writes one line under a fresh write deadline.
func (m *Manager) reply(c net.Conn, format string, args ...any) {
	_ = c.SetWriteDeadline(time.Now().Add(replyTimeout))
	fmt.Fprintf(c, format+"\n", args...)
}

// handleSwap reads the declared model blob and runs the swap pipeline.
func (m *Manager) handleSwap(args []string, body *bufio.Reader, c net.Conn) {
	if len(args) != 1 {
		m.reply(c, "ERR SWAP-MODEL wants exactly one length")
		return
	}
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || n < 1 || n > maxModelBlob {
		m.reply(c, "ERR bad SWAP-MODEL length %q", args[0])
		return
	}
	_ = c.SetReadDeadline(time.Now().Add(swapBlobTimeout))
	blob := make([]byte, n)
	if _, err := io.ReadFull(body, blob); err != nil {
		m.reply(c, "ERR read model blob: %v", err)
		return
	}
	res, err := m.SwapModel(blob)
	if err != nil {
		m.reply(c, "ERR %v", err)
		return
	}
	m.reply(c, "OK v%d swapped kind=%s widths=%d shadow=%d probation_ms=%d",
		Version, res.Kind, len(res.Widths), res.ShadowSamples, m.cfg.ProbationWindow.Milliseconds())
}

// Apply installs a settings bundle under the server's reconfig gate, so
// no frame is mid-admission while the knobs turn. Engine knobs fan out to
// every shard. All-or-nothing per knob: a bad value errors without
// touching the rest only if it fails validation first, so callers should
// treat an error as "re-check the node's state".
func (m *Manager) Apply(st Settings) error {
	var errs []error
	apply := func() {
		if st.Overflow != nil {
			if err := m.srv.SetOverflow(*st.Overflow); err != nil {
				errs = append(errs, err)
			}
		}
		if st.Batch != nil {
			if err := m.srv.SetBatch(*st.Batch); err != nil {
				errs = append(errs, err)
			}
		}
		if st.MaxPending != nil {
			if err := m.cfg.Engine.SetMaxPending(*st.MaxPending); err != nil {
				errs = append(errs, err)
			}
		}
		if st.Evict != nil {
			if err := m.cfg.Engine.SetEviction(*st.Evict); err != nil {
				errs = append(errs, err)
			}
		}
		if st.IdleFlush != nil {
			if err := m.cfg.Engine.SetIdleFlush(*st.IdleFlush); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if m.srv == nil {
		return errors.New("ops: no server attached")
	}
	m.srv.Reconfigure(apply)
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if len(st.Keys()) > 0 {
		m.mu.Lock()
		m.reconfigs++
		m.mu.Unlock()
	}
	return nil
}

// ReloadConfig re-reads the config file (the SIGHUP and RELOAD path) and
// applies it, returning what was applied.
func (m *Manager) ReloadConfig() (Settings, error) {
	if m.cfg.ConfigPath == "" {
		return Settings{}, errors.New("ops: no config file configured (-config)")
	}
	data, err := os.ReadFile(m.cfg.ConfigPath)
	if err != nil {
		return Settings{}, fmt.Errorf("ops: read config: %w", err)
	}
	st, err := ParseConfigFile(data)
	if err != nil {
		return Settings{}, err
	}
	if err := m.Apply(st); err != nil {
		return Settings{}, err
	}
	return st, nil
}

// Package dataset provides the labeled-data substrate for Iustitia's
// machine-learning components: feature datasets, stratified cross-validation
// splits, and confusion-matrix evaluation as reported in the paper's
// Table 1 and Table 2.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
)

// Common errors.
var (
	ErrEmpty         = errors.New("dataset: empty dataset")
	ErrFeatureWidth  = errors.New("dataset: inconsistent feature width")
	ErrFoldCount     = errors.New("dataset: fold count must be at least 2")
	ErrUnknownLabel  = errors.New("dataset: unknown label")
	ErrLengthMismatc = errors.New("dataset: labels and predictions differ in length")
)

// Sample is one labeled feature vector.
type Sample struct {
	Features []float64
	Label    int
}

// Dataset is an ordered collection of labeled samples with a fixed feature
// width and a fixed number of classes.
type Dataset struct {
	Samples []Sample
	Classes int
}

// New builds a dataset, validating that every sample has the same feature
// width and a label in [0, classes).
func New(samples []Sample, classes int) (*Dataset, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if classes < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 classes, got %d", classes)
	}
	width := len(samples[0].Features)
	for i, s := range samples {
		if len(s.Features) != width {
			return nil, fmt.Errorf("%w: sample %d has %d features, want %d",
				ErrFeatureWidth, i, len(s.Features), width)
		}
		if s.Label < 0 || s.Label >= classes {
			return nil, fmt.Errorf("%w: sample %d has label %d", ErrUnknownLabel, i, s.Label)
		}
	}
	return &Dataset{Samples: samples, Classes: classes}, nil
}

// Width returns the number of features per sample.
func (d *Dataset) Width() int {
	if len(d.Samples) == 0 {
		return 0
	}
	return len(d.Samples[0].Features)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// ClassCounts returns the per-class sample counts.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, s := range d.Samples {
		counts[s.Label]++
	}
	return counts
}

// Project returns a new dataset keeping only the feature columns named in
// cols (0-based), in order. The underlying feature storage is copied.
func (d *Dataset) Project(cols []int) (*Dataset, error) {
	width := d.Width()
	for _, c := range cols {
		if c < 0 || c >= width {
			return nil, fmt.Errorf("dataset: column %d outside [0, %d)", c, width)
		}
	}
	samples := make([]Sample, len(d.Samples))
	for i, s := range d.Samples {
		feats := make([]float64, len(cols))
		for j, c := range cols {
			feats[j] = s.Features[c]
		}
		samples[i] = Sample{Features: feats, Label: s.Label}
	}
	return New(samples, d.Classes)
}

// Shuffle permutes the samples in place using the given source.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Split partitions the dataset into two by a fraction in (0,1): the first
// part receives ceil(frac*N) samples in current order.
func (d *Dataset) Split(frac float64) (*Dataset, *Dataset, error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("dataset: split fraction %v outside (0,1)", frac)
	}
	cut := (len(d.Samples)*int(frac*1000) + 999) / 1000
	if cut == 0 || cut == len(d.Samples) {
		return nil, nil, fmt.Errorf("dataset: split fraction %v leaves a side empty", frac)
	}
	left, err := New(d.Samples[:cut], d.Classes)
	if err != nil {
		return nil, nil, err
	}
	right, err := New(d.Samples[cut:], d.Classes)
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// Fold is one train/test partition of a cross validation.
type Fold struct {
	Train *Dataset
	Test  *Dataset
}

// StratifiedKFold splits the dataset into k folds that preserve per-class
// proportions. Samples are shuffled per class with rng before assignment,
// so folds are random but reproducible. Every sample appears in exactly one
// test fold.
func (d *Dataset) StratifiedKFold(k int, rng *rand.Rand) ([]Fold, error) {
	if k < 2 {
		return nil, ErrFoldCount
	}
	if k > len(d.Samples) {
		return nil, fmt.Errorf("dataset: %d folds exceed %d samples", k, len(d.Samples))
	}
	// Bucket sample indices by class, shuffle each bucket, deal them
	// round-robin into folds.
	byClass := make([][]int, d.Classes)
	for i, s := range d.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	foldIdx := make([][]int, k)
	for _, bucket := range byClass {
		rng.Shuffle(len(bucket), func(i, j int) { bucket[i], bucket[j] = bucket[j], bucket[i] })
		for i, idx := range bucket {
			foldIdx[i%k] = append(foldIdx[i%k], idx)
		}
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		inTest := make(map[int]bool, len(foldIdx[f]))
		for _, idx := range foldIdx[f] {
			inTest[idx] = true
		}
		var train, test []Sample
		for i, s := range d.Samples {
			if inTest[i] {
				test = append(test, s)
			} else {
				train = append(train, s)
			}
		}
		trainDS, err := New(train, d.Classes)
		if err != nil {
			return nil, fmt.Errorf("dataset: fold %d train: %w", f, err)
		}
		testDS, err := New(test, d.Classes)
		if err != nil {
			return nil, fmt.Errorf("dataset: fold %d test: %w", f, err)
		}
		folds[f] = Fold{Train: trainDS, Test: testDS}
	}
	return folds, nil
}

// Balanced draws up to perClass samples from each class (in current order)
// and returns them as a new dataset, mimicking the paper's "6000 files
// equally drawn from each class" cross-validation pools.
func (d *Dataset) Balanced(perClass int, rng *rand.Rand) (*Dataset, error) {
	if perClass <= 0 {
		return nil, fmt.Errorf("dataset: perClass %d is not positive", perClass)
	}
	byClass := make([][]int, d.Classes)
	for i, s := range d.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	var samples []Sample
	for _, bucket := range byClass {
		rng.Shuffle(len(bucket), func(i, j int) { bucket[i], bucket[j] = bucket[j], bucket[i] })
		n := perClass
		if n > len(bucket) {
			n = len(bucket)
		}
		for _, idx := range bucket[:n] {
			samples = append(samples, d.Samples[idx])
		}
	}
	return New(samples, d.Classes)
}

package dataset

import (
	"fmt"
	"strings"
)

// Confusion is a confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Counts [][]int
}

// NewConfusion builds a confusion matrix from parallel actual/predicted
// label slices.
func NewConfusion(classes int, actual, predicted []int) (*Confusion, error) {
	if len(actual) != len(predicted) {
		return nil, ErrLengthMismatc
	}
	c := &Confusion{Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	for i, a := range actual {
		p := predicted[i]
		if a < 0 || a >= classes || p < 0 || p >= classes {
			return nil, fmt.Errorf("%w: actual=%d predicted=%d", ErrUnknownLabel, a, p)
		}
		c.Counts[a][p]++
	}
	return c, nil
}

// Merge adds the counts of other into c. The matrices must agree in size.
func (c *Confusion) Merge(other *Confusion) error {
	if len(c.Counts) != len(other.Counts) {
		return fmt.Errorf("dataset: merging %d-class into %d-class confusion",
			len(other.Counts), len(c.Counts))
	}
	for i := range c.Counts {
		for j := range c.Counts[i] {
			c.Counts[i][j] += other.Counts[i][j]
		}
	}
	return nil
}

// Total returns the number of classified samples.
func (c *Confusion) Total() int {
	var n int
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the overall fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	var correct int
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// ClassAccuracy returns the recall of class i: the fraction of class-i
// samples predicted as class i. This is the per-class "accuracy" the paper
// reports in Tables 1 and 2.
func (c *Confusion) ClassAccuracy(i int) float64 {
	var rowTotal int
	for _, v := range c.Counts[i] {
		rowTotal += v
	}
	if rowTotal == 0 {
		return 0
	}
	return float64(c.Counts[i][i]) / float64(rowTotal)
}

// Misclassification returns the fraction of class-from samples that were
// predicted as class to (the off-diagonal rates of Table 1).
func (c *Confusion) Misclassification(from, to int) float64 {
	var rowTotal int
	for _, v := range c.Counts[from] {
		rowTotal += v
	}
	if rowTotal == 0 {
		return 0
	}
	return float64(c.Counts[from][to]) / float64(rowTotal)
}

// Format renders the matrix with the given class names as a fixed-width
// table, for the benchmark harness output.
func (c *Confusion) Format(names []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "actual\\pred")
	for j := range c.Counts {
		name := fmt.Sprintf("c%d", j)
		if j < len(names) {
			name = names[j]
		}
		fmt.Fprintf(&b, "%12s", name)
	}
	fmt.Fprintf(&b, "%12s\n", "recall")
	for i, row := range c.Counts {
		name := fmt.Sprintf("c%d", i)
		if i < len(names) {
			name = names[i]
		}
		fmt.Fprintf(&b, "%-12s", name)
		for _, v := range row {
			fmt.Fprintf(&b, "%12d", v)
		}
		fmt.Fprintf(&b, "%11.2f%%\n", 100*c.ClassAccuracy(i))
	}
	fmt.Fprintf(&b, "total accuracy %.2f%%\n", 100*c.Accuracy())
	return b.String()
}

package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row. columnNames label the
// feature columns (e.g. "h1", "h3"); when nil, "f0".."fN" are generated.
// The label column is always last and named "label".
func (d *Dataset) WriteCSV(w io.Writer, columnNames []string) error {
	width := d.Width()
	if columnNames == nil {
		columnNames = make([]string, width)
		for i := range columnNames {
			columnNames[i] = "f" + strconv.Itoa(i)
		}
	}
	if len(columnNames) != width {
		return fmt.Errorf("dataset: %d column names for width %d", len(columnNames), width)
	}
	cw := csv.NewWriter(w)
	header := append(append([]string{}, columnNames...), "label")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, width+1)
	for _, s := range d.Samples {
		for i, v := range s.Features {
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[width] = strconv.Itoa(s.Label)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV whose last
// column is an integer label in [0, classes)). The header row is required
// and skipped.
func ReadCSV(r io.Reader, classes int) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: csv header: %w", err)
	}
	if len(header) < 2 {
		return nil, errors.New("dataset: csv needs at least one feature and a label column")
	}
	width := len(header) - 1
	var samples []Sample
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
		if len(row) != width+1 {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d",
				line, len(row), width+1)
		}
		features := make([]float64, width)
		for i := 0; i < width; i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d column %d: %w", line, i, err)
			}
			features[i] = v
		}
		label, err := strconv.Atoi(row[width])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d label: %w", line, err)
		}
		samples = append(samples, Sample{Features: features, Label: label})
	}
	return New(samples, classes)
}

package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d, err := New([]Sample{
		{Features: []float64{0.123456789, 0.5}, Label: 0},
		{Features: []float64{1, 0}, Label: 2},
		{Features: []float64{0.25, 0.75}, Label: 1},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf, []string{"h1", "h3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "h1,h3,label\n") {
		t.Errorf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	restored, err := ReadCSV(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != d.Len() || restored.Width() != d.Width() {
		t.Fatalf("shape = (%d, %d)", restored.Len(), restored.Width())
	}
	for i := range d.Samples {
		if restored.Samples[i].Label != d.Samples[i].Label {
			t.Errorf("sample %d label differs", i)
		}
		for j := range d.Samples[i].Features {
			if restored.Samples[i].Features[j] != d.Samples[i].Features[j] {
				t.Errorf("sample %d feature %d: %v != %v", i, j,
					restored.Samples[i].Features[j], d.Samples[i].Features[j])
			}
		}
	}
}

func TestWriteCSVDefaultNames(t *testing.T) {
	d, err := New([]Sample{{Features: []float64{1, 2, 3}, Label: 0},
		{Features: []float64{1, 2, 3}, Label: 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "f0,f1,f2,label\n") {
		t.Errorf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	if err := d.WriteCSV(&buf, []string{"one"}); err == nil {
		t.Error("wrong name count: want error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only?": "h1,label\nnot-a-number,0\n",
		"bad label":    "h1,label\n0.5,zero\n",
		"one column":   "label\n1\n",
		"bad width":    "h1,h2,label\n0.5,0\n",
		"label range":  "h1,label\n0.5,9\n",
	}
	for name, blob := range cases {
		if _, err := ReadCSV(strings.NewReader(blob), 3); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

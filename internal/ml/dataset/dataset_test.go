package dataset

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func sample(label int, feats ...float64) Sample {
	return Sample{Features: feats, Label: label}
}

func testDataset(t *testing.T, perClass, classes int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			samples = append(samples, sample(c, rng.Float64(), rng.Float64()))
		}
	}
	d, err := New(samples, classes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 2); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := New([]Sample{sample(0, 1)}, 1); err == nil {
		t.Error("classes=1: want error")
	}
	if _, err := New([]Sample{sample(0, 1), sample(1, 1, 2)}, 2); !errors.Is(err, ErrFeatureWidth) {
		t.Error("ragged features: want ErrFeatureWidth")
	}
	if _, err := New([]Sample{sample(5, 1)}, 2); !errors.Is(err, ErrUnknownLabel) {
		t.Error("label out of range: want ErrUnknownLabel")
	}
}

func TestClassCounts(t *testing.T) {
	d := testDataset(t, 4, 3)
	for c, n := range d.ClassCounts() {
		if n != 4 {
			t.Errorf("class %d count = %d, want 4", c, n)
		}
	}
	if d.Width() != 2 || d.Len() != 12 {
		t.Errorf("Width=%d Len=%d", d.Width(), d.Len())
	}
}

func TestProject(t *testing.T) {
	d, err := New([]Sample{
		sample(0, 10, 20, 30),
		sample(1, 40, 50, 60),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Samples[0].Features; got[0] != 30 || got[1] != 10 {
		t.Errorf("projected = %v, want [30 10]", got)
	}
	// Projection must not alias the original storage.
	p.Samples[0].Features[0] = -1
	if d.Samples[0].Features[2] == -1 {
		t.Error("Project aliases original feature storage")
	}
	if _, err := d.Project([]int{3}); err == nil {
		t.Error("column out of range: want error")
	}
}

func TestSplit(t *testing.T) {
	d := testDataset(t, 10, 2)
	left, right, err := d.Split(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if left.Len()+right.Len() != d.Len() {
		t.Errorf("split loses samples: %d + %d != %d", left.Len(), right.Len(), d.Len())
	}
	if left.Len() != 5 {
		t.Errorf("left = %d, want 5", left.Len())
	}
	for _, frac := range []float64{0, 1, -0.5} {
		if _, _, err := d.Split(frac); err == nil {
			t.Errorf("Split(%v): want error", frac)
		}
	}
}

func TestStratifiedKFold(t *testing.T) {
	d := testDataset(t, 20, 3)
	folds, err := d.StratifiedKFold(5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d, want 5", len(folds))
	}
	totalTest := 0
	for i, f := range folds {
		totalTest += f.Test.Len()
		if f.Train.Len()+f.Test.Len() != d.Len() {
			t.Errorf("fold %d: train+test = %d, want %d",
				i, f.Train.Len()+f.Test.Len(), d.Len())
		}
		// Stratification: each class contributes 20/5 = 4 test samples.
		for c, n := range f.Test.ClassCounts() {
			if n != 4 {
				t.Errorf("fold %d class %d test count = %d, want 4", i, c, n)
			}
		}
	}
	if totalTest != d.Len() {
		t.Errorf("test folds cover %d samples, want %d", totalTest, d.Len())
	}
}

func TestStratifiedKFoldValidation(t *testing.T) {
	d := testDataset(t, 2, 2)
	if _, err := d.StratifiedKFold(1, rand.New(rand.NewSource(1))); !errors.Is(err, ErrFoldCount) {
		t.Errorf("k=1: err = %v", err)
	}
	if _, err := d.StratifiedKFold(100, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k>N: want error")
	}
}

func TestBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 30; i++ {
		samples = append(samples, sample(0, float64(i)))
	}
	for i := 0; i < 5; i++ {
		samples = append(samples, sample(1, float64(i)))
	}
	d, err := New(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := d.Balanced(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := bal.ClassCounts()
	if counts[0] != 10 {
		t.Errorf("class 0 = %d, want 10", counts[0])
	}
	if counts[1] != 5 { // only 5 available
		t.Errorf("class 1 = %d, want 5", counts[1])
	}
	if _, err := d.Balanced(0, rng); err == nil {
		t.Error("perClass=0: want error")
	}
}

func TestConfusion(t *testing.T) {
	actual := []int{0, 0, 1, 1, 2, 2}
	pred := []int{0, 1, 1, 1, 2, 0}
	c, err := NewConfusion(3, actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Accuracy(); got != 4.0/6.0 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
	if got := c.ClassAccuracy(1); got != 1 {
		t.Errorf("ClassAccuracy(1) = %v, want 1", got)
	}
	if got := c.Misclassification(0, 1); got != 0.5 {
		t.Errorf("Misclassification(0,1) = %v, want 0.5", got)
	}
	if got := c.Misclassification(2, 0); got != 0.5 {
		t.Errorf("Misclassification(2,0) = %v, want 0.5", got)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d, want 6", c.Total())
	}
}

func TestConfusionValidation(t *testing.T) {
	if _, err := NewConfusion(2, []int{0}, []int{0, 1}); !errors.Is(err, ErrLengthMismatc) {
		t.Errorf("length mismatch: err = %v", err)
	}
	if _, err := NewConfusion(2, []int{5}, []int{0}); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("bad label: err = %v", err)
	}
}

func TestConfusionMerge(t *testing.T) {
	a, err := NewConfusion(2, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConfusion(2, []int{0, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 4 {
		t.Errorf("merged total = %d, want 4", a.Total())
	}
	if got := a.Accuracy(); got != 0.75 {
		t.Errorf("merged accuracy = %v, want 0.75", got)
	}
	mismatched, err := NewConfusion(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(mismatched); err == nil {
		t.Error("size mismatch: want error")
	}
}

func TestConfusionFormat(t *testing.T) {
	c, err := NewConfusion(2, []int{0, 1}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := c.Format([]string{"text", "binary"})
	if out == "" {
		t.Error("Format returned empty string")
	}
}

// Property: degenerate all-one-class predictions give accuracy equal to
// that class's prevalence.
func TestConfusionPrevalenceProperty(t *testing.T) {
	prop := func(labels []bool) bool {
		if len(labels) == 0 {
			return true
		}
		actual := make([]int, len(labels))
		pred := make([]int, len(labels))
		ones := 0
		for i, b := range labels {
			if b {
				actual[i] = 1
				ones++
			}
			pred[i] = 1
		}
		c, err := NewConfusion(2, actual, pred)
		if err != nil {
			return false
		}
		want := float64(ones) / float64(len(labels))
		return c.Accuracy() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

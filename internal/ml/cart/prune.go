package cart

import (
	"errors"

	"iustitia/internal/ml/dataset"
)

// ErrNoValidation is returned when pruning is attempted without validation
// data.
var ErrNoValidation = errors.New("cart: pruning needs a non-empty validation set")

// Prune performs reduced-error pruning against val: it repeatedly collapses
// the internal node whose removal costs the least validation accuracy, as
// long as the total accuracy stays within maxAccuracyDrop of the unpruned
// tree's accuracy. This is the pruning step of the paper's tree-voting
// feature selector ("we prune the trees until we reach the threshold of 2%
// decrease in accuracy"). It returns the number of collapsed nodes.
func (t *Tree) Prune(val *dataset.Dataset, maxAccuracyDrop float64) (int, error) {
	if t == nil || t.Root == nil {
		return 0, ErrNotTrained
	}
	if val == nil || val.Len() == 0 {
		return 0, ErrNoValidation
	}
	baseline, err := t.accuracy(val)
	if err != nil {
		return 0, err
	}
	floor := baseline - maxAccuracyDrop

	collapsed := 0
	for {
		candidates := collapsibleNodes(t.Root)
		if len(candidates) == 0 {
			return collapsed, nil
		}
		// Find the collapse that keeps validation accuracy highest.
		bestAcc := -1.0
		var best *Node
		for _, n := range candidates {
			left, right := n.Left, n.Right
			n.Left, n.Right = nil, nil
			acc, err := t.accuracy(val)
			n.Left, n.Right = left, right
			if err != nil {
				return collapsed, err
			}
			if acc > bestAcc {
				bestAcc = acc
				best = n
			}
		}
		if bestAcc < floor {
			return collapsed, nil
		}
		best.Left, best.Right = nil, nil
		collapsed++
	}
}

// collapsibleNodes returns every internal node whose children are both
// leaves — the only nodes reduced-error pruning may collapse in one step.
func collapsibleNodes(n *Node) []*Node {
	if n == nil || n.IsLeaf() {
		return nil
	}
	if n.Left.IsLeaf() && n.Right.IsLeaf() {
		return []*Node{n}
	}
	return append(collapsibleNodes(n.Left), collapsibleNodes(n.Right)...)
}

func (t *Tree) accuracy(ds *dataset.Dataset) (float64, error) {
	c, err := t.Evaluate(ds)
	if err != nil {
		return 0, err
	}
	return c.Accuracy(), nil
}

// CostComplexityPrune performs Breiman's minimal cost-complexity pruning:
// it repeatedly collapses the weakest link — the internal node whose
// collapse raises training misclassification least per removed leaf —
// while that per-leaf cost increase g(n) stays at or below alpha. Larger
// alpha prunes harder; alpha = 0 removes only splits that do not reduce
// training error at all. It returns the number of collapsed subtrees.
func (t *Tree) CostComplexityPrune(alpha float64) (int, error) {
	if t == nil || t.Root == nil {
		return 0, ErrNotTrained
	}
	if alpha < 0 {
		return 0, errors.New("cart: negative pruning alpha")
	}
	total := 0
	for _, c := range t.Root.Counts {
		total += c
	}
	if total == 0 {
		return 0, errors.New("cart: tree lacks training counts for pruning")
	}
	collapsed := 0
	for {
		node, g := weakestLink(t.Root, total)
		if node == nil || g > alpha {
			return collapsed, nil
		}
		node.Left, node.Right = nil, nil
		collapsed++
	}
}

// weakestLink returns the internal node with the smallest per-leaf cost
// increase g(n) = (R(n as leaf) − R(subtree)) / (leaves − 1), with R the
// training misclassification rate contribution.
func weakestLink(root *Node, total int) (*Node, float64) {
	var (
		best  *Node
		bestG float64
	)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		leafErr := nodeError(n)
		subErr, leaves := subtreeError(n)
		g := float64(leafErr-subErr) / float64(total) / float64(leaves-1)
		if best == nil || g < bestG {
			best, bestG = n, g
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	return best, bestG
}

// nodeError is the number of training samples the node would misclassify
// as a leaf.
func nodeError(n *Node) int {
	total, best := 0, 0
	for _, c := range n.Counts {
		total += c
		if c > best {
			best = c
		}
	}
	return total - best
}

// subtreeError sums leaf errors below n and counts the leaves.
func subtreeError(n *Node) (errCount, leaves int) {
	if n.IsLeaf() {
		return nodeError(n), 1
	}
	le, ll := subtreeError(n.Left)
	re, rl := subtreeError(n.Right)
	return le + re, ll + rl
}

package cart

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"iustitia/internal/ml/dataset"
)

// xorDataset is a classic non-linearly-separable problem a depth>=2 tree
// can solve exactly.
func xorDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	var samples []dataset.Sample
	for i := 0; i < 40; i++ {
		x := float64(i%2) + 0.01*float64(i)/40
		y := float64((i/2)%2) + 0.01*float64(i)/40
		label := 0
		if (x < 0.5) != (y < 0.5) {
			label = 1
		}
		samples = append(samples, dataset.Sample{Features: []float64{x, y}, Label: label})
	}
	ds, err := dataset.New(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// bandsDataset mimics the Iustitia feature geometry: three classes in
// ordered (noisy, overlapping) entropy bands along one feature.
func bandsDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var samples []dataset.Sample
	centers := []float64{0.3, 0.65, 0.95}
	for class, c := range centers {
		for i := 0; i < n; i++ {
			h1 := c + rng.NormFloat64()*0.05
			h2 := c*0.8 + rng.NormFloat64()*0.07
			samples = append(samples, dataset.Sample{
				Features: []float64{h1, h2, rng.Float64()}, // third feature is noise
				Label:    class,
			})
		}
	}
	ds, err := dataset.New(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainEmpty(t *testing.T) {
	if _, err := Train(nil, Config{}); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestTreeSolvesXOR(t *testing.T) {
	ds := xorDataset(t)
	tree, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := tree.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc != 1 {
		t.Errorf("XOR training accuracy = %v, want 1", acc)
	}
	if tree.Depth() < 2 {
		t.Errorf("XOR needs depth >= 2, got %d", tree.Depth())
	}
}

func TestTreeGeneralizesOnBands(t *testing.T) {
	train := bandsDataset(t, 100, 1)
	test := bandsDataset(t, 50, 2)
	tree, err := Train(train, Config{MinLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := tree.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc < 0.85 {
		t.Errorf("band accuracy = %v, want >= 0.85", acc)
	}
}

func TestMaxDepthLimit(t *testing.T) {
	ds := bandsDataset(t, 100, 3)
	tree, err := Train(ds, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 2 {
		t.Errorf("Depth = %d, want <= 2", d)
	}
}

func TestMinLeafLimit(t *testing.T) {
	ds := bandsDataset(t, 50, 4)
	tree, err := Train(ds, Config{MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !checkMinLeaf(tree.Root, 20) {
		t.Error("a leaf has fewer samples than MinLeaf")
	}
}

func checkMinLeaf(n *Node, minLeaf int) bool {
	if n == nil {
		return true
	}
	if n.IsLeaf() {
		total := 0
		for _, c := range n.Counts {
			total += c
		}
		return total >= minLeaf
	}
	return checkMinLeaf(n.Left, minLeaf) && checkMinLeaf(n.Right, minLeaf)
}

func TestPredictValidation(t *testing.T) {
	var empty *Tree
	if _, err := empty.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("nil tree: err = %v", err)
	}
	ds := xorDataset(t)
	tree, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([]float64{1}); err == nil {
		t.Error("wrong width: want error")
	}
}

func TestPureDatasetSingleLeaf(t *testing.T) {
	samples := []dataset.Sample{
		{Features: []float64{1}, Label: 1},
		{Features: []float64{2}, Label: 1},
	}
	ds, err := dataset.New(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("pure dataset should yield a single leaf")
	}
	p, err := tree.Predict([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("Predict = %d, want 1", p)
	}
}

func TestConstantFeaturesNoSplit(t *testing.T) {
	samples := []dataset.Sample{
		{Features: []float64{3, 3}, Label: 0},
		{Features: []float64{3, 3}, Label: 1},
		{Features: []float64{3, 3}, Label: 0},
	}
	ds, err := dataset.New(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("identical features cannot be split")
	}
	if tree.Root.Label != 0 {
		t.Errorf("majority label = %d, want 0", tree.Root.Label)
	}
}

func TestFeatureUsageFindsSignal(t *testing.T) {
	ds := bandsDataset(t, 150, 5)
	tree, err := Train(ds, Config{MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	usage := tree.FeatureUsage()
	if len(usage) != 3 {
		t.Fatalf("usage width = %d, want 3", len(usage))
	}
	// Features 0 and 1 carry signal; feature 2 is noise. The root split in
	// particular must be on a signal feature.
	if tree.Root.Feature == 2 {
		t.Error("root splits on the noise feature")
	}
	weighted := tree.WeightedFeatureUsage()
	if weighted[2] >= weighted[0]+weighted[1] {
		t.Errorf("noise feature dominates weighted usage: %v", weighted)
	}
}

// noisyDataset has heavy class overlap so an unlimited tree overfits and
// reduced-error pruning has real work to do.
func noisyDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var samples []dataset.Sample
	centers := []float64{0.45, 0.5, 0.55}
	for class, c := range centers {
		for i := 0; i < n; i++ {
			samples = append(samples, dataset.Sample{
				Features: []float64{c + rng.NormFloat64()*0.15, rng.Float64()},
				Label:    class,
			})
		}
	}
	ds, err := dataset.New(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPruneReducesLeaves(t *testing.T) {
	train := noisyDataset(t, 150, 6)
	val := noisyDataset(t, 80, 7)
	tree, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.LeafCount()
	accBefore, err := tree.accuracy(val)
	if err != nil {
		t.Fatal(err)
	}
	collapsed, err := tree.Prune(val, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	after := tree.LeafCount()
	if collapsed == 0 || after >= before {
		t.Errorf("pruning had no effect: collapsed=%d leaves %d -> %d", collapsed, before, after)
	}
	accAfter, err := tree.accuracy(val)
	if err != nil {
		t.Fatal(err)
	}
	if accAfter < accBefore-0.02-1e-9 {
		t.Errorf("pruned accuracy %v fell more than 2%% below %v", accAfter, accBefore)
	}
}

func TestPruneValidation(t *testing.T) {
	tree, err := Train(xorDataset(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Prune(nil, 0.02); !errors.Is(err, ErrNoValidation) {
		t.Errorf("nil val: err = %v", err)
	}
	var empty *Tree
	if _, err := empty.Prune(xorDataset(t), 0.02); !errors.Is(err, ErrNotTrained) {
		t.Errorf("nil tree: err = %v", err)
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	ds := bandsDataset(t, 60, 8)
	tree, err := Train(ds, Config{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var restored Tree
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Samples[:20] {
		p1, err := tree.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := restored.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("round-trip prediction mismatch: %d vs %d", p1, p2)
		}
	}
}

func TestGini(t *testing.T) {
	if g := gini([]int{10, 0}, 10); g != 0 {
		t.Errorf("gini(pure) = %v, want 0", g)
	}
	if g := gini([]int{5, 5}, 10); g != 0.5 {
		t.Errorf("gini(50/50) = %v, want 0.5", g)
	}
	if g := gini(nil, 0); g != 0 {
		t.Errorf("gini(empty) = %v, want 0", g)
	}
}

// Property: a trained tree predicts the majority label of any training
// sample's leaf, so training accuracy with unlimited growth and MinLeaf=1
// on distinct feature vectors is 1.
func TestPerfectFitProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		seen := map[float64]bool{}
		var samples []dataset.Sample
		for i, v := range raw {
			if seen[v] || v != v { // skip dups and NaN
				continue
			}
			seen[v] = true
			samples = append(samples, dataset.Sample{Features: []float64{v}, Label: i % 2})
		}
		if len(samples) < 2 {
			return true
		}
		ds, err := dataset.New(samples, 2)
		if err != nil {
			return false
		}
		tree, err := Train(ds, Config{})
		if err != nil {
			return false
		}
		conf, err := tree.Evaluate(ds)
		if err != nil {
			return false
		}
		return conf.Accuracy() == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package cart

import (
	"errors"
	"testing"
)

func TestCostComplexityPruneValidation(t *testing.T) {
	var empty *Tree
	if _, err := empty.CostComplexityPrune(0.1); !errors.Is(err, ErrNotTrained) {
		t.Errorf("nil tree: err = %v", err)
	}
	tree, err := Train(xorDataset(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.CostComplexityPrune(-1); err == nil {
		t.Error("negative alpha: want error")
	}
}

func TestCostComplexityPruneLargeAlphaCollapsesToRoot(t *testing.T) {
	tree, err := Train(noisyDataset(t, 120, 21), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.LeafCount() < 4 {
		t.Skip("tree too small to exercise pruning")
	}
	collapsed, err := tree.CostComplexityPrune(1)
	if err != nil {
		t.Fatal(err)
	}
	if collapsed == 0 {
		t.Fatal("alpha=1 collapsed nothing")
	}
	if !tree.Root.IsLeaf() {
		t.Errorf("alpha=1 should prune to the root; %d leaves remain", tree.LeafCount())
	}
}

func TestCostComplexityPruneZeroAlphaKeepsUsefulSplits(t *testing.T) {
	// XOR needs every split to reach zero training error: alpha=0 must
	// keep training accuracy at 1.
	ds := xorDataset(t)
	tree, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.CostComplexityPrune(0); err != nil {
		t.Fatal(err)
	}
	conf, err := tree.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() != 1 {
		t.Errorf("alpha=0 pruning broke a lossless tree: accuracy %v", conf.Accuracy())
	}
}

func TestCostComplexityPruneMonotoneInAlpha(t *testing.T) {
	build := func() *Tree {
		tree, err := Train(noisyDataset(t, 150, 22), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	mild := build()
	if _, err := mild.CostComplexityPrune(0.001); err != nil {
		t.Fatal(err)
	}
	hard := build()
	if _, err := hard.CostComplexityPrune(0.05); err != nil {
		t.Fatal(err)
	}
	if hard.LeafCount() > mild.LeafCount() {
		t.Errorf("larger alpha left more leaves: %d vs %d",
			hard.LeafCount(), mild.LeafCount())
	}
}

func TestCostComplexityPruneGeneralization(t *testing.T) {
	// Pruning an overfit tree must not devastate held-out accuracy.
	train := noisyDataset(t, 200, 23)
	test := noisyDataset(t, 120, 24)
	tree, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := tree.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.CostComplexityPrune(0.005); err != nil {
		t.Fatal(err)
	}
	after, err := tree.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if after.Accuracy() < before.Accuracy()-0.1 {
		t.Errorf("pruning cost too much held-out accuracy: %v -> %v",
			before.Accuracy(), after.Accuracy())
	}
}

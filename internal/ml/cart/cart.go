// Package cart implements Classification and Regression Trees (Breiman et
// al., 1984) for classification on continuous features — the decision-tree
// model Iustitia evaluates against SVM. Trees are grown greedily by Gini
// impurity, support depth and leaf-size limits, expose per-feature usage
// statistics (for the paper's tree-voting feature selector), and can be
// pruned by reduced-error pruning under an accuracy-drop budget.
package cart

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"iustitia/internal/ml/dataset"
)

// ErrNotTrained is returned when predicting with an empty tree.
var ErrNotTrained = errors.New("cart: tree has not been trained")

// Config controls tree growth.
type Config struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf; values < 1 are
	// treated as 1.
	MinLeaf int
	// MinImpurityDecrease stops a split whose Gini gain falls below this
	// threshold.
	MinImpurityDecrease float64
}

// Tree is a trained CART classifier.
type Tree struct {
	Root    *Node `json:"root"`
	Classes int   `json:"classes"`
	Width   int   `json:"width"`
}

// Node is one tree node. Leaves have Left == Right == nil and predict
// Label; internal nodes route samples with Features[Feature] <= Threshold
// to Left and the rest to Right. The exported fields make trees directly
// JSON-serializable for model persistence.
type Node struct {
	Feature   int     `json:"feature,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Left      *Node   `json:"left,omitempty"`
	Right     *Node   `json:"right,omitempty"`
	Label     int     `json:"label"`
	// Counts holds the training class distribution that reached this node;
	// it backs pruning and majority relabeling.
	Counts []int `json:"counts,omitempty"`
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Train grows a tree on ds.
func Train(ds *dataset.Dataset, cfg Config) (*Tree, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	root := grow(ds, idx, cfg, 1)
	return &Tree{Root: root, Classes: ds.Classes, Width: ds.Width()}, nil
}

// grow recursively builds the subtree over the samples named by idx.
func grow(ds *dataset.Dataset, idx []int, cfg Config, depth int) *Node {
	counts := classCounts(ds, idx)
	n := &Node{Counts: counts, Label: argmax(counts)}
	if pure(counts) || len(idx) < 2*cfg.MinLeaf ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return n
	}
	feature, threshold, gain := bestSplit(ds, idx, counts, cfg.MinLeaf)
	if feature < 0 || gain <= cfg.MinImpurityDecrease {
		return n
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if ds.Samples[i].Features[feature] <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < cfg.MinLeaf || len(rightIdx) < cfg.MinLeaf {
		return n
	}
	n.Feature = feature
	n.Threshold = threshold
	n.Left = grow(ds, leftIdx, cfg, depth+1)
	n.Right = grow(ds, rightIdx, cfg, depth+1)
	return n
}

func classCounts(ds *dataset.Dataset, idx []int) []int {
	counts := make([]int, ds.Classes)
	for _, i := range idx {
		counts[ds.Samples[i].Label]++
	}
	return counts
}

func pure(counts []int) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func argmax(counts []int) int {
	best, bestCount := 0, -1
	for i, c := range counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// gini returns the Gini impurity of a class-count vector over total
// samples.
func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	impurity := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		impurity -= p * p
	}
	return impurity
}

// bestSplit scans every feature for the threshold with the largest Gini
// gain. It returns feature -1 when no valid split exists.
func bestSplit(ds *dataset.Dataset, idx []int, parentCounts []int, minLeaf int) (feature int, threshold, gain float64) {
	total := len(idx)
	parentGini := gini(parentCounts, total)
	feature = -1

	// Reused per-feature buffers.
	type fv struct {
		value float64
		label int
	}
	values := make([]fv, total)
	leftCounts := make([]int, ds.Classes)

	for f := 0; f < ds.Width(); f++ {
		for i, sampleIdx := range idx {
			s := ds.Samples[sampleIdx]
			values[i] = fv{value: s.Features[f], label: s.Label}
		}
		sort.Slice(values, func(i, j int) bool { return values[i].value < values[j].value })

		for i := range leftCounts {
			leftCounts[i] = 0
		}
		// Sweep split positions: after position i, left = values[:i+1].
		for i := 0; i < total-1; i++ {
			leftCounts[values[i].label]++
			if values[i].value == values[i+1].value {
				continue // threshold must separate distinct values
			}
			nLeft := i + 1
			nRight := total - nLeft
			if nLeft < minLeaf || nRight < minLeaf {
				continue
			}
			rightCounts := make([]int, ds.Classes)
			for c := range rightCounts {
				rightCounts[c] = parentCounts[c] - leftCounts[c]
			}
			weighted := (float64(nLeft)*gini(leftCounts, nLeft) +
				float64(nRight)*gini(rightCounts, nRight)) / float64(total)
			if g := parentGini - weighted; g > gain {
				gain = g
				feature = f
				threshold = midpoint(values[i].value, values[i+1].value)
			}
		}
	}
	return feature, threshold, gain
}

// midpoint returns a threshold strictly between a and b (a < b), falling
// back to a when the midpoint is not representable between them.
func midpoint(a, b float64) float64 {
	m := a + (b-a)/2
	if m <= a || m >= b {
		return a
	}
	return m
}

// Predict returns the predicted class for a feature vector.
func (t *Tree) Predict(features []float64) (int, error) {
	if t == nil || t.Root == nil {
		return 0, ErrNotTrained
	}
	if len(features) != t.Width {
		return 0, fmt.Errorf("cart: feature width %d, tree expects %d", len(features), t.Width)
	}
	n := t.Root
	for !n.IsLeaf() {
		if features[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label, nil
}

// Evaluate classifies every sample in ds and returns the confusion matrix.
func (t *Tree) Evaluate(ds *dataset.Dataset) (*dataset.Confusion, error) {
	actual := make([]int, ds.Len())
	predicted := make([]int, ds.Len())
	for i, s := range ds.Samples {
		p, err := t.Predict(s.Features)
		if err != nil {
			return nil, err
		}
		actual[i] = s.Label
		predicted[i] = p
	}
	return dataset.NewConfusion(t.Classes, actual, predicted)
}

// Depth returns the depth of the tree (a lone root counts as 1).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return leaves(t.Root) }

func leaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return leaves(n.Left) + leaves(n.Right)
}

// FeatureUsage returns, per feature column, how many internal nodes split
// on it. The paper's CART feature selector votes over these counts across
// pruned cross-validation trees.
func (t *Tree) FeatureUsage() []int {
	usage := make([]int, t.Width)
	countUsage(t.Root, usage)
	return usage
}

func countUsage(n *Node, usage []int) {
	if n == nil || n.IsLeaf() {
		return
	}
	usage[n.Feature]++
	countUsage(n.Left, usage)
	countUsage(n.Right, usage)
}

// WeightedFeatureUsage returns per-feature importance where a split at
// depth d contributes 1/2^(d-1) — "the higher a feature is in a tree, the
// more effective it is in the classification model" (paper §4.1).
func (t *Tree) WeightedFeatureUsage() []float64 {
	usage := make([]float64, t.Width)
	weighUsage(t.Root, usage, 1)
	return usage
}

func weighUsage(n *Node, usage []float64, depth int) {
	if n == nil || n.IsLeaf() {
		return
	}
	usage[n.Feature] += 1 / math.Pow(2, float64(depth-1))
	weighUsage(n.Left, usage, depth+1)
	weighUsage(n.Right, usage, depth+1)
}

package cart

import (
	"errors"
	"testing"

	"iustitia/internal/persist"
)

// encodeBands trains a tree on the bands dataset and returns it with its
// encoding.
func encodeBands(t *testing.T) (*Tree, []byte) {
	t.Helper()
	tree, err := Train(bandsDataset(t, 80, 7), Config{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := tree.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return tree, blob
}

// TestCodecRoundTripPredictions is the round-trip property: a
// saved-then-loaded tree must produce byte-identical predictions to the
// original across the full evaluation dataset.
func TestCodecRoundTripPredictions(t *testing.T) {
	tree, blob := encodeBands(t)
	loaded, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Classes != tree.Classes || loaded.Width != tree.Width {
		t.Fatalf("loaded (classes=%d,width=%d), want (%d,%d)",
			loaded.Classes, loaded.Width, tree.Classes, tree.Width)
	}
	if loaded.Depth() != tree.Depth() || loaded.LeafCount() != tree.LeafCount() {
		t.Errorf("loaded shape depth=%d leaves=%d, want depth=%d leaves=%d",
			loaded.Depth(), loaded.LeafCount(), tree.Depth(), tree.LeafCount())
	}
	eval := bandsDataset(t, 120, 99)
	for i, s := range eval.Samples {
		want, err := tree.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sample %d: loaded predicts %d, original %d", i, got, want)
		}
	}
	// Re-encoding the loaded tree must reproduce the bytes (the counts
	// vectors round-trip too, so pruning still works on a loaded tree).
	blob2, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob2) != string(blob) {
		t.Error("re-encoded tree differs from original encoding")
	}
}

// TestCodecTruncation clips a valid encoding at every byte offset: each
// prefix must fail cleanly with ErrCorrupt, never panic.
func TestCodecTruncation(t *testing.T) {
	_, blob := encodeBands(t)
	for i := 0; i < len(blob); i++ {
		if _, err := Decode(blob[:i]); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("Decode(blob[:%d]) = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestCodecRejectsInvalid(t *testing.T) {
	leaf := func(label int) []byte {
		var e persist.Encoder
		e.U32(3) // classes
		e.U32(2) // width
		e.U8(tagLeaf)
		e.U32(uint32(label))
		e.U32(0) // no counts
		return e.Bytes()
	}
	if tree, err := Decode(leaf(1)); err != nil || tree.Root.Label != 1 {
		t.Fatalf("valid single leaf: tree=%v err=%v", tree, err)
	}

	cases := map[string][]byte{
		"label out of range": leaf(3),
		"empty":              {},
		"trailing garbage":   append(leaf(0), 0xFF),
	}
	{
		var e persist.Encoder
		e.U32(0) // zero classes
		e.U32(2)
		e.U8(tagLeaf)
		e.U32(0)
		e.U32(0)
		cases["zero classes"] = e.Bytes()
	}
	{
		var e persist.Encoder
		e.U32(3)
		e.U32(2)
		e.U8(tagInternal)
		e.U32(0)
		e.U32(0)
		e.U32(7) // split feature out of range for width 2
		e.F64(0.5)
		cases["feature out of range"] = e.Bytes()
	}
	{
		var e persist.Encoder
		e.U32(3)
		e.U32(2)
		e.U8(tagLeaf)
		e.U32(0)
		e.U32(2) // counts length != classes
		e.I64(1)
		e.I64(1)
		cases["count vector wrong length"] = e.Bytes()
	}
	for name, blob := range cases {
		if _, err := Decode(blob); !errors.Is(err, persist.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestCodecDepthCap builds a pathologically deep chain of internal nodes
// on the wire and checks the decoder refuses it instead of exhausting
// the stack.
func TestCodecDepthCap(t *testing.T) {
	var e persist.Encoder
	e.U32(2) // classes
	e.U32(1) // width
	depth := maxDecodeDepth + 10
	for i := 0; i < depth; i++ {
		e.U8(tagInternal)
		e.U32(0)   // label
		e.U32(0)   // no counts
		e.U32(0)   // feature
		e.F64(0.5) // threshold
		// left child is the next internal node; right children come after,
		// but the decoder must bail on depth long before needing them.
	}
	if _, err := Decode(e.Bytes()); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("deep chain: err = %v, want ErrCorrupt", err)
	}
}

func TestEncodeUntrained(t *testing.T) {
	var tr *Tree
	if _, err := tr.Encode(); !errors.Is(err, ErrNotTrained) {
		t.Errorf("nil tree: err = %v, want ErrNotTrained", err)
	}
	if _, err := (&Tree{}).Encode(); !errors.Is(err, ErrNotTrained) {
		t.Errorf("empty tree: err = %v, want ErrNotTrained", err)
	}
}

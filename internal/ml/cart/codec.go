package cart

import (
	"fmt"

	"iustitia/internal/persist"
)

// This file is the tree's durable binary codec. The layout is a small
// header (classes, width) followed by the nodes in preorder; every field
// is validated on decode — feature indices against the width, labels and
// count vectors against the class count, recursion against a depth cap —
// so a hostile payload yields persist.ErrCorrupt, never a panic or a tree
// that silently misroutes feature vectors.

// Caps enforced while decoding. Real Iustitia trees have 3 classes, a
// handful of features, and depth well under 100; the caps exist only to
// bound hostile input.
const (
	maxDecodeClasses = 1 << 10
	maxDecodeWidth   = 1 << 16
	maxDecodeDepth   = 1 << 12
)

// Node tags on the wire.
const (
	tagLeaf     = 0
	tagInternal = 1
)

// Encode serializes the tree to the persist wire format.
func (t *Tree) Encode() ([]byte, error) {
	if t == nil || t.Root == nil {
		return nil, ErrNotTrained
	}
	if t.Classes < 1 || t.Width < 1 {
		return nil, fmt.Errorf("cart: cannot encode tree with %d classes, width %d", t.Classes, t.Width)
	}
	var e persist.Encoder
	e.U32(uint32(t.Classes))
	e.U32(uint32(t.Width))
	encodeNode(&e, t.Root)
	return e.Bytes(), nil
}

func encodeNode(e *persist.Encoder, n *Node) {
	if n.IsLeaf() {
		e.U8(tagLeaf)
	} else {
		e.U8(tagInternal)
	}
	e.U32(uint32(n.Label))
	e.U32(uint32(len(n.Counts)))
	for _, c := range n.Counts {
		e.I64(int64(c))
	}
	if !n.IsLeaf() {
		e.U32(uint32(n.Feature))
		e.F64(n.Threshold)
		encodeNode(e, n.Left)
		encodeNode(e, n.Right)
	}
}

// Decode restores a tree written by Encode. Any truncated, bit-flipped,
// or semantically invalid payload returns an error wrapping
// persist.ErrCorrupt.
func Decode(data []byte) (*Tree, error) {
	d := persist.NewDecoder(data)
	classes := int(d.U32())
	width := int(d.U32())
	if d.Err() == nil {
		if classes < 1 || classes > maxDecodeClasses {
			d.Fail("class count %d out of range", classes)
		}
		if width < 1 || width > maxDecodeWidth {
			d.Fail("feature width %d out of range", width)
		}
	}
	root := decodeNode(d, classes, width, 1)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("cart: decode: %w", err)
	}
	return &Tree{Root: root, Classes: classes, Width: width}, nil
}

func decodeNode(d *persist.Decoder, classes, width, depth int) *Node {
	if d.Err() != nil {
		return nil
	}
	if depth > maxDecodeDepth {
		d.Fail("tree deeper than %d", maxDecodeDepth)
		return nil
	}
	tag := d.U8()
	label := int(d.U32())
	nCounts := d.Count(8)
	if d.Err() != nil {
		return nil
	}
	if tag != tagLeaf && tag != tagInternal {
		d.Fail("unknown node tag %d", tag)
		return nil
	}
	if label < 0 || label >= classes {
		d.Fail("label %d out of range for %d classes", label, classes)
		return nil
	}
	if nCounts != 0 && nCounts != classes {
		d.Fail("count vector has %d entries for %d classes", nCounts, classes)
		return nil
	}
	n := &Node{Label: label}
	if nCounts > 0 {
		n.Counts = make([]int, nCounts)
		for i := range n.Counts {
			c := d.I64()
			if c < 0 {
				d.Fail("negative class count %d", c)
				return nil
			}
			n.Counts[i] = int(c)
		}
	}
	if tag == tagLeaf {
		return n
	}
	n.Feature = int(d.U32())
	n.Threshold = d.F64()
	if d.Err() != nil {
		return nil
	}
	if n.Feature < 0 || n.Feature >= width {
		d.Fail("split feature %d out of range for width %d", n.Feature, width)
		return nil
	}
	n.Left = decodeNode(d, classes, width, depth+1)
	n.Right = decodeNode(d, classes, width, depth+1)
	if d.Err() != nil {
		return nil
	}
	return n
}

// Package featsel implements the two feature-selection procedures of the
// paper's §4.1 — Sequential Forward Search (SFS, Somol et al.) for the SVM
// model and pruned-tree usage voting for CART — plus the (γ, C) grid model
// selection used to tune the RBF kernel. Feature identities are dataset
// column indices; in Iustitia column k-1 holds the entropy feature h_k, so
// "prefer features with lower k" translates to preferring lower columns.
package featsel

import (
	"errors"
	"fmt"
	"sort"

	"iustitia/internal/ml/cart"
	"iustitia/internal/ml/dataset"
	"iustitia/internal/ml/svm"
)

// Evaluator trains a model on train (already projected to the candidate
// columns) and returns its accuracy on test.
type Evaluator func(train, test *dataset.Dataset) (float64, error)

// ErrTargetSize is returned when the requested number of features is
// invalid for the dataset.
var ErrTargetSize = errors.New("featsel: invalid target feature count")

// SVMEvaluator adapts an SVM configuration into an Evaluator.
func SVMEvaluator(cfg svm.Config) Evaluator {
	return func(train, test *dataset.Dataset) (float64, error) {
		m, err := svm.Train(train, cfg)
		if err != nil {
			return 0, err
		}
		conf, err := m.Evaluate(test)
		if err != nil {
			return 0, err
		}
		return conf.Accuracy(), nil
	}
}

// CARTEvaluator adapts a CART configuration into an Evaluator.
func CARTEvaluator(cfg cart.Config) Evaluator {
	return func(train, test *dataset.Dataset) (float64, error) {
		tree, err := cart.Train(train, cfg)
		if err != nil {
			return 0, err
		}
		conf, err := tree.Evaluate(test)
		if err != nil {
			return 0, err
		}
		return conf.Accuracy(), nil
	}
}

// SFS runs Sequential Forward Search: starting from the empty set, it
// repeatedly adds the column that maximizes eval accuracy on (train, val)
// until nSelect columns are chosen. It returns the chosen columns in
// selection order.
func SFS(train, val *dataset.Dataset, nSelect int, eval Evaluator) ([]int, error) {
	width := train.Width()
	if nSelect < 1 || nSelect > width {
		return nil, fmt.Errorf("%w: %d of %d", ErrTargetSize, nSelect, width)
	}
	var selected []int
	inSet := make([]bool, width)
	for len(selected) < nSelect {
		bestCol, bestAcc := -1, -1.0
		for col := 0; col < width; col++ {
			if inSet[col] {
				continue
			}
			candidate := append(append([]int{}, selected...), col)
			trainP, err := train.Project(candidate)
			if err != nil {
				return nil, err
			}
			valP, err := val.Project(candidate)
			if err != nil {
				return nil, err
			}
			acc, err := eval(trainP, valP)
			if err != nil {
				return nil, fmt.Errorf("featsel: evaluating column %d: %w", col, err)
			}
			if acc > bestAcc {
				bestAcc, bestCol = acc, col
			}
		}
		selected = append(selected, bestCol)
		inSet[bestCol] = true
	}
	return selected, nil
}

// SFSVote runs SFS independently on every cross-validation fold and tallies
// one vote per fold for each selected column (the paper's "voting mechanism
// to choose the best features"). It returns the nSelect columns with the
// most votes, ties broken toward lower columns, sorted ascending.
func SFSVote(folds []dataset.Fold, nSelect int, eval Evaluator) ([]int, error) {
	if len(folds) == 0 {
		return nil, errors.New("featsel: no folds")
	}
	width := folds[0].Train.Width()
	votes := make([]int, width)
	for i, f := range folds {
		cols, err := SFS(f.Train, f.Test, nSelect, eval)
		if err != nil {
			return nil, fmt.Errorf("featsel: fold %d: %w", i, err)
		}
		for _, c := range cols {
			votes[c]++
		}
	}
	return topColumns(votes, nSelect), nil
}

// TreeVote implements the CART feature selector: per fold, grow a tree,
// prune it against the fold's test set until accuracy drops by at most
// maxAccuracyDrop, then credit each feature with its split count in the
// pruned tree. It returns the nSelect most-used columns, sorted ascending.
func TreeVote(folds []dataset.Fold, nSelect int, cfg cart.Config, maxAccuracyDrop float64) ([]int, error) {
	if len(folds) == 0 {
		return nil, errors.New("featsel: no folds")
	}
	width := folds[0].Train.Width()
	if nSelect < 1 || nSelect > width {
		return nil, fmt.Errorf("%w: %d of %d", ErrTargetSize, nSelect, width)
	}
	votes := make([]int, width)
	for i, f := range folds {
		tree, err := cart.Train(f.Train, cfg)
		if err != nil {
			return nil, fmt.Errorf("featsel: fold %d: %w", i, err)
		}
		if _, err := tree.Prune(f.Test, maxAccuracyDrop); err != nil {
			return nil, fmt.Errorf("featsel: fold %d prune: %w", i, err)
		}
		for col, used := range tree.FeatureUsage() {
			votes[col] += used
		}
	}
	return topColumns(votes, nSelect), nil
}

// topColumns returns the n columns with the highest votes, ties broken
// toward lower column indices, sorted ascending.
func topColumns(votes []int, n int) []int {
	order := make([]int, len(votes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if votes[order[a]] != votes[order[b]] {
			return votes[order[a]] > votes[order[b]]
		}
		return order[a] < order[b]
	})
	top := append([]int{}, order[:n]...)
	sort.Ints(top)
	return top
}

// CapColumns applies the paper's deployment preference for narrow element
// widths: every selected column above maxCol is replaced by the widest
// unused column <= maxCol — the closest admissible substitute, exactly the
// paper's h10 -> h5 (φ′_CART) and h9 -> h5 (φ′_SVM) replacements. The
// result is sorted ascending and duplicate-free.
func CapColumns(selected []int, maxCol int) []int {
	used := make(map[int]bool, len(selected))
	for _, c := range selected {
		if c <= maxCol {
			used[c] = true
		}
	}
	out := make([]int, 0, len(selected))
	for c := range used {
		out = append(out, c)
	}
	need := len(selected) - len(out)
	for c := maxCol; c >= 0 && need > 0; c-- {
		if !used[c] {
			out = append(out, c)
			used[c] = true
			need--
		}
	}
	sort.Ints(out)
	return out
}

// GridPoint is one (γ, C) model-selection result.
type GridPoint struct {
	Gamma    float64
	C        float64
	Accuracy float64
}

// GridSearchSVM sweeps the cross product of gammas and cs, training an
// RBF-kernel SVM on train and scoring on val, and returns every grid point
// plus the best one. base supplies the non-swept configuration.
func GridSearchSVM(train, val *dataset.Dataset, gammas, cs []float64, base svm.Config) ([]GridPoint, GridPoint, error) {
	if len(gammas) == 0 || len(cs) == 0 {
		return nil, GridPoint{}, errors.New("featsel: empty model-selection grid")
	}
	var (
		points []GridPoint
		best   GridPoint
	)
	best.Accuracy = -1
	for _, gamma := range gammas {
		for _, c := range cs {
			cfg := base
			cfg.Kernel = svm.RBF{Gamma: gamma}
			cfg.C = c
			m, err := svm.Train(train, cfg)
			if err != nil {
				return nil, GridPoint{}, fmt.Errorf("featsel: grid (γ=%v, C=%v): %w", gamma, c, err)
			}
			conf, err := m.Evaluate(val)
			if err != nil {
				return nil, GridPoint{}, err
			}
			p := GridPoint{Gamma: gamma, C: c, Accuracy: conf.Accuracy()}
			points = append(points, p)
			if p.Accuracy > best.Accuracy {
				best = p
			}
		}
	}
	return points, best, nil
}

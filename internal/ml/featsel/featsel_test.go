package featsel

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"iustitia/internal/ml/cart"
	"iustitia/internal/ml/dataset"
	"iustitia/internal/ml/svm"
)

// signalDataset has complementary informative columns 1 and 3 — column 1
// separates class 0 from {1,2} and column 3 separates class 2 from {0,1},
// so both are required for full accuracy — while columns 0, 2, 4 are pure
// noise.
func signalDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var samples []dataset.Sample
	for class := 0; class < 3; class++ {
		f1 := 0.8
		if class == 0 {
			f1 = 0.2
		}
		f3 := 0.2
		if class == 2 {
			f3 = 0.8
		}
		for i := 0; i < n; i++ {
			samples = append(samples, dataset.Sample{
				Features: []float64{
					rng.Float64(),
					f1 + rng.NormFloat64()*0.05,
					rng.Float64(),
					f3 + rng.NormFloat64()*0.05,
					rng.Float64(),
				},
				Label: class,
			})
		}
	}
	ds, err := dataset.New(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSFSFindsSignalColumns(t *testing.T) {
	train := signalDataset(t, 60, 1)
	val := signalDataset(t, 40, 2)
	cols, err := SFS(train, val, 2, CARTEvaluator(cart.Config{MinLeaf: 3}))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cols {
		if c != 1 && c != 3 {
			t.Errorf("SFS selected noise column %d (selection %v)", c, cols)
		}
	}
}

func TestSFSValidation(t *testing.T) {
	ds := signalDataset(t, 10, 3)
	if _, err := SFS(ds, ds, 0, CARTEvaluator(cart.Config{})); !errors.Is(err, ErrTargetSize) {
		t.Errorf("nSelect=0: err = %v", err)
	}
	if _, err := SFS(ds, ds, 99, CARTEvaluator(cart.Config{})); !errors.Is(err, ErrTargetSize) {
		t.Errorf("nSelect>width: err = %v", err)
	}
}

func TestSFSVote(t *testing.T) {
	ds := signalDataset(t, 90, 4)
	folds, err := ds.StratifiedKFold(3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cols, err := SFSVote(folds, 2, CARTEvaluator(cart.Config{MinLeaf: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, []int{1, 3}) {
		t.Errorf("SFSVote = %v, want [1 3]", cols)
	}
	if _, err := SFSVote(nil, 2, CARTEvaluator(cart.Config{})); err == nil {
		t.Error("no folds: want error")
	}
}

func TestTreeVote(t *testing.T) {
	ds := signalDataset(t, 90, 6)
	folds, err := ds.StratifiedKFold(3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	cols, err := TreeVote(folds, 2, cart.Config{MinLeaf: 3}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, []int{1, 3}) {
		t.Errorf("TreeVote = %v, want [1 3]", cols)
	}
	if _, err := TreeVote(folds, 0, cart.Config{}, 0.02); !errors.Is(err, ErrTargetSize) {
		t.Errorf("nSelect=0: err = %v", err)
	}
	if _, err := TreeVote(nil, 2, cart.Config{}, 0.02); err == nil {
		t.Error("no folds: want error")
	}
}

func TestTopColumnsTieBreak(t *testing.T) {
	got := topColumns([]int{3, 5, 5, 1}, 2)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("topColumns = %v, want [1 2]", got)
	}
	// Ties prefer lower indices.
	got = topColumns([]int{2, 2, 2}, 2)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("topColumns ties = %v, want [0 1]", got)
	}
}

func TestCapColumns(t *testing.T) {
	// Paper case: φ_CART columns {0,2,3,9} (h1,h3,h4,h10) capped at
	// column 4 (h5) becomes {0,2,3,4}.
	got := CapColumns([]int{0, 2, 3, 9}, 4)
	if !reflect.DeepEqual(got, []int{0, 2, 3, 4}) {
		t.Errorf("CapColumns = %v, want [0 2 3 4]", got)
	}
	// Paper case: φ_SVM columns {0,1,2,8} (h1,h2,h3,h9) capped at column 4
	// becomes {0,1,2,4} = φ′_SVM (h1,h2,h3,h5).
	got = CapColumns([]int{0, 1, 2, 8}, 4)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 4}) {
		t.Errorf("CapColumns = %v, want [0 1 2 4]", got)
	}
	// Already-capped sets are unchanged.
	got = CapColumns([]int{1, 2}, 4)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("CapColumns no-op = %v, want [1 2]", got)
	}
	// Duplicates above the cap collapse to distinct replacements filled
	// downward from the cap.
	got = CapColumns([]int{7, 8}, 2)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("CapColumns dup = %v, want [1 2]", got)
	}
}

func TestGridSearchSVM(t *testing.T) {
	train := signalDataset(t, 50, 8)
	val := signalDataset(t, 30, 9)
	trainP, err := train.Project([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	valP, err := val.Project([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	points, best, err := GridSearchSVM(trainP, valP,
		[]float64{1, 10, 50}, []float64{1, 100}, svm.Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("grid points = %d, want 6", len(points))
	}
	if best.Accuracy < 0.9 {
		t.Errorf("best grid accuracy = %v, want >= 0.9", best.Accuracy)
	}
	for _, p := range points {
		if p.Accuracy > best.Accuracy {
			t.Errorf("best (%v) is not maximal (point %+v)", best.Accuracy, p)
		}
	}
	if _, _, err := GridSearchSVM(trainP, valP, nil, []float64{1}, svm.Config{}); err == nil {
		t.Error("empty grid: want error")
	}
}

func TestSVMEvaluator(t *testing.T) {
	train := signalDataset(t, 40, 11)
	val := signalDataset(t, 30, 12)
	trainP, err := train.Project([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	valP, err := val.Project([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := SVMEvaluator(svm.Config{Kernel: svm.RBF{Gamma: 50}, C: 100, Seed: 13})(trainP, valP)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("SVM evaluator accuracy = %v, want >= 0.8", acc)
	}
}

package svm

import (
	"errors"
	"math"
	"math/rand"
)

// smoConfig carries the binary-training knobs resolved from Config.
type smoConfig struct {
	c         float64
	kernel    Kernel
	tol       float64
	maxPasses int
	maxIter   int
	rng       *rand.Rand
}

// binary is one trained two-class machine. Labels are ±1. Only support
// vectors are retained.
type binary struct {
	kernel Kernel
	// coef[i] = alpha_i * y_i for support vector i.
	coef []float64
	svs  [][]float64
	b    float64
}

// trainBinary runs simplified SMO (Platt 1998, in the simplified variant
// with randomized second-choice and an error cache) on x with labels
// y ∈ {−1, +1}.
func trainBinary(x [][]float64, y []float64, cfg smoConfig) (*binary, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, errors.New("svm: empty or mismatched training data")
	}
	// Precompute the kernel matrix; binary problems in Iustitia are a few
	// hundred points, so the O(n²) memory is cheap and removes the
	// dominant repeated cost from the SMO inner loop.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := cfg.kernel.Compute(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
	}

	alpha := make([]float64, n)
	var b float64

	decision := func(i int) float64 {
		var f float64
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				f += alpha[j] * y[j] * k[j][i]
			}
		}
		return f + b
	}

	passes, iter := 0, 0
	for passes < cfg.maxPasses && iter < cfg.maxIter {
		iter++
		changed := 0
		for i := 0; i < n; i++ {
			ei := decision(i) - y[i]
			// KKT violation check.
			if !((y[i]*ei < -cfg.tol && alpha[i] < cfg.c) || (y[i]*ei > cfg.tol && alpha[i] > 0)) {
				continue
			}
			j := cfg.rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := decision(j) - y[j]

			aiOld, ajOld := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, ajOld-aiOld)
				hi = math.Min(cfg.c, cfg.c+ajOld-aiOld)
			} else {
				lo = math.Max(0, aiOld+ajOld-cfg.c)
				hi = math.Min(cfg.c, aiOld+ajOld)
			}
			if lo == hi {
				continue
			}
			eta := 2*k[i][j] - k[i][i] - k[j][j]
			if eta >= 0 {
				continue
			}
			aj := ajOld - y[j]*(ei-ej)/eta
			if aj > hi {
				aj = hi
			} else if aj < lo {
				aj = lo
			}
			if math.Abs(aj-ajOld) < 1e-5 {
				continue
			}
			ai := aiOld + y[i]*y[j]*(ajOld-aj)
			alpha[i], alpha[j] = ai, aj

			b1 := b - ei - y[i]*(ai-aiOld)*k[i][i] - y[j]*(aj-ajOld)*k[i][j]
			b2 := b - ej - y[i]*(ai-aiOld)*k[i][j] - y[j]*(aj-ajOld)*k[j][j]
			switch {
			case ai > 0 && ai < cfg.c:
				b = b1
			case aj > 0 && aj < cfg.c:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Retain support vectors only.
	m := &binary{kernel: cfg.kernel, b: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.coef = append(m.coef, alpha[i]*y[i])
			m.svs = append(m.svs, x[i])
		}
	}
	return m, nil
}

// decision returns the signed decision value f(x) = Σ αᵢyᵢK(svᵢ, x) + b.
func (m *binary) decision(x []float64) float64 {
	f := m.b
	for i, sv := range m.svs {
		f += m.coef[i] * m.kernel.Compute(sv, x)
	}
	return f
}

// numSVs returns the number of retained support vectors.
func (m *binary) numSVs() int { return len(m.svs) }

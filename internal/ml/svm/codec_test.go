package svm

import (
	"errors"
	"testing"

	"iustitia/internal/persist"
)

// encodeMultiClass trains a 4-class model and returns it with its
// encoding.
func encodeMultiClass(t *testing.T, mode MultiClass) (*Model, []byte) {
	t.Helper()
	m, err := Train(fourCorners(t, 30, 11), Config{
		C: 10, Kernel: RBF{Gamma: 5}, MultiClass: mode, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return m, blob
}

// TestCodecRoundTripPredictions is the round-trip property: a
// saved-then-loaded model must produce byte-identical predictions to the
// original across the full evaluation dataset, in both multi-class
// modes.
func TestCodecRoundTripPredictions(t *testing.T) {
	for _, mode := range []MultiClass{DAG, Vote} {
		m, blob := encodeMultiClass(t, mode)
		loaded, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Classes() != m.Classes() || loaded.Width() != m.Width() {
			t.Fatalf("loaded (classes=%d,width=%d), want (%d,%d)",
				loaded.Classes(), loaded.Width(), m.Classes(), m.Width())
		}
		if loaded.SupportVectors() != m.SupportVectors() {
			t.Errorf("loaded has %d SVs, want %d", loaded.SupportVectors(), m.SupportVectors())
		}
		eval := fourCorners(t, 40, 77)
		for i, s := range eval.Samples {
			want, err := m.Predict(s.Features)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Predict(s.Features)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("mode %d sample %d: loaded predicts %d, original %d", mode, i, got, want)
			}
		}
		// Deterministic encoding: re-encoding reproduces the bytes.
		blob2, err := loaded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(blob2) != string(blob) {
			t.Errorf("mode %d: re-encoded model differs from original encoding", mode)
		}
	}
}

// TestCodecWidthGuard confirms a loaded model still refuses mismatched
// feature vectors.
func TestCodecWidthGuard(t *testing.T) {
	_, blob := encodeMultiClass(t, DAG)
	loaded, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Predict([]float64{0.1}); !errors.Is(err, ErrFeatureWidth) {
		t.Errorf("short vector: err = %v, want ErrFeatureWidth", err)
	}
}

// TestCodecTruncation clips a valid encoding at every byte offset: each
// prefix must fail cleanly with ErrCorrupt, never panic.
func TestCodecTruncation(t *testing.T) {
	_, blob := encodeMultiClass(t, DAG)
	for i := 0; i < len(blob); i++ {
		if _, err := Decode(blob[:i]); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("Decode(blob[:%d]) = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestCodecRejectsInvalid(t *testing.T) {
	_, blob := encodeMultiClass(t, DAG)

	flip := func(off int) []byte {
		b := append([]byte(nil), blob...)
		b[off] ^= 0xFF
		return b
	}
	cases := map[string][]byte{
		"empty":            {},
		"trailing garbage": append(append([]byte(nil), blob...), 1, 2, 3),
		"classes flipped":  flip(0),
		"width flipped":    flip(4),
		"mode flipped":     flip(8),
	}
	for name, b := range cases {
		if _, err := Decode(b); !errors.Is(err, persist.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	// A machine pair out of range must be rejected even when counts are
	// plausible.
	var e persist.Encoder
	e.U32(2)         // classes
	e.U32(1)         // width
	e.U8(uint8(DAG)) // mode
	e.U32(1)         // machines
	e.U32(1)         // i
	e.U32(1)         // j == i: invalid
	e.U8(tagLinear)  // kernel
	e.F64(0)         // gamma
	e.F64(0)         // b
	e.U32(0)         // coefs
	e.U32(0)         // svs
	if _, err := Decode(e.Bytes()); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("bad pair: err = %v, want ErrCorrupt", err)
	}
}

func TestEncodeUntrained(t *testing.T) {
	var m *Model
	if _, err := m.Encode(); !errors.Is(err, ErrNotTrained) {
		t.Errorf("nil model: err = %v, want ErrNotTrained", err)
	}
}

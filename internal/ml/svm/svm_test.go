package svm

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iustitia/internal/ml/dataset"
)

func TestLinearKernel(t *testing.T) {
	k := Linear{}
	if got := k.Compute([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("linear = %v, want 11", got)
	}
}

func TestRBFKernel(t *testing.T) {
	k := RBF{Gamma: 1}
	if got := k.Compute([]float64{1, 1}, []float64{1, 1}); got != 1 {
		t.Errorf("RBF(x,x) = %v, want 1", got)
	}
	got := k.Compute([]float64{0, 0}, []float64{1, 0})
	if want := math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("RBF = %v, want %v", got, want)
	}
}

// separable2D returns a linearly separable two-class dataset.
func separable2D(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var samples []dataset.Sample
	for i := 0; i < n; i++ {
		samples = append(samples,
			dataset.Sample{Features: []float64{rng.Float64() * 0.4, rng.Float64()}, Label: 0},
			dataset.Sample{Features: []float64{0.6 + rng.Float64()*0.4, rng.Float64()}, Label: 1},
		)
	}
	ds, err := dataset.New(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// ringDataset is a non-linearly-separable problem (inner disk vs outer
// ring) the RBF kernel must solve and the linear kernel cannot.
func ringDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var samples []dataset.Sample
	for len(samples) < 2*n {
		x, y := rng.Float64()*2-1, rng.Float64()*2-1
		r := math.Hypot(x, y)
		switch {
		case r < 0.4:
			samples = append(samples, dataset.Sample{Features: []float64{x, y}, Label: 0})
		case r > 0.6 && r < 1:
			samples = append(samples, dataset.Sample{Features: []float64{x, y}, Label: 1})
		}
	}
	ds, err := dataset.New(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// threeBands is a 3-class problem shaped like the entropy-band geometry.
func threeBands(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var samples []dataset.Sample
	centers := []float64{0.25, 0.6, 0.92}
	for class, c := range centers {
		for i := 0; i < n; i++ {
			samples = append(samples, dataset.Sample{
				Features: []float64{
					c + rng.NormFloat64()*0.05,
					c*0.9 + rng.NormFloat64()*0.06,
				},
				Label: class,
			})
		}
	}
	ds, err := dataset.New(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainEmpty(t *testing.T) {
	if _, err := Train(nil, Config{}); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestTrainMissingClass(t *testing.T) {
	ds, err := dataset.New([]dataset.Sample{
		{Features: []float64{1}, Label: 0},
		{Features: []float64{2}, Label: 0},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(ds, Config{}); err == nil {
		t.Error("missing class samples: want error")
	}
}

func TestLinearSeparable(t *testing.T) {
	train := separable2D(t, 40, 1)
	test := separable2D(t, 20, 2)
	m, err := Train(train, Config{Kernel: Linear{}, C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc < 0.95 {
		t.Errorf("linear separable accuracy = %v, want >= 0.95", acc)
	}
}

func TestRBFSolvesRing(t *testing.T) {
	train := ringDataset(t, 60, 4)
	test := ringDataset(t, 40, 5)
	rbf, err := Train(train, Config{Kernel: RBF{Gamma: 10}, C: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := rbf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc < 0.9 {
		t.Errorf("RBF ring accuracy = %v, want >= 0.9", acc)
	}

	// The linear kernel must do clearly worse on the same problem.
	lin, err := Train(train, Config{Kernel: Linear{}, C: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	linConf, err := lin.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if linConf.Accuracy() >= conf.Accuracy() {
		t.Errorf("linear (%v) should not beat RBF (%v) on the ring",
			linConf.Accuracy(), conf.Accuracy())
	}
}

func TestThreeClassDAG(t *testing.T) {
	train := threeBands(t, 60, 7)
	test := threeBands(t, 40, 8)
	m, err := Train(train, Config{Kernel: RBF{Gamma: 50}, C: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc < 0.9 {
		t.Errorf("3-class DAG accuracy = %v, want >= 0.9", acc)
	}
	if m.SupportVectors() == 0 {
		t.Error("model retained no support vectors")
	}
}

func TestDAGAndVoteAgreeOnClearData(t *testing.T) {
	train := threeBands(t, 60, 10)
	test := threeBands(t, 40, 11)
	dag, err := Train(train, Config{Kernel: RBF{Gamma: 50}, C: 1000, MultiClass: DAG, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	vote, err := Train(train, Config{Kernel: RBF{Gamma: 50}, C: 1000, MultiClass: Vote, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, s := range test.Samples {
		p1, err := dag.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := vote.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		if p1 == p2 {
			agree++
		}
	}
	if frac := float64(agree) / float64(test.Len()); frac < 0.9 {
		t.Errorf("DAG and Vote agree on only %v of clear data", frac)
	}
}

func TestPredictValidation(t *testing.T) {
	var empty *Model
	if _, err := empty.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("nil model: err = %v", err)
	}
	m, err := Train(separable2D(t, 20, 13), Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2, 3}); !errors.Is(err, ErrFeatureWidth) {
		t.Errorf("wrong width: err = %v", err)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	train := threeBands(t, 40, 15)
	m, err := Train(train, Config{Kernel: RBF{Gamma: 50}, C: 1000, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Classes() != 3 || restored.Width() != 2 {
		t.Fatalf("restored shape = (%d classes, %d width)", restored.Classes(), restored.Width())
	}
	for _, s := range train.Samples {
		p1, err := m.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := restored.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatal("round-trip prediction mismatch")
		}
	}
}

func TestModelJSONInvalid(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{"classes":1}`), &m); err == nil {
		t.Error("classes=1: want error")
	}
	if err := json.Unmarshal([]byte(`{"classes":2,"width":1,"machines":[]}`), &m); err == nil {
		t.Error("missing machines: want error")
	}
	bad := `{"classes":2,"width":1,"machines":[{"i":0,"j":1,"kernel":{"type":"nope"},"coef":[],"svs":[],"b":0}]}`
	if err := json.Unmarshal([]byte(bad), &m); err == nil {
		t.Error("unknown kernel: want error")
	}
}

func TestKernelSpecRoundTrip(t *testing.T) {
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 2.5}} {
		spec, err := specFor(k)
		if err != nil {
			t.Fatal(err)
		}
		back, err := spec.kernel()
		if err != nil {
			t.Fatal(err)
		}
		a, b := []float64{0.1, 0.9}, []float64{0.4, 0.2}
		if back.Compute(a, b) != k.Compute(a, b) {
			t.Errorf("kernel %T changed after spec round trip", k)
		}
	}
	if _, err := (kernelSpec{Type: "rbf", Gamma: 0}).kernel(); err == nil {
		t.Error("rbf gamma=0: want error")
	}
}

// Property: RBF kernel is symmetric, bounded in (0, 1], and 1 on the
// diagonal.
func TestRBFProperty(t *testing.T) {
	k := RBF{Gamma: 3}
	prop := func(a, b [3]float64) bool {
		for _, v := range append(a[:], b[:]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		kab := k.Compute(a[:], b[:])
		kba := k.Compute(b[:], a[:])
		kaa := k.Compute(a[:], a[:])
		return kab == kba && kab > 0 && kab <= 1 && kaa == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the decision function of a trained binary machine is
// continuous in its inputs in the trivial sense that identical inputs give
// identical outputs across repeated calls (no hidden state).
func TestDecisionDeterministic(t *testing.T) {
	m, err := Train(separable2D(t, 30, 17), Config{Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0.5}
	p1, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p2, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatal("prediction not deterministic")
		}
	}
}

package svm

import (
	"fmt"

	"iustitia/internal/persist"
)

// This file is the model's durable binary codec: a header (classes,
// width, multi-class mode) followed by every pairwise machine — kernel
// spec, support vectors, coefficients, bias. Decoding validates every
// field (pair indices, machine count, vector widths, kernel parameters)
// so a hostile payload yields persist.ErrCorrupt, never a panic or a
// model that silently accepts mismatched feature vectors.

// Caps enforced while decoding, far above any real Iustitia model.
const (
	maxDecodeClasses = 1 << 8
	maxDecodeWidth   = 1 << 16
)

// Kernel tags on the wire.
const (
	tagLinear = 0
	tagRBF    = 1
)

// Encode serializes the model to the persist wire format. Machines are
// written in (i, j) lexicographic order so encoding is deterministic.
func (m *Model) Encode() ([]byte, error) {
	if m == nil || len(m.machines) == 0 {
		return nil, ErrNotTrained
	}
	var e persist.Encoder
	e.U32(uint32(m.classes))
	e.U32(uint32(m.width))
	e.U8(uint8(m.mode))
	e.U32(uint32(len(m.machines)))
	for i := 0; i < m.classes; i++ {
		for j := i + 1; j < m.classes; j++ {
			mach, ok := m.machines[[2]int{i, j}]
			if !ok {
				return nil, fmt.Errorf("svm: encode: machine (%d,%d) missing", i, j)
			}
			e.U32(uint32(i))
			e.U32(uint32(j))
			switch k := mach.kernel.(type) {
			case Linear:
				e.U8(tagLinear)
				e.F64(0)
			case RBF:
				e.U8(tagRBF)
				e.F64(k.Gamma)
			default:
				return nil, fmt.Errorf("svm: unserializable kernel %T", mach.kernel)
			}
			e.F64(mach.b)
			e.F64s(mach.coef)
			e.U32(uint32(len(mach.svs)))
			for _, sv := range mach.svs {
				if len(sv) != m.width {
					return nil, fmt.Errorf("svm: encode: support vector width %d, model width %d",
						len(sv), m.width)
				}
				for _, v := range sv {
					e.F64(v)
				}
			}
		}
	}
	return e.Bytes(), nil
}

// Decode restores a model written by Encode. Any truncated, bit-flipped,
// or semantically invalid payload returns an error wrapping
// persist.ErrCorrupt.
func Decode(data []byte) (*Model, error) {
	d := persist.NewDecoder(data)
	classes := int(d.U32())
	width := int(d.U32())
	mode := MultiClass(d.U8())
	nMachines := d.Count(1)
	if d.Err() == nil {
		if classes < 2 || classes > maxDecodeClasses {
			d.Fail("class count %d out of range", classes)
		}
		if width < 1 || width > maxDecodeWidth {
			d.Fail("feature width %d out of range", width)
		}
		if mode != DAG && mode != Vote {
			d.Fail("unknown multi-class mode %d", mode)
		}
		if nMachines != classes*(classes-1)/2 {
			d.Fail("%d machines for %d classes, want %d", nMachines, classes, classes*(classes-1)/2)
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("svm: decode: %w", err)
	}
	m := &Model{
		classes:  classes,
		width:    width,
		mode:     mode,
		machines: make(map[[2]int]*binary, nMachines),
	}
	for k := 0; k < nMachines; k++ {
		i := int(d.U32())
		j := int(d.U32())
		ktag := d.U8()
		gamma := d.F64()
		b := d.F64()
		coef := d.F64s()
		nSVs := d.Count(8 * width)
		if d.Err() != nil {
			break
		}
		if i < 0 || j <= i || j >= classes {
			d.Fail("machine pair (%d,%d) out of range for %d classes", i, j, classes)
			break
		}
		if _, dup := m.machines[[2]int{i, j}]; dup {
			d.Fail("duplicate machine (%d,%d)", i, j)
			break
		}
		var kernel Kernel
		switch ktag {
		case tagLinear:
			kernel = Linear{}
		case tagRBF:
			if !(gamma > 0) {
				d.Fail("rbf gamma %v out of range", gamma)
			}
			kernel = RBF{Gamma: gamma}
		default:
			d.Fail("unknown kernel tag %d", ktag)
		}
		if len(coef) != nSVs {
			d.Fail("machine (%d,%d) has %d coefs for %d SVs", i, j, len(coef), nSVs)
		}
		if d.Err() != nil {
			break
		}
		svs := make([][]float64, nSVs)
		for s := range svs {
			sv := make([]float64, width)
			for x := range sv {
				sv[x] = d.F64()
			}
			svs[s] = sv
		}
		m.machines[[2]int{i, j}] = &binary{kernel: kernel, coef: coef, svs: svs, b: b}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("svm: decode: %w", err)
	}
	return m, nil
}

// Package svm implements soft-margin support vector machines trained with
// sequential minimal optimization (SMO), with linear and RBF kernels, and
// the DAGSVM decision DAG (Platt et al., NIPS 2000) for multi-class
// classification — the classifier family with which Iustitia reaches its
// headline 86% accuracy (RBF kernel, γ=50, C=1000).
package svm

import (
	"errors"
	"fmt"
	"math"
)

// Kernel computes inner products in feature space.
type Kernel interface {
	// Compute returns K(a, b). Implementations may assume len(a) == len(b).
	Compute(a, b []float64) float64
}

// Linear is the linear kernel K(a,b) = a·b.
type Linear struct{}

// Compute implements Kernel.
func (Linear) Compute(a, b []float64) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

// RBF is the radial-basis-function kernel K(a,b) = exp(-γ·||a-b||²).
type RBF struct {
	Gamma float64
}

// Compute implements Kernel.
func (k RBF) Compute(a, b []float64) float64 {
	var sq float64
	for i := range a {
		d := a[i] - b[i]
		sq += d * d
	}
	return math.Exp(-k.Gamma * sq)
}

// kernelSpec is the serializable description of a kernel.
type kernelSpec struct {
	Type  string  `json:"type"`
	Gamma float64 `json:"gamma,omitempty"`
}

func specFor(k Kernel) (kernelSpec, error) {
	switch k := k.(type) {
	case Linear:
		return kernelSpec{Type: "linear"}, nil
	case RBF:
		return kernelSpec{Type: "rbf", Gamma: k.Gamma}, nil
	default:
		return kernelSpec{}, fmt.Errorf("svm: unserializable kernel %T", k)
	}
}

func (s kernelSpec) kernel() (Kernel, error) {
	switch s.Type {
	case "linear":
		return Linear{}, nil
	case "rbf":
		if s.Gamma <= 0 {
			return nil, errors.New("svm: rbf kernel needs gamma > 0")
		}
		return RBF{Gamma: s.Gamma}, nil
	default:
		return nil, fmt.Errorf("svm: unknown kernel type %q", s.Type)
	}
}

package svm

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"iustitia/internal/ml/dataset"
)

// MultiClass selects how pairwise binary machines are combined.
type MultiClass int

const (
	// DAG evaluates the decision DAG of Platt et al. (DAGSVM): exactly
	// Classes-1 binary evaluations per prediction. This is the paper's
	// choice — "the fastest among other multi-class voting methods".
	DAG MultiClass = iota + 1
	// Vote runs all pairwise machines and takes the majority
	// (one-vs-one max-wins), kept as an ablation baseline.
	Vote
)

// Common errors.
var (
	ErrNotTrained   = errors.New("svm: model has not been trained")
	ErrFeatureWidth = errors.New("svm: feature width mismatch")
)

// Config controls SVM training.
type Config struct {
	// C is the soft-margin penalty; values <= 0 default to 1.
	C float64
	// Kernel defaults to RBF with Gamma 1 when nil.
	Kernel Kernel
	// Tol is the KKT-violation tolerance; values <= 0 default to 1e-3.
	Tol float64
	// MaxPasses is the number of consecutive no-change sweeps before SMO
	// declares convergence; values <= 0 default to 5.
	MaxPasses int
	// MaxIter hard-caps SMO sweeps; values <= 0 default to 2000.
	MaxIter int
	// MultiClass defaults to DAG.
	MultiClass MultiClass
	// Seed drives SMO's randomized working-pair choice.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.C <= 0 {
		c.C = 1
	}
	if c.Kernel == nil {
		c.Kernel = RBF{Gamma: 1}
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 2000
	}
	if c.MultiClass == 0 {
		c.MultiClass = DAG
	}
	return c
}

// Model is a trained multi-class SVM: one binary machine per unordered
// class pair, combined by DAGSVM or voting.
type Model struct {
	classes  int
	width    int
	mode     MultiClass
	machines map[[2]int]*binary // keyed by {i, j} with i < j
}

// Train fits pairwise binary machines on ds.
func Train(ds *dataset.Dataset, cfg Config) (*Model, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	byClass := make([][][]float64, ds.Classes)
	for _, s := range ds.Samples {
		byClass[s.Label] = append(byClass[s.Label], s.Features)
	}
	m := &Model{
		classes:  ds.Classes,
		width:    ds.Width(),
		mode:     cfg.MultiClass,
		machines: make(map[[2]int]*binary),
	}
	for i := 0; i < ds.Classes; i++ {
		for j := i + 1; j < ds.Classes; j++ {
			if len(byClass[i]) == 0 || len(byClass[j]) == 0 {
				return nil, fmt.Errorf("svm: class pair (%d,%d) lacks samples", i, j)
			}
			x := make([][]float64, 0, len(byClass[i])+len(byClass[j]))
			y := make([]float64, 0, cap(x))
			// Class i is the +1 side of machine (i, j).
			for _, f := range byClass[i] {
				x = append(x, f)
				y = append(y, 1)
			}
			for _, f := range byClass[j] {
				x = append(x, f)
				y = append(y, -1)
			}
			mach, err := trainBinary(x, y, smoConfig{
				c:         cfg.C,
				kernel:    cfg.Kernel,
				tol:       cfg.Tol,
				maxPasses: cfg.MaxPasses,
				maxIter:   cfg.MaxIter,
				rng:       rng,
			})
			if err != nil {
				return nil, fmt.Errorf("svm: pair (%d,%d): %w", i, j, err)
			}
			m.machines[[2]int{i, j}] = mach
		}
	}
	return m, nil
}

// Classes returns the number of classes the model distinguishes.
func (m *Model) Classes() int { return m.classes }

// Width returns the expected feature-vector width.
func (m *Model) Width() int { return m.width }

// SupportVectors returns the total support-vector count across machines —
// the model-size measure behind the paper's space accounting.
func (m *Model) SupportVectors() int {
	var total int
	for _, mach := range m.machines {
		total += mach.numSVs()
	}
	return total
}

// Predict classifies one feature vector.
func (m *Model) Predict(features []float64) (int, error) {
	if m == nil || len(m.machines) == 0 {
		return 0, ErrNotTrained
	}
	if len(features) != m.width {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrFeatureWidth, len(features), m.width)
	}
	if m.mode == Vote {
		return m.predictVote(features), nil
	}
	return m.predictDAG(features), nil
}

// predictDAG walks the DAGSVM decision list: keep candidates [lo..hi]; each
// step evaluates machine (lo, hi) and eliminates the losing class, needing
// exactly classes-1 evaluations.
func (m *Model) predictDAG(features []float64) int {
	lo, hi := 0, m.classes-1
	for lo < hi {
		mach := m.machines[[2]int{lo, hi}]
		if mach.decision(features) >= 0 {
			hi-- // class lo (the +1 side) wins; eliminate hi
		} else {
			lo++ // class hi wins; eliminate lo
		}
	}
	return lo
}

// predictVote runs every pairwise machine and returns the class with most
// wins, breaking ties toward the smaller class index.
func (m *Model) predictVote(features []float64) int {
	wins := make([]int, m.classes)
	for pair, mach := range m.machines {
		if mach.decision(features) >= 0 {
			wins[pair[0]]++
		} else {
			wins[pair[1]]++
		}
	}
	best := 0
	for c := 1; c < m.classes; c++ {
		if wins[c] > wins[best] {
			best = c
		}
	}
	return best
}

// Evaluate classifies every sample of ds and returns the confusion matrix.
func (m *Model) Evaluate(ds *dataset.Dataset) (*dataset.Confusion, error) {
	actual := make([]int, ds.Len())
	predicted := make([]int, ds.Len())
	for i, s := range ds.Samples {
		p, err := m.Predict(s.Features)
		if err != nil {
			return nil, err
		}
		actual[i] = s.Label
		predicted[i] = p
	}
	return dataset.NewConfusion(m.classes, actual, predicted)
}

// modelJSON is the serialized form of a Model.
type modelJSON struct {
	Classes  int           `json:"classes"`
	Width    int           `json:"width"`
	Mode     MultiClass    `json:"mode"`
	Machines []machineJSON `json:"machines"`
}

type machineJSON struct {
	I      int         `json:"i"`
	J      int         `json:"j"`
	Kernel kernelSpec  `json:"kernel"`
	Coef   []float64   `json:"coef"`
	SVs    [][]float64 `json:"svs"`
	B      float64     `json:"b"`
}

// MarshalJSON implements json.Marshaler for model persistence.
func (m *Model) MarshalJSON() ([]byte, error) {
	out := modelJSON{Classes: m.classes, Width: m.width, Mode: m.mode}
	for i := 0; i < m.classes; i++ {
		for j := i + 1; j < m.classes; j++ {
			mach := m.machines[[2]int{i, j}]
			spec, err := specFor(mach.kernel)
			if err != nil {
				return nil, err
			}
			out.Machines = append(out.Machines, machineJSON{
				I: i, J: j, Kernel: spec, Coef: mach.coef, SVs: mach.svs, B: mach.b,
			})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Classes < 2 {
		return fmt.Errorf("svm: invalid class count %d", in.Classes)
	}
	m.classes = in.Classes
	m.width = in.Width
	m.mode = in.Mode
	if m.mode == 0 {
		m.mode = DAG
	}
	m.machines = make(map[[2]int]*binary, len(in.Machines))
	for _, mj := range in.Machines {
		k, err := mj.Kernel.kernel()
		if err != nil {
			return err
		}
		if len(mj.Coef) != len(mj.SVs) {
			return fmt.Errorf("svm: machine (%d,%d) has %d coefs for %d SVs",
				mj.I, mj.J, len(mj.Coef), len(mj.SVs))
		}
		m.machines[[2]int{mj.I, mj.J}] = &binary{
			kernel: k, coef: mj.Coef, svs: mj.SVs, b: mj.B,
		}
	}
	want := m.classes * (m.classes - 1) / 2
	if len(m.machines) != want {
		return fmt.Errorf("svm: %d machines for %d classes, want %d",
			len(m.machines), m.classes, want)
	}
	return nil
}

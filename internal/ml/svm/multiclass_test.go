package svm

import (
	"math/rand"
	"testing"

	"iustitia/internal/ml/dataset"
)

// fourCorners is a 4-class problem: one Gaussian blob per unit-square
// corner.
func fourCorners(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	corners := [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	var samples []dataset.Sample
	for class, c := range corners {
		for i := 0; i < n; i++ {
			samples = append(samples, dataset.Sample{
				Features: []float64{
					c[0] + rng.NormFloat64()*0.08,
					c[1] + rng.NormFloat64()*0.08,
				},
				Label: class,
			})
		}
	}
	ds, err := dataset.New(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFourClassDAG(t *testing.T) {
	train := fourCorners(t, 40, 1)
	test := fourCorners(t, 25, 2)
	m, err := Train(train, Config{Kernel: RBF{Gamma: 20}, C: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 4 classes -> 6 pairwise machines.
	if got := len(m.machines); got != 6 {
		t.Fatalf("machines = %d, want 6", got)
	}
	conf, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc < 0.95 {
		t.Errorf("4-class DAG accuracy = %v, want >= 0.95", acc)
	}
}

func TestFourClassVoteMatchesDAG(t *testing.T) {
	train := fourCorners(t, 40, 4)
	test := fourCorners(t, 25, 5)
	dag, err := Train(train, Config{Kernel: RBF{Gamma: 20}, C: 100, MultiClass: DAG, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	vote, err := Train(train, Config{Kernel: RBF{Gamma: 20}, C: 100, MultiClass: Vote, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	dagConf, err := dag.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	voteConf, err := vote.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// On a well-separated problem both multi-class schemes are near
	// perfect; neither should collapse.
	if dagConf.Accuracy() < 0.95 || voteConf.Accuracy() < 0.95 {
		t.Errorf("accuracies: dag=%v vote=%v", dagConf.Accuracy(), voteConf.Accuracy())
	}
}

func TestDAGEvaluationCount(t *testing.T) {
	// DAGSVM's selling point: exactly classes-1 machine evaluations per
	// prediction. Count kernel invocations via an instrumented kernel.
	train := fourCorners(t, 20, 7)
	calls := 0
	counting := kernelFunc(func(a, b []float64) float64 {
		calls++
		return RBF{Gamma: 20}.Compute(a, b)
	})
	m, err := Train(train, Config{Kernel: counting, C: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	perMachineSVs := make(map[[2]int]int, len(m.machines))
	for pair, mach := range m.machines {
		perMachineSVs[pair] = mach.numSVs()
	}
	calls = 0
	if _, err := m.Predict([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	// The DAG path for 4 classes evaluates exactly 3 machines; kernel
	// calls equal the sum of those machines' SV counts, which is strictly
	// less than the total across all 6 machines.
	var total int
	for _, n := range perMachineSVs {
		total += n
	}
	if calls >= total {
		t.Errorf("DAG used %d kernel calls, not fewer than all-machine total %d", calls, total)
	}
	if calls == 0 {
		t.Error("no kernel calls recorded")
	}
}

// kernelFunc adapts a function to the Kernel interface for tests.
type kernelFunc func(a, b []float64) float64

func (f kernelFunc) Compute(a, b []float64) float64 { return f(a, b) }

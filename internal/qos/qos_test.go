package qos

import (
	"testing"
	"testing/quick"
	"time"

	"iustitia/internal/corpus"
)

func newSched(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewScheduler(Config{Policy: FIFO, LinkRate: 0}); err == nil {
		t.Error("rate=0: want error")
	}
	if _, err := NewScheduler(Config{Policy: Policy(9), LinkRate: 1000}); err == nil {
		t.Error("bad policy: want error")
	}
	if _, err := NewScheduler(Config{LinkRate: 1000, QueueCapBytes: -1}); err == nil {
		t.Error("negative cap: want error")
	}
	cfg := Config{LinkRate: 1000}
	cfg.Weights[0] = -1
	if _, err := NewScheduler(cfg); err == nil {
		t.Error("negative weight: want error")
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || StrictPriority.String() != "strict-priority" ||
		WeightedRoundRobin.String() != "wrr" {
		t.Error("policy names wrong")
	}
	if Policy(0).String() != "policy(0)" {
		t.Error("unknown policy string wrong")
	}
}

func TestEnqueueValidation(t *testing.T) {
	s := newSched(t, Config{LinkRate: 1000})
	if _, err := s.Enqueue(corpus.Class(9), 100, 0); err == nil {
		t.Error("bad class: want error")
	}
	if _, err := s.Enqueue(corpus.Text, 0, 0); err == nil {
		t.Error("size=0: want error")
	}
}

func TestFIFOServesInOrder(t *testing.T) {
	// 1000 B/s link; three 100-byte packets arriving back to back take
	// 100 ms each; the third waits ~200 ms.
	s := newSched(t, Config{Policy: FIFO, LinkRate: 1000})
	for i := 0; i < 3; i++ {
		ok, err := s.Enqueue(corpus.Text, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("drop on unbounded queue")
		}
	}
	idle := s.Drain()
	if want := 300 * time.Millisecond; idle != want {
		t.Errorf("drain time = %v, want %v", idle, want)
	}
	st := s.Stats()[corpus.Text]
	if st.Served != 3 || st.Bytes != 300 {
		t.Errorf("stats = %+v", st)
	}
	if want := 100 * time.Millisecond; st.MeanDelay() != want {
		t.Errorf("mean delay = %v, want %v (0+100+200)/3", st.MeanDelay(), want)
	}
}

func TestStrictPriorityFavorsHighClass(t *testing.T) {
	// Flood the link with binary packets, then inject encrypted packets.
	// Under strict priority the encrypted class must see far lower delay;
	// under FIFO both wait equally.
	run := func(policy Policy) (enc, bin time.Duration) {
		s := newSched(t, Config{Policy: policy, LinkRate: 10000})
		at := time.Duration(0)
		for i := 0; i < 50; i++ {
			if _, err := s.Enqueue(corpus.Binary, 1000, at); err != nil {
				t.Fatal(err)
			}
			if i%5 == 0 {
				if _, err := s.Enqueue(corpus.Encrypted, 100, at); err != nil {
					t.Fatal(err)
				}
			}
			at += time.Millisecond
		}
		s.Drain()
		stats := s.Stats()
		return stats[corpus.Encrypted].MeanDelay(), stats[corpus.Binary].MeanDelay()
	}
	encSP, binSP := run(StrictPriority)
	encFIFO, _ := run(FIFO)
	if encSP >= encFIFO {
		t.Errorf("strict priority did not help encrypted: SP %v vs FIFO %v", encSP, encFIFO)
	}
	if encSP >= binSP {
		t.Errorf("encrypted delay %v not below binary %v under strict priority", encSP, binSP)
	}
}

func TestWRRSharesByWeight(t *testing.T) {
	// Saturated link, two busy classes with weights 3:1 — served bytes
	// early in the drain should respect the ratio. Measure by serving a
	// finite backlog and comparing cumulative delay instead: the heavier
	// class should finish with lower mean delay.
	cfg := Config{Policy: WeightedRoundRobin, LinkRate: 10000}
	cfg.Weights[corpus.Text] = 3
	cfg.Weights[corpus.Binary] = 1
	s := newSched(t, cfg)
	for i := 0; i < 40; i++ {
		if _, err := s.Enqueue(corpus.Text, 500, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Enqueue(corpus.Binary, 500, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	stats := s.Stats()
	if stats[corpus.Text].Served != 40 || stats[corpus.Binary].Served != 40 {
		t.Fatalf("not everything served: %+v", stats)
	}
	if stats[corpus.Text].MeanDelay() >= stats[corpus.Binary].MeanDelay() {
		t.Errorf("weight-3 class delay %v not below weight-1 class delay %v",
			stats[corpus.Text].MeanDelay(), stats[corpus.Binary].MeanDelay())
	}
}

func TestDropTail(t *testing.T) {
	s := newSched(t, Config{Policy: FIFO, LinkRate: 100, QueueCapBytes: 250})
	accepted := 0
	for i := 0; i < 5; i++ {
		ok, err := s.Enqueue(corpus.Text, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	if accepted != 2 {
		t.Errorf("accepted = %d, want 2 (cap 250B, 100B packets)", accepted)
	}
	if got := s.Stats()[corpus.Text].Dropped; got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
}

func TestIdleLinkNoDelay(t *testing.T) {
	// Packets spaced wider than their transmit time never queue.
	s := newSched(t, Config{Policy: StrictPriority, LinkRate: 100000})
	at := time.Duration(0)
	for i := 0; i < 10; i++ {
		if _, err := s.Enqueue(corpus.Binary, 100, at); err != nil {
			t.Fatal(err)
		}
		at += 100 * time.Millisecond
	}
	s.Drain()
	if got := s.Stats()[corpus.Binary].MeanDelay(); got != 0 {
		t.Errorf("mean delay on idle link = %v, want 0", got)
	}
}

func TestDRROversizedPacketProgress(t *testing.T) {
	// A packet far larger than quantum*weight must still be served.
	cfg := Config{Policy: WeightedRoundRobin, LinkRate: 1 << 20}
	s := newSched(t, cfg)
	if _, err := s.Enqueue(corpus.Text, 1<<20, 0); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if got := s.Stats()[corpus.Text].Served; got != 1 {
		t.Errorf("oversized packet not served (served=%d)", got)
	}
}

// Property: the scheduler is work-conserving and lossless above the
// drop-tail — every accepted byte is eventually served, under every
// policy, for arbitrary arrival patterns.
func TestConservationProperty(t *testing.T) {
	prop := func(sizes []uint16, gaps []uint8, policyPick uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		policy := []Policy{FIFO, StrictPriority, WeightedRoundRobin}[int(policyPick)%3]
		s, err := NewScheduler(Config{Policy: policy, LinkRate: 50000})
		if err != nil {
			return false
		}
		var (
			at       time.Duration
			enqueued int
		)
		for i, raw := range sizes {
			size := int(raw)%1400 + 1
			class := corpus.Class(i % corpus.NumClasses)
			ok, err := s.Enqueue(class, size, at)
			if err != nil {
				return false
			}
			if ok {
				enqueued += size
			}
			if i < len(gaps) {
				at += time.Duration(gaps[i]) * time.Millisecond
			}
		}
		s.Drain()
		var served int
		for _, st := range s.Stats() {
			served += st.Bytes
		}
		return served == enqueued
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newSched(t, Config{LinkRate: 1000})
	if _, err := s.Enqueue(corpus.Encrypted, 10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(corpus.Encrypted, 20, time.Second); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	st := s.Stats()[corpus.Encrypted]
	if st.Enqueued != 2 || st.Served != 2 || st.Bytes != 30 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// Package qos implements the output-queue stage of Iustitia's Figure 1:
// per-class packet queues in front of a rate-limited link, with FIFO,
// strict-priority, and deficit-weighted-round-robin scheduling and
// drop-tail admission. It is a virtual-time simulator — packets carry
// their arrival timestamps from the trace, and the scheduler advances a
// server clock at the configured link rate — so the network-monitoring
// application of the paper (prioritize encrypted banking flows, deprioritize
// bulk binary transfers) can be evaluated deterministically.
package qos

import (
	"errors"
	"fmt"
	"time"

	"iustitia/internal/corpus"
)

// Policy selects the service discipline.
type Policy int

// Supported disciplines.
const (
	// FIFO serves all classes through one shared queue (the baseline).
	FIFO Policy = iota + 1
	// StrictPriority always serves the lowest-numbered non-empty class.
	StrictPriority
	// WeightedRoundRobin shares the link by per-class weights (deficit
	// round robin).
	WeightedRoundRobin
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case StrictPriority:
		return "strict-priority"
	case WeightedRoundRobin:
		return "wrr"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config assembles a scheduler.
type Config struct {
	// Policy is the service discipline.
	Policy Policy
	// LinkRate is the egress rate in bytes per second. Must be positive.
	LinkRate int
	// QueueCapBytes bounds each class queue; arrivals that would exceed
	// it are dropped (drop-tail). Zero means unbounded.
	QueueCapBytes int
	// Priority orders classes for StrictPriority (lower value = served
	// first). Defaults to encrypted > text > binary, the paper's
	// bank-traffic example.
	Priority [corpus.NumClasses]int
	// Weights shares the link for WeightedRoundRobin. Defaults to 1 each.
	Weights [corpus.NumClasses]int
}

func (c Config) withDefaults() (Config, error) {
	if c.Policy == 0 {
		c.Policy = FIFO
	}
	if c.Policy < FIFO || c.Policy > WeightedRoundRobin {
		return c, fmt.Errorf("qos: unknown policy %d", int(c.Policy))
	}
	if c.LinkRate <= 0 {
		return c, errors.New("qos: link rate must be positive")
	}
	if c.QueueCapBytes < 0 {
		return c, errors.New("qos: negative queue capacity")
	}
	zeroPriority := true
	for _, p := range c.Priority {
		if p != 0 {
			zeroPriority = false
			break
		}
	}
	if zeroPriority {
		c.Priority = [corpus.NumClasses]int{
			corpus.Encrypted: 0,
			corpus.Text:      1,
			corpus.Binary:    2,
		}
	}
	for i, w := range c.Weights {
		if w < 0 {
			return c, fmt.Errorf("qos: negative weight for class %d", i)
		}
		if w == 0 {
			c.Weights[i] = 1
		}
	}
	return c, nil
}

// queuedPacket is one packet waiting for service.
type queuedPacket struct {
	class   corpus.Class
	size    int
	arrival time.Duration
}

// ClassStats accumulates per-class outcomes.
type ClassStats struct {
	Enqueued   int
	Dropped    int
	Served     int
	Bytes      int
	TotalDelay time.Duration
}

// MeanDelay returns the average queueing delay of served packets.
func (s ClassStats) MeanDelay() time.Duration {
	if s.Served == 0 {
		return 0
	}
	return s.TotalDelay / time.Duration(s.Served)
}

// Scheduler simulates the output-queue stage. It is not safe for
// concurrent use; drive it from the replay loop.
type Scheduler struct {
	cfg Config

	queues     [corpus.NumClasses][]queuedPacket
	queueBytes [corpus.NumClasses]int
	deficit    [corpus.NumClasses]int
	rrNext     int
	serverTime time.Duration
	stats      [corpus.NumClasses]ClassStats
}

// drrQuantum is the deficit-round-robin quantum per weight unit.
const drrQuantum = 512

// NewScheduler validates cfg and returns an idle scheduler.
func NewScheduler(cfg Config) (*Scheduler, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg}, nil
}

// Enqueue offers a packet of the given class and size arriving at the
// given virtual time. It returns false when drop-tail rejects the packet.
// Arrival times must be nondecreasing.
func (s *Scheduler) Enqueue(class corpus.Class, size int, at time.Duration) (bool, error) {
	if class < corpus.Text || class > corpus.Encrypted {
		return false, fmt.Errorf("qos: unknown class %d", int(class))
	}
	if size <= 0 {
		return false, fmt.Errorf("qos: packet size %d is not positive", size)
	}
	s.drainUntil(at)
	st := &s.stats[class]
	if s.cfg.QueueCapBytes > 0 && s.queueBytes[class]+size > s.cfg.QueueCapBytes {
		st.Dropped++
		return false, nil
	}
	s.queues[class] = append(s.queues[class], queuedPacket{class: class, size: size, arrival: at})
	s.queueBytes[class] += size
	st.Enqueued++
	return true, nil
}

// Drain serves everything still queued (the end of a replay) and returns
// the virtual time the link goes idle.
func (s *Scheduler) Drain() time.Duration {
	s.drainUntil(1<<62 - 1)
	return s.serverTime
}

// Stats returns per-class outcomes, indexed by corpus.Class.
func (s *Scheduler) Stats() [corpus.NumClasses]ClassStats { return s.stats }

// drainUntil serves queued packets while the server can start them before
// the given time.
func (s *Scheduler) drainUntil(until time.Duration) {
	for {
		class, ok := s.pick()
		if !ok {
			return
		}
		head := s.queues[class][0]
		start := s.serverTime
		if head.arrival > start {
			start = head.arrival
		}
		if start >= until {
			return
		}
		s.queues[class] = s.queues[class][1:]
		s.queueBytes[class] -= head.size
		transmit := time.Duration(float64(head.size) / float64(s.cfg.LinkRate) * float64(time.Second))
		s.serverTime = start + transmit
		st := &s.stats[class]
		st.Served++
		st.Bytes += head.size
		st.TotalDelay += start - head.arrival
		if s.cfg.Policy == WeightedRoundRobin {
			s.deficit[class] -= head.size
		}
	}
}

// pick selects the next queue to serve under the configured policy. Only
// packets that have already arrived at the server clock are eligible; when
// every queue's head is in the future, the earliest head is chosen (the
// server just idles until it arrives).
func (s *Scheduler) pick() (corpus.Class, bool) {
	switch s.cfg.Policy {
	case StrictPriority:
		return s.pickPriority()
	case WeightedRoundRobin:
		return s.pickDRR()
	default:
		return s.pickFIFO()
	}
}

// pickFIFO picks the globally earliest-arrived head.
func (s *Scheduler) pickFIFO() (corpus.Class, bool) {
	best := corpus.Class(-1)
	var bestArrival time.Duration
	for class := corpus.Text; class <= corpus.Encrypted; class++ {
		q := s.queues[class]
		if len(q) == 0 {
			continue
		}
		if best < 0 || q[0].arrival < bestArrival {
			best = class
			bestArrival = q[0].arrival
		}
	}
	return best, best >= 0
}

// pickPriority picks the highest-priority queue whose head has arrived by
// the server clock, falling back to the earliest future head.
func (s *Scheduler) pickPriority() (corpus.Class, bool) {
	best := corpus.Class(-1)
	bestPrio := 0
	for class := corpus.Text; class <= corpus.Encrypted; class++ {
		q := s.queues[class]
		if len(q) == 0 || q[0].arrival > s.serverTime {
			continue
		}
		if best < 0 || s.cfg.Priority[class] < bestPrio {
			best = class
			bestPrio = s.cfg.Priority[class]
		}
	}
	if best >= 0 {
		return best, true
	}
	// Nothing has arrived yet: idle to the earliest arrival.
	return s.pickFIFO()
}

// pickDRR runs deficit round robin over the queues with arrived heads.
func (s *Scheduler) pickDRR() (corpus.Class, bool) {
	anyArrived := false
	for class := corpus.Text; class <= corpus.Encrypted; class++ {
		if q := s.queues[class]; len(q) > 0 && q[0].arrival <= s.serverTime {
			anyArrived = true
			break
		}
	}
	if !anyArrived {
		return s.pickFIFO()
	}
	for rounds := 0; rounds < 2*corpus.NumClasses+1; rounds++ {
		class := corpus.Class(s.rrNext % corpus.NumClasses)
		q := s.queues[class]
		if len(q) == 0 || q[0].arrival > s.serverTime {
			s.rrNext++
			s.deficit[class] = 0
			continue
		}
		if s.deficit[class] >= q[0].size {
			return class, true
		}
		s.deficit[class] += drrQuantum * s.cfg.Weights[class]
		if s.deficit[class] >= q[0].size {
			return class, true
		}
		s.rrNext++
	}
	// Degenerate (oversized packet vs tiny quantum): serve it anyway so
	// the scheduler always makes progress.
	for class := corpus.Text; class <= corpus.Encrypted; class++ {
		if q := s.queues[class]; len(q) > 0 && q[0].arrival <= s.serverTime {
			return class, true
		}
	}
	return s.pickFIFO()
}

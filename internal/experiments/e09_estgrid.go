package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
)

// EstimationGridResult reproduces Figure 7: classification accuracy (per
// class and total) over a grid of estimator parameters (ε, δ), for SVM and
// CART models trained with the H_b′ method at b′=1024 and tested on
// (δ,ε)-estimated entropy vectors. The paper's optima: SVM ≈ 81-83% at
// (ε=0.25, δ=0.75), CART ≈ 76% at (ε=0.5, δ=0.1) — estimation costs a few
// accuracy points versus exact vectors.
type EstimationGridResult struct {
	Epsilons []float64
	Deltas   []float64
	Buffer   int
	// Total[model][ei][di] is total accuracy at epsilon index ei, delta
	// index di; PerClass adds the class dimension.
	Total    map[string][][]float64
	PerClass map[string][corpus.NumClasses][][]float64
	// Best[model] is the grid point with the highest total accuracy.
	Best map[string]EstimationBest
}

// EstimationBest records a model's optimal grid point.
type EstimationBest struct {
	Epsilon, Delta, Accuracy float64
}

// DefaultEstimationGrid returns the (ε, δ) grid used by the benchmark
// harness: coarse enough to run in seconds, spanning the paper's optima.
func DefaultEstimationGrid() (epsilons, deltas []float64) {
	return []float64{0.25, 0.5, 0.75}, []float64{0.1, 0.5, 0.75}
}

// RunEstimationGrid measures Figure 7.
func RunEstimationGrid(s Scale, epsilons, deltas []float64, buffer int) (*EstimationGridResult, error) {
	if len(epsilons) == 0 || len(deltas) == 0 {
		return nil, errors.New("experiments: empty estimation grid")
	}
	if buffer <= 0 {
		buffer = 1024
	}
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	cut := len(pool) / 2
	trainFiles, testFiles := pool[:cut], pool[cut:]

	result := &EstimationGridResult{
		Epsilons: epsilons,
		Deltas:   deltas,
		Buffer:   buffer,
		Total:    map[string][][]float64{},
		PerClass: map[string][corpus.NumClasses][][]float64{},
		Best:     map[string]EstimationBest{},
	}

	for _, kind := range []core.ModelKind{core.KindSVM, core.KindCART} {
		widths := core.PhiPrimeSVM
		if kind == core.KindCART {
			widths = core.PhiPrimeCART
		}
		clf, err := core.Train(trainFiles, core.TrainConfig{
			Kind: kind,
			Dataset: core.DatasetConfig{
				Widths:          widths,
				Method:          core.MethodRandomOffset,
				BufferSize:      buffer,
				HeaderThreshold: defaultHeaderThreshold,
				Seed:            s.Seed,
			},
			CART: paperCARTConfig(),
			SVM:  paperSVMConfig(s.Seed),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 train %v: %w", kind, err)
		}

		total := make([][]float64, len(epsilons))
		var perClass [corpus.NumClasses][][]float64
		for c := range perClass {
			perClass[c] = make([][]float64, len(epsilons))
		}
		best := EstimationBest{Accuracy: -1}

		for ei, eps := range epsilons {
			total[ei] = make([]float64, len(deltas))
			for c := range perClass {
				perClass[c][ei] = make([]float64, len(deltas))
			}
			for di, delta := range deltas {
				est, err := entest.New(eps, delta, s.Seed)
				if err != nil {
					return nil, err
				}
				testDS, err := core.BuildDataset(testFiles, core.DatasetConfig{
					Widths:     widths,
					Method:     core.MethodPrefix,
					BufferSize: buffer,
					Estimator:  est,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: fig7 (ε=%v, δ=%v): %w", eps, delta, err)
				}
				conf, err := clf.Evaluate(testDS)
				if err != nil {
					return nil, err
				}
				total[ei][di] = conf.Accuracy()
				for c := 0; c < corpus.NumClasses; c++ {
					perClass[c][ei][di] = conf.ClassAccuracy(c)
				}
				if acc := conf.Accuracy(); acc > best.Accuracy {
					best = EstimationBest{Epsilon: eps, Delta: delta, Accuracy: acc}
				}
			}
		}
		result.Total[kind.String()] = total
		result.PerClass[kind.String()] = perClass
		result.Best[kind.String()] = best
	}
	return result, nil
}

// String renders the Figure 7 grids.
func (r *EstimationGridResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — accuracy with (δ,ε)-estimated entropy vectors, b'=%d\n", r.Buffer)
	for _, model := range []string{"svm", "cart"} {
		grid, ok := r.Total[model]
		if !ok {
			continue
		}
		best := r.Best[model]
		fmt.Fprintf(&b, "%s total accuracy (best %s at ε=%v, δ=%v):\n",
			model, percent(best.Accuracy), best.Epsilon, best.Delta)
		fmt.Fprintf(&b, "%10s", "ε \\ δ")
		for _, d := range r.Deltas {
			fmt.Fprintf(&b, "%9.2f", d)
		}
		b.WriteByte('\n')
		for ei, eps := range r.Epsilons {
			fmt.Fprintf(&b, "%10.2f", eps)
			for di := range r.Deltas {
				fmt.Fprintf(&b, "%8.1f%%", 100*grid[ei][di])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

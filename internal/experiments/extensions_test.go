package experiments

import (
	"strings"
	"testing"
)

func TestRunModelSelection(t *testing.T) {
	r, err := RunModelSelection(tinyScale(), []float64{10, 50}, []float64{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ExactGrid) != 4 || len(r.EstimatedGrid) != 4 {
		t.Fatalf("grid sizes: exact=%d estimated=%d, want 4", len(r.ExactGrid), len(r.EstimatedGrid))
	}
	if r.BestExact.Accuracy < 0.5 {
		t.Errorf("best exact accuracy = %v, want >= 0.5", r.BestExact.Accuracy)
	}
	// Estimation adds noise: its best should not beat exact by much.
	if r.BestEstimated.Accuracy > r.BestExact.Accuracy+0.1 {
		t.Errorf("estimated best %v implausibly above exact best %v",
			r.BestEstimated.Accuracy, r.BestExact.Accuracy)
	}
	if !strings.Contains(r.String(), "Model selection") {
		t.Error("String() missing header")
	}
}

func TestRunModelSelectionDefaultsGrid(t *testing.T) {
	gammas, cs := DefaultModelSelectionGrid()
	if len(gammas) == 0 || len(cs) == 0 {
		t.Fatal("empty default grid")
	}
}

func TestRunPurgePolicy(t *testing.T) {
	r, err := RunPurgePolicy(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	none, finrst, full := r.Rows[0], r.Rows[1], r.Rows[2]
	// No purging: the CDB holds every classified flow at the end.
	if none.FinalCDBSize <= finrst.FinalCDBSize {
		t.Errorf("fin-rst purging did not shrink CDB: %d vs %d",
			none.FinalCDBSize, finrst.FinalCDBSize)
	}
	if finrst.FinalCDBSize <= full.FinalCDBSize {
		t.Errorf("idle purging did not shrink CDB further: %d vs %d",
			finrst.FinalCDBSize, full.FinalCDBSize)
	}
	if none.RemovedByClose != 0 || none.RemovedByIdle != 0 {
		t.Errorf("policy 'none' removed records: %+v", none)
	}
	if full.RemovedByIdle == 0 {
		t.Error("full policy removed nothing by inactivity")
	}
	// Aggressive purging costs reclassifications.
	if full.Reclassifications < finrst.Reclassifications {
		t.Errorf("full policy reclassified less (%d) than fin-rst (%d)",
			full.Reclassifications, finrst.Reclassifications)
	}
	if !strings.Contains(r.String(), "Purge-policy") {
		t.Error("String() missing header")
	}
}

func TestRunEvasion(t *testing.T) {
	r, err := RunEvasion(tinyScale(), 64, []int{0, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	noSkip, bigSkip := r.Rows[0], r.Rows[1]
	// With no skip the 64-byte padding owns the whole 32-byte buffer:
	// evasion should be near-total.
	if noSkip.EvasionRate < 0.8 {
		t.Errorf("evasion without skip = %v, want >= 0.8", noSkip.EvasionRate)
	}
	// A 512-byte random skip jumps past the padding most of the time.
	if bigSkip.EvasionRate > noSkip.EvasionRate-0.3 {
		t.Errorf("random skip barely reduced evasion: %v -> %v",
			noSkip.EvasionRate, bigSkip.EvasionRate)
	}
	// Honest flows must stay usable under the skip.
	if bigSkip.CleanAccuracy < 0.5 {
		t.Errorf("clean accuracy under skip = %v, want >= 0.5", bigSkip.CleanAccuracy)
	}
	if !strings.Contains(r.String(), "Anti-evasion") {
		t.Error("String() missing header")
	}
}

func TestRunEvasionDefaults(t *testing.T) {
	r, err := RunEvasion(tinyScale(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.PadLen != 64 || len(r.Rows) != 4 {
		t.Errorf("defaults: padLen=%d rows=%d", r.PadLen, len(r.Rows))
	}
}

package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"iustitia/internal/core"
	"iustitia/internal/entest"
	"iustitia/internal/ml/featsel"
	"iustitia/internal/ml/svm"
)

// ModelSelectionResult reproduces the paper's two model-selection passes:
// §3.2 selects RBF(γ=50, C=1000) on exact whole-file entropy vectors, and
// §4.4.2 re-selects on (δ,ε)-estimated vectors, where a softer γ=10 wins.
// The experiment sweeps the (γ, C) grid on both feature sources and
// reports each grid plus the winners.
type ModelSelectionResult struct {
	Gammas []float64
	Cs     []float64
	// ExactGrid and EstimatedGrid are validation accuracies in gamma-major
	// order.
	ExactGrid     []featsel.GridPoint
	EstimatedGrid []featsel.GridPoint
	BestExact     featsel.GridPoint
	BestEstimated featsel.GridPoint
}

// DefaultModelSelectionGrid is the (γ, C) sweep used by the harness.
func DefaultModelSelectionGrid() (gammas, cs []float64) {
	return []float64{1, 10, 50, 200}, []float64{1, 100, 1000}
}

// RunModelSelection sweeps the SVM hyper-parameter grid on exact and on
// (δ,ε)-estimated entropy vectors.
func RunModelSelection(s Scale, gammas, cs []float64) (*ModelSelectionResult, error) {
	if len(gammas) == 0 || len(cs) == 0 {
		gammas, cs = DefaultModelSelectionGrid()
	}
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	cut := len(pool) / 2
	trainFiles, valFiles := pool[:cut], pool[cut:]

	exactCfg := core.DatasetConfig{Widths: core.PhiPrimeSVM, Method: core.MethodPrefix, BufferSize: 1024}
	trainDS, err := core.BuildDataset(trainFiles, exactCfg)
	if err != nil {
		return nil, err
	}
	valDS, err := core.BuildDataset(valFiles, exactCfg)
	if err != nil {
		return nil, err
	}
	base := svm.Config{Seed: s.Seed, MaxPasses: 3, MaxIter: 400}
	exactGrid, bestExact, err := featsel.GridSearchSVM(trainDS, valDS, gammas, cs, base)
	if err != nil {
		return nil, fmt.Errorf("experiments: model selection (exact): %w", err)
	}

	est, err := entest.New(0.25, 0.75, s.Seed)
	if err != nil {
		return nil, err
	}
	estCfg := exactCfg
	estCfg.Estimator = est
	trainEst, err := core.BuildDataset(trainFiles, estCfg)
	if err != nil {
		return nil, err
	}
	valEst, err := core.BuildDataset(valFiles, estCfg)
	if err != nil {
		return nil, err
	}
	estGrid, bestEst, err := featsel.GridSearchSVM(trainEst, valEst, gammas, cs, base)
	if err != nil {
		return nil, fmt.Errorf("experiments: model selection (estimated): %w", err)
	}

	return &ModelSelectionResult{
		Gammas:        gammas,
		Cs:            cs,
		ExactGrid:     exactGrid,
		EstimatedGrid: estGrid,
		BestExact:     bestExact,
		BestEstimated: bestEst,
	}, nil
}

// String renders both grids.
func (r *ModelSelectionResult) String() string {
	var b strings.Builder
	b.WriteString("Model selection — RBF (γ, C) grid, exact vs estimated features (§3.2, §4.4.2)\n")
	render := func(label string, grid []featsel.GridPoint, best featsel.GridPoint) {
		fmt.Fprintf(&b, "%s features (best %s at γ=%v, C=%v):\n%10s",
			label, percent(best.Accuracy), best.Gamma, best.C, "γ \\ C")
		for _, c := range r.Cs {
			fmt.Fprintf(&b, "%9.0f", c)
		}
		b.WriteByte('\n')
		i := 0
		for _, gamma := range r.Gammas {
			fmt.Fprintf(&b, "%10.0f", gamma)
			for range r.Cs {
				fmt.Fprintf(&b, "%8.1f%%", 100*grid[i].Accuracy)
				i++
			}
			b.WriteByte('\n')
		}
	}
	render("exact", r.ExactGrid, r.BestExact)
	render("estimated", r.EstimatedGrid, r.BestEstimated)
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// CDBSample is one per-second observation of Figure 8.
type CDBSample struct {
	At               time.Duration
	PacketsSoFar     int
	FlowsSoFar       int
	SizeWithPurge    int
	SizeWithoutPurge int
}

// CDBPurgeResult reproduces Figure 8: CDB size over time with and without
// purging, against cumulative packet and flow counts. The paper sees ~46%
// of flows removable on FIN/RST, and the purged CDB staying roughly flat
// while the unpurged one tracks total flows.
type CDBPurgeResult struct {
	Samples []CDBSample
	// Totals at end of trace.
	TotalPackets   int
	TotalFlows     int
	RemovedByClose int
	RemovedByIdle  int
	Reclassified   int
}

// cdbTraceConfig shapes the Figure 8 trace from the experiment scale.
func cdbTraceConfig(s Scale) packet.TraceConfig {
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = s.PerClass * 10
	cfg.Seed = s.Seed
	cfg.MaxFlowBytes = s.MaxFileSize
	cfg.MinFlowBytes = s.MinFileSize / 4
	return cfg
}

// trainFlowClassifier trains the small b=32 classifier the trace
// experiments plug into the engine.
func trainFlowClassifier(s Scale, b int) (*core.Classifier, error) {
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	return core.Train(pool, core.TrainConfig{
		Kind: core.KindCART, // trees classify in ns — right for replay loops
		Dataset: core.DatasetConfig{
			Widths:     widthsFor(core.KindCART, b),
			Method:     core.MethodPrefix,
			BufferSize: b,
		},
		CART: paperCARTConfig(),
	})
}

// RunCDBPurge measures Figure 8 by replaying one synthetic trace through
// two engines that differ only in purge policy.
func RunCDBPurge(s Scale) (*CDBPurgeResult, error) {
	clf, err := trainFlowClassifier(s, 32)
	if err != nil {
		return nil, err
	}
	trace, err := packet.Generate(cdbTraceConfig(s), corpus.NewGenerator(s.Seed+100))
	if err != nil {
		return nil, err
	}

	newEngine := func(purge bool) (*flow.Engine, error) {
		return flow.NewEngine(flow.EngineConfig{
			BufferSize: 32,
			Classifier: clf,
			IdleFlush:  2 * time.Second,
			CDB: flow.CDBConfig{
				PurgeOnClose:  purge,
				PurgeInactive: purge,
				N:             4,
				PurgeEvery:    500,
			},
		})
	}
	purged, err := newEngine(true)
	if err != nil {
		return nil, err
	}
	unpurged, err := newEngine(false)
	if err != nil {
		return nil, err
	}

	result := &CDBPurgeResult{TotalFlows: len(trace.Flows)}
	seen := make(map[packet.FiveTuple]bool, len(trace.Flows))
	nextSample := time.Second
	flowsSoFar := 0
	for i := range trace.Packets {
		p := &trace.Packets[i]
		for p.Time >= nextSample {
			// Time-based inactivity sweep plus sample, once per virtual
			// second.
			purged.CDB().Sweep(nextSample)
			if _, err := purged.FlushIdle(nextSample); err != nil {
				return nil, err
			}
			if _, err := unpurged.FlushIdle(nextSample); err != nil {
				return nil, err
			}
			result.Samples = append(result.Samples, CDBSample{
				At:               nextSample,
				PacketsSoFar:     result.TotalPackets,
				FlowsSoFar:       flowsSoFar,
				SizeWithPurge:    purged.CDB().Size(),
				SizeWithoutPurge: unpurged.CDB().Size(),
			})
			nextSample += time.Second
		}
		result.TotalPackets++
		if !seen[p.Tuple] {
			seen[p.Tuple] = true
			flowsSoFar++
		}
		if _, err := purged.Process(p); err != nil {
			return nil, fmt.Errorf("experiments: fig8 purged engine: %w", err)
		}
		if _, err := unpurged.Process(p); err != nil {
			return nil, fmt.Errorf("experiments: fig8 unpurged engine: %w", err)
		}
	}
	stats := purged.CDB().Stats()
	result.RemovedByClose = stats.RemovedByClose
	result.RemovedByIdle = stats.RemovedByIdle
	result.Reclassified = stats.Reinsertions
	return result, nil
}

// String renders the Figure 8 series.
func (r *CDBPurgeResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 8 — CDB size with and without purging\n")
	fmt.Fprintf(&b, "%8s %10s %10s %12s %14s\n", "t", "packets", "flows", "CDB(purge)", "CDB(no purge)")
	step := 1
	if len(r.Samples) > 20 {
		step = len(r.Samples) / 20
	}
	for i := 0; i < len(r.Samples); i += step {
		sm := r.Samples[i]
		fmt.Fprintf(&b, "%8s %10d %10d %12d %14d\n",
			sm.At, sm.PacketsSoFar, sm.FlowsSoFar, sm.SizeWithPurge, sm.SizeWithoutPurge)
	}
	fmt.Fprintf(&b, "totals: %d packets, %d flows; purge removed %d by FIN/RST (%.0f%% of flows), %d by inactivity; %d reclassifications\n",
		r.TotalPackets, r.TotalFlows, r.RemovedByClose,
		100*float64(r.RemovedByClose)/float64(max(1, r.TotalFlows)),
		r.RemovedByIdle, r.Reclassified)
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// EvasionRow is one anti-evasion measurement.
type EvasionRow struct {
	RandomSkipMax int
	// EvasionRate is the fraction of padded flows the attacker steered to
	// the wrong class.
	EvasionRate float64
	// CleanAccuracy is accuracy on honest (unpadded) flows under the same
	// skip, measuring collateral damage.
	CleanAccuracy float64
}

// EvasionResult quantifies the paper's §4.6 attack and countermeasure: an
// attacker prepends padLen bytes of encrypted-looking padding to text
// flows to dodge keyword inspection; the defender skips a random number of
// bytes in [0, maxSkip] before buffering. Larger skips defeat more padding
// but classify honest flows deeper into their stream (harmless while
// Hypothesis 2 holds — flow randomness is stationary).
type EvasionResult struct {
	PadLen int
	Rows   []EvasionRow
}

// RunEvasion measures attack success against increasing random-skip
// budgets.
func RunEvasion(s Scale, padLen int, skips []int) (*EvasionResult, error) {
	if padLen <= 0 {
		padLen = 64
	}
	if len(skips) == 0 {
		skips = []int{0, 64, 256, 1024}
	}
	// A defender deploying random skip trains H_b'-style (random-offset
	// windows, Figure 6), so mid-flow windows look like training data and
	// honest flows keep their accuracy.
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	clf, err := core.Train(pool, core.TrainConfig{
		Kind: core.KindCART,
		Dataset: core.DatasetConfig{
			Widths:          core.PhiPrimeCART,
			Method:          core.MethodRandomOffset,
			BufferSize:      32,
			HeaderThreshold: 1024,
			Seed:            s.Seed,
		},
		CART: paperCARTConfig(),
	})
	if err != nil {
		return nil, err
	}
	gen := corpus.NewGenerator(s.Seed + 500)
	const flowsPerKind = 60

	// Attack corpus: text content behind encrypted padding.
	type probe struct {
		payload []byte
		class   corpus.Class
		padded  bool
	}
	var probes []probe
	for i := 0; i < flowsPerKind; i++ {
		padding := gen.Encrypted(padLen).Data
		content := gen.Text(4 << 10).Data
		probes = append(probes, probe{
			payload: append(append([]byte{}, padding...), content...),
			class:   corpus.Text,
			padded:  true,
		})
	}
	// Honest corpus: one unpadded file of every class.
	for i := 0; i < flowsPerKind; i++ {
		for class := corpus.Text; class <= corpus.Encrypted; class++ {
			f, err := gen.File(class, 4<<10)
			if err != nil {
				return nil, err
			}
			probes = append(probes, probe{payload: f.Data, class: class})
		}
	}

	result := &EvasionResult{PadLen: padLen}
	for _, skip := range skips {
		engine, err := flow.NewEngine(flow.EngineConfig{
			BufferSize:    32,
			Classifier:    clf,
			RandomSkipMax: skip,
			Seed:          s.Seed,
		})
		if err != nil {
			return nil, err
		}
		var (
			evaded, padded  int
			correct, honest int
		)
		for i, pr := range probes {
			tp := packet.FiveTuple{
				SrcIP: [4]byte{10, byte(skip), byte(i >> 8), byte(i)},
				DstIP: [4]byte{10, 0, 0, 1}, SrcPort: uint16(i), DstPort: 80,
				Transport: packet.TCP,
			}
			v, err := engine.Process(&packet.Packet{Tuple: tp, Payload: pr.payload})
			if err != nil {
				return nil, fmt.Errorf("experiments: evasion skip=%d: %w", skip, err)
			}
			if !v.Classified {
				continue
			}
			if pr.padded {
				padded++
				if v.Queue != pr.class {
					evaded++
				}
			} else {
				honest++
				if v.Queue == pr.class {
					correct++
				}
			}
		}
		if padded == 0 || honest == 0 {
			return nil, fmt.Errorf("experiments: evasion skip=%d classified nothing", skip)
		}
		result.Rows = append(result.Rows, EvasionRow{
			RandomSkipMax: skip,
			EvasionRate:   float64(evaded) / float64(padded),
			CleanAccuracy: float64(correct) / float64(honest),
		})
	}
	return result, nil
}

// String renders the evasion table.
func (r *EvasionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Anti-evasion (§4.6): %dB encrypted padding on text flows vs random skip\n", r.PadLen)
	fmt.Fprintf(&b, "%12s %14s %16s\n", "max skip", "evasion rate", "clean accuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12d %13.1f%% %15.1f%%\n",
			row.RandomSkipMax, 100*row.EvasionRate, 100*row.CleanAccuracy)
	}
	return b.String()
}

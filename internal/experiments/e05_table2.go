package experiments

import (
	"fmt"
	"strings"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/ml/dataset"
	"iustitia/internal/ml/featsel"
	"math/rand"
)

// Table2Row is one accuracy measurement for a model/feature-set pair.
type Table2Row struct {
	Model     core.ModelKind
	Label     string
	Widths    []int
	Confusion *dataset.Confusion
}

// Table2Result reproduces Table 2: feature selection by pruned-tree voting
// (CART) and Sequential Forward Search (SVM), followed by the low-width
// preference substitution, showing that the reduced sets lose almost no
// accuracy versus the full <h1..h10> vector. The paper selects
// φ_CART={h1,h3,h4,h10} -> φ′_CART={h1,h3,h4,h5} and
// φ_SVM={h1,h2,h3,h9} -> φ′_SVM={h1,h2,h3,h5}.
type Table2Result struct {
	SelectedCART []int
	SelectedSVM  []int
	Rows         []Table2Row
}

// maxPreferredWidth caps feature widths for deployment (the paper prefers
// h_k with k <= 5 because counter space grows with k).
const maxPreferredWidth = 5

// RunTable2 performs feature selection and measures the Table 2
// accuracies.
func RunTable2(s Scale) (*Table2Result, error) {
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	full, err := core.BuildDataset(pool, core.DatasetConfig{
		Widths: core.AllWidths,
		Method: core.MethodWholeFile,
	})
	if err != nil {
		return nil, err
	}
	folds, err := full.StratifiedKFold(s.Folds, rand.New(rand.NewSource(s.Seed)))
	if err != nil {
		return nil, err
	}

	// Columns are width-1 (h_k lives in column k-1).
	toWidths := func(cols []int) []int {
		widths := make([]int, len(cols))
		for i, c := range cols {
			widths[i] = c + 1
		}
		return widths
	}
	toCols := func(widths []int) []int {
		cols := make([]int, len(widths))
		for i, k := range widths {
			cols[i] = k - 1
		}
		return cols
	}

	cartCols, err := featsel.TreeVote(folds, 4, paperCARTConfig(), 0.02)
	if err != nil {
		return nil, fmt.Errorf("experiments: tree-vote selection: %w", err)
	}
	// SFS with a full SVM evaluator is the experiment's hot spot; a
	// lighter SMO budget keeps it tractable without changing the ranking.
	sfsCfg := paperSVMConfig(s.Seed)
	sfsCfg.MaxPasses = 2
	sfsCfg.MaxIter = 200
	svmCols, err := featsel.SFSVote(folds, 4, featsel.SVMEvaluator(sfsCfg))
	if err != nil {
		return nil, fmt.Errorf("experiments: SFS selection: %w", err)
	}

	result := &Table2Result{
		SelectedCART: toWidths(cartCols),
		SelectedSVM:  toWidths(svmCols),
	}
	preferredCART := toWidths(featsel.CapColumns(cartCols, maxPreferredWidth-1))
	preferredSVM := toWidths(featsel.CapColumns(svmCols, maxPreferredWidth-1))

	type variant struct {
		label  string
		widths []int
	}
	measure := func(kind core.ModelKind, variants []variant) error {
		for _, v := range variants {
			projected, err := full.Project(toCols(v.widths))
			if err != nil {
				return err
			}
			var evaluator trainEval
			if kind == core.KindCART {
				evaluator = cartTrainEval(paperCARTConfig())
			} else {
				evaluator = svmTrainEval(paperSVMConfig(s.Seed))
			}
			conf, _, err := crossValidate(projected, s.Folds, s.Seed, evaluator)
			if err != nil {
				return fmt.Errorf("experiments: %v %s: %w", kind, v.label, err)
			}
			result.Rows = append(result.Rows, Table2Row{
				Model: kind, Label: v.label, Widths: v.widths, Confusion: conf,
			})
		}
		return nil
	}

	if err := measure(core.KindCART, []variant{
		{"full", core.AllWidths},
		{"selected", result.SelectedCART},
		{"preferred", preferredCART},
	}); err != nil {
		return nil, err
	}
	if err := measure(core.KindSVM, []variant{
		{"full", core.AllWidths},
		{"selected", result.SelectedSVM},
		{"preferred", preferredSVM},
	}); err != nil {
		return nil, err
	}
	return result, nil
}

// String renders the Table 2 block.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2 — classification accuracy after feature selection\n")
	fmt.Fprintf(&b, "tree-voting selection: %s   SFS selection: %s\n",
		widthsLabel(r.SelectedCART), widthsLabel(r.SelectedSVM))
	fmt.Fprintf(&b, "%-6s %-10s %-22s %8s %8s %8s %8s\n",
		"model", "set", "widths", "total", "text", "binary", "encr")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %-10s %-22s %8s %8s %8s %8s\n",
			row.Model, row.Label, widthsLabel(row.Widths),
			percent(row.Confusion.Accuracy()),
			percent(row.Confusion.ClassAccuracy(int(corpus.Text))),
			percent(row.Confusion.ClassAccuracy(int(corpus.Binary))),
			percent(row.Confusion.ClassAccuracy(int(corpus.Encrypted))))
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/stats"
)

// ClassBand summarizes where one class sits in the (h1, h2, h3) feature
// space of Figure 2(a).
type ClassBand struct {
	Class corpus.Class
	// Mean and Std are per-feature (h1, h2, h3).
	Mean [3]float64
	Std  [3]float64
}

// FeatureSpaceResult reproduces Figure 2(a): the per-class location and
// spread of file entropy-vector points in (h1, h2, h3) space. The paper's
// plot shows text lowest, encrypted highest and tightly clustered, binary
// in between with the widest spread.
type FeatureSpaceResult struct {
	Bands []ClassBand
	// Files per class measured.
	PerClass int
}

// RunFeatureSpace measures the Figure 2(a) feature-space geometry.
func RunFeatureSpace(s Scale) (*FeatureSpaceResult, error) {
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	ds, err := core.BuildDataset(pool, core.DatasetConfig{
		Widths: []int{1, 2, 3},
		Method: core.MethodWholeFile,
	})
	if err != nil {
		return nil, err
	}

	byClass := make(map[int][][]float64) // class -> feature columns
	for _, sample := range ds.Samples {
		cols := byClass[sample.Label]
		if cols == nil {
			cols = make([][]float64, 3)
		}
		for i, h := range sample.Features {
			cols[i] = append(cols[i], h)
		}
		byClass[sample.Label] = cols
	}

	result := &FeatureSpaceResult{PerClass: s.PerClass}
	for class := corpus.Text; class <= corpus.Encrypted; class++ {
		band := ClassBand{Class: class}
		for i, col := range byClass[int(class)] {
			summary, err := stats.Summarize(col)
			if err != nil {
				return nil, fmt.Errorf("experiments: class %v feature %d: %w", class, i, err)
			}
			band.Mean[i] = summary.Mean
			band.Std[i] = summary.Std
		}
		result.Bands = append(result.Bands, band)
	}
	return result, nil
}

// String renders the Figure 2(a) summary table.
func (r *FeatureSpaceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2(a) — file entropy-vector feature space (%d files/class)\n", r.PerClass)
	fmt.Fprintf(&b, "%-10s %20s %20s %20s\n", "class", "h1 (mean±std)", "h2 (mean±std)", "h3 (mean±std)")
	for _, band := range r.Bands {
		fmt.Fprintf(&b, "%-10s", band.Class)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(&b, "     %.3f ± %.3f   ", band.Mean[i], band.Std[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package experiments

import (
	"crypto/sha1"
	"fmt"
	"strings"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
	"iustitia/internal/stats"
)

// DelayRow is the Figure 10 measurement for one buffer size.
type DelayRow struct {
	Buffer int
	// MeanPacketsToFill is c: the average number of data packets needed
	// to fill the buffer.
	MeanPacketsToFill float64
	// MeanFillDelay is the average τ_b, the buffering component of the
	// classifier delay (virtual trace time).
	MeanFillDelay time.Duration
	// MedianFillDelay is the 50th percentile of τ_b.
	MedianFillDelay time.Duration
	FlowsClassified int
}

// DelayResult reproduces Figure 10 plus the paper's τ decomposition: the
// buffering delay τ_b dominated by buffer size, with the measured hash and
// CDB-search components (τ_hash, τ_search) reported alongside. The paper's
// shape: c ≈ 1 for b=32 (near-zero buffering delay) and c ≈ 3-5 with τ
// around a second for b in the 1-2 KB range.
type DelayResult struct {
	Rows []DelayRow
	// HashTime is the measured mean SHA-1 flow-ID hash time (τ_hash).
	HashTime time.Duration
	// SearchTime is the measured mean CDB lookup time (τ_search).
	SearchTime time.Duration
}

// DefaultDelayBuffers are the four buffer sizes of Figure 10.
var DefaultDelayBuffers = []int{32, 1024, 1500, 2000}

// RunDelay measures Figure 10 by replaying one trace per buffer size.
func RunDelay(s Scale, buffers []int) (*DelayResult, error) {
	if len(buffers) == 0 {
		buffers = DefaultDelayBuffers
	}
	clf, err := trainFlowClassifier(s, 32)
	if err != nil {
		return nil, err
	}
	result := &DelayResult{}
	for _, b := range buffers {
		trace, err := packet.Generate(cdbTraceConfig(s), corpus.NewGenerator(s.Seed+300))
		if err != nil {
			return nil, err
		}
		engine, err := flow.NewEngine(flow.EngineConfig{
			BufferSize: b,
			Classifier: clf,
			IdleFlush:  2 * time.Second,
			CDB:        flow.CDBConfig{PurgeOnClose: true, PurgeInactive: true, N: 4, PurgeEvery: 500},
		})
		if err != nil {
			return nil, err
		}
		nextFlush := time.Second
		for i := range trace.Packets {
			p := &trace.Packets[i]
			for p.Time >= nextFlush {
				if _, err := engine.FlushIdle(nextFlush); err != nil {
					return nil, err
				}
				nextFlush += time.Second
			}
			if _, err := engine.Process(p); err != nil {
				return nil, fmt.Errorf("experiments: fig10 b=%d: %w", b, err)
			}
		}

		fills := engine.FillStats()
		if len(fills) == 0 {
			return nil, fmt.Errorf("experiments: fig10 b=%d classified no flows", b)
		}
		var packetsToFill, delays []float64
		for _, f := range fills {
			packetsToFill = append(packetsToFill, float64(f.Packets))
			delays = append(delays, f.Delay.Seconds())
		}
		result.Rows = append(result.Rows, DelayRow{
			Buffer:            b,
			MeanPacketsToFill: stats.Mean(packetsToFill),
			MeanFillDelay:     time.Duration(stats.Mean(delays) * float64(time.Second)),
			MedianFillDelay:   time.Duration(stats.Median(delays) * float64(time.Second)),
			FlowsClassified:   len(fills),
		})
	}

	result.HashTime = measureHashTime()
	result.SearchTime, err = measureSearchTime()
	if err != nil {
		return nil, err
	}
	return result, nil
}

// measureHashTime times the SHA-1 flow-ID hash (τ_hash).
func measureHashTime() time.Duration {
	tuple := packet.FiveTuple{
		SrcIP: [4]byte{10, 1, 2, 3}, DstIP: [4]byte{10, 4, 5, 6},
		SrcPort: 1234, DstPort: 80, Transport: packet.TCP,
	}
	const iterations = 20000
	start := time.Now()
	var sink [sha1.Size]byte
	for i := 0; i < iterations; i++ {
		sink = flow.IDOf(tuple)
		tuple.SrcPort++
	}
	_ = sink
	return time.Since(start) / iterations
}

// measureSearchTime times a CDB lookup against a populated database
// (τ_search).
func measureSearchTime() (time.Duration, error) {
	cdb := flow.NewCDB(flow.CDBConfig{})
	tuple := packet.FiveTuple{
		SrcIP: [4]byte{10, 1, 2, 3}, DstIP: [4]byte{10, 4, 5, 6},
		SrcPort: 1, DstPort: 80, Transport: packet.TCP,
	}
	const entries = 30000
	for i := 0; i < entries; i++ {
		tuple.SrcPort = uint16(i)
		tuple.DstPort = uint16(i >> 4)
		cdb.Insert(flow.IDOf(tuple), corpus.Binary, 0)
	}
	const iterations = 20000
	start := time.Now()
	for i := 0; i < iterations; i++ {
		tuple.SrcPort = uint16(i % entries)
		tuple.DstPort = uint16((i % entries) >> 4)
		cdb.Lookup(flow.IDOf(tuple), time.Duration(i))
	}
	elapsed := time.Since(start) / iterations
	return elapsed, nil
}

// String renders the Figure 10 table.
func (r *DelayResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 10 — classifier buffering delay\n")
	fmt.Fprintf(&b, "%8s %10s %14s %16s %10s\n", "buffer", "mean c", "mean τ_b", "median τ_b", "flows")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %10.2f %14s %16s %10d\n",
			row.Buffer, row.MeanPacketsToFill,
			row.MeanFillDelay.Round(time.Millisecond),
			row.MedianFillDelay.Round(time.Millisecond),
			row.FlowsClassified)
	}
	fmt.Fprintf(&b, "measured τ_hash = %s, τ_CDB-search = %s (τ = τ_hash + τ_search + τ_b)\n",
		r.HashTime, r.SearchTime)
	return b.String()
}

package experiments

import (
	"strings"
	"testing"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
)

// tinyScale keeps the heavier experiments inside unit-test time budgets.
func tinyScale() Scale {
	return Scale{PerClass: 24, Folds: 3, MinFileSize: 2 << 10, MaxFileSize: 4 << 10, Seed: 1}
}

func TestScaleValidate(t *testing.T) {
	bad := []Scale{
		{PerClass: 1, Folds: 3, MinFileSize: 10, MaxFileSize: 20},
		{PerClass: 10, Folds: 1, MinFileSize: 10, MaxFileSize: 20},
		{PerClass: 10, Folds: 3, MinFileSize: 0, MaxFileSize: 20},
		{PerClass: 10, Folds: 3, MinFileSize: 30, MaxFileSize: 20},
	}
	for i, s := range bad {
		if err := s.validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	for _, s := range []Scale{SmallScale(), DefaultScale(), PaperScale()} {
		if err := s.validate(); err != nil {
			t.Errorf("preset scale invalid: %v", err)
		}
	}
}

func TestRunFeatureSpace(t *testing.T) {
	r, err := RunFeatureSpace(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bands) != corpus.NumClasses {
		t.Fatalf("bands = %d, want %d", len(r.Bands), corpus.NumClasses)
	}
	// Paper ordering along h1: text < binary < encrypted.
	if !(r.Bands[corpus.Text].Mean[0] < r.Bands[corpus.Binary].Mean[0] &&
		r.Bands[corpus.Binary].Mean[0] < r.Bands[corpus.Encrypted].Mean[0]) {
		t.Errorf("h1 band order violated: %+v", r.Bands)
	}
	if !strings.Contains(r.String(), "Figure 2(a)") {
		t.Error("String() missing header")
	}
}

func TestRunTable1BothModels(t *testing.T) {
	for _, kind := range []core.ModelKind{core.KindCART, core.KindSVM} {
		r, err := RunTable1(tinyScale(), kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if acc := r.Confusion.Accuracy(); acc < 0.55 {
			t.Errorf("%v total accuracy = %v, want >= 0.55", kind, acc)
		}
		if len(r.FoldAccuracies) != 3 {
			t.Errorf("%v folds = %d, want 3", kind, len(r.FoldAccuracies))
		}
		if !strings.Contains(r.String(), "Table 1") {
			t.Error("String() missing header")
		}
	}
}

func TestRunTable1UnknownKind(t *testing.T) {
	if _, err := RunTable1(tinyScale(), core.ModelKind(9)); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestRunJSD(t *testing.T) {
	portions := []float64{0.2, 0.6, 1.0}
	r, err := RunJSD(tinyScale(), []int{1, 2}, portions)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2} {
		for class := corpus.Text; class <= corpus.Encrypted; class++ {
			series := r.Mean[k][class]
			if len(series) != len(portions) {
				t.Fatalf("k=%d class=%v series length %d", k, class, len(series))
			}
			// JSD falls as the portion grows, and is ~0 at portion 1.
			if !(series[0] >= series[1] && series[1] >= series[2]) {
				t.Errorf("k=%d class=%v JSD not monotone: %v", k, class, series)
			}
			if series[2] > 1e-9 {
				t.Errorf("k=%d class=%v JSD(1.0) = %v, want 0", k, class, series[2])
			}
		}
	}
	if _, err := RunJSD(tinyScale(), nil, portions); err == nil {
		t.Error("no widths: want error")
	}
	if !strings.Contains(r.String(), "Figure 3") {
		t.Error("String() missing header")
	}
}

func TestRunTable2(t *testing.T) {
	r, err := RunTable2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SelectedCART) != 4 || len(r.SelectedSVM) != 4 {
		t.Fatalf("selected sets: cart=%v svm=%v, want 4 widths each", r.SelectedCART, r.SelectedSVM)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	// Feature selection must not destroy accuracy: each selected/preferred
	// row within 15 points of its model's full row.
	fullAcc := map[core.ModelKind]float64{}
	for _, row := range r.Rows {
		if row.Label == "full" {
			fullAcc[row.Model] = row.Confusion.Accuracy()
		}
	}
	for _, row := range r.Rows {
		if row.Label == "full" {
			continue
		}
		if row.Confusion.Accuracy() < fullAcc[row.Model]-0.15 {
			t.Errorf("%v/%s accuracy %v fell far below full %v",
				row.Model, row.Label, row.Confusion.Accuracy(), fullAcc[row.Model])
		}
	}
	if !strings.Contains(r.String(), "Table 2") {
		t.Error("String() missing header")
	}
}

func TestRunBufferSweep(t *testing.T) {
	sizes := []int{16, 64, 512}
	r, err := RunBufferSweep(tinyScale(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"H_F", "H_b"} {
		for _, model := range []string{"cart", "svm"} {
			series := r.Accuracy[method][model]
			if len(series) != len(sizes) {
				t.Fatalf("%s/%s series = %v", method, model, series)
			}
			// Figure 4's core finding: training on the first b bytes beats
			// chance at every size, while whole-file training may collapse
			// to chance at tiny b (distribution shift) and recovers as b
			// grows — so only the largest size is asserted for H_F.
			if method == "H_b" {
				for _, acc := range series {
					if acc < 0.4 {
						t.Errorf("H_b/%s accuracy %v near chance", model, acc)
					}
				}
			} else if last := series[len(series)-1]; last < 0.4 {
				t.Errorf("H_F/%s accuracy %v near chance at largest b", model, last)
			}
		}
	}
	if _, err := RunBufferSweep(tinyScale(), nil); err == nil {
		t.Error("no sizes: want error")
	}
	if !strings.Contains(r.String(), "Figure 4") {
		t.Error("String() missing header")
	}
}

func TestWidthsForNarrowBuffers(t *testing.T) {
	if got := widthsFor(core.KindSVM, 2); len(got) == 0 || got[len(got)-1] > 2 {
		t.Errorf("widthsFor(svm, 2) = %v", got)
	}
	if got := widthsFor(core.KindCART, 1); len(got) != 1 || got[0] != 1 {
		t.Errorf("widthsFor(cart, 1) = %v, want [1]", got)
	}
	if got := widthsFor(core.KindSVM, 8192); len(got) != 4 {
		t.Errorf("widthsFor(svm, 8192) = %v, want full φ′ set", got)
	}
}

func TestRunCalcCost(t *testing.T) {
	r, err := RunCalcCost(tinyScale(), core.PhiPrimeSVM, []int{32, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(r.Points))
	}
	// Both time and space must grow with b (paper: linear growth).
	if !(r.Points[0].TimePerVector < r.Points[2].TimePerVector) {
		t.Errorf("time not increasing: %v", r.Points)
	}
	if !(r.Points[0].SpaceBytes < r.Points[2].SpaceBytes) {
		t.Errorf("space not increasing: %v", r.Points)
	}
	if _, err := RunCalcCost(tinyScale(), nil, []int{32}); err == nil {
		t.Error("no widths: want error")
	}
	if !strings.Contains(r.String(), "Figure 5") {
		t.Error("String() missing header")
	}
}

func TestRunTrainMethods(t *testing.T) {
	r, err := RunTrainMethods(tinyScale(), []int{64, 512}, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"svm", "cart"} {
		for _, method := range []string{"H_F", "H_b", "H_b'"} {
			series := r.Accuracy[model][method]
			if len(series) != 2 {
				t.Fatalf("%s/%s series = %v", model, method, series)
			}
		}
	}
	if _, err := RunTrainMethods(tinyScale(), nil, 0); err == nil {
		t.Error("no sizes: want error")
	}
	if !strings.Contains(r.String(), "Figure 6") {
		t.Error("String() missing header")
	}
}

func TestRunEstimationGrid(t *testing.T) {
	r, err := RunEstimationGrid(tinyScale(), []float64{0.5}, []float64{0.5, 0.75}, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"svm", "cart"} {
		grid := r.Total[model]
		if len(grid) != 1 || len(grid[0]) != 2 {
			t.Fatalf("%s grid shape wrong: %v", model, grid)
		}
		best := r.Best[model]
		if best.Accuracy <= 0.34 {
			t.Errorf("%s best estimated accuracy %v at or below chance", model, best.Accuracy)
		}
	}
	if _, err := RunEstimationGrid(tinyScale(), nil, nil, 0); err == nil {
		t.Error("empty grid: want error")
	}
	if !strings.Contains(r.String(), "Figure 7") {
		t.Error("String() missing header")
	}
}

func TestRunTable3(t *testing.T) {
	r, err := RunTable3(tinyScale(), 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	// 2 models × (exact@1024, estimated@1024, exact@32) = 6 rows.
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	var exact1024, est1024 *Table3Row
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Buffer == 1024 && strings.HasPrefix(row.Mode, "exact/svm") {
			exact1024 = row
		}
		if row.Buffer == 1024 && strings.HasPrefix(row.Mode, "estimated/svm") {
			est1024 = row
		}
	}
	if exact1024 == nil || est1024 == nil {
		t.Fatal("missing svm rows")
	}
	// Paper's trade-off: estimation uses less space but more time.
	if est1024.SpaceBytes >= exact1024.SpaceBytes {
		t.Errorf("estimation space %d not below exact %d",
			est1024.SpaceBytes, exact1024.SpaceBytes)
	}
	if est1024.TimePerVector <= exact1024.TimePerVector {
		t.Errorf("estimation time %v not above exact %v",
			est1024.TimePerVector, exact1024.TimePerVector)
	}
	if !strings.Contains(r.String(), "Table 3") {
		t.Error("String() missing header")
	}
}

func TestRunCDBPurge(t *testing.T) {
	r, err := RunCDBPurge(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPackets == 0 || r.TotalFlows == 0 || len(r.Samples) == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	last := r.Samples[len(r.Samples)-1]
	if last.SizeWithPurge >= last.SizeWithoutPurge {
		t.Errorf("purging did not shrink the CDB: %d vs %d",
			last.SizeWithPurge, last.SizeWithoutPurge)
	}
	if r.RemovedByClose == 0 {
		t.Error("no FIN/RST removals recorded")
	}
	if !strings.Contains(r.String(), "Figure 8") {
		t.Error("String() missing header")
	}
}

func TestRunTraceCDF(t *testing.T) {
	r, err := RunTraceCDF(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9(a) shape: most packets small, a visible 1480 spike.
	if got := r.PayloadSize.At(140); got < 0.4 {
		t.Errorf("P(size<=140) = %v, want >= 0.4", got)
	}
	// The nominal 20% full-size draw is diluted by short flows whose last
	// packet truncates; demand a still-visible spike.
	if r.FullSizeShare < 0.05 {
		t.Errorf("full-size share = %v, want >= 0.05", r.FullSizeShare)
	}
	if r.MedianGap <= 0 {
		t.Error("non-positive median gap")
	}
	if !strings.Contains(r.String(), "Figure 9") {
		t.Error("String() missing header")
	}
}

func TestRunDelay(t *testing.T) {
	r, err := RunDelay(tinyScale(), []int{32, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	small, large := r.Rows[0], r.Rows[1]
	// Figure 10 shape: b=32 needs ~1 packet with near-zero delay; larger
	// buffers need more packets and longer delays.
	if small.MeanPacketsToFill > large.MeanPacketsToFill {
		t.Errorf("c(32)=%v > c(1024)=%v", small.MeanPacketsToFill, large.MeanPacketsToFill)
	}
	if small.MeanFillDelay > large.MeanFillDelay {
		t.Errorf("τ_b(32)=%v > τ_b(1024)=%v", small.MeanFillDelay, large.MeanFillDelay)
	}
	if r.HashTime <= 0 || r.SearchTime <= 0 {
		t.Errorf("component timings not measured: hash=%v search=%v", r.HashTime, r.SearchTime)
	}
	if !strings.Contains(r.String(), "Figure 10") {
		t.Error("String() missing header")
	}
}

// Package experiments contains one runner per table and figure of the
// paper's evaluation, shared by the repository's benchmark suite
// (bench_test.go) and the iustitia-bench CLI. Each runner returns a result
// struct whose String method renders the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"iustitia/internal/corpus"
	"iustitia/internal/ml/cart"
	"iustitia/internal/ml/dataset"
	"iustitia/internal/ml/svm"
)

// Scale sizes an experiment run. The paper's pools (6,000 files per
// cross-validation, 10 folds) are reachable with PaperScale; tests and
// quick runs use SmallScale.
type Scale struct {
	// PerClass is the number of corpus files per class.
	PerClass int
	// Folds is the cross-validation fold count.
	Folds int
	// MinFileSize and MaxFileSize bound synthesized file sizes.
	MinFileSize, MaxFileSize int
	// Seed fixes corpus synthesis and all experiment randomness.
	Seed int64
}

// SmallScale is a seconds-long configuration for tests and smoke runs.
func SmallScale() Scale {
	return Scale{PerClass: 45, Folds: 3, MinFileSize: 2 << 10, MaxFileSize: 6 << 10, Seed: 1}
}

// DefaultScale is the benchmark configuration: large enough for stable
// accuracy estimates, small enough for a laptop.
func DefaultScale() Scale {
	return Scale{PerClass: 150, Folds: 5, MinFileSize: 2 << 10, MaxFileSize: 12 << 10, Seed: 1}
}

// PaperScale mirrors the paper's cross-validation pools (2,000 files per
// class per validation, 10 folds). Expect minutes per experiment.
func PaperScale() Scale {
	return Scale{PerClass: 2000, Folds: 10, MinFileSize: 2 << 10, MaxFileSize: 32 << 10, Seed: 1}
}

func (s Scale) validate() error {
	if s.PerClass < s.Folds {
		return fmt.Errorf("experiments: %d files per class cannot fill %d folds", s.PerClass, s.Folds)
	}
	if s.Folds < 2 {
		return fmt.Errorf("experiments: need at least 2 folds, got %d", s.Folds)
	}
	if s.MinFileSize <= 0 || s.MaxFileSize < s.MinFileSize {
		return fmt.Errorf("experiments: invalid file size range [%d, %d]", s.MinFileSize, s.MaxFileSize)
	}
	return nil
}

// buildPool synthesizes the experiment's corpus.
func buildPool(s Scale) ([]corpus.File, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return corpus.NewGenerator(s.Seed).Pool(s.PerClass, s.MinFileSize, s.MaxFileSize)
}

// paperSVMConfig is the paper's selected SVM model: RBF kernel with γ=50,
// C=1000, DAGSVM multi-class.
func paperSVMConfig(seed int64) svm.Config {
	return svm.Config{Kernel: svm.RBF{Gamma: 50}, C: 1000, Seed: seed}
}

// paperCARTConfig grows trees with a small leaf floor to curb overfitting
// on the continuous entropy features.
func paperCARTConfig() cart.Config {
	return cart.Config{MinLeaf: 3}
}

// trainEval trains a model on a fold's training split and evaluates on its
// test split.
type trainEval func(fold dataset.Fold) (*dataset.Confusion, error)

func cartTrainEval(cfg cart.Config) trainEval {
	return func(fold dataset.Fold) (*dataset.Confusion, error) {
		tree, err := cart.Train(fold.Train, cfg)
		if err != nil {
			return nil, err
		}
		return tree.Evaluate(fold.Test)
	}
}

func svmTrainEval(cfg svm.Config) trainEval {
	return func(fold dataset.Fold) (*dataset.Confusion, error) {
		model, err := svm.Train(fold.Train, cfg)
		if err != nil {
			return nil, err
		}
		return model.Evaluate(fold.Test)
	}
}

// crossValidate runs stratified k-fold cross validation and returns the
// merged confusion matrix plus per-fold accuracies.
func crossValidate(ds *dataset.Dataset, folds int, seed int64, te trainEval) (*dataset.Confusion, []float64, error) {
	split, err := ds.StratifiedKFold(folds, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	merged, err := dataset.NewConfusion(ds.Classes, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	accs := make([]float64, 0, folds)
	for i, fold := range split {
		conf, err := te(fold)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: fold %d: %w", i, err)
		}
		accs = append(accs, conf.Accuracy())
		if err := merged.Merge(conf); err != nil {
			return nil, nil, err
		}
	}
	return merged, accs, nil
}

// widthsLabel renders a feature-width set as the paper writes it, e.g.
// "<h1,h3,h4,h10>".
func widthsLabel(widths []int) string {
	parts := make([]string, len(widths))
	for i, k := range widths {
		parts[i] = fmt.Sprintf("h%d", k)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// percent renders a fraction as "NN.NN%".
func percent(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

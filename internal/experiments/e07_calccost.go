package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"iustitia/internal/entropy"
)

// CalcCostPoint is one Figure 5 measurement.
type CalcCostPoint struct {
	BufferSize int
	// TimePerVector is the mean wall time to compute one entropy vector.
	TimePerVector time.Duration
	// SpaceBytes approximates the counter memory: for each feature width
	// k, the number of distinct elements observed times (k bytes of key +
	// 8 bytes of counter).
	SpaceBytes int
}

// CalcCostResult reproduces Figure 5: entropy-vector calculation time (5a)
// and counter space (5b) as the buffer grows. Both curves grow linearly in
// b; the paper's b=32 point is ~10× faster and ~30× smaller than b=1024.
type CalcCostResult struct {
	Widths []int
	Points []CalcCostPoint
}

// RunCalcCost measures Figure 5 with the given feature widths over the
// buffer-size sweep.
func RunCalcCost(s Scale, widths []int, sizes []int) (*CalcCostResult, error) {
	if len(widths) == 0 || len(sizes) == 0 {
		return nil, errors.New("experiments: calc-cost needs widths and sizes")
	}
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	result := &CalcCostResult{Widths: widths}
	for _, b := range sizes {
		var (
			total   time.Duration
			space   int
			vectors int
		)
		for _, f := range pool {
			data := f.Data
			if len(data) > b {
				data = data[:b]
			}
			maxWidth := 0
			for _, k := range widths {
				if k > maxWidth {
					maxWidth = k
				}
			}
			if len(data) < maxWidth {
				continue
			}
			start := time.Now()
			if _, err := entropy.VectorAt(data, widths); err != nil {
				return nil, fmt.Errorf("experiments: fig5 b=%d: %w", b, err)
			}
			total += time.Since(start)
			vectors++
		}
		// Space is data-dependent but stable across same-class files;
		// average over a handful of samples.
		const spaceSamples = 6
		counted := 0
		for _, f := range pool {
			if counted >= spaceSamples {
				break
			}
			data := f.Data
			if len(data) > b {
				data = data[:b]
			}
			sz, err := counterBytes(data, widths)
			if err != nil {
				continue
			}
			space += sz
			counted++
		}
		if vectors == 0 || counted == 0 {
			return nil, fmt.Errorf("experiments: fig5 b=%d: no usable files", b)
		}
		result.Points = append(result.Points, CalcCostPoint{
			BufferSize:    b,
			TimePerVector: total / time.Duration(vectors),
			SpaceBytes:    space / counted,
		})
	}
	return result, nil
}

// counterBytes approximates exact-calculation counter space for one
// buffer: distinct elements per width times key+counter size.
func counterBytes(data []byte, widths []int) (int, error) {
	total := 0
	for _, k := range widths {
		if len(data) < k {
			return 0, entropy.ErrShortSequence
		}
		counts, err := entropy.CountKGrams(data, k)
		if err != nil {
			return 0, err
		}
		total += len(counts) * (k + 8)
	}
	return total, nil
}

// String renders the Figure 5 table.
func (r *CalcCostResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — entropy vector calculation cost, widths %s\n", widthsLabel(r.Widths))
	fmt.Fprintf(&b, "%10s %16s %14s\n", "buffer", "time/vector", "space")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10d %16s %13dB\n", p.BufferSize, p.TimePerVector, p.SpaceBytes)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/entropy"
)

// Table3Row is one time/space measurement.
type Table3Row struct {
	Buffer  int
	Widths  []int
	Mode    string // "exact" or "estimated"
	Epsilon float64
	Delta   float64
	// TimePerVector is the mean wall time to produce one entropy vector.
	TimePerVector time.Duration
	// SpaceBytes is counter memory: distinct-element counters for exact
	// calculation, g·Σz_k sampled counters for estimation.
	SpaceBytes int
}

// Table3Result reproduces Table 3: the time and space of computing one
// entropy vector exactly versus with the (δ,ε)-approximation, at b=1024
// for both models' preferred feature sets and at b=32 exact. The paper's
// shape: at b=1024 estimation needs ~3× less memory but ~3× more time;
// b=32 exact is ~10-17× faster than b=1024 exact.
type Table3Result struct {
	Rows []Table3Row
}

// estimationCounterBytes is the size of one estimation counter (a sampled
// element position's running count).
const estimationCounterBytes = 8

// RunTable3 measures Table 3. epsilon/delta parameterize the estimator
// (the paper's Figure 7 optima are ε=0.25, δ=0.75 for SVM).
func RunTable3(s Scale, epsilon, delta float64) (*Table3Result, error) {
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	result := &Table3Result{}
	sets := []struct {
		name   string
		widths []int
	}{
		{"svm", core.PhiPrimeSVM},
		{"cart", core.PhiPrimeCART},
	}

	for _, set := range sets {
		for _, b := range []int{1024, 32} {
			row, err := measureExact(pool, set.widths, b)
			if err != nil {
				return nil, fmt.Errorf("experiments: table3 exact %s b=%d: %w", set.name, b, err)
			}
			row.Mode = "exact/" + set.name
			result.Rows = append(result.Rows, row)

			if b >= 1024 {
				// The paper notes estimation is ineffective at b=32; only
				// the 1K point is measured.
				est, err := entest.New(epsilon, delta, s.Seed)
				if err != nil {
					return nil, err
				}
				row, err := measureEstimated(pool, set.widths, b, est)
				if err != nil {
					return nil, fmt.Errorf("experiments: table3 estimated %s: %w", set.name, err)
				}
				row.Mode = "estimated/" + set.name
				row.Epsilon = epsilon
				row.Delta = delta
				result.Rows = append(result.Rows, row)
			}
		}
	}
	return result, nil
}

// measureExact times exact entropy-vector computation over the pool at
// buffer size b and estimates counter space from distinct-element counts.
func measureExact(pool []corpus.File, widths []int, b int) (Table3Row, error) {
	maxWidth := 0
	for _, k := range widths {
		if k > maxWidth {
			maxWidth = k
		}
	}
	var (
		total   time.Duration
		vectors int
		space   int
		spaces  int
	)
	for _, f := range pool {
		data := f.Data
		if len(data) > b {
			data = data[:b]
		}
		if len(data) < maxWidth {
			continue
		}
		start := time.Now()
		if _, err := entropy.VectorAt(data, widths); err != nil {
			return Table3Row{}, err
		}
		total += time.Since(start)
		vectors++
		if spaces < 6 {
			sz, err := counterBytes(data, widths)
			if err != nil {
				return Table3Row{}, err
			}
			space += sz
			spaces++
		}
	}
	if vectors == 0 || spaces == 0 {
		return Table3Row{}, fmt.Errorf("no usable files at b=%d", b)
	}
	return Table3Row{
		Buffer:        b,
		Widths:        widths,
		TimePerVector: total / time.Duration(vectors),
		SpaceBytes:    space / spaces,
	}, nil
}

// measureEstimated times (δ,ε)-estimated vector computation; counter space
// is the analytic g·Σ z_k (plus one exact h_1 byte histogram).
func measureEstimated(pool []corpus.File, widths []int, b int, est *entest.Estimator) (Table3Row, error) {
	maxWidth := 0
	for _, k := range widths {
		if k > maxWidth {
			maxWidth = k
		}
	}
	var (
		total   time.Duration
		vectors int
	)
	for _, f := range pool {
		data := f.Data
		if len(data) > b {
			data = data[:b]
		}
		if len(data) < maxWidth {
			continue
		}
		start := time.Now()
		if _, err := est.Vector(data, widths); err != nil {
			return Table3Row{}, err
		}
		total += time.Since(start)
		vectors++
	}
	if vectors == 0 {
		return Table3Row{}, fmt.Errorf("no usable files at b=%d", b)
	}
	space := est.Counters(widths, b) * estimationCounterBytes
	for _, k := range widths {
		if k == 1 {
			space += 256 * estimationCounterBytes // exact h_1 byte histogram
		}
	}
	return Table3Row{
		Buffer:        b,
		Widths:        widths,
		TimePerVector: total / time.Duration(vectors),
		SpaceBytes:    space,
	}, nil
}

// String renders the Table 3 block.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 — entropy vector time and space: exact calculation vs estimation\n")
	fmt.Fprintf(&b, "%-16s %8s %-18s %16s %12s\n", "mode", "buffer", "widths", "time/vector", "space")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %8d %-18s %16s %11dB\n",
			row.Mode, row.Buffer, widthsLabel(row.Widths), row.TimePerVector, row.SpaceBytes)
	}
	return b.String()
}

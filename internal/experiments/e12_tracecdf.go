package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
	"iustitia/internal/stats"
)

// TraceCDFResult reproduces Figure 9: the cumulative distributions of (a)
// packet payload size and (b) per-flow packet inter-arrival time for the
// gateway trace. The paper's shape: bimodal payload sizes with >50% of
// packets under 140 bytes and ~20% at 1480; inter-arrivals mostly well
// under a second with a long tail.
type TraceCDFResult struct {
	PayloadSize   *stats.CDF
	InterArrival  *stats.CDF
	TotalPackets  int
	TotalFlows    int
	DataPackets   int
	MedianGap     time.Duration
	FullSizeShare float64
}

// RunTraceCDF measures Figure 9 on a freshly generated trace.
func RunTraceCDF(s Scale) (*TraceCDFResult, error) {
	trace, err := packet.Generate(cdbTraceConfig(s), corpus.NewGenerator(s.Seed+200))
	if err != nil {
		return nil, err
	}
	var sizes []float64
	fullSize := 0
	lastSeen := make(map[packet.FiveTuple]time.Duration)
	var gaps []float64
	for i := range trace.Packets {
		p := &trace.Packets[i]
		if p.IsData() {
			sizes = append(sizes, float64(len(p.Payload)))
			if len(p.Payload) == 1480 {
				fullSize++
			}
		}
		if prev, ok := lastSeen[p.Tuple]; ok {
			gaps = append(gaps, (p.Time - prev).Seconds())
		}
		lastSeen[p.Tuple] = p.Time
	}
	if len(sizes) == 0 || len(gaps) == 0 {
		return nil, errors.New("experiments: degenerate trace (no data packets or gaps)")
	}
	sizeCDF, err := stats.NewCDF(sizes)
	if err != nil {
		return nil, err
	}
	gapCDF, err := stats.NewCDF(gaps)
	if err != nil {
		return nil, err
	}
	sort.Float64s(gaps)
	return &TraceCDFResult{
		PayloadSize:   sizeCDF,
		InterArrival:  gapCDF,
		TotalPackets:  len(trace.Packets),
		TotalFlows:    len(trace.Flows),
		DataPackets:   trace.DataPackets(),
		MedianGap:     time.Duration(gaps[len(gaps)/2] * float64(time.Second)),
		FullSizeShare: float64(fullSize) / float64(len(sizes)),
	}, nil
}

// String renders the Figure 9 tables.
func (r *TraceCDFResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — trace CDFs (%d packets, %d data, %d flows)\n",
		r.TotalPackets, r.DataPackets, r.TotalFlows)
	b.WriteString("(a) payload size:\n")
	for _, x := range []float64{64, 140, 512, 1024, 1479, 1480} {
		fmt.Fprintf(&b, "    P(size <= %4.0fB) = %.2f\n", x, r.PayloadSize.At(x))
	}
	fmt.Fprintf(&b, "    full-size (1480B) share = %.2f\n", r.FullSizeShare)
	b.WriteString("(b) packet inter-arrival time:\n")
	for _, x := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1.0} {
		fmt.Fprintf(&b, "    P(gap <= %5.2fs) = %.2f\n", x, r.InterArrival.At(x))
	}
	fmt.Fprintf(&b, "    median gap = %s\n", r.MedianGap)
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/ml/dataset"
)

// Table1Result reproduces Table 1 and Figures 2(b)/2(c): k-fold
// cross-validated file classification on the full H_F = <h1..h10> feature
// vector, with total/per-class accuracy and the misclassification matrix.
// The paper reports ~79% total for CART and ~86% for SVM-RBF(γ=50, C=1000),
// with encrypted files classified best by the SVM and the binary/encrypted
// confusion dominating the errors.
type Table1Result struct {
	Model          core.ModelKind
	Confusion      *dataset.Confusion
	FoldAccuracies []float64
	Folds          int
}

// RunTable1 runs the Table 1 cross validation for one model family.
func RunTable1(s Scale, kind core.ModelKind) (*Table1Result, error) {
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	ds, err := core.BuildDataset(pool, core.DatasetConfig{
		Widths: core.AllWidths,
		Method: core.MethodWholeFile,
	})
	if err != nil {
		return nil, err
	}

	var te trainEval
	switch kind {
	case core.KindCART:
		te = cartTrainEval(paperCARTConfig())
	case core.KindSVM:
		te = svmTrainEval(paperSVMConfig(s.Seed))
	default:
		return nil, fmt.Errorf("experiments: unknown model kind %d", int(kind))
	}

	conf, accs, err := crossValidate(ds, s.Folds, s.Seed, te)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Model: kind, Confusion: conf, FoldAccuracies: accs, Folds: s.Folds}, nil
}

// String renders the Table 1 block for this model.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 / Figure 2(b,c) — %s, %d-fold CV, H_F = <h1..h10>\n",
		strings.ToUpper(r.Model.String()), r.Folds)
	fmt.Fprintf(&b, "total accuracy: %s\n", percent(r.Confusion.Accuracy()))
	names := corpus.ClassNames()
	fmt.Fprintf(&b, "%-12s%12s    misclassified as\n", "class", "accuracy")
	for i, name := range names {
		fmt.Fprintf(&b, "%-12s%12s    ", name, percent(r.Confusion.ClassAccuracy(i)))
		for j, to := range names {
			if i == j {
				continue
			}
			fmt.Fprintf(&b, "%s=%s ", to, percent(r.Confusion.Misclassification(i, j)))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "per-fold accuracy:")
	for _, acc := range r.FoldAccuracies {
		fmt.Fprintf(&b, " %s", percent(acc))
	}
	b.WriteByte('\n')
	return b.String()
}

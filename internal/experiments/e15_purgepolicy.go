package experiments

import (
	"fmt"
	"strings"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// PurgePolicyRow is one purge-policy measurement.
type PurgePolicyRow struct {
	Policy         string
	FinalCDBSize   int
	PeakCDBSize    int
	RemovedByClose int
	RemovedByIdle  int
	// Reclassifications counts flows classified more than once because
	// purging dropped their record while they were still active — the
	// cost side of aggressive purging (paper §4.5's n trade-off).
	Reclassifications int
}

// PurgePolicyResult is the DESIGN.md §5 ablation of the CDB purge policy:
// no purging, FIN/RST-only, and FIN/RST plus the n·λ inactivity rule, all
// replaying the same trace. The paper's full policy should bound the CDB
// near the concurrent-flow count at a modest reclassification cost.
type PurgePolicyResult struct {
	Rows       []PurgePolicyRow
	TotalFlows int
}

// RunPurgePolicy replays one trace under the three purge policies.
func RunPurgePolicy(s Scale) (*PurgePolicyResult, error) {
	clf, err := trainFlowClassifier(s, 32)
	if err != nil {
		return nil, err
	}
	trace, err := packet.Generate(cdbTraceConfig(s), corpus.NewGenerator(s.Seed+400))
	if err != nil {
		return nil, err
	}

	policies := []struct {
		name string
		cdb  flow.CDBConfig
	}{
		{"none", flow.CDBConfig{}},
		{"fin-rst", flow.CDBConfig{PurgeOnClose: true}},
		{"fin-rst+idle", flow.CDBConfig{PurgeOnClose: true, PurgeInactive: true, N: 4, PurgeEvery: 500}},
	}

	result := &PurgePolicyResult{TotalFlows: len(trace.Flows)}
	for _, policy := range policies {
		engine, err := flow.NewEngine(flow.EngineConfig{
			BufferSize: 32,
			Classifier: clf,
			IdleFlush:  2 * time.Second,
			CDB:        policy.cdb,
		})
		if err != nil {
			return nil, err
		}
		row := PurgePolicyRow{Policy: policy.name}
		nextTick := time.Second
		for i := range trace.Packets {
			p := &trace.Packets[i]
			for p.Time >= nextTick {
				if policy.cdb.PurgeInactive {
					engine.CDB().Sweep(nextTick)
				}
				if _, err := engine.FlushIdle(nextTick); err != nil {
					return nil, err
				}
				if size := engine.CDB().Size(); size > row.PeakCDBSize {
					row.PeakCDBSize = size
				}
				nextTick += time.Second
			}
			if _, err := engine.Process(p); err != nil {
				return nil, fmt.Errorf("experiments: purge policy %s: %w", policy.name, err)
			}
		}
		stats := engine.CDB().Stats()
		row.FinalCDBSize = stats.Size
		if row.FinalCDBSize > row.PeakCDBSize {
			row.PeakCDBSize = row.FinalCDBSize
		}
		row.RemovedByClose = stats.RemovedByClose
		row.RemovedByIdle = stats.RemovedByIdle
		row.Reclassifications = stats.Reinsertions
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// String renders the ablation table.
func (r *PurgePolicyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Purge-policy ablation (%d flows replayed)\n", r.TotalFlows)
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %12s %10s\n",
		"policy", "final CDB", "peak CDB", "by FIN/RST", "by idle", "reclass")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %10d %10d %12d %12d %10d\n",
			row.Policy, row.FinalCDBSize, row.PeakCDBSize,
			row.RemovedByClose, row.RemovedByIdle, row.Reclassifications)
	}
	return b.String()
}

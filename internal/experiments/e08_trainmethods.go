package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"iustitia/internal/core"
)

// defaultHeaderThreshold is T, the maximum unknown-application-header
// length the H_b′ method trains against.
const defaultHeaderThreshold = 512

// TrainMethodsResult reproduces Figure 6: classification accuracy for the
// three training methods — H_F (whole file), H_b (first b bytes), and H_b′
// (b bytes at a random offset ≤ T) — across buffer sizes, for SVM (6a) and
// CART (6b). The paper finds the three curves close together (flow
// randomness is stable along the flow), SVM ahead of CART by up to ~10%,
// and accuracy rising with b.
type TrainMethodsResult struct {
	Sizes     []int
	Threshold int
	// Accuracy[model][method][i] for size index i.
	Accuracy map[string]map[string][]float64
}

// RunTrainMethods measures Figure 6 over the given buffer sizes.
func RunTrainMethods(s Scale, sizes []int, threshold int) (*TrainMethodsResult, error) {
	if len(sizes) == 0 {
		return nil, errors.New("experiments: empty buffer-size sweep")
	}
	if threshold <= 0 {
		threshold = defaultHeaderThreshold
	}
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	cut := len(pool) / 2
	trainFiles, testFiles := pool[:cut], pool[cut:]

	methods := []core.TrainingMethod{core.MethodWholeFile, core.MethodPrefix, core.MethodRandomOffset}
	result := &TrainMethodsResult{
		Sizes:     sizes,
		Threshold: threshold,
		Accuracy:  map[string]map[string][]float64{},
	}
	for _, kind := range []core.ModelKind{core.KindSVM, core.KindCART} {
		perMethod := map[string][]float64{}
		for _, method := range methods {
			accs := make([]float64, 0, len(sizes))
			for _, b := range sizes {
				widths := widthsFor(kind, b)
				clf, err := core.Train(trainFiles, core.TrainConfig{
					Kind: kind,
					Dataset: core.DatasetConfig{
						Widths:          widths,
						Method:          method,
						BufferSize:      b,
						HeaderThreshold: threshold,
						Seed:            s.Seed,
					},
					CART: paperCARTConfig(),
					SVM:  paperSVMConfig(s.Seed),
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: fig6 %v/%v b=%d: %w", kind, method, b, err)
				}
				// Test flows emulate unknown headers: their window starts
				// at a random offset in [0, T], like the paper's
				// (T−Y+1)-th-byte rule.
				testDS, err := core.BuildDataset(testFiles, core.DatasetConfig{
					Widths:          widths,
					Method:          core.MethodRandomOffset,
					BufferSize:      b,
					HeaderThreshold: threshold,
					Seed:            s.Seed + 1,
				})
				if err != nil {
					return nil, err
				}
				conf, err := clf.Evaluate(testDS)
				if err != nil {
					return nil, err
				}
				accs = append(accs, conf.Accuracy())
			}
			perMethod[method.String()] = accs
		}
		result.Accuracy[kind.String()] = perMethod
	}
	return result, nil
}

// String renders the Figure 6 series.
func (r *TrainMethodsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — accuracy by training method (T=%d), random-offset test windows\n", r.Threshold)
	fmt.Fprintf(&b, "%-16s", "model/method")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "%7d", size)
	}
	b.WriteByte('\n')
	for _, model := range []string{"svm", "cart"} {
		for _, method := range []string{"H_F", "H_b", "H_b'"} {
			series, ok := r.Accuracy[model][method]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-16s", model+"/"+method)
			for _, acc := range series {
				fmt.Fprintf(&b, "%6.1f%%", 100*acc)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

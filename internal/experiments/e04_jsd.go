package experiments

import (
	"errors"
	"fmt"
	"strings"

	"iustitia/internal/corpus"
	"iustitia/internal/entropy"
	"iustitia/internal/stats"
)

// JSDResult reproduces Figure 3: the Jensen-Shannon divergence between the
// element-frequency distribution of the first portion of a file and that
// of the whole file, averaged per class, for element widths f1 and f2 (and
// optionally f3). Hypothesis 2 predicts the curves fall quickly — the
// paper reads >86% similarity (JSD < 0.14) at 20% of the file for f1.
type JSDResult struct {
	Portions []float64
	Widths   []int
	// Mean[k][class][p] is the mean JSD at width k for the class at
	// portion index p.
	Mean map[int]map[corpus.Class][]float64
}

// RunJSD measures Figure 3 over the synthetic pool.
func RunJSD(s Scale, widths []int, portions []float64) (*JSDResult, error) {
	if len(widths) == 0 || len(portions) == 0 {
		return nil, errors.New("experiments: JSD needs widths and portions")
	}
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	result := &JSDResult{
		Portions: portions,
		Widths:   widths,
		Mean:     make(map[int]map[corpus.Class][]float64, len(widths)),
	}
	for _, k := range widths {
		perClass := make(map[corpus.Class][]float64, corpus.NumClasses)
		for class := corpus.Text; class <= corpus.Encrypted; class++ {
			perClass[class] = make([]float64, len(portions))
		}
		for pi, portion := range portions {
			samples := make(map[corpus.Class][]float64)
			for _, f := range pool {
				d, err := entropy.PrefixJSD(f.Data, portion, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: JSD k=%d portion=%v: %w", k, portion, err)
				}
				samples[f.Class] = append(samples[f.Class], d)
			}
			for class, xs := range samples {
				perClass[class][pi] = stats.Mean(xs)
			}
		}
		result.Mean[k] = perClass
	}
	return result, nil
}

// String renders the Figure 3 series.
func (r *JSDResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 3 — JSD(first-portion || whole file), mean per class\n")
	for _, k := range r.Widths {
		fmt.Fprintf(&b, "element width f%d:\n%-10s", k, "portion")
		for _, p := range r.Portions {
			fmt.Fprintf(&b, "%8.2f", p)
		}
		b.WriteByte('\n')
		for class := corpus.Text; class <= corpus.Encrypted; class++ {
			fmt.Fprintf(&b, "%-10s", class)
			for pi := range r.Portions {
				fmt.Fprintf(&b, "%8.3f", r.Mean[k][class][pi])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"iustitia/internal/core"
)

// DefaultBufferSizes is the Figure 4/6 sweep: 8 B to 8 KiB.
var DefaultBufferSizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// BufferSweepResult reproduces Figure 4: classification accuracy versus
// buffer size b, for classifiers trained on whole files (4a) and on the
// first b bytes of each file (4b), for both models. The paper's reading:
// whole-file training needs b≈1K to reach 86% with SVM, while first-b
// training reaches 86% already at b=32.
type BufferSweepResult struct {
	Sizes []int
	// Accuracy[method][model][i] for size index i. Methods are "H_F" and
	// "H_b"; models "cart" and "svm".
	Accuracy map[string]map[string][]float64
}

// RunBufferSweep measures Figure 4 over the given buffer sizes.
func RunBufferSweep(s Scale, sizes []int) (*BufferSweepResult, error) {
	if len(sizes) == 0 {
		return nil, errors.New("experiments: empty buffer-size sweep")
	}
	pool, err := buildPool(s)
	if err != nil {
		return nil, err
	}
	// A single stratified train/test split keeps the 2×2×|sizes| grid
	// tractable; cross-validation of single points happens in Table 1.
	rng := rand.New(rand.NewSource(s.Seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	cut := len(pool) / 2
	trainFiles, testFiles := pool[:cut], pool[cut:]

	result := &BufferSweepResult{
		Sizes:    sizes,
		Accuracy: map[string]map[string][]float64{},
	}
	for _, method := range []core.TrainingMethod{core.MethodWholeFile, core.MethodPrefix} {
		perModel := map[string][]float64{}
		for _, kind := range []core.ModelKind{core.KindCART, core.KindSVM} {
			accs := make([]float64, 0, len(sizes))
			for _, b := range sizes {
				widths := widthsFor(kind, b)
				trainCfg := core.TrainConfig{
					Kind: kind,
					Dataset: core.DatasetConfig{
						Widths:     widths,
						Method:     method,
						BufferSize: b,
					},
					CART: paperCARTConfig(),
					SVM:  paperSVMConfig(s.Seed),
				}
				clf, err := core.Train(trainFiles, trainCfg)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig4 %v/%v b=%d: %w", method, kind, b, err)
				}
				testDS, err := core.BuildDataset(testFiles, core.DatasetConfig{
					Widths: widths, Method: core.MethodPrefix, BufferSize: b,
				})
				if err != nil {
					return nil, err
				}
				conf, err := clf.Evaluate(testDS)
				if err != nil {
					return nil, err
				}
				accs = append(accs, conf.Accuracy())
			}
			perModel[kind.String()] = accs
		}
		result.Accuracy[method.String()] = perModel
	}
	return result, nil
}

// widthsFor returns the model's deployment feature set, narrowed so the
// widest feature fits inside a b-byte buffer.
func widthsFor(kind core.ModelKind, b int) []int {
	base := core.PhiPrimeSVM
	if kind == core.KindCART {
		base = core.PhiPrimeCART
	}
	widths := make([]int, 0, len(base))
	for _, k := range base {
		if k <= b {
			widths = append(widths, k)
		}
	}
	if len(widths) == 0 {
		widths = []int{1}
	}
	return widths
}

// String renders the Figure 4 series.
func (r *BufferSweepResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 4 — classification accuracy vs buffer size b\n")
	fmt.Fprintf(&b, "%-18s", "train/model")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "%7d", size)
	}
	b.WriteByte('\n')
	for _, method := range []string{"H_F", "H_b"} {
		for _, model := range []string{"cart", "svm"} {
			series, ok := r.Accuracy[method][model]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-18s", method+"/"+model)
			for _, acc := range series {
				fmt.Fprintf(&b, "%6.1f%%", 100*acc)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

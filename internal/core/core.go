// Package core assembles Iustitia's primary contribution: training a
// content-nature classifier from a file corpus via entropy-vector features
// and serving it online. It binds the substrates together — corpus files
// are reduced to entropy vectors (exact or (δ,ε)-estimated), a CART tree or
// DAGSVM model is trained on them with one of the paper's three training
// methods (H_F whole-file, H_b first-b-bytes, H_b′ random-offset), and the
// resulting Classifier plugs into the flow engine as its classification
// module.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/entropy"
	"iustitia/internal/ml/cart"
	"iustitia/internal/ml/dataset"
	"iustitia/internal/ml/svm"
)

// Feature-width sets from the paper (values are element widths k, so the
// feature h_k is computed over k-byte elements).
var (
	// AllWidths is the full H_F = <h_1 .. h_10> feature vector.
	AllWidths = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// PhiCART is the tree-voting selection φ_CART = {h1, h3, h4, h10}.
	PhiCART = []int{1, 3, 4, 10}
	// PhiSVM is the SFS selection φ_SVM = {h1, h2, h3, h9}.
	PhiSVM = []int{1, 2, 3, 9}
	// PhiPrimeCART is the deployment set φ′_CART = {h1, h3, h4, h5}.
	PhiPrimeCART = []int{1, 3, 4, 5}
	// PhiPrimeSVM is the deployment set φ′_SVM = {h1, h2, h3, h5}.
	PhiPrimeSVM = []int{1, 2, 3, 5}
)

// ModelKind selects the classification model family.
type ModelKind int

// Supported model kinds.
const (
	KindCART ModelKind = iota + 1
	KindSVM
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	switch k {
	case KindCART:
		return "cart"
	case KindSVM:
		return "svm"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TrainingMethod selects which bytes of each training file feed the
// entropy vector (paper §4.3).
type TrainingMethod int

// The paper's three training methods.
const (
	// MethodWholeFile trains on H_F, the entropy vector of the entire
	// file.
	MethodWholeFile TrainingMethod = iota + 1
	// MethodPrefix trains on H_b, the entropy vector of the first b
	// bytes.
	MethodPrefix
	// MethodRandomOffset trains on H_b′: b consecutive bytes starting at
	// a uniform offset in [0, T], emulating unknown application headers.
	MethodRandomOffset
)

// String implements fmt.Stringer.
func (m TrainingMethod) String() string {
	switch m {
	case MethodWholeFile:
		return "H_F"
	case MethodPrefix:
		return "H_b"
	case MethodRandomOffset:
		return "H_b'"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Common errors.
var (
	ErrNoFiles      = errors.New("core: no training files")
	ErrBadWidths    = errors.New("core: invalid feature widths")
	ErrShortPayload = errors.New("core: payload shorter than the widest feature")
)

// DatasetConfig controls file-to-feature reduction.
type DatasetConfig struct {
	// Widths are the entropy feature widths (k values), e.g. PhiPrimeSVM.
	Widths []int
	// Method picks the training material per file.
	Method TrainingMethod
	// BufferSize is b for MethodPrefix and MethodRandomOffset.
	BufferSize int
	// HeaderThreshold is T for MethodRandomOffset.
	HeaderThreshold int
	// Estimator, when non-nil, replaces exact entropy calculation for
	// widths >= 2 ((δ,ε)-approximation training, paper §4.4.2).
	Estimator *entest.Estimator
	// Seed drives the random offsets of MethodRandomOffset.
	Seed int64
}

// validateWidths applies the feature-width rules shared by every path
// that accepts widths from outside — dataset configs and persisted
// classifiers alike: non-empty, every width positive, no duplicates.
func validateWidths(widths []int) error {
	if len(widths) == 0 {
		return fmt.Errorf("%w: empty", ErrBadWidths)
	}
	seen := make(map[int]bool, len(widths))
	for _, k := range widths {
		if k < 1 {
			return fmt.Errorf("%w: width %d", ErrBadWidths, k)
		}
		if seen[k] {
			return fmt.Errorf("%w: duplicate width %d", ErrBadWidths, k)
		}
		seen[k] = true
	}
	return nil
}

// widestOf returns the largest width in widths (0 for an empty set).
func widestOf(widths []int) int {
	w := 0
	for _, k := range widths {
		if k > w {
			w = k
		}
	}
	return w
}

func (c DatasetConfig) validate() error {
	if err := validateWidths(c.Widths); err != nil {
		return err
	}
	switch c.Method {
	case MethodWholeFile:
	case MethodPrefix, MethodRandomOffset:
		if c.BufferSize <= 0 {
			return fmt.Errorf("core: method %v needs a positive buffer size", c.Method)
		}
	default:
		return fmt.Errorf("core: unknown training method %d", int(c.Method))
	}
	return nil
}

// vectorOf computes the configured entropy vector for one byte window.
func (c DatasetConfig) vectorOf(data []byte) ([]float64, error) {
	if c.Estimator != nil {
		return c.Estimator.Vector(data, c.Widths)
	}
	return entropy.VectorAt(data, c.Widths)
}

// window selects the training bytes of one file per the configured method.
func (c DatasetConfig) window(data []byte, rng *rand.Rand) []byte {
	switch c.Method {
	case MethodPrefix:
		if len(data) > c.BufferSize {
			return data[:c.BufferSize]
		}
	case MethodRandomOffset:
		t := c.HeaderThreshold
		if t > len(data)-c.BufferSize {
			t = len(data) - c.BufferSize
		}
		if t > 0 {
			off := rng.Intn(t + 1)
			end := off + c.BufferSize
			if end > len(data) {
				end = len(data)
			}
			return data[off:end]
		}
		if len(data) > c.BufferSize {
			return data[:c.BufferSize]
		}
	}
	return data
}

// BuildDataset reduces corpus files to a labeled entropy-vector dataset.
// Files shorter than the widest feature are skipped; it is an error if
// every file is skipped.
func BuildDataset(files []corpus.File, cfg DatasetConfig) (*dataset.Dataset, error) {
	if len(files) == 0 {
		return nil, ErrNoFiles
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxWidth := widestOf(cfg.Widths)
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]dataset.Sample, 0, len(files))
	for _, f := range files {
		window := cfg.window(f.Data, rng)
		if len(window) < maxWidth {
			continue
		}
		vec, err := cfg.vectorOf(window)
		if err != nil {
			return nil, fmt.Errorf("core: featurizing %s/%s: %w", f.Class, f.Kind, err)
		}
		samples = append(samples, dataset.Sample{Features: vec, Label: int(f.Class)})
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: every file shorter than widest feature %d",
			ErrNoFiles, maxWidth)
	}
	return dataset.New(samples, corpus.NumClasses)
}

// TrainConfig assembles classifier training.
type TrainConfig struct {
	// Kind selects CART or SVM.
	Kind ModelKind
	// Dataset controls feature extraction from the corpus files.
	Dataset DatasetConfig
	// CART configures tree growth for KindCART.
	CART cart.Config
	// SVM configures SMO for KindSVM; the paper's model is
	// RBF(γ=50)/C=1000.
	SVM svm.Config
}

// Train builds a Classifier from labeled corpus files.
func Train(files []corpus.File, cfg TrainConfig) (*Classifier, error) {
	ds, err := BuildDataset(files, cfg.Dataset)
	if err != nil {
		return nil, err
	}
	return TrainOnDataset(ds, cfg)
}

// TrainOnDataset builds a Classifier from an already-featurized dataset
// whose columns correspond to cfg.Dataset.Widths.
func TrainOnDataset(ds *dataset.Dataset, cfg TrainConfig) (*Classifier, error) {
	if err := cfg.Dataset.validate(); err != nil {
		return nil, err
	}
	if ds.Width() != len(cfg.Dataset.Widths) {
		return nil, fmt.Errorf("core: dataset width %d does not match %d feature widths",
			ds.Width(), len(cfg.Dataset.Widths))
	}
	m := &model{
		kind:     cfg.Kind,
		widths:   append([]int{}, cfg.Dataset.Widths...),
		maxWidth: widestOf(cfg.Dataset.Widths),
	}
	switch cfg.Kind {
	case KindCART:
		tree, err := cart.Train(ds, cfg.CART)
		if err != nil {
			return nil, err
		}
		m.tree = tree
	case KindSVM:
		mdl, err := svm.Train(ds, cfg.SVM)
		if err != nil {
			return nil, err
		}
		m.svm = mdl
	default:
		return nil, fmt.Errorf("core: unknown model kind %d", int(cfg.Kind))
	}
	c := newClassifier(m)
	c.estimator = cfg.Dataset.Estimator
	return c, nil
}

// model is the swappable payload of a Classifier: the trained predictor
// plus the feature geometry it was trained with. Every field that must
// stay mutually consistent during a hot-swap lives here, so replacing the
// whole payload is one atomic pointer store.
type model struct {
	kind     ModelKind
	widths   []int
	maxWidth int // widest entry of widths, hoisted off the per-call path
	tree     *cart.Tree
	svm      *svm.Model
}

// Classifier is a trained Iustitia classification module. It satisfies the
// flow engine's Classifier interface, and supports atomic model hot-swap:
// Swap replaces the model payload under concurrent Classify calls without
// a drain. Each classify path loads the payload pointer exactly once, so
// an in-flight classification finishes entirely on the model it started
// with — widths and predictor never mix across a swap.
type Classifier struct {
	m atomic.Pointer[model]
	// estimator is a runtime feature-extraction choice, deliberately not
	// part of the swapped payload: it belongs to the deployment, not the
	// trained model, and survives hot-swaps.
	estimator *entest.Estimator
}

// newClassifier wraps a model payload in a Classifier.
func newClassifier(m *model) *Classifier {
	c := &Classifier{}
	c.m.Store(m)
	return c
}

// Kind returns the underlying model family.
func (c *Classifier) Kind() ModelKind { return c.m.Load().kind }

// Widths returns the entropy feature widths the classifier consumes.
func (c *Classifier) Widths() []int {
	m := c.m.Load()
	return append([]int{}, m.widths...)
}

// FeatureWidths is Widths under the name the flow engine's
// VectorClassifier interface uses.
func (c *Classifier) FeatureWidths() []int { return c.Widths() }

// Classes returns the number of output classes the model predicts over,
// or 0 if the model does not expose it. Hot-swap verification compares
// this against the live corpus before flipping the model in.
func (c *Classifier) Classes() int { return c.m.Load().classes() }

func (m *model) classes() int {
	switch m.kind {
	case KindCART:
		if m.tree != nil {
			return m.tree.Classes
		}
	case KindSVM:
		if m.svm != nil {
			return m.svm.Classes()
		}
	}
	return 0
}

// Swap atomically installs next's model payload as c's, returning a
// classifier that holds the previous payload so the caller can swap back
// (rollback). Safe under concurrent Classify calls: in-flight
// classifications complete on whichever model they loaded. The estimator
// is not swapped — it is a property of the deployment, not the model.
func (c *Classifier) Swap(next *Classifier) (prev *Classifier) {
	return newClassifier(c.m.Swap(next.m.Load()))
}

// UseEstimator switches feature extraction to the (δ,ε)-approximation
// algorithm for widths >= 2. Passing nil reverts to exact calculation.
func (c *Classifier) UseEstimator(e *entest.Estimator) { c.estimator = e }

// Features computes the classifier's entropy vector for a payload buffer.
func (c *Classifier) Features(payload []byte) ([]float64, error) {
	return c.features(c.m.Load(), payload)
}

func (c *Classifier) features(m *model, payload []byte) ([]float64, error) {
	if len(payload) < m.maxWidth {
		return nil, fmt.Errorf("%w: %d < %d", ErrShortPayload, len(payload), m.maxWidth)
	}
	if c.estimator != nil {
		return c.estimator.Vector(payload, m.widths)
	}
	return entropy.VectorAt(payload, m.widths)
}

// Classify labels a payload buffer with its content nature.
func (c *Classifier) Classify(payload []byte) (corpus.Class, error) {
	m := c.m.Load()
	vec, err := c.features(m, payload)
	if err != nil {
		return 0, err
	}
	return m.classifyVector(vec)
}

// ClassifyVector labels an already-computed entropy vector.
func (c *Classifier) ClassifyVector(vec []float64) (corpus.Class, error) {
	return c.m.Load().classifyVector(vec)
}

func (m *model) classifyVector(vec []float64) (corpus.Class, error) {
	var (
		label int
		err   error
	)
	switch m.kind {
	case KindCART:
		label, err = m.tree.Predict(vec)
	case KindSVM:
		label, err = m.svm.Predict(vec)
	default:
		return 0, fmt.Errorf("core: classifier has unknown kind %d", int(m.kind))
	}
	if err != nil {
		return 0, err
	}
	return corpus.Class(label), nil
}

// Evaluate classifies every sample of a featurized dataset.
func (c *Classifier) Evaluate(ds *dataset.Dataset) (*dataset.Confusion, error) {
	actual := make([]int, ds.Len())
	predicted := make([]int, ds.Len())
	for i, s := range ds.Samples {
		p, err := c.ClassifyVector(s.Features)
		if err != nil {
			return nil, err
		}
		actual[i] = s.Label
		predicted[i] = int(p)
	}
	return dataset.NewConfusion(corpus.NumClasses, actual, predicted)
}

// classifierJSON is the persisted form of a Classifier. The estimator is
// deliberately not persisted: it is a runtime choice.
type classifierJSON struct {
	Kind   ModelKind       `json:"kind"`
	Widths []int           `json:"widths"`
	Tree   *cart.Tree      `json:"tree,omitempty"`
	SVM    json.RawMessage `json:"svm,omitempty"`
}

// Save writes the classifier as JSON.
func (c *Classifier) Save(w io.Writer) error {
	m := c.m.Load()
	out := classifierJSON{Kind: m.kind, Widths: m.widths, Tree: m.tree}
	if m.svm != nil {
		blob, err := json.Marshal(m.svm)
		if err != nil {
			return fmt.Errorf("core: marshal svm: %w", err)
		}
		out.SVM = blob
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a classifier previously written by Save.
func Load(r io.Reader) (*Classifier, error) {
	var in classifierJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode classifier: %w", err)
	}
	// Persisted widths get the same scrutiny as a training config: a saved
	// model with zero, negative, or duplicated widths would otherwise
	// misextract features on every classify. The slice is defensively
	// copied so the classifier never aliases decoder-owned memory.
	if err := validateWidths(in.Widths); err != nil {
		return nil, err
	}
	m := &model{
		kind:     in.Kind,
		widths:   append([]int{}, in.Widths...),
		maxWidth: widestOf(in.Widths),
	}
	switch in.Kind {
	case KindCART:
		if in.Tree == nil {
			return nil, errors.New("core: cart classifier missing tree")
		}
		m.tree = in.Tree
	case KindSVM:
		if len(in.SVM) == 0 {
			return nil, errors.New("core: svm classifier missing model")
		}
		var mdl svm.Model
		if err := json.Unmarshal(in.SVM, &mdl); err != nil {
			return nil, fmt.Errorf("core: decode svm: %w", err)
		}
		m.svm = &mdl
	default:
		return nil, fmt.Errorf("core: unknown model kind %d", int(in.Kind))
	}
	return newClassifier(m), nil
}

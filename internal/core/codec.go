package core

import (
	"fmt"

	"iustitia/internal/ml/cart"
	"iustitia/internal/ml/svm"
	"iustitia/internal/persist"
)

// This file is the classifier's durable binary codec, the payload behind
// persist.KindClassifier snapshots: model kind, feature widths, and the
// model's own binary encoding. Decoding cross-checks the widths against
// the embedded model's feature width so a loaded classifier refuses
// mismatched feature vectors instead of silently misclassifying.

// Caps enforced while decoding. Paper feature sets have ≤ 10 widths,
// each ≤ 10 bytes; the caps exist only to bound hostile input.
const (
	maxDecodeWidths    = 1 << 8
	maxDecodeWidthSize = 1 << 16
)

// EncodeSnapshot serializes the classifier as a persist.KindClassifier
// payload (frame it with persist.Encode / persist.SaveFile).
func (c *Classifier) EncodeSnapshot() ([]byte, error) {
	m := c.m.Load()
	var e persist.Encoder
	e.U8(uint8(m.kind))
	e.U32(uint32(len(m.widths)))
	for _, w := range m.widths {
		e.U32(uint32(w))
	}
	switch m.kind {
	case KindCART:
		if m.tree == nil {
			return nil, fmt.Errorf("core: cart classifier missing tree")
		}
		blob, err := m.tree.Encode()
		if err != nil {
			return nil, err
		}
		e.Blob(blob)
	case KindSVM:
		if m.svm == nil {
			return nil, fmt.Errorf("core: svm classifier missing model")
		}
		blob, err := m.svm.Encode()
		if err != nil {
			return nil, err
		}
		e.Blob(blob)
	default:
		return nil, fmt.Errorf("core: unknown model kind %d", int(m.kind))
	}
	return e.Bytes(), nil
}

// DecodeSnapshot restores a classifier from a persist.KindClassifier
// payload. Hostile input returns an error wrapping persist.ErrCorrupt.
func DecodeSnapshot(data []byte) (*Classifier, error) {
	d := persist.NewDecoder(data)
	kind := ModelKind(d.U8())
	nWidths := d.Count(4)
	if d.Err() == nil {
		if kind != KindCART && kind != KindSVM {
			d.Fail("unknown model kind %d", int(kind))
		}
		if nWidths < 1 || nWidths > maxDecodeWidths {
			d.Fail("width count %d out of range", nWidths)
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("core: decode classifier: %w", err)
	}
	widths := make([]int, nWidths)
	for i := range widths {
		w := int(d.U32())
		if d.Err() == nil && (w < 1 || w > maxDecodeWidthSize) {
			d.Fail("feature width %d out of range", w)
		}
		widths[i] = w
	}
	blob := d.Blob()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: decode classifier: %w", err)
	}

	m := &model{kind: kind, widths: widths, maxWidth: widestOf(widths)}
	var modelWidth int
	switch kind {
	case KindCART:
		tree, err := cart.Decode(blob)
		if err != nil {
			return nil, err
		}
		m.tree = tree
		modelWidth = tree.Width
	case KindSVM:
		mdl, err := svm.Decode(blob)
		if err != nil {
			return nil, err
		}
		m.svm = mdl
		modelWidth = mdl.Width()
	}
	// The feature widths drive extraction; the model's width is how many
	// features it consumes. A mismatch means the snapshot was assembled
	// from incompatible halves — refuse it rather than misclassify.
	if modelWidth != len(widths) {
		return nil, fmt.Errorf("%w: model consumes %d features, snapshot lists %d widths",
			persist.ErrCorrupt, modelWidth, len(widths))
	}
	return newClassifier(m), nil
}

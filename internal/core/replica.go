package core

import (
	"errors"
	"fmt"
	"sync"
)

// ReplicaSet gives each engine shard its own *Classifier holding the
// same logical model. One shared Classifier means every shard's classify
// loads the same atomic.Pointer word — on a multicore box that word's
// cache line ping-pongs between cores (reads are cheap, but the line is
// also invalidated by every Swap, and sits adjacent to whatever else the
// shared struct holds). With replicas, each shard reads a pointer word
// it exclusively owns; the only cross-core traffic left is the model
// payload itself, which is immutable and therefore freely shared.
//
// Hot-swap stays atomic across the set: Swap flips every replica to the
// same payload under an internal mutex, and the ops layer runs that flip
// under the ingest frame gate (see internal/ops), so no packet is
// admitted while replicas disagree. Between swaps every replica holds
// the identical payload pointer — callers must not Swap an individual
// replica directly (Replica exposes *Classifier, whose Swap method is
// reachable; doing so voids the invariant and the next set-level Swap
// silently repairs it).
type ReplicaSet struct {
	mu       sync.Mutex // serializes set-level swaps
	replicas []*Classifier
}

// NewReplicaSet builds n replicas of base's current model payload. The
// replicas share base's estimator (a deployment property, not model
// state) but each owns its payload pointer word. base itself is not a
// member of the set.
func NewReplicaSet(base *Classifier, n int) (*ReplicaSet, error) {
	if base == nil {
		return nil, errors.New("core: replica set needs a base classifier")
	}
	if n < 1 {
		return nil, fmt.Errorf("core: replica count %d is not positive", n)
	}
	m := base.m.Load()
	rs := &ReplicaSet{replicas: make([]*Classifier, n)}
	for i := range rs.replicas {
		c := &Classifier{estimator: base.estimator}
		c.m.Store(m)
		rs.replicas[i] = c
	}
	return rs, nil
}

// Len returns the replica count.
func (rs *ReplicaSet) Len() int { return len(rs.replicas) }

// Replica returns replica i, the classifier to hand to shard i.
func (rs *ReplicaSet) Replica(i int) *Classifier { return rs.replicas[i] }

// Swap atomically installs next's model payload on every replica and
// returns a classifier holding the previous payload for rollback. Each
// individual replica flips atomically (its in-flight classifications
// finish on whichever payload they loaded), and the set-level mutex
// serializes concurrent Swaps; run the call under the ingest frame gate
// when no packet may observe replicas mid-flip.
func (rs *ReplicaSet) Swap(next *Classifier) (prev *Classifier) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m := next.m.Load()
	var prevM *model
	for _, r := range rs.replicas {
		p := r.m.Swap(m)
		if prevM == nil {
			prevM = p
		}
	}
	return newClassifier(prevM)
}

// Kind returns the model family currently served (replica 0's view; all
// replicas agree between swaps).
func (rs *ReplicaSet) Kind() ModelKind { return rs.replicas[0].Kind() }

// Widths returns the entropy feature widths the served model consumes.
func (rs *ReplicaSet) Widths() []int { return rs.replicas[0].Widths() }

// FeatureWidths is Widths under the flow engine's VectorClassifier name.
func (rs *ReplicaSet) FeatureWidths() []int { return rs.replicas[0].FeatureWidths() }

// Classes returns the number of output classes the served model predicts
// over, or 0 if it does not expose it.
func (rs *ReplicaSet) Classes() int { return rs.replicas[0].Classes() }

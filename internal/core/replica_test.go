package core

import (
	"sync"
	"testing"
)

func TestNewReplicaSetValidation(t *testing.T) {
	if _, err := NewReplicaSet(nil, 2); err == nil {
		t.Error("nil base accepted")
	}
	base := trainSmall(t, KindCART)
	if _, err := NewReplicaSet(base, 0); err == nil {
		t.Error("zero replicas accepted")
	}
}

// Every replica must serve the same payload as the base it was built
// from: identical verdicts on identical input, identical metadata.
func TestReplicaSetSharesOnePayload(t *testing.T) {
	base := trainSmall(t, KindCART)
	rs, err := NewReplicaSet(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rs.Len())
	}
	if rs.Kind() != base.Kind() || rs.Classes() != base.Classes() {
		t.Error("set metadata diverges from base")
	}
	payload := pool(t, 1, 1024, 1024, 11)[0].Data
	want, err := base.Classify(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rs.Len(); i++ {
		r := rs.Replica(i)
		// Replicas share the payload pointer, not a copy: the immutable
		// model is the one thing shards may cheaply share.
		if r.m.Load() != base.m.Load() {
			t.Fatalf("replica %d holds a different payload pointer", i)
		}
		got, err := r.Classify(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replica %d classified %v, base says %v", i, got, want)
		}
	}
}

// Swap must flip every replica and return the previous payload so a
// probation rollback restores every replica too.
func TestReplicaSetSwapFlipsAllAndRollsBack(t *testing.T) {
	a := trainSmall(t, KindCART)
	b := trainSmall(t, KindSVM)
	rs, err := NewReplicaSet(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := rs.Swap(b)
	if prev.Kind() != KindCART {
		t.Fatalf("Swap returned %v payload, want the previous CART", prev.Kind())
	}
	for i := 0; i < rs.Len(); i++ {
		if got := rs.Replica(i).Kind(); got != KindSVM {
			t.Fatalf("replica %d still serves %v after swap", i, got)
		}
	}
	// Rollback: swap the previous payload back in; every replica reverts.
	if back := rs.Swap(prev); back.Kind() != KindSVM {
		t.Fatalf("rollback returned %v, want the candidate SVM", back.Kind())
	}
	for i := 0; i < rs.Len(); i++ {
		if got := rs.Replica(i).Kind(); got != KindCART {
			t.Fatalf("replica %d not restored by rollback (serves %v)", i, got)
		}
	}
}

// Concurrent swaps serialize: after any interleaving, all replicas hold
// one payload (no torn set), and it is one of the swapped candidates.
// Run under -race this also proves the set-level locking.
func TestReplicaSetConcurrentSwapConverges(t *testing.T) {
	a := trainSmall(t, KindCART)
	b := trainSmall(t, KindSVM)
	rs, err := NewReplicaSet(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	payload := pool(t, 1, 1024, 1024, 13)[0].Data
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		cand := a
		if w%2 == 1 {
			cand = b
		}
		wg.Add(1)
		go func(c *Classifier) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rs.Swap(c)
			}
		}(cand)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, err := rs.Replica(i % rs.Len()).Classify(payload); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	first := rs.Replica(0).m.Load()
	for i := 1; i < rs.Len(); i++ {
		if rs.Replica(i).m.Load() != first {
			t.Fatalf("replica %d diverged after concurrent swaps", i)
		}
	}
	if first != a.m.Load() && first != b.m.Load() {
		t.Error("converged payload is neither candidate")
	}
}

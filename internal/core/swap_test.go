package core

import (
	"sync"
	"testing"

	"iustitia/internal/corpus"
	"iustitia/internal/ml/cart"
)

func trainCART(t *testing.T, files []corpus.File, widths []int, b int) *Classifier {
	t.Helper()
	c, err := Train(files, TrainConfig{
		Kind: KindCART,
		Dataset: DatasetConfig{
			Widths: widths, Method: MethodPrefix, BufferSize: b,
		},
		CART: cart.Config{MinLeaf: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSwapReplacesModel(t *testing.T) {
	files := pool(t, 10, 1024, 2048, 7)
	a := trainCART(t, files, []int{1, 3, 4, 5}, 512)
	b := trainCART(t, files, []int{1, 2}, 512)

	wantA, wantB := a.Widths(), b.Widths()
	prev := a.Swap(b)

	if got := a.Widths(); len(got) != len(wantB) {
		t.Errorf("after swap, widths = %v, want %v", got, wantB)
	}
	if got := prev.Widths(); len(got) != len(wantA) {
		t.Errorf("prev widths = %v, want %v", got, wantA)
	}

	// The swapped-in model must actually serve: verdicts now agree with b
	// on every corpus file.
	for i, f := range files {
		if len(f.Data) < 512 {
			continue
		}
		got, err := a.Classify(f.Data[:512])
		if err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		want, err := b.Classify(f.Data[:512])
		if err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("file %d: swapped classifier disagrees with source: %v vs %v", i, got, want)
		}
	}

	// Swapping prev back restores the original model.
	a.Swap(prev)
	if got := a.Widths(); len(got) != len(wantA) {
		t.Errorf("after rollback, widths = %v, want %v", got, wantA)
	}
}

func TestSwapUnderConcurrentClassify(t *testing.T) {
	files := pool(t, 8, 1024, 2048, 8)
	a := trainCART(t, files, []int{1, 3, 4, 5}, 512)
	b := trainCART(t, files, []int{1, 2}, 512)

	payloads := make([][]byte, 0, len(files))
	for _, f := range files {
		if len(f.Data) >= 512 {
			payloads = append(payloads, f.Data[:512])
		}
	}
	if len(payloads) == 0 {
		t.Fatal("no payloads long enough")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cls, err := a.Classify(payloads[(w+i)%len(payloads)])
				if err != nil {
					// A classify must never observe a torn model: errors
					// would mean one model's widths fed the other's
					// predictor.
					t.Errorf("classify during swap: %v", err)
					return
				}
				if cls < 0 || int(cls) >= corpus.NumClasses {
					t.Errorf("classify during swap: class %d out of range", int(cls))
					return
				}
			}
		}(w)
	}
	other := b
	for i := 0; i < 200; i++ {
		other = a.Swap(other)
	}
	close(stop)
	wg.Wait()
}

func TestClassifierClasses(t *testing.T) {
	files := pool(t, 10, 1024, 2048, 9)
	c := trainCART(t, files, []int{1, 3}, 512)
	if got := c.Classes(); got != corpus.NumClasses {
		t.Errorf("Classes() = %d, want %d", got, corpus.NumClasses)
	}
}

package core

import (
	"bytes"
	"errors"
	"testing"

	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/ml/svm"
)

func pool(t *testing.T, perClass, minSize, maxSize int, seed int64) []corpus.File {
	t.Helper()
	files, err := corpus.NewGenerator(seed).Pool(perClass, minSize, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestModelKindString(t *testing.T) {
	if KindCART.String() != "cart" || KindSVM.String() != "svm" {
		t.Error("model kind names wrong")
	}
	if ModelKind(0).String() != "kind(0)" {
		t.Error("unknown kind string wrong")
	}
}

func TestTrainingMethodString(t *testing.T) {
	for method, want := range map[TrainingMethod]string{
		MethodWholeFile: "H_F", MethodPrefix: "H_b", MethodRandomOffset: "H_b'",
	} {
		if got := method.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(method), got, want)
		}
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	files := pool(t, 2, 256, 512, 1)
	if _, err := BuildDataset(nil, DatasetConfig{Widths: []int{1}, Method: MethodWholeFile}); !errors.Is(err, ErrNoFiles) {
		t.Errorf("no files: err = %v", err)
	}
	if _, err := BuildDataset(files, DatasetConfig{Method: MethodWholeFile}); !errors.Is(err, ErrBadWidths) {
		t.Errorf("no widths: err = %v", err)
	}
	if _, err := BuildDataset(files, DatasetConfig{Widths: []int{0}, Method: MethodWholeFile}); !errors.Is(err, ErrBadWidths) {
		t.Errorf("width 0: err = %v", err)
	}
	if _, err := BuildDataset(files, DatasetConfig{Widths: []int{1}, Method: MethodPrefix}); err == nil {
		t.Error("prefix method without buffer size: want error")
	}
	if _, err := BuildDataset(files, DatasetConfig{Widths: []int{1}}); err == nil {
		t.Error("missing method: want error")
	}
}

func TestBuildDatasetShape(t *testing.T) {
	files := pool(t, 10, 1024, 2048, 2)
	ds, err := BuildDataset(files, DatasetConfig{
		Widths: PhiPrimeSVM, Method: MethodPrefix, BufferSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != len(files) {
		t.Errorf("dataset len = %d, want %d", ds.Len(), len(files))
	}
	if ds.Width() != len(PhiPrimeSVM) {
		t.Errorf("dataset width = %d, want %d", ds.Width(), len(PhiPrimeSVM))
	}
	for _, s := range ds.Samples {
		for i, h := range s.Features {
			if h < 0 || h > 1 {
				t.Fatalf("feature %d = %v outside [0,1]", i, h)
			}
		}
	}
}

func TestBuildDatasetSkipsShortFiles(t *testing.T) {
	files := []corpus.File{
		{Class: corpus.Text, Data: []byte("ab")},                 // shorter than width 3
		{Class: corpus.Text, Data: []byte("a much longer file")}, // kept
	}
	ds, err := BuildDataset(files, DatasetConfig{Widths: []int{3}, Method: MethodWholeFile})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 {
		t.Errorf("dataset len = %d, want 1", ds.Len())
	}
	// All files too short is an error.
	if _, err := BuildDataset(files[:1], DatasetConfig{Widths: []int{3}, Method: MethodWholeFile}); !errors.Is(err, ErrNoFiles) {
		t.Errorf("all short: err = %v", err)
	}
}

func TestBuildDatasetRandomOffsetDeterminism(t *testing.T) {
	files := pool(t, 5, 2048, 4096, 3)
	cfg := DatasetConfig{
		Widths: []int{1, 2}, Method: MethodRandomOffset,
		BufferSize: 512, HeaderThreshold: 1000, Seed: 99,
	}
	a, err := BuildDataset(files, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDataset(files, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		for j := range a.Samples[i].Features {
			if a.Samples[i].Features[j] != b.Samples[i].Features[j] {
				t.Fatal("random-offset featurization not reproducible for equal seeds")
			}
		}
	}
}

func trainSmall(t *testing.T, kind ModelKind) *Classifier {
	t.Helper()
	files := pool(t, 40, 1024, 2048, 4)
	cfg := TrainConfig{
		Kind: kind,
		Dataset: DatasetConfig{
			Widths: PhiPrimeSVM, Method: MethodPrefix, BufferSize: 512,
		},
		SVM: svm.Config{Kernel: svm.RBF{Gamma: 50}, C: 1000, Seed: 7},
	}
	c, err := Train(files, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTrainAndClassifyBothKinds(t *testing.T) {
	for _, kind := range []ModelKind{KindCART, KindSVM} {
		c := trainSmall(t, kind)
		if c.Kind() != kind {
			t.Errorf("Kind = %v, want %v", c.Kind(), kind)
		}

		// Held-out accuracy must comfortably beat chance (1/3) on the
		// synthetic bands.
		test := pool(t, 25, 1024, 2048, 5)
		testDS, err := BuildDataset(test, DatasetConfig{
			Widths: PhiPrimeSVM, Method: MethodPrefix, BufferSize: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		conf, err := c.Evaluate(testDS)
		if err != nil {
			t.Fatal(err)
		}
		if acc := conf.Accuracy(); acc < 0.6 {
			t.Errorf("%v held-out accuracy = %v, want >= 0.6", kind, acc)
		}
	}
}

func TestTrainUnknownKind(t *testing.T) {
	files := pool(t, 3, 512, 512, 6)
	_, err := Train(files, TrainConfig{
		Dataset: DatasetConfig{Widths: []int{1}, Method: MethodWholeFile},
	})
	if err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestClassifyShortPayload(t *testing.T) {
	c := trainSmall(t, KindCART)
	if _, err := c.Classify([]byte("abc")); !errors.Is(err, ErrShortPayload) {
		t.Errorf("short payload: err = %v", err)
	}
}

func TestClassifierWidthsCopied(t *testing.T) {
	c := trainSmall(t, KindCART)
	w := c.Widths()
	w[0] = 99
	if c.Widths()[0] == 99 {
		t.Error("Widths exposes internal storage")
	}
}

func TestClassifierWithEstimator(t *testing.T) {
	c := trainSmall(t, KindCART)
	est, err := entest.New(0.25, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.UseEstimator(est)
	files := pool(t, 5, 1024, 1024, 7)
	agreements := 0
	for _, f := range files {
		label, err := c.Classify(f.Data)
		if err != nil {
			t.Fatal(err)
		}
		if label == f.Class {
			agreements++
		}
	}
	// Estimation adds noise but must stay usable.
	if agreements < len(files)/3 {
		t.Errorf("estimated classification correct on %d/%d files", agreements, len(files))
	}
	c.UseEstimator(nil) // revert must not break exact classification
	if _, err := c.Classify(files[0].Data); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, kind := range []ModelKind{KindCART, KindSVM} {
		c := trainSmall(t, kind)
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		files := pool(t, 5, 1024, 1024, 8)
		for _, f := range files {
			want, err := c.Classify(f.Data[:512])
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.Classify(f.Data[:512])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v: round-trip classification mismatch", kind)
			}
		}
	}
}

func TestLoadInvalid(t *testing.T) {
	cases := []string{
		``,
		`{"kind":1,"widths":[]}`,
		`{"kind":1,"widths":[1]}`,            // cart without tree
		`{"kind":2,"widths":[1]}`,            // svm without model
		`{"kind":9,"widths":[1]}`,            // unknown kind
		`{"kind":2,"widths":[1],"svm":"{}"}`, // malformed svm payload
	}
	for _, blob := range cases {
		if _, err := Load(bytes.NewReader([]byte(blob))); err == nil {
			t.Errorf("Load(%q): want error", blob)
		}
	}
}

func TestLoadRejectsBadWidths(t *testing.T) {
	// The load path must apply the same width rules as training configs:
	// a persisted model with non-positive or duplicated widths would
	// misextract features on every classify.
	cases := []string{
		`{"kind":1,"widths":[0]}`,
		`{"kind":1,"widths":[-3]}`,
		`{"kind":1,"widths":[1,3,3]}`,
		`{"kind":2,"widths":[2,0,5]}`,
	}
	for _, blob := range cases {
		_, err := Load(bytes.NewReader([]byte(blob)))
		if !errors.Is(err, ErrBadWidths) {
			t.Errorf("Load(%q): err = %v, want ErrBadWidths", blob, err)
		}
	}
}

func TestDatasetConfigRejectsDuplicateWidths(t *testing.T) {
	files := pool(t, 3, 512, 512, 4)
	_, err := BuildDataset(files, DatasetConfig{
		Widths: []int{1, 2, 2}, Method: MethodWholeFile,
	})
	if !errors.Is(err, ErrBadWidths) {
		t.Errorf("BuildDataset(duplicate widths): err = %v, want ErrBadWidths", err)
	}
}

func TestFeaturesUsesHoistedMaxWidth(t *testing.T) {
	c := trainSmall(t, KindCART)
	widest := widestOf(c.Widths())
	short := make([]byte, widest-1)
	if _, err := c.Features(short); !errors.Is(err, ErrShortPayload) {
		t.Errorf("Features(short): err = %v, want ErrShortPayload", err)
	}
	long := make([]byte, widest)
	if _, err := c.Features(long); err != nil {
		t.Errorf("Features(exact widest): %v", err)
	}
}

// Package cluster turns N independent iustitia-serve instances into one
// federated classification service: a consistent-hash ring assigns every
// flow to a node, a status prober tracks each node's ingest health FSM
// through the machine-readable STATUS line, and a frame-level router
// spreads framed-packet traffic across the healthy nodes while asserting
// the cluster-wide conservation law
//
//	Σ Received == Σ Admitted + Σ Quarantined + Σ Shed   (across nodes)
//
// — the federation of the per-node transport law from internal/ingest.
// Rolling restarts hand a drained node's final KindParallelCheckpoint to
// its successor (same node name, resumed state), so the ring's flow→node
// assignment survives the restart and no verdict is lost.
package cluster

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// ErrNodeExists is returned (wrapped) by Ring.Add when the node name is
// already on the ring — node names are cluster-unique identities, so a
// duplicate ADD is an operator error, not an idempotent no-op.
var ErrNodeExists = errors.New("cluster: node already on the ring")

// DefaultReplicas is the virtual-node count per physical node. 64 points
// per node keeps the largest/smallest ownership ratio low without making
// ring rebuilds expensive.
const DefaultReplicas = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the physical node that owns the arc ending there.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over node names. Flow IDs map to points
// with PointOf; each point is owned by the first virtual node at or after
// it (wrapping). Adding or removing a node moves only the arcs adjacent
// to that node's virtual points — every other flow keeps its owner, which
// is what makes health-driven failover and rolling restarts cheap.
//
// Ring is not safe for concurrent mutation; the router guards it with its
// own lock.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, node)
	nodes    map[string]struct{}
}

// NewRing builds an empty ring with the given virtual-node count per
// physical node (<= 0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// pointHash positions virtual node i of a node on the circle: the same
// SHA-1 family as flow IDs, so placement is deterministic across
// processes (a router restart rebuilds the identical ring).
func pointHash(node string, i int) uint64 {
	sum := sha1.Sum([]byte(node + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// PointOf maps a flow ID to its position on the circle: the same full
// 64-bit word flow.ParallelEngine reduces for shard routing.
func PointOf(id flow.ID) uint64 {
	return binary.BigEndian.Uint64(id[:8])
}

// PointOfTuple maps a packet 5-tuple to its ring position.
func PointOfTuple(t packet.FiveTuple) uint64 {
	return PointOf(flow.IDOf(t))
}

// Add inserts a node's virtual points. Adding a present node is an error
// (names are cluster-unique identities).
func (r *Ring) Add(node string) error {
	if node == "" {
		return fmt.Errorf("cluster: empty node name")
	}
	if _, ok := r.nodes[node]; ok {
		return fmt.Errorf("%w: %q", ErrNodeExists, node)
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return nil
}

// Remove deletes a node's virtual points; its arcs fall to the next
// nodes on the circle. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Clone returns an independent copy of the ring, so a membership change
// can be staged (and its moved arcs computed) before it is published.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		replicas: r.replicas,
		points:   append([]ringPoint(nil), r.points...),
		nodes:    make(map[string]struct{}, len(r.nodes)),
	}
	for n := range r.nodes {
		c.nodes[n] = struct{}{}
	}
	return c
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the physical node count.
func (r *Ring) Len() int { return len(r.nodes) }

// firstAt returns the index of the first virtual point at or after p,
// wrapping to 0 past the last point.
func (r *Ring) firstAt(p uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= p })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node owning point p, or false on an empty ring.
func (r *Ring) Owner(p uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.firstAt(p)].node, true
}

// Candidates returns up to max distinct nodes in ring order starting at
// p's owner — the failover order health-aware routing walks when the
// owner is unavailable.
func (r *Ring) Candidates(p uint64, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.nodes) {
		max = len(r.nodes)
	}
	out := make([]string, 0, max)
	seen := make(map[string]struct{}, max)
	start := r.firstAt(p)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		n := r.points[(start+i)%len(r.points)].node
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

// MovedArc is one contiguous hash segment whose owner differs between two
// rings: every flow whose PointOf falls in [Lo, Hi] (inclusive) moves
// From one node To another.
type MovedArc struct {
	Lo, Hi   uint64
	From, To string
}

// ArcsMoved diffs ownership between two rings and returns the segments
// that changed hands, ordered by Lo. Consistent hashing bounds the result:
// each segment is adjacent to a virtual point of the added or removed
// node, so a single-node membership change moves at most that node's
// replica count worth of arcs (possibly split by the other nodes' points)
// — never the whole keyspace. The router feeds these to the flow-table
// migration so only the affected flows travel.
func ArcsMoved(before, after *Ring) []MovedArc {
	if len(before.points) == 0 || len(after.points) == 0 {
		return nil
	}
	// Ownership is constant on the segments between consecutive boundary
	// hashes of the union of both rings: walk those segments, compare each
	// ring's owner of the segment, and merge adjacent segments that moved
	// the same way.
	bounds := make([]uint64, 0, len(before.points)+len(after.points))
	for _, p := range before.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range after.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:0]
	for _, b := range bounds {
		if len(uniq) == 0 || uniq[len(uniq)-1] != b {
			uniq = append(uniq, b)
		}
	}
	var moved []MovedArc
	emit := func(lo, hi uint64) {
		fromOwner, _ := before.Owner(hi)
		toOwner, _ := after.Owner(hi)
		if fromOwner == toOwner {
			return
		}
		if n := len(moved); n > 0 && moved[n-1].Hi+1 == lo &&
			moved[n-1].From == fromOwner && moved[n-1].To == toOwner {
			moved[n-1].Hi = hi
			return
		}
		moved = append(moved, MovedArc{Lo: lo, Hi: hi, From: fromOwner, To: toOwner})
	}
	// [0, uniq[0]] is owned by the owner of the first boundary; each
	// segment (uniq[i-1], uniq[i]] by the owner of its upper bound; and
	// the wrap segment (last, Max] again by the owner of the first
	// boundary (no points lie above last, so ownership wraps).
	emit(0, uniq[0])
	for i := 1; i < len(uniq); i++ {
		emit(uniq[i-1]+1, uniq[i])
	}
	if last := uniq[len(uniq)-1]; last != ^uint64(0) {
		fromOwner, _ := before.Owner(uniq[0])
		toOwner, _ := after.Owner(uniq[0])
		if fromOwner != toOwner {
			moved = append(moved, MovedArc{Lo: last + 1, Hi: ^uint64(0), From: fromOwner, To: toOwner})
		}
	}
	sort.Slice(moved, func(i, j int) bool { return moved[i].Lo < moved[j].Lo })
	return moved
}

// Package cluster turns N independent iustitia-serve instances into one
// federated classification service: a consistent-hash ring assigns every
// flow to a node, a status prober tracks each node's ingest health FSM
// through the machine-readable STATUS line, and a frame-level router
// spreads framed-packet traffic across the healthy nodes while asserting
// the cluster-wide conservation law
//
//	Σ Received == Σ Admitted + Σ Quarantined + Σ Shed   (across nodes)
//
// — the federation of the per-node transport law from internal/ingest.
// Rolling restarts hand a drained node's final KindParallelCheckpoint to
// its successor (same node name, resumed state), so the ring's flow→node
// assignment survives the restart and no verdict is lost.
package cluster

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"

	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

// DefaultReplicas is the virtual-node count per physical node. 64 points
// per node keeps the largest/smallest ownership ratio low without making
// ring rebuilds expensive.
const DefaultReplicas = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the physical node that owns the arc ending there.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over node names. Flow IDs map to points
// with PointOf; each point is owned by the first virtual node at or after
// it (wrapping). Adding or removing a node moves only the arcs adjacent
// to that node's virtual points — every other flow keeps its owner, which
// is what makes health-driven failover and rolling restarts cheap.
//
// Ring is not safe for concurrent mutation; the router guards it with its
// own lock.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, node)
	nodes    map[string]struct{}
}

// NewRing builds an empty ring with the given virtual-node count per
// physical node (<= 0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// pointHash positions virtual node i of a node on the circle: the same
// SHA-1 family as flow IDs, so placement is deterministic across
// processes (a router restart rebuilds the identical ring).
func pointHash(node string, i int) uint64 {
	sum := sha1.Sum([]byte(node + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// PointOf maps a flow ID to its position on the circle: the same full
// 64-bit word flow.ParallelEngine reduces for shard routing.
func PointOf(id flow.ID) uint64 {
	return binary.BigEndian.Uint64(id[:8])
}

// PointOfTuple maps a packet 5-tuple to its ring position.
func PointOfTuple(t packet.FiveTuple) uint64 {
	return PointOf(flow.IDOf(t))
}

// Add inserts a node's virtual points. Adding a present node is an error
// (names are cluster-unique identities).
func (r *Ring) Add(node string) error {
	if node == "" {
		return fmt.Errorf("cluster: empty node name")
	}
	if _, ok := r.nodes[node]; ok {
		return fmt.Errorf("cluster: node %q already on the ring", node)
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return nil
}

// Remove deletes a node's virtual points; its arcs fall to the next
// nodes on the circle. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the physical node count.
func (r *Ring) Len() int { return len(r.nodes) }

// firstAt returns the index of the first virtual point at or after p,
// wrapping to 0 past the last point.
func (r *Ring) firstAt(p uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= p })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node owning point p, or false on an empty ring.
func (r *Ring) Owner(p uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.firstAt(p)].node, true
}

// Candidates returns up to max distinct nodes in ring order starting at
// p's owner — the failover order health-aware routing walks when the
// owner is unavailable.
func (r *Ring) Candidates(p uint64, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.nodes) {
		max = len(r.nodes)
	}
	out := make([]string, 0, max)
	seen := make(map[string]struct{}, max)
	start := r.firstAt(p)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		n := r.points[(start+i)%len(r.points)].node
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

package cluster

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"iustitia/internal/core"
	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ingest"
	"iustitia/internal/ml/cart"
	"iustitia/internal/ops"
)

// trainSmallModel trains the minimal CART model the federation tests
// serve and hot-swap.
func trainSmallModel(t *testing.T, seed int64) *core.Classifier {
	t.Helper()
	pool, err := corpus.NewGenerator(seed).Pool(12, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := core.Train(pool, core.TrainConfig{
		Kind: core.KindCART,
		Dataset: core.DatasetConfig{
			Widths:     []int{1, 2},
			Method:     core.MethodPrefix,
			BufferSize: 8,
			Seed:       seed,
		},
		CART: cart.Config{MinLeaf: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// startOpsNode is startNode with a real trained classifier and the ops
// admin surface wired in — the full serve-side stack the prober federates.
func startOpsNode(t *testing.T, name string, seed int64) *testNode {
	t.Helper()
	clf := trainSmallModel(t, seed)
	engine, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize: 256,
		Classifier: clf,
	}, testShards, nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := ops.NewManager(ops.Config{
		Engine:          engine,
		Classifier:      clf,
		Classes:         corpus.NumClasses,
		BufferSize:      256,
		ProbationWindow: 50 * time.Millisecond,
		ProbationPoll:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, status := listenLocal(t), listenLocal(t)
	srv, err := ingest.NewServer(ingest.Config{
		Engine:         engine,
		Listeners:      []net.Listener{data},
		StatusListener: status,
		Workers:        2,
		NodeName:       name,
		AdminHandler:   mgr.HandleAdmin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	mgr.AttachServer(srv)
	t.Cleanup(mgr.Close)
	return &testNode{
		cfg:    NodeConfig{Name: name, Addr: data.Addr().String(), StatusAddr: status.Addr().String()},
		srv:    srv,
		engine: engine,
	}
}

func TestRouterFederatesNodeMetrics(t *testing.T) {
	n1 := startOpsNode(t, "m1", 1)
	n2 := startOpsNode(t, "m2", 2)
	status := listenLocal(t)
	r, _ := startRouter(t, RouterConfig{StatusListener: status}, n1, n2)
	addr := status.Addr().String()
	defer drainRouter(t, r)
	defer n1.drain(t)
	defer n2.drain(t)
	waitAvailable(t, r, "m1", "m2")

	// The probe that reported availability also fetched metrics, but give
	// the table a moment in case availability landed on an earlier probe.
	deadline := time.Now().Add(5 * time.Second)
	for len(r.ClusterMetrics().PerNode) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("federated metrics never completed: %+v", r.ClusterMetrics())
		}
		time.Sleep(5 * time.Millisecond)
	}

	cm, err := ProbeClusterMetrics(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("ProbeClusterMetrics: %v", err)
	}
	if cm.Version != ops.Version || cm.Nodes != 2 || cm.Available != 2 {
		t.Errorf("cluster metrics = version %d nodes %d available %d", cm.Version, cm.Nodes, cm.Available)
	}
	for _, name := range []string{"m1", "m2"} {
		nm := cm.PerNode[name]
		if nm == nil {
			t.Fatalf("node %s missing from federated metrics", name)
		}
		if nm.Node != name || nm.Swap.ModelKind != "cart" {
			t.Errorf("node %s metrics = node %q model %q", name, nm.Node, nm.Swap.ModelKind)
		}
	}

	// Hot-swap a retrained model on one node through its admin listener and
	// watch the swap surface in the router's federated view.
	var blob bytes.Buffer
	if err := trainSmallModel(t, 3).Save(&blob); err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", n1.cfg.StatusAddr)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(c, "SWAP-MODEL %d\n", blob.Len())
	c.Write(blob.Bytes())
	var reply bytes.Buffer
	reply.ReadFrom(c)
	c.Close()
	if !strings.HasPrefix(reply.String(), "OK v1 swapped") {
		t.Fatalf("SWAP-MODEL reply = %q", strings.TrimSpace(reply.String()))
	}

	deadline = time.Now().Add(5 * time.Second)
	for {
		cm, err := ProbeClusterMetrics(addr, 5*time.Second)
		if err == nil && cm.SumSwaps == 1 && cm.SumRollbacks == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("swap never federated: %+v, err %v", cm, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The same sums ride the CLUSTER line for plain STATUS scrapers.
	snap, err := ProbeCluster(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cluster.SumSwaps != 1 || snap.Cluster.SumRollbacks != 0 {
		t.Errorf("CLUSTER line sums = swaps %d rollbacks %d, want 1/0", snap.Cluster.SumSwaps, snap.Cluster.SumRollbacks)
	}
}

func TestClusterLineOpsKeysForwardCompat(t *testing.T) {
	// A line from a router predating the ops keys still parses (zeros)...
	old := clusterLinePrefix + "state=healthy nodes=2 available=2 received=5 conservation_gap=0 violations=0"
	cl, err := parseClusterLine(old)
	if err != nil {
		t.Fatal(err)
	}
	if cl.JournalDepth != 0 || cl.SumSwaps != 0 {
		t.Errorf("old line parsed ops keys = %+v", cl)
	}
	// ...a current line carries them...
	cur := old + " journal_depth=3 sum_degraded=1 sum_swaps=4 sum_rollbacks=2"
	cl, err = parseClusterLine(cur)
	if err != nil {
		t.Fatal(err)
	}
	if cl.JournalDepth != 3 || cl.SumDegraded != 1 || cl.SumSwaps != 4 || cl.SumRollbacks != 2 {
		t.Errorf("ops keys = %+v", cl)
	}
	// ...and keys from the future are skipped, numeric or not.
	if _, err := parseClusterLine(cur + " sum_frobs=9 flavor=vanilla"); err != nil {
		t.Errorf("future keys rejected: %v", err)
	}
}

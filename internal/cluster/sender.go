package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"iustitia/internal/ingest"
	"iustitia/internal/packet"
)

// This file is the router's delivery stream to one node: a single shared
// ingest.Client per node, a per-node delivery sequence space, and a
// bounded replay journal of packets sent but not yet covered by the
// node's durable ack watermark. Together they close the SIGKILL hole: a
// packet the router counted Forwarded but the node lost with its TCP
// buffers (or processed but never checkpointed) is still in the journal,
// and is replayed — with its original sequence, so the node's dedup
// watermark discards anything whose effects survived — when the node
// comes back.

// journalEntry is one sent-but-unacked packet.
type journalEntry struct {
	seq uint64
	pkt packet.Packet
}

// nodeSender serializes all deliveries to one node. Sequence assignment
// and the send happen under one mutex, so the node observes sequences in
// increasing order — which is what makes its high-watermark dedup sound.
type nodeSender struct {
	name string

	mu     sync.Mutex
	client *ingest.Client
	rng    *rand.Rand
	// nextSeq is the next sequence to assign. It advances even when the
	// send fails: a torn-but-delivered attempt must never share a
	// sequence with a different packet.
	nextSeq uint64
	// lastDelivered is the highest sequence successfully written — the
	// watermark a migration waits for the node to reach before exporting.
	lastDelivered uint64
	// journal holds sent packets newer than the node's last durable ack,
	// oldest first.
	journal []journalEntry
	// failStreak counts consecutive failed sends; it drives the
	// exponential backoff that keeps held requeues from hammering a
	// recovering node.
	failStreak int
	// pendingReplay is set on the node's availability-loss edge: the next
	// send (or the regain edge, whichever comes first) replays the
	// journal before any new packet, keeping the sequence stream ordered.
	pendingReplay bool
}

// newSender builds the delivery stream for one node. The dial re-resolves
// the node's address on every connect, so UpdateNode handoffs take effect
// without rebuilding the sender.
func (r *Router) newSender(name string) *nodeSender {
	s := &nodeSender{
		name:    name,
		nextSeq: 1,
		rng:     rand.New(rand.NewSource(r.cfg.Seed ^ int64(pointHash(name, 0)))),
	}
	s.client, _ = ingest.NewClient(ingest.ClientConfig{
		Dial: func() (net.Conn, error) {
			nh, ok := r.probes.snapshot(name)
			if !ok {
				return nil, fmt.Errorf("cluster: unknown node %q", name)
			}
			return net.DialTimeout("tcp", nh.Config.Addr, r.cfg.DialTimeout)
		},
		MaxRetries:  r.cfg.SendRetries,
		BackoffBase: r.cfg.SendBackoffBase,
		BackoffMax:  r.cfg.SendBackoffMax,
		Seed:        r.cfg.Seed ^ int64(pointHash(name, 1)),
	})
	return s
}

// journalCap resolves the configured per-node journal bound: zero selects
// the default, negative disables journaling.
func (r *Router) journalCap() int {
	if r.cfg.JournalCap < 0 {
		return 0
	}
	if r.cfg.JournalCap == 0 {
		return DefaultJournalCap
	}
	return r.cfg.JournalCap
}

// sendToNode delivers one packet on the node's sequence stream. Callers
// hold the membership gate (shared or exclusive).
func (r *Router) sendToNode(s *nodeSender, pkt *packet.Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingReplay {
		if err := r.replayLocked(s); err != nil {
			return err
		}
	}
	if s.failStreak > 0 {
		r.sleepStreak(s)
	}
	seq := s.nextSeq
	s.nextSeq++
	if err := s.client.SendSeq(pkt, seq); err != nil {
		s.failStreak++
		return err
	}
	s.failStreak = 0
	s.lastDelivered = seq
	r.journalLocked(s, journalEntry{seq: seq, pkt: *pkt})
	return nil
}

// journalLocked appends one delivered packet, trimming acked entries and
// dropping the oldest past the cap. Called with s.mu held.
func (r *Router) journalLocked(s *nodeSender, e journalEntry) {
	limit := r.journalCap()
	if limit <= 0 {
		return
	}
	r.trimLocked(s)
	if len(s.journal) >= limit {
		drop := len(s.journal) - limit + 1
		s.journal = append(s.journal[:0], s.journal[drop:]...)
		r.mu.Lock()
		r.journalDropped += drop
		r.mu.Unlock()
	}
	s.journal = append(s.journal, e)
}

// trimLocked discards journal entries at or below the node's last
// observed durable ack watermark. Called with s.mu held.
func (r *Router) trimLocked(s *nodeSender) {
	h, ok := r.probes.snapshot(s.name)
	if !ok || h.LastSeen.IsZero() {
		return
	}
	acked := h.Status.AckedSeq
	i := 0
	for i < len(s.journal) && s.journal[i].seq <= acked {
		i++
	}
	if i > 0 {
		s.journal = append(s.journal[:0], s.journal[i:]...)
	}
}

// replayLocked resends every unacked journal entry with its original
// sequence, in order, before any newer send — so the node's watermark
// stays monotone and dedup stays sound. Entries whose effects the node
// still holds are discarded there; entries it lost are reprocessed.
// Called with s.mu held.
func (r *Router) replayLocked(s *nodeSender) error {
	r.trimLocked(s)
	for i := range s.journal {
		e := &s.journal[i]
		if err := s.client.SendSeq(&e.pkt, e.seq); err != nil {
			s.failStreak++
			return err
		}
		r.mu.Lock()
		r.replayed++
		r.mu.Unlock()
	}
	s.pendingReplay = false
	s.failStreak = 0
	return nil
}

// sleepStreak backs off before retrying a node that just failed:
// exponential in the streak, capped, with jitter so concurrent held
// packets do not stampede a recovering node. Aborts early at drain
// force. Called with s.mu held — serializing the waiters is the point.
func (r *Router) sleepStreak(s *nodeSender) {
	base, max := r.cfg.SendBackoffBase, r.cfg.SendBackoffMax
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 1; i < s.failStreak && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	d += time.Duration(s.rng.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	select {
	case <-t.C:
	case <-r.force:
		t.Stop()
	}
}

// replayAcross re-routes a dead node's orphaned journal through the
// current ring with fresh sequences in the new owners' streams. The
// packets were already counted Forwarded when first sent, so no router
// conservation counters move; undeliverable entries count ReplayDropped.
// Called with the membership gate held exclusively.
func (r *Router) replayAcross(entries []journalEntry) {
	for i := range entries {
		pkt := &entries[i].pkt
		point := PointOfTuple(pkt.Tuple)
		candidates := r.ring.Candidates(point, r.ring.Len())
		health := r.probes.snapshotAll()
		delivered := false
		for _, n := range candidates {
			if !health[n].Available() {
				continue
			}
			s := r.senders[n]
			if s == nil {
				continue
			}
			if err := r.sendToNode(s, pkt); err == nil {
				r.mu.Lock()
				r.replayed++
				r.mu.Unlock()
				delivered = true
				break
			}
		}
		if !delivered {
			r.mu.Lock()
			r.replayDropped++
			r.mu.Unlock()
		}
	}
}

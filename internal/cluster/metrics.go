package cluster

import (
	"encoding/json"
	"io"
	"net"
	"time"

	"iustitia/internal/ops"
)

// This file federates the per-node structured metrics (internal/ops) at
// the router: the prober piggybacks a METRICS fetch on every successful
// status probe, and the router serves the combined document — its own
// journal depth and frame counters plus every node's last metrics
// snapshot — through the METRICS verb on its admin listener.

// ClusterMetrics is the router's federated metrics document.
type ClusterMetrics struct {
	// Version is the admin protocol version of the router itself; each
	// node's own version rides in its PerNode entry.
	Version int `json:"version"`
	// State is the router's health FSM state.
	State     string `json:"state"`
	Nodes     int    `json:"nodes"`
	Available int    `json:"available"`
	// JournalDepth is the number of sent-but-unacked packets currently
	// held in replay journals across all node senders.
	JournalDepth int `json:"journal_depth"`
	// ConservationGap and Violations mirror the CLUSTER line's
	// cluster-wide law check.
	ConservationGap int `json:"conservation_gap"`
	Violations      int `json:"violations"`
	// SumDegradedShards, SumSwaps, and SumRollbacks aggregate the ops
	// counters over every node with a metrics snapshot — the fleet-wide
	// "is any node serving on its breaker or a rolled-back model" view.
	SumDegradedShards int `json:"sum_degraded_shards"`
	SumSwaps          int `json:"sum_swaps"`
	SumRollbacks      int `json:"sum_rollbacks"`
	// PerNode holds each node's last fetched metrics snapshot, keyed by
	// node name. Nodes that predate the METRICS verb are absent.
	PerNode map[string]*ops.NodeMetrics `json:"per_node"`
}

// JournalDepth sums the current replay-journal entries across all node
// senders.
func (r *Router) JournalDepth() int {
	r.member.RLock()
	defer r.member.RUnlock()
	depth := 0
	for _, s := range r.senders {
		s.mu.Lock()
		depth += len(s.journal)
		s.mu.Unlock()
	}
	return depth
}

// ClusterMetrics assembles the federated document from the health table's
// last-fetched node snapshots.
func (r *Router) ClusterMetrics() ClusterMetrics {
	st := r.Stats()
	cs := r.ClusterStats()
	cm := ClusterMetrics{
		Version:         ops.Version,
		State:           st.State.String(),
		Nodes:           cs.Nodes,
		Available:       cs.Available,
		JournalDepth:    r.JournalDepth(),
		ConservationGap: cs.Gap(),
		Violations:      st.ConservationViolations,
		PerNode:         make(map[string]*ops.NodeMetrics),
	}
	for name, h := range r.probes.snapshotAll() {
		if h.Metrics == nil {
			continue
		}
		cm.PerNode[name] = h.Metrics
		cm.SumDegradedShards += h.Metrics.Engine.DegradedShards
		cm.SumSwaps += h.Metrics.Swap.Swaps
		cm.SumRollbacks += h.Metrics.Swap.Rollbacks
	}
	return cm
}

// ProbeClusterMetrics fetches a router's federated metrics document
// through its admin listener.
func ProbeClusterMetrics(statusAddr string, timeout time.Duration) (*ClusterMetrics, error) {
	c, err := net.DialTimeout("tcp", statusAddr, timeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(timeout))
	if _, err := c.Write([]byte("METRICS\n")); err != nil {
		return nil, err
	}
	doc, err := io.ReadAll(c)
	if err != nil {
		return nil, err
	}
	var cm ClusterMetrics
	if err := json.Unmarshal(doc, &cm); err != nil {
		return nil, err
	}
	return &cm, nil
}

package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the router's live-membership surface: AddNode/RemoveNode
// mutate the ring at runtime behind the membership gate, moving only the
// affected hash arcs' flow state (EXPORT from the loser, IMPORT into the
// gainer — the node-side halves live in ingest's status protocol), and
// the admin line protocol exposes them on the router's status listener:
//
//	ADD <name>=<addr>,<statusAddr>  → join, wait healthy, migrate arcs in
//	REMOVE <name>                   → migrate arcs out (live node) or
//	                                  replay its journal (dead node), leave
//	LIST                            → one line per node + ring membership
//
// A migration runs with the gate held exclusively: routing pauses (held
// packets stall on the gate, clients feel TCP backpressure) so no packet
// for a moving arc lands on the loser after its state is exported.

// migrationIOTimeout bounds one EXPORT/IMPORT blob transfer.
const migrationIOTimeout = 30 * time.Second

// ParseNodeSpec parses the "name=addr,statusAddr" node syntax shared by
// the -node flag and the ADD admin verb.
func ParseNodeSpec(spec string) (NodeConfig, error) {
	name, addrs, ok := strings.Cut(spec, "=")
	if !ok {
		return NodeConfig{}, fmt.Errorf("cluster: node spec %q (want name=addr,statusAddr)", spec)
	}
	addr, statusAddr, ok := strings.Cut(addrs, ",")
	if !ok || name == "" || addr == "" || statusAddr == "" {
		return NodeConfig{}, fmt.Errorf("cluster: node spec %q (want name=addr,statusAddr)", spec)
	}
	return NodeConfig{Name: name, Addr: addr, StatusAddr: statusAddr}, nil
}

// AddNode joins a node to the live cluster: start probing it, wait for it
// to become available, move the arcs it gains (with their flow state)
// from the current owners, then publish the new ring. On failure the
// cluster is left exactly as it was.
func (r *Router) AddNode(cfg NodeConfig) error {
	if cfg.Name == "" || cfg.Addr == "" || cfg.StatusAddr == "" {
		return fmt.Errorf("cluster: node %+v needs name, addr, and status addr", cfg)
	}
	r.member.RLock()
	_, exists := r.ring.nodes[cfg.Name]
	r.member.RUnlock()
	if exists {
		return fmt.Errorf("%w: %q", ErrNodeExists, cfg.Name)
	}
	if err := r.probes.addNode(cfg, true); err != nil {
		return err
	}
	deadline := time.Now().Add(r.adminTimeout())
	// Wait for availability before taking the gate: a node that never
	// comes up must not stall routing for the whole admin timeout.
	if err := r.awaitAvailable(cfg.Name, deadline); err != nil {
		r.probes.removeNode(cfg.Name)
		return fmt.Errorf("cluster: add %s: %w", cfg.Name, err)
	}

	r.member.Lock()
	defer r.member.Unlock()
	after := r.ring.Clone()
	if err := after.Add(cfg.Name); err != nil {
		r.probes.removeNode(cfg.Name)
		return err
	}
	r.senders[cfg.Name] = r.newSender(cfg.Name)
	if err := r.migrateArcs(ArcsMoved(r.ring, after), deadline); err != nil {
		delete(r.senders, cfg.Name)
		r.probes.removeNode(cfg.Name)
		return fmt.Errorf("cluster: add %s: %w", cfg.Name, err)
	}
	r.ring = after
	r.mu.Lock()
	r.nodesAdded++
	r.mu.Unlock()
	return nil
}

// RemoveNode removes a node from the live cluster. A live node's flow
// state migrates to the nodes gaining its arcs first — and its journal
// is dropped, because replaying packets whose effects just moved would
// double-count them. A dead node's arcs fall to its successors with no
// state to export (counted in MigrationsSkipped), and its journal is
// replayed through the new ring with fresh sequences so its unacked
// packets are not lost with it. Removing an unknown node is a no-op;
// removing the last node is refused.
func (r *Router) RemoveNode(name string) error {
	r.member.Lock()
	defer r.member.Unlock()
	if _, ok := r.ring.nodes[name]; !ok {
		return nil
	}
	if r.ring.Len() == 1 {
		return fmt.Errorf("cluster: refusing to remove the last node %q", name)
	}
	after := r.ring.Clone()
	after.Remove(name)
	deadline := time.Now().Add(r.adminTimeout())
	h, _ := r.probes.snapshot(name)
	live := h.Available()
	s := r.senders[name]
	if live {
		if err := r.migrateArcs(ArcsMoved(r.ring, after), deadline); err != nil {
			return fmt.Errorf("cluster: remove %s: %w", name, err)
		}
		if s != nil {
			s.mu.Lock()
			s.journal = nil
			s.pendingReplay = false
			s.mu.Unlock()
		}
	} else {
		r.mu.Lock()
		r.migrationsSkipped++
		r.mu.Unlock()
	}
	r.ring = after
	delete(r.senders, name)
	r.probes.removeNode(name)
	var orphans []journalEntry
	if s != nil {
		s.mu.Lock()
		orphans = s.journal
		s.journal = nil
		s.mu.Unlock()
		s.client.Close()
	}
	if !live && len(orphans) > 0 {
		r.replayAcross(orphans)
	}
	r.mu.Lock()
	r.nodesRemoved++
	r.mu.Unlock()
	return nil
}

// awaitAvailable blocks until the node's probe reports it available.
func (r *Router) awaitAvailable(name string, deadline time.Time) error {
	for {
		ch := r.probes.changeCh()
		h, ok := r.probes.snapshot(name)
		if ok && h.Available() {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			err := fmt.Errorf("node %q not available within the admin timeout", name)
			if ok && h.LastErr != nil {
				err = fmt.Errorf("%w (last probe: %v)", err, h.LastErr)
			}
			return err
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		case <-r.force:
			t.Stop()
			return errors.New("router draining")
		}
	}
}

func (r *Router) adminTimeout() time.Duration {
	if r.cfg.AdminTimeout <= 0 {
		return 10 * time.Second
	}
	return r.cfg.AdminTimeout
}

// migrateArcs moves the flow state behind every moved arc from its losing
// node to its gaining node, grouped per (loser, gainer) pair so each pair
// costs one EXPORT/IMPORT round trip. Called with the membership gate
// held exclusively.
func (r *Router) migrateArcs(moved []MovedArc, deadline time.Time) error {
	type pair struct{ from, to string }
	groups := make(map[pair][]MovedArc)
	var order []pair
	for _, a := range moved {
		p := pair{a.From, a.To}
		if _, ok := groups[p]; !ok {
			order = append(order, p)
		}
		groups[p] = append(groups[p], a)
	}
	for _, p := range order {
		if err := r.migratePair(p.from, p.to, groups[p], deadline); err != nil {
			return err
		}
	}
	return nil
}

// migratePair quiesces the loser (waits until it has consumed everything
// the router delivered), exports the moved ranges, and imports them into
// the gainer. An import failure rolls the blob back into the loser so the
// flows stay somewhere.
func (r *Router) migratePair(from, to string, arcs []MovedArc, deadline time.Time) error {
	fromH, ok := r.probes.snapshot(from)
	if !ok || !fromH.Available() {
		// Loser gone or down: nothing exportable; the arcs move cold.
		r.mu.Lock()
		r.migrationsSkipped++
		r.mu.Unlock()
		return nil
	}
	toH, ok := r.probes.snapshot(to)
	if !ok {
		return fmt.Errorf("unknown migration target %q", to)
	}
	if s := r.senders[from]; s != nil {
		s.mu.Lock()
		want := s.lastDelivered
		s.mu.Unlock()
		if err := awaitSeen(fromH.Config.StatusAddr, want, r.cfg.Probe.timeout(), deadline); err != nil {
			return fmt.Errorf("quiesce %s: %w", from, err)
		}
	}
	frame, err := exportFlows(fromH.Config.StatusAddr, rangeSpec(arcs))
	if err != nil {
		return fmt.Errorf("export from %s: %w", from, err)
	}
	n, err := importFlows(toH.Config.StatusAddr, frame)
	if err != nil {
		if _, rerr := importFlows(fromH.Config.StatusAddr, frame); rerr != nil {
			err = errors.Join(err, fmt.Errorf("rollback into %s: %w", from, rerr))
		}
		return fmt.Errorf("import into %s: %w", to, err)
	}
	r.mu.Lock()
	r.migratedFlows += n
	r.mu.Unlock()
	return nil
}

// awaitSeen polls a node's STATUS line until its delivery-sequence
// watermark reaches want — i.e. every packet the router delivered has
// been counted into the node's state.
func awaitSeen(statusAddr string, want uint64, probeTimeout time.Duration, deadline time.Time) error {
	for {
		ns, err := ProbeStatus(statusAddr, probeTimeout)
		if err == nil && ns.SeenSeq >= want {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("watermark wait: %w", err)
			}
			return fmt.Errorf("watermark %d short of %d at the admin timeout", ns.SeenSeq, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rangeSpec renders moved arcs as the EXPORT verb's inclusive hex ranges.
func rangeSpec(arcs []MovedArc) string {
	var b strings.Builder
	for i, a := range arcs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%x-%x", a.Lo, a.Hi)
	}
	return b.String()
}

// exportFlows asks a node's status listener for the flows in the given
// ranges, returning the opaque KindMigration frame (CRC-checked by the
// importing node).
func exportFlows(statusAddr, spec string) ([]byte, error) {
	c, err := net.DialTimeout("tcp", statusAddr, migrationIOTimeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(migrationIOTimeout))
	if _, err := fmt.Fprintf(c, "EXPORT %s\n", spec); err != nil {
		return nil, err
	}
	br := bufio.NewReader(c)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != "BLOB" {
		return nil, fmt.Errorf("export reply %q", strings.TrimSpace(line))
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("export blob length %q", fields[1])
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(br, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

// importFlows hands a migration frame to a node's status listener and
// returns how many flows landed.
func importFlows(statusAddr string, frame []byte) (int, error) {
	c, err := net.DialTimeout("tcp", statusAddr, migrationIOTimeout)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(migrationIOTimeout))
	if _, err := fmt.Fprintf(c, "IMPORT %d\n", len(frame)); err != nil {
		return 0, err
	}
	if _, err := c.Write(frame); err != nil {
		return 0, err
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(line)
	if len(fields) == 2 && fields[0] == "OK" {
		if _, v, ok := strings.Cut(fields[1], "="); ok {
			if n, err := strconv.Atoi(v); err == nil {
				return n, nil
			}
		}
	}
	return 0, fmt.Errorf("import reply %q", strings.TrimSpace(line))
}

// ListNodes returns the router's view of every probed node, sorted by
// name, plus whether each is on the ring.
func (r *Router) ListNodes() []NodeHealth {
	health := r.probes.snapshotAll()
	names := make([]string, 0, len(health))
	for n := range health {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]NodeHealth, 0, len(names))
	for _, n := range names {
		out = append(out, health[n])
	}
	return out
}

// serveStatusConn handles one status connection: an optional command
// line, defaulting to the cluster dump (the legacy probe path).
func (r *Router) serveStatusConn(c net.Conn) {
	defer c.Close()
	_ = c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	br := bufio.NewReader(c)
	line, err := br.ReadString('\n')
	// ADD blocks on availability plus a migration; give it room.
	_ = c.SetWriteDeadline(time.Now().Add(r.adminTimeout() + migrationIOTimeout))
	fields := strings.Fields(line)
	if err != nil || len(fields) == 0 || strings.EqualFold(fields[0], "STATUS") {
		_, _ = c.Write([]byte(r.StatusText()))
		return
	}
	switch strings.ToUpper(fields[0]) {
	case "ADD":
		if len(fields) != 2 {
			fmt.Fprintf(c, "ERR ADD wants name=addr,statusAddr\n")
			return
		}
		cfg, err := ParseNodeSpec(fields[1])
		if err == nil {
			err = r.AddNode(cfg)
		}
		if err != nil {
			fmt.Fprintf(c, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(c, "OK added %s\n", cfg.Name)
	case "REMOVE":
		if len(fields) != 2 {
			fmt.Fprintf(c, "ERR REMOVE wants a node name\n")
			return
		}
		if err := r.RemoveNode(fields[1]); err != nil {
			fmt.Fprintf(c, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(c, "OK removed %s\n", fields[1])
	case "METRICS":
		blob, err := json.Marshal(r.ClusterMetrics())
		if err != nil {
			fmt.Fprintf(c, "ERR metrics: %v\n", err)
			return
		}
		_, _ = c.Write(append(blob, '\n'))
	case "LIST":
		r.member.RLock()
		onRing := make(map[string]bool, r.ring.Len())
		for _, n := range r.ring.Nodes() {
			onRing[n] = true
		}
		r.member.RUnlock()
		nodes := r.ListNodes()
		for _, h := range nodes {
			fmt.Fprintf(c, "NODE %s addr=%s status_addr=%s ring=%t available=%t\n",
				h.Config.Name, h.Config.Addr, h.Config.StatusAddr,
				onRing[h.Config.Name], h.Available())
		}
		fmt.Fprintf(c, "OK %d nodes\n", len(nodes))
	default:
		fmt.Fprintf(c, "ERR unknown command %q\n", fields[0])
	}
}

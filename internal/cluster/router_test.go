package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/flow"
	"iustitia/internal/ingest"
	"iustitia/internal/packet"
)

// pureClassifier labels deterministically from the buffer's first byte,
// so networked, clustered, and in-process replays are comparable verdict
// by verdict.
func pureClassifier() flow.Classifier {
	return flow.ClassifierFunc(func(payload []byte) (corpus.Class, error) {
		return corpus.Class(int(payload[0]) % corpus.NumClasses), nil
	})
}

const testShards = 2

func newTestEngine(t *testing.T) *flow.ParallelEngine {
	t.Helper()
	pe, err := flow.NewParallelEngine(flow.EngineConfig{
		BufferSize: 256,
		Classifier: pureClassifier(),
	}, testShards, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func listenLocal(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// testNode is one in-process serve instance under the router.
type testNode struct {
	cfg    NodeConfig
	srv    *ingest.Server
	engine *flow.ParallelEngine
}

// startNode brings up an ingest server with a status listener under the
// given cluster name, optionally with an engine resumed from a
// checkpoint.
func startNode(t *testing.T, name string, engine *flow.ParallelEngine, onCheckpoint func([]byte)) *testNode {
	t.Helper()
	if engine == nil {
		engine = newTestEngine(t)
	}
	data, status := listenLocal(t), listenLocal(t)
	srv, err := ingest.NewServer(ingest.Config{
		Engine:            engine,
		Listeners:         []net.Listener{data},
		StatusListener:    status,
		Workers:           2,
		NodeName:          name,
		OnFinalCheckpoint: onCheckpoint,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return &testNode{
		cfg:    NodeConfig{Name: name, Addr: data.Addr().String(), StatusAddr: status.Addr().String()},
		srv:    srv,
		engine: engine,
	}
}

func (n *testNode) drain(t *testing.T) ingest.Stats {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain %s: %v", n.cfg.Name, err)
	}
	return n.srv.Stats()
}

// startRouter builds and starts a router over the nodes, registering
// cleanup.
func startRouter(t *testing.T, cfg RouterConfig, nodes ...*testNode) (*Router, string) {
	t.Helper()
	for _, n := range nodes {
		cfg.Nodes = append(cfg.Nodes, n.cfg)
	}
	l := listenLocal(t)
	cfg.Listeners = []net.Listener{l}
	if cfg.Probe.Interval == 0 {
		cfg.Probe = testProbeConfig()
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	return r, l.Addr().String()
}

func drainRouter(t *testing.T, r *Router) RouterStats {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("router drain: %v", err)
	}
	return r.Stats()
}

// waitAvailable blocks until the router's probes see every node healthy.
func waitAvailable(t *testing.T, r *Router, names ...string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, name := range names {
		for {
			h, ok := r.Health(name)
			if ok && h.Available() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became available: %+v", name, h)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func testTrace(t *testing.T, flows int, seed int64) *packet.Trace {
	t.Helper()
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = flows
	cfg.Duration = 5 * time.Second
	cfg.MaxFlowBytes = 2 << 10
	cfg.Seed = seed
	trace, err := packet.Generate(cfg, corpus.NewGenerator(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// streamTrace replays a trace through the router's framed-packet
// endpoint.
func streamTrace(t *testing.T, addr string, trace *packet.Trace) {
	t.Helper()
	cl, err := ingest.NewClient(ingest.ClientConfig{
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := range trace.Packets {
		if err := cl.Send(&trace.Packets[i]); err != nil {
			t.Fatalf("send packet %d: %v", i, err)
		}
	}
}

// replayReference replays traces sequentially into a fresh engine — the
// single-node ground truth the cluster must match in aggregate.
func replayReference(t *testing.T, traces ...*packet.Trace) *flow.ParallelEngine {
	t.Helper()
	ref := newTestEngine(t)
	maxSeen := time.Duration(0)
	for _, trace := range traces {
		for i := range trace.Packets {
			if trace.Packets[i].Time > maxSeen {
				maxSeen = trace.Packets[i].Time
			}
			if _, err := ref.Process(&trace.Packets[i]); err != nil {
				t.Fatalf("reference Process: %v", err)
			}
		}
	}
	if _, err := ref.FlushAll(maxSeen + time.Minute); err != nil {
		t.Fatalf("reference FlushAll: %v", err)
	}
	return ref
}

// assertRouterConservation checks the router-level law.
func assertRouterConservation(t *testing.T, st RouterStats) {
	t.Helper()
	if got := st.Forwarded + st.Quarantined + st.Shed; got != st.Received {
		t.Errorf("router conservation violated: Forwarded(%d)+Quarantined(%d)+Shed(%d) = %d, want Received %d",
			st.Forwarded, st.Quarantined, st.Shed, got, st.Received)
	}
}

// assertClusterMatchesReference checks aggregate verdict equality and
// per-flow labels: every flow labelled on exactly one node, identically
// to the single-engine reference.
func assertClusterMatchesReference(t *testing.T, ref *flow.ParallelEngine, traces []*packet.Trace, nodes ...*testNode) {
	t.Helper()
	rs := ref.Stats()
	var classified, admitted, dropped, fallback, shed int
	for _, n := range nodes {
		es := n.engine.Stats()
		classified += es.Classified
		admitted += es.Admitted
		dropped += es.Dropped
		fallback += es.Fallback
		shed += es.Shed
	}
	if classified != rs.Classified || admitted != rs.Admitted || dropped != rs.Dropped ||
		fallback != rs.Fallback || shed != rs.Shed {
		t.Errorf("aggregate engine stats diverge from reference:\n  cluster: classified=%d admitted=%d dropped=%d fallback=%d shed=%d\n  reference: classified=%d admitted=%d dropped=%d fallback=%d shed=%d",
			classified, admitted, dropped, fallback, shed,
			rs.Classified, rs.Admitted, rs.Dropped, rs.Fallback, rs.Shed)
	}
	for _, trace := range traces {
		for tuple := range trace.Flows {
			wantLabel, wantOK := ref.Label(tuple)
			found := 0
			for _, n := range nodes {
				// RecordedLabel, not Label: a successor node's verdicts
				// for pre-handoff flows live only in its restored CDB.
				if label, ok := n.engine.RecordedLabel(tuple); ok {
					found++
					if !wantOK || label != wantLabel {
						t.Errorf("flow %v: node %s label %v, reference (%v,%v)", tuple, n.cfg.Name, label, wantLabel, wantOK)
					}
				}
			}
			if wantOK && found != 1 {
				t.Errorf("flow %v labelled on %d nodes, want exactly 1", tuple, found)
			}
		}
	}
}

// TestRouterSpreadsAndConserves is the base case: two healthy nodes, a
// full trace through the router, conservation at every level, and
// cluster verdicts identical to a single-engine replay.
func TestRouterSpreadsAndConserves(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	b := startNode(t, "b", nil, nil)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyShed}, a, b)

	waitAvailable(t, r, "a", "b")
	trace := testTrace(t, 60, 11)
	streamTrace(t, addr, trace)

	waitFor(t, "all frames to land on nodes", func() bool {
		return a.srv.Stats().Received+b.srv.Stats().Received == len(trace.Packets)
	})

	// The federated law over live probe snapshots must balance too.
	waitFor(t, "probe snapshots to catch up", func() bool {
		cs := r.ClusterStats()
		return cs.SumReceived == len(trace.Packets) && cs.Gap() == 0
	})

	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Shed != 0 || rst.Quarantined != 0 || rst.Rerouted != 0 {
		t.Errorf("clean run shed=%d quarantined=%d rerouted=%d, want all zero", rst.Shed, rst.Quarantined, rst.Rerouted)
	}
	if rst.Forwarded != len(trace.Packets) {
		t.Errorf("forwarded %d, want %d", rst.Forwarded, len(trace.Packets))
	}
	if rst.PerNode["a"] == 0 || rst.PerNode["b"] == 0 {
		t.Errorf("traffic not spread: per-node %v", rst.PerNode)
	}
	if rst.PerNode["a"]+rst.PerNode["b"] != rst.Forwarded {
		t.Errorf("per-node counts %v do not sum to forwarded %d", rst.PerNode, rst.Forwarded)
	}

	sa, sb := a.drain(t), b.drain(t)
	if got := sa.Received + sb.Received; got != rst.Forwarded {
		t.Errorf("nodes received %d, router forwarded %d", got, rst.Forwarded)
	}
	for _, st := range []ingest.Stats{sa, sb} {
		if st.Admitted+st.Quarantined+st.Shed != st.Received {
			t.Errorf("node conservation violated: %+v", st)
		}
	}

	ref := replayReference(t, trace)
	assertClusterMatchesReference(t, ref, []*packet.Trace{trace}, a, b)
}

// TestRouterStatusDocument checks the status listener serves the CLUSTER
// line and relayed per-node STATUS lines.
func TestRouterStatusDocument(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	b := startNode(t, "b", nil, nil)
	status := listenLocal(t)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyRequeue, StatusListener: status}, a, b)

	waitAvailable(t, r, "a", "b")
	trace := testTrace(t, 20, 12)
	streamTrace(t, addr, trace)
	waitFor(t, "frames to land", func() bool {
		return a.srv.Stats().Received+b.srv.Stats().Received == len(trace.Packets)
	})
	waitFor(t, "probes to catch up", func() bool {
		return r.ClusterStats().SumReceived == len(trace.Packets)
	})

	cs, err := ProbeCluster(status.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cluster.Nodes != 2 || cs.Cluster.Available != 2 {
		t.Errorf("cluster line: %+v, want 2 nodes available", cs.Cluster)
	}
	if cs.Cluster.SumReceived != len(trace.Packets) || cs.Cluster.Gap != 0 {
		t.Errorf("cluster line sums: %+v, want sum_received=%d gap=0", cs.Cluster, len(trace.Packets))
	}
	if len(cs.Nodes) != 2 {
		t.Errorf("relayed %d node STATUS lines, want 2", len(cs.Nodes))
	}

	drainRouter(t, r)
	a.drain(t)
	b.drain(t)
}

// TestRouterQuarantinesGarbage sends junk bytes on a raw connection: the
// router's frame reader must quarantine and keep the law balanced.
func TestRouterQuarantinesGarbage(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyShed}, a)
	waitAvailable(t, r, "a")

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 256)
	for i := range junk {
		junk[i] = byte(i*7 + 1)
	}
	if _, err := c.Write(junk); err != nil {
		t.Fatal(err)
	}
	c.Close()

	waitFor(t, "quarantine counted", func() bool { return r.Stats().Quarantined > 0 })
	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Forwarded != 0 {
		t.Errorf("junk produced %d forwarded packets", rst.Forwarded)
	}
	a.drain(t)
}

// TestRouterShedPolicy pins PolicyShed: with the only node stopped,
// packets are shed — counted, conserved, and never blocking.
func TestRouterShedPolicy(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyShed}, a)
	waitAvailable(t, r, "a")
	a.drain(t) // node gone; probes will notice

	waitFor(t, "node marked unavailable", func() bool {
		h, _ := r.Health("a")
		return !h.Available()
	})
	trace := testTrace(t, 10, 13)
	streamTrace(t, addr, trace)

	waitFor(t, "packets shed", func() bool { return r.Stats().Shed == len(trace.Packets) })
	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Forwarded != 0 {
		t.Errorf("forwarded %d to a stopped node", rst.Forwarded)
	}
}

// TestRouterNextPolicyFailsOver pins PolicyNext: when the owner is down,
// packets reroute to the next ring candidate and are counted Rerouted.
func TestRouterNextPolicyFailsOver(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	b := startNode(t, "b", nil, nil)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyNext}, a, b)
	waitAvailable(t, r, "a", "b")

	b.drain(t) // take b down; its arcs fail over to a
	waitFor(t, "b marked unavailable", func() bool {
		h, _ := r.Health("b")
		return !h.Available()
	})

	trace := testTrace(t, 40, 14)
	streamTrace(t, addr, trace)
	waitFor(t, "all frames on node a", func() bool {
		return a.srv.Stats().Received == len(trace.Packets)
	})

	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Shed != 0 {
		t.Errorf("shed %d with a healthy failover target", rst.Shed)
	}
	if rst.Rerouted == 0 {
		t.Error("no packets counted Rerouted though the owner of some flows was down")
	}
	if rst.PerNode["b"] != 0 {
		t.Errorf("forwarded %d packets to the stopped node", rst.PerNode["b"])
	}
	a.drain(t)
}

// TestRouterRequeueWaitsForOwner pins PolicyRequeue: packets for a
// temporarily absent owner wait (stalling, not shedding) and deliver once
// the node returns — the property checkpoint handoff is built on.
func TestRouterRequeueWaitsForOwner(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	b := startNode(t, "b", nil, nil)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyRequeue, RequeueTimeout: 30 * time.Second}, a, b)
	waitAvailable(t, r, "a", "b")

	// Drain b and restart it on the SAME addresses with a fresh engine,
	// as a rolling restart would.
	dataAddr, statusAddr := b.cfg.Addr, b.cfg.StatusAddr
	b.drain(t)
	waitFor(t, "b marked unavailable", func() bool {
		h, _ := r.Health("b")
		return !h.Available()
	})

	trace := testTrace(t, 30, 15)
	done := make(chan struct{})
	go func() { defer close(done); streamTrace(t, addr, trace) }()

	// Wait until at least one packet is held for b.
	waitFor(t, "a packet to requeue", func() bool { return r.Stats().Requeued > 0 })

	b2 := restartNodeAt(t, "b", dataAddr, statusAddr, nil, nil)
	<-done
	waitFor(t, "all frames to land", func() bool {
		return a.srv.Stats().Received+b2.srv.Stats().Received == len(trace.Packets)
	})

	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Shed != 0 || rst.Rerouted != 0 {
		t.Errorf("requeue run shed=%d rerouted=%d, want zero (flow affinity preserved)", rst.Shed, rst.Rerouted)
	}
	if rst.Requeued == 0 {
		t.Error("no wait episodes counted")
	}
	a.drain(t)
	b2.drain(t)
}

// restartNodeAt brings up a successor instance on explicit addresses
// (the same ones its predecessor used, unless the test moves it).
func restartNodeAt(t *testing.T, name, dataAddr, statusAddr string, engine *flow.ParallelEngine, onCheckpoint func([]byte)) *testNode {
	t.Helper()
	if engine == nil {
		engine = newTestEngine(t)
	}
	var data, status net.Listener
	// The predecessor's sockets may take a moment to fully release even
	// with SO_REUSEADDR; retry briefly.
	waitFor(t, "rebind "+dataAddr, func() bool {
		var err error
		data, err = net.Listen("tcp", dataAddr)
		return err == nil
	})
	waitFor(t, "rebind "+statusAddr, func() bool {
		var err error
		status, err = net.Listen("tcp", statusAddr)
		return err == nil
	})
	srv, err := ingest.NewServer(ingest.Config{
		Engine:            engine,
		Listeners:         []net.Listener{data},
		StatusListener:    status,
		Workers:           2,
		NodeName:          name,
		OnFinalCheckpoint: onCheckpoint,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return &testNode{
		cfg:    NodeConfig{Name: name, Addr: dataAddr, StatusAddr: statusAddr},
		srv:    srv,
		engine: engine,
	}
}

// TestParseRoutePolicy pins the flag round trip.
func TestParseRoutePolicy(t *testing.T) {
	for _, p := range []RoutePolicy{PolicyNext, PolicyShed, PolicyRequeue} {
		got, err := ParseRoutePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParseRoutePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestNewRouterValidation pins config validation.
func TestNewRouterValidation(t *testing.T) {
	l := listenLocal(t)
	defer l.Close()
	node := NodeConfig{Name: "a", Addr: "x", StatusAddr: "y"}
	cases := []RouterConfig{
		{},
		{Nodes: []NodeConfig{node}},
		{Nodes: []NodeConfig{{Name: "a"}}, Listeners: []net.Listener{l}},
		{Nodes: []NodeConfig{node, node}, Listeners: []net.Listener{l}},
		{Nodes: []NodeConfig{node}, Listeners: []net.Listener{l}, Policy: RoutePolicy(9)},
	}
	for i, cfg := range cases {
		if _, err := NewRouter(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

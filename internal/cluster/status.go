package cluster

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"iustitia/internal/ingest"
)

// ClusterLine is the parsed machine-readable CLUSTER summary a router
// emits: its own frame counters plus the federated sums over node
// snapshots.
type ClusterLine struct {
	State            ingest.State
	Nodes, Available int

	Received, Forwarded, Quarantined, Shed int
	Rerouted, Requeued, SendFailures       int

	SumReceived, SumAdmitted, SumQuarantined, SumShed int
	SumClassified                                     int
	// Gap is ΣReceived - (ΣAdmitted + ΣQuarantined + ΣShed) as computed
	// by the router; zero when the cluster-wide law holds.
	Gap int
	// Violations counts per-node snapshots whose own law did not balance.
	Violations int

	// JournalDepth is the router's current count of sent-but-unacked
	// packets across replay journals; SumDegraded, SumSwaps, and
	// SumRollbacks federate the nodes' ops counters. All zero when the
	// line came from a router predating these keys.
	JournalDepth int
	SumDegraded  int
	SumSwaps     int
	SumRollbacks int
}

// ClusterSnapshot is one parsed cluster status document: the CLUSTER
// line plus every relayed per-node STATUS line.
type ClusterSnapshot struct {
	Cluster ClusterLine
	Nodes   []ingest.NodeStatus
}

// ParseClusterDoc extracts the CLUSTER line and the relayed STATUS lines
// from a status document, ignoring prose and unknown keys so the format
// can grow fields without breaking old parsers.
func ParseClusterDoc(doc string) (ClusterSnapshot, error) {
	var snap ClusterSnapshot
	foundCluster := false
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, clusterLinePrefix):
			if foundCluster {
				return snap, fmt.Errorf("cluster: multiple CLUSTER lines in document")
			}
			cl, err := parseClusterLine(line)
			if err != nil {
				return snap, err
			}
			snap.Cluster = cl
			foundCluster = true
		case strings.HasPrefix(line, "STATUS "):
			st, err := ingest.ParseStatusLine(line)
			if err != nil {
				return snap, fmt.Errorf("cluster: relayed status line: %w", err)
			}
			snap.Nodes = append(snap.Nodes, st)
		}
	}
	if !foundCluster {
		return snap, fmt.Errorf("cluster: no CLUSTER line in document")
	}
	return snap, nil
}

// parseClusterLine parses one CLUSTER k=v line.
func parseClusterLine(line string) (ClusterLine, error) {
	var cl ClusterLine
	sawState := false
	for _, field := range strings.Fields(strings.TrimPrefix(line, clusterLinePrefix)) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return cl, fmt.Errorf("cluster: malformed field %q", field)
		}
		if key == "state" {
			st, err := ingest.ParseState(val)
			if err != nil {
				return cl, err
			}
			cl.State = st
			sawState = true
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			// Unknown non-numeric keys are tolerated, numeric keys must
			// parse.
			if dst := clusterIntField(&cl, key); dst != nil {
				return cl, fmt.Errorf("cluster: field %s=%q: %w", key, val, err)
			}
			continue
		}
		if dst := clusterIntField(&cl, key); dst != nil {
			*dst = n
		}
	}
	if !sawState {
		return cl, fmt.Errorf("cluster: CLUSTER line missing state")
	}
	return cl, nil
}

// clusterIntField maps a CLUSTER key to its struct field, nil for unknown
// keys.
func clusterIntField(cl *ClusterLine, key string) *int {
	switch key {
	case "nodes":
		return &cl.Nodes
	case "available":
		return &cl.Available
	case "received":
		return &cl.Received
	case "forwarded":
		return &cl.Forwarded
	case "quarantined":
		return &cl.Quarantined
	case "shed":
		return &cl.Shed
	case "rerouted":
		return &cl.Rerouted
	case "requeued":
		return &cl.Requeued
	case "send_failures":
		return &cl.SendFailures
	case "sum_received":
		return &cl.SumReceived
	case "sum_admitted":
		return &cl.SumAdmitted
	case "sum_quarantined":
		return &cl.SumQuarantined
	case "sum_shed":
		return &cl.SumShed
	case "sum_classified":
		return &cl.SumClassified
	case "conservation_gap":
		return &cl.Gap
	case "violations":
		return &cl.Violations
	case "journal_depth":
		return &cl.JournalDepth
	case "sum_degraded":
		return &cl.SumDegraded
	case "sum_swaps":
		return &cl.SumSwaps
	case "sum_rollbacks":
		return &cl.SumRollbacks
	default:
		return nil
	}
}

// ProbeCluster fetches and parses one cluster status document from a
// router's status listener.
func ProbeCluster(statusAddr string, timeout time.Duration) (ClusterSnapshot, error) {
	c, err := net.DialTimeout("tcp", statusAddr, timeout)
	if err != nil {
		return ClusterSnapshot{}, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(timeout))
	doc, err := io.ReadAll(c)
	if err != nil {
		return ClusterSnapshot{}, err
	}
	return ParseClusterDoc(string(doc))
}

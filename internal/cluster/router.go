package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"iustitia/internal/ingest"
	"iustitia/internal/packet"
)

// RoutePolicy selects what the router does with a packet whose owner node
// is unavailable (unreachable, degraded, draining, or stopped).
type RoutePolicy int

const (
	// PolicyNext reroutes the packet to the next available node on the
	// ring (counted in Rerouted). The flow's per-node state splits across
	// nodes, so verdicts for rerouted flows may diverge from a
	// single-node replay — availability bought with accuracy.
	PolicyNext RoutePolicy = iota
	// PolicyShed drops the packet and counts it in Shed: strict flow
	// affinity, no cross-node state, bounded memory.
	PolicyShed
	// PolicyRequeue holds the packet (stalling its connection) until the
	// owner is available again — the rolling-restart policy: the drained
	// node's successor resumes its checkpoint and the held packets land
	// on the same per-flow state, losing nothing. After RequeueTimeout
	// the packet falls to the next available node (or is shed when none
	// is).
	PolicyRequeue
)

// String names the policy for flags and logs.
func (p RoutePolicy) String() string {
	switch p {
	case PolicyNext:
		return "next"
	case PolicyShed:
		return "shed"
	case PolicyRequeue:
		return "requeue"
	default:
		return fmt.Sprintf("RoutePolicy(%d)", int(p))
	}
}

// ParseRoutePolicy maps a flag value to its policy.
func ParseRoutePolicy(s string) (RoutePolicy, error) {
	switch s {
	case "next":
		return PolicyNext, nil
	case "shed":
		return PolicyShed, nil
	case "requeue":
		return PolicyRequeue, nil
	default:
		return 0, fmt.Errorf("cluster: unknown route policy %q (want next|shed|requeue)", s)
	}
}

// RouterConfig assembles a cluster router.
type RouterConfig struct {
	// Nodes lists the serve instances; at least one is required, names
	// must be unique.
	Nodes []NodeConfig
	// Listeners accept framed-packet client connections. At least one is
	// required.
	Listeners []net.Listener
	// StatusListener, when non-nil, serves the cluster status document
	// (router counters, per-node health, the conservation law, and the
	// machine-readable CLUSTER line) one dump per connection.
	StatusListener net.Listener
	// Replicas is the virtual-node count per node (<= 0 selects
	// DefaultReplicas).
	Replicas int
	// Policy selects the behaviour when a packet's owner is unavailable.
	Policy RoutePolicy
	// RequeueTimeout bounds how long one packet waits for a node before
	// falling through (PolicyRequeue: for its owner; any policy: for any
	// available node). Zero waits until the router itself drains.
	RequeueTimeout time.Duration
	// Probe tunes health polling.
	Probe ProbeConfig
	// DialTimeout bounds one upstream dial. Zero defaults to 2s.
	DialTimeout time.Duration
	// SendRetries bounds one ingest.Client's consecutive delivery
	// attempts before the router treats the node as down and re-routes.
	// Zero defaults to 3; negative means a single attempt.
	SendRetries int
	// SendBackoffBase / SendBackoffMax tune the client's reconnect
	// backoff (exponential with jitter). Zeroes take the client
	// defaults.
	SendBackoffBase time.Duration
	SendBackoffMax  time.Duration
	// Seed drives client reconnect jitter.
	Seed int64
	// MaxFrame bounds the payload length a frame header may declare
	// (<= 0 selects ingest.DefaultMaxFrame).
	MaxFrame int
	// ReadTimeout / IdleTimeout are the per-connection deadlines, as on
	// the ingest server. Zero disables.
	ReadTimeout time.Duration
	IdleTimeout time.Duration
}

// RouterStats is a point-in-time summary of router activity. The frame
// counters obey the router-level conservation law
// Received == Forwarded + Quarantined + Shed.
type RouterStats struct {
	// State is the router lifecycle state (reusing the ingest FSM
	// vocabulary): healthy flips to degraded while any node is
	// unavailable.
	State ingest.State
	// ActiveConns and TotalConns count client connections.
	ActiveConns, TotalConns int
	// Received counts frame events read from clients: every valid frame
	// plus every quarantine event.
	Received int
	// Forwarded counts packets delivered to some node.
	Forwarded int
	// Quarantined counts malformed-frame events survived by resync.
	Quarantined int
	// Shed counts packets dropped by policy (owner unavailable under
	// PolicyShed, or no node available within RequeueTimeout / at drain).
	Shed int
	// Rerouted counts forwarded packets that went to a non-owner node.
	Rerouted int
	// Requeued counts wait episodes: packets that had to block for a
	// node to become available before being forwarded or shed.
	Requeued int
	// SendFailures counts upstream deliveries that exhausted the
	// client's retries (each marks the node unreachable and re-routes).
	SendFailures int
	// PerNode counts forwarded packets per node name.
	PerNode map[string]int
	// ConservationViolations counts probe snapshots whose per-node
	// transport law did not balance — always zero against healthy serve
	// instances.
	ConservationViolations int
}

// ClusterStats aggregates the last-known node snapshots under the
// cluster-wide conservation law.
type ClusterStats struct {
	// Nodes is the number of configured nodes; Available how many are
	// currently routable.
	Nodes, Available int
	// SumReceived etc. are sums over every node with a parsed snapshot.
	SumReceived, SumAdmitted, SumQuarantined, SumShed int
	// SumClassified and SumQueue aggregate the engine verdict counters.
	SumClassified int
	SumQueue      [3]int
}

// Gap returns ΣReceived - (ΣAdmitted + ΣQuarantined + ΣShed): zero when
// the cluster-wide conservation law holds.
func (cs ClusterStats) Gap() int {
	return cs.SumReceived - (cs.SumAdmitted + cs.SumQuarantined + cs.SumShed)
}

// Router spreads framed-packet connections across serve nodes by
// consistent hashing over flow IDs, with health-aware failover.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	probes *prober

	force     chan struct{} // closed at drain deadline: aborts waits
	forceOnce sync.Once
	done      chan struct{}
	watchStop chan struct{}

	readerWG sync.WaitGroup
	acceptWG sync.WaitGroup
	statusWG sync.WaitGroup
	watchWG  sync.WaitGroup

	mu           sync.Mutex
	conns        map[net.Conn]struct{}
	clients      map[string]map[*ingest.Client]struct{} // node → live clients
	totalConns   int
	received     int
	forwarded    int
	quarantined  int
	shed         int
	rerouted     int
	requeued     int
	sendFailures int
	perNode      map[string]int
	violations   int
	lifecycle    ingest.State
	started      bool
	shutdown     bool
	shutdownErr  error
}

// NewRouter validates cfg and builds a router. Call Start to begin
// accepting.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: at least one node is required")
	}
	if len(cfg.Listeners) == 0 {
		return nil, errors.New("cluster: at least one listener is required")
	}
	if cfg.Policy < PolicyNext || cfg.Policy > PolicyRequeue {
		return nil, fmt.Errorf("cluster: unknown route policy %d", int(cfg.Policy))
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.SendRetries == 0 {
		cfg.SendRetries = 3
	}
	ring := NewRing(cfg.Replicas)
	for _, n := range cfg.Nodes {
		if n.Name == "" || n.Addr == "" || n.StatusAddr == "" {
			return nil, fmt.Errorf("cluster: node %+v needs name, addr, and status addr", n)
		}
		if err := ring.Add(n.Name); err != nil {
			return nil, err
		}
	}
	r := &Router{
		cfg:       cfg,
		ring:      ring,
		probes:    newProber(cfg.Probe, cfg.Nodes),
		force:     make(chan struct{}),
		done:      make(chan struct{}),
		watchStop: make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		clients:   make(map[string]map[*ingest.Client]struct{}),
		perNode:   make(map[string]int),
		lifecycle: ingest.StateStarting,
	}
	return r, nil
}

// Start spawns the probers, accept loops, and status listener.
func (r *Router) Start() error {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return errors.New("cluster: router already started")
	}
	r.started = true
	r.lifecycle = ingest.StateHealthy
	r.mu.Unlock()

	r.probes.start()
	r.watchWG.Add(1)
	go r.watchHealth()
	for _, l := range r.cfg.Listeners {
		r.acceptWG.Add(1)
		go r.acceptLoop(l)
	}
	if r.cfg.StatusListener != nil {
		r.statusWG.Add(1)
		go r.statusLoop(r.cfg.StatusListener)
	}
	return nil
}

// UpdateNode redirects a ring name to a successor instance (checkpoint
// handoff): the node keeps its name — and therefore its hash arcs — but
// its ingest and status addresses move to the restarted process. Existing
// upstream connections to the old instance are closed.
func (r *Router) UpdateNode(cfg NodeConfig) error {
	if err := r.probes.updateNode(cfg); err != nil {
		return err
	}
	r.closeNodeClients(cfg.Name)
	return nil
}

// Health returns the router's current view of one node.
func (r *Router) Health(name string) (NodeHealth, bool) {
	return r.probes.snapshot(name)
}

// acceptLoop accepts client connections until its listener closes.
func (r *Router) acceptLoop(l net.Listener) {
	defer r.acceptWG.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		draining := r.shutdown
		if !draining {
			r.conns[c] = struct{}{}
			r.totalConns++
		}
		r.mu.Unlock()
		if draining {
			c.Close()
			continue
		}
		r.readerWG.Add(1)
		go r.serveConn(c)
	}
}

// routerConn applies the idle/read deadlines, mirroring the ingest
// server's frame-boundary semantics.
type routerConn struct {
	net.Conn
	idle, read time.Duration
	atBoundary bool
}

func (d *routerConn) Read(p []byte) (int, error) {
	timeout := d.read
	if d.atBoundary {
		timeout = d.idle
		d.atBoundary = false
	}
	if timeout > 0 {
		if err := d.Conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
	}
	return d.Conn.Read(p)
}

// serveConn reads frames off one client connection and routes each packet
// to its owner node. Packets of one connection are forwarded strictly in
// order, so per-flow order is preserved end to end.
func (r *Router) serveConn(c net.Conn) {
	defer r.readerWG.Done()
	clients := make(map[string]*ingest.Client)
	defer func() {
		c.Close()
		r.mu.Lock()
		delete(r.conns, c)
		for name, cl := range clients {
			delete(r.clients[name], cl)
		}
		r.mu.Unlock()
		for _, cl := range clients {
			cl.Close()
		}
	}()

	dc := &routerConn{Conn: c, idle: r.cfg.IdleTimeout, read: r.cfg.ReadTimeout}
	fr := ingest.NewFrameReader(dc, r.cfg.MaxFrame, func() {
		r.mu.Lock()
		r.received++
		r.quarantined++
		r.mu.Unlock()
	})
	for {
		dc.atBoundary = true
		pkt, err := fr.Next()
		if err != nil {
			return
		}
		r.mu.Lock()
		r.received++
		r.mu.Unlock()
		r.route(&pkt, clients)
	}
}

// clientFor returns (creating on first use) this connection's client for
// a node, registered so health transitions can close it.
func (r *Router) clientFor(name string, clients map[string]*ingest.Client) *ingest.Client {
	if cl, ok := clients[name]; ok {
		return cl
	}
	cl, _ := ingest.NewClient(ingest.ClientConfig{
		Dial: func() (net.Conn, error) {
			// Re-resolve on every dial: UpdateNode may have moved the
			// node to a successor address since the client was built.
			nh, ok := r.probes.snapshot(name)
			if !ok {
				return nil, fmt.Errorf("cluster: unknown node %q", name)
			}
			return net.DialTimeout("tcp", nh.Config.Addr, r.cfg.DialTimeout)
		},
		MaxRetries:  r.cfg.SendRetries,
		BackoffBase: r.cfg.SendBackoffBase,
		BackoffMax:  r.cfg.SendBackoffMax,
		Seed:        r.cfg.Seed,
	})
	clients[name] = cl
	r.mu.Lock()
	if r.clients[name] == nil {
		r.clients[name] = make(map[*ingest.Client]struct{})
	}
	r.clients[name][cl] = struct{}{}
	r.mu.Unlock()
	return cl
}

// watchHealth closes a node's upstream connections whenever the node
// leaves availability. This is what lets a draining node finish: its
// listeners are closed but established connections are read until EOF, so
// a router holding them open would pin the drain against its deadline.
// Closing on the available→unavailable edge gives the drain its EOFs;
// in-flight bytes are flushed first (close follows a whole-frame write),
// so nothing tears.
func (r *Router) watchHealth() {
	defer r.watchWG.Done()
	last := make(map[string]bool)
	for {
		ch := r.probes.changeCh()
		for name, h := range r.probes.snapshotAll() {
			avail := h.Available()
			if last[name] && !avail {
				r.closeNodeClients(name)
			}
			last[name] = avail
		}
		select {
		case <-ch:
		case <-r.watchStop:
			return
		}
	}
}

// closeNodeClients closes every live upstream connection to a node. The
// clients stay usable: their next Send redials (the fresh address, via
// the prober snapshot).
func (r *Router) closeNodeClients(name string) {
	r.mu.Lock()
	cls := make([]*ingest.Client, 0, len(r.clients[name]))
	for cl := range r.clients[name] {
		cls = append(cls, cl)
	}
	r.mu.Unlock()
	for _, cl := range cls {
		cl.Close()
	}
}

// route delivers one packet per the policy. Every packet entering here is
// accounted exactly once: Forwarded on delivery, Shed otherwise.
func (r *Router) route(pkt *packet.Packet, clients map[string]*ingest.Client) {
	point := PointOfTuple(pkt.Tuple)
	r.mu.Lock()
	candidates := r.ring.Candidates(point, r.ring.Len())
	r.mu.Unlock()
	if len(candidates) == 0 {
		r.countShed()
		return
	}
	owner := candidates[0]

	var deadline <-chan time.Time
	waited, expired := false, false
	for {
		health := r.probes.snapshotAll()
		target := ""
		rerouted := false
		if health[owner].Available() {
			target = owner
		} else {
			switch r.cfg.Policy {
			case PolicyShed:
				r.countShed()
				return
			case PolicyNext:
				for _, n := range candidates[1:] {
					if health[n].Available() {
						target, rerouted = n, true
						break
					}
				}
			case PolicyRequeue:
				// Hold for the owner; only a requeue timeout falls
				// through to the successor candidates (handled below).
			}
		}
		if target == "" && expired {
			// Requeue window exhausted: any available candidate, else shed.
			for _, n := range candidates {
				if health[n].Available() {
					target = n
					rerouted = n != owner
					break
				}
			}
			if target == "" {
				r.countShed()
				return
			}
		}
		if target != "" {
			err := r.clientFor(target, clients).Send(pkt)
			if err == nil {
				r.countForwarded(target, rerouted)
				return
			}
			r.mu.Lock()
			r.sendFailures++
			r.mu.Unlock()
			r.probes.markUnreachable(target, err)
			continue // re-route under the fresh health view
		}

		// No routable target yet: wait for a health change, the requeue
		// deadline, or the router's own drain force.
		if !waited {
			waited = true
			r.mu.Lock()
			r.requeued++
			r.mu.Unlock()
			if r.cfg.RequeueTimeout > 0 {
				t := time.NewTimer(r.cfg.RequeueTimeout)
				defer t.Stop()
				deadline = t.C
			}
		}
		ch := r.probes.changeCh()
		select {
		case <-ch:
		case <-deadline: // nil when no RequeueTimeout: never fires
			// One more pass: the expired branch picks any candidate or sheds.
			expired = true
			deadline = nil
		case <-r.force:
			r.countShed()
			return
		}
	}
}

func (r *Router) countForwarded(node string, rerouted bool) {
	r.mu.Lock()
	r.forwarded++
	r.perNode[node]++
	if rerouted {
		r.rerouted++
	}
	r.mu.Unlock()
}

func (r *Router) countShed() {
	r.mu.Lock()
	r.shed++
	r.mu.Unlock()
}

// Stats returns a snapshot of the router counters.
func (r *Router) Stats() RouterStats {
	health := r.probes.snapshotAll()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RouterStats{
		State:                  r.lifecycle,
		ActiveConns:            len(r.conns),
		TotalConns:             r.totalConns,
		Received:               r.received,
		Forwarded:              r.forwarded,
		Quarantined:            r.quarantined,
		Shed:                   r.shed,
		Rerouted:               r.rerouted,
		Requeued:               r.requeued,
		SendFailures:           r.sendFailures,
		PerNode:                make(map[string]int, len(r.perNode)),
		ConservationViolations: r.violations,
	}
	for n, c := range r.perNode {
		st.PerNode[n] = c
	}
	if st.State == ingest.StateHealthy {
		for _, h := range health {
			if !h.Available() {
				st.State = ingest.StateDegraded
				break
			}
		}
	}
	return st
}

// ClusterStats sums the last-known node snapshots and records any
// per-node conservation violation.
func (r *Router) ClusterStats() ClusterStats {
	health := r.probes.snapshotAll()
	var cs ClusterStats
	cs.Nodes = len(health)
	for _, h := range health {
		if h.Available() {
			cs.Available++
		}
		if h.LastSeen.IsZero() {
			continue
		}
		s := h.Status
		cs.SumReceived += s.Received
		cs.SumAdmitted += s.Admitted
		cs.SumQuarantined += s.Quarantined
		cs.SumShed += s.Shed
		cs.SumClassified += s.EngineClassified
		for i := range s.Queue {
			cs.SumQueue[i] += s.Queue[i]
		}
		if s.ConservationGap() != 0 {
			r.mu.Lock()
			r.violations++
			r.mu.Unlock()
		}
	}
	return cs
}

// Shutdown drains the router: stop accepting, let client connections
// finish (force-closing them and shedding waiting packets when ctx
// expires), close upstream clients, stop probing. Idempotent; concurrent
// calls share the first invocation's result.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		<-r.done
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.shutdownErr
	}
	r.shutdown = true
	r.lifecycle = ingest.StateDraining
	r.mu.Unlock()

	var errs []error
	for _, l := range r.cfg.Listeners {
		if err := l.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster: close listener: %w", err))
		}
	}
	r.acceptWG.Wait()

	readersDone := make(chan struct{})
	go func() { r.readerWG.Wait(); close(readersDone) }()
	select {
	case <-readersDone:
	case <-ctx.Done():
		errs = append(errs, fmt.Errorf("cluster: drain deadline: %w", ctx.Err()))
		r.forceOnce.Do(func() { close(r.force) })
		r.mu.Lock()
		for c := range r.conns {
			c.Close()
		}
		r.mu.Unlock()
		<-readersDone
	}

	close(r.watchStop)
	r.watchWG.Wait()
	r.probes.close()
	if r.cfg.StatusListener != nil {
		if err := r.cfg.StatusListener.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster: close status listener: %w", err))
		}
	}
	r.statusWG.Wait()

	r.mu.Lock()
	r.lifecycle = ingest.StateStopped
	err := errors.Join(errs...)
	r.shutdownErr = err
	r.mu.Unlock()
	close(r.done)
	return err
}

// statusLoop serves one cluster status document per accepted connection.
func (r *Router) statusLoop(l net.Listener) {
	defer r.statusWG.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_ = c.SetDeadline(time.Now().Add(5 * time.Second))
		_, _ = c.Write([]byte(r.StatusText()))
		c.Close()
	}
}

// clusterLinePrefix marks the machine-readable cluster summary line.
const clusterLinePrefix = "CLUSTER "

// StatusText renders the cluster status document: router counters,
// per-node health, the conservation sums, one machine-readable CLUSTER
// line, and every node's last-known STATUS line relayed verbatim.
func (r *Router) StatusText() string {
	st := r.Stats()
	cs := r.ClusterStats()
	health := r.probes.snapshotAll()

	var b strings.Builder
	fmt.Fprintf(&b, "cluster: state=%s nodes=%d available=%d policy=%s\n",
		st.State, cs.Nodes, cs.Available, r.cfg.Policy)
	fmt.Fprintf(&b, "router: received %d, forwarded %d, quarantined %d, shed %d, rerouted %d, requeued %d, send-failures %d\n",
		st.Received, st.Forwarded, st.Quarantined, st.Shed, st.Rerouted, st.Requeued, st.SendFailures)
	fmt.Fprintf(&b, "conns: %d active / %d total\n", st.ActiveConns, st.TotalConns)

	names := make([]string, 0, len(health))
	for n := range health {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := health[n]
		reach := "down"
		if h.Reachable {
			reach = "up"
		}
		detail := "never probed"
		if !h.LastSeen.IsZero() {
			detail = fmt.Sprintf("state=%s received=%d admitted=%d forwarded-to=%d",
				h.Status.State, h.Status.Received, h.Status.Admitted, st.PerNode[n])
		}
		if h.LastErr != nil {
			detail += fmt.Sprintf(" err=%q", h.LastErr)
		}
		fmt.Fprintf(&b, "node %s (%s): %s %s\n", n, h.Config.Addr, reach, detail)
	}
	fmt.Fprintf(&b, "conservation: sum_received=%d sum_admitted=%d sum_quarantined=%d sum_shed=%d gap=%d violations=%d\n",
		cs.SumReceived, cs.SumAdmitted, cs.SumQuarantined, cs.SumShed, cs.Gap(), st.ConservationViolations)

	fmt.Fprintf(&b, clusterLinePrefix+
		"state=%s nodes=%d available=%d received=%d forwarded=%d quarantined=%d shed=%d "+
		"rerouted=%d requeued=%d send_failures=%d sum_received=%d sum_admitted=%d "+
		"sum_quarantined=%d sum_shed=%d sum_classified=%d conservation_gap=%d violations=%d\n",
		st.State, cs.Nodes, cs.Available, st.Received, st.Forwarded, st.Quarantined, st.Shed,
		st.Rerouted, st.Requeued, st.SendFailures, cs.SumReceived, cs.SumAdmitted,
		cs.SumQuarantined, cs.SumShed, cs.SumClassified, cs.Gap(), st.ConservationViolations)

	for _, n := range names {
		if h := health[n]; !h.LastSeen.IsZero() {
			fmt.Fprintf(&b, "%s\n", h.Status.StatusLine())
		}
	}
	return b.String()
}

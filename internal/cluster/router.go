package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"iustitia/internal/ingest"
	"iustitia/internal/packet"
)

// RoutePolicy selects what the router does with a packet whose owner node
// is unavailable (unreachable, degraded, draining, or stopped).
type RoutePolicy int

const (
	// PolicyNext reroutes the packet to the next available node on the
	// ring (counted in Rerouted). The flow's per-node state splits across
	// nodes, so verdicts for rerouted flows may diverge from a
	// single-node replay — availability bought with accuracy.
	PolicyNext RoutePolicy = iota
	// PolicyShed drops the packet and counts it in Shed: strict flow
	// affinity, no cross-node state, bounded memory.
	PolicyShed
	// PolicyRequeue holds the packet (stalling its connection) until the
	// owner is available again — the rolling-restart policy: the drained
	// node's successor resumes its checkpoint and the held packets land
	// on the same per-flow state, losing nothing. After RequeueTimeout
	// the packet falls to the next available node (or is shed when none
	// is).
	PolicyRequeue
)

// String names the policy for flags and logs.
func (p RoutePolicy) String() string {
	switch p {
	case PolicyNext:
		return "next"
	case PolicyShed:
		return "shed"
	case PolicyRequeue:
		return "requeue"
	default:
		return fmt.Sprintf("RoutePolicy(%d)", int(p))
	}
}

// ParseRoutePolicy maps a flag value to its policy.
func ParseRoutePolicy(s string) (RoutePolicy, error) {
	switch s {
	case "next":
		return PolicyNext, nil
	case "shed":
		return PolicyShed, nil
	case "requeue":
		return PolicyRequeue, nil
	default:
		return 0, fmt.Errorf("cluster: unknown route policy %q (want next|shed|requeue)", s)
	}
}

// RouterConfig assembles a cluster router.
type RouterConfig struct {
	// Nodes lists the serve instances; at least one is required, names
	// must be unique.
	Nodes []NodeConfig
	// Listeners accept framed-packet client connections. At least one is
	// required.
	Listeners []net.Listener
	// StatusListener, when non-nil, serves the cluster status document
	// (router counters, per-node health, the conservation law, and the
	// machine-readable CLUSTER line) one dump per connection.
	StatusListener net.Listener
	// Replicas is the virtual-node count per node (<= 0 selects
	// DefaultReplicas).
	Replicas int
	// Policy selects the behaviour when a packet's owner is unavailable.
	Policy RoutePolicy
	// RequeueTimeout bounds how long one packet waits for a node before
	// falling through (PolicyRequeue: for its owner; any policy: for any
	// available node). Zero waits until the router itself drains.
	RequeueTimeout time.Duration
	// Probe tunes health polling.
	Probe ProbeConfig
	// DialTimeout bounds one upstream dial. Zero defaults to 2s.
	DialTimeout time.Duration
	// SendRetries bounds one ingest.Client's consecutive delivery
	// attempts before the router treats the node as down and re-routes.
	// Zero defaults to 3; negative means a single attempt.
	SendRetries int
	// SendBackoffBase / SendBackoffMax tune the client's reconnect
	// backoff (exponential with jitter). Zeroes take the client
	// defaults.
	SendBackoffBase time.Duration
	SendBackoffMax  time.Duration
	// Seed drives client reconnect jitter.
	Seed int64
	// MaxFrame bounds the payload length a frame header may declare
	// (<= 0 selects ingest.DefaultMaxFrame).
	MaxFrame int
	// ReadTimeout / IdleTimeout are the per-connection deadlines, as on
	// the ingest server. Zero disables.
	ReadTimeout time.Duration
	IdleTimeout time.Duration
	// JournalCap bounds the per-node replay journal of sent-but-unacked
	// packets (see sender.go). Zero selects DefaultJournalCap; negative
	// disables journaling (and with it crash replay).
	JournalCap int
	// AdminTimeout bounds one membership operation: how long ADD waits
	// for the new node to become available, and how long a migration may
	// wait for the losing node's watermark. Zero defaults to 10s.
	AdminTimeout time.Duration
}

// DefaultJournalCap is the per-node replay journal bound when
// RouterConfig.JournalCap is zero.
const DefaultJournalCap = 4096

// RouterStats is a point-in-time summary of router activity. The frame
// counters obey the router-level conservation law
// Received == Forwarded + Quarantined + Shed.
type RouterStats struct {
	// State is the router lifecycle state (reusing the ingest FSM
	// vocabulary): healthy flips to degraded while any node is
	// unavailable.
	State ingest.State
	// ActiveConns and TotalConns count client connections.
	ActiveConns, TotalConns int
	// Received counts frame events read from clients: every valid frame
	// plus every quarantine event.
	Received int
	// Forwarded counts packets delivered to some node.
	Forwarded int
	// Quarantined counts malformed-frame events survived by resync.
	Quarantined int
	// Shed counts packets dropped by policy (owner unavailable under
	// PolicyShed, or no node available within RequeueTimeout / at drain).
	Shed int
	// Rerouted counts forwarded packets that went to a non-owner node.
	Rerouted int
	// Requeued counts wait episodes: packets that had to block for a
	// node to become available before being forwarded or shed.
	Requeued int
	// SendFailures counts upstream deliveries that exhausted the
	// client's retries (each marks the node unreachable and re-routes).
	SendFailures int
	// Replayed counts journal entries resent after a node's availability
	// loss (same node, original sequence — deduped by the node when its
	// state already covers them) or re-routed from a removed dead node
	// (fresh sequence on the new owner's stream).
	Replayed int
	// ReplayDropped counts a removed dead node's journal entries that no
	// surviving node would accept.
	ReplayDropped int
	// JournalDropped counts journal entries evicted past JournalCap —
	// packets that can no longer be replayed after a crash.
	JournalDropped int
	// Journaled is the current total of sent-but-unacked journal entries
	// across nodes (a gauge, not a counter).
	Journaled int
	// MigratedFlows counts flows (pending + CDB records) moved by
	// flow-table migrations; MigrationsSkipped counts (loser, gainer)
	// pairs whose migration was skipped because the loser was dead.
	MigratedFlows     int
	MigrationsSkipped int
	// NodesAdded and NodesRemoved count live membership changes.
	NodesAdded, NodesRemoved int
	// PerNode counts forwarded packets per node name.
	PerNode map[string]int
	// ConservationViolations counts probe snapshots whose per-node
	// transport law did not balance — always zero against healthy serve
	// instances.
	ConservationViolations int
}

// ClusterStats aggregates the last-known node snapshots under the
// cluster-wide conservation law.
type ClusterStats struct {
	// Nodes is the number of configured nodes; Available how many are
	// currently routable.
	Nodes, Available int
	// SumReceived etc. are sums over every node with a parsed snapshot.
	SumReceived, SumAdmitted, SumQuarantined, SumShed int
	// SumClassified and SumQueue aggregate the engine verdict counters.
	SumClassified int
	SumQueue      [3]int
}

// Gap returns ΣReceived - (ΣAdmitted + ΣQuarantined + ΣShed): zero when
// the cluster-wide conservation law holds.
func (cs ClusterStats) Gap() int {
	return cs.SumReceived - (cs.SumAdmitted + cs.SumQuarantined + cs.SumShed)
}

// Router spreads framed-packet connections across serve nodes by
// consistent hashing over flow IDs, with health-aware failover and live
// membership (see admin.go).
type Router struct {
	cfg    RouterConfig
	probes *prober

	// member is the membership gate: routing holds it shared across one
	// packet's target selection and send; AddNode/RemoveNode hold it
	// exclusively across the ring swap and flow-table migration, so no
	// packet lands on a losing node after its state is exported. ring and
	// senders are guarded by it.
	member  sync.RWMutex
	ring    *Ring
	senders map[string]*nodeSender

	force     chan struct{} // closed at drain deadline: aborts waits
	forceOnce sync.Once
	done      chan struct{}
	watchStop chan struct{}

	readerWG sync.WaitGroup
	acceptWG sync.WaitGroup
	statusWG sync.WaitGroup
	watchWG  sync.WaitGroup

	mu                sync.Mutex
	conns             map[net.Conn]struct{}
	totalConns        int
	received          int
	forwarded         int
	quarantined       int
	shed              int
	rerouted          int
	requeued          int
	sendFailures      int
	replayed          int
	replayDropped     int
	journalDropped    int
	migratedFlows     int
	migrationsSkipped int
	nodesAdded        int
	nodesRemoved      int
	perNode           map[string]int
	violations        int
	lifecycle         ingest.State
	started           bool
	shutdown          bool
	shutdownErr       error
}

// NewRouter validates cfg and builds a router. Call Start to begin
// accepting.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: at least one node is required")
	}
	if len(cfg.Listeners) == 0 {
		return nil, errors.New("cluster: at least one listener is required")
	}
	if cfg.Policy < PolicyNext || cfg.Policy > PolicyRequeue {
		return nil, fmt.Errorf("cluster: unknown route policy %d", int(cfg.Policy))
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.SendRetries == 0 {
		cfg.SendRetries = 3
	}
	ring := NewRing(cfg.Replicas)
	for _, n := range cfg.Nodes {
		if n.Name == "" || n.Addr == "" || n.StatusAddr == "" {
			return nil, fmt.Errorf("cluster: node %+v needs name, addr, and status addr", n)
		}
		if err := ring.Add(n.Name); err != nil {
			return nil, err
		}
	}
	r := &Router{
		cfg:       cfg,
		ring:      ring,
		probes:    newProber(cfg.Probe, cfg.Nodes),
		senders:   make(map[string]*nodeSender, len(cfg.Nodes)),
		force:     make(chan struct{}),
		done:      make(chan struct{}),
		watchStop: make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		perNode:   make(map[string]int),
		lifecycle: ingest.StateStarting,
	}
	for _, n := range cfg.Nodes {
		r.senders[n.Name] = r.newSender(n.Name)
	}
	return r, nil
}

// Start spawns the probers, accept loops, and status listener.
func (r *Router) Start() error {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return errors.New("cluster: router already started")
	}
	r.started = true
	r.lifecycle = ingest.StateHealthy
	r.mu.Unlock()

	r.probes.start()
	r.watchWG.Add(1)
	go r.watchHealth()
	for _, l := range r.cfg.Listeners {
		r.acceptWG.Add(1)
		go r.acceptLoop(l)
	}
	if r.cfg.StatusListener != nil {
		r.statusWG.Add(1)
		go r.statusLoop(r.cfg.StatusListener)
	}
	return nil
}

// UpdateNode redirects a ring name to a successor instance (checkpoint
// handoff): the node keeps its name — and therefore its hash arcs — but
// its ingest and status addresses move to the restarted process. The
// upstream connection to the old instance is closed and the replay
// journal dropped: an orchestrated handoff means the predecessor drained
// and checkpointed everything it was sent, so replaying into the
// successor (whose watermark restarts) would double-count.
func (r *Router) UpdateNode(cfg NodeConfig) error {
	if err := r.probes.updateNode(cfg); err != nil {
		return err
	}
	r.member.RLock()
	s := r.senders[cfg.Name]
	r.member.RUnlock()
	if s != nil {
		s.mu.Lock()
		s.journal = nil
		s.pendingReplay = false
		s.mu.Unlock()
		s.client.Close()
	}
	return nil
}

// Health returns the router's current view of one node.
func (r *Router) Health(name string) (NodeHealth, bool) {
	return r.probes.snapshot(name)
}

// acceptLoop accepts client connections until its listener closes.
func (r *Router) acceptLoop(l net.Listener) {
	defer r.acceptWG.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		draining := r.shutdown
		if !draining {
			r.conns[c] = struct{}{}
			r.totalConns++
		}
		r.mu.Unlock()
		if draining {
			c.Close()
			continue
		}
		r.readerWG.Add(1)
		go r.serveConn(c)
	}
}

// routerConn applies the idle/read deadlines, mirroring the ingest
// server's frame-boundary semantics.
type routerConn struct {
	net.Conn
	idle, read time.Duration
	atBoundary bool
}

func (d *routerConn) Read(p []byte) (int, error) {
	timeout := d.read
	if d.atBoundary {
		timeout = d.idle
		d.atBoundary = false
	}
	if timeout > 0 {
		if err := d.Conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
	}
	return d.Conn.Read(p)
}

// serveConn reads frames off one client connection and routes each packet
// to its owner node. Packets of one connection are forwarded strictly in
// order, so per-flow order is preserved end to end.
func (r *Router) serveConn(c net.Conn) {
	defer r.readerWG.Done()
	defer func() {
		c.Close()
		r.mu.Lock()
		delete(r.conns, c)
		r.mu.Unlock()
	}()

	dc := &routerConn{Conn: c, idle: r.cfg.IdleTimeout, read: r.cfg.ReadTimeout}
	fr := ingest.NewFrameReader(dc, r.cfg.MaxFrame, func() {
		r.mu.Lock()
		r.received++
		r.quarantined++
		r.mu.Unlock()
	})
	for {
		dc.atBoundary = true
		pkt, err := fr.Next()
		if err != nil {
			return
		}
		r.mu.Lock()
		r.received++
		r.mu.Unlock()
		r.route(&pkt)
	}
}

// watchHealth reacts to availability edges. On loss the node's upstream
// connection is closed (a draining node's established connections are
// read until EOF, so a router holding them open would pin the drain
// against its deadline) and its journal is marked for replay. On regain
// the journal is replayed ahead of any new send.
func (r *Router) watchHealth() {
	defer r.watchWG.Done()
	last := make(map[string]bool)
	for {
		ch := r.probes.changeCh()
		seen := r.probes.snapshotAll()
		for name, h := range seen {
			avail := h.Available()
			if last[name] && !avail {
				r.onNodeLost(name)
			}
			if !last[name] && avail {
				r.onNodeRegained(name)
			}
			last[name] = avail
		}
		for name := range last {
			if _, ok := seen[name]; !ok {
				delete(last, name) // node removed from the cluster
			}
		}
		select {
		case <-ch:
		case <-r.watchStop:
			return
		}
	}
}

// onNodeLost closes the node's upstream connection and arms journal
// replay for its return.
func (r *Router) onNodeLost(name string) {
	r.member.RLock()
	s := r.senders[name]
	r.member.RUnlock()
	if s == nil {
		return
	}
	s.mu.Lock()
	s.pendingReplay = true
	s.mu.Unlock()
	s.client.Close()
}

// onNodeRegained replays the node's unacked journal proactively, so held
// requeues that wake on the same health change find the stream already
// caught up.
func (r *Router) onNodeRegained(name string) {
	r.member.RLock()
	s := r.senders[name]
	r.member.RUnlock()
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.pendingReplay {
		_ = r.replayLocked(s) // a failure re-arms via the next loss edge
	}
	s.mu.Unlock()
}

// route delivers one packet per the policy. Every packet entering here is
// accounted exactly once: Forwarded on delivery, Shed otherwise. The
// candidate list is recomputed on every pass under the membership gate —
// a membership change between passes simply re-targets the packet on the
// new ring — and the gate is released across requeue waits so a held
// packet never blocks an ADD/REMOVE.
func (r *Router) route(pkt *packet.Packet) {
	point := PointOfTuple(pkt.Tuple)
	var deadline <-chan time.Time
	waited, expired := false, false
	for {
		r.member.RLock()
		candidates := r.ring.Candidates(point, r.ring.Len())
		if len(candidates) == 0 {
			r.member.RUnlock()
			r.countShed()
			return
		}
		owner := candidates[0]
		health := r.probes.snapshotAll()
		target := ""
		rerouted := false
		if health[owner].Available() {
			target = owner
		} else {
			switch r.cfg.Policy {
			case PolicyShed:
				r.member.RUnlock()
				r.countShed()
				return
			case PolicyNext:
				for _, n := range candidates[1:] {
					if health[n].Available() {
						target, rerouted = n, true
						break
					}
				}
			case PolicyRequeue:
				// Hold for the owner; only a requeue timeout falls
				// through to the successor candidates (handled below).
			}
		}
		if target == "" && expired {
			// Requeue window exhausted: any available candidate, else shed.
			for _, n := range candidates {
				if health[n].Available() {
					target = n
					rerouted = n != owner
					break
				}
			}
			if target == "" {
				r.member.RUnlock()
				r.countShed()
				return
			}
		}
		if target != "" {
			s := r.senders[target]
			var err error
			if s == nil {
				err = fmt.Errorf("cluster: no sender for node %q", target)
			} else {
				err = r.sendToNode(s, pkt)
			}
			r.member.RUnlock()
			if err == nil {
				r.countForwarded(target, rerouted)
				return
			}
			r.mu.Lock()
			r.sendFailures++
			r.mu.Unlock()
			r.probes.markUnreachable(target, err)
			continue // re-route under the fresh health view
		}
		r.member.RUnlock()

		// No routable target yet: wait for a health change, the requeue
		// deadline, or the router's own drain force.
		if !waited {
			waited = true
			r.mu.Lock()
			r.requeued++
			r.mu.Unlock()
			if r.cfg.RequeueTimeout > 0 {
				t := time.NewTimer(r.cfg.RequeueTimeout)
				defer t.Stop()
				deadline = t.C
			}
		}
		ch := r.probes.changeCh()
		select {
		case <-ch:
		case <-deadline: // nil when no RequeueTimeout: never fires
			// One more pass: the expired branch picks any candidate or sheds.
			expired = true
			deadline = nil
		case <-r.force:
			r.countShed()
			return
		}
	}
}

func (r *Router) countForwarded(node string, rerouted bool) {
	r.mu.Lock()
	r.forwarded++
	r.perNode[node]++
	if rerouted {
		r.rerouted++
	}
	r.mu.Unlock()
}

func (r *Router) countShed() {
	r.mu.Lock()
	r.shed++
	r.mu.Unlock()
}

// Stats returns a snapshot of the router counters.
func (r *Router) Stats() RouterStats {
	health := r.probes.snapshotAll()
	journaled := 0
	r.member.RLock()
	for _, s := range r.senders {
		s.mu.Lock()
		journaled += len(s.journal)
		s.mu.Unlock()
	}
	r.member.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RouterStats{
		State:                  r.lifecycle,
		ActiveConns:            len(r.conns),
		TotalConns:             r.totalConns,
		Received:               r.received,
		Forwarded:              r.forwarded,
		Quarantined:            r.quarantined,
		Shed:                   r.shed,
		Rerouted:               r.rerouted,
		Requeued:               r.requeued,
		SendFailures:           r.sendFailures,
		Replayed:               r.replayed,
		ReplayDropped:          r.replayDropped,
		JournalDropped:         r.journalDropped,
		Journaled:              journaled,
		MigratedFlows:          r.migratedFlows,
		MigrationsSkipped:      r.migrationsSkipped,
		NodesAdded:             r.nodesAdded,
		NodesRemoved:           r.nodesRemoved,
		PerNode:                make(map[string]int, len(r.perNode)),
		ConservationViolations: r.violations,
	}
	for n, c := range r.perNode {
		st.PerNode[n] = c
	}
	if st.State == ingest.StateHealthy {
		for _, h := range health {
			if !h.Available() {
				st.State = ingest.StateDegraded
				break
			}
		}
	}
	return st
}

// ClusterStats sums the last-known node snapshots and records any
// per-node conservation violation.
func (r *Router) ClusterStats() ClusterStats {
	health := r.probes.snapshotAll()
	var cs ClusterStats
	cs.Nodes = len(health)
	for _, h := range health {
		if h.Available() {
			cs.Available++
		}
		if h.LastSeen.IsZero() {
			continue
		}
		s := h.Status
		cs.SumReceived += s.Received
		cs.SumAdmitted += s.Admitted
		cs.SumQuarantined += s.Quarantined
		cs.SumShed += s.Shed
		cs.SumClassified += s.EngineClassified
		for i := range s.Queue {
			cs.SumQueue[i] += s.Queue[i]
		}
		if s.ConservationGap() != 0 {
			r.mu.Lock()
			r.violations++
			r.mu.Unlock()
		}
	}
	return cs
}

// Shutdown drains the router: stop accepting, let client connections
// finish (force-closing them and shedding waiting packets when ctx
// expires), close upstream clients, stop probing. Idempotent; concurrent
// calls share the first invocation's result.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		<-r.done
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.shutdownErr
	}
	r.shutdown = true
	r.lifecycle = ingest.StateDraining
	r.mu.Unlock()

	var errs []error
	for _, l := range r.cfg.Listeners {
		if err := l.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster: close listener: %w", err))
		}
	}
	r.acceptWG.Wait()

	readersDone := make(chan struct{})
	go func() { r.readerWG.Wait(); close(readersDone) }()
	select {
	case <-readersDone:
	case <-ctx.Done():
		errs = append(errs, fmt.Errorf("cluster: drain deadline: %w", ctx.Err()))
		r.forceOnce.Do(func() { close(r.force) })
		r.mu.Lock()
		for c := range r.conns {
			c.Close()
		}
		r.mu.Unlock()
		<-readersDone
	}

	close(r.watchStop)
	r.watchWG.Wait()
	r.member.RLock()
	for _, s := range r.senders {
		s.client.Close()
	}
	r.member.RUnlock()
	r.probes.close()
	if r.cfg.StatusListener != nil {
		if err := r.cfg.StatusListener.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster: close status listener: %w", err))
		}
	}
	r.statusWG.Wait()

	r.mu.Lock()
	r.lifecycle = ingest.StateStopped
	err := errors.Join(errs...)
	r.shutdownErr = err
	r.mu.Unlock()
	close(r.done)
	return err
}

// statusLoop accepts status/admin connections; each is served on its own
// goroutine because an ADD or REMOVE command can block on a migration.
func (r *Router) statusLoop(l net.Listener) {
	defer r.statusWG.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		r.statusWG.Add(1)
		go func() {
			defer r.statusWG.Done()
			r.serveStatusConn(c)
		}()
	}
}

// clusterLinePrefix marks the machine-readable cluster summary line.
const clusterLinePrefix = "CLUSTER "

// StatusText renders the cluster status document: router counters,
// per-node health, the conservation sums, one machine-readable CLUSTER
// line, and every node's last-known STATUS line relayed verbatim.
func (r *Router) StatusText() string {
	st := r.Stats()
	cs := r.ClusterStats()
	health := r.probes.snapshotAll()

	var b strings.Builder
	fmt.Fprintf(&b, "cluster: state=%s nodes=%d available=%d policy=%s\n",
		st.State, cs.Nodes, cs.Available, r.cfg.Policy)
	fmt.Fprintf(&b, "router: received %d, forwarded %d, quarantined %d, shed %d, rerouted %d, requeued %d, send-failures %d\n",
		st.Received, st.Forwarded, st.Quarantined, st.Shed, st.Rerouted, st.Requeued, st.SendFailures)
	fmt.Fprintf(&b, "conns: %d active / %d total\n", st.ActiveConns, st.TotalConns)

	names := make([]string, 0, len(health))
	for n := range health {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := health[n]
		reach := "down"
		if h.Reachable {
			reach = "up"
		}
		detail := "never probed"
		if !h.LastSeen.IsZero() {
			detail = fmt.Sprintf("state=%s received=%d admitted=%d forwarded-to=%d",
				h.Status.State, h.Status.Received, h.Status.Admitted, st.PerNode[n])
		}
		if h.LastErr != nil {
			detail += fmt.Sprintf(" err=%q", h.LastErr)
		}
		fmt.Fprintf(&b, "node %s (%s): %s %s\n", n, h.Config.Addr, reach, detail)
	}
	fmt.Fprintf(&b, "conservation: sum_received=%d sum_admitted=%d sum_quarantined=%d sum_shed=%d gap=%d violations=%d\n",
		cs.SumReceived, cs.SumAdmitted, cs.SumQuarantined, cs.SumShed, cs.Gap(), st.ConservationViolations)

	// The federated ops sums ride the CLUSTER line too, so a plain STATUS
	// scrape shows fleet-wide swap/rollback/degradation state without a
	// second METRICS round trip. Parsers skip unknown keys, so old readers
	// are unaffected.
	depth, sumDegraded, sumSwaps, sumRollbacks := 0, 0, 0, 0
	depth = r.JournalDepth()
	for _, h := range health {
		if h.Metrics != nil {
			sumDegraded += h.Metrics.Engine.DegradedShards
			sumSwaps += h.Metrics.Swap.Swaps
			sumRollbacks += h.Metrics.Swap.Rollbacks
		}
	}
	fmt.Fprintf(&b, clusterLinePrefix+
		"state=%s nodes=%d available=%d received=%d forwarded=%d quarantined=%d shed=%d "+
		"rerouted=%d requeued=%d send_failures=%d replayed=%d replay_dropped=%d "+
		"journal_dropped=%d journaled=%d migrated_flows=%d migrations_skipped=%d "+
		"nodes_added=%d nodes_removed=%d sum_received=%d sum_admitted=%d "+
		"sum_quarantined=%d sum_shed=%d sum_classified=%d conservation_gap=%d violations=%d "+
		"journal_depth=%d sum_degraded=%d sum_swaps=%d sum_rollbacks=%d\n",
		st.State, cs.Nodes, cs.Available, st.Received, st.Forwarded, st.Quarantined, st.Shed,
		st.Rerouted, st.Requeued, st.SendFailures, st.Replayed, st.ReplayDropped,
		st.JournalDropped, st.Journaled, st.MigratedFlows, st.MigrationsSkipped,
		st.NodesAdded, st.NodesRemoved, cs.SumReceived, cs.SumAdmitted,
		cs.SumQuarantined, cs.SumShed, cs.SumClassified, cs.Gap(), st.ConservationViolations,
		depth, sumDegraded, sumSwaps, sumRollbacks)

	for _, n := range names {
		if h := health[n]; !h.LastSeen.IsZero() {
			fmt.Fprintf(&b, "%s\n", h.Status.StatusLine())
		}
	}
	return b.String()
}

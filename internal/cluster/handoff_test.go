package cluster

import (
	"testing"
	"time"

	"iustitia/internal/packet"
)

// TestRollingRestartCheckpointHandoff is the tentpole invariant in
// miniature: drain node a mid-service, hand its final parallel
// checkpoint to a successor that keeps the node name (so the ring's
// flow→node assignment is untouched), remap the name to the successor's
// addresses, and finish the workload — with zero verdict loss and
// cluster-aggregate verdicts identical to a single-engine replay of the
// whole workload.
//
// Traffic is split into two traces with distinct flow populations: the
// drain's FlushAll classifies every pending flow, so no flow may span
// the handoff with a half-filled buffer. The e2e soak makes the same
// split for the same reason.
func TestRollingRestartCheckpointHandoff(t *testing.T) {
	var checkpoint []byte
	a := startNode(t, "a", nil, func(snapshot []byte) { checkpoint = snapshot })
	b := startNode(t, "b", nil, nil)
	r, addr := startRouter(t, RouterConfig{
		Policy:         PolicyRequeue,
		RequeueTimeout: 30 * time.Second,
	}, a, b)
	waitAvailable(t, r, "a", "b")

	trace1 := testTrace(t, 40, 21)
	trace2 := testTrace(t, 40, 22)

	// Phase 1: stream the first trace against the original pair.
	streamTrace(t, addr, trace1)
	waitFor(t, "phase-1 frames to land", func() bool {
		return a.srv.Stats().Received+b.srv.Stats().Received == len(trace1.Packets)
	})

	// Rolling restart of a: drain (flushes every pending flow into the
	// final checkpoint), bring up a successor under the SAME name on new
	// addresses, resume the checkpoint, remap the ring name.
	aStats := a.drain(t)
	if checkpoint == nil {
		t.Fatal("drain produced no final checkpoint")
	}
	aClassified := a.engine.Stats().Classified

	succEngine := newTestEngine(t)
	if err := succEngine.ImportCheckpoint(checkpoint); err != nil {
		t.Fatalf("successor resume: %v", err)
	}
	a2 := startNode(t, "a", succEngine, nil)
	if err := r.UpdateNode(a2.cfg); err != nil {
		t.Fatalf("UpdateNode: %v", err)
	}

	// The successor starts with its predecessor's verdicts intact.
	if got := succEngine.Stats().Classified; got != aClassified {
		t.Fatalf("successor resumed %d classified flows, predecessor had %d", got, aClassified)
	}

	// Phase 2: stream the second trace; flows owned by "a" land on the
	// successor (requeue policy holds them until it is probed healthy).
	streamTrace(t, addr, trace2)
	waitFor(t, "phase-2 frames to land", func() bool {
		total := aStats.Received + a2.srv.Stats().Received + b.srv.Stats().Received
		return total == len(trace1.Packets)+len(trace2.Packets)
	})

	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Shed != 0 || rst.Quarantined != 0 || rst.Rerouted != 0 {
		t.Errorf("handoff shed=%d quarantined=%d rerouted=%d, want all zero (no verdict loss, affinity kept)",
			rst.Shed, rst.Quarantined, rst.Rerouted)
	}
	a2Stats := a2.drain(t)
	bStats := b.drain(t)

	// Cluster-wide conservation across the whole run, including the
	// killed-and-replaced node: each process's law holds from its own
	// start, so the federation balances too.
	sumReceived := aStats.Received + a2Stats.Received + bStats.Received
	sumAccounted := (aStats.Admitted + aStats.Quarantined + aStats.Shed) +
		(a2Stats.Admitted + a2Stats.Quarantined + a2Stats.Shed) +
		(bStats.Admitted + bStats.Quarantined + bStats.Shed)
	if sumReceived != sumAccounted || sumReceived != len(trace1.Packets)+len(trace2.Packets) {
		t.Errorf("cluster law: Σreceived=%d Σaccounted=%d, want both %d",
			sumReceived, sumAccounted, len(trace1.Packets)+len(trace2.Packets))
	}

	// Zero verdict loss: the successor+survivor pair carries every
	// verdict, identical to a single engine fed both traces.
	ref := replayReference(t, trace1, trace2)
	assertClusterMatchesReference(t, ref, []*packet.Trace{trace1, trace2}, a2, b)
}

package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"iustitia/internal/flow"
	"iustitia/internal/packet"
)

func ringOf(t *testing.T, replicas int, nodes ...string) *Ring {
	t.Helper()
	r := NewRing(replicas)
	for _, n := range nodes {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestRingDeterministic pins that ownership depends only on membership:
// two rings built in different insertion orders agree on every point, so
// a restarted router rebuilds the identical flow→node map.
func TestRingDeterministic(t *testing.T) {
	a := ringOf(t, 0, "alpha", "beta", "gamma")
	b := ringOf(t, 0, "gamma", "alpha", "beta")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		p := rng.Uint64()
		oa, ok := a.Owner(p)
		ob, _ := b.Owner(p)
		if !ok || oa != ob {
			t.Fatalf("point %#x: owner %q vs %q (insertion order changed ownership)", p, oa, ob)
		}
	}
}

// TestRingRemoveMovesOnlyVictimArcs is the consistent-hashing property:
// removing one node must not move any flow owned by a surviving node.
func TestRingRemoveMovesOnlyVictimArcs(t *testing.T) {
	r := ringOf(t, 0, "alpha", "beta", "gamma")
	rng := rand.New(rand.NewSource(2))
	points := make([]uint64, 5000)
	owners := make([]string, len(points))
	for i := range points {
		points[i] = rng.Uint64()
		owners[i], _ = r.Owner(points[i])
	}
	r.Remove("beta")
	moved := 0
	for i, p := range points {
		now, ok := r.Owner(p)
		if !ok {
			t.Fatal("ring emptied unexpectedly")
		}
		switch {
		case owners[i] == "beta":
			moved++
			if now == "beta" {
				t.Fatalf("point %#x still owned by removed node", p)
			}
		case now != owners[i]:
			t.Fatalf("point %#x moved %q → %q though %q survives", p, owners[i], now, owners[i])
		}
	}
	if moved == 0 {
		t.Fatal("no points owned by the removed node; test is vacuous")
	}
}

// TestRingBalance checks that 64 virtual nodes keep ownership reasonably
// even: no node above twice or below half its fair share.
func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := ringOf(t, 0, nodes...)
	rng := rand.New(rand.NewSource(3))
	counts := make(map[string]int)
	const samples = 40000
	for i := 0; i < samples; i++ {
		o, _ := r.Owner(rng.Uint64())
		counts[o]++
	}
	fair := samples / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Errorf("node %s owns %d of %d points (fair share %d): imbalance beyond 2x", n, c, samples, fair)
		}
	}
}

// TestRingCandidates pins the failover order contract: first candidate is
// the owner, candidates are distinct, and the list covers the whole
// membership when asked.
func TestRingCandidates(t *testing.T) {
	r := ringOf(t, 0, "a", "b", "c")
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		p := rng.Uint64()
		owner, _ := r.Owner(p)
		cands := r.Candidates(p, 10)
		if len(cands) != 3 {
			t.Fatalf("Candidates returned %d nodes, want 3", len(cands))
		}
		if cands[0] != owner {
			t.Fatalf("first candidate %q is not the owner %q", cands[0], owner)
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("duplicate candidate %q", c)
			}
			seen[c] = true
		}
		if got := r.Candidates(p, 2); len(got) != 2 || got[0] != owner {
			t.Fatalf("Candidates(p, 2) = %v, want owner-first pair", got)
		}
	}
	if r.Candidates(0, 0) != nil {
		t.Error("Candidates with max 0 should be nil")
	}
}

// TestRingAddErrors pins membership invariants: names are non-empty and
// cluster-unique.
func TestRingAddErrors(t *testing.T) {
	r := NewRing(0)
	if err := r.Add(""); err == nil {
		t.Error("empty node name accepted")
	}
	if err := r.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("a"); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate Add returned %v, want ErrNodeExists", err)
	}
	r.Remove("missing") // no-op, must not panic
	if got := r.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	if got := r.Nodes(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Nodes = %v, want [a]", got)
	}
}

// TestPointOfTupleMatchesFlowID pins that ring placement uses the same
// hash word the parallel engine uses for shard routing.
func TestPointOfTupleMatchesFlowID(t *testing.T) {
	tuple := packet.FiveTuple{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 1234, DstPort: 80, Transport: packet.TCP}
	if PointOfTuple(tuple) != PointOf(flow.IDOf(tuple)) {
		t.Error("PointOfTuple diverges from PointOf(flow.IDOf)")
	}
}

// TestRingCloneIsIndependent pins that staged membership changes on a
// clone never leak into the published ring.
func TestRingCloneIsIndependent(t *testing.T) {
	r := ringOf(t, 8, "a", "b")
	c := r.Clone()
	if err := c.Add("c"); err != nil {
		t.Fatal(err)
	}
	c.Remove("a")
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("clone mutation leaked into original: %v", got)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p := rng.Uint64()
		if o, _ := r.Owner(p); o == "c" {
			t.Fatalf("original ring routes point %#x to a node added on the clone", p)
		}
	}
}

// checkArcsExact cross-checks ArcsMoved against brute-force point
// sampling: a sampled point changes owner iff it falls inside a moved arc
// whose From/To match the observed change.
func checkArcsExact(t *testing.T, before, after *Ring, arcs []MovedArc, rng *rand.Rand) {
	t.Helper()
	inArc := func(p uint64) (MovedArc, bool) {
		for _, a := range arcs {
			if p >= a.Lo && p <= a.Hi {
				return a, true
			}
		}
		return MovedArc{}, false
	}
	for i := 0; i < 4000; i++ {
		p := rng.Uint64()
		was, _ := before.Owner(p)
		now, _ := after.Owner(p)
		a, ok := inArc(p)
		if (was != now) != ok {
			t.Fatalf("point %#x: owner %q→%q but arc membership %v", p, was, now, ok)
		}
		if ok && (a.From != was || a.To != now) {
			t.Fatalf("point %#x: moved %q→%q but arc says %q→%q", p, was, now, a.From, a.To)
		}
	}
	// Arc endpoints themselves are the exact boundaries.
	for _, a := range arcs {
		for _, p := range []uint64{a.Lo, a.Hi} {
			was, _ := before.Owner(p)
			now, _ := after.Owner(p)
			if was != a.From || now != a.To {
				t.Fatalf("arc %+v endpoint %#x: owners %q→%q", a, p, was, now)
			}
		}
	}
}

// TestArcsMovedBoundedByReplicas is the consistent-hashing migration
// bound over a live add/remove sequence: every single-node membership
// change moves at most replicas+1 contiguous arcs (the +1 from a region
// split by the 0/max wrap), and every arc involves the changed node —
// flows between two surviving nodes never travel.
func TestArcsMovedBoundedByReplicas(t *testing.T) {
	const replicas = 16
	rng := rand.New(rand.NewSource(8))
	r := ringOf(t, replicas, "a", "b")
	steps := []struct {
		add  bool
		node string
	}{
		{true, "c"}, {true, "d"}, {false, "a"}, {true, "e"}, {false, "c"}, {false, "d"},
	}
	for _, step := range steps {
		next := r.Clone()
		if step.add {
			if err := next.Add(step.node); err != nil {
				t.Fatal(err)
			}
		} else {
			next.Remove(step.node)
		}
		arcs := ArcsMoved(r, next)
		if len(arcs) == 0 {
			t.Fatalf("step %+v moved no arcs; test is vacuous", step)
		}
		if len(arcs) > replicas+1 {
			t.Errorf("step %+v moved %d arcs, want <= %d", step, len(arcs), replicas+1)
		}
		for _, a := range arcs {
			if step.add && a.To != step.node {
				t.Errorf("step %+v: arc %+v gained by an uninvolved node", step, a)
			}
			if !step.add && a.From != step.node {
				t.Errorf("step %+v: arc %+v lost by an uninvolved node", step, a)
			}
			if a.Lo > a.Hi {
				t.Errorf("step %+v: inverted arc %+v", step, a)
			}
		}
		for i := 1; i < len(arcs); i++ {
			if arcs[i].Lo <= arcs[i-1].Hi {
				t.Errorf("step %+v: arcs %d and %d overlap or are unsorted", step, i-1, i)
			}
		}
		checkArcsExact(t, r, next, arcs, rng)
		r = next
	}
}

// TestArcsMovedEmptyAndIdentical pins the degenerate diffs.
func TestArcsMovedEmptyAndIdentical(t *testing.T) {
	r := ringOf(t, 0, "a", "b")
	if arcs := ArcsMoved(r, r.Clone()); len(arcs) != 0 {
		t.Errorf("identical rings moved %d arcs", len(arcs))
	}
	if arcs := ArcsMoved(NewRing(0), r); arcs != nil {
		t.Error("empty before-ring produced arcs")
	}
	if arcs := ArcsMoved(r, NewRing(0)); arcs != nil {
		t.Error("empty after-ring produced arcs")
	}
}

// TestOwnerEmptyRing pins the empty-ring contract.
func TestOwnerEmptyRing(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner(42); ok {
		t.Error("empty ring reported an owner")
	}
	if r.Candidates(42, 3) != nil {
		t.Error("empty ring returned candidates")
	}
}

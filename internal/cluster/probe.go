package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"iustitia/internal/ingest"
	"iustitia/internal/ops"
)

// NodeConfig names one serve instance: its cluster-unique ring name, the
// framed-packet ingest address, and the status-listener address the
// prober polls.
type NodeConfig struct {
	Name       string
	Addr       string
	StatusAddr string
}

// NodeHealth is the router's current view of one node: the last parsed
// STATUS snapshot plus reachability bookkeeping.
type NodeHealth struct {
	Config NodeConfig
	// Reachable is true while status probes succeed. A node whose probe
	// fails — or whose packet connection dies under the router — is
	// unreachable until the next successful probe.
	Reachable bool
	// Status is the last successfully parsed STATUS snapshot; zero until
	// the first probe lands.
	Status ingest.NodeStatus
	// LastSeen is when Status was captured.
	LastSeen time.Time
	// ConsecutiveFailures counts probe failures since the last success;
	// it drives the probe backoff.
	ConsecutiveFailures int
	// LastErr is the most recent probe error, nil after a success.
	LastErr error
	// Metrics is the node's last structured metrics snapshot, fetched
	// alongside each successful status probe. Nil until one lands — and
	// forever nil for nodes that predate the METRICS admin verb, which is
	// why probing tolerates its absence.
	Metrics *ops.NodeMetrics
}

// Available reports whether the router may route new packets to the node:
// it must be reachable and its ingest FSM healthy. Degraded, draining,
// and stopped nodes all fall to the routing policy.
func (h NodeHealth) Available() bool {
	return h.Reachable && h.Status.State == ingest.StateHealthy
}

// ProbeConfig tunes health probing.
type ProbeConfig struct {
	// Interval is the poll period per node while probes succeed. Zero
	// defaults to 500ms.
	Interval time.Duration
	// Timeout bounds one probe's dial+read. Zero defaults to 2s.
	Timeout time.Duration
	// BackoffBase is the extra delay after the first consecutive probe
	// failure, doubling per failure up to BackoffMax — an unreachable
	// node is polled more gently than a healthy one. Zero defaults to
	// Interval (so the first retry waits ~2 intervals); BackoffMax zero
	// defaults to 8s.
	BackoffBase time.Duration
	// BackoffMax caps the failure backoff.
	BackoffMax time.Duration
	// Seed drives the backoff jitter that decorrelates probe storms when
	// several nodes vanish at once.
	Seed int64
}

func (c ProbeConfig) interval() time.Duration {
	if c.Interval <= 0 {
		return 500 * time.Millisecond
	}
	return c.Interval
}

func (c ProbeConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

func (c ProbeConfig) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return c.interval()
	}
	return c.BackoffBase
}

func (c ProbeConfig) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return 8 * time.Second
	}
	return c.BackoffMax
}

// ProbeStatus fetches and parses one STATUS snapshot from a node's status
// listener.
func ProbeStatus(statusAddr string, timeout time.Duration) (ingest.NodeStatus, error) {
	c, err := net.DialTimeout("tcp", statusAddr, timeout)
	if err != nil {
		return ingest.NodeStatus{}, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(timeout))
	// Ask explicitly: a server speaking the command protocol answers
	// immediately instead of waiting out its legacy-probe grace period.
	// Old servers dump regardless of what arrives, so this is harmless.
	_, _ = c.Write([]byte("STATUS\n"))
	doc, err := io.ReadAll(c)
	if err != nil {
		return ingest.NodeStatus{}, err
	}
	return ingest.ParseStatusLine(string(doc))
}

// prober polls every node's status listener on its own goroutine,
// maintaining the shared health table and waking routing waiters whenever
// a node's availability may have changed.
type prober struct {
	cfg ProbeConfig

	mu      sync.Mutex
	rng     *rand.Rand
	health  map[string]*NodeHealth
	changed chan struct{} // closed and replaced on every update
	stop    chan struct{}
	wg      sync.WaitGroup
}

func newProber(cfg ProbeConfig, nodes []NodeConfig) *prober {
	p := &prober{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		health:  make(map[string]*NodeHealth, len(nodes)),
		changed: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	for _, n := range nodes {
		p.health[n.Name] = &NodeHealth{Config: n}
	}
	return p
}

func (p *prober) start() {
	p.mu.Lock()
	names := make([]string, 0, len(p.health))
	for name := range p.health {
		names = append(names, name)
	}
	p.mu.Unlock()
	for _, name := range names {
		p.wg.Add(1)
		go p.run(name)
	}
}

func (p *prober) close() {
	close(p.stop)
	p.wg.Wait()
}

// run is one node's probe loop: poll, record, sleep the interval (plus
// failure backoff with jitter), repeat until the prober closes.
func (p *prober) run(name string) {
	defer p.wg.Done()
	for {
		p.probeOnce(name)
		p.mu.Lock()
		h := p.health[name]
		if h == nil {
			// Node removed from the cluster: this loop is done.
			p.mu.Unlock()
			return
		}
		delay := p.cfg.interval()
		if h.ConsecutiveFailures > 0 {
			b := p.cfg.backoffBase()
			for i := 1; i < h.ConsecutiveFailures && b < p.cfg.backoffMax(); i++ {
				b *= 2
			}
			if b > p.cfg.backoffMax() {
				b = p.cfg.backoffMax()
			}
			// Jitter up to half the backoff so recovering nodes are not
			// hammered by synchronized probes.
			b += time.Duration(p.rng.Int63n(int64(b)/2 + 1))
			delay += b
		}
		p.mu.Unlock()
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-p.stop:
			t.Stop()
			return
		}
	}
}

// probeOnce polls one node and folds the result into the health table.
func (p *prober) probeOnce(name string) {
	p.mu.Lock()
	h, ok := p.health[name]
	if !ok {
		p.mu.Unlock()
		return
	}
	cfg := h.Config
	p.mu.Unlock()

	status, err := ProbeStatus(cfg.StatusAddr, p.cfg.timeout())
	// Piggyback a metrics fetch on a healthy probe. Failure is tolerated —
	// an old node answers METRICS with an error line — and leaves the last
	// snapshot standing rather than blanking the federated view.
	var metrics *ops.NodeMetrics
	if err == nil {
		metrics, _ = ops.ProbeMetrics(cfg.StatusAddr, p.cfg.timeout())
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok = p.health[name]
	if !ok || h.Config != cfg {
		return // node replaced mid-probe (UpdateNode); discard the stale result
	}
	if err != nil {
		h.Reachable = false
		h.ConsecutiveFailures++
		h.LastErr = err
	} else {
		h.Reachable = true
		h.ConsecutiveFailures = 0
		h.LastErr = nil
		h.Status = status
		h.LastSeen = time.Now()
		if metrics != nil {
			h.Metrics = metrics
		}
	}
	p.wake()
}

// wake broadcasts a health change to routing waiters. Called with mu held.
func (p *prober) wake() {
	close(p.changed)
	p.changed = make(chan struct{})
}

// snapshot returns a copy of one node's health.
func (p *prober) snapshot(name string) (NodeHealth, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.health[name]
	if !ok {
		return NodeHealth{}, false
	}
	return *h, true
}

// snapshotAll returns a copy of the whole health table.
func (p *prober) snapshotAll() map[string]NodeHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]NodeHealth, len(p.health))
	for name, h := range p.health {
		out[name] = *h
	}
	return out
}

// changeCh returns the channel closed at the next health change.
func (p *prober) changeCh() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.changed
}

// markUnreachable flags a node down immediately (a failed packet Send is
// fresher evidence than the last probe) and wakes waiters. The next
// successful probe restores it.
func (p *prober) markUnreachable(name string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.health[name]
	if !ok || !h.Reachable {
		return
	}
	h.Reachable = false
	h.LastErr = fmt.Errorf("cluster: send to %s failed: %w", name, err)
	p.wake()
}

// addNode registers a new node and, when started is true, spawns its
// probe loop. Registering a present name is an error.
func (p *prober) addNode(cfg NodeConfig, started bool) error {
	p.mu.Lock()
	if _, ok := p.health[cfg.Name]; ok {
		p.mu.Unlock()
		return fmt.Errorf("cluster: node %q already probed", cfg.Name)
	}
	p.health[cfg.Name] = &NodeHealth{Config: cfg}
	p.wake()
	p.mu.Unlock()
	if started {
		p.wg.Add(1)
		go p.run(cfg.Name)
	}
	return nil
}

// removeNode drops a node from the health table; its probe loop exits at
// its next iteration. Removing an absent node is a no-op.
func (p *prober) removeNode(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.health[name]; !ok {
		return
	}
	delete(p.health, name)
	p.wake()
}

// updateNode swaps a node's addresses (checkpoint handoff to a successor
// process): health resets to unreachable-until-probed and waiters wake so
// requeued packets retry promptly.
func (p *prober) updateNode(cfg NodeConfig) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.health[cfg.Name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", cfg.Name)
	}
	h.Config = cfg
	h.Reachable = false
	h.Status = ingest.NodeStatus{}
	h.ConsecutiveFailures = 0
	h.LastErr = nil
	h.Metrics = nil
	p.wake()
	return nil
}

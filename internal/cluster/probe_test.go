package cluster

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"iustitia/internal/ingest"
)

// fakeStatusNode serves a configurable STATUS document, standing in for a
// serve instance's status listener.
type fakeStatusNode struct {
	t *testing.T
	l net.Listener

	mu     sync.Mutex
	status ingest.NodeStatus
}

func newFakeStatusNode(t *testing.T, name string) *fakeStatusNode {
	t.Helper()
	f := &fakeStatusNode{t: t, status: ingest.NodeStatus{
		Node:          name,
		State:         ingest.StateHealthy,
		CheckpointAge: ingest.NoCheckpoint,
	}}
	f.listen("127.0.0.1:0")
	return f
}

func (f *fakeStatusNode) listen(addr string) {
	f.t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		f.t.Fatal(err)
	}
	f.l = l
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			// Drain the probe's command line before answering (closing with
			// unread data would reset the connection under the probe's read).
			_ = c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
			_, _ = bufio.NewReader(c).ReadString('\n')
			f.mu.Lock()
			doc := "some prose header\n" + f.status.StatusLine() + "\n"
			f.mu.Unlock()
			_, _ = c.Write([]byte(doc))
			c.Close()
		}
	}()
}

func (f *fakeStatusNode) addr() string { return f.l.Addr().String() }

func (f *fakeStatusNode) setState(s ingest.State) {
	f.mu.Lock()
	f.status.State = s
	f.mu.Unlock()
}

func (f *fakeStatusNode) setCounts(received, admitted, quarantined, shed int) {
	f.mu.Lock()
	f.status.Received = received
	f.status.Admitted = admitted
	f.status.Quarantined = quarantined
	f.status.Shed = shed
	f.mu.Unlock()
}

func (f *fakeStatusNode) close() { f.l.Close() }

func testProbeConfig() ProbeConfig {
	return ProbeConfig{
		Interval:    10 * time.Millisecond,
		Timeout:     500 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		Seed:        1,
	}
}

// waitHealth polls one node's health until cond holds.
func waitHealth(t *testing.T, p *prober, name string, what string, cond func(NodeHealth) bool) NodeHealth {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h, ok := p.snapshot(name)
		if ok && cond(h) {
			return h
		}
		time.Sleep(2 * time.Millisecond)
	}
	h, _ := p.snapshot(name)
	t.Fatalf("timeout waiting for %s; last health: %+v", what, h)
	return NodeHealth{}
}

// TestProbeStatusParsesLiveDocument checks the probe → parse path against
// a served STATUS document.
func TestProbeStatusParsesLiveDocument(t *testing.T) {
	f := newFakeStatusNode(t, "alpha")
	defer f.close()
	f.setCounts(10, 7, 2, 1)

	st, err := ProbeStatus(f.addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "alpha" || st.State != ingest.StateHealthy {
		t.Errorf("parsed %+v, want node alpha healthy", st)
	}
	if st.Received != 10 || st.Admitted != 7 || st.Quarantined != 2 || st.Shed != 1 {
		t.Errorf("counters %+v did not round-trip", st)
	}
	if gap := st.ConservationGap(); gap != 0 {
		t.Errorf("conservation gap %d on a balanced snapshot", gap)
	}
}

// TestProberTracksStateTransitions drives one node healthy → degraded →
// unreachable → healthy and watches the prober follow.
func TestProberTracksStateTransitions(t *testing.T) {
	f := newFakeStatusNode(t, "alpha")
	p := newProber(testProbeConfig(), []NodeConfig{{Name: "alpha", Addr: "127.0.0.1:1", StatusAddr: f.addr()}})
	p.start()
	defer p.close()

	waitHealth(t, p, "alpha", "first healthy probe", func(h NodeHealth) bool { return h.Available() })

	f.setState(ingest.StateDegraded)
	h := waitHealth(t, p, "alpha", "degraded visible", func(h NodeHealth) bool {
		return h.Reachable && h.Status.State == ingest.StateDegraded
	})
	if h.Available() {
		t.Error("degraded node reported available")
	}

	addr := f.addr()
	f.close()
	h = waitHealth(t, p, "alpha", "unreachable after close", func(h NodeHealth) bool { return !h.Reachable })
	if h.LastErr == nil || h.ConsecutiveFailures == 0 {
		t.Errorf("unreachable node lacks error evidence: %+v", h)
	}

	// Same-address restart, as a rolling restart does: Go listeners set
	// SO_REUSEADDR, so the successor can rebind immediately.
	f2 := &fakeStatusNode{t: t, status: ingest.NodeStatus{Node: "alpha", State: ingest.StateHealthy, CheckpointAge: ingest.NoCheckpoint}}
	f2.listen(addr)
	defer f2.close()
	waitHealth(t, p, "alpha", "recovery after rebind", func(h NodeHealth) bool { return h.Available() })
}

// TestProberBackoffSlowsFailedProbes checks that an unreachable node is
// probed more gently than a healthy one: with backoff active, failures
// accumulate slower than interval-rate polling would produce.
func TestProberBackoffSlowsFailedProbes(t *testing.T) {
	cfg := testProbeConfig()
	cfg.Interval = 5 * time.Millisecond
	cfg.BackoffBase = 30 * time.Millisecond
	cfg.BackoffMax = 60 * time.Millisecond
	// Nothing listens on this address: every probe fails fast.
	p := newProber(cfg, []NodeConfig{{Name: "gone", Addr: "127.0.0.1:1", StatusAddr: "127.0.0.1:1"}})
	p.start()
	defer p.close()

	time.Sleep(150 * time.Millisecond)
	h, _ := p.snapshot("gone")
	// Interval-rate polling would land ~30 probes in 150ms; with 30–90ms
	// backoff per failure the count stays well under that.
	if h.ConsecutiveFailures == 0 || h.ConsecutiveFailures > 15 {
		t.Errorf("ConsecutiveFailures = %d, want 1..15 (backoff not applied?)", h.ConsecutiveFailures)
	}
}

// TestProberMarkUnreachable checks that failed packet sends flip a node
// down without waiting for the next probe, and that waiters are woken.
func TestProberMarkUnreachable(t *testing.T) {
	f := newFakeStatusNode(t, "alpha")
	defer f.close()
	p := newProber(testProbeConfig(), []NodeConfig{{Name: "alpha", Addr: "127.0.0.1:1", StatusAddr: f.addr()}})
	p.start()
	defer p.close()

	waitHealth(t, p, "alpha", "healthy", func(h NodeHealth) bool { return h.Available() })
	ch := p.changeCh()
	p.markUnreachable("alpha", errors.New("connection refused"))
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("markUnreachable did not wake waiters")
	}
	h, _ := p.snapshot("alpha")
	if h.Reachable {
		// The next probe may already have restored it; only fail if the
		// mark itself was a no-op (no error recorded either).
		if h.LastErr == nil && h.LastSeen.IsZero() {
			t.Errorf("markUnreachable had no effect: %+v", h)
		}
	}
	if err := p.updateNode(NodeConfig{Name: "nope"}); err == nil {
		t.Error("updateNode accepted an unknown node")
	}
}

// TestProberUpdateNodeSwapsAddress points a name at a successor instance
// and checks health is rebuilt from the new address.
func TestProberUpdateNodeSwapsAddress(t *testing.T) {
	old := newFakeStatusNode(t, "alpha")
	p := newProber(testProbeConfig(), []NodeConfig{{Name: "alpha", Addr: "127.0.0.1:1", StatusAddr: old.addr()}})
	p.start()
	defer p.close()
	waitHealth(t, p, "alpha", "predecessor healthy", func(h NodeHealth) bool { return h.Available() })

	succ := newFakeStatusNode(t, "alpha")
	defer succ.close()
	succ.setCounts(99, 99, 0, 0)
	if err := p.updateNode(NodeConfig{Name: "alpha", Addr: "127.0.0.1:2", StatusAddr: succ.addr()}); err != nil {
		t.Fatal(err)
	}
	old.close()

	h := waitHealth(t, p, "alpha", "successor probed", func(h NodeHealth) bool {
		return h.Available() && h.Status.Received == 99
	})
	if h.Config.Addr != "127.0.0.1:2" {
		t.Errorf("config not swapped: %+v", h.Config)
	}
}

package cluster

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"iustitia/internal/ingest"
	"iustitia/internal/packet"
)

// TestRequeueExpiredShedExactlyOnce pins the requeue-timeout contract
// with no failover target: an expired held packet is shed exactly once —
// never forwarded as well, never shed twice — so the router law stays an
// equality, not an inequality.
func TestRequeueExpiredShedExactlyOnce(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyRequeue, RequeueTimeout: 20 * time.Millisecond}, a)
	waitAvailable(t, r, "a")
	a.drain(t)
	waitFor(t, "a marked unavailable", func() bool {
		h, _ := r.Health("a")
		return !h.Available()
	})

	trace := testTrace(t, 5, 31)
	streamTrace(t, addr, trace)
	waitFor(t, "every packet to expire and shed", func() bool {
		return r.Stats().Shed == len(trace.Packets)
	})

	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Shed != len(trace.Packets) {
		t.Errorf("shed %d, want exactly %d (no double shed)", rst.Shed, len(trace.Packets))
	}
	if rst.Forwarded != 0 || rst.Rerouted != 0 {
		t.Errorf("expired packets also delivered: forwarded=%d rerouted=%d, want zero", rst.Forwarded, rst.Rerouted)
	}
	if rst.Requeued == 0 {
		t.Error("no wait episodes counted before the sheds")
	}
}

// TestRequeueExpiredReroutesWhenSurvivorUp is the complementary half:
// with a healthy failover candidate, an expired packet reroutes instead
// of shedding — the timeout bounds the wait, it does not discard work.
func TestRequeueExpiredReroutesWhenSurvivorUp(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	b := startNode(t, "b", nil, nil)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyRequeue, RequeueTimeout: 20 * time.Millisecond}, a, b)
	waitAvailable(t, r, "a", "b")
	b.drain(t)
	waitFor(t, "b marked unavailable", func() bool {
		h, _ := r.Health("b")
		return !h.Available()
	})

	trace := testTrace(t, 30, 32)
	streamTrace(t, addr, trace)
	waitFor(t, "all frames to land on the survivor", func() bool {
		return a.srv.Stats().Received == len(trace.Packets)
	})

	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Shed != 0 {
		t.Errorf("shed %d with a healthy failover target", rst.Shed)
	}
	if rst.Rerouted == 0 {
		t.Error("no expired packet counted Rerouted though b owned some flows")
	}
	if rst.Forwarded != len(trace.Packets) {
		t.Errorf("forwarded %d, want %d", rst.Forwarded, len(trace.Packets))
	}
	a.drain(t)
}

// trackingListener wraps a listener so a test can sever it and every
// connection it accepted at once — the in-process equivalent of SIGKILL:
// no drain, no final checkpoint, the TCP buffers simply vanish.
type trackingListener struct {
	net.Listener

	mu     sync.Mutex
	conns  []net.Conn
	killed bool
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if l.killed {
		l.mu.Unlock()
		c.Close()
		return nil, net.ErrClosed
	}
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

func (l *trackingListener) kill() {
	l.mu.Lock()
	l.killed = true
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	l.Listener.Close()
	for _, c := range conns {
		c.Close()
	}
}

// TestJournalReplayAfterNodeCrash is the in-flight replication tentpole
// in miniature: a node is killed without drain after taking traffic past
// its last checkpoint; the router's journal replays the unacked packets
// into the restored successor with their original sequences, the
// successor's watermark discards everything its checkpoint already
// covers, and the cluster ends verdict-identical to an uninterrupted
// single-engine replay.
func TestJournalReplayAfterNodeCrash(t *testing.T) {
	a := startNode(t, "a", nil, nil)

	// Node b checkpoints only on demand: its acked watermark freezes at
	// the last CheckpointNow, so everything sent after it stays journaled.
	var ckptMu sync.Mutex
	var captured []byte
	bEngine := newTestEngine(t)
	bData := &trackingListener{Listener: listenLocal(t)}
	bStatus := &trackingListener{Listener: listenLocal(t)}
	bSrv, err := ingest.NewServer(ingest.Config{
		Engine:         bEngine,
		Listeners:      []net.Listener{bData},
		StatusListener: bStatus,
		Workers:        2,
		NodeName:       "b",
		NodeCheckpoint: func(payload []byte) error {
			ckptMu.Lock()
			captured = append(captured[:0], payload...)
			ckptMu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bSrv.Start(); err != nil {
		t.Fatal(err)
	}
	b := &testNode{
		cfg:    NodeConfig{Name: "b", Addr: bData.Addr().String(), StatusAddr: bStatus.Addr().String()},
		srv:    bSrv,
		engine: bEngine,
	}

	r, addr := startRouter(t, RouterConfig{Policy: PolicyRequeue, RequeueTimeout: 30 * time.Second}, a, b)
	waitAvailable(t, r, "a", "b")

	// Phase A lands everywhere, then becomes durable on b.
	traceA := testTrace(t, 40, 33)
	streamTrace(t, addr, traceA)
	waitFor(t, "phase A to land", func() bool {
		return a.srv.Stats().Received+b.srv.Stats().Received == len(traceA.Packets)
	})
	if err := bSrv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	// Phase B lands but is never checkpointed on b: from b's perspective
	// these packets exist only in memory — and in the router's journal.
	traceB := testTrace(t, 40, 34)
	streamTrace(t, addr, traceB)
	waitFor(t, "phase B to land", func() bool {
		return a.srv.Stats().Received+b.srv.Stats().Received == len(traceA.Packets)+len(traceB.Packets)
	})

	r.member.RLock()
	s := r.senders["b"]
	r.member.RUnlock()
	if s == nil {
		t.Fatal("no sender for b")
	}

	// Kill b: listeners and live connections sever at once, its engine
	// state (everything past the checkpoint) is abandoned.
	bData.kill()
	bStatus.kill()
	waitFor(t, "loss edge to arm the replay", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.pendingReplay
	})

	// Restore the successor from the captured checkpoint: engine state and
	// watermark as of the end of phase A.
	ckptMu.Lock()
	payload := append([]byte(nil), captured...)
	ckptMu.Unlock()
	seq, engineCkpt, pending, err := ingest.DecodeNodeCheckpoint(payload)
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("checkpoint watermark is zero; b took no sequenced traffic")
	}
	restored := newTestEngine(t)
	if err := restored.ImportCheckpoint(engineCkpt); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.ImportPending(pending); err != nil {
		t.Fatal(err)
	}
	var data2, status2 net.Listener
	waitFor(t, "rebind b's addresses", func() bool {
		var derr, serr error
		data2, derr = net.Listen("tcp", b.cfg.Addr)
		if derr != nil {
			return false
		}
		status2, serr = net.Listen("tcp", b.cfg.StatusAddr)
		if serr != nil {
			data2.Close()
			return false
		}
		return true
	})
	srv2, err := ingest.NewServer(ingest.Config{
		Engine:         restored,
		Listeners:      []net.Listener{data2},
		StatusListener: status2,
		Workers:        2,
		NodeName:       "b",
		ResumeSeq:      seq,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	b2 := &testNode{cfg: b.cfg, srv: srv2, engine: restored}
	waitAvailable(t, r, "b")

	// Phase C proves the stream continues seamlessly after the replay.
	traceC := testTrace(t, 40, 35)
	streamTrace(t, addr, traceC)

	total := len(traceA.Packets) + len(traceB.Packets) + len(traceC.Packets)
	waitFor(t, "all phases forwarded", func() bool { return r.Stats().Forwarded == total })
	waitFor(t, "journal replay to complete", func() bool {
		s.mu.Lock()
		pending := s.pendingReplay
		want := s.lastDelivered
		s.mu.Unlock()
		return !pending && b2.srv.Stats().SeenSeq >= want
	})

	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.Replayed == 0 {
		t.Error("no journal entries replayed across the crash")
	}
	if rst.Shed != 0 {
		t.Errorf("shed %d packets across the crash, want zero", rst.Shed)
	}

	sa, sb2 := a.drain(t), b2.drain(t)
	for _, st := range []ingest.Stats{sa, sb2} {
		if st.Admitted+st.Quarantined+st.Shed != st.Received {
			t.Errorf("node conservation violated: %+v", st)
		}
	}

	// The replayed successor must agree with an uninterrupted single-node
	// replay of all three phases — no lost packet, no double count.
	traces := []*packet.Trace{traceA, traceB, traceC}
	ref := replayReference(t, traces...)
	assertClusterMatchesReference(t, ref, traces, a, b2)
}

// TestLiveAddRemoveMigratesFlows drives membership changes through the
// direct API under sequential load: a node joins mid-stream and gains
// arcs (with their flow state), another leaves live and its flows travel
// on — mid-flow verdicts survive both moves, and every flow ends labelled
// on exactly one node.
func TestLiveAddRemoveMigratesFlows(t *testing.T) {
	a := startNode(t, "a", nil, nil)
	b := startNode(t, "b", nil, nil)
	r, addr := startRouter(t, RouterConfig{Policy: PolicyRequeue, RequeueTimeout: 30 * time.Second}, a, b)
	waitAvailable(t, r, "a", "b")

	trace1 := testTrace(t, 50, 36)
	streamTrace(t, addr, trace1)
	waitFor(t, "phase 1 to land", func() bool {
		return a.srv.Stats().Received+b.srv.Stats().Received == len(trace1.Packets)
	})

	// c joins live: AddNode waits for it to probe healthy, then migrates
	// the arcs it gains from a and b.
	c := startNode(t, "c", nil, nil)
	if err := r.AddNode(c.cfg); err != nil {
		t.Fatal(err)
	}
	if err := r.AddNode(c.cfg); !errors.Is(err, ErrNodeExists) {
		t.Errorf("second AddNode returned %v, want ErrNodeExists", err)
	}

	trace2 := testTrace(t, 50, 37)
	streamTrace(t, addr, trace2)
	received := func() int {
		return a.srv.Stats().Received + b.srv.Stats().Received + c.srv.Stats().Received
	}
	waitFor(t, "phase 2 to land", func() bool {
		return received() == len(trace1.Packets)+len(trace2.Packets)
	})

	// a leaves live: every flow it holds — including mid-buffer ones whose
	// packets are still arriving — must travel to the nodes gaining its
	// arcs. Removing an unknown name stays a no-op.
	if err := r.RemoveNode("ghost"); err != nil {
		t.Errorf("RemoveNode of unknown node returned %v, want nil no-op", err)
	}
	if err := r.RemoveNode("a"); err != nil {
		t.Fatal(err)
	}

	trace3 := testTrace(t, 50, 38)
	streamTrace(t, addr, trace3)
	total := len(trace1.Packets) + len(trace2.Packets) + len(trace3.Packets)
	waitFor(t, "phase 3 to land", func() bool { return received() == total })

	rst := drainRouter(t, r)
	assertRouterConservation(t, rst)
	if rst.NodesAdded != 1 || rst.NodesRemoved != 1 {
		t.Errorf("membership counters added=%d removed=%d, want 1/1", rst.NodesAdded, rst.NodesRemoved)
	}
	if rst.MigratedFlows == 0 {
		t.Error("no flows migrated across two membership changes")
	}
	if rst.Shed != 0 || rst.Quarantined != 0 {
		t.Errorf("membership changes lost traffic: shed=%d quarantined=%d", rst.Shed, rst.Quarantined)
	}

	sa, sb, sc := a.drain(t), b.drain(t), c.drain(t)
	for _, st := range []ingest.Stats{sa, sb, sc} {
		if st.Admitted+st.Quarantined+st.Shed != st.Received {
			t.Errorf("node conservation violated: %+v", st)
		}
	}

	// The removed node exported everything: no verdict may remain readable
	// there, and the cluster aggregate must still match the single-engine
	// reference with every flow labelled exactly once.
	for tuple := range trace1.Flows {
		if _, ok := a.engine.RecordedLabel(tuple); ok {
			t.Errorf("flow %v still readable on removed node a", tuple)
		}
	}
	traces := []*packet.Trace{trace1, trace2, trace3}
	ref := replayReference(t, traces...)
	assertClusterMatchesReference(t, ref, traces, a, b, c)
}

package flow

import (
	"errors"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func TestEnginePendingCapEvictOldest(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8, MaxPending: 2, Eviction: EvictOldest})
	// Three half-filled flows; admitting the third must evict flow 1 (the
	// least recently active) without classifying it.
	for i, port := range []uint16{1, 2, 3} {
		if _, err := e.Process(dataPacket(tuple(port, packet.TCP), time.Duration(i)*time.Millisecond, "TTTT")); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Pending != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending)
	}
	if s.Evicted != 1 || s.Dropped != 1 {
		t.Errorf("Evicted/Dropped = %d/%d, want 1/1", s.Evicted, s.Dropped)
	}
	if s.Classified != 0 {
		t.Errorf("Classified = %d, want 0", s.Classified)
	}
	// The evicted flow can complete a fresh buffer later.
	if v, err := e.Process(dataPacket(tuple(1, packet.TCP), time.Second, "TTTTTTTT")); err != nil || !v.Classified {
		t.Errorf("re-admitted flow: verdict %+v, err %v", v, err)
	}
}

func TestEnginePendingCapRecencyNotInsertionOrder(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8, MaxPending: 2, Eviction: EvictOldest})
	// Flow 1 admitted first but touched again after flow 2, so flow 2 is
	// the eviction victim when flow 3 arrives.
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "TT")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(dataPacket(tuple(2, packet.TCP), 1*time.Millisecond, "TT")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 2*time.Millisecond, "TT")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(dataPacket(tuple(3, packet.TCP), 3*time.Millisecond, "TT")); err != nil {
		t.Fatal(err)
	}
	// Flow 1 must still be pending: two more bytes after its four fill the
	// 8-byte buffer.
	if v, err := e.Process(dataPacket(tuple(1, packet.TCP), 4*time.Millisecond, "TTTT")); err != nil || !v.Classified {
		t.Errorf("flow 1 was evicted (verdict %+v, err %v); want flow 2 evicted", v, err)
	}
}

func TestEnginePendingCapClassifyPartial(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8, MaxPending: 1, Eviction: EvictClassifyPartial})
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "EEEE")); err != nil {
		t.Fatal(err)
	}
	// Admitting flow 2 classifies flow 1 on its 4-byte partial buffer.
	if _, err := e.Process(dataPacket(tuple(2, packet.TCP), time.Millisecond, "TT")); err != nil {
		t.Fatal(err)
	}
	if label, ok := e.Label(tuple(1, packet.TCP)); !ok || label != corpus.Encrypted {
		t.Errorf("evicted flow label = (%v, %v), want (encrypted, true)", label, ok)
	}
	s := e.Stats()
	if s.Evicted != 1 || s.Classified != 1 || s.Dropped != 0 {
		t.Errorf("Evicted/Classified/Dropped = %d/%d/%d, want 1/1/0", s.Evicted, s.Classified, s.Dropped)
	}
}

func TestEnginePendingCapShed(t *testing.T) {
	e := newTestEngine(t, EngineConfig{
		BufferSize: 8, MaxPending: 1, Eviction: EvictShed, FallbackClass: corpus.Binary,
	})
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "TTTT")); err != nil {
		t.Fatal(err)
	}
	v, err := e.Process(dataPacket(tuple(2, packet.TCP), time.Millisecond, "EEEE"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Routed || !v.Fallback || v.Queue != corpus.Binary {
		t.Errorf("shed verdict = %+v, want fallback binary routing", v)
	}
	// Later packets of the shed flow answer from the CDB, not the table.
	v, err = e.Process(dataPacket(tuple(2, packet.TCP), 2*time.Millisecond, "EEEE"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.FromCDB || v.Queue != corpus.Binary {
		t.Errorf("post-shed verdict = %+v, want CDB binary hit", v)
	}
	s := e.Stats()
	if s.Shed != 1 || s.Pending != 1 || s.Admitted != 1 {
		t.Errorf("Shed/Pending/Admitted = %d/%d/%d, want 1/1/1", s.Shed, s.Pending, s.Admitted)
	}
	if label, ok := e.Label(tuple(2, packet.TCP)); !ok || label != corpus.Binary {
		t.Errorf("shed flow label = (%v, %v), want (binary, true)", label, ok)
	}
}

// flakyClassifier fails while failing() is true, else defers to
// firstByteClassifier; it counts calls.
type flakyClassifier struct {
	failing bool
	calls   int
}

func (f *flakyClassifier) Classify(p []byte) (corpus.Class, error) {
	f.calls++
	if f.failing {
		return 0, errors.New("flaky down")
	}
	return firstByteClassifier().Classify(p)
}

func TestEngineStrictFailureRetiresFlow(t *testing.T) {
	// Without Tolerate: the error propagates, but the flow must not stay
	// pending and re-run the classifier on every later packet.
	clf := &flakyClassifier{failing: true}
	e := newTestEngine(t, EngineConfig{BufferSize: 2, Classifier: clf})
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "TT")); err == nil {
		t.Fatal("want classification error")
	}
	s := e.Stats()
	if s.Pending != 0 {
		t.Errorf("failed flow still pending (%d)", s.Pending)
	}
	if s.Failed != 1 || s.Dropped != 1 {
		t.Errorf("Failed/Dropped = %d/%d, want 1/1", s.Failed, s.Dropped)
	}
	// A later packet re-buffers from scratch; the classifier only runs
	// again when a fresh buffer fills — one call per fill, not per packet.
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), time.Millisecond, "T")); err != nil {
		t.Fatal(err)
	}
	if clf.calls != 1 {
		t.Errorf("classifier ran %d times, want 1 (no per-packet retry)", clf.calls)
	}
}

func TestEngineFallbackOnFailure(t *testing.T) {
	clf := &flakyClassifier{failing: true}
	e := newTestEngine(t, EngineConfig{
		BufferSize: 2, Classifier: clf,
		FallbackClass: corpus.Encrypted,
		Faults:        FaultPolicy{Tolerate: true, TripAfter: -1},
	})
	v, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "TT"))
	if err != nil {
		t.Fatalf("tolerant engine surfaced error: %v", err)
	}
	if !v.Classified || !v.Fallback || v.Queue != corpus.Encrypted {
		t.Errorf("verdict = %+v, want encrypted fallback", v)
	}
	// The flow is settled: later packets hit the CDB, no reclassification.
	if v, err := e.Process(dataPacket(tuple(1, packet.TCP), time.Millisecond, "TT")); err != nil || !v.FromCDB {
		t.Errorf("post-fallback verdict %+v err %v, want CDB hit", v, err)
	}
	if clf.calls != 1 {
		t.Errorf("classifier ran %d times, want 1", clf.calls)
	}
	s := e.Stats()
	if s.Failed != 1 || s.Fallback != 1 || s.Classified != 0 {
		t.Errorf("Failed/Fallback/Classified = %d/%d/%d, want 1/1/0", s.Failed, s.Fallback, s.Classified)
	}
}

func TestEngineDegradedModeTripAndProbeRecovery(t *testing.T) {
	clf := &flakyClassifier{failing: true}
	e := newTestEngine(t, EngineConfig{
		BufferSize: 2, Classifier: clf,
		FallbackClass: corpus.Text,
		Faults:        FaultPolicy{Tolerate: true, TripAfter: 3, ProbeEvery: 2},
	})
	process := func(port uint16, at time.Duration) Verdict {
		t.Helper()
		v, err := e.Process(dataPacket(tuple(port, packet.TCP), at, "EE"))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Three consecutive failures trip the breaker.
	for i := uint16(1); i <= 3; i++ {
		process(i, time.Duration(i)*time.Millisecond)
	}
	if !e.Degraded() {
		t.Fatal("engine not degraded after TripAfter failures")
	}
	callsAtTrip := clf.calls
	// Degraded: attempt 1 short-circuits (no call), attempt 2 probes the
	// still-broken classifier (one call), attempt 3 short-circuits again.
	for i := uint16(4); i <= 6; i++ {
		if v := process(i, time.Duration(i)*time.Millisecond); !v.Fallback || v.Queue != corpus.Text {
			t.Errorf("degraded verdict = %+v, want text fallback", v)
		}
	}
	if got := clf.calls - callsAtTrip; got != 1 {
		t.Errorf("degraded engine called classifier %d times in 3 attempts, want 1 probe", got)
	}
	if !e.Degraded() {
		t.Fatal("failed probe must keep the engine degraded")
	}
	// Heal the classifier: flow 7 is the next probe, succeeds, and
	// restores normal classification.
	clf.failing = false
	v := process(7, 7*time.Millisecond)
	if e.Degraded() {
		t.Error("engine still degraded after successful probe")
	}
	if v.Fallback || v.Queue != corpus.Encrypted {
		t.Errorf("probe verdict = %+v, want real encrypted classification", v)
	}
	if v := process(8, 8*time.Millisecond); v.Fallback {
		t.Errorf("post-recovery verdict = %+v, want real classification", v)
	}
	s := e.Stats()
	if s.Degraded != 0 {
		t.Errorf("Stats.Degraded = %d, want 0 after recovery", s.Degraded)
	}
	// 3 trip failures + 1 failed probe = 4 failures; fallbacks: those 4
	// plus the short-circuits at attempts 4 and 6.
	if s.Failed != 4 || s.Fallback != 6 {
		t.Errorf("Failed/Fallback = %d/%d, want 4/6", s.Failed, s.Fallback)
	}
}

func TestEnginePanicRecovered(t *testing.T) {
	panicky := ClassifierFunc(func([]byte) (corpus.Class, error) { panic("kaboom") })

	strict := newTestEngine(t, EngineConfig{BufferSize: 2, Classifier: panicky})
	_, err := strict.Process(dataPacket(tuple(1, packet.TCP), 0, "TT"))
	if err == nil {
		t.Fatal("strict engine: want error from recovered panic")
	}
	if s := strict.Stats(); s.Failed != 1 || s.Pending != 0 {
		t.Errorf("Failed/Pending = %d/%d, want 1/0", s.Failed, s.Pending)
	}

	tolerant := newTestEngine(t, EngineConfig{
		BufferSize: 2, Classifier: panicky,
		FallbackClass: corpus.Binary,
		Faults:        FaultPolicy{Tolerate: true},
	})
	v, err := tolerant.Process(dataPacket(tuple(1, packet.TCP), 0, "TT"))
	if err != nil {
		t.Fatalf("tolerant engine surfaced panic as error: %v", err)
	}
	if !v.Fallback || v.Queue != corpus.Binary {
		t.Errorf("verdict = %+v, want binary fallback", v)
	}
}

func TestEngineRejectsOutOfRangeClass(t *testing.T) {
	bogus := ClassifierFunc(func([]byte) (corpus.Class, error) { return corpus.Class(99), nil })
	e := newTestEngine(t, EngineConfig{
		BufferSize: 2, Classifier: bogus,
		FallbackClass: corpus.Text,
		Faults:        FaultPolicy{Tolerate: true},
	})
	v, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "TT"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Fallback || v.Queue != corpus.Text {
		t.Errorf("verdict = %+v, want fallback for out-of-range class", v)
	}
}

func TestFlushContinuesPastFailures(t *testing.T) {
	// Classifier fails on payloads starting 'X'; three due flows, one
	// poisoned. The pass must classify the other two, retire all three,
	// and report the failure in a joined error.
	clf := ClassifierFunc(func(p []byte) (corpus.Class, error) {
		if p[0] == 'X' {
			return 0, errors.New("poisoned")
		}
		return firstByteClassifier().Classify(p)
	})
	e := newTestEngine(t, EngineConfig{BufferSize: 1024, Classifier: clf})
	for port, payload := range map[uint16]string{1: "TT", 2: "XX", 3: "EE"} {
		if _, err := e.Process(dataPacket(tuple(port, packet.UDP), 0, payload)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.FlushAll(time.Second)
	if err == nil {
		t.Fatal("want aggregated error from poisoned flow")
	}
	if n != 2 {
		t.Errorf("flushed %d flows, want 2 despite the failure", n)
	}
	s := e.Stats()
	if s.Pending != 0 {
		t.Errorf("Pending = %d after FlushAll, want 0 (no stuck flows)", s.Pending)
	}
	if s.Failed != 1 || s.Classified != 2 {
		t.Errorf("Failed/Classified = %d/%d, want 1/2", s.Failed, s.Classified)
	}
	if _, ok := e.Label(tuple(1, packet.UDP)); !ok {
		t.Error("healthy flow 1 lost its label to the poisoned flow")
	}
	if _, ok := e.Label(tuple(3, packet.UDP)); !ok {
		t.Error("healthy flow 3 lost its label to the poisoned flow")
	}
}

func TestEngineLabelCapBoundsMap(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 2, LabelCap: 2})
	for i := uint16(1); i <= 5; i++ {
		if _, err := e.Process(dataPacket(tuple(i, packet.TCP), 0, "TT")); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint16(1); i <= 3; i++ {
		if _, ok := e.Label(tuple(i, packet.TCP)); ok {
			t.Errorf("flow %d label survived a cap of 2", i)
		}
	}
	for i := uint16(4); i <= 5; i++ {
		if _, ok := e.Label(tuple(i, packet.TCP)); !ok {
			t.Errorf("recent flow %d lost its label", i)
		}
	}
}

func TestEngineLabelCapDisabled(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 2, LabelCap: -1})
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "TT")); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Label(tuple(1, packet.TCP)); ok {
		t.Error("label tracking disabled but Label returned a result")
	}
	// Classification itself is unaffected.
	if v, err := e.Process(dataPacket(tuple(1, packet.TCP), time.Millisecond, "TT")); err != nil || !v.FromCDB {
		t.Errorf("verdict %+v err %v, want CDB hit", v, err)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	base := EngineConfig{BufferSize: 2, Classifier: firstByteClassifier()}
	bad := base
	bad.MaxPending = -1
	if _, err := NewEngine(bad); err == nil {
		t.Error("negative MaxPending: want error")
	}
	bad = base
	bad.Eviction = EvictPolicy(7)
	if _, err := NewEngine(bad); err == nil {
		t.Error("unknown eviction policy: want error")
	}
	bad = base
	bad.FallbackClass = corpus.Class(9)
	if _, err := NewEngine(bad); err == nil {
		t.Error("out-of-range fallback class: want error")
	}
	if _, err := ParseEvictPolicy("bogus"); err == nil {
		t.Error("ParseEvictPolicy(bogus): want error")
	}
	for _, p := range []EvictPolicy{EvictOldest, EvictClassifyPartial, EvictShed} {
		got, err := ParseEvictPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseEvictPolicy(%q) = (%v, %v)", p.String(), got, err)
		}
	}
}

func TestCDBMaxRecordsPressure(t *testing.T) {
	cdb := NewCDB(CDBConfig{MaxRecords: 64})
	for i := 0; i < 1000; i++ {
		cdb.Insert(IDOf(tuple(uint16(i), packet.TCP)), corpus.Text, time.Duration(i)*time.Millisecond)
		if got := cdb.Size(); got > 64 {
			t.Fatalf("insert %d: size %d exceeds MaxRecords 64", i, got)
		}
	}
	s := cdb.Stats()
	if s.RemovedByPressure == 0 {
		t.Error("RemovedByPressure = 0, want evictions")
	}
	// The most recent record must have survived (oldest-first eviction).
	if _, ok := cdb.Lookup(IDOf(tuple(999, packet.TCP)), time.Second); !ok {
		t.Error("newest record evicted under pressure")
	}
}

package flow

import (
	"strings"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// splitEngine builds a small-buffer engine with header stripping for the
// multi-packet header tests.
func splitEngine(t *testing.T, bufferSize int) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		BufferSize:        bufferSize,
		Classifier:        firstByteClassifier(),
		StripKnownHeaders: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMultiPacketHTTPHeaderStripped(t *testing.T) {
	// A 3-packet HTTP response header followed by encrypted-looking
	// content; the engine must discard all header bytes and classify on
	// content.
	header := "HTTP/1.1 200 OK\r\n" +
		"Server: example\r\n" +
		"Content-Type: application/octet-stream\r\n" +
		"Content-Length: 4096\r\n" +
		"Cache-Control: no-store\r\n" +
		"\r\n"
	e := splitEngine(t, 4)
	tp := tuple(6100, packet.TCP)

	chunks := []string{header[:40], header[40:90], header[90:] + "EEEE"}
	var verdict Verdict
	var err error
	for i, chunk := range chunks {
		verdict, err = e.Process(dataPacket(tp, time.Duration(i)*time.Millisecond, chunk))
		if err != nil {
			t.Fatal(err)
		}
	}
	if !verdict.Classified || verdict.Queue != corpus.Encrypted {
		t.Errorf("verdict = %+v, want encrypted classification on content", verdict)
	}
}

func TestHeaderTerminatorSplitAcrossPackets(t *testing.T) {
	// The \r\n\r\n terminator itself straddles a packet boundary.
	e := splitEngine(t, 4)
	tp := tuple(6101, packet.TCP)
	first := "HTTP/1.1 404 Not Found\r\nContent-Length: 4\r\n\r"
	second := "\nTTTT"
	if _, err := e.Process(dataPacket(tp, 0, first)); err != nil {
		t.Fatal(err)
	}
	v, err := e.Process(dataPacket(tp, time.Millisecond, second))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || v.Queue != corpus.Text {
		t.Errorf("verdict = %+v, want text classification after split terminator", v)
	}
}

func TestRunawayHeaderGivesUp(t *testing.T) {
	// A "header" that never terminates must not swallow the flow forever:
	// after maxHeaderSpan the engine buffers raw bytes and classifies.
	e := splitEngine(t, 8)
	tp := tuple(6102, packet.TCP)
	if _, err := e.Process(dataPacket(tp, 0, "HTTP/1.1 200 OK\r\nX: y\r\n")); err != nil {
		t.Fatal(err)
	}
	junk := strings.Repeat("E", 1024)
	var v Verdict
	var err error
	for i := 0; i < 12; i++ {
		v, err = e.Process(dataPacket(tp, time.Duration(i)*time.Millisecond, junk))
		if err != nil {
			t.Fatal(err)
		}
		if v.Classified {
			break
		}
	}
	if !v.Classified {
		t.Fatal("engine never gave up on a runaway header")
	}
	if v.Queue != corpus.Encrypted {
		t.Errorf("queue = %v, want encrypted from raw buffering", v.Queue)
	}
}

func TestSinglePacketHeaderUnaffected(t *testing.T) {
	// The fast path (header completes in packet one) must be unchanged.
	e := splitEngine(t, 4)
	tp := tuple(6103, packet.TCP)
	v, err := e.Process(dataPacket(tp, 0, "HTTP/1.1 200 OK\r\n\r\nBBBB"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || v.Queue != corpus.Binary {
		t.Errorf("verdict = %+v", v)
	}
}

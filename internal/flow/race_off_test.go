//go:build !race

package flow

// raceEnabled reports whether the race detector is compiled in; allocation
// assertions are skipped under it because instrumentation changes counts.
const raceEnabled = false

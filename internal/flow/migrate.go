package flow

import (
	"fmt"
	"sort"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/persist"
)

// This file is the engine's live-migration surface, the payload behind
// persist.KindMigration frames: a *filtered* export of flow state — the
// pending (mid-buffer) flows matched by a predicate plus their
// classification-database records — that a losing node hands to the
// gaining node when a consistent-hash arc moves between live nodes.
// Unlike a checkpoint (§7), a migration export *removes* the matched
// state from the source engine: after the handoff exactly one node holds
// each flow, so mid-flow verdicts and inactivity (λ) estimates survive a
// rebalance instead of being re-derived from a cold start.
//
// Accounting follows the checkpoint convention: removing a pending flow
// decrements the source's Admitted (mirroring how checkpoints exclude
// pending flows from exported Admitted) and installing it increments the
// destination's, so Admitted == Classified + Fallback + Dropped + Pending
// holds on both engines throughout. MigratedIn/MigratedOut count the
// moved flows for the cluster soak's assertions.

// pendingExport is one mid-buffer flow in wire-portable form. Exactly one
// of buf (exact mode) and sketch (stream mode) is non-empty; seen carries
// the stream-mode byte tally so the classification trigger survives the
// move.
type pendingExport struct {
	id          ID
	firstSeen   time.Duration
	lastSeen    time.Duration
	packets     int
	skipLeft    int
	seen        int
	checkedHdr  bool
	headerCont  bool
	headerSpent int
	buf         []byte
	headerTail  []byte
	sketch      []byte
}

// flowExport is a decoded migration payload: pending flows plus CDB
// records, both filtered by the same predicate.
type flowExport struct {
	pendings []pendingExport
	records  []cdbEntry
}

const (
	pendFlagCheckedHdr = 1 << 0
	pendFlagHeaderCont = 1 << 1
)

// encodeFlowExport serializes a migration payload. Hand it to
// persist.Encode / persist.SaveFile under persist.KindMigration.
func encodeFlowExport(fx flowExport) []byte {
	var enc persist.Encoder
	enc.U32(uint32(corpus.NumClasses))
	enc.U32(uint32(len(fx.pendings)))
	for _, p := range fx.pendings {
		enc.Raw(p.id[:])
		enc.I64(int64(p.firstSeen))
		enc.I64(int64(p.lastSeen))
		enc.I64(int64(p.packets))
		enc.I64(int64(p.skipLeft))
		var flags uint8
		if p.checkedHdr {
			flags |= pendFlagCheckedHdr
		}
		if p.headerCont {
			flags |= pendFlagHeaderCont
		}
		enc.U8(flags)
		enc.I64(int64(p.headerSpent))
		enc.I64(int64(p.seen))
		enc.Blob(p.buf)
		enc.Blob(p.headerTail)
		enc.Blob(p.sketch)
	}
	enc.Blob(encodeCDBEntries(fx.records))
	return enc.Bytes()
}

// pendingExportWire is the fixed-size portion of one encoded pending
// flow, used to validate the declared count before allocating.
const pendingExportWire = 20 + 5*8 + 1 + 8 + 3*4

// decodeFlowExport parses a migration payload. Hostile input returns an
// error wrapping persist.ErrCorrupt — never a panic.
func decodeFlowExport(data []byte) (flowExport, error) {
	var fx flowExport
	d := persist.NewDecoder(data)
	nClasses := int(d.U32())
	if d.Err() == nil && nClasses != corpus.NumClasses {
		d.Fail("migration payload has %d classes, engine has %d", nClasses, corpus.NumClasses)
	}
	n := d.Count(pendingExportWire)
	if n >= 0 {
		fx.pendings = make([]pendingExport, 0, n)
		for i := 0; i < n; i++ {
			var p pendingExport
			copy(p.id[:], d.Take(len(p.id)))
			p.firstSeen = time.Duration(d.I64())
			p.lastSeen = time.Duration(d.I64())
			p.packets = int(d.I64())
			p.skipLeft = int(d.I64())
			flags := d.U8()
			p.checkedHdr = flags&pendFlagCheckedHdr != 0
			p.headerCont = flags&pendFlagHeaderCont != 0
			p.headerSpent = int(d.I64())
			p.seen = int(d.I64())
			p.buf = append([]byte(nil), d.Blob()...)
			p.headerTail = append([]byte(nil), d.Blob()...)
			p.sketch = append([]byte(nil), d.Blob()...)
			if d.Err() != nil {
				break
			}
			if p.firstSeen < 0 || p.lastSeen < 0 || p.packets < 0 || p.headerSpent < 0 || p.seen < 0 {
				d.Fail("pending flow %d has negative time or count", i)
				break
			}
			fx.pendings = append(fx.pendings, p)
		}
	}
	blob := d.Blob()
	if err := d.Finish(); err != nil {
		return flowExport{}, fmt.Errorf("flow: migration import: %w", err)
	}
	records, err := decodeCDBEntries(blob)
	if err != nil {
		return flowExport{}, fmt.Errorf("flow: migration import: %w", err)
	}
	fx.records = records
	return fx, nil
}

// takeFlows removes every pending flow and CDB record whose ID matches
// pred and returns them, deterministically ordered. The removed pending
// flows decrement admitted (the checkpoint convention) and count as
// MigratedOut.
func (e *Engine) takeFlows(pred func(ID) bool) flowExport {
	e.mu.Lock()
	defer e.mu.Unlock()
	var fx flowExport
	for id, fl := range e.pend {
		if !pred(id) {
			continue
		}
		fx.pendings = append(fx.pendings, exportPending(id, fl))
		e.retireLocked(id, fl)
		e.ec.admitted.Add(-1)
		e.ec.migratedOut.Add(1)
	}
	sortPendings(fx.pendings)
	fx.records = e.cdb.takeEntries(pred)
	// A migrated verdict must be readable on exactly one node: drop the
	// moved flows from the local ground-truth map so RecordedLabel stops
	// answering for them here.
	if e.labelled != nil {
		for _, ent := range fx.records {
			delete(e.labelled, ent.id)
		}
	}
	return fx
}

func exportPending(id ID, fl *pending) pendingExport {
	p := pendingExport{
		id:          id,
		firstSeen:   fl.firstSeen,
		lastSeen:    fl.lastSeen,
		packets:     fl.packets,
		skipLeft:    fl.skipLeft,
		seen:        fl.seen,
		checkedHdr:  fl.checkedHdr,
		headerCont:  fl.headerCont,
		headerSpent: fl.headerSpent,
		buf:         append([]byte(nil), fl.buf...),
		headerTail:  append([]byte(nil), fl.headerTail...),
	}
	if fl.sv != nil {
		p.sketch = fl.sv.ExportState()
	}
	return p
}

func sortPendings(ps []pendingExport) {
	sort.Slice(ps, func(i, j int) bool { return string(ps[i].id[:]) < string(ps[j].id[:]) })
}

// snapshotPendings copies every pending flow without removing anything —
// the node-checkpoint variant, where the CDB already travels inside the
// engine checkpoint and the pending flows ride alongside so a SIGKILLed
// node's mid-buffer flows survive the restart.
func (e *Engine) snapshotPendings() []pendingExport {
	e.mu.Lock()
	defer e.mu.Unlock()
	ps := make([]pendingExport, 0, len(e.pend))
	for id, fl := range e.pend {
		ps = append(ps, exportPending(id, fl))
	}
	sortPendings(ps)
	return ps
}

// convertModeLocked reconciles an imported flow's payload state with this
// engine's mode. Same-mode imports restore directly: a sketch blob decodes
// into a fresh StreamVector, a buffer is kept as-is. Cross-mode imports
// convert what is convertible — a buffered prefix replays into a fresh
// sketch (exact → stream), while a sketch arriving at a buffered engine is
// discarded (payload bytes are unrecoverable from counters) and the flow
// resumes buffering from zero. A sketch blob that fails to decode (foreign
// counter geometry, corruption) likewise resets the flow's stream state
// rather than poisoning estimates. Caller holds e.mu.
func (e *Engine) convertModeLocked(fl *pending, sketch []byte) {
	if !e.streaming() {
		fl.seen = 0
		return
	}
	if len(sketch) > 0 {
		if sv, err := entest.NewStreamVectorConfig(e.scfg); err == nil {
			if err := sv.ImportState(sketch); err == nil {
				fl.sv = sv
				fl.buf = nil
				return
			}
		}
	}
	if len(fl.buf) > 0 {
		if sv, err := entest.NewStreamVectorConfig(e.scfg); err == nil {
			sv.Write(fl.buf)
			fl.sv = sv
			fl.seen = len(fl.buf)
			fl.buf = nil
			return
		}
	}
	fl.sv = nil
	fl.buf = nil
	fl.seen = 0
}

// installFlows adds a decoded export to this engine. Installed pending
// flows increment admitted (balancing takeFlows/checkpoint accounting);
// when migration is true they also count as MigratedIn. A pending flow
// already present locally is skipped — the local copy is newer. Returns
// how many pending flows plus records landed.
func (e *Engine) installFlows(fx flowExport, migration bool) int {
	e.mu.Lock()
	moved := 0
	for _, p := range fx.pendings {
		if _, exists := e.pend[p.id]; exists {
			continue
		}
		if e.cfg.MaxPending > 0 && len(e.pend) >= e.cfg.MaxPending {
			e.evictOneLocked(p.lastSeen)
		}
		fl := &pending{
			buf:         p.buf,
			seen:        p.seen,
			skipLeft:    p.skipLeft,
			checkedHdr:  p.checkedHdr,
			headerCont:  p.headerCont,
			headerTail:  p.headerTail,
			headerSpent: p.headerSpent,
			firstSeen:   p.firstSeen,
			lastSeen:    p.lastSeen,
			packets:     p.packets,
		}
		e.convertModeLocked(fl, p.sketch)
		fl.elem = e.lru.PushBack(p.id)
		e.pend[p.id] = fl
		e.ec.admitted.Add(1)
		e.ec.pending.Add(1)
		if migration {
			e.ec.migratedIn.Add(1)
		}
		moved++
		// Guard against a buffer-size mismatch between nodes: a flow
		// already at or over this engine's b classifies immediately, since
		// processData would otherwise never trigger it (and the exact path
		// would slice out of bounds).
		if len(fl.buf) >= e.cfg.BufferSize || (e.streaming() && fl.seen >= e.cfg.BufferSize) {
			_, _ = e.classifyLocked(p.id, fl, p.lastSeen)
		}
	}
	e.mu.Unlock()
	if len(fx.records) > 0 {
		moved += e.cdb.installEntries(fx.records)
		if migration {
			e.ec.migratedIn.Add(int64(len(fx.records)))
		}
	}
	return moved
}

// ExportFlows removes and serializes every pending flow and CDB record
// matched by pred — the losing side of a flow-table migration.
func (e *Engine) ExportFlows(pred func(ID) bool) []byte {
	return encodeFlowExport(e.takeFlows(pred))
}

// ImportFlows installs a payload written by ExportFlows — the gaining
// side of a flow-table migration. It returns how many pending flows plus
// CDB records landed. Hostile input returns an error wrapping
// persist.ErrCorrupt and leaves the engine unchanged.
func (e *Engine) ImportFlows(data []byte) (int, error) {
	fx, err := decodeFlowExport(data)
	if err != nil {
		return 0, err
	}
	return e.installFlows(fx, true), nil
}

// ExportFlows removes and serializes every matching pending flow and CDB
// record across all shards into one flat payload. The payload is not
// shard-pinned: ImportFlows re-routes every flow by ID, so source and
// destination may run different shard counts.
func (pe *ParallelEngine) ExportFlows(pred func(ID) bool) []byte {
	var all flowExport
	for _, shard := range pe.shards {
		fx := shard.takeFlows(pred)
		all.pendings = append(all.pendings, fx.pendings...)
		all.records = append(all.records, fx.records...)
	}
	sortPendings(all.pendings)
	sortCDBEntries(all.records)
	return encodeFlowExport(all)
}

// ImportFlows installs a migration payload, routing each flow to its
// shard by ID.
func (pe *ParallelEngine) ImportFlows(data []byte) (int, error) {
	fx, err := decodeFlowExport(data)
	if err != nil {
		return 0, err
	}
	perShard := make([]flowExport, len(pe.shards))
	for _, p := range fx.pendings {
		i := pe.shardIndex(p.id)
		perShard[i].pendings = append(perShard[i].pendings, p)
	}
	for _, ent := range fx.records {
		i := pe.shardIndex(ent.id)
		perShard[i].records = append(perShard[i].records, ent)
	}
	moved := 0
	for i, shard := range pe.shards {
		moved += shard.installFlows(perShard[i], true)
	}
	return moved, nil
}

// ExportPending snapshots every shard's pending flows without removing
// them — the in-flight section of a node checkpoint (the CDB and
// counters travel in the engine checkpoint alongside).
func (pe *ParallelEngine) ExportPending() []byte {
	var all flowExport
	for _, shard := range pe.shards {
		all.pendings = append(all.pendings, shard.snapshotPendings()...)
	}
	sortPendings(all.pendings)
	return encodeFlowExport(all)
}

// ImportPending installs a payload written by ExportPending into a
// freshly restored engine. Unlike ImportFlows it does not count the
// flows as migrated: they never left the node, they survived its crash.
func (pe *ParallelEngine) ImportPending(data []byte) (int, error) {
	fx, err := decodeFlowExport(data)
	if err != nil {
		return 0, err
	}
	perShard := make([]flowExport, len(pe.shards))
	for _, p := range fx.pendings {
		i := pe.shardIndex(p.id)
		perShard[i].pendings = append(perShard[i].pendings, p)
	}
	for _, ent := range fx.records {
		i := pe.shardIndex(ent.id)
		perShard[i].records = append(perShard[i].records, ent)
	}
	moved := 0
	for i, shard := range pe.shards {
		moved += shard.installFlows(perShard[i], false)
	}
	return moved, nil
}

package flow

import (
	"errors"
	"fmt"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// ParallelEngine shards flows across independent engines by flow ID, so a
// multi-queue NIC (or multiple goroutines) can classify in parallel
// without cross-shard lock contention. All packets of one flow hash to the
// same shard, so per-flow state never crosses shards and each shard's CDB
// purging behaves exactly like a single engine's.
type ParallelEngine struct {
	shards []*Engine
}

// NewParallelEngine builds shards engines from cfg. When classifiers is
// non-nil it must supply one classifier per shard (use this when the
// classifier holds per-instance state, e.g. an entropy estimator);
// otherwise cfg.Classifier is shared across shards and must be safe for
// concurrent use (the exact-calculation classifier is).
func NewParallelEngine(cfg EngineConfig, shards int, classifiers []Classifier) (*ParallelEngine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("flow: shard count %d is not positive", shards)
	}
	if classifiers != nil && len(classifiers) != shards {
		return nil, fmt.Errorf("flow: %d classifiers for %d shards", len(classifiers), shards)
	}
	pe := &ParallelEngine{shards: make([]*Engine, shards)}
	for i := range pe.shards {
		shardCfg := cfg
		shardCfg.Seed = cfg.Seed + int64(i)
		if classifiers != nil {
			shardCfg.Classifier = classifiers[i]
		}
		engine, err := NewEngine(shardCfg)
		if err != nil {
			return nil, fmt.Errorf("flow: shard %d: %w", i, err)
		}
		pe.shards[i] = engine
	}
	return pe, nil
}

// Shards returns the shard count.
func (pe *ParallelEngine) Shards() int { return len(pe.shards) }

// shardFor maps a flow ID to its shard. The SHA-1 flow ID is uniform, so
// any fixed bytes of it balance the shards.
func (pe *ParallelEngine) shardFor(id ID) *Engine {
	idx := (int(id[0])<<8 | int(id[1])) % len(pe.shards)
	return pe.shards[idx]
}

// Process routes a packet to its flow's shard. Safe for concurrent use;
// callers typically run one goroutine per NIC queue.
func (pe *ParallelEngine) Process(p *packet.Packet) (Verdict, error) {
	if p == nil {
		return Verdict{}, errors.New("flow: nil packet")
	}
	return pe.shardFor(IDOf(p.Tuple)).Process(p)
}

// FlushIdle flushes idle pending flows on every shard.
func (pe *ParallelEngine) FlushIdle(now time.Duration) (int, error) {
	total := 0
	for i, shard := range pe.shards {
		n, err := shard.FlushIdle(now)
		total += n
		if err != nil {
			return total, fmt.Errorf("flow: shard %d: %w", i, err)
		}
	}
	return total, nil
}

// FlushAll flushes every pending flow on every shard.
func (pe *ParallelEngine) FlushAll(now time.Duration) (int, error) {
	total := 0
	for i, shard := range pe.shards {
		n, err := shard.FlushAll(now)
		total += n
		if err != nil {
			return total, fmt.Errorf("flow: shard %d: %w", i, err)
		}
	}
	return total, nil
}

// Label returns the classification of a flow, if any shard has one.
func (pe *ParallelEngine) Label(t packet.FiveTuple) (corpus.Class, bool) {
	return pe.shardFor(IDOf(t)).Label(t)
}

// Stats aggregates counters across shards.
func (pe *ParallelEngine) Stats() EngineStats {
	var agg EngineStats
	for _, shard := range pe.shards {
		s := shard.Stats()
		agg.Pending += s.Pending
		agg.Classified += s.Classified
		for c := range agg.QueueCounts {
			agg.QueueCounts[c] += s.QueueCounts[c]
		}
		agg.CDB.Size += s.CDB.Size
		agg.CDB.Insertions += s.CDB.Insertions
		agg.CDB.RemovedByClose += s.CDB.RemovedByClose
		agg.CDB.RemovedByIdle += s.CDB.RemovedByIdle
		agg.CDB.Reinsertions += s.CDB.Reinsertions
		agg.CDB.Expired += s.CDB.Expired
	}
	return agg
}

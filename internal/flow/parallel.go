package flow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
	"iustitia/internal/persist"
)

// ParallelEngine shards flows across independent engines by flow ID, so a
// multi-queue NIC (or multiple goroutines) can classify in parallel
// without cross-shard lock contention. All packets of one flow hash to the
// same shard, so per-flow state never crosses shards and each shard's CDB
// purging behaves exactly like a single engine's.
type ParallelEngine struct {
	shards []*Engine

	// pl is the optional pipelined-mode worker set (see batch.go); nil
	// while the engine is synchronous. scratch pools the batch partition
	// buffers.
	pl      atomic.Pointer[pipeline]
	scratch sync.Pool
}

// NewParallelEngine builds shards engines from cfg. When classifiers is
// non-nil it must supply one classifier per shard (use this when the
// classifier holds per-instance state, e.g. an entropy estimator);
// otherwise cfg.Classifier is shared across shards and must be safe for
// concurrent use (the exact-calculation classifier is).
func NewParallelEngine(cfg EngineConfig, shards int, classifiers []Classifier) (*ParallelEngine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("flow: shard count %d is not positive", shards)
	}
	if classifiers != nil && len(classifiers) != shards {
		return nil, fmt.Errorf("flow: %d classifiers for %d shards", len(classifiers), shards)
	}
	pe := &ParallelEngine{shards: make([]*Engine, shards)}
	for i := range pe.shards {
		shardCfg := cfg
		shardCfg.Seed = cfg.Seed + int64(i)
		if classifiers != nil {
			shardCfg.Classifier = classifiers[i]
		}
		engine, err := NewEngine(shardCfg)
		if err != nil {
			return nil, fmt.Errorf("flow: shard %d: %w", i, err)
		}
		pe.shards[i] = engine
	}
	return pe, nil
}

// Shards returns the shard count.
func (pe *ParallelEngine) Shards() int { return len(pe.shards) }

// shardFor maps a flow ID to its shard. It reduces a full 64-bit word of
// the SHA-1 flow ID: a two-byte reduction (the old scheme) leaves only
// 65536 distinct values, which mod a non-power-of-two shard count skews
// the residue classes and unbalances shard load.
func (pe *ParallelEngine) shardFor(id ID) *Engine {
	return pe.shards[pe.shardIndex(id)]
}

// shardIndex is shardFor returning the index, for migration dispatch.
func (pe *ParallelEngine) shardIndex(id ID) int {
	return int(binary.BigEndian.Uint64(id[:8]) % uint64(len(pe.shards)))
}

// Process routes a packet to its flow's shard. Safe for concurrent use;
// callers typically run one goroutine per NIC queue.
func (pe *ParallelEngine) Process(p *packet.Packet) (Verdict, error) {
	if p == nil {
		return Verdict{}, errors.New("flow: nil packet")
	}
	return pe.shardFor(IDOf(p.Tuple)).Process(p)
}

// FlushIdle flushes idle pending flows on every shard. A failing shard
// does not stop the others; per-shard errors come back joined.
func (pe *ParallelEngine) FlushIdle(now time.Duration) (int, error) {
	total := 0
	var errs []error
	for i, shard := range pe.shards {
		n, err := shard.FlushIdle(now)
		total += n
		if err != nil {
			errs = append(errs, fmt.Errorf("flow: shard %d: %w", i, err))
		}
	}
	return total, errors.Join(errs...)
}

// FlushAll flushes every pending flow on every shard. A failing shard
// does not stop the others; per-shard errors come back joined.
func (pe *ParallelEngine) FlushAll(now time.Duration) (int, error) {
	total := 0
	var errs []error
	for i, shard := range pe.shards {
		n, err := shard.FlushAll(now)
		total += n
		if err != nil {
			errs = append(errs, fmt.Errorf("flow: shard %d: %w", i, err))
		}
	}
	return total, errors.Join(errs...)
}

// Label returns the classification of a flow, if any shard has one.
func (pe *ParallelEngine) Label(t packet.FiveTuple) (corpus.Class, bool) {
	return pe.shardFor(IDOf(t)).Label(t)
}

// RecordedLabel returns a flow's durable verdict, surviving a checkpoint
// restore (see Engine.RecordedLabel).
func (pe *ParallelEngine) RecordedLabel(t packet.FiveTuple) (corpus.Class, bool) {
	return pe.shardFor(IDOf(t)).RecordedLabel(t)
}

// StreamCounters returns the per-flow counter budget of stream mode, or
// 0 for a buffered engine. The budget is engine-wide by construction:
// NewParallelEngine copies one EngineConfig to every shard, varying only
// the random-skip Seed, and the stream seed (StreamConfig.Seed) is
// documented engine-wide so sketches migrate bit-exactly between shards.
// Every shard therefore derives the identical (ε, δ, widths, b) counter
// geometry, and shard 0 answers for all of them — an invariant pinned by
// TestParallelStreamCountersUniform.
func (pe *ParallelEngine) StreamCounters() int {
	return pe.shards[0].StreamCounters()
}

// Stats aggregates counters across shards. Degraded is the number of
// shards currently in degraded mode. The walk is lock-free: each shard's
// Stats is an atomic snapshot (see Engine.Stats), so scraping a 16-shard
// engine no longer acquires 16 shard locks in turn.
func (pe *ParallelEngine) Stats() EngineStats {
	var agg EngineStats
	for _, shard := range pe.shards {
		agg.add(shard.Stats())
	}
	return agg
}

// ExportCheckpoint serializes every shard's checkpoint into one payload.
// Frame it with persist.SaveFile under persist.KindParallelCheckpoint.
// The shard count is pinned in the payload: flow→shard routing depends on
// it, so a checkpoint can only be restored into an engine with the same
// shard count.
func (pe *ParallelEngine) ExportCheckpoint() []byte {
	var enc persist.Encoder
	enc.U32(uint32(len(pe.shards)))
	for _, shard := range pe.shards {
		enc.Blob(shard.ExportCheckpoint())
	}
	return enc.Bytes()
}

// ImportCheckpoint restores a checkpoint written by ExportCheckpoint. The
// shard count must match exactly — a CDB record restored into the wrong
// shard would never be hit by shardFor. The payload is fully validated
// before any shard is touched, but a semantic failure inside shard i can
// leave shards 0..i-1 restored; callers that need all-or-nothing should
// import into a fresh engine and discard it on error (what
// iustitia-serve's cold-start fallback does).
func (pe *ParallelEngine) ImportCheckpoint(data []byte) error {
	d := persist.NewDecoder(data)
	n := d.U32()
	if d.Err() == nil && int(n) != len(pe.shards) {
		d.Fail("checkpoint has %d shards, engine has %d", n, len(pe.shards))
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("flow: parallel checkpoint import: %w", err)
	}
	blobs := make([][]byte, len(pe.shards))
	for i := range blobs {
		blobs[i] = d.Blob()
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("flow: parallel checkpoint import: %w", err)
	}
	for i, shard := range pe.shards {
		if err := shard.ImportCheckpoint(blobs[i]); err != nil {
			return fmt.Errorf("flow: shard %d: %w", i, err)
		}
	}
	return nil
}

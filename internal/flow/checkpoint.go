package flow

import (
	"fmt"

	"iustitia/internal/corpus"
	"iustitia/internal/persist"
)

// This file is the engine's crash-recovery surface, the payload behind
// persist.KindCheckpoint snapshots: the governor counters plus a full
// CDB export. Restoring a checkpoint into a fresh engine makes already
// classified flows hit the CDB path again — no re-buffering, no
// re-classification — and keeps the PR-1 accounting invariant
// (Admitted == Classified + Fallback + Dropped + Pending) true across
// the restart. Pending buffers are deliberately not persisted: a flow
// that was mid-buffer when the process died simply re-admits itself
// when its next packet arrives, so exported Admitted excludes flows
// that were still pending.

// ExportCheckpoint serializes the engine's durable state: counters and
// the classification database. Frame it with persist.Encode or hand it
// to persist.SaveFile under persist.KindCheckpoint.
func (e *Engine) ExportCheckpoint() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.exportCheckpointLocked()
}

func (e *Engine) exportCheckpointLocked() []byte {
	// e.mu is held, so no counter moves while the snapshot is encoded —
	// atomic loads here read a mutually consistent set.
	r := e.restored.Load()
	var enc persist.Encoder
	enc.U32(uint32(corpus.NumClasses))
	for i := range e.ec.queued {
		enc.I64(e.ec.queued[i].Load() + int64(r.QueueCounts[i]))
	}
	enc.I64(e.ec.classified.Load() + int64(r.Classified))
	// Pending flows are not persisted, so they must not count as admitted
	// in the snapshot or the conservation law breaks on resume.
	enc.I64(e.ec.admitted.Load() + int64(r.Admitted) - int64(len(e.pend)))
	enc.I64(e.ec.shed.Load() + int64(r.Shed))
	enc.I64(e.ec.evicted.Load() + int64(r.Evicted))
	enc.I64(e.ec.dropped.Load() + int64(r.Dropped))
	enc.I64(e.ec.failed.Load() + int64(r.Failed))
	enc.I64(e.ec.fallback.Load() + int64(r.Fallback))
	enc.Blob(e.cdb.exportLocked())
	return enc.Bytes()
}

// ImportCheckpoint restores a checkpoint written by ExportCheckpoint
// into this engine: counters are added to the restored baselines
// reported by Stats, and the CDB records are imported (honouring
// MaxRecords). Hostile input returns an error wrapping
// persist.ErrCorrupt and leaves the engine unchanged.
func (e *Engine) ImportCheckpoint(data []byte) error {
	d := persist.NewDecoder(data)
	var s EngineStats
	nClasses := int(d.U32())
	if d.Err() == nil && nClasses != corpus.NumClasses {
		d.Fail("checkpoint has %d classes, engine has %d", nClasses, corpus.NumClasses)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("flow: checkpoint import: %w", err)
	}
	counters := make([]int64, 0, corpus.NumClasses+7)
	for i := 0; i < corpus.NumClasses+7; i++ {
		counters = append(counters, d.I64())
	}
	blob := d.Blob()
	if err := d.Finish(); err != nil {
		return fmt.Errorf("flow: checkpoint import: %w", err)
	}
	for _, c := range counters {
		if c < 0 {
			return fmt.Errorf("%w: negative checkpoint counter %d", persist.ErrCorrupt, c)
		}
	}
	for i := 0; i < corpus.NumClasses; i++ {
		s.QueueCounts[i] = int(counters[i])
	}
	s.Classified = int(counters[corpus.NumClasses+0])
	s.Admitted = int(counters[corpus.NumClasses+1])
	s.Shed = int(counters[corpus.NumClasses+2])
	s.Evicted = int(counters[corpus.NumClasses+3])
	s.Dropped = int(counters[corpus.NumClasses+4])
	s.Failed = int(counters[corpus.NumClasses+5])
	s.Fallback = int(counters[corpus.NumClasses+6])

	// Validate and import the CDB payload before touching engine state so
	// a corrupt checkpoint leaves the engine untouched.
	if err := e.cdb.Import(blob); err != nil {
		return fmt.Errorf("flow: checkpoint import: %w", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// The restored baseline is an immutable snapshot behind an atomic
	// pointer (so the lock-free Stats can fold it in); build the updated
	// copy and publish it whole.
	next := *e.restored.Load()
	next.Classified += s.Classified
	next.Admitted += s.Admitted
	next.Shed += s.Shed
	next.Evicted += s.Evicted
	next.Dropped += s.Dropped
	next.Failed += s.Failed
	next.Fallback += s.Fallback
	for i := range s.QueueCounts {
		next.QueueCounts[i] += s.QueueCounts[i]
	}
	e.restored.Store(&next)
	return nil
}

// maybeCheckpoint fires the configured OnCheckpoint hook when enough
// flows have been classified since the last snapshot. It is called
// outside the engine lock so the hook may call any engine method.
func (e *Engine) maybeCheckpoint() {
	cfg := e.cfg
	if cfg.OnCheckpoint == nil || cfg.CheckpointEvery <= 0 {
		return
	}
	e.mu.Lock()
	if e.sinceCkpt < cfg.CheckpointEvery {
		e.mu.Unlock()
		return
	}
	e.sinceCkpt = 0
	blob := e.exportCheckpointLocked()
	e.mu.Unlock()
	cfg.OnCheckpoint(blob)
}

package flow

import (
	"fmt"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/entest"
)

// This file is the engine's resource governor: the policies that keep
// per-flow state bounded under flow churn and keep the classifier path
// alive when the pluggable classifier misbehaves. An inline middlebox
// cannot fall over because traffic got weird — it must shed, degrade, and
// recover.

// EvictPolicy selects what the engine does when a new flow arrives while
// the pending-flow table is at MaxPending.
type EvictPolicy int

const (
	// EvictOldest drops the least-recently-active pending flow
	// unclassified to make room for the new one.
	EvictOldest EvictPolicy = iota
	// EvictClassifyPartial classifies the least-recently-active pending
	// flow on whatever prefix it has buffered so far (falling back to
	// EvictOldest when its buffer is still empty), then admits the new
	// flow. Trades a noisier label for never losing a flow.
	EvictClassifyPartial
	// EvictShed refuses the new flow: it is labelled FallbackClass
	// immediately, a CDB record is written so later packets route without
	// touching the pending table, and the Shed counter increments.
	EvictShed
)

// String names the policy for flags and logs.
func (p EvictPolicy) String() string {
	switch p {
	case EvictOldest:
		return "oldest"
	case EvictClassifyPartial:
		return "partial"
	case EvictShed:
		return "shed"
	default:
		return fmt.Sprintf("EvictPolicy(%d)", int(p))
	}
}

// ParseEvictPolicy maps a flag value to its policy.
func ParseEvictPolicy(s string) (EvictPolicy, error) {
	switch s {
	case "oldest":
		return EvictOldest, nil
	case "partial":
		return EvictClassifyPartial, nil
	case "shed":
		return EvictShed, nil
	default:
		return 0, fmt.Errorf("flow: unknown eviction policy %q (want oldest|partial|shed)", s)
	}
}

// FaultPolicy controls what the engine does when the classifier returns an
// error or panics. The zero value preserves strict behaviour: errors
// propagate to the caller (the flow is still retired so it is never
// re-classified on every subsequent packet).
type FaultPolicy struct {
	// Tolerate routes flows whose classification failed to the engine's
	// FallbackClass instead of returning an error. Panics are recovered in
	// both modes; with Tolerate they too become fallback routings.
	Tolerate bool
	// TripAfter is how many consecutive classification failures switch the
	// engine into degraded mode, where classification short-circuits to
	// the fallback queue without calling the classifier at all. Zero
	// defaults to 8; negative disables degraded mode.
	TripAfter int
	// ProbeEvery is how often a degraded engine probes the real classifier
	// to detect recovery: every ProbeEvery-th classification attempt runs
	// the classifier, and a success restores normal operation. Zero
	// defaults to 64.
	ProbeEvery int
}

const (
	defaultTripAfter  = 8
	defaultProbeEvery = 64
)

func (f FaultPolicy) tripAfter() int {
	if f.TripAfter == 0 {
		return defaultTripAfter
	}
	return f.TripAfter
}

func (f FaultPolicy) probeEvery() int {
	if f.ProbeEvery <= 0 {
		return defaultProbeEvery
	}
	return f.ProbeEvery
}

// safeCall invokes a pluggable classification step with panic containment:
// an escaping panic on the packet path would take the whole inline engine
// down, so it is converted into an ordinary classification error.
func safeCall(classify func() (corpus.Class, error)) (label corpus.Class, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("classifier panic: %v", r)
		}
	}()
	label, err = classify()
	if err == nil && (label < 0 || label >= corpus.NumClasses) {
		return 0, fmt.Errorf("classifier returned out-of-range class %d", int(label))
	}
	return label, err
}

// safeClassify is safeCall over the engine's payload classifier.
func safeClassify(c Classifier, buf []byte) (corpus.Class, error) {
	return safeCall(func() (corpus.Class, error) { return c.Classify(buf) })
}

// decideLocked produces the label for a filled (or flushed) buffer. Caller
// holds e.mu.
func (e *Engine) decideLocked(buf []byte) (label corpus.Class, fellBack bool, err error) {
	return e.decideWithLocked(func() (corpus.Class, error) { return e.cfg.Classifier.Classify(buf) })
}

// decideStreamLocked produces the label for a stream-mode flow from its
// sketch's entropy vector. A sketch that never saw payload, or whose widest
// feature has not yet formed one element (entropy.ErrShortSequence from
// Vector), is a classification failure like any other — it flows through
// the fault policy rather than fabricating a zero vector. Caller holds e.mu.
func (e *Engine) decideStreamLocked(sv *entest.StreamVector) (label corpus.Class, fellBack bool, err error) {
	return e.decideWithLocked(func() (corpus.Class, error) {
		if sv == nil {
			return 0, fmt.Errorf("stream flow has no sketched payload")
		}
		vec, err := sv.Vector()
		if err != nil {
			return 0, fmt.Errorf("stream vector: %w", err)
		}
		return e.vclf.ClassifyVector(vec)
	})
}

// decideWithLocked runs one classification step under the fault policy:
// panic recovery, consecutive-failure counting, degraded-mode
// short-circuiting, and probing recovery. It reports whether the label is
// a fallback (failure or degraded short-circuit) rather than a real
// classification. Caller holds e.mu.
func (e *Engine) decideWithLocked(classify func() (corpus.Class, error)) (label corpus.Class, fellBack bool, err error) {
	f := e.cfg.Faults
	if e.ec.degraded.Load() {
		e.sinceProbe++
		if e.sinceProbe < f.probeEvery() {
			return e.cfg.FallbackClass, true, nil
		}
		e.sinceProbe = 0 // fall through: probe the real classifier
	}
	label, err = safeCall(classify)
	if err != nil {
		e.ec.failed.Add(1)
		e.consecFails++
		if f.Tolerate {
			if f.tripAfter() > 0 && e.consecFails >= f.tripAfter() && !e.ec.degraded.Load() {
				e.ec.degraded.Store(true)
				e.sinceProbe = 0
			}
			return e.cfg.FallbackClass, true, nil
		}
		return 0, true, err
	}
	e.consecFails = 0
	e.ec.degraded.Store(false) // a successful probe (or call) restores normal mode
	return label, false, nil
}

// evictOneLocked makes room in the pending table by retiring its
// least-recently-active flow, classifying it first under
// EvictClassifyPartial. Classification errors are already counted by the
// failure path and are not the admitting packet's fault, so they are
// swallowed here. Caller holds e.mu.
func (e *Engine) evictOneLocked(now time.Duration) {
	front := e.lru.Front()
	if front == nil {
		return
	}
	id := front.Value.(ID)
	fl := e.pend[id]
	e.ec.evicted.Add(1)
	if e.cfg.Eviction == EvictClassifyPartial && fl.hasData() {
		_, _ = e.classifyLocked(id, fl, now)
		return
	}
	e.retireLocked(id, fl)
	e.ec.dropped.Add(1)
}

// shedLocked refuses admission for a new flow: it is routed to the
// fallback queue and remembered in the CDB so its later packets are
// answered without pending state. Caller holds e.mu.
func (e *Engine) shedLocked(id ID, now time.Duration) Verdict {
	e.ec.shed.Add(1)
	e.cdb.Insert(id, e.cfg.FallbackClass, now)
	e.recordLabelLocked(id, e.cfg.FallbackClass)
	e.ec.queued[e.cfg.FallbackClass].Add(1)
	e.sinceCkpt++
	return Verdict{Queue: e.cfg.FallbackClass, Routed: true, Fallback: true}
}

// recordLabelLocked stores a flow's final label in the ground-truth map,
// honouring LabelCap: 0 keeps every label, n > 0 keeps the n most recent
// (older labels are forgotten FIFO), negative disables the map entirely.
// Caller holds e.mu.
func (e *Engine) recordLabelLocked(id ID, label corpus.Class) {
	cap := e.cfg.LabelCap
	if cap < 0 {
		return
	}
	if cap > 0 {
		if _, present := e.labelled[id]; !present {
			if e.labelRing == nil {
				e.labelRing = make([]ID, cap)
			}
			if e.labelCount == cap {
				delete(e.labelled, e.labelRing[e.labelHead])
				e.labelHead = (e.labelHead + 1) % cap
				e.labelCount--
			}
			e.labelRing[(e.labelHead+e.labelCount)%cap] = id
			e.labelCount++
		}
	}
	e.labelled[id] = label
}

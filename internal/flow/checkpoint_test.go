package flow

import (
	"errors"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
	"iustitia/internal/persist"
)

// classifyFlows pushes n distinct single-packet-fillable flows through
// the engine, labelled round-robin over the classes.
func classifyFlows(t *testing.T, e *Engine, n, portBase int, base time.Duration) {
	t.Helper()
	letters := []string{"TTTTTTTT", "BBBBBBBB", "EEEEEEEE"}
	for i := 0; i < n; i++ {
		tp := tuple(uint16(portBase+i), packet.TCP)
		at := base + time.Duration(i)*time.Millisecond
		v, err := e.Process(dataPacket(tp, at, letters[i%len(letters)]))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Classified {
			t.Fatalf("flow %d not classified by one packet", i)
		}
	}
}

// TestCheckpointRoundTrip: a fresh engine restored from a checkpoint
// continues the classification counts and answers already-classified
// flows from the CDB without re-classifying them.
func TestCheckpointRoundTrip(t *testing.T) {
	calls := 0
	counting := ClassifierFunc(func(p []byte) (corpus.Class, error) {
		calls++
		return firstByteClassifier().Classify(p)
	})
	e1 := newTestEngine(t, EngineConfig{Classifier: counting})
	classifyFlows(t, e1, 30, 1000, 0)
	s1 := e1.Stats()
	blob := e1.ExportCheckpoint()

	e2 := newTestEngine(t, EngineConfig{Classifier: counting})
	if err := e2.ImportCheckpoint(blob); err != nil {
		t.Fatal(err)
	}
	s2 := e2.Stats()
	if s2.Classified != s1.Classified {
		t.Errorf("restored Classified = %d, want %d", s2.Classified, s1.Classified)
	}
	if s2.QueueCounts != s1.QueueCounts {
		t.Errorf("restored QueueCounts = %v, want %v", s2.QueueCounts, s1.QueueCounts)
	}
	if s2.CDB.Size != s1.CDB.Size {
		t.Errorf("restored CDB size = %d, want %d", s2.CDB.Size, s1.CDB.Size)
	}

	// Replaying the same flows must be answered entirely by the restored
	// CDB: zero classifier calls, counts advance only via the CDB path.
	callsBefore := calls
	for i := 0; i < 30; i++ {
		tp := tuple(uint16(1000+i), packet.TCP)
		v, err := e2.Process(dataPacket(tp, time.Duration(100+i)*time.Millisecond, "XXXXXXXX"))
		if err != nil {
			t.Fatal(err)
		}
		if !v.FromCDB {
			t.Fatalf("flow %d not answered from restored CDB", i)
		}
	}
	if calls != callsBefore {
		t.Errorf("classifier ran %d times on restored flows, want 0", calls-callsBefore)
	}
}

// TestCheckpointConservationAcrossRestart: the PR-1 accounting invariant
// Admitted == Classified + Fallback + Dropped + Pending holds on an
// engine restored mid-life, including with flows pending at export.
func TestCheckpointConservationAcrossRestart(t *testing.T) {
	e1 := newTestEngine(t, EngineConfig{})
	classifyFlows(t, e1, 20, 1000, 0)
	// Leave some flows pending (half-filled buffers) at export time.
	for i := 0; i < 5; i++ {
		tp := tuple(uint16(4000+i), packet.TCP)
		if _, err := e1.Process(dataPacket(tp, time.Second, "TT")); err != nil {
			t.Fatal(err)
		}
	}
	blob := e1.ExportCheckpoint()

	e2 := newTestEngine(t, EngineConfig{})
	if err := e2.ImportCheckpoint(blob); err != nil {
		t.Fatal(err)
	}
	classifyFlows(t, e2, 10, 2000, 2*time.Second)
	s := e2.Stats()
	if got := s.Classified + s.Fallback + s.Dropped + s.Pending; s.Admitted != got {
		t.Errorf("Admitted %d != Classified %d + Fallback %d + Dropped %d + Pending %d",
			s.Admitted, s.Classified, s.Fallback, s.Dropped, s.Pending)
	}
	if s.Classified != 30 {
		t.Errorf("Classified = %d, want 30 (20 restored + 10 new)", s.Classified)
	}
}

// TestCheckpointPeriodicHook: OnCheckpoint fires once per
// CheckpointEvery classified flows and the payload is loadable.
func TestCheckpointPeriodicHook(t *testing.T) {
	var snaps [][]byte
	e := newTestEngine(t, EngineConfig{
		CheckpointEvery: 10,
		OnCheckpoint:    func(b []byte) { snaps = append(snaps, b) },
	})
	classifyFlows(t, e, 35, 1000, 0)
	if len(snaps) != 3 {
		t.Fatalf("hook fired %d times for 35 flows at every=10, want 3", len(snaps))
	}
	// Every emitted snapshot restores cleanly.
	for i, b := range snaps {
		fresh := newTestEngine(t, EngineConfig{})
		if err := fresh.ImportCheckpoint(b); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if got, want := fresh.Stats().Classified, (i+1)*10; got != want {
			t.Errorf("snapshot %d restores %d classified, want %d", i, got, want)
		}
	}
	// FlushAll also triggers a due checkpoint.
	for i := 0; i < 5; i++ {
		tp := tuple(uint16(6000+i), packet.TCP)
		if _, err := e.Process(dataPacket(tp, time.Second, "TT")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.FlushAll(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 4 {
		t.Errorf("hook fired %d times after flush, want 4", len(snaps))
	}
}

// TestCheckpointHookMayCallEngine: the hook runs outside the engine
// lock, so calling back into the engine must not deadlock.
func TestCheckpointHookMayCallEngine(t *testing.T) {
	var e *Engine
	done := make(chan struct{}, 1)
	e = newTestEngine(t, EngineConfig{
		CheckpointEvery: 1,
		OnCheckpoint: func([]byte) {
			_ = e.Stats()
			_ = e.ExportCheckpoint()
			select {
			case done <- struct{}{}:
			default:
			}
		},
	})
	classifyFlows(t, e, 2, 1000, 0)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("checkpoint hook deadlocked")
	}
}

// TestCheckpointImportTruncation clips a valid checkpoint at every byte
// offset: always a clean typed error, and the engine stays cold.
func TestCheckpointImportTruncation(t *testing.T) {
	e := newTestEngine(t, EngineConfig{})
	classifyFlows(t, e, 12, 1000, 0)
	blob := e.ExportCheckpoint()
	for i := 0; i < len(blob); i++ {
		fresh := newTestEngine(t, EngineConfig{})
		if err := fresh.ImportCheckpoint(blob[:i]); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("ImportCheckpoint(blob[:%d]) = %v, want ErrCorrupt", i, err)
		}
		s := fresh.Stats()
		if s.Classified != 0 || s.CDB.Size != 0 {
			t.Fatalf("truncated import at %d mutated the engine: %+v", i, s)
		}
	}
}

// TestCheckpointImportRejectsNegativeCounter: a bit-flipped counter that
// goes negative is corruption, not a silently wrong baseline.
func TestCheckpointImportRejectsNegativeCounter(t *testing.T) {
	var enc persist.Encoder
	enc.U32(uint32(corpus.NumClasses))
	for i := 0; i < corpus.NumClasses+7; i++ {
		enc.I64(-1)
	}
	enc.Blob(NewCDB(CDBConfig{}).Export())
	e := newTestEngine(t, EngineConfig{})
	if err := e.ImportCheckpoint(enc.Bytes()); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("negative counters: err = %v, want ErrCorrupt", err)
	}

	var enc2 persist.Encoder
	enc2.U32(uint32(corpus.NumClasses) + 1)
	if err := e.ImportCheckpoint(enc2.Bytes()); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("wrong class count: err = %v, want ErrCorrupt", err)
	}
}

// TestCheckpointCDBCapOnImport: restoring a big checkpoint into a
// smaller deployment honours the new MaxRecords and accounts the drops.
func TestCheckpointCDBCapOnImport(t *testing.T) {
	e1 := newTestEngine(t, EngineConfig{})
	classifyFlows(t, e1, 40, 1000, 0)
	blob := e1.ExportCheckpoint()

	e2 := newTestEngine(t, EngineConfig{CDB: CDBConfig{MaxRecords: 15}})
	if err := e2.ImportCheckpoint(blob); err != nil {
		t.Fatal(err)
	}
	s := e2.Stats()
	if s.CDB.Size != 15 {
		t.Errorf("capped import size = %d, want 15", s.CDB.Size)
	}
	if s.CDB.ImportDropped != 25 {
		t.Errorf("ImportDropped = %d, want 25", s.CDB.ImportDropped)
	}
}

package flow

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// synthID builds a distinct flow ID without hashing a tuple — enough IDs
// for large-table CDB tests.
func synthID(n uint64) ID {
	var id ID
	binary.BigEndian.PutUint64(id[:8], n)
	return id
}

// checkRingLocked asserts the scan ring is a dense, consistent index of
// the record map: same cardinality, every ord slot round-trips.
func checkRing(t *testing.T, c *CDB) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) != len(c.records) {
		t.Fatalf("scan ring has %d slots for %d records", len(c.order), len(c.records))
	}
	for id, rec := range c.records {
		if rec.ord < 0 || rec.ord >= len(c.order) {
			t.Fatalf("record ord %d out of ring range %d", rec.ord, len(c.order))
		}
		if c.order[rec.ord] != id {
			t.Fatalf("ring slot %d holds a different id than its record claims", rec.ord)
		}
	}
}

// The headline bound of the incremental purge: per-insert sweep work is
// hard-capped at ⌈(MaxRecords+1)/PurgeEvery⌉ examined records, however
// large the table, however stale its contents. The historical behaviour
// examined the whole table on every PurgeEvery-th insert.
func TestCDBIncrementalSweepBoundedPerInsert(t *testing.T) {
	const maxRecords = 1000
	const purgeEvery = 100
	cdb := NewCDB(CDBConfig{
		PurgeInactive: true,
		N:             4,
		DefaultLambda: time.Millisecond,
		PurgeEvery:    purgeEvery,
		MaxRecords:    maxRecords,
	})
	bound := (maxRecords + 1 + purgeEvery - 1) / purgeEvery
	prev := 0
	// Advance time so earlier records go stale as later ones arrive: the
	// sweep constantly has work to do, the worst case for a purge design.
	for i := 0; i < 5000; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		cdb.Insert(synthID(uint64(i)), corpus.Text, now)
		examined := cdb.Stats().SweepExamined
		if got := examined - prev; got > bound {
			t.Fatalf("insert %d examined %d records, bound %d", i, got, bound)
		}
		prev = examined
		if size := cdb.Size(); size > maxRecords {
			t.Fatalf("insert %d left %d records, cap %d", i, size, maxRecords)
		}
	}
	checkRing(t, cdb)
}

// MaxRecords stays a hard bound under the incremental purge, and the
// record-accounting conservation law holds at quiescence:
// Insertions + Imported == Size + every removal counter + Reinsertions'
// replaced records... simplified here to the always-active case where
// only pressure evicts.
func TestCDBMaxRecordsBoundWithIncrementalPurge(t *testing.T) {
	const maxRecords = 512
	cdb := NewCDB(CDBConfig{
		PurgeInactive: true,
		DefaultLambda: time.Hour, // nothing ever goes idle
		PurgeEvery:    50,
		MaxRecords:    maxRecords,
	})
	for i := 0; i < 10_000; i++ {
		cdb.Insert(synthID(uint64(i)), corpus.Binary, time.Duration(i)*time.Microsecond)
		if size := cdb.Size(); size > maxRecords {
			t.Fatalf("insert %d left %d records, cap %d", i, size, maxRecords)
		}
	}
	st := cdb.Stats()
	if st.RemovedByIdle != 0 {
		t.Errorf("always-active records counted idle: %d", st.RemovedByIdle)
	}
	if st.RemovedByPressure == 0 {
		t.Error("10000 inserts into a 512 cap evicted nothing by pressure")
	}
	if got := st.Size + st.RemovedByPressure; got != st.Insertions {
		t.Errorf("Size+RemovedByPressure = %d, want Insertions = %d", got, st.Insertions)
	}
	checkRing(t, cdb)
}

// The scan ring must stay consistent under every mutation path: insert,
// re-insert (slot reuse), FIN/RST close, MaxAge expiry via Lookup,
// migration take/install, and full sweeps.
func TestCDBScanRingConsistentUnderChurn(t *testing.T) {
	cdb := NewCDB(CDBConfig{
		PurgeOnClose:  true,
		PurgeInactive: true,
		DefaultLambda: 50 * time.Millisecond,
		PurgeEvery:    7,
		MaxAge:        3 * time.Second,
		MaxRecords:    64,
	})
	for i := 0; i < 2000; i++ {
		now := time.Duration(i) * 20 * time.Millisecond
		switch i % 5 {
		case 0, 1, 2:
			cdb.Insert(synthID(uint64(i%97)), corpus.Class(i%int(corpus.NumClasses)), now)
		case 3:
			cdb.Close(synthID(uint64((i - 1) % 97)))
		case 4:
			cdb.Lookup(synthID(uint64((i-2)%97)), now)
		}
		if i%251 == 0 {
			checkRing(t, cdb)
		}
	}
	// Migration churn: take a predicate slice out, install it back.
	taken := cdb.takeEntries(func(id ID) bool { return id[7]%2 == 0 })
	checkRing(t, cdb)
	cdb.installEntries(taken)
	checkRing(t, cdb)
	cdb.Sweep(time.Hour)
	checkRing(t, cdb)
}

// Lock-free Stats under fire: shards classify from several goroutines
// while observers hammer every snapshot surface. Run under -race this is
// the data-race proof for the padded atomic counter block; at quiescence
// the conservation law must hold exactly.
func TestStatsLockFreeUnderLoad(t *testing.T) {
	pe, err := NewParallelEngine(EngineConfig{
		BufferSize: 16,
		Classifier: firstByteClassifier(),
		CDB:        CDBConfig{PurgeOnClose: true, PurgeInactive: true, PurgeEvery: 32, MaxRecords: 256},
		MaxPending: 64,
	}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const flowsPerWriter = 400
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() { // observer: every lock-free read surface, in a tight loop
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := pe.Stats()
			if s.Admitted < 0 || s.Pending < 0 || s.CDB.Size < 0 {
				panic("negative counter in snapshot")
			}
			pe.LatencyHistograms()
			for _, shard := range pe.shards {
				shard.Degraded()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := "TTTTTTTTTTTTTTTT" // fills b=16 in one packet
			for i := 0; i < flowsPerWriter; i++ {
				tp := tuple(uint16(w*flowsPerWriter+i+1), packet.TCP)
				at := time.Duration(i) * time.Millisecond
				if _, err := pe.Process(dataPacket(tp, at, payload)); err != nil {
					panic(err)
				}
				// Revisit: exercise the lock-free CDB-hit fast path.
				if _, err := pe.Process(dataPacket(tp, at+time.Microsecond, "x")); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	obs.Wait()
	if _, err := pe.FlushAll(time.Hour); err != nil {
		t.Fatal(err)
	}
	s := pe.Stats()
	if got := s.Classified + s.Fallback + s.Dropped + s.Pending; got != s.Admitted {
		t.Errorf("conservation: Classified+Fallback+Dropped+Pending = %d, want Admitted = %d", got, s.Admitted)
	}
	if s.Classified == 0 {
		t.Error("no flows classified under load")
	}
}

package flow

import (
	"sync"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func TestNewParallelEngineValidation(t *testing.T) {
	cfg := EngineConfig{BufferSize: 8, Classifier: firstByteClassifier()}
	if _, err := NewParallelEngine(cfg, 0, nil); err == nil {
		t.Error("shards=0: want error")
	}
	if _, err := NewParallelEngine(cfg, 4, make([]Classifier, 2)); err == nil {
		t.Error("classifier count mismatch: want error")
	}
	bad := cfg
	bad.BufferSize = 0
	if _, err := NewParallelEngine(bad, 2, nil); err == nil {
		t.Error("invalid shard config: want error")
	}
}

func TestParallelEngineMatchesSingle(t *testing.T) {
	// The same flows must classify identically whether processed by a
	// single engine or a sharded one.
	single := newTestEngine(t, EngineConfig{BufferSize: 4})
	parallel, err := NewParallelEngine(
		EngineConfig{BufferSize: 4, Classifier: firstByteClassifier()}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads := []string{"TTTT", "BBBB", "EEEE"}
	for i := 0; i < 60; i++ {
		tp := tuple(uint16(1000+i), packet.TCP)
		payload := payloads[i%3]
		v1, err := single.Process(dataPacket(tp, 0, payload))
		if err != nil {
			t.Fatal(err)
		}
		v2, err := parallel.Process(dataPacket(tp, 0, payload))
		if err != nil {
			t.Fatal(err)
		}
		if v1.Queue != v2.Queue || v1.Classified != v2.Classified {
			t.Fatalf("flow %d: single %+v vs parallel %+v", i, v1, v2)
		}
	}
	if got, want := parallel.Stats().Classified, single.Stats().Classified; got != want {
		t.Errorf("classified counts differ: %d vs %d", got, want)
	}
}

func TestParallelEngineShardAffinity(t *testing.T) {
	pe, err := NewParallelEngine(
		EngineConfig{BufferSize: 8, Classifier: firstByteClassifier()}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A flow split across two packets must land in one shard's buffer and
	// classify exactly once.
	tp := tuple(7777, packet.TCP)
	v, err := pe.Process(dataPacket(tp, 0, "TTTT"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Classified {
		t.Fatal("classified on half a buffer")
	}
	v, err = pe.Process(dataPacket(tp, time.Millisecond, "TTTT"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || v.Queue != corpus.Text {
		t.Fatalf("verdict = %+v", v)
	}
	if label, ok := pe.Label(tp); !ok || label != corpus.Text {
		t.Errorf("Label = (%v, %v)", label, ok)
	}
}

func TestParallelEngineConcurrent(t *testing.T) {
	pe, err := NewParallelEngine(
		EngineConfig{BufferSize: 8, Classifier: firstByteClassifier(), IdleFlush: time.Second},
		8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				tp := tuple(uint16(w*1000+i), packet.TCP)
				if _, err := pe.Process(dataPacket(tp, time.Duration(i)*time.Millisecond, "EEEEEEEE")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := pe.Stats()
	if stats.Classified != 8*400 {
		t.Errorf("Classified = %d, want %d", stats.Classified, 8*400)
	}
	if stats.QueueCounts[corpus.Encrypted] != 8*400 {
		t.Errorf("encrypted queue = %d", stats.QueueCounts[corpus.Encrypted])
	}
}

func TestParallelEngineFlushes(t *testing.T) {
	pe, err := NewParallelEngine(
		EngineConfig{BufferSize: 1024, Classifier: firstByteClassifier(), IdleFlush: time.Second},
		4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := pe.Process(dataPacket(tuple(uint16(i), packet.UDP), 0, "EE")); err != nil {
			t.Fatal(err)
		}
	}
	n, err := pe.FlushIdle(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("FlushIdle = %d, want 20", n)
	}
	n, err = pe.FlushAll(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("FlushAll after idle flush = %d, want 0", n)
	}
}

func TestParallelEnginePerShardClassifiers(t *testing.T) {
	// Per-shard classifiers receive only their shard's flows.
	const shards = 4
	var mu sync.Mutex
	counts := make([]int, shards)
	classifiers := make([]Classifier, shards)
	for i := range classifiers {
		i := i
		classifiers[i] = ClassifierFunc(func(payload []byte) (corpus.Class, error) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return corpus.Binary, nil
		})
	}
	pe, err := NewParallelEngine(EngineConfig{BufferSize: 2, Classifier: firstByteClassifier()},
		shards, classifiers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := pe.Process(dataPacket(tuple(uint16(i), packet.TCP), 0, "xx")); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	busyShards := 0
	for _, c := range counts {
		total += c
		if c > 0 {
			busyShards++
		}
	}
	if total != 200 {
		t.Errorf("total classifications = %d, want 200", total)
	}
	if busyShards < 2 {
		t.Errorf("only %d shards saw traffic; sharding is degenerate", busyShards)
	}
}

func TestParallelEngineShardBalance(t *testing.T) {
	// Uniform SHA-1 IDs must spread evenly across a non-power-of-two
	// shard count. The old two-byte reduction (65536 values mod shards)
	// skewed the residue classes for shards ∤ 65536.
	for _, shards := range []int{3, 5, 7, 12} {
		pe, err := NewParallelEngine(
			EngineConfig{BufferSize: 8, Classifier: firstByteClassifier()}, shards, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[*Engine]int, shards)
		const flows = 30000
		for i := 0; i < flows; i++ {
			counts[pe.shardFor(IDOf(tuple(uint16(i), packet.TCP)))]++
		}
		if len(counts) != shards {
			t.Fatalf("%d shards: only %d received flows", shards, len(counts))
		}
		mean := float64(flows) / float64(shards)
		for _, c := range counts {
			if f := float64(c); f < 0.9*mean || f > 1.1*mean {
				t.Errorf("%d shards: shard load %d strays over 10%% from mean %.0f", shards, c, mean)
			}
		}
	}
}

// TestParallelEngineConcurrentChurnRace hammers Process, FlushIdle, Stats,
// and Label from concurrent goroutines over a capped, fault-injected
// sharded engine. Run under -race; it asserts the engine stays consistent
// (no surfaced errors, conservation of flows) while everything races.
func TestParallelEngineConcurrentChurnRace(t *testing.T) {
	chaos := NewChaosClassifier(firstByteClassifier(), ChaosConfig{Seed: 3, ErrorRate: 0.1, PanicRate: 0.02})
	pe, err := NewParallelEngine(EngineConfig{
		BufferSize:    64,
		Classifier:    chaos, // shared across shards; ChaosClassifier is concurrency-safe
		MaxPending:    16,
		Eviction:      EvictClassifyPartial,
		FallbackClass: corpus.Binary,
		Faults:        FaultPolicy{Tolerate: true, TripAfter: 20, ProbeEvery: 4},
		IdleFlush:     50 * time.Millisecond,
		CDB:           CDBConfig{PurgeOnClose: true, PurgeInactive: true, MaxRecords: 256},
	}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const flowsPerWorker = 300
	var wg, observers sync.WaitGroup
	errs := make(chan error, workers+2)
	stop := make(chan struct{})

	// Observer goroutines: flush + stats while processing races on.
	observers.Add(1)
	go func() {
		defer observers.Done()
		now := time.Duration(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			now += 10 * time.Millisecond
			if _, err := pe.FlushIdle(now); err != nil {
				errs <- err
				return
			}
			_ = pe.Stats()
		}
	}()
	observers.Add(1)
	go func() {
		defer observers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = pe.Stats()
			_, _ = pe.Label(tuple(1, packet.TCP))
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < flowsPerWorker; i++ {
				tp := tuple(uint16(w*flowsPerWorker+i), packet.TCP)
				at := time.Duration(i) * time.Millisecond
				if _, err := pe.Process(dataPacket(tp, at, "EEEEEEEEEEEEEEEE")); err != nil {
					errs <- err
					return
				}
				if _, err := pe.Process(dataPacket(tp, at+time.Millisecond, "EEEEEEEEEEEEEEEE")); err != nil {
					errs <- err
					return
				}
				// Half the flows tear down mid-fill.
				if i%2 == 0 {
					fin := &packet.Packet{Tuple: tp, Time: at + 2*time.Millisecond, Flags: packet.FlagFIN | packet.FlagACK}
					if _, err := pe.Process(fin); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	observers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := pe.FlushAll(time.Hour); err != nil {
		t.Fatal(err)
	}
	s := pe.Stats()
	if s.Pending != 0 {
		t.Errorf("Pending = %d after FlushAll", s.Pending)
	}
	if got := s.Classified + s.Fallback + s.Dropped; got != s.Admitted {
		t.Errorf("conservation violated under races: %d+%d+%d != %d",
			s.Classified, s.Fallback, s.Dropped, s.Admitted)
	}
}

// TestEngineTeardownRacesClassification drives data packets and FIN/RST
// for the same flow from two goroutines: whatever interleaving happens,
// the engine must neither error nor leak pending state. Run under -race.
func TestEngineTeardownRacesClassification(t *testing.T) {
	e := newTestEngine(t, EngineConfig{
		BufferSize: 32,
		CDB:        CDBConfig{PurgeOnClose: true},
	})
	const rounds = 500
	tp := tuple(4242, packet.TCP)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			at := time.Duration(i) * time.Microsecond
			for j := 0; j < 4; j++ {
				if _, err := e.Process(dataPacket(tp, at, "EEEEEEEE")); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			fin := &packet.Packet{Tuple: tp, Time: time.Duration(i) * time.Microsecond, Flags: packet.FlagFIN}
			if _, err := e.Process(fin); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := e.FlushAll(time.Hour); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Pending != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending)
	}
	if got := s.Classified + s.Fallback + s.Dropped; got != s.Admitted {
		t.Errorf("conservation violated: %d+%d+%d != %d", s.Classified, s.Fallback, s.Dropped, s.Admitted)
	}
}

func TestParallelEngineNilPacket(t *testing.T) {
	pe, err := NewParallelEngine(
		EngineConfig{BufferSize: 8, Classifier: firstByteClassifier()}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Process(nil); err == nil {
		t.Error("nil packet: want error")
	}
}

package flow

import (
	"sync"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func TestNewParallelEngineValidation(t *testing.T) {
	cfg := EngineConfig{BufferSize: 8, Classifier: firstByteClassifier()}
	if _, err := NewParallelEngine(cfg, 0, nil); err == nil {
		t.Error("shards=0: want error")
	}
	if _, err := NewParallelEngine(cfg, 4, make([]Classifier, 2)); err == nil {
		t.Error("classifier count mismatch: want error")
	}
	bad := cfg
	bad.BufferSize = 0
	if _, err := NewParallelEngine(bad, 2, nil); err == nil {
		t.Error("invalid shard config: want error")
	}
}

func TestParallelEngineMatchesSingle(t *testing.T) {
	// The same flows must classify identically whether processed by a
	// single engine or a sharded one.
	single := newTestEngine(t, EngineConfig{BufferSize: 4})
	parallel, err := NewParallelEngine(
		EngineConfig{BufferSize: 4, Classifier: firstByteClassifier()}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads := []string{"TTTT", "BBBB", "EEEE"}
	for i := 0; i < 60; i++ {
		tp := tuple(uint16(1000+i), packet.TCP)
		payload := payloads[i%3]
		v1, err := single.Process(dataPacket(tp, 0, payload))
		if err != nil {
			t.Fatal(err)
		}
		v2, err := parallel.Process(dataPacket(tp, 0, payload))
		if err != nil {
			t.Fatal(err)
		}
		if v1.Queue != v2.Queue || v1.Classified != v2.Classified {
			t.Fatalf("flow %d: single %+v vs parallel %+v", i, v1, v2)
		}
	}
	if got, want := parallel.Stats().Classified, single.Stats().Classified; got != want {
		t.Errorf("classified counts differ: %d vs %d", got, want)
	}
}

func TestParallelEngineShardAffinity(t *testing.T) {
	pe, err := NewParallelEngine(
		EngineConfig{BufferSize: 8, Classifier: firstByteClassifier()}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A flow split across two packets must land in one shard's buffer and
	// classify exactly once.
	tp := tuple(7777, packet.TCP)
	v, err := pe.Process(dataPacket(tp, 0, "TTTT"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Classified {
		t.Fatal("classified on half a buffer")
	}
	v, err = pe.Process(dataPacket(tp, time.Millisecond, "TTTT"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || v.Queue != corpus.Text {
		t.Fatalf("verdict = %+v", v)
	}
	if label, ok := pe.Label(tp); !ok || label != corpus.Text {
		t.Errorf("Label = (%v, %v)", label, ok)
	}
}

func TestParallelEngineConcurrent(t *testing.T) {
	pe, err := NewParallelEngine(
		EngineConfig{BufferSize: 8, Classifier: firstByteClassifier(), IdleFlush: time.Second},
		8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				tp := tuple(uint16(w*1000+i), packet.TCP)
				if _, err := pe.Process(dataPacket(tp, time.Duration(i)*time.Millisecond, "EEEEEEEE")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := pe.Stats()
	if stats.Classified != 8*400 {
		t.Errorf("Classified = %d, want %d", stats.Classified, 8*400)
	}
	if stats.QueueCounts[corpus.Encrypted] != 8*400 {
		t.Errorf("encrypted queue = %d", stats.QueueCounts[corpus.Encrypted])
	}
}

func TestParallelEngineFlushes(t *testing.T) {
	pe, err := NewParallelEngine(
		EngineConfig{BufferSize: 1024, Classifier: firstByteClassifier(), IdleFlush: time.Second},
		4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := pe.Process(dataPacket(tuple(uint16(i), packet.UDP), 0, "EE")); err != nil {
			t.Fatal(err)
		}
	}
	n, err := pe.FlushIdle(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("FlushIdle = %d, want 20", n)
	}
	n, err = pe.FlushAll(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("FlushAll after idle flush = %d, want 0", n)
	}
}

func TestParallelEnginePerShardClassifiers(t *testing.T) {
	// Per-shard classifiers receive only their shard's flows.
	const shards = 4
	var mu sync.Mutex
	counts := make([]int, shards)
	classifiers := make([]Classifier, shards)
	for i := range classifiers {
		i := i
		classifiers[i] = ClassifierFunc(func(payload []byte) (corpus.Class, error) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return corpus.Binary, nil
		})
	}
	pe, err := NewParallelEngine(EngineConfig{BufferSize: 2, Classifier: firstByteClassifier()},
		shards, classifiers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := pe.Process(dataPacket(tuple(uint16(i), packet.TCP), 0, "xx")); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	busyShards := 0
	for _, c := range counts {
		total += c
		if c > 0 {
			busyShards++
		}
	}
	if total != 200 {
		t.Errorf("total classifications = %d, want 200", total)
	}
	if busyShards < 2 {
		t.Errorf("only %d shards saw traffic; sharding is degenerate", busyShards)
	}
}

func TestParallelEngineNilPacket(t *testing.T) {
	pe, err := NewParallelEngine(
		EngineConfig{BufferSize: 8, Classifier: firstByteClassifier()}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Process(nil); err == nil {
		t.Error("nil packet: want error")
	}
}

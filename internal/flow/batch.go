package flow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"iustitia/internal/packet"
)

// This file is the multicore front end of ParallelEngine: a batched
// submission API (ProcessBatch) that partitions a packet batch across
// shards in one pass, and an optional pipelined mode where per-shard
// worker goroutines drain bounded queues so the caller's thread stops
// being the serialization point.
//
// Ordering: all packets of one flow hash to one shard, a batch's per-shard
// slice preserves submission order, and each shard queue is drained by a
// single worker — so per-flow processing order is exactly submission
// order, as long as one flow's packets are submitted by one goroutine (the
// same contract Process has always had; the ingest server routes flows to
// workers by flow ID for precisely this reason).
//
// Conservation: every admitted packet reaches Engine.ProcessID exactly
// once, on every path (synchronous, pipelined, worker panic recovery), so
// the §6 law Admitted == Classified + Fallback + Dropped + Pending and the
// transport law Received == Admitted + Quarantined + Shed keep holding.

// DefaultPipelineDepth is the per-shard queue bound, in batch jobs, when
// StartPipeline is given zero.
const DefaultPipelineDepth = 8

// batchEntry is one routed packet: the flow ID is computed once during
// partitioning and reused by the shard. The packet is held by value so the
// caller may recycle its own packet structs as soon as ProcessBatch
// returns; only the payload bytes must stay untouched until the packet is
// processed (they are per-packet allocations on the ingest path).
type batchEntry struct {
	id  ID
	pkt packet.Packet
}

// batchScratch is the pooled partition buffer of one in-flight batch: one
// append slice per shard plus the countdown that returns the scratch to
// the pool after the last shard finishes with it.
type batchScratch struct {
	perShard [][]batchEntry
	pending  atomic.Int32
}

// batchJob is what shard workers consume: one shard's slice of a batch,
// plus the scratch to release when done. A job with a non-nil barrier
// carries no packets — it exists so Barrier can wait for queue drain.
type batchJob struct {
	entries []batchEntry
	owner   *batchScratch
	barrier *sync.WaitGroup
}

// pipeline is the running per-shard worker set.
type pipeline struct {
	queues    []chan batchJob
	wg        sync.WaitGroup
	processed atomic.Int64
	errs      atomic.Int64

	mu       sync.Mutex
	firstErr error
}

// PipelineStats summarizes pipelined processing so far.
type PipelineStats struct {
	// Processed counts packets handed to shard engines by the workers.
	Processed int
	// Errors counts Engine errors surfaced through the pipelined path
	// (strict-mode classification failures); FirstErr keeps the earliest.
	Errors   int
	FirstErr error
}

// StartPipeline switches the engine into pipelined mode: one worker
// goroutine per shard, each draining a bounded queue of batch jobs
// (queueDepth jobs per shard; zero selects DefaultPipelineDepth).
// ProcessBatch then returns after enqueuing instead of after processing.
// Callers must quiesce all ProcessBatch/Process callers and call Barrier
// before FlushIdle/FlushAll or checkpoint export, and must StopPipeline
// before discarding the engine.
func (pe *ParallelEngine) StartPipeline(queueDepth int) error {
	if queueDepth < 0 {
		return fmt.Errorf("flow: negative pipeline queue depth %d", queueDepth)
	}
	if queueDepth == 0 {
		queueDepth = DefaultPipelineDepth
	}
	pl := &pipeline{queues: make([]chan batchJob, len(pe.shards))}
	for i := range pl.queues {
		pl.queues[i] = make(chan batchJob, queueDepth)
	}
	if !pe.pl.CompareAndSwap(nil, pl) {
		return errors.New("flow: pipeline already started")
	}
	pl.wg.Add(len(pe.shards))
	for i, shard := range pe.shards {
		go pl.run(pe, shard, pl.queues[i])
	}
	return nil
}

// StopPipeline closes the shard queues, waits for the workers to drain
// them, and returns the engine to synchronous mode. No ProcessBatch or
// Barrier call may be in flight or arrive afterwards until a new
// StartPipeline.
func (pe *ParallelEngine) StopPipeline() error {
	pl := pe.pl.Swap(nil)
	if pl == nil {
		return errors.New("flow: pipeline not started")
	}
	for _, q := range pl.queues {
		close(q)
	}
	pl.wg.Wait()
	return nil
}

// Pipelined reports whether the engine currently runs shard workers.
func (pe *ParallelEngine) Pipelined() bool { return pe.pl.Load() != nil }

// PipelineStats returns the pipelined-path counters (zero when the
// pipeline never ran).
func (pe *ParallelEngine) PipelineStats() PipelineStats {
	pl := pe.pl.Load()
	if pl == nil {
		return PipelineStats{}
	}
	pl.mu.Lock()
	first := pl.firstErr
	pl.mu.Unlock()
	return PipelineStats{
		Processed: int(pl.processed.Load()),
		Errors:    int(pl.errs.Load()),
		FirstErr:  first,
	}
}

// Barrier blocks until every batch enqueued before the call has been fully
// processed. It is a no-op when the pipeline is not running. Work enqueued
// concurrently with Barrier is not waited for.
func (pe *ParallelEngine) Barrier() {
	pl := pe.pl.Load()
	if pl == nil {
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(pl.queues))
	for _, q := range pl.queues {
		q <- batchJob{barrier: &wg}
	}
	wg.Wait()
}

// run is one shard worker. It survives processing panics (counted as
// errors) so a poisoned packet cannot wedge the whole pipeline.
func (pl *pipeline) run(pe *ParallelEngine, shard *Engine, q chan batchJob) {
	defer pl.wg.Done()
	for job := range q {
		if job.barrier != nil {
			job.barrier.Done()
			continue
		}
		pl.process(pe, shard, job)
	}
}

// process drains one job into its shard and releases the batch scratch.
func (pl *pipeline) process(pe *ParallelEngine, shard *Engine, job batchJob) {
	defer job.owner.release(pe)
	defer func() {
		if r := recover(); r != nil {
			pl.fail(fmt.Errorf("flow: shard worker panic: %v", r))
		}
	}()
	for i := range job.entries {
		e := &job.entries[i]
		if _, err := shard.ProcessID(e.id, &e.pkt); err != nil {
			pl.fail(err)
		}
	}
	pl.processed.Add(int64(len(job.entries)))
}

// fail counts one pipelined-path error, keeping the first.
func (pl *pipeline) fail(err error) {
	pl.errs.Add(1)
	pl.mu.Lock()
	if pl.firstErr == nil {
		pl.firstErr = err
	}
	pl.mu.Unlock()
}

// release returns the scratch to the pool once every shard slice of its
// batch has been processed.
func (sc *batchScratch) release(pe *ParallelEngine) {
	if sc.pending.Add(-1) != 0 {
		return
	}
	for i := range sc.perShard {
		sc.perShard[i] = sc.perShard[i][:0]
	}
	pe.scratch.Put(sc)
}

// getScratch returns a partition buffer shaped for this engine's shard
// count.
func (pe *ParallelEngine) getScratch() *batchScratch {
	sc, _ := pe.scratch.Get().(*batchScratch)
	if sc == nil || len(sc.perShard) != len(pe.shards) {
		sc = &batchScratch{perShard: make([][]batchEntry, len(pe.shards))}
	}
	return sc
}

// ProcessBatch routes every packet of batch to its flow's shard in a
// single partition pass (one SHA-1 per packet, total). In synchronous mode
// each shard's slice is processed inline and the per-packet errors come
// back joined, with the count of failed packets. In pipelined mode the
// slices are handed to the shard workers — ProcessBatch returns once the
// batch is enqueued (blocking only when a shard queue is full, which is
// the backpressure signal) and processing errors surface later through
// PipelineStats.
//
// Packets of one flow must be submitted from one goroutine for per-flow
// order to be defined, exactly as with Process. The packet structs may be
// reused once ProcessBatch returns; the payload bytes may not be modified
// until the batch has been processed (after Barrier, in pipelined mode).
func (pe *ParallelEngine) ProcessBatch(batch []*packet.Packet) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	sc := pe.getScratch()
	nShards := uint64(len(pe.shards))
	for _, p := range batch {
		if p == nil {
			// Nothing was enqueued yet: hand the scratch back clean.
			sc.pending.Store(1)
			sc.release(pe)
			return len(batch), errors.New("flow: nil packet in batch")
		}
		id := IDOf(p.Tuple)
		s := binary.BigEndian.Uint64(id[:8]) % nShards
		sc.perShard[s] = append(sc.perShard[s], batchEntry{id: id, pkt: *p})
	}

	if pl := pe.pl.Load(); pl != nil {
		jobs := 0
		for _, entries := range sc.perShard {
			if len(entries) > 0 {
				jobs++
			}
		}
		// The submitter holds one reference of its own (jobs+1) while it
		// iterates perShard: without it, the worker of an early job could
		// release and recycle the scratch out from under the enqueue loop.
		sc.pending.Store(int32(jobs) + 1)
		for s, entries := range sc.perShard {
			if len(entries) > 0 {
				pl.queues[s] <- batchJob{entries: entries, owner: sc}
			}
		}
		sc.release(pe)
		return 0, nil
	}

	var (
		failed int
		errs   []error
	)
	for s, entries := range sc.perShard {
		shard := pe.shards[s]
		for i := range entries {
			if _, err := shard.ProcessID(entries[i].id, &entries[i].pkt); err != nil {
				failed++
				errs = append(errs, err)
			}
		}
	}
	sc.pending.Store(1)
	sc.release(pe)
	return failed, errors.Join(errs...)
}

package flow

import (
	"errors"
	"fmt"
	"math"
	"time"

	"iustitia/internal/stats"
)

// This file is the engine's live-operations surface: governor knobs that
// can be retuned on a serving engine without a drain, and the
// instrumentation (classification latency histograms, a shadow-sample
// ring) the ops layer reads for metrics and hot-swap verification.
// Everything here takes e.mu, so a reconfig serializes against the packet
// path the same way any classify does — no packet ever observes a
// half-applied setting.

// Latency histogram geometry: classification cost spans four orders of
// magnitude (a 32-byte buffer decides in ~1 µs, a 1 MiB one in
// milliseconds), so samples are recorded as log2(1 + microseconds) into
// one-unit-wide bins — bin i covers [2^i - 1, 2^(i+1) - 1) µs, and 24
// bins reach ~16 s.
const latencyBins = 24

func newLatencyHistogram() *stats.ConcurrentHistogram {
	h, err := stats.NewConcurrentHistogram(latencyBins, 0, latencyBins)
	if err != nil {
		// Unreachable: the geometry is a compile-time constant.
		panic(err)
	}
	return h
}

// latencyBinValue maps a classify duration onto the histogram's log2 axis.
func latencyBinValue(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return math.Log2(1 + float64(d.Microseconds()))
}

// sampleRingSize bounds the shadow-sample ring. A handful of recent
// buffers is enough to smoke-test a candidate model against live traffic
// without holding onto payload history.
const sampleRingSize = 16

// recordSampleLocked retains a classified full buffer in the shadow ring.
// The buffer is owned by the retired flow, so no copy is needed — nothing
// mutates it after classification. Caller holds e.mu.
func (e *Engine) recordSampleLocked(buf []byte) {
	if len(e.samples) < sampleRingSize {
		e.samples = append(e.samples, buf)
		return
	}
	e.samples[e.sampleNext] = buf
	e.sampleNext = (e.sampleNext + 1) % sampleRingSize
}

// SampleBuffers returns the engine's ring of recently classified payload
// buffers (newest-last is not guaranteed; order is unspecified). Buffered
// mode only — a stream engine never retains payload and returns nil.
func (e *Engine) SampleBuffers() [][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([][]byte(nil), e.samples...)
}

// LatencyHistogram returns a snapshot of the engine's classification
// latency histogram (log2-microsecond bins, see latencyBins). Lock-free:
// the histogram's bins are atomics (stats.ConcurrentHistogram), so a
// metrics scrape never serializes against the packet path.
func (e *Engine) LatencyHistogram() *stats.Histogram {
	return e.latency.Snapshot()
}

// SetMaxPending retunes the pending-table cap live. The new cap governs
// admissions from the next packet on; a table already above a lowered cap
// shrinks one eviction per new-flow arrival rather than being drained,
// so conservation counters are never disturbed in bulk.
func (e *Engine) SetMaxPending(n int) error {
	if n < 0 {
		return fmt.Errorf("flow: negative pending cap %d", n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.MaxPending = n
	return nil
}

// SetEviction retunes the full-table admission policy live.
func (e *Engine) SetEviction(p EvictPolicy) error {
	if p < EvictOldest || p > EvictShed {
		return fmt.Errorf("flow: unknown eviction policy %d", int(p))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Eviction = p
	return nil
}

// SetIdleFlush retunes the idle-flush window live. Zero disables idle
// flushing.
func (e *Engine) SetIdleFlush(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("flow: negative idle-flush window %v", d)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.IdleFlush = d
	return nil
}

// SetMaxPending applies the cap to every shard. The cap is per shard,
// matching how EngineConfig.MaxPending is interpreted at construction.
func (pe *ParallelEngine) SetMaxPending(n int) error {
	var errs []error
	for i, shard := range pe.shards {
		if err := shard.SetMaxPending(n); err != nil {
			errs = append(errs, fmt.Errorf("flow: shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// SetEviction applies the eviction policy to every shard.
func (pe *ParallelEngine) SetEviction(p EvictPolicy) error {
	var errs []error
	for i, shard := range pe.shards {
		if err := shard.SetEviction(p); err != nil {
			errs = append(errs, fmt.Errorf("flow: shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// SetIdleFlush applies the idle-flush window to every shard.
func (pe *ParallelEngine) SetIdleFlush(d time.Duration) error {
	var errs []error
	for i, shard := range pe.shards {
		if err := shard.SetIdleFlush(d); err != nil {
			errs = append(errs, fmt.Errorf("flow: shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// SampleBuffers pools every shard's shadow-sample ring.
func (pe *ParallelEngine) SampleBuffers() [][]byte {
	var all [][]byte
	for _, shard := range pe.shards {
		all = append(all, shard.SampleBuffers()...)
	}
	return all
}

// LatencyHistograms returns one latency snapshot per shard, in shard
// order.
func (pe *ParallelEngine) LatencyHistograms() []*stats.Histogram {
	hs := make([]*stats.Histogram, len(pe.shards))
	for i, shard := range pe.shards {
		hs[i] = shard.LatencyHistogram()
	}
	return hs
}

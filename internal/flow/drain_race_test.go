package flow

import (
	"sync"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// TestFlushAllRacesProcessUnderChaos drives a sharded engine from
// concurrent producers while another goroutine repeatedly drains it with
// FlushAll, with a ChaosClassifier injecting errors and panics the whole
// time. It asserts the drain path is safe under concurrency: no panic
// leaks past safeClassify, and the §6 conservation invariant
// (Admitted == Classified + Fallback + Dropped + Pending) holds once the
// engine is quiescent.
func TestFlushAllRacesProcessUnderChaos(t *testing.T) {
	base := ClassifierFunc(func(payload []byte) (corpus.Class, error) {
		return corpus.Class(int(payload[0]) % corpus.NumClasses), nil
	})
	chaos := NewChaosClassifier(base, ChaosConfig{
		Seed:      11,
		ErrorRate: 0.2,
		PanicRate: 0.2,
	})
	pe, err := NewParallelEngine(EngineConfig{
		BufferSize:    16,
		Classifier:    chaos,
		MaxPending:    64,
		Eviction:      EvictClassifyPartial,
		FallbackClass: corpus.Binary,
		Faults:        FaultPolicy{Tolerate: true, TripAfter: 16, ProbeEvery: 4},
	}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	cfg := packet.DefaultTraceConfig()
	cfg.Flows = 300
	cfg.Duration = 5 * time.Second
	cfg.MaxFlowBytes = 2 << 10
	trace, err := packet.Generate(cfg, corpus.NewGenerator(23))
	if err != nil {
		t.Fatal(err)
	}
	maxTime := trace.Packets[len(trace.Packets)-1].Time

	const producers = 4
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(trace.Packets); i += producers {
				// Tolerate mode: Process must never surface an error or a
				// panic, even while FlushAll races it.
				if _, err := pe.Process(&trace.Packets[i]); err != nil {
					t.Errorf("Process: %v", err)
					return
				}
			}
		}(w)
	}
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for i := 0; i < 50; i++ {
			if _, err := pe.FlushAll(maxTime + time.Minute); err != nil {
				t.Errorf("concurrent FlushAll: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-drainDone

	if _, err := pe.FlushAll(maxTime + 2*time.Minute); err != nil {
		t.Fatalf("final FlushAll: %v", err)
	}
	s := pe.Stats()
	if s.Pending != 0 {
		t.Errorf("flows still pending after final FlushAll: %d", s.Pending)
	}
	if got := s.Classified + s.Fallback + s.Dropped + s.Pending; got != s.Admitted {
		t.Errorf("conservation violated under drain race: Classified(%d)+Fallback(%d)+Dropped(%d)+Pending(%d) = %d, want Admitted %d",
			s.Classified, s.Fallback, s.Dropped, s.Pending, got, s.Admitted)
	}
	cs := chaos.Stats()
	if cs.InjectedPanics == 0 || cs.InjectedErrors == 0 {
		t.Errorf("chaos injected nothing (errors %d, panics %d); test exercised nothing", cs.InjectedErrors, cs.InjectedPanics)
	}
	if cs.Calls > s.Admitted+s.Shed {
		t.Errorf("classifier called %d times for %d admissions: flows retried", cs.Calls, s.Admitted)
	}
}

// Package flow implements Iustitia's online classification pipeline
// (Figure 1 of the paper): SHA-1 flow-ID hashing of packet headers, the
// Classification Database (CDB) with FIN/RST and inactivity purging,
// per-flow payload buffering up to b bytes, entropy-feature classification
// of new flows, and routing of packets to per-class output queues.
package flow

import (
	"crypto/sha1"

	"iustitia/internal/packet"
)

// ID is a flow identifier: the SHA-1 hash of the flow's 5-tuple, exactly
// the 160-bit header hash the paper's CDB stores per record.
type ID [sha1.Size]byte

// IDOf hashes a 5-tuple into its flow ID.
func IDOf(t packet.FiveTuple) ID {
	wire := t.Marshal()
	return sha1.Sum(wire[:])
}

// RecordBits is the CDB record size the paper accounts: 160 bits of SHA-1
// hash, 32 bits of λ (last inter-arrival), and 2 bits of class label.
const RecordBits = 160 + 32 + 2

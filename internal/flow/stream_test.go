package flow

import (
	"errors"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/entropy"
	"iustitia/internal/packet"
)

// entropyVecClassifier is a VectorClassifier whose label depends only on
// the exact h_1 feature — which stream mode also computes exactly — so a
// stream engine and a buffered engine must agree flow for flow.
type entropyVecClassifier struct {
	widths       []int
	vectorCalls  int
	payloadCalls int
}

func newVecClassifier() *entropyVecClassifier {
	return &entropyVecClassifier{widths: []int{1, 3}}
}

func (c *entropyVecClassifier) FeatureWidths() []int { return c.widths }

func (c *entropyVecClassifier) Classify(p []byte) (corpus.Class, error) {
	c.payloadCalls++
	vec, err := entropy.VectorAt(p, c.widths)
	if err != nil {
		return 0, err
	}
	return c.label(vec), nil
}

func (c *entropyVecClassifier) ClassifyVector(vec []float64) (corpus.Class, error) {
	c.vectorCalls++
	return c.label(vec), nil
}

func (c *entropyVecClassifier) label(vec []float64) corpus.Class {
	switch h := vec[0]; {
	case h < 0.45:
		return corpus.Text
	case h < 0.92:
		return corpus.Binary
	default:
		return corpus.Encrypted
	}
}

func streamEngineConfig(clf Classifier, b int) EngineConfig {
	return EngineConfig{
		BufferSize: b,
		Classifier: clf,
		Stream:     &StreamConfig{Epsilon: 0.3, Delta: 0.3, Seed: 11},
	}
}

func assertConservation(t *testing.T, s EngineStats) {
	t.Helper()
	if s.Admitted != s.Classified+s.Fallback+s.Dropped+s.Pending {
		t.Fatalf("conservation violated: admitted %d != classified %d + fallback %d + dropped %d + pending %d",
			s.Admitted, s.Classified, s.Fallback, s.Dropped, s.Pending)
	}
}

func TestStreamModeRequiresVectorClassifier(t *testing.T) {
	plain := ClassifierFunc(func([]byte) (corpus.Class, error) { return corpus.Text, nil })
	if _, err := NewEngine(streamEngineConfig(plain, 64)); err == nil {
		t.Fatal("stream mode accepted a payload-only classifier")
	}
}

func TestStreamModeRejectsBadParams(t *testing.T) {
	cfg := streamEngineConfig(newVecClassifier(), 64)
	cfg.Stream.Epsilon = 1.5
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("stream mode accepted epsilon outside (0, 1)")
	}
}

// The tentpole behaviour: a stream engine classifies flows on the same
// trigger as a buffered one — through ClassifyVector, with no payload
// buffer ever held — and agrees with the buffered engine whenever the
// deciding features are exact in both modes.
func TestStreamEngineClassifiesWithoutBuffering(t *testing.T) {
	const b = 256
	vclf := newVecClassifier()
	stream, err := NewEngine(streamEngineConfig(vclf, b))
	if err != nil {
		t.Fatal(err)
	}
	exactClf := newVecClassifier()
	exact, err := NewEngine(EngineConfig{BufferSize: b, Classifier: exactClf})
	if err != nil {
		t.Fatal(err)
	}

	gen := corpus.NewGenerator(21)
	for i, class := range []corpus.Class{corpus.Text, corpus.Binary, corpus.Encrypted} {
		f, err := gen.File(class, b)
		if err != nil {
			t.Fatal(err)
		}
		tp := tuple(uint16(3000+i), packet.TCP)
		var streamV, exactV Verdict
		for off := 0; off < b; off += 64 {
			chunk := string(f.Data[off : off+64])
			at := time.Duration(off) * time.Millisecond
			if streamV, err = stream.Process(dataPacket(tp, at, chunk)); err != nil {
				t.Fatal(err)
			}
			if exactV, err = exact.Process(dataPacket(tp, at, chunk)); err != nil {
				t.Fatal(err)
			}
			if off+64 < b {
				if streamV.Routed {
					t.Fatalf("flow %d routed before its %d bytes streamed", i, b)
				}
				// White box: mid-flow state is the sketch, never a buffer.
				fl := stream.pend[IDOf(tp)]
				if fl == nil || fl.buf != nil || fl.sv == nil || fl.seen != off+64 {
					t.Fatalf("flow %d pending state: buf=%v sv=%v seen=%d, want nil buffer, live sketch, %d bytes",
						i, fl.buf, fl.sv, fl.seen, off+64)
				}
			}
		}
		if !streamV.Classified || !streamV.Routed {
			t.Fatalf("flow %d: stream verdict %+v, want classified+routed", i, streamV)
		}
		if streamV.Queue != exactV.Queue {
			t.Fatalf("flow %d (%s): stream labelled %v, buffered engine %v",
				i, class, streamV.Queue, exactV.Queue)
		}
	}
	if vclf.vectorCalls == 0 || vclf.payloadCalls != 0 {
		t.Fatalf("stream engine made %d vector and %d payload classifications, want only vector calls",
			vclf.vectorCalls, vclf.payloadCalls)
	}
	assertConservation(t, stream.Stats())
	if got := stream.StreamCounters(); got <= 0 {
		t.Fatalf("StreamCounters = %d, want positive counter budget", got)
	}
	if got := exact.StreamCounters(); got != 0 {
		t.Fatalf("buffered engine StreamCounters = %d, want 0", got)
	}
}

// Satellite: a flow shorter than the widest feature has no honest vector.
// At flush the readiness error must flow through the fault policy — strict
// engines surface entropy.ErrShortSequence, tolerant engines route the
// flow to the fallback queue — never a silently fabricated h_k = 0 label.
func TestStreamShortFlowFlush(t *testing.T) {
	strictClf := &entropyVecClassifier{widths: []int{1, 5}}
	strict, err := NewEngine(streamEngineConfig(strictClf, 64))
	if err != nil {
		t.Fatal(err)
	}
	tp := tuple(4000, packet.TCP)
	if _, err := strict.Process(dataPacket(tp, 0, "abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := strict.FlushAll(time.Second); !errors.Is(err, entropy.ErrShortSequence) {
		t.Fatalf("strict flush of a 3-byte flow against a 5-wide feature: err = %v, want ErrShortSequence", err)
	}
	assertConservation(t, strict.Stats())

	tolerantCfg := streamEngineConfig(&entropyVecClassifier{widths: []int{1, 5}}, 64)
	tolerantCfg.Faults = FaultPolicy{Tolerate: true}
	tolerantCfg.FallbackClass = corpus.Binary
	tolerant, err := NewEngine(tolerantCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tolerant.Process(dataPacket(tp, 0, "abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := tolerant.FlushAll(time.Second); err != nil {
		t.Fatal(err)
	}
	s := tolerant.Stats()
	if s.Fallback != 1 || s.QueueCounts[corpus.Binary] != 1 {
		t.Fatalf("tolerant flush: fallback %d, binary queue %d, want 1 and 1", s.Fallback, s.QueueCounts[corpus.Binary])
	}
	assertConservation(t, s)
}

// Mid-flow sketches must survive a node checkpoint: export pending state
// half-way through every flow, restore into a fresh engine, finish the
// flows on both — labels and verdicts must match exactly.
func TestStreamCheckpointRoundTrip(t *testing.T) {
	const b = 256
	build := func() *ParallelEngine {
		cfg := streamEngineConfig(nil, b)
		pe, err := NewParallelEngine(cfg, 2, []Classifier{newVecClassifier(), newVecClassifier()})
		if err != nil {
			t.Fatal(err)
		}
		return pe
	}
	orig := build()
	gen := corpus.NewGenerator(31)
	flows := make(map[int][]byte)
	for i := 0; i < 6; i++ {
		f, err := gen.File(corpus.Class(i%corpus.NumClasses), b)
		if err != nil {
			t.Fatal(err)
		}
		flows[i] = f.Data
		tp := tuple(uint16(5000+i), packet.TCP)
		if _, err := orig.Process(dataPacket(tp, 0, string(f.Data[:b/2]))); err != nil {
			t.Fatal(err)
		}
	}

	blob := orig.ExportPending()
	restored := build()
	if n, err := restored.ImportPending(blob); err != nil || n != 6 {
		t.Fatalf("ImportPending = (%d, %v), want (6, nil)", n, err)
	}

	for i, data := range flows {
		tp := tuple(uint16(5000+i), packet.TCP)
		at := time.Second
		vo, err := orig.Process(dataPacket(tp, at, string(data[b/2:])))
		if err != nil {
			t.Fatal(err)
		}
		vr, err := restored.Process(dataPacket(tp, at, string(data[b/2:])))
		if err != nil {
			t.Fatal(err)
		}
		if !vr.Classified || vo != vr {
			t.Fatalf("flow %d: original verdict %+v, restored %+v", i, vo, vr)
		}
	}
	so, sr := orig.Stats(), restored.Stats()
	if so.Classified != sr.Classified || so.QueueCounts != sr.QueueCounts {
		t.Fatalf("stats diverged: original %+v, restored %+v", so, sr)
	}
}

// A flow-table migration carries the sketch: the gaining stream engine
// resumes the flow mid-stream and classifies at the same byte it would
// have on the losing node.
func TestStreamMigrationMovesSketch(t *testing.T) {
	const b = 256
	src, err := NewEngine(streamEngineConfig(newVecClassifier(), b))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewEngine(streamEngineConfig(newVecClassifier(), b))
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(7)
	f, err := gen.File(corpus.Encrypted, b)
	if err != nil {
		t.Fatal(err)
	}
	tp := tuple(6000, packet.TCP)
	if _, err := src.Process(dataPacket(tp, 0, string(f.Data[:100]))); err != nil {
		t.Fatal(err)
	}

	payload := src.ExportFlows(func(ID) bool { return true })
	if n, err := dst.ImportFlows(payload); err != nil || n != 1 {
		t.Fatalf("ImportFlows = (%d, %v), want (1, nil)", n, err)
	}
	fl := dst.pend[IDOf(tp)]
	if fl == nil || fl.sv == nil || fl.seen != 100 || fl.buf != nil {
		t.Fatalf("migrated flow state: %+v, want a live sketch with 100 bytes seen", fl)
	}
	v, err := dst.Process(dataPacket(tp, time.Second, string(f.Data[100:])))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified {
		t.Fatalf("verdict after migration %+v, want classified", v)
	}
	assertConservation(t, src.Stats())
	assertConservation(t, dst.Stats())
	if src.Stats().MigratedOut != 1 || dst.Stats().MigratedIn != 1 {
		t.Fatalf("migration counters: out %d, in %d", src.Stats().MigratedOut, dst.Stats().MigratedIn)
	}
}

// Cross-mode migration, buffered source: the buffered prefix replays into
// a fresh sketch on the stream-mode gaining node.
func TestStreamMigrationConvertsExactBuffer(t *testing.T) {
	const b = 256
	src, err := NewEngine(EngineConfig{BufferSize: b, Classifier: newVecClassifier()})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewEngine(streamEngineConfig(newVecClassifier(), b))
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(9)
	f, err := gen.File(corpus.Binary, b)
	if err != nil {
		t.Fatal(err)
	}
	tp := tuple(6100, packet.TCP)
	if _, err := src.Process(dataPacket(tp, 0, string(f.Data[:128]))); err != nil {
		t.Fatal(err)
	}
	if n, err := dst.ImportFlows(src.ExportFlows(func(ID) bool { return true })); err != nil || n != 1 {
		t.Fatalf("ImportFlows = (%d, %v), want (1, nil)", n, err)
	}
	fl := dst.pend[IDOf(tp)]
	if fl == nil || fl.sv == nil || fl.seen != 128 || fl.buf != nil {
		t.Fatalf("converted flow state: %+v, want sketch seeded from the 128-byte buffer", fl)
	}
	v, err := dst.Process(dataPacket(tp, time.Second, string(f.Data[128:])))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified {
		t.Fatalf("verdict after conversion %+v, want classified", v)
	}
	assertConservation(t, dst.Stats())
}

// Cross-mode migration, stream source: payload bytes are unrecoverable
// from counters, so the buffered gaining node restarts the flow's buffer —
// the flow survives, it just buffers from zero.
func TestStreamMigrationToExactRestartsBuffer(t *testing.T) {
	const b = 64
	src, err := NewEngine(streamEngineConfig(newVecClassifier(), b))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewEngine(EngineConfig{BufferSize: b, Classifier: newVecClassifier()})
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(13)
	f, err := gen.File(corpus.Text, 2*b)
	if err != nil {
		t.Fatal(err)
	}
	tp := tuple(6200, packet.TCP)
	if _, err := src.Process(dataPacket(tp, 0, string(f.Data[:32]))); err != nil {
		t.Fatal(err)
	}
	if n, err := dst.ImportFlows(src.ExportFlows(func(ID) bool { return true })); err != nil || n != 1 {
		t.Fatalf("ImportFlows = (%d, %v), want (1, nil)", n, err)
	}
	fl := dst.pend[IDOf(tp)]
	if fl == nil || fl.sv != nil || fl.seen != 0 || len(fl.buf) != 0 {
		t.Fatalf("stream→exact flow state: %+v, want an empty restarted buffer", fl)
	}
	v, err := dst.Process(dataPacket(tp, time.Second, string(f.Data[:b])))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified {
		t.Fatalf("verdict after buffering restart %+v, want classified", v)
	}
	assertConservation(t, dst.Stats())
}

// Eviction under MaxPending classifies the victim on its partial sketch,
// mirroring EvictClassifyPartial's buffered behaviour.
func TestStreamEvictClassifyPartial(t *testing.T) {
	cfg := streamEngineConfig(newVecClassifier(), 256)
	cfg.MaxPending = 1
	cfg.Eviction = EvictClassifyPartial
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(17)
	f, err := gen.File(corpus.Encrypted, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(dataPacket(tuple(7000, packet.TCP), 0, string(f.Data))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(dataPacket(tuple(7001, packet.TCP), time.Second, "x")); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Evicted != 1 || s.Classified != 1 || s.Pending != 1 {
		t.Fatalf("stats after eviction: %+v, want 1 evicted, 1 classified on its partial sketch, 1 pending", s)
	}
	assertConservation(t, s)
}

// A hostile sketch blob inside a migration payload must not poison the
// gaining engine: the flow is installed with restarted stream state.
func TestStreamMigrationCorruptSketchRestarts(t *testing.T) {
	const b = 64
	e, err := NewEngine(streamEngineConfig(newVecClassifier(), b))
	if err != nil {
		t.Fatal(err)
	}
	fx := flowExport{pendings: []pendingExport{{
		id:         IDOf(tuple(7100, packet.TCP)),
		lastSeen:   time.Second,
		packets:    1,
		seen:       32,
		checkedHdr: true,
		sketch:     []byte{0xde, 0xad, 0xbe, 0xef},
	}}}
	if n, err := e.ImportFlows(encodeFlowExport(fx)); err != nil || n != 1 {
		t.Fatalf("ImportFlows = (%d, %v), want (1, nil)", n, err)
	}
	fl := e.pend[IDOf(tuple(7100, packet.TCP))]
	if fl == nil || fl.sv != nil || fl.seen != 0 {
		t.Fatalf("corrupt-sketch flow state: %+v, want restarted stream state", fl)
	}
	assertConservation(t, e.Stats())
}

// The sketch seed is engine-wide, not per-shard: a sketch exported by one
// shard must restore bit-exactly on a shard with a different engine seed.
func TestStreamShardSeedUniform(t *testing.T) {
	cfgA := streamEngineConfig(newVecClassifier(), 128)
	cfgA.Seed = 1
	cfgB := streamEngineConfig(newVecClassifier(), 128)
	cfgB.Seed = 99 // different engine seed, same Stream.Seed
	a, err := NewEngine(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a.scfg.Seed != b.scfg.Seed || a.scfg.Kind != b.scfg.Kind {
		t.Fatalf("sketch configs diverged across engine seeds: %+v vs %+v", a.scfg, b.scfg)
	}
	if _, err := entest.NewStreamVectorConfig(a.scfg); err != nil {
		t.Fatal(err)
	}
}

// StreamCounters on a ParallelEngine answers from shard 0 alone. That is
// sound only if every shard derives the identical counter budget — this
// pins the invariant: NewParallelEngine copies one EngineConfig per
// shard, varying only the random-skip Seed, which the sketch geometry
// must not depend on.
func TestParallelStreamCountersUniform(t *testing.T) {
	cfg := streamEngineConfig(newVecClassifier(), 128)
	cfg.Seed = 42 // shard seeds become 42, 43, ... — budget must not care
	pe, err := NewParallelEngine(cfg, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := pe.StreamCounters()
	if want <= 0 {
		t.Fatalf("StreamCounters = %d, want positive budget in stream mode", want)
	}
	for i, shard := range pe.shards {
		if got := shard.StreamCounters(); got != want {
			t.Fatalf("shard %d budget %d diverges from shard 0's %d", i, got, want)
		}
	}
	// Buffered engines answer 0 on every shard for the same reason.
	buffered, err := NewParallelEngine(EngineConfig{BufferSize: 32, Classifier: firstByteClassifier()}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, shard := range buffered.shards {
		if got := shard.StreamCounters(); got != 0 {
			t.Fatalf("buffered shard %d budget %d, want 0", i, got)
		}
	}
}

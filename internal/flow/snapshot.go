package flow

import (
	"fmt"
	"sort"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/persist"
)

// This file is the CDB's durable codec, the payload behind
// persist.KindCDB snapshots: every live record — flow ID, label,
// last-seen, λ, classified-at — in a deterministic order. Import is
// hostile-input safe (bounds-checked, label-validated) and honours the
// database's MaxRecords cap: when a snapshot holds more records than the
// cap allows, the oldest-by-last-seen are dropped and counted in
// CDBStats.ImportDropped. The same record wire format carries the CDB
// section of a flow-table migration (migrate.go).

// cdbEntry pairs a record with its flow ID for codec and migration use.
type cdbEntry struct {
	id  ID
	rec cdbRecord
}

// sortCDBEntries orders entries by last-seen time, then flow ID — the
// deterministic export order.
func sortCDBEntries(all []cdbEntry) {
	sort.Slice(all, func(i, j int) bool {
		if all[i].rec.lastSeen != all[j].rec.lastSeen {
			return all[i].rec.lastSeen < all[j].rec.lastSeen
		}
		return string(all[i].id[:]) < string(all[j].id[:])
	})
}

// encodeCDBEntries serializes entries in the snapshot wire format. The
// caller supplies them already in deterministic order.
func encodeCDBEntries(all []cdbEntry) []byte {
	var e persist.Encoder
	e.U32(uint32(len(all)))
	for _, ent := range all {
		e.Raw(ent.id[:])
		e.U8(uint8(ent.rec.label))
		e.I64(int64(ent.rec.lastSeen))
		e.I64(int64(ent.rec.lambda))
		e.I64(int64(ent.rec.classifiedAt))
	}
	return e.Bytes()
}

// decodeCDBEntries parses and validates snapshot-format records. Hostile
// input returns an error wrapping persist.ErrCorrupt — never a panic.
func decodeCDBEntries(data []byte) ([]cdbEntry, error) {
	d := persist.NewDecoder(data)
	n := d.Count(cdbRecordWire)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("flow: cdb import: %w", err)
	}
	incoming := make([]cdbEntry, n)
	for i := range incoming {
		var ent cdbEntry
		copy(ent.id[:], d.Take(len(ent.id)))
		label := d.U8()
		ent.rec.lastSeen = time.Duration(d.I64())
		ent.rec.lambda = time.Duration(d.I64())
		ent.rec.classifiedAt = time.Duration(d.I64())
		if d.Err() != nil {
			break
		}
		if label >= corpus.NumClasses {
			d.Fail("record %d has label %d, want < %d", i, label, corpus.NumClasses)
			break
		}
		if ent.rec.lastSeen < 0 || ent.rec.lambda < 0 || ent.rec.classifiedAt < 0 {
			d.Fail("record %d has negative time", i)
			break
		}
		ent.rec.label = corpus.Class(label)
		incoming[i] = ent
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("flow: cdb import: %w", err)
	}
	return incoming, nil
}

// Export serializes every live record. The output is deterministic:
// records are ordered by last-seen time, then by flow ID.
func (c *CDB) Export() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exportLocked()
}

func (c *CDB) exportLocked() []byte {
	all := make([]cdbEntry, 0, len(c.records))
	for id, rec := range c.records {
		all = append(all, cdbEntry{id, rec})
	}
	sortCDBEntries(all)
	return encodeCDBEntries(all)
}

// cdbRecordWire is the per-record wire size: 20-byte ID, 1-byte label,
// three int64 times.
const cdbRecordWire = 20 + 1 + 3*8

// takeEntries removes every record whose flow ID matches pred and
// returns them in deterministic export order — the CDB side of a
// flow-table migration.
func (c *CDB) takeEntries(pred func(ID) bool) []cdbEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var taken []cdbEntry
	for id, rec := range c.records {
		if pred(id) {
			taken = append(taken, cdbEntry{id, rec})
			c.deleteLocked(id)
		}
	}
	sortCDBEntries(taken)
	return taken
}

// installEntries adds already validated records, replacing any record
// that shares a flow ID and honouring MaxRecords (newest-by-last-seen
// win; losers count in ImportDropped). Returns how many landed.
func (c *CDB) installEntries(incoming []cdbEntry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cap := c.cfg.MaxRecords; cap > 0 {
		room := cap - len(c.records)
		if room < 0 {
			room = 0
		}
		if len(incoming) > room {
			incoming = append([]cdbEntry(nil), incoming...)
			sort.SliceStable(incoming, func(i, j int) bool {
				return incoming[i].rec.lastSeen < incoming[j].rec.lastSeen
			})
			dropped := len(incoming) - room
			c.importDropped.Add(int64(dropped))
			incoming = incoming[dropped:]
		}
	}
	for _, ent := range incoming {
		c.putLocked(ent.id, ent.rec)
		c.imported.Add(1)
		// An imported flow has already been classified once; if its record
		// is later purged and the flow comes back, that reclassification
		// should count as a reinsertion, same as before the restart.
		c.reinsertedFlows[ent.id] = struct{}{}
	}
	return len(incoming)
}

// Import restores records written by Export into the database, replacing
// any record that shares a flow ID. Last-seen times, λ, and
// classified-at are preserved, so purge sweeps behave as if the process
// had never restarted. When MaxRecords is set and the snapshot would
// overflow it, the newest records win and the rest are counted in
// CDBStats.ImportDropped. Hostile input returns an error wrapping
// persist.ErrCorrupt and leaves the database unchanged.
func (c *CDB) Import(data []byte) error {
	incoming, err := decodeCDBEntries(data)
	if err != nil {
		return err
	}
	c.installEntries(incoming)
	return nil
}

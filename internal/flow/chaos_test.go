package flow

import (
	"errors"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func TestChaosClassifierDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 11, ErrorRate: 0.3}
	run := func() []bool {
		c := NewChaosClassifier(firstByteClassifier(), cfg)
		outcomes := make([]bool, 200)
		for i := range outcomes {
			_, err := c.Classify([]byte("T"))
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(), run()
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs between same-seed runs", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Errorf("injected %d/%d failures, want a mix at rate 0.3", failures, len(a))
	}
	if got := NewChaosClassifier(firstByteClassifier(), cfg); got == nil {
		t.Fatal("nil chaos classifier")
	}
}

func TestChaosClassifierFailFirstAndStats(t *testing.T) {
	c := NewChaosClassifier(firstByteClassifier(), ChaosConfig{Seed: 1, FailFirst: 3})
	for i := 0; i < 3; i++ {
		if _, err := c.Classify([]byte("T")); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if label, err := c.Classify([]byte("T")); err != nil || label != corpus.Text {
		t.Fatalf("call 4 = (%v, %v), want clean text", label, err)
	}
	s := c.Stats()
	if s.Calls != 4 || s.InjectedErrors != 3 || s.InjectedPanics != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestChaosClassifierPanics(t *testing.T) {
	c := NewChaosClassifier(firstByteClassifier(), ChaosConfig{Seed: 2, PanicRate: 1})
	defer func() {
		if recover() == nil {
			t.Error("want injected panic")
		}
		if got := c.Stats().InjectedPanics; got != 1 {
			t.Errorf("InjectedPanics = %d, want 1", got)
		}
	}()
	c.Classify([]byte("T")) //nolint:errcheck // panics
}

func TestChaosTraceDeterministicCounts(t *testing.T) {
	trace := generateTestTrace(t, 60, 21)
	cfg := TraceChaosConfig{Seed: 9, DropRate: 0.1, DupRate: 0.1, ReorderRate: 0.2}
	out1, s1 := ChaosTrace(trace.Packets, cfg)
	out2, s2 := ChaosTrace(trace.Packets, cfg)
	if len(out1) != len(out2) || s1 != s2 {
		t.Fatalf("same-seed runs differ: %d/%+v vs %d/%+v", len(out1), s1, len(out2), s2)
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Reordered == 0 {
		t.Errorf("chaos did nothing: %+v", s1)
	}
	if want := len(trace.Packets) - s1.Dropped + s1.Duplicated; len(out1) != want {
		t.Errorf("len(out) = %d, want %d", len(out1), want)
	}
	for i := range trace.Packets {
		if i > 0 && trace.Packets[i].Time < trace.Packets[i-1].Time {
			t.Fatal("input trace was reordered in place")
		}
	}
}

func generateTestTrace(t *testing.T, flows int, seed int64) *packet.Trace {
	t.Helper()
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = flows
	cfg.Seed = seed
	trace, err := packet.Generate(cfg, corpus.NewGenerator(seed))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestEngineSurvivesChaos is the acceptance drill: a realistic trace,
// perturbed by packet chaos, through an engine whose classifier errors and
// panics intermittently, with a hard pending cap. Asserts: no panic
// escapes, no error surfaces in tolerant mode, the pending table never
// exceeds its cap at any instant, no flow is classified more than once per
// buffer fill (no unbounded retry), and the governor counters account for
// every flow the engine admitted or refused.
func TestEngineSurvivesChaos(t *testing.T) {
	trace := generateTestTrace(t, 400, 33)
	packets, _ := ChaosTrace(trace.Packets, TraceChaosConfig{
		Seed: 33, DropRate: 0.02, DupRate: 0.02, ReorderRate: 0.05,
	})

	for _, policy := range []EvictPolicy{EvictOldest, EvictClassifyPartial, EvictShed} {
		t.Run(policy.String(), func(t *testing.T) {
			const cap = 8
			chaos := NewChaosClassifier(firstByteClassifier(), ChaosConfig{
				Seed: 7, ErrorRate: 0.15, PanicRate: 0.05,
			})
			e := newTestEngine(t, EngineConfig{
				BufferSize:    8 << 10,
				Classifier:    chaos,
				MaxPending:    cap,
				Eviction:      policy,
				FallbackClass: corpus.Binary,
				Faults:        FaultPolicy{Tolerate: true, TripAfter: 10, ProbeEvery: 4},
				IdleFlush:     2 * time.Second,
				CDB:           CDBConfig{PurgeOnClose: true, PurgeInactive: true, MaxRecords: 4 * cap},
			})
			var last time.Duration
			for i := range packets {
				if _, err := e.Process(&packets[i]); err != nil {
					t.Fatalf("packet %d: tolerant engine surfaced %v", i, err)
				}
				if got := e.Stats().Pending; got > cap {
					t.Fatalf("packet %d: pending table %d exceeds cap %d", i, got, cap)
				}
				if packets[i].Time > last {
					last = packets[i].Time
				}
				if i%512 == 0 {
					if _, err := e.FlushIdle(last); err != nil {
						t.Fatalf("FlushIdle: %v", err)
					}
				}
			}
			if _, err := e.FlushAll(last + time.Minute); err != nil {
				t.Fatalf("FlushAll: %v", err)
			}

			s := e.Stats()
			cs := chaos.Stats()
			if s.Pending != 0 {
				t.Errorf("Pending = %d after FlushAll", s.Pending)
			}
			if s.Failed == 0 || cs.InjectedPanics == 0 {
				t.Errorf("chaos too gentle: Failed=%d panics=%d", s.Failed, cs.InjectedPanics)
			}
			// Conservation: every admitted flow ended exactly one way.
			if got := s.Classified + s.Fallback + s.Dropped; got != s.Admitted {
				t.Errorf("flow accounting leak: Classified(%d)+Fallback(%d)+Dropped(%d) = %d, want Admitted %d",
					s.Classified, s.Fallback, s.Dropped, got, s.Admitted)
			}
			// No unbounded retry: the classifier runs at most once per
			// admission (strictly less when degraded mode short-circuits).
			if cs.Calls > s.Admitted {
				t.Errorf("classifier called %d times for %d admissions: flows are being retried", cs.Calls, s.Admitted)
			}
			if s.CDB.Size > 4*cap {
				t.Errorf("CDB size %d exceeds its cap %d", s.CDB.Size, 4*cap)
			}
			switch policy {
			case EvictShed:
				if s.Shed == 0 {
					t.Error("shed policy under churn never shed a flow")
				}
			default:
				if s.Evicted == 0 {
					t.Error("evicting policy under churn never evicted a flow")
				}
			}
		})
	}
}

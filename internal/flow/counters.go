package flow

import (
	"sync/atomic"

	"iustitia/internal/corpus"
	"iustitia/internal/stats"
)

// engineCounters is a shard's governor accounting, kept as atomics so
// Stats() is a lock-free snapshot: metrics endpoints, health probes, and
// the ops probation watcher can read a serving shard without touching
// e.mu (previously every Stats call serialized against the packet path,
// and a ParallelEngine.Stats swept all shard locks in turn).
//
// Writers still hold e.mu for the state the counters describe (the
// pending map, the LRU, the fills slice), so counter updates stay
// ordered with respect to each other on a shard; the atomics exist for
// the readers. One consequence: a reader can observe a conservation gap
// of a packet in flight (admitted bumped, classified not yet) — the
// invariant Admitted == Classified + Fallback + Dropped + Pending is
// exact only at quiescence, which is when the tests assert it.
//
// The block is padded on both ends so observer reads never bounce the
// cache line holding e.mu (immediately before it in Engine) or the
// checkpoint fields after it. Counters within the block share lines
// deliberately: they are written by the shard's own goroutine(s) under
// e.mu, so intra-block sharing costs nothing, while padding each
// counter would add ~1.5 KiB per shard for no win. The exception is
// queued: the CDB-hit fast path bumps it without taking e.mu at all
// (see ProcessID), which is what makes a cache-resident flow's packet
// lock-free end to end.
type engineCounters struct {
	_           stats.CacheLinePad
	admitted    atomic.Int64 // pending entries ever created
	shed        atomic.Int64 // flows refused admission, routed to fallback
	evicted     atomic.Int64 // pending flows force-retired to respect MaxPending
	dropped     atomic.Int64 // flows retired without any label
	failed      atomic.Int64 // classifier errors + recovered panics
	fallback    atomic.Int64 // flows labelled FallbackClass by failure/degraded mode
	classified  atomic.Int64 // real classifications (mirrors len(e.fills))
	pending     atomic.Int64 // gauge: len(e.pend)
	migratedIn  atomic.Int64 // flows (pending + CDB records) installed by migration
	migratedOut atomic.Int64 // flows (pending + CDB records) removed by migration
	degraded    atomic.Bool  // short-circuiting to fallback; probing for recovery
	queued      [corpus.NumClasses]atomic.Int64
	_           stats.CacheLinePad
}

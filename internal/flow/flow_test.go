package flow

import (
	"errors"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func tuple(srcPort uint16, transport packet.Transport) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{192, 168, 0, 1},
		SrcPort: srcPort, DstPort: 80, Transport: transport,
	}
}

func TestIDOfDeterministicAndDistinct(t *testing.T) {
	a := IDOf(tuple(1000, packet.TCP))
	b := IDOf(tuple(1000, packet.TCP))
	c := IDOf(tuple(1001, packet.TCP))
	if a != b {
		t.Error("same tuple hashed differently")
	}
	if a == c {
		t.Error("different tuples collided")
	}
	if a == IDOf(tuple(1000, packet.UDP)) {
		t.Error("transport not part of the flow ID")
	}
}

func TestCDBLookupInsert(t *testing.T) {
	cdb := NewCDB(CDBConfig{})
	id := IDOf(tuple(1, packet.TCP))
	if _, ok := cdb.Lookup(id, 0); ok {
		t.Error("empty CDB returned a record")
	}
	cdb.Insert(id, corpus.Binary, time.Second)
	label, ok := cdb.Lookup(id, 2*time.Second)
	if !ok || label != corpus.Binary {
		t.Errorf("Lookup = (%v, %v), want (binary, true)", label, ok)
	}
	if cdb.Size() != 1 {
		t.Errorf("Size = %d, want 1", cdb.Size())
	}
	if cdb.ApproxBits() != RecordBits {
		t.Errorf("ApproxBits = %d, want %d", cdb.ApproxBits(), RecordBits)
	}
}

func TestCDBCloseRespectsPolicy(t *testing.T) {
	id := IDOf(tuple(2, packet.TCP))

	enabled := NewCDB(CDBConfig{PurgeOnClose: true})
	enabled.Insert(id, corpus.Text, 0)
	if !enabled.Close(id) {
		t.Error("Close should remove with PurgeOnClose")
	}
	if enabled.Size() != 0 {
		t.Error("record survived Close")
	}
	if enabled.Close(id) {
		t.Error("Close on missing record reported removal")
	}

	disabled := NewCDB(CDBConfig{PurgeOnClose: false})
	disabled.Insert(id, corpus.Text, 0)
	if disabled.Close(id) || disabled.Size() != 1 {
		t.Error("Close should be a no-op with PurgeOnClose=false")
	}
}

func TestCDBInactivitySweep(t *testing.T) {
	cdb := NewCDB(CDBConfig{PurgeInactive: true, N: 4, DefaultLambda: 100 * time.Millisecond})
	idle := IDOf(tuple(3, packet.TCP))
	active := IDOf(tuple(4, packet.TCP))
	cdb.Insert(idle, corpus.Text, 0)
	cdb.Insert(active, corpus.Text, 0)
	// active gets a packet at t=900ms: lambda becomes 900ms.
	cdb.Lookup(active, 900*time.Millisecond)

	// At t=1s: idle has been quiet 1s > 4*100ms and goes; active was seen
	// 100ms ago < 4*900ms and stays.
	removed := cdb.Sweep(time.Second)
	if removed != 1 {
		t.Fatalf("Sweep removed %d, want 1", removed)
	}
	if _, ok := cdb.Lookup(active, time.Second); !ok {
		t.Error("active flow was swept")
	}
	if _, ok := cdb.Lookup(idle, time.Second); ok {
		t.Error("idle flow survived the sweep")
	}
	stats := cdb.Stats()
	if stats.RemovedByIdle != 1 {
		t.Errorf("RemovedByIdle = %d, want 1", stats.RemovedByIdle)
	}
}

func TestCDBLambdaUpdatesFromTraffic(t *testing.T) {
	cdb := NewCDB(CDBConfig{PurgeInactive: true, N: 2, DefaultLambda: 10 * time.Millisecond})
	id := IDOf(tuple(5, packet.TCP))
	cdb.Insert(id, corpus.Text, 0)
	// A slow flow: packet at t=1s stretches lambda to 1s, so at t=2.5s
	// (idle 1.5s < 2*1s) it must survive.
	cdb.Lookup(id, time.Second)
	if removed := cdb.Sweep(2500 * time.Millisecond); removed != 0 {
		t.Errorf("slow-but-alive flow swept (removed=%d)", removed)
	}
	// But at t=3.1s (idle 2.1s > 2s) it goes.
	if removed := cdb.Sweep(3100 * time.Millisecond); removed != 1 {
		t.Errorf("Sweep removed %d, want 1", removed)
	}
}

func TestCDBAutoSweepEveryN(t *testing.T) {
	// The inactivity purge is incremental: each insert examines
	// ⌈size/PurgeEvery⌉ records at a cursor, so every stale record is
	// found within PurgeEvery inserts of going stale — the historical
	// full-scan cadence, paid in bounded slices instead of one
	// stop-the-shard scan.
	cdb := NewCDB(CDBConfig{PurgeInactive: true, N: 1, DefaultLambda: time.Millisecond, PurgeEvery: 10})
	// First 9 inserts at t=0 (they will all be stale by t=1s).
	for i := 0; i < 9; i++ {
		cdb.Insert(IDOf(tuple(uint16(100+i), packet.TCP)), corpus.Text, 0)
	}
	if cdb.Size() != 9 {
		t.Fatalf("Size = %d, want 9", cdb.Size())
	}
	// PurgeEvery more inserts at t=1s: a full incremental pass completes,
	// purging all 9 stale records; the 10 fresh ones survive.
	for i := 0; i < 10; i++ {
		cdb.Insert(IDOf(tuple(uint16(200+i), packet.TCP)), corpus.Text, time.Second)
	}
	if got := cdb.Size(); got != 10 {
		t.Errorf("incremental sweep left %d records, want 10 (the fresh ones)", got)
	}
	if got := cdb.Stats().RemovedByIdle; got != 9 {
		t.Errorf("RemovedByIdle = %d, want 9", got)
	}
}

func TestCDBReinsertionCounting(t *testing.T) {
	cdb := NewCDB(CDBConfig{PurgeOnClose: true})
	id := IDOf(tuple(6, packet.TCP))
	cdb.Insert(id, corpus.Text, 0)
	cdb.Close(id)
	cdb.Insert(id, corpus.Text, time.Second)
	if got := cdb.Stats().Reinsertions; got != 1 {
		t.Errorf("Reinsertions = %d, want 1", got)
	}
}

// firstByteClassifier labels by the first payload byte, making engine
// behaviour fully deterministic in tests: 'T' -> text, 'E' -> encrypted,
// anything else -> binary.
func firstByteClassifier() Classifier {
	return ClassifierFunc(func(payload []byte) (corpus.Class, error) {
		if len(payload) == 0 {
			return 0, errors.New("empty payload")
		}
		switch payload[0] {
		case 'T':
			return corpus.Text, nil
		case 'E':
			return corpus.Encrypted, nil
		default:
			return corpus.Binary, nil
		}
	})
}

func newTestEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	if cfg.Classifier == nil {
		cfg.Classifier = firstByteClassifier()
	}
	if cfg.BufferSize == 0 {
		cfg.BufferSize = 8
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func dataPacket(tp packet.FiveTuple, at time.Duration, payload string) *packet.Packet {
	return &packet.Packet{Tuple: tp, Time: at, Flags: packet.FlagACK, Payload: []byte(payload)}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{BufferSize: 0, Classifier: firstByteClassifier()}); err == nil {
		t.Error("b=0: want error")
	}
	if _, err := NewEngine(EngineConfig{BufferSize: 8}); err == nil {
		t.Error("nil classifier: want error")
	}
	if _, err := NewEngine(EngineConfig{BufferSize: 8, Classifier: firstByteClassifier(), HeaderThreshold: -1}); err == nil {
		t.Error("negative T: want error")
	}
}

func TestEngineBuffersThenClassifies(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8})
	tp := tuple(1000, packet.TCP)

	v, err := e.Process(dataPacket(tp, 0, "TTTT"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Routed || v.Classified {
		t.Errorf("first half-buffer packet: verdict = %+v, want buffered", v)
	}
	v, err = e.Process(dataPacket(tp, 10*time.Millisecond, "TTTT"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || !v.Routed || v.Queue != corpus.Text {
		t.Errorf("buffer-completing packet: verdict = %+v", v)
	}

	// Subsequent packets hit the CDB.
	v, err = e.Process(dataPacket(tp, 20*time.Millisecond, "whatever"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.FromCDB || v.Queue != corpus.Text {
		t.Errorf("post-classification packet: verdict = %+v", v)
	}

	if label, ok := e.Label(tp); !ok || label != corpus.Text {
		t.Errorf("Label = (%v, %v), want (text, true)", label, ok)
	}
	fills := e.FillStats()
	if len(fills) != 1 || fills[0].Packets != 2 || fills[0].Delay != 10*time.Millisecond {
		t.Errorf("FillStats = %+v", fills)
	}
}

func TestEngineTruncatesOverfill(t *testing.T) {
	// A single oversized packet must classify on exactly b bytes.
	var got []byte
	e := newTestEngine(t, EngineConfig{
		BufferSize: 4,
		Classifier: ClassifierFunc(func(p []byte) (corpus.Class, error) {
			got = append([]byte(nil), p...)
			return corpus.Binary, nil
		}),
	})
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "ABCDEFGH")); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ABCD" {
		t.Errorf("classifier saw %q, want %q", got, "ABCD")
	}
}

func TestEngineFINPurgesAndDropsPending(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8, CDB: CDBConfig{PurgeOnClose: true}})
	tp := tuple(2000, packet.TCP)
	if _, err := e.Process(dataPacket(tp, 0, "TTTTTTTT")); err != nil {
		t.Fatal(err)
	}
	if e.CDB().Size() != 1 {
		t.Fatal("flow not in CDB")
	}
	fin := &packet.Packet{Tuple: tp, Time: time.Second, Flags: packet.FlagFIN | packet.FlagACK}
	if _, err := e.Process(fin); err != nil {
		t.Fatal(err)
	}
	if e.CDB().Size() != 0 {
		t.Error("FIN did not purge the CDB record")
	}

	// FIN on a still-pending flow drops its buffer.
	tp2 := tuple(2001, packet.TCP)
	if _, err := e.Process(dataPacket(tp2, 0, "TT")); err != nil {
		t.Fatal(err)
	}
	rst := &packet.Packet{Tuple: tp2, Time: time.Second, Flags: packet.FlagRST}
	if _, err := e.Process(rst); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Pending; got != 0 {
		t.Errorf("Pending = %d after RST, want 0", got)
	}
}

func TestEngineHeaderThresholdSkips(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 4, HeaderThreshold: 6})
	tp := tuple(3000, packet.TCP)
	// 6 header bytes then the real content "EEEE".
	if _, err := e.Process(dataPacket(tp, 0, "HDR")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(dataPacket(tp, 1, "HDR")); err != nil {
		t.Fatal(err)
	}
	v, err := e.Process(dataPacket(tp, 2, "EEEE"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || v.Queue != corpus.Encrypted {
		t.Errorf("verdict = %+v, want encrypted classification", v)
	}
}

func TestEngineStripsKnownHeaders(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 4, StripKnownHeaders: true})
	tp := tuple(4000, packet.TCP)
	payload := "HTTP/1.1 200 OK\r\nContent-Type: x\r\n\r\nEEEE"
	v, err := e.Process(dataPacket(tp, 0, payload))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || v.Queue != corpus.Encrypted {
		t.Errorf("verdict = %+v, want encrypted after HTTP strip", v)
	}
}

func TestEngineIdleFlush(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 1024, IdleFlush: time.Second})
	tp := tuple(5000, packet.UDP)
	if _, err := e.Process(dataPacket(tp, 0, "EEEE")); err != nil {
		t.Fatal(err)
	}
	// Not yet idle long enough.
	n, err := e.FlushIdle(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("early flush classified %d flows", n)
	}
	n, err = e.FlushIdle(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("idle flush classified %d flows, want 1", n)
	}
	if label, ok := e.Label(tp); !ok || label != corpus.Encrypted {
		t.Errorf("Label = (%v, %v), want encrypted", label, ok)
	}
}

func TestEngineIdleFlushDisabled(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 1024})
	if _, err := e.Process(dataPacket(tuple(1, packet.UDP), 0, "EE")); err != nil {
		t.Fatal(err)
	}
	n, err := e.FlushIdle(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Error("FlushIdle should be a no-op when disabled")
	}
	n, err = e.FlushAll(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("FlushAll = %d, want 1", n)
	}
}

func TestEngineQueueCounting(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 2})
	flows := []struct {
		port    uint16
		payload string
		class   corpus.Class
	}{
		{1, "TT", corpus.Text},
		{2, "BB", corpus.Binary},
		{3, "EE", corpus.Encrypted},
		{4, "EE", corpus.Encrypted},
	}
	for _, f := range flows {
		if _, err := e.Process(dataPacket(tuple(f.port, packet.TCP), 0, f.payload)); err != nil {
			t.Fatal(err)
		}
	}
	stats := e.Stats()
	want := [corpus.NumClasses]int{1, 1, 2}
	if stats.QueueCounts != want {
		t.Errorf("QueueCounts = %v, want %v", stats.QueueCounts, want)
	}
	if stats.Classified != 4 {
		t.Errorf("Classified = %d, want 4", stats.Classified)
	}
}

func TestEngineClassifierErrorPropagates(t *testing.T) {
	wantErr := errors.New("boom")
	e := newTestEngine(t, EngineConfig{
		BufferSize: 2,
		Classifier: ClassifierFunc(func([]byte) (corpus.Class, error) { return 0, wantErr }),
	})
	_, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "xx"))
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestEngineNilPacket(t *testing.T) {
	e := newTestEngine(t, EngineConfig{})
	if _, err := e.Process(nil); err == nil {
		t.Error("nil packet: want error")
	}
}

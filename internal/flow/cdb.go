package flow

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/stats"
)

// CDBConfig tunes the Classification Database's purge behaviour.
type CDBConfig struct {
	// PurgeOnClose removes a flow's record when a FIN or RST packet is
	// seen (paper: up to 46% of flows are removable this way).
	PurgeOnClose bool
	// PurgeInactive removes records idle longer than N times their last
	// observed inter-arrival time λ (paper's t_current − t_Fi > n·λ rule).
	PurgeInactive bool
	// N is the inactivity coefficient n; the paper finds n = 4 optimal.
	// Values <= 0 default to 4.
	N float64
	// DefaultLambda is the λ assumed for flows with a single observed
	// packet. Values <= 0 default to the paper's 0.5 s.
	DefaultLambda time.Duration
	// PurgeEvery is the inactivity sweep's amortization window: every
	// record is examined for idleness at least once per PurgeEvery
	// inserts (paper: a sweep per 5,000 insertions). The work is spread
	// incrementally — each insert examines ⌈size/PurgeEvery⌉ records at a
	// sweep cursor — instead of the historical stop-the-shard full scan
	// on every PurgeEvery-th insert. Values <= 0 default to 5000.
	PurgeEvery int
	// MaxAge, when positive, expires a record this long after its flow
	// was classified, forcing reclassification — the paper's §4.6
	// countermeasure against attackers who prepend deceiving padding to a
	// flow and then switch content. Zero disables expiry.
	MaxAge time.Duration
	// MaxRecords, when positive, hard-caps the database so its memory is
	// bounded even when the purge heuristics cannot keep up with flow
	// churn. An insert that overflows the cap first runs an inactivity
	// sweep; if the database is still over, the oldest records are
	// evicted (with headroom, so the eviction scan amortizes). Evicted
	// flows simply get reclassified if they come back.
	MaxRecords int
}

func (c CDBConfig) withDefaults() CDBConfig {
	if c.N <= 0 {
		c.N = 4
	}
	if c.DefaultLambda <= 0 {
		c.DefaultLambda = 500 * time.Millisecond
	}
	if c.PurgeEvery <= 0 {
		c.PurgeEvery = 5000
	}
	return c
}

// cdbRecord is one CDB entry. Together with its map key it corresponds to
// the paper's 194-bit record (hash + λ + label). ord is bookkeeping for
// the incremental sweep (the record's slot in CDB.order), never
// serialized.
type cdbRecord struct {
	label        corpus.Class
	lastSeen     time.Duration
	lambda       time.Duration
	classifiedAt time.Duration
	ord          int
}

// CDB is the Classification Database: flow ID -> class label, with the
// paper's two purge policies. It is safe for concurrent use.
//
// The inactivity purge is incremental: alongside the record map the CDB
// keeps a dense scan ring of live IDs (order) and a cursor (sweepPos).
// Each insert advances the cursor over a bounded quota of records —
// ⌈size/PurgeEvery⌉, so a full pass completes within PurgeEvery inserts,
// matching the historical full-scan cadence — removing the idle ones it
// passes. Removal is O(1) swap-remove from the ring. The historical
// behaviour held the lock for a whole-table scan on every PurgeEvery-th
// insert, a tail-latency spike proportional to table size.
type CDB struct {
	cfg CDBConfig

	mu              sync.Mutex
	records         map[ID]cdbRecord
	order           []ID // dense ring of live IDs; records[id].ord indexes it
	sweepPos        int  // incremental sweep cursor into order
	reinsertedFlows map[ID]struct{}

	// Counters are atomics (padded off the mutable state above) so
	// Stats() and Size() are lock-free snapshots — a metrics scrape never
	// serializes against the shard's insert/lookup path. Writers mutate
	// them under mu, keeping counter updates ordered with the map state
	// they describe.
	_                 stats.CacheLinePad
	size              atomic.Int64 // gauge: len(records)
	insertions        atomic.Int64
	removedByClose    atomic.Int64
	removedByIdle     atomic.Int64
	removedByPressure atomic.Int64
	imported          atomic.Int64
	importDropped     atomic.Int64
	reinsertions      atomic.Int64
	expired           atomic.Int64
	sweepExamined     atomic.Int64 // records examined by incremental sweep steps
	_                 stats.CacheLinePad
}

// NewCDB returns an empty CDB.
func NewCDB(cfg CDBConfig) *CDB {
	return &CDB{
		cfg:             cfg.withDefaults(),
		records:         make(map[ID]cdbRecord),
		reinsertedFlows: make(map[ID]struct{}),
	}
}

// putLocked stores a record, keeping the scan ring consistent: an update
// reuses the existing slot, a new record appends one. Caller holds c.mu.
func (c *CDB) putLocked(id ID, rec cdbRecord) {
	if old, ok := c.records[id]; ok {
		rec.ord = old.ord
		c.records[id] = rec
		return
	}
	rec.ord = len(c.order)
	c.order = append(c.order, id)
	c.records[id] = rec
	c.size.Store(int64(len(c.records)))
}

// deleteLocked removes a record and swap-fills its scan-ring slot with
// the last entry, so the ring stays dense in O(1). Caller holds c.mu.
func (c *CDB) deleteLocked(id ID) {
	rec, ok := c.records[id]
	if !ok {
		return
	}
	last := len(c.order) - 1
	moved := c.order[last]
	c.order[rec.ord] = moved
	if moved != id {
		m := c.records[moved]
		m.ord = rec.ord
		c.records[moved] = m
	}
	c.order = c.order[:last]
	delete(c.records, id)
	if c.sweepPos >= len(c.order) {
		c.sweepPos = 0
	}
	c.size.Store(int64(len(c.records)))
}

// Lookup returns the class of a known flow and refreshes its activity
// clock (updating λ from the gap since the previous packet).
func (c *CDB) Lookup(id ID, now time.Duration) (corpus.Class, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()

	rec, ok := c.records[id]
	if !ok {
		return 0, false
	}
	if c.cfg.MaxAge > 0 && now-rec.classifiedAt > c.cfg.MaxAge {
		// Stale label: expire the record so the flow is reclassified.
		c.deleteLocked(id)
		c.expired.Add(1)
		return 0, false
	}
	if gap := now - rec.lastSeen; gap > 0 {
		rec.lambda = gap
	}
	rec.lastSeen = now
	c.records[id] = rec
	return rec.label, true
}

// Insert stores a newly classified flow and advances the incremental
// inactivity sweep by one bounded step.
func (c *CDB) Insert(id ID, label corpus.Class, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if _, seen := c.reinsertedFlows[id]; seen {
		c.reinsertions.Add(1)
	} else {
		// The first-insertion memory is accounting state, not routing
		// state; under a MaxRecords cap it must stay bounded too, so it
		// resets once it far exceeds the live table (reinsertions of
		// flows older than the reset are then undercounted).
		if c.cfg.MaxRecords > 0 && len(c.reinsertedFlows) >= 8*c.cfg.MaxRecords {
			c.reinsertedFlows = make(map[ID]struct{})
		}
		c.reinsertedFlows[id] = struct{}{}
	}
	c.putLocked(id, cdbRecord{
		label:        label,
		lastSeen:     now,
		lambda:       c.cfg.DefaultLambda,
		classifiedAt: now,
	})
	c.insertions.Add(1)
	// The historical trigger fired its first (full) sweep on the
	// PurgeEvery-th insert; the incremental sweep keeps that activation
	// point — a database that never reaches PurgeEvery insertions never
	// purges by idleness, exactly as before — and from then on pays the
	// same aggregate scan rate in bounded per-insert slices.
	if c.cfg.PurgeInactive && c.insertions.Load() >= int64(c.cfg.PurgeEvery) {
		c.sweepStepLocked(now, c.sweepQuotaLocked())
	}
	if c.cfg.MaxRecords > 0 && len(c.records) > c.cfg.MaxRecords {
		c.relieveLocked(now)
	}
}

// sweepQuotaLocked is the per-insert incremental sweep budget:
// ⌈size/PurgeEvery⌉, i.e. the historical one-full-scan-per-PurgeEvery-
// inserts scan rate paid in constant-bounded slices. With MaxRecords set
// the quota never exceeds ⌈(MaxRecords+1)/PurgeEvery⌉ (the table is
// relieved back under the cap on the same insert that overflows it), so
// per-insert sweep work has a hard bound — pinned by
// TestCDBIncrementalSweepBoundedPerInsert. Caller holds c.mu.
func (c *CDB) sweepQuotaLocked() int {
	q := (len(c.records) + c.cfg.PurgeEvery - 1) / c.cfg.PurgeEvery
	if q < 1 {
		q = 1
	}
	return q
}

// sweepStepLocked examines up to quota records at the sweep cursor,
// removing those idle past n·λ, and wraps the cursor at the ring's end.
// When a record is removed, the swap-filled slot is examined next rather
// than skipped, so a pass misses nothing. Caller holds c.mu.
func (c *CDB) sweepStepLocked(now time.Duration, quota int) int {
	removed := 0
	examined := 0
	for examined < quota && len(c.order) > 0 {
		if c.sweepPos >= len(c.order) {
			c.sweepPos = 0
		}
		id := c.order[c.sweepPos]
		rec := c.records[id]
		examined++
		if now-rec.lastSeen > time.Duration(c.cfg.N*float64(rec.lambda)) {
			c.deleteLocked(id)
			removed++
		} else {
			c.sweepPos++
		}
	}
	c.sweepExamined.Add(int64(examined))
	c.removedByIdle.Add(int64(removed))
	return removed
}

// relieveLocked enforces MaxRecords: an inactivity sweep first, then
// oldest-first eviction down to cap minus 1/8 headroom, so the O(n log n)
// selection runs once per MaxRecords/8 overflowing inserts rather than on
// every one. Caller holds c.mu.
func (c *CDB) relieveLocked(now time.Duration) {
	c.fullSweepLocked(now)
	target := c.cfg.MaxRecords - c.cfg.MaxRecords/8
	if target < 1 {
		target = 1
	}
	if len(c.records) <= c.cfg.MaxRecords {
		return
	}
	type aged struct {
		id       ID
		lastSeen time.Duration
	}
	all := make([]aged, 0, len(c.records))
	for id, rec := range c.records {
		all = append(all, aged{id, rec.lastSeen})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lastSeen < all[j].lastSeen })
	evict := int64(0)
	for _, a := range all[:len(all)-target] {
		c.deleteLocked(a.id)
		evict++
	}
	c.removedByPressure.Add(evict)
}

// Peek returns the class of a known flow without refreshing its activity
// clock or expiring stale records — a read-only query for operational
// tooling (verdict audits, status endpoints) that must not perturb λ
// estimates the way Lookup does.
func (c *CDB) Peek(id ID) (corpus.Class, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.records[id]
	if !ok {
		return 0, false
	}
	return rec.label, true
}

// Close removes a flow on FIN/RST when PurgeOnClose is enabled. It reports
// whether a record was removed.
func (c *CDB) Close(id ID) bool {
	if !c.cfg.PurgeOnClose {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.records[id]; !ok {
		return false
	}
	c.deleteLocked(id)
	c.removedByClose.Add(1)
	return true
}

// Sweep removes every record idle longer than n·λ at the given time and
// returns how many were removed — the on-demand full scan. The periodic
// purge no longer runs this whole-table form; it advances incrementally
// on each insert (see CDB and sweepStepLocked).
func (c *CDB) Sweep(now time.Duration) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fullSweepLocked(now)
}

func (c *CDB) fullSweepLocked(now time.Duration) int {
	removed := int64(0)
	for id, rec := range c.records {
		if now-rec.lastSeen > time.Duration(c.cfg.N*float64(rec.lambda)) {
			c.deleteLocked(id)
			removed++
		}
	}
	c.removedByIdle.Add(removed)
	return int(removed)
}

// Size returns the number of live records. Lock-free.
func (c *CDB) Size() int {
	return int(c.size.Load())
}

// CDBStats is a snapshot of CDB accounting.
type CDBStats struct {
	Size           int
	Insertions     int
	RemovedByClose int
	RemovedByIdle  int
	// Imported counts records restored from a snapshot by Import; together
	// with Insertions it accounts for every record that ever entered the
	// database, so the PR-1 accounting invariant extends across restarts.
	Imported int
	// ImportDropped counts snapshot records refused at Import because the
	// MaxRecords cap had no room for them (the oldest lose).
	ImportDropped int
	// RemovedByPressure counts records evicted by the MaxRecords hard cap.
	RemovedByPressure int
	// Reinsertions counts flows classified more than once because their
	// record had been purged — the reclassification cost of aggressive
	// purging the paper weighs when choosing n.
	Reinsertions int
	// Expired counts records dropped by the MaxAge reclassification rule.
	Expired int
	// SweepExamined counts records examined by incremental inactivity
	// sweep steps — per-insert purge work made visible, so tests (and
	// operators) can pin the amortization bound.
	SweepExamined int
}

// add accumulates s into the receiver (used by ParallelEngine).
func (a *CDBStats) add(s CDBStats) {
	a.Size += s.Size
	a.Insertions += s.Insertions
	a.RemovedByClose += s.RemovedByClose
	a.RemovedByIdle += s.RemovedByIdle
	a.Imported += s.Imported
	a.ImportDropped += s.ImportDropped
	a.RemovedByPressure += s.RemovedByPressure
	a.Reinsertions += s.Reinsertions
	a.Expired += s.Expired
	a.SweepExamined += s.SweepExamined
}

// Stats returns a snapshot of the CDB counters. Lock-free: each counter
// is read atomically, so a scrape concurrent with inserts may catch a
// record counted in Insertions but not yet in Size (or vice versa);
// counts are exact at quiescence.
func (c *CDB) Stats() CDBStats {
	return CDBStats{
		Size:              int(c.size.Load()),
		Insertions:        int(c.insertions.Load()),
		RemovedByClose:    int(c.removedByClose.Load()),
		RemovedByIdle:     int(c.removedByIdle.Load()),
		Imported:          int(c.imported.Load()),
		ImportDropped:     int(c.importDropped.Load()),
		RemovedByPressure: int(c.removedByPressure.Load()),
		Reinsertions:      int(c.reinsertions.Load()),
		Expired:           int(c.expired.Load()),
		SweepExamined:     int(c.sweepExamined.Load()),
	}
}

// ApproxBits returns the CDB's live size in paper-accounted bits
// (RecordBits per record). The count is the live record map, so records
// restored by Import are included the moment they land.
func (c *CDB) ApproxBits() int { return c.Size() * RecordBits }

package flow

import (
	"sort"
	"sync"
	"time"

	"iustitia/internal/corpus"
)

// CDBConfig tunes the Classification Database's purge behaviour.
type CDBConfig struct {
	// PurgeOnClose removes a flow's record when a FIN or RST packet is
	// seen (paper: up to 46% of flows are removable this way).
	PurgeOnClose bool
	// PurgeInactive removes records idle longer than N times their last
	// observed inter-arrival time λ (paper's t_current − t_Fi > n·λ rule).
	PurgeInactive bool
	// N is the inactivity coefficient n; the paper finds n = 4 optimal.
	// Values <= 0 default to 4.
	N float64
	// DefaultLambda is the λ assumed for flows with a single observed
	// packet. Values <= 0 default to the paper's 0.5 s.
	DefaultLambda time.Duration
	// PurgeEvery triggers an inactivity sweep whenever this many new
	// flows have been inserted since the last sweep (paper: 5,000).
	// Values <= 0 default to 5000.
	PurgeEvery int
	// MaxAge, when positive, expires a record this long after its flow
	// was classified, forcing reclassification — the paper's §4.6
	// countermeasure against attackers who prepend deceiving padding to a
	// flow and then switch content. Zero disables expiry.
	MaxAge time.Duration
	// MaxRecords, when positive, hard-caps the database so its memory is
	// bounded even when the purge heuristics cannot keep up with flow
	// churn. An insert that overflows the cap first runs an inactivity
	// sweep; if the database is still over, the oldest records are
	// evicted (with headroom, so the eviction scan amortizes). Evicted
	// flows simply get reclassified if they come back.
	MaxRecords int
}

func (c CDBConfig) withDefaults() CDBConfig {
	if c.N <= 0 {
		c.N = 4
	}
	if c.DefaultLambda <= 0 {
		c.DefaultLambda = 500 * time.Millisecond
	}
	if c.PurgeEvery <= 0 {
		c.PurgeEvery = 5000
	}
	return c
}

// cdbRecord is one CDB entry. Together with its map key it corresponds to
// the paper's 194-bit record (hash + λ + label).
type cdbRecord struct {
	label        corpus.Class
	lastSeen     time.Duration
	lambda       time.Duration
	classifiedAt time.Duration
}

// CDB is the Classification Database: flow ID -> class label, with the
// paper's two purge policies. It is safe for concurrent use.
type CDB struct {
	cfg CDBConfig

	mu                sync.Mutex
	records           map[ID]cdbRecord
	sinceLastSweep    int
	removedByClose    int
	removedByIdle     int
	removedByPressure int
	insertions        int
	imported          int
	importDropped     int
	reinsertedFlows   map[ID]struct{}
	reinsertions      int
	expired           int
}

// NewCDB returns an empty CDB.
func NewCDB(cfg CDBConfig) *CDB {
	return &CDB{
		cfg:             cfg.withDefaults(),
		records:         make(map[ID]cdbRecord),
		reinsertedFlows: make(map[ID]struct{}),
	}
}

// Lookup returns the class of a known flow and refreshes its activity
// clock (updating λ from the gap since the previous packet).
func (c *CDB) Lookup(id ID, now time.Duration) (corpus.Class, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()

	rec, ok := c.records[id]
	if !ok {
		return 0, false
	}
	if c.cfg.MaxAge > 0 && now-rec.classifiedAt > c.cfg.MaxAge {
		// Stale label: expire the record so the flow is reclassified.
		delete(c.records, id)
		c.expired++
		return 0, false
	}
	if gap := now - rec.lastSeen; gap > 0 {
		rec.lambda = gap
	}
	rec.lastSeen = now
	c.records[id] = rec
	return rec.label, true
}

// Insert stores a newly classified flow and runs the periodic inactivity
// sweep when due.
func (c *CDB) Insert(id ID, label corpus.Class, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if _, seen := c.reinsertedFlows[id]; seen {
		c.reinsertions++
	} else {
		// The first-insertion memory is accounting state, not routing
		// state; under a MaxRecords cap it must stay bounded too, so it
		// resets once it far exceeds the live table (reinsertions of
		// flows older than the reset are then undercounted).
		if c.cfg.MaxRecords > 0 && len(c.reinsertedFlows) >= 8*c.cfg.MaxRecords {
			c.reinsertedFlows = make(map[ID]struct{})
		}
		c.reinsertedFlows[id] = struct{}{}
	}
	c.records[id] = cdbRecord{
		label:        label,
		lastSeen:     now,
		lambda:       c.cfg.DefaultLambda,
		classifiedAt: now,
	}
	c.insertions++
	c.sinceLastSweep++
	if c.cfg.PurgeInactive && c.sinceLastSweep >= c.cfg.PurgeEvery {
		c.sweepLocked(now)
		c.sinceLastSweep = 0
	}
	if c.cfg.MaxRecords > 0 && len(c.records) > c.cfg.MaxRecords {
		c.relieveLocked(now)
	}
}

// relieveLocked enforces MaxRecords: an inactivity sweep first, then
// oldest-first eviction down to cap minus 1/8 headroom, so the O(n log n)
// selection runs once per MaxRecords/8 overflowing inserts rather than on
// every one. Caller holds c.mu.
func (c *CDB) relieveLocked(now time.Duration) {
	c.sweepLocked(now)
	target := c.cfg.MaxRecords - c.cfg.MaxRecords/8
	if target < 1 {
		target = 1
	}
	if len(c.records) <= c.cfg.MaxRecords {
		return
	}
	type aged struct {
		id       ID
		lastSeen time.Duration
	}
	all := make([]aged, 0, len(c.records))
	for id, rec := range c.records {
		all = append(all, aged{id, rec.lastSeen})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lastSeen < all[j].lastSeen })
	for _, a := range all[:len(all)-target] {
		delete(c.records, a.id)
		c.removedByPressure++
	}
}

// Peek returns the class of a known flow without refreshing its activity
// clock or expiring stale records — a read-only query for operational
// tooling (verdict audits, status endpoints) that must not perturb λ
// estimates the way Lookup does.
func (c *CDB) Peek(id ID) (corpus.Class, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.records[id]
	if !ok {
		return 0, false
	}
	return rec.label, true
}

// Close removes a flow on FIN/RST when PurgeOnClose is enabled. It reports
// whether a record was removed.
func (c *CDB) Close(id ID) bool {
	if !c.cfg.PurgeOnClose {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.records[id]; !ok {
		return false
	}
	delete(c.records, id)
	c.removedByClose++
	return true
}

// Sweep removes every record idle longer than n·λ at the given time and
// returns how many were removed. It is also invoked automatically every
// PurgeEvery insertions.
func (c *CDB) Sweep(now time.Duration) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweepLocked(now)
}

func (c *CDB) sweepLocked(now time.Duration) int {
	removed := 0
	for id, rec := range c.records {
		if now-rec.lastSeen > time.Duration(c.cfg.N*float64(rec.lambda)) {
			delete(c.records, id)
			removed++
		}
	}
	c.removedByIdle += removed
	return removed
}

// Size returns the number of live records.
func (c *CDB) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// CDBStats is a snapshot of CDB accounting.
type CDBStats struct {
	Size           int
	Insertions     int
	RemovedByClose int
	RemovedByIdle  int
	// Imported counts records restored from a snapshot by Import; together
	// with Insertions it accounts for every record that ever entered the
	// database, so the PR-1 accounting invariant extends across restarts.
	Imported int
	// ImportDropped counts snapshot records refused at Import because the
	// MaxRecords cap had no room for them (the oldest lose).
	ImportDropped int
	// RemovedByPressure counts records evicted by the MaxRecords hard cap.
	RemovedByPressure int
	// Reinsertions counts flows classified more than once because their
	// record had been purged — the reclassification cost of aggressive
	// purging the paper weighs when choosing n.
	Reinsertions int
	// Expired counts records dropped by the MaxAge reclassification rule.
	Expired int
}

// add accumulates s into the receiver (used by ParallelEngine).
func (a *CDBStats) add(s CDBStats) {
	a.Size += s.Size
	a.Insertions += s.Insertions
	a.RemovedByClose += s.RemovedByClose
	a.RemovedByIdle += s.RemovedByIdle
	a.Imported += s.Imported
	a.ImportDropped += s.ImportDropped
	a.RemovedByPressure += s.RemovedByPressure
	a.Reinsertions += s.Reinsertions
	a.Expired += s.Expired
}

// Stats returns a snapshot of the CDB counters.
func (c *CDB) Stats() CDBStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CDBStats{
		Size:              len(c.records),
		Insertions:        c.insertions,
		RemovedByClose:    c.removedByClose,
		RemovedByIdle:     c.removedByIdle,
		Imported:          c.imported,
		ImportDropped:     c.importDropped,
		RemovedByPressure: c.removedByPressure,
		Reinsertions:      c.reinsertions,
		Expired:           c.expired,
	}
}

// ApproxBits returns the CDB's live size in paper-accounted bits
// (RecordBits per record). The count is the live record map, so records
// restored by Import are included the moment they land.
func (c *CDB) ApproxBits() int { return c.Size() * RecordBits }

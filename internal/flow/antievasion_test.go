package flow

import (
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

func TestRandomSkipDefeatsPadding(t *testing.T) {
	// An attacker prepends 64 bytes of 'E' (encrypted-looking padding) to
	// a text flow. Without random skip, classification sees only padding;
	// with RandomSkipMax large enough, some flows classify on real
	// content.
	newEngineWithSkip := func(skip int) *Engine {
		e, err := NewEngine(EngineConfig{
			BufferSize:    8,
			Classifier:    firstByteClassifier(),
			RandomSkipMax: skip,
			Seed:          7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	padding := make([]byte, 64)
	for i := range padding {
		padding[i] = 'E'
	}
	content := make([]byte, 256)
	for i := range content {
		content[i] = 'T'
	}
	payload := string(padding) + string(content)

	classify := func(e *Engine, port uint16) corpus.Class {
		v, err := e.Process(dataPacket(tuple(port, packet.TCP), 0, payload))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Classified {
			t.Fatal("flow did not classify")
		}
		return v.Queue
	}

	noSkip := newEngineWithSkip(0)
	if got := classify(noSkip, 1); got != corpus.Encrypted {
		t.Fatalf("without skip, padding should win: got %v", got)
	}

	withSkip := newEngineWithSkip(200)
	textSeen := false
	for port := uint16(1); port <= 20; port++ {
		if classify(withSkip, port) == corpus.Text {
			textSeen = true
			break
		}
	}
	if !textSeen {
		t.Error("random skip never jumped past the deceiving padding in 20 flows")
	}
}

func TestRandomSkipValidation(t *testing.T) {
	_, err := NewEngine(EngineConfig{
		BufferSize:    8,
		Classifier:    firstByteClassifier(),
		RandomSkipMax: -1,
	})
	if err == nil {
		t.Error("negative RandomSkipMax: want error")
	}
}

func TestCDBMaxAgeForcesReclassification(t *testing.T) {
	cdb := NewCDB(CDBConfig{MaxAge: time.Second})
	id := IDOf(tuple(9, packet.TCP))
	cdb.Insert(id, corpus.Text, 0)
	if _, ok := cdb.Lookup(id, 500*time.Millisecond); !ok {
		t.Fatal("fresh record missing")
	}
	if _, ok := cdb.Lookup(id, 2*time.Second); ok {
		t.Fatal("expired record still served")
	}
	if cdb.Size() != 0 {
		t.Error("expired record not removed")
	}
	if got := cdb.Stats().Expired; got != 1 {
		t.Errorf("Expired = %d, want 1", got)
	}
}

func TestCDBMaxAgeDisabledByDefault(t *testing.T) {
	cdb := NewCDB(CDBConfig{})
	id := IDOf(tuple(10, packet.TCP))
	cdb.Insert(id, corpus.Text, 0)
	if _, ok := cdb.Lookup(id, 1000*time.Hour); !ok {
		t.Error("record expired despite MaxAge=0")
	}
}

func TestEngineReclassifiesExpiredFlow(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		BufferSize: 4,
		Classifier: firstByteClassifier(),
		CDB:        CDBConfig{MaxAge: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	tp := tuple(11, packet.TCP)
	// First classification: text.
	v, err := e.Process(dataPacket(tp, 0, "TTTT"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || v.Queue != corpus.Text {
		t.Fatalf("first verdict = %+v", v)
	}
	// Within MaxAge: CDB hit.
	v, err = e.Process(dataPacket(tp, 500*time.Millisecond, "EEEE"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.FromCDB {
		t.Fatalf("pre-expiry verdict = %+v, want CDB hit", v)
	}
	// After MaxAge: the flow content changed to encrypted; the record
	// expires and the flow is rebuffered and reclassified.
	v, err = e.Process(dataPacket(tp, 3*time.Second, "EEEE"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || v.Queue != corpus.Encrypted {
		t.Fatalf("post-expiry verdict = %+v, want fresh encrypted classification", v)
	}
}

package flow

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// This file is the fault-injection toolkit used to prove the engine's
// degradation paths: a classifier wrapper that deterministically injects
// errors, panics, and latency, and a trace wrapper that deterministically
// drops, duplicates, and reorders packets. Both are seeded, so a failing
// run reproduces bit-for-bit.

// ErrInjected is the error returned by injected classifier failures.
var ErrInjected = errors.New("flow: injected classifier fault")

// ChaosConfig tunes a ChaosClassifier. All randomness derives from Seed.
type ChaosConfig struct {
	// Seed drives every injection draw.
	Seed int64
	// FailFirst makes the first N calls fail deterministically (errors,
	// or panics when PanicRate > 0 and the panic draw fires) — handy for
	// tripping degraded mode at a known point.
	FailFirst int
	// ErrorRate is the probability in [0,1] that a call returns
	// ErrInjected.
	ErrorRate float64
	// PanicRate is the probability in [0,1] that a call panics.
	PanicRate float64
	// Latency is added to every call; Jitter adds a further uniform draw
	// in [0, Jitter). Keep both zero in tests that must stay fast.
	Latency time.Duration
	Jitter  time.Duration
}

// ChaosStats counts what a ChaosClassifier actually injected.
type ChaosStats struct {
	Calls          int
	InjectedErrors int
	InjectedPanics int
	Slept          time.Duration
}

// ChaosClassifier wraps a Classifier with deterministic fault injection.
// It is safe for concurrent use; under concurrency the draws are still
// consumed from one seeded stream, so sequential replays are exact and
// concurrent replays are statistically identical.
type ChaosClassifier struct {
	inner Classifier

	mu    sync.Mutex
	rng   *rand.Rand
	cfg   ChaosConfig
	stats ChaosStats
}

// NewChaosClassifier wraps inner with the given fault plan.
func NewChaosClassifier(inner Classifier, cfg ChaosConfig) *ChaosClassifier {
	return &ChaosClassifier{
		inner: inner,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
	}
}

// Classify injects the configured faults, delegating to the wrapped
// classifier when none fires.
func (c *ChaosClassifier) Classify(payload []byte) (corpus.Class, error) {
	c.mu.Lock()
	c.stats.Calls++
	call := c.stats.Calls
	errRoll := c.rng.Float64()
	panicRoll := c.rng.Float64()
	sleep := c.cfg.Latency
	if c.cfg.Jitter > 0 {
		sleep += time.Duration(c.rng.Int63n(int64(c.cfg.Jitter)))
	}
	fail := call <= c.cfg.FailFirst || errRoll < c.cfg.ErrorRate
	panicking := panicRoll < c.cfg.PanicRate
	if panicking {
		c.stats.InjectedPanics++
	} else if fail {
		c.stats.InjectedErrors++
	}
	c.stats.Slept += sleep
	c.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if panicking {
		panic(fmt.Sprintf("chaos: injected panic on call %d", call))
	}
	if fail {
		return 0, fmt.Errorf("%w (call %d)", ErrInjected, call)
	}
	return c.inner.Classify(payload)
}

// Stats returns a snapshot of the injection counters.
func (c *ChaosClassifier) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// TraceChaosConfig tunes ChaosTrace. All randomness derives from Seed.
type TraceChaosConfig struct {
	Seed int64
	// DropRate is the probability in [0,1] that a packet is removed.
	DropRate float64
	// DupRate is the probability in [0,1] that a packet is emitted twice.
	DupRate float64
	// ReorderRate is the probability in [0,1] that a packet is displaced
	// forward by up to ReorderWindow positions, arriving after packets
	// that were sent later.
	ReorderRate float64
	// ReorderWindow is the maximum displacement in packets (default 8).
	ReorderWindow int
}

// TraceChaosStats counts what ChaosTrace did.
type TraceChaosStats struct {
	Dropped    int
	Duplicated int
	Reordered  int
}

// ChaosTrace deterministically perturbs a packet sequence — drops,
// duplicates, and bounded reorders — so tests and tools can stress the
// engine with the malformed arrival patterns an inline tap actually sees.
// The input slice is not modified.
func ChaosTrace(packets []packet.Packet, cfg TraceChaosConfig) ([]packet.Packet, TraceChaosStats) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	window := cfg.ReorderWindow
	if window <= 0 {
		window = 8
	}
	var stats TraceChaosStats
	out := make([]packet.Packet, 0, len(packets))
	for i := range packets {
		if rng.Float64() < cfg.DropRate {
			stats.Dropped++
			continue
		}
		out = append(out, packets[i])
		if rng.Float64() < cfg.DupRate {
			stats.Duplicated++
			out = append(out, packets[i])
		}
	}
	// Displace after drop/dup so every surviving packet can move: swap
	// each selected packet with one up to `window` positions later. The
	// timestamps stay attached to their sequence positions — as at a real
	// tap, where capture stamps are monotonic but the flow-level order is
	// permuted — so perturbed traces remain valid trace/pcap files.
	for i := range out {
		if rng.Float64() < cfg.ReorderRate {
			j := i + 1 + rng.Intn(window)
			if j >= len(out) {
				continue
			}
			out[i].Time, out[j].Time = out[j].Time, out[i].Time
			out[i], out[j] = out[j], out[i]
			stats.Reordered++
		}
	}
	return out, stats
}

package flow

import (
	"errors"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/packet"
)

// testTrace generates a deterministic synthetic trace for batch tests.
func testTrace(t *testing.T, flows int, seed int64) *packet.Trace {
	t.Helper()
	cfg := packet.DefaultTraceConfig()
	cfg.Flows = flows
	cfg.Duration = 5 * time.Second
	cfg.MaxFlowBytes = 2 << 10
	cfg.Seed = seed
	trace, err := packet.Generate(cfg, corpus.NewGenerator(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// newBatchEngine builds a sharded engine with the deterministic
// first-byte classifier used across the flow tests.
func newBatchEngine(t *testing.T, shards int) *ParallelEngine {
	t.Helper()
	pe, err := NewParallelEngine(EngineConfig{
		BufferSize: 256,
		Classifier: ClassifierFunc(func(payload []byte) (corpus.Class, error) {
			return corpus.Class(int(payload[0]) % corpus.NumClasses), nil
		}),
	}, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

// replaySequential is the per-packet ground truth a batched replay must
// match exactly.
func replaySequential(t *testing.T, trace *packet.Trace, shards int) *ParallelEngine {
	t.Helper()
	ref := newBatchEngine(t, shards)
	var maxSeen time.Duration
	for i := range trace.Packets {
		if trace.Packets[i].Time > maxSeen {
			maxSeen = trace.Packets[i].Time
		}
		if _, err := ref.Process(&trace.Packets[i]); err != nil {
			t.Fatalf("reference Process: %v", err)
		}
	}
	if _, err := ref.FlushAll(maxSeen + time.Minute); err != nil {
		t.Fatal(err)
	}
	return ref
}

// assertBatchMatches compares a batched/pipelined replay against the
// sequential reference: identical aggregate stats, the §6 conservation
// law, and an identical label for every flow.
func assertBatchMatches(t *testing.T, trace *packet.Trace, got, want *ParallelEngine) {
	t.Helper()
	gs, ws := got.Stats(), want.Stats()
	if gs != ws {
		t.Errorf("stats diverge from sequential replay:\n  batched:    %+v\n  sequential: %+v", gs, ws)
	}
	if total := gs.Classified + gs.Fallback + gs.Dropped + gs.Pending; gs.Admitted != total {
		t.Errorf("conservation violated: Admitted %d != Classified+Fallback+Dropped+Pending %d", gs.Admitted, total)
	}
	for tuple := range trace.Flows {
		gl, gok := got.Label(tuple)
		wl, wok := want.Label(tuple)
		if gok != wok || gl != wl {
			t.Errorf("flow %v: label (%v,%v) diverges from (%v,%v)", tuple, gl, gok, wl, wok)
		}
	}
}

// replayBatches drives trace through ProcessBatch in fixed-size chunks and
// flushes, barriering first when pipelined.
func replayBatches(t *testing.T, pe *ParallelEngine, trace *packet.Trace, chunk int) {
	t.Helper()
	var maxSeen time.Duration
	batch := make([]*packet.Packet, 0, chunk)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if failed, err := pe.ProcessBatch(batch); err != nil || failed != 0 {
			t.Fatalf("ProcessBatch: failed=%d err=%v", failed, err)
		}
		batch = batch[:0]
	}
	for i := range trace.Packets {
		if trace.Packets[i].Time > maxSeen {
			maxSeen = trace.Packets[i].Time
		}
		batch = append(batch, &trace.Packets[i])
		if len(batch) == chunk {
			flush()
		}
	}
	flush()
	pe.Barrier()
	if _, err := pe.FlushAll(maxSeen + time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestProcessBatchMatchesSequential proves the synchronous batch path is
// observationally identical to per-packet Process.
func TestProcessBatchMatchesSequential(t *testing.T) {
	trace := testTrace(t, 120, 11)
	for _, shards := range []int{1, 3, 4} {
		pe := newBatchEngine(t, shards)
		replayBatches(t, pe, trace, 64)
		assertBatchMatches(t, trace, pe, replaySequential(t, trace, shards))
	}
}

// TestPipelinedBatchMatchesSequential proves the pipelined path — shard
// workers behind bounded queues — preserves every verdict, counter, and
// the conservation law.
func TestPipelinedBatchMatchesSequential(t *testing.T) {
	trace := testTrace(t, 120, 13)
	for _, shards := range []int{1, 2, 4} {
		pe := newBatchEngine(t, shards)
		if err := pe.StartPipeline(4); err != nil {
			t.Fatal(err)
		}
		replayBatches(t, pe, trace, 32)
		if err := pe.StopPipeline(); err != nil {
			t.Fatal(err)
		}
		ps := pe.PipelineStats()
		if ps.Errors != 0 || ps.FirstErr != nil {
			t.Fatalf("pipeline errors: %+v", ps)
		}
		assertBatchMatches(t, trace, pe, replaySequential(t, trace, shards))
	}
}

// TestPipelineBarrierCompletes pins Barrier's contract: after it returns,
// every packet enqueued beforehand has reached its shard.
func TestPipelineBarrierCompletes(t *testing.T) {
	trace := testTrace(t, 60, 17)
	pe := newBatchEngine(t, 4)
	if err := pe.StartPipeline(2); err != nil {
		t.Fatal(err)
	}
	batch := make([]*packet.Packet, 0, len(trace.Packets))
	data := 0
	for i := range trace.Packets {
		batch = append(batch, &trace.Packets[i])
		if trace.Packets[i].IsData() {
			data++
		}
	}
	if _, err := pe.ProcessBatch(batch); err != nil {
		t.Fatal(err)
	}
	pe.Barrier()
	if got := pe.PipelineStats().Processed; got != len(trace.Packets) {
		t.Errorf("Processed = %d after Barrier, want %d", got, len(trace.Packets))
	}
	if err := pe.StopPipeline(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineLifecycle pins the mode-switching contract.
func TestPipelineLifecycle(t *testing.T) {
	pe := newBatchEngine(t, 2)
	if pe.Pipelined() {
		t.Error("fresh engine reports pipelined")
	}
	pe.Barrier() // must be a no-op, not a hang
	if err := pe.StopPipeline(); err == nil {
		t.Error("StopPipeline without StartPipeline: want error")
	}
	if err := pe.StartPipeline(-1); err == nil {
		t.Error("negative depth: want error")
	}
	if err := pe.StartPipeline(0); err != nil {
		t.Fatal(err)
	}
	if !pe.Pipelined() {
		t.Error("engine not pipelined after StartPipeline")
	}
	if err := pe.StartPipeline(0); err == nil {
		t.Error("double StartPipeline: want error")
	}
	if err := pe.StopPipeline(); err != nil {
		t.Fatal(err)
	}
	if pe.Pipelined() {
		t.Error("engine still pipelined after StopPipeline")
	}
	// The engine must be restartable.
	if err := pe.StartPipeline(1); err != nil {
		t.Fatal(err)
	}
	if err := pe.StopPipeline(); err != nil {
		t.Fatal(err)
	}
}

// TestProcessBatchNilPacket pins the error contract: a nil packet fails
// the whole batch before anything is enqueued.
func TestProcessBatchNilPacket(t *testing.T) {
	pe := newBatchEngine(t, 2)
	tp := tuple(4000, packet.TCP)
	failed, err := pe.ProcessBatch([]*packet.Packet{dataPacket(tp, 0, "TT"), nil})
	if err == nil {
		t.Fatal("nil packet in batch: want error")
	}
	if failed != 2 {
		t.Errorf("failed = %d, want the whole batch (2)", failed)
	}
	if got := pe.Stats().Admitted; got != 0 {
		t.Errorf("nil-packet batch admitted %d flows, want 0", got)
	}
	if failed, err := pe.ProcessBatch(nil); failed != 0 || err != nil {
		t.Errorf("empty batch: failed=%d err=%v, want 0, nil", failed, err)
	}
}

// TestProcessBatchSurfacesClassifyErrors pins strict-mode error
// accounting through the synchronous batch path.
func TestProcessBatchSurfacesClassifyErrors(t *testing.T) {
	pe, err := NewParallelEngine(EngineConfig{
		BufferSize: 2,
		Classifier: ClassifierFunc(func([]byte) (corpus.Class, error) {
			return 0, errors.New("always fails")
		}),
	}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := []*packet.Packet{
		dataPacket(tuple(5000, packet.TCP), 0, "XXXX"),
		dataPacket(tuple(5001, packet.TCP), 0, "YYYY"),
	}
	failed, err := pe.ProcessBatch(batch)
	if err == nil || failed != 2 {
		t.Errorf("failed=%d err=%v, want 2 classification failures", failed, err)
	}
}

// TestBatchAllocRegression is the alloc budget gate for the batch path:
// once flows are CDB-resident and the partition scratch is warm, routing a
// batch must not allocate per packet.
func TestBatchAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	pe := newBatchEngine(t, 4)
	// 32 flows, each classified up front so subsequent packets hit the CDB.
	const flows = 32
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = 'A'
	}
	batch := make([]*packet.Packet, flows)
	for i := 0; i < flows; i++ {
		batch[i] = &packet.Packet{
			Tuple:   tuple(uint16(6000+i), packet.UDP),
			Time:    time.Duration(i) * time.Millisecond,
			Payload: payload,
		}
	}
	// Warm: classify every flow and let the scratch pool settle.
	for i := 0; i < 4; i++ {
		if failed, err := pe.ProcessBatch(batch); err != nil || failed != 0 {
			t.Fatalf("warm ProcessBatch: failed=%d err=%v", failed, err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := pe.ProcessBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	// CDB hits allocate nothing; allow a little headroom for pool churn
	// under GC pressure.
	if allocs > 2 {
		t.Errorf("ProcessBatch allocs/op = %v for %d CDB-hit packets, want <= 2", allocs, flows)
	}
}

package flow

import (
	"errors"
	"testing"
	"time"

	"iustitia/internal/corpus"
	"iustitia/internal/persist"
)

// idN builds a distinct flow ID from an integer.
func idN(n int) ID {
	var id ID
	id[0] = byte(n)
	id[1] = byte(n >> 8)
	id[2] = byte(n >> 16)
	return id
}

// populatedCDB builds a CDB with n records inserted at 1-second strides,
// refreshing every third record later so λ values differ.
func populatedCDB(t *testing.T, cfg CDBConfig, n int) *CDB {
	t.Helper()
	cdb := NewCDB(cfg)
	for i := 0; i < n; i++ {
		cdb.Insert(idN(i), corpus.Class(i%int(corpus.NumClasses)), time.Duration(i)*time.Second)
	}
	for i := 0; i < n; i += 3 {
		if _, ok := cdb.Lookup(idN(i), time.Duration(n+i)*time.Second); !ok {
			t.Fatalf("record %d vanished while populating", i)
		}
	}
	return cdb
}

// TestCDBExportImportRoundTrip is the round-trip property: an
// exported-then-imported CDB must preserve lookup results, sizes, and
// sweep behavior.
func TestCDBExportImportRoundTrip(t *testing.T) {
	const n = 50
	src := populatedCDB(t, CDBConfig{PurgeOnClose: true, PurgeInactive: true}, n)
	blob := src.Export()

	dst := NewCDB(CDBConfig{PurgeOnClose: true, PurgeInactive: true})
	if err := dst.Import(blob); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.Size(), src.Size(); got != want {
		t.Fatalf("imported size %d, want %d", got, want)
	}
	if got, want := dst.ApproxBits(), src.ApproxBits(); got != want {
		t.Fatalf("imported ApproxBits %d, want %d", got, want)
	}
	if got := dst.Stats().Imported; got != n {
		t.Errorf("Stats.Imported = %d, want %d", got, n)
	}

	// Lookup results match record for record. Use a fresh probe time far
	// enough not to matter and compare labels.
	for i := 0; i < n; i++ {
		now := time.Duration(10*n+i) * time.Second
		wantLabel, wantOK := src.Lookup(idN(i), now)
		gotLabel, gotOK := dst.Lookup(idN(i), now)
		if gotOK != wantOK || gotLabel != wantLabel {
			t.Fatalf("record %d: imported lookup (%v,%v), original (%v,%v)",
				i, gotLabel, gotOK, wantLabel, wantOK)
		}
	}

	// Sweep behavior matches: both copies purge the same records at the
	// same deadline. (Lookups above refreshed both equally.)
	deadline := time.Duration(20*n) * time.Second
	if got, want := dst.Sweep(deadline), src.Sweep(deadline); got != want {
		t.Fatalf("imported sweep removed %d, original %d", got, want)
	}
	if got, want := dst.Size(), src.Size(); got != want {
		t.Fatalf("post-sweep size %d, want %d", got, want)
	}
}

// TestCDBExportDeterministic: two exports of the same database are
// byte-identical (map order must not leak into the snapshot).
func TestCDBExportDeterministic(t *testing.T) {
	cdb := populatedCDB(t, CDBConfig{}, 40)
	a, b := cdb.Export(), cdb.Export()
	if string(a) != string(b) {
		t.Fatal("two exports of the same CDB differ")
	}
}

// TestCDBImportHonorsMaxRecords: importing into a capped database keeps
// the newest records and counts the dropped ones.
func TestCDBImportHonorsMaxRecords(t *testing.T) {
	const n, cap = 60, 25
	src := populatedCDB(t, CDBConfig{}, n)
	blob := src.Export()

	dst := NewCDB(CDBConfig{MaxRecords: cap})
	if err := dst.Import(blob); err != nil {
		t.Fatal(err)
	}
	if got := dst.Size(); got != cap {
		t.Fatalf("imported size %d, want cap %d", got, cap)
	}
	st := dst.Stats()
	if st.ImportDropped != n-cap {
		t.Errorf("ImportDropped = %d, want %d", st.ImportDropped, n-cap)
	}
	if st.Imported != cap {
		t.Errorf("Imported = %d, want %d", st.Imported, cap)
	}
	// The newest records (largest lastSeen) must be the survivors. The
	// most recently refreshed records are multiples of 3 (see
	// populatedCDB); the single newest insert is id n-1 unless refreshed
	// later. Just assert: every record the source would rank newest is
	// present.
	if _, ok := dst.Lookup(idN(57), time.Duration(1000)*time.Second); !ok {
		t.Error("a newest-by-last-seen record was dropped at import")
	}
}

// TestCDBImportReplacesExisting: a record already present for the same
// flow ID is overwritten, not duplicated.
func TestCDBImportReplacesExisting(t *testing.T) {
	src := NewCDB(CDBConfig{})
	src.Insert(idN(1), corpus.Encrypted, 5*time.Second)
	blob := src.Export()

	dst := NewCDB(CDBConfig{})
	dst.Insert(idN(1), corpus.Text, 1*time.Second)
	if err := dst.Import(blob); err != nil {
		t.Fatal(err)
	}
	if dst.Size() != 1 {
		t.Fatalf("size %d, want 1", dst.Size())
	}
	if label, ok := dst.Lookup(idN(1), 6*time.Second); !ok || label != corpus.Encrypted {
		t.Fatalf("label = (%v,%v), want (encrypted,true)", label, ok)
	}
}

// TestCDBImportTruncation clips a valid export at every byte offset:
// each prefix must fail cleanly and leave the database unchanged.
func TestCDBImportTruncation(t *testing.T) {
	src := populatedCDB(t, CDBConfig{}, 20)
	blob := src.Export()
	for i := 0; i < len(blob); i++ {
		dst := NewCDB(CDBConfig{})
		if err := dst.Import(blob[:i]); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("Import(blob[:%d]) = %v, want ErrCorrupt", i, err)
		}
		if dst.Size() != 0 {
			t.Fatalf("Import(blob[:%d]) left %d records behind", i, dst.Size())
		}
	}
}

// TestCDBImportRejectsInvalid: bad labels and negative times are
// corruption, and a failed import leaves the database untouched.
func TestCDBImportRejectsInvalid(t *testing.T) {
	record := func(label uint8, lastSeen int64) []byte {
		var e persist.Encoder
		e.U32(1)
		id := idN(9)
		e.Raw(id[:])
		e.U8(label)
		e.I64(lastSeen)
		e.I64(int64(time.Second))
		e.I64(lastSeen)
		return e.Bytes()
	}
	cases := map[string][]byte{
		"label out of range": record(uint8(corpus.NumClasses), 5),
		"negative time":      record(0, -5),
		"trailing garbage":   append(record(0, 5), 0xAB),
	}
	for name, blob := range cases {
		dst := NewCDB(CDBConfig{})
		dst.Insert(idN(1), corpus.Text, time.Second)
		if err := dst.Import(blob); !errors.Is(err, persist.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
		if dst.Size() != 1 {
			t.Errorf("%s: failed import changed the database", name)
		}
	}
	// The valid form of the same record imports fine.
	dst := NewCDB(CDBConfig{})
	if err := dst.Import(record(0, 5)); err != nil {
		t.Fatalf("valid record: %v", err)
	}
}

// TestCDBImportedRecordReinsertionCounts: a flow restored by Import and
// later re-classified counts as a reinsertion, exactly as it would have
// without the restart.
func TestCDBImportedRecordReinsertionCounts(t *testing.T) {
	src := NewCDB(CDBConfig{})
	src.Insert(idN(1), corpus.Binary, time.Second)
	blob := src.Export()

	dst := NewCDB(CDBConfig{PurgeOnClose: true})
	if err := dst.Import(blob); err != nil {
		t.Fatal(err)
	}
	if !dst.Close(idN(1)) {
		t.Fatal("imported record not found by Close")
	}
	dst.Insert(idN(1), corpus.Binary, 2*time.Second)
	if got := dst.Stats().Reinsertions; got != 1 {
		t.Errorf("Reinsertions = %d, want 1", got)
	}
}

package flow

import (
	"testing"
	"time"

	"iustitia/internal/packet"
)

// conservationOK asserts the engine conservation law: every admitted flow
// is classified, fell back, was dropped, or is still pending — and every
// flow the engine ever saw was either admitted or shed.
func conservationOK(t *testing.T, s EngineStats, flowsSeen int) {
	t.Helper()
	if got := s.Classified + s.Fallback + s.Dropped + s.Pending; got != s.Admitted {
		t.Errorf("conservation broken: classified %d + fallback %d + dropped %d + pending %d = %d, admitted %d",
			s.Classified, s.Fallback, s.Dropped, s.Pending, got, s.Admitted)
	}
	if got := s.Admitted + s.Shed; got != flowsSeen {
		t.Errorf("flow count broken: admitted %d + shed %d = %d, saw %d flows",
			s.Admitted, s.Shed, got, flowsSeen)
	}
}

func TestGovernorReconfigMidBurst(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8, MaxPending: 8, Eviction: EvictOldest})

	// First half of the burst: eight flows admitted, each half filled.
	flows := 0
	now := time.Duration(0)
	for port := uint16(1); port <= 8; port++ {
		now += time.Millisecond
		if _, err := e.Process(dataPacket(tuple(port, packet.TCP), now, "TTTT")); err != nil {
			t.Fatal(err)
		}
		flows++
	}

	// Tighten the governor mid-burst, as a SET/RELOAD would.
	if err := e.SetMaxPending(2); err != nil {
		t.Fatal(err)
	}
	if err := e.SetEviction(EvictShed); err != nil {
		t.Fatal(err)
	}

	// Second half: eight new flows arrive at a table already over the new
	// cap, so each is shed to the fallback queue.
	for port := uint16(101); port <= 108; port++ {
		now += time.Millisecond
		v, err := e.Process(dataPacket(tuple(port, packet.TCP), now, "TTTT"))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Fallback {
			t.Errorf("flow %d admitted over the lowered cap: %+v", port, v)
		}
		flows++
	}

	// A pre-reconfig flow still completes its buffer and classifies —
	// tightening the cap never disturbs flows already admitted.
	now += time.Millisecond
	v, err := e.Process(dataPacket(tuple(1, packet.TCP), now, "TTTT"))
	if err != nil || !v.Classified {
		t.Errorf("pre-reconfig flow: verdict %+v, err %v, want classified", v, err)
	}

	if _, err := e.FlushAll(now + time.Second); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Pending != 0 {
		t.Errorf("Pending = %d after FlushAll, want 0", s.Pending)
	}
	if s.Shed != 8 {
		t.Errorf("Shed = %d, want 8", s.Shed)
	}
	conservationOK(t, s, flows)
}

func TestGovernorReconfigLoosensCap(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8, MaxPending: 1, Eviction: EvictShed})
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "TTTT")); err != nil {
		t.Fatal(err)
	}
	// At cap: the second flow sheds.
	if v, err := e.Process(dataPacket(tuple(2, packet.TCP), time.Millisecond, "TTTT")); err != nil || !v.Fallback {
		t.Fatalf("verdict %+v, err %v, want shed", v, err)
	}
	if err := e.SetMaxPending(4); err != nil {
		t.Fatal(err)
	}
	// Raised cap admits immediately.
	if v, err := e.Process(dataPacket(tuple(3, packet.TCP), 2*time.Millisecond, "TTTT")); err != nil || v.Fallback {
		t.Fatalf("verdict %+v, err %v, want admission under raised cap", v, err)
	}
	s := e.Stats()
	if s.Pending != 2 || s.Shed != 1 {
		t.Errorf("Pending/Shed = %d/%d, want 2/1", s.Pending, s.Shed)
	}
	conservationOK(t, s, 3)
}

func TestSetIdleFlushLive(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8})
	if _, err := e.Process(dataPacket(tuple(1, packet.TCP), 0, "TTTT")); err != nil {
		t.Fatal(err)
	}
	// Idle flushing starts disabled: nothing flushes no matter how quiet.
	if n, err := e.FlushIdle(time.Hour); err != nil || n != 0 {
		t.Fatalf("FlushIdle disabled: n=%d err=%v", n, err)
	}
	if err := e.SetIdleFlush(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n, err := e.FlushIdle(time.Hour); err != nil || n != 1 {
		t.Fatalf("FlushIdle enabled live: n=%d err=%v, want 1 flush", n, err)
	}
}

func TestSetterValidation(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 8})
	if err := e.SetMaxPending(-1); err == nil {
		t.Error("negative cap accepted")
	}
	if err := e.SetEviction(EvictPolicy(99)); err == nil {
		t.Error("unknown eviction policy accepted")
	}
	if err := e.SetIdleFlush(-time.Second); err == nil {
		t.Error("negative idle flush accepted")
	}
}

func TestLatencyHistogramAndSampleRing(t *testing.T) {
	e := newTestEngine(t, EngineConfig{BufferSize: 4})
	for port := uint16(1); port <= 2*sampleRingSize; port++ {
		v, err := e.Process(dataPacket(tuple(port, packet.TCP), time.Duration(port)*time.Millisecond, "TTTT"))
		if err != nil || !v.Classified {
			t.Fatalf("flow %d: verdict %+v, err %v", port, v, err)
		}
	}
	h := e.LatencyHistogram()
	if h.Total != 2*sampleRingSize {
		t.Errorf("latency observations = %d, want %d", h.Total, 2*sampleRingSize)
	}
	samples := e.SampleBuffers()
	if len(samples) != sampleRingSize {
		t.Errorf("sample ring holds %d buffers, want %d", len(samples), sampleRingSize)
	}
	for i, s := range samples {
		if len(s) != 4 {
			t.Errorf("sample %d has %d bytes, want the full buffer of 4", i, len(s))
		}
	}
}

package flow

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"iustitia/internal/appheader"
	"iustitia/internal/corpus"
	"iustitia/internal/entest"
	"iustitia/internal/packet"
	"iustitia/internal/stats"
)

// Classifier labels a buffered payload prefix with its content nature.
// Implementations are the entropy-vector + CART/SVM classifiers from
// internal/core; tests may plug anything.
type Classifier interface {
	Classify(payload []byte) (corpus.Class, error)
}

// ClassifierFunc adapts a function to the Classifier interface.
type ClassifierFunc func(payload []byte) (corpus.Class, error)

// Classify implements Classifier.
func (f ClassifierFunc) Classify(payload []byte) (corpus.Class, error) { return f(payload) }

// VectorClassifier is the classifier surface stream mode needs: besides
// labelling raw payloads it can label an already-computed entropy vector
// and declares which feature widths that vector must carry.
// *iustitia.Classifier implements it.
type VectorClassifier interface {
	Classifier
	// FeatureWidths returns the element widths of the model's feature
	// vector, in feature order.
	FeatureWidths() []int
	// ClassifyVector labels an entropy vector laid out per FeatureWidths.
	ClassifyVector(vec []float64) (corpus.Class, error)
}

// StreamConfig switches the engine to constant-memory stream
// classification: per-flow state becomes an entest.StreamVector sketch
// (g·z counters) instead of the b-byte payload buffer. Classification
// fires on the same triggers — b payload bytes consumed, idle flush, or
// teardown — but from the sketch's entropy vector, so resident bytes per
// pending flow are bounded by the counter budget no matter how large b is.
// The engine's Classifier must implement VectorClassifier.
type StreamConfig struct {
	// Epsilon and Delta are the (δ,ε)-approximation parameters sizing the
	// per-flow counter budget.
	Epsilon float64
	Delta   float64
	// Sketch selects the per-width backend (default entest.SketchLall).
	Sketch entest.SketchKind
	// Seed drives the sketches' sampling streams. It is engine-wide — every
	// shard of a ParallelEngine uses the same value — so a sketch exported
	// by one shard restores bit-exactly on any other.
	Seed int64
}

// EngineConfig assembles an online flow-classification engine.
type EngineConfig struct {
	// BufferSize is b: payload bytes buffered per new flow before its
	// entropy vector is extracted. Must be positive.
	BufferSize int
	// Classifier labels filled buffers. Required.
	Classifier Classifier
	// CDB tunes the classification database.
	CDB CDBConfig
	// Stream, when non-nil, replaces per-flow payload buffering with
	// constant-memory sketching (see StreamConfig). Requires Classifier to
	// implement VectorClassifier.
	Stream *StreamConfig
	// StripKnownHeaders removes recognized application-layer headers
	// (HTTP/SMTP/POP3/IMAP/FTP) from the head of a flow before buffering.
	StripKnownHeaders bool
	// HeaderThreshold is T: payload bytes skipped at the start of every
	// flow whose header is not recognized, jumping over unknown
	// application headers. Zero disables skipping.
	HeaderThreshold int
	// IdleFlush classifies a partially filled buffer once the flow has
	// been quiet this long, so short flows are not stuck unbuffered
	// forever ("when the buffer stops receiving packets for a certain
	// period of time"). Zero disables idle flushing; call FlushAll at end
	// of trace instead.
	IdleFlush time.Duration
	// RandomSkipMax, when positive, skips a uniform random number of
	// payload bytes in [0, RandomSkipMax] at the start of every new flow
	// before buffering — the paper's §4.6 countermeasure against
	// attackers who prepend deceiving (e.g. encrypted-looking) padding to
	// dodge deep inspection. The skip is applied on top of header
	// stripping/thresholds.
	RandomSkipMax int
	// Seed drives the random-skip draws.
	Seed int64
	// MaxPending caps the pending-flow table so per-flow state stays
	// O(MaxPending) under flow churn. Zero leaves it unbounded (the
	// original behaviour); an inline deployment should always set it.
	MaxPending int
	// Eviction selects what happens when a new flow arrives at a full
	// pending table (default EvictOldest). Ignored while MaxPending is 0.
	Eviction EvictPolicy
	// FallbackClass is the queue used for shed flows and — under
	// Faults.Tolerate — flows whose classification failed. Defaults to
	// corpus.Text (class zero); set it to the class whose queue treatment
	// is the safest default for the deployment.
	FallbackClass corpus.Class
	// Faults is the classifier fault-tolerance policy.
	Faults FaultPolicy
	// LabelCap bounds the ground-truth label map consulted by Label:
	// 0 keeps every label forever (the original behaviour), n > 0 keeps
	// only the n most recently labelled flows, negative disables label
	// tracking entirely.
	LabelCap int
	// CheckpointEvery, with OnCheckpoint, fires a durable snapshot after
	// every N classified flows. Zero disables periodic checkpoints;
	// ExportCheckpoint is always available on demand.
	CheckpointEvery int
	// OnCheckpoint receives a fresh ExportCheckpoint payload. It is
	// invoked outside the engine lock (so it may call engine methods) and
	// synchronously on the packet path — hand the bytes off quickly.
	OnCheckpoint func(snapshot []byte)
}

// Verdict reports what the engine did with one packet.
type Verdict struct {
	// Queue is the output queue (class) the packet was routed to.
	Queue corpus.Class
	// Routed is false while the flow is still being buffered.
	Routed bool
	// FromCDB is true when the label came from a CDB hit.
	FromCDB bool
	// Classified is true on the single packet that completed the flow's
	// buffer and triggered classification.
	Classified bool
	// Fallback is true when Queue is the engine's fallback class chosen
	// by load shedding, a classification failure, or degraded mode —
	// not by the classifier.
	Fallback bool
}

// pending is a flow still filling its buffer — or, in stream mode, still
// feeding its sketch (buf stays nil; sv and seen carry the flow's state).
type pending struct {
	buf []byte
	// sv is the flow's constant-memory sketch (stream mode only),
	// allocated lazily on the first buffered payload byte.
	sv *entest.StreamVector
	// seen counts payload bytes consumed into sv, playing buf's length
	// role for the classification trigger.
	seen       int
	skipLeft   int
	checkedHdr bool
	// headerCont is set when a recognized HTTP header did not finish
	// inside the first packet: subsequent payload is discarded until the
	// blank-line terminator is found (tail carries the last bytes of the
	// previous chunk so a terminator split across packets still matches).
	headerCont  bool
	headerTail  []byte
	headerSpent int
	firstSeen   time.Duration
	lastSeen    time.Duration
	packets     int
	// elem is this flow's slot in the engine's recency list, used for
	// O(1) eviction of the least-recently-active flow at MaxPending.
	elem *list.Element
}

// hasData reports whether the flow has consumed any payload — buffered
// bytes in exact mode, sketched bytes in stream mode. Flows without data
// are dropped rather than classified at flush and eviction.
func (fl *pending) hasData() bool { return len(fl.buf) > 0 || fl.seen > 0 }

// maxHeaderSpan caps how many bytes a multi-packet application header may
// consume before the engine gives up and buffers raw payload.
const maxHeaderSpan = 8 << 10

// FillStats records buffering-delay measurements for one classified flow
// (the Figure 10 quantities).
type FillStats struct {
	// Packets is c: how many data packets were needed to fill the buffer.
	Packets int
	// Delay is τ_b: virtual time from the flow's first buffered packet to
	// classification.
	Delay time.Duration
}

// Engine is the online flow classifier. It is safe for concurrent use,
// though trace replay is typically sequential.
type Engine struct {
	cfg EngineConfig
	cdb *CDB

	// Stream mode (immutable after NewEngine): the vector-capable view of
	// cfg.Classifier and the assembled per-flow sketch configuration.
	vclf VectorClassifier
	scfg entest.StreamConfig

	mu       sync.Mutex
	rng      *rand.Rand // guarded by mu; drives random-skip draws
	pend     map[ID]*pending
	lru      *list.List // pending flow IDs, least recently active first
	fills    []FillStats
	labelled map[ID]corpus.Class // ground-truth-comparable outcomes, by flow

	// Bounded label-map ring (LabelCap > 0): labelRing holds the ids
	// currently in labelled in insertion order, head/count delimit it.
	labelRing  []ID
	labelHead  int
	labelCount int

	// Governor accounting: the padded atomic block Stats() snapshots
	// lock-free (see counters.go). Mutated under e.mu except where noted.
	ec engineCounters

	// Governor internals (guarded by mu); not exported by Stats, so they
	// stay plain ints.
	consecFails int // consecutive classifier failures
	sinceProbe  int // classify attempts since the last degraded-mode probe

	// Checkpoint state: classifications since the last periodic snapshot
	// (guarded by mu), and the counter baselines restored by
	// ImportCheckpoint (folded into Stats so counts continue across a
	// restart). restored is an atomic pointer to an immutable snapshot so
	// the lock-free Stats can fold it in; ImportCheckpoint replaces the
	// whole value under mu.
	sinceCkpt int
	restored  atomic.Pointer[EngineStats]

	// Live-ops instrumentation: per-shard classification latency histogram
	// (log2-microsecond bins, lock-free — see latencyHistogram), and a
	// small ring of recently classified full payload buffers (guarded by
	// mu) used to shadow-test hot-swap candidate models against real
	// traffic (buffered mode only; stream mode discards payload by design).
	latency    *stats.ConcurrentHistogram
	samples    [][]byte
	sampleNext int
}

// NewEngine validates cfg and builds an engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.BufferSize <= 0 {
		return nil, errors.New("flow: buffer size must be positive")
	}
	if cfg.Classifier == nil {
		return nil, errors.New("flow: classifier is required")
	}
	if cfg.HeaderThreshold < 0 {
		return nil, fmt.Errorf("flow: negative header threshold %d", cfg.HeaderThreshold)
	}
	if cfg.RandomSkipMax < 0 {
		return nil, fmt.Errorf("flow: negative random skip %d", cfg.RandomSkipMax)
	}
	if cfg.MaxPending < 0 {
		return nil, fmt.Errorf("flow: negative pending cap %d", cfg.MaxPending)
	}
	if cfg.Eviction < EvictOldest || cfg.Eviction > EvictShed {
		return nil, fmt.Errorf("flow: unknown eviction policy %d", int(cfg.Eviction))
	}
	if cfg.FallbackClass < 0 || cfg.FallbackClass >= corpus.NumClasses {
		return nil, fmt.Errorf("flow: fallback class %d out of range", int(cfg.FallbackClass))
	}
	e := &Engine{
		cfg:     cfg,
		cdb:     NewCDB(cfg.CDB),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pend:    make(map[ID]*pending),
		lru:     list.New(),
		latency: newLatencyHistogram(),
	}
	e.restored.Store(&EngineStats{})
	if cfg.Stream != nil {
		vclf, ok := cfg.Classifier.(VectorClassifier)
		if !ok {
			return nil, fmt.Errorf("flow: stream mode needs a VectorClassifier, %T does not implement it", cfg.Classifier)
		}
		e.vclf = vclf
		e.scfg = entest.StreamConfig{
			Epsilon:     cfg.Stream.Epsilon,
			Delta:       cfg.Stream.Delta,
			Widths:      vclf.FeatureWidths(),
			ExpectedLen: cfg.BufferSize,
			Seed:        cfg.Stream.Seed,
			Kind:        cfg.Stream.Sketch,
		}
		// Probe the configuration now so a bad (ε, δ, widths) combination
		// fails at construction, not on the first flow's packet.
		if _, err := entest.NewStreamVectorConfig(e.scfg); err != nil {
			return nil, fmt.Errorf("flow: stream mode: %w", err)
		}
	}
	if cfg.LabelCap >= 0 {
		e.labelled = make(map[ID]corpus.Class)
	}
	return e, nil
}

// streaming reports whether the engine runs in constant-memory stream mode.
func (e *Engine) streaming() bool { return e.cfg.Stream != nil }

// StreamCounters returns the per-flow counter budget of stream mode (the
// resident state replacing the b-byte buffer), or 0 for a buffered engine.
func (e *Engine) StreamCounters() int {
	if !e.streaming() {
		return 0
	}
	sv, err := entest.NewStreamVectorConfig(e.scfg)
	if err != nil {
		return 0
	}
	return sv.Counters()
}

// CDB exposes the engine's classification database for inspection.
func (e *Engine) CDB() *CDB { return e.cdb }

// Process handles one packet at its virtual capture time and returns the
// engine's verdict.
func (e *Engine) Process(p *packet.Packet) (Verdict, error) {
	if p == nil {
		return Verdict{}, errors.New("flow: nil packet")
	}
	return e.ProcessID(IDOf(p.Tuple), p)
}

// ProcessID is Process with the flow ID already computed. The batch path
// hashes each tuple exactly once while partitioning a batch across shards,
// then hands the id through here instead of re-running SHA-1 per packet.
// id must be IDOf(p.Tuple).
func (e *Engine) ProcessID(id ID, p *packet.Packet) (Verdict, error) {
	if p == nil {
		return Verdict{}, errors.New("flow: nil packet")
	}
	// TCP teardown: purge the CDB record; the packet itself carries no
	// payload to route.
	if p.Flags.Has(packet.FlagFIN) || p.Flags.Has(packet.FlagRST) {
		e.cdb.Close(id)
		e.mu.Lock()
		if fl := e.pend[id]; fl != nil {
			e.retireLocked(id, fl)
			e.ec.dropped.Add(1)
		}
		e.mu.Unlock()
		return Verdict{}, nil
	}

	if label, ok := e.cdb.Lookup(id, p.Time); ok {
		// The CDB-hit fast path — the common case once a flow is labelled —
		// no longer takes e.mu at all: the queue counter is atomic.
		e.ec.queued[label].Add(1)
		return Verdict{Queue: label, Routed: true, FromCDB: true}, nil
	}
	if !p.IsData() {
		return Verdict{}, nil
	}

	v, err := e.processData(id, p)
	e.maybeCheckpoint()
	return v, err
}

// processData admits/buffers one data packet under the engine lock and
// classifies the flow if this packet filled its buffer.
func (e *Engine) processData(id ID, p *packet.Packet) (Verdict, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	fl := e.pend[id]
	if fl == nil {
		if e.cfg.MaxPending > 0 && len(e.pend) >= e.cfg.MaxPending {
			if e.cfg.Eviction == EvictShed {
				return e.shedLocked(id, p.Time), nil
			}
			e.evictOneLocked(p.Time)
		}
		fl = &pending{firstSeen: p.Time, skipLeft: -1}
		fl.elem = e.lru.PushBack(id)
		e.pend[id] = fl
		e.ec.admitted.Add(1)
		e.ec.pending.Add(1)
	} else {
		e.lru.MoveToBack(fl.elem)
	}
	fl.lastSeen = p.Time
	fl.packets++

	payload := p.Payload
	if !fl.checkedHdr {
		// First data packet decides header handling for the whole flow.
		fl.checkedHdr = true
		fl.skipLeft = 0
		if e.cfg.StripKnownHeaders {
			if stripped, proto := appheader.Strip(payload); proto != appheader.Unknown {
				if proto == appheader.HTTP && len(stripped) == 0 {
					// The header did not finish in this packet: keep
					// discarding until its blank-line terminator.
					fl.headerCont = true
					fl.headerTail = tailOf(payload)
					fl.headerSpent = len(payload)
				}
				payload = stripped
			} else {
				fl.skipLeft = e.cfg.HeaderThreshold
			}
		} else {
			fl.skipLeft = e.cfg.HeaderThreshold
		}
		if e.cfg.RandomSkipMax > 0 {
			fl.skipLeft += e.rng.Intn(e.cfg.RandomSkipMax + 1)
		}
	} else if fl.headerCont {
		payload = fl.continueHeader(payload)
	}
	if fl.skipLeft > 0 {
		if fl.skipLeft >= len(payload) {
			fl.skipLeft -= len(payload)
			return Verdict{}, nil
		}
		payload = payload[fl.skipLeft:]
		fl.skipLeft = 0
	}

	if e.streaming() {
		// Constant-memory path: payload streams into the sketch and is
		// gone — only the counters and the byte tally persist.
		need := e.cfg.BufferSize - fl.seen
		if len(payload) > need {
			payload = payload[:need]
		}
		if len(payload) > 0 {
			if fl.sv == nil {
				sv, err := entest.NewStreamVectorConfig(e.scfg)
				if err != nil {
					// Unreachable: the config was probed at NewEngine.
					return Verdict{}, fmt.Errorf("flow: stream sketch: %w", err)
				}
				fl.sv = sv
			}
			fl.sv.Write(payload)
			fl.seen += len(payload)
		}
		if fl.seen < e.cfg.BufferSize {
			return Verdict{}, nil
		}
		return e.classifyLocked(id, fl, p.Time)
	}

	need := e.cfg.BufferSize - len(fl.buf)
	if len(payload) > need {
		payload = payload[:need]
	}
	fl.buf = append(fl.buf, payload...)

	if len(fl.buf) < e.cfg.BufferSize {
		return Verdict{}, nil
	}
	return e.classifyLocked(id, fl, p.Time)
}

// headerTerminator ends an HTTP header.
var headerTerminator = []byte("\r\n\r\n")

// tailOf returns the last len(headerTerminator)-1 bytes of chunk, for
// matching a terminator split across packet boundaries.
func tailOf(chunk []byte) []byte {
	keep := len(headerTerminator) - 1
	if len(chunk) < keep {
		keep = len(chunk)
	}
	return append([]byte(nil), chunk[len(chunk)-keep:]...)
}

// continueHeader consumes payload while a multi-packet HTTP header is
// still open, returning the content bytes after its terminator (nil while
// the header continues). After maxHeaderSpan bytes it gives up and buffers
// payload raw.
func (fl *pending) continueHeader(payload []byte) []byte {
	joined := append(append([]byte(nil), fl.headerTail...), payload...)
	if i := bytes.Index(joined, headerTerminator); i >= 0 {
		fl.headerCont = false
		fl.headerTail = nil
		return joined[i+len(headerTerminator):]
	}
	fl.headerSpent += len(payload)
	if fl.headerSpent > maxHeaderSpan {
		fl.headerCont = false
		fl.headerTail = nil
		return payload
	}
	fl.headerTail = tailOf(joined)
	return nil
}

// retireLocked removes a flow from the pending table and the recency
// list. Caller holds e.mu.
func (e *Engine) retireLocked(id ID, fl *pending) {
	delete(e.pend, id)
	e.ec.pending.Add(-1)
	if fl.elem != nil {
		e.lru.Remove(fl.elem)
		fl.elem = nil
	}
}

// classifyLocked labels a filled (or flushed) buffer, updates the CDB and
// queues, and retires the pending state. The flow is retired on every
// path — including classification failure — so no flow is ever
// re-classified on each subsequent packet. Caller holds e.mu.
func (e *Engine) classifyLocked(id ID, fl *pending, now time.Duration) (Verdict, error) {
	e.retireLocked(id, fl)
	var label corpus.Class
	var fellBack bool
	var err error
	start := time.Now()
	if e.streaming() {
		label, fellBack, err = e.decideStreamLocked(fl.sv)
	} else {
		label, fellBack, err = e.decideLocked(fl.buf)
	}
	e.latency.Observe(latencyBinValue(time.Since(start)))
	if err != nil {
		e.ec.dropped.Add(1)
		return Verdict{}, fmt.Errorf("flow: classify: %w", err)
	}
	if !fellBack && !e.streaming() && len(fl.buf) >= e.cfg.BufferSize {
		e.recordSampleLocked(fl.buf)
	}
	e.cdb.Insert(id, label, now)
	e.recordLabelLocked(id, label)
	e.ec.queued[label].Add(1)
	e.sinceCkpt++
	if fellBack {
		e.ec.fallback.Add(1)
	} else {
		e.ec.classified.Add(1)
		e.fills = append(e.fills, FillStats{
			Packets: fl.packets,
			Delay:   now - fl.firstSeen,
		})
	}
	return Verdict{Queue: label, Routed: true, Classified: true, Fallback: fellBack}, nil
}

// FlushIdle classifies every pending flow quiet for at least the
// configured IdleFlush at virtual time now. It returns how many flows were
// flushed. Flows whose buffers are still empty (e.g. all bytes consumed by
// header skipping) are dropped unclassified.
func (e *Engine) FlushIdle(now time.Duration) (int, error) {
	// The predicate runs under e.mu (flush holds it), which is what makes
	// IdleFlush safe to retune live via SetIdleFlush.
	n, err := e.flush(func(fl *pending) bool {
		idle := e.cfg.IdleFlush
		return idle > 0 && now-fl.lastSeen >= idle
	}, now)
	e.maybeCheckpoint()
	return n, err
}

// FlushAll classifies every pending flow regardless of idle time — the end
// of a trace replay.
func (e *Engine) FlushAll(now time.Duration) (int, error) {
	n, err := e.flush(func(*pending) bool { return true }, now)
	e.maybeCheckpoint()
	return n, err
}

// flush classifies every due pending flow. A classification failure on
// one flow no longer aborts the pass: the failed flow is retired, the
// remaining due flows are still processed, and the per-flow errors come
// back joined so the caller sees every failure at once.
func (e *Engine) flush(due func(*pending) bool, now time.Duration) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	flushed := 0
	var errs []error
	for id, fl := range e.pend {
		if !due(fl) {
			continue
		}
		if !fl.hasData() {
			e.retireLocked(id, fl)
			e.ec.dropped.Add(1)
			continue
		}
		if _, err := e.classifyLocked(id, fl, now); err != nil {
			errs = append(errs, fmt.Errorf("flow %x: %w", id[:4], err))
			continue
		}
		flushed++
	}
	return flushed, errors.Join(errs...)
}

// Label returns the engine's class decision for a flow, if it was
// classified.
func (e *Engine) Label(t packet.FiveTuple) (corpus.Class, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	label, ok := e.labelled[IDOf(t)]
	return label, ok
}

// RecordedLabel returns a flow's durable verdict: the label assigned this
// process lifetime, or the CDB record carried across a checkpoint
// restore. Unlike Label it survives a rolling restart (the labelled map
// is rebuilt lazily from CDB hits, so restored verdicts would otherwise
// be invisible until the flow's next packet); unlike CDB.Lookup it does
// not perturb the record's activity clock.
func (e *Engine) RecordedLabel(t packet.FiveTuple) (corpus.Class, bool) {
	id := IDOf(t)
	e.mu.Lock()
	label, ok := e.labelled[id]
	e.mu.Unlock()
	if ok {
		return label, true
	}
	return e.cdb.Peek(id)
}

// EngineStats is a point-in-time summary of engine activity. The
// governor counters obey a conservation law the fault-injection tests
// assert: Admitted == Classified + Fallback + Dropped + Pending, and
// every flow the engine ever saw is either admitted or shed.
type EngineStats struct {
	Pending     int
	Classified  int
	QueueCounts [corpus.NumClasses]int
	CDB         CDBStats

	// Admitted counts pending-table entries ever created.
	Admitted int
	// Shed counts flows refused admission at MaxPending (EvictShed) and
	// routed straight to the fallback queue.
	Shed int
	// Evicted counts pending flows force-retired to respect MaxPending
	// (dropped under EvictOldest, partially classified under
	// EvictClassifyPartial).
	Evicted int
	// Dropped counts flows retired without any label: evict-oldest
	// victims, teardown (FIN/RST) while pending, empty buffers at flush,
	// and strict-mode classification failures.
	Dropped int
	// Failed counts classifier errors and recovered classifier panics.
	Failed int
	// Fallback counts flows labelled FallbackClass because their
	// classification failed or the engine was degraded.
	Fallback int
	// Degraded counts engines currently in degraded mode: 0 or 1 for an
	// Engine, up to the shard count for a ParallelEngine.
	Degraded int
	// MigratedIn counts pending flows and CDB records installed by a
	// flow-table migration (ImportFlows).
	MigratedIn int
	// MigratedOut counts pending flows and CDB records removed by a
	// flow-table migration (ExportFlows).
	MigratedOut int
}

// add accumulates s into the receiver (used by ParallelEngine).
func (a *EngineStats) add(s EngineStats) {
	a.Pending += s.Pending
	a.Classified += s.Classified
	for c := range a.QueueCounts {
		a.QueueCounts[c] += s.QueueCounts[c]
	}
	a.CDB.add(s.CDB)
	a.Admitted += s.Admitted
	a.Shed += s.Shed
	a.Evicted += s.Evicted
	a.Dropped += s.Dropped
	a.Failed += s.Failed
	a.Fallback += s.Fallback
	a.Degraded += s.Degraded
	a.MigratedIn += s.MigratedIn
	a.MigratedOut += s.MigratedOut
}

// Stats returns a snapshot of engine counters. It is lock-free: every
// counter is an atomic, so a metrics scrape or health probe never
// serializes against the packet path. Counters are read one by one, so
// a snapshot taken while packets are in flight can be transiently
// inconsistent (e.g. Admitted bumped before Classified); the
// conservation law is exact at quiescence.
func (e *Engine) Stats() EngineStats {
	r := e.restored.Load()
	s := EngineStats{
		Pending:     int(e.ec.pending.Load()),
		Classified:  int(e.ec.classified.Load()) + r.Classified,
		CDB:         e.cdb.Stats(),
		Admitted:    int(e.ec.admitted.Load()) + r.Admitted,
		Shed:        int(e.ec.shed.Load()) + r.Shed,
		Evicted:     int(e.ec.evicted.Load()) + r.Evicted,
		Dropped:     int(e.ec.dropped.Load()) + r.Dropped,
		Failed:      int(e.ec.failed.Load()) + r.Failed,
		Fallback:    int(e.ec.fallback.Load()) + r.Fallback,
		MigratedIn:  int(e.ec.migratedIn.Load()),
		MigratedOut: int(e.ec.migratedOut.Load()),
	}
	for i := range s.QueueCounts {
		s.QueueCounts[i] = int(e.ec.queued[i].Load()) + r.QueueCounts[i]
	}
	if e.ec.degraded.Load() {
		s.Degraded = 1
	}
	return s
}

// Degraded reports whether the engine is currently short-circuiting
// classification to the fallback queue. Lock-free.
func (e *Engine) Degraded() bool {
	return e.ec.degraded.Load()
}

// FillStats returns a copy of the per-flow buffering measurements gathered
// so far.
func (e *Engine) FillStats() []FillStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]FillStats(nil), e.fills...)
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Median != 7 || s.Mean != 7 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestCDFAt(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c, err := NewCDF([]float64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Errorf("Quantile(0.5) = %v, want 30", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v, want 50", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestCDFPoints(t *testing.T) {
	c, err := NewCDF([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Points(3)
	if len(pts) != 3 {
		t.Fatalf("len = %d, want 3", len(pts))
	}
	if pts[0][1] >= pts[2][1] {
		t.Errorf("CDF points not nondecreasing: %v", pts)
	}
	if pts[2][1] != 1 {
		t.Errorf("last point prob = %v, want 1", pts[2][1])
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.1, 0.2, 0.9, -5, 10}, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 { // 0.1, 0.2, and clamped -5
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 0.9 and clamped 10
		t.Errorf("bin1 = %d, want 2", h.Counts[1])
	}
	if got := h.Fraction(0); got != 0.6 {
		t.Errorf("Fraction(0) = %v, want 0.6", got)
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 0, 1); err == nil {
		t.Error("nbins=0: want error")
	}
	if _, err := NewHistogram(nil, 2, 1, 1); err == nil {
		t.Error("hi==lo: want error")
	}
}

// Property: the CDF is monotone nondecreasing, 0 below min, 1 at max.
func TestCDFMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, probe float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
		below := math.Nextafter(lo, math.Inf(-1))
		if c.At(below) != 0 || c.At(hi) != 1 {
			return false
		}
		if math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		return c.At(probe) <= c.At(probe+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

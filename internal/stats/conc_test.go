package stats

import (
	"math/rand"
	"sync"
	"testing"
	"unsafe"
)

// The concurrent histogram must bin identically to the plain one: same
// clamping, same counts, for any sample.
func TestConcurrentHistogramMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plain, err := NewEmptyHistogram(24, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewConcurrentHistogram(24, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		// Include out-of-range samples to exercise edge clamping.
		x := rng.Float64()*16 - 2
		plain.Observe(x)
		conc.Observe(x)
	}
	snap := conc.Snapshot()
	if snap.Total != plain.Total {
		t.Fatalf("Total = %d, want %d", snap.Total, plain.Total)
	}
	for i, c := range plain.Counts {
		if snap.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d", i, snap.Counts[i], c)
		}
	}
}

// Concurrent writers plus a concurrent snapshotter: no sample may be
// lost, and every snapshot's Total must equal the sum of its bins (the
// invariant Snapshot promises even mid-write). Run under -race this is
// also the data-race proof for the type.
func TestConcurrentHistogramParallelObserve(t *testing.T) {
	h, err := NewConcurrentHistogram(16, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent snapshotter
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			sum := 0
			for _, c := range s.Counts {
				sum += c
			}
			if sum != s.Total {
				panic("snapshot Total diverged from bin sum")
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	if got := h.Snapshot().Total; got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
}

func TestConcurrentHistogramRejectsBadBinning(t *testing.T) {
	if _, err := NewConcurrentHistogram(0, 0, 1); err == nil {
		t.Error("nbins=0 accepted")
	}
	if _, err := NewConcurrentHistogram(8, 1, 1); err == nil {
		t.Error("hi==lo accepted")
	}
}

// The padding types must actually span full cache lines — a silent
// struct-layout change here would quietly reintroduce false sharing.
func TestPaddingLayout(t *testing.T) {
	if s := unsafe.Sizeof(CacheLinePad{}); s != CacheLineSize {
		t.Errorf("CacheLinePad size = %d, want %d", s, CacheLineSize)
	}
	var p PaddedInt64
	if s := unsafe.Sizeof(p); s < 2*CacheLineSize+8 {
		t.Errorf("PaddedInt64 size = %d, want >= %d", s, 2*CacheLineSize+8)
	}
	p.Add(3)
	p.Add(4)
	if p.Load() != 7 {
		t.Errorf("PaddedInt64 arithmetic broken: %d", p.Load())
	}
	p.Store(1)
	if p.Load() != 1 {
		t.Errorf("PaddedInt64 store broken: %d", p.Load())
	}
}

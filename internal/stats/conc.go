package stats

import (
	"errors"
	"sync/atomic"
)

// This file holds the concurrency-safe counterparts of the plain
// collectors: cache-line padding helpers and an atomic histogram. They
// exist for the engine hot path, where per-shard collectors are written
// by one goroutine each but snapshotted by any number of observers
// (metrics endpoints, probes, checkpoints) without taking the shard
// lock. Padding matters because per-shard collectors are allocated
// adjacently: without it, two shards' bins can share a cache line and
// every Observe on one core invalidates the other's line (false
// sharing), which is exactly the contention this package is meant to
// measure, not cause.

// CacheLineSize is the assumed coherence-granule size, in bytes. 64 is
// correct for every amd64 and most arm64 parts; on the few 128-byte-line
// parts (Apple M-series performance cores) padding to 64 still halves
// the collision probability and costs nothing elsewhere.
const CacheLineSize = 64

// CacheLinePad is spacer-only storage used to keep two hot fields (or
// two adjacent per-shard structs) off the same cache line. Embed it
// between fields written by different cores.
type CacheLinePad struct{ _ [CacheLineSize]byte }

// PaddedInt64 is an atomic counter alone on its cache line(s): the
// leading pad keeps it clear of whatever the enclosing struct put
// before it, and the struct's own trailing neighbor is pushed a full
// line away by the second pad. Use it for counters bumped on the hot
// path by different shards; plain atomic.Int64 is fine for cold ones.
type PaddedInt64 struct {
	_ CacheLinePad
	v atomic.Int64
	_ CacheLinePad
}

// Add atomically adds d and returns the new value.
func (p *PaddedInt64) Add(d int64) int64 { return p.v.Add(d) }

// Load atomically reads the counter.
func (p *PaddedInt64) Load() int64 { return p.v.Load() }

// Store atomically replaces the counter.
func (p *PaddedInt64) Store(x int64) { p.v.Store(x) }

// ConcurrentHistogram is the atomic counterpart of Histogram: same
// binning semantics (equal-width bins over [Lo, Hi], outliers clamped
// into the edge bins), but Observe is a single lock-free atomic add and
// Snapshot can run concurrently with writers. There is no Total field —
// a racing total could disagree with the sum of the bins; Snapshot
// derives Total from the bins it read instead.
//
// The bins slice is allocated with CacheLineSize/8 guard words on both
// ends so that a histogram's hot bins never share a line with the
// neighboring allocation (e.g. the next shard's histogram). Bins within
// one histogram are NOT padded apart from each other: a shard's
// histogram is written by that shard only, so intra-histogram sharing
// is free, and padding every bin would blow the footprint up 8×.
type ConcurrentHistogram struct {
	Lo, Hi float64
	bins   []atomic.Int64 // guard..guard+nbins are the live bins
	nbins  int
}

// guardWords is the number of atomic.Int64 slots (8 bytes each) used as
// dead space at each end of the bins allocation.
const guardWords = CacheLineSize / 8

// NewConcurrentHistogram builds a zero-count atomic histogram with
// nbins bins over [lo, hi].
func NewConcurrentHistogram(nbins int, lo, hi float64) (*ConcurrentHistogram, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: nbins must be positive")
	}
	if hi <= lo {
		return nil, errors.New("stats: hi must exceed lo")
	}
	return &ConcurrentHistogram{
		Lo:    lo,
		Hi:    hi,
		bins:  make([]atomic.Int64, nbins+2*guardWords),
		nbins: nbins,
	}, nil
}

// Observe counts one sample into its bin. Safe for any number of
// concurrent callers.
func (h *ConcurrentHistogram) Observe(x float64) {
	width := (h.Hi - h.Lo) / float64(h.nbins)
	idx := int((x - h.Lo) / width)
	if idx < 0 {
		idx = 0
	}
	if idx >= h.nbins {
		idx = h.nbins - 1
	}
	h.bins[guardWords+idx].Add(1)
}

// Snapshot returns a plain Histogram copy of the current counts. Each
// bin is read atomically; concurrent Observes may land on either side
// of the snapshot, but Total always equals the sum of Counts.
func (h *ConcurrentHistogram) Snapshot() *Histogram {
	out := &Histogram{Lo: h.Lo, Hi: h.Hi, Counts: make([]int, h.nbins)}
	for i := 0; i < h.nbins; i++ {
		c := int(h.bins[guardWords+i].Load())
		out.Counts[i] = c
		out.Total += c
	}
	return out
}

// Bins returns the bin count.
func (h *ConcurrentHistogram) Bins() int { return h.nbins }

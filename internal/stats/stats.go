// Package stats provides the small statistical toolkit used across the
// Iustitia experiments: empirical CDFs, histograms, and summary statistics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned when a statistic is requested over an empty sample.
var ErrNoData = errors.New("stats: no data")

// Summary holds the basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or 0 for an empty sample. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// First index with sorted[i] > x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q, for
// q in (0, 1]. Quantile(0) returns the sample minimum.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points returns n evenly spaced (value, cumulative-probability) samples of
// the CDF, suitable for plotting or table output.
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = [2]float64{x, c.At(x)}
	}
	return pts
}

// Histogram counts samples into nbins equal-width bins spanning [lo, hi].
// Samples outside the range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram of xs with nbins bins over [lo, hi].
func NewHistogram(xs []float64, nbins int, lo, hi float64) (*Histogram, error) {
	h, err := NewEmptyHistogram(nbins, lo, hi)
	if err != nil {
		return nil, err
	}
	for _, x := range xs {
		h.Observe(x)
	}
	return h, nil
}

// NewEmptyHistogram builds a zero-count histogram with nbins bins over
// [lo, hi], to be filled incrementally with Observe — the shape long-lived
// collectors (e.g. per-shard latency histograms) use, where the sample is
// never materialized as a slice.
func NewEmptyHistogram(nbins int, lo, hi float64) (*Histogram, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: nbins must be positive")
	}
	if hi <= lo {
		return nil, errors.New("stats: hi must exceed lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}, nil
}

// Observe counts one sample into its bin, clamping values outside
// [Lo, Hi] into the edge bins like NewHistogram does.
func (h *Histogram) Observe(x float64) {
	nbins := len(h.Counts)
	width := (h.Hi - h.Lo) / float64(nbins)
	idx := int((x - h.Lo) / width)
	if idx < 0 {
		idx = 0
	}
	if idx >= nbins {
		idx = nbins - 1
	}
	h.Counts[idx]++
	h.Total++
}

// Merge folds other's counts into h. The histograms must share bin count
// and range — merging shards of one measurement, not arbitrary reshaping.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.Counts) != len(other.Counts) || h.Lo != other.Lo || h.Hi != other.Hi {
		return errors.New("stats: merging histograms with different binning")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Total += other.Total
	return nil
}

// Clone returns an independent copy of h.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{Lo: h.Lo, Hi: h.Hi, Counts: append([]int(nil), h.Counts...), Total: h.Total}
}

// Fraction returns the fraction of the sample that landed in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

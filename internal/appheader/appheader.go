// Package appheader detects and strips well-known application-layer
// protocol headers (paper §4.3): a binary object fetched over HTTP starts
// with a text header that would skew the first-b-bytes entropy vector, so
// Iustitia removes known headers before buffering and otherwise skips a
// configurable threshold of T bytes to jump over unknown headers.
package appheader

import (
	"bytes"
	"fmt"
)

// Protocol identifies a recognized application-layer protocol.
type Protocol int

// Recognized protocols. Unknown is deliberately the zero value: a payload
// with no recognizable header detects as Unknown.
const (
	Unknown Protocol = iota
	HTTP
	SMTP
	POP3
	IMAP
	FTP
	SSH
	TLS
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case HTTP:
		return "http"
	case SMTP:
		return "smtp"
	case POP3:
		return "pop3"
	case IMAP:
		return "imap"
	case FTP:
		return "ftp"
	case SSH:
		return "ssh"
	case TLS:
		return "tls"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// httpPrefixes are request-line methods and the response-line prefix.
var httpPrefixes = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("PUT "), []byte("HEAD "),
	[]byte("DELETE "), []byte("OPTIONS "), []byte("TRACE "), []byte("CONNECT "),
	[]byte("HTTP/1."),
}

var smtpPrefixes = [][]byte{
	[]byte("220 "), []byte("220-"), []byte("HELO "), []byte("EHLO "),
	[]byte("MAIL FROM:"), []byte("RCPT TO:"),
}

// Detect identifies the application protocol from the first bytes of a
// flow's payload using the signature prefixes of well-known protocols. A
// 220 banner is FTP when the banner mentions FTP and SMTP otherwise
// (matching the common convention of each protocol's greeting).
func Detect(payload []byte) Protocol {
	switch {
	case hasAnyPrefix(payload, httpPrefixes):
		return HTTP
	case bytes.HasPrefix(payload, []byte("SSH-")):
		return SSH
	case isTLSRecord(payload):
		return TLS
	case bytes.HasPrefix(payload, []byte("+OK")):
		return POP3
	case bytes.HasPrefix(payload, []byte("* OK")) || bytes.HasPrefix(payload, []byte("* PREAUTH")):
		return IMAP
	case hasAnyPrefix(payload, smtpPrefixes):
		if line := firstLine(payload); bytes.Contains(bytes.ToUpper(line), []byte("FTP")) {
			return FTP
		}
		return SMTP
	default:
		return Unknown
	}
}

func hasAnyPrefix(payload []byte, prefixes [][]byte) bool {
	for _, p := range prefixes {
		if bytes.HasPrefix(payload, p) {
			return true
		}
	}
	return false
}

func firstLine(payload []byte) []byte {
	if i := bytes.IndexByte(payload, '\n'); i >= 0 {
		return payload[:i]
	}
	return payload
}

// isTLSRecord recognizes a TLS record header: content type handshake(22)
// or application-data(23)/alert(21), legacy version major 3, minor 0..4,
// and a plausible record length. This is the one protocol whose detection
// short-circuits classification entirely — the flow *is* encrypted.
func isTLSRecord(payload []byte) bool {
	if len(payload) < 5 {
		return false
	}
	contentType := payload[0]
	if contentType < 20 || contentType > 23 {
		return false
	}
	if payload[1] != 3 || payload[2] > 4 {
		return false
	}
	length := int(payload[3])<<8 | int(payload[4])
	return length > 0 && length <= 1<<14+256
}

// maxLineHeader caps how much of a line-based protocol exchange Strip will
// consume, so a pathological all-ASCII flow is not swallowed whole.
const maxLineHeader = 2048

// Strip removes the detected application-layer header from payload and
// returns the remaining application content along with the protocol. For
// HTTP the header ends at the blank line; for the line-based mail
// protocols it consumes leading command/response lines until the exchange
// stops looking like protocol chatter. When no protocol is recognized,
// payload is returned unchanged with Unknown.
func Strip(payload []byte) ([]byte, Protocol) {
	proto := Detect(payload)
	switch proto {
	case HTTP:
		return stripHTTP(payload), proto
	case SMTP, POP3, IMAP, FTP, SSH:
		return stripLines(payload), proto
	case TLS:
		// A TLS record is not a header to remove: the record bytes are
		// the flow's content, and they are ciphertext.
		return payload, proto
	default:
		return payload, Unknown
	}
}

// stripHTTP drops everything through the first blank line (CRLFCRLF, with
// a bare-LF fallback). When the header has not finished inside payload the
// whole payload is header, so nothing remains.
func stripHTTP(payload []byte) []byte {
	if i := bytes.Index(payload, []byte("\r\n\r\n")); i >= 0 {
		return payload[i+4:]
	}
	if i := bytes.Index(payload, []byte("\n\n")); i >= 0 {
		return payload[i+2:]
	}
	return nil
}

// stripLines consumes leading ASCII protocol lines. A line stops the strip
// when it is empty (mail body separator) or contains non-ASCII bytes
// (start of real content).
func stripLines(payload []byte) []byte {
	rest := payload
	consumed := 0
	for len(rest) > 0 && consumed < maxLineHeader {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break
		}
		line := rest[:nl]
		if len(bytes.TrimRight(line, "\r")) == 0 {
			// Blank separator line: content starts after it.
			return rest[nl+1:]
		}
		if !asciiLine(line) {
			break
		}
		consumed += nl + 1
		rest = rest[nl+1:]
	}
	return rest
}

func asciiLine(line []byte) bool {
	for _, b := range line {
		if (b < 0x20 || b > 0x7e) && b != '\r' && b != '\t' {
			return false
		}
	}
	return true
}

// SkipThreshold returns payload with its first t bytes removed — the
// paper's threshold-T rule for unknown application headers ("we treat the
// (T+1)-th byte in a flow as the beginning of the flow"). It returns an
// empty slice when the payload is shorter than t.
func SkipThreshold(payload []byte, t int) []byte {
	if t < 0 {
		t = 0
	}
	if t >= len(payload) {
		return nil
	}
	return payload[t:]
}

package appheader

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDetect(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		want    Protocol
	}{
		{"http get", "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n", HTTP},
		{"http response", "HTTP/1.1 200 OK\r\nContent-Type: image/png\r\n\r\n\x89PNG", HTTP},
		{"http post", "POST /api HTTP/1.1\r\n\r\n{}", HTTP},
		{"smtp banner", "220 mail.example.com ESMTP ready\r\n", SMTP},
		{"smtp helo", "EHLO client.example.org\r\n", SMTP},
		{"ftp banner", "220 example FTP server ready\r\n", FTP},
		{"pop3", "+OK POP3 server ready\r\n", POP3},
		{"imap", "* OK IMAP4rev1 ready\r\n", IMAP},
		{"binary", "\x7fELF\x02\x01\x01", Unknown},
		{"empty", "", Unknown},
		{"plain text", "hello world this is a letter", Unknown},
		{"ssh banner", "SSH-2.0-OpenSSH_5.1\r\n", SSH},
		{"tls handshake", "\x16\x03\x01\x00\xc5\x01\x00\x00\xc1\x03\x03", TLS},
		{"tls appdata", "\x17\x03\x03\x01\x00payload", TLS},
		{"tls bad version", "\x16\x04\x01\x00\x10", Unknown},
		{"tls zero length", "\x16\x03\x01\x00\x00", Unknown},
		{"tls short", "\x16\x03", Unknown},
	}
	for _, tc := range cases {
		if got := Detect([]byte(tc.payload)); got != tc.want {
			t.Errorf("%s: Detect = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestProtocolString(t *testing.T) {
	cases := map[Protocol]string{
		HTTP: "http", SMTP: "smtp", POP3: "pop3", IMAP: "imap",
		FTP: "ftp", SSH: "ssh", TLS: "tls",
		Unknown: "unknown", Protocol(99): "protocol(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestStripHTTP(t *testing.T) {
	body := []byte{0x89, 'P', 'N', 'G', 0, 1, 2, 3}
	payload := append([]byte("HTTP/1.1 200 OK\r\nContent-Length: 8\r\n\r\n"), body...)
	got, proto := Strip(payload)
	if proto != HTTP {
		t.Fatalf("proto = %v, want HTTP", proto)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("stripped = %q, want %q", got, body)
	}
}

func TestStripHTTPBareLF(t *testing.T) {
	payload := []byte("GET / HTTP/1.0\nHost: x\n\nBODY")
	got, proto := Strip(payload)
	if proto != HTTP || string(got) != "BODY" {
		t.Errorf("Strip = (%q, %v)", got, proto)
	}
}

func TestStripHTTPUnfinishedHeader(t *testing.T) {
	payload := []byte("GET /very/long/path HTTP/1.1\r\nHost: example.com\r\n")
	got, proto := Strip(payload)
	if proto != HTTP {
		t.Fatalf("proto = %v, want HTTP", proto)
	}
	if len(got) != 0 {
		t.Errorf("unfinished header should strip everything, got %q", got)
	}
}

func TestStripSMTPToBody(t *testing.T) {
	payload := []byte("220 mail ESMTP\r\nMAIL FROM:<a@b>\r\nDATA\r\n\r\nThe actual message body")
	got, proto := Strip(payload)
	if proto != SMTP {
		t.Fatalf("proto = %v, want SMTP", proto)
	}
	if string(got) != "The actual message body" {
		t.Errorf("stripped = %q", got)
	}
}

func TestStripLinesStopsAtBinary(t *testing.T) {
	binary := []byte{0x00, 0xff, 0x13, 0x37}
	payload := append([]byte("+OK ready\r\n"), binary...)
	got, proto := Strip(payload)
	if proto != POP3 {
		t.Fatalf("proto = %v, want POP3", proto)
	}
	if !bytes.Equal(got, binary) {
		t.Errorf("stripped = %q, want %q", got, binary)
	}
}

func TestStripSSHBanner(t *testing.T) {
	kex := []byte{0x00, 0x00, 0x03, 0x14, 0x08, 0x14, 0xff}
	payload := append([]byte("SSH-2.0-OpenSSH_5.1\r\n"), kex...)
	got, proto := Strip(payload)
	if proto != SSH {
		t.Fatalf("proto = %v, want SSH", proto)
	}
	if !bytes.Equal(got, kex) {
		t.Errorf("stripped = %v, want key-exchange bytes", got)
	}
}

func TestStripTLSPassthrough(t *testing.T) {
	payload := []byte("\x17\x03\x03\x00\x20opaque ciphertext follows here")
	got, proto := Strip(payload)
	if proto != TLS {
		t.Fatalf("proto = %v, want TLS", proto)
	}
	if !bytes.Equal(got, payload) {
		t.Error("TLS records must pass through unstripped")
	}
}

func TestStripUnknownPassthrough(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	got, proto := Strip(payload)
	if proto != Unknown || !bytes.Equal(got, payload) {
		t.Errorf("Strip(unknown) = (%q, %v), want passthrough", got, proto)
	}
}

func TestStripLineHeaderCap(t *testing.T) {
	// An endless ASCII command stream must not be consumed past the cap.
	var payload []byte
	for i := 0; i < 500; i++ {
		payload = append(payload, []byte("MAIL FROM:<x@y>\r\n")...)
	}
	got, _ := Strip(payload)
	if len(got) == 0 {
		t.Error("line stripping consumed the entire flow")
	}
}

func TestSkipThreshold(t *testing.T) {
	payload := []byte("0123456789")
	if got := SkipThreshold(payload, 4); string(got) != "456789" {
		t.Errorf("SkipThreshold(4) = %q", got)
	}
	if got := SkipThreshold(payload, 0); string(got) != "0123456789" {
		t.Errorf("SkipThreshold(0) = %q", got)
	}
	if got := SkipThreshold(payload, -3); string(got) != "0123456789" {
		t.Errorf("SkipThreshold(-3) = %q", got)
	}
	if got := SkipThreshold(payload, 100); len(got) != 0 {
		t.Errorf("SkipThreshold(beyond) = %q, want empty", got)
	}
}

// Property: Strip never grows the payload and always returns a suffix of
// the input.
func TestStripSuffixProperty(t *testing.T) {
	prop := func(payload []byte) bool {
		got, _ := Strip(payload)
		if len(got) > len(payload) {
			return false
		}
		return bytes.Equal(got, payload[len(payload)-len(got):])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

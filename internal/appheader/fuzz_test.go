package appheader

import (
	"bytes"
	"testing"
)

// FuzzStrip checks that header stripping never panics, never grows the
// payload, and always returns a suffix of its input, for arbitrary bytes.
// Run with `go test -fuzz=FuzzStrip ./internal/appheader` to explore; the
// seed corpus runs in every normal `go test`.
func FuzzStrip(f *testing.F) {
	seeds := [][]byte{
		nil,
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\nBODY"),
		[]byte("HTTP/1.1 200 OK\r\n\r\n"),
		[]byte("220 smtp ready\r\nDATA\r\n\r\nbody"),
		[]byte("220 ftp FTP ready\r\n"),
		[]byte("+OK\r\n\x00\x01\x02"),
		[]byte("* OK IMAP\r\n"),
		[]byte("SSH-2.0-x\r\n\x00\x00"),
		[]byte("\x16\x03\x01\x00\x10handshake"),
		[]byte("\x7fELF"),
		bytes.Repeat([]byte("MAIL FROM:<a@b>\r\n"), 300),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		got, proto := Strip(payload)
		if len(got) > len(payload) {
			t.Fatalf("Strip grew payload: %d -> %d", len(payload), len(got))
		}
		if !bytes.Equal(got, payload[len(payload)-len(got):]) {
			t.Fatal("Strip result is not a suffix of the input")
		}
		if proto == Unknown && len(got) != len(payload) {
			t.Fatal("Unknown protocol must pass payload through unchanged")
		}
		// Detect must agree with Strip's protocol.
		if detected := Detect(payload); detected != proto {
			t.Fatalf("Detect = %v but Strip returned %v", detected, proto)
		}
	})
}

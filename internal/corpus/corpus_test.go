package corpus

import (
	"testing"

	"iustitia/internal/entropy"
	"iustitia/internal/stats"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Text: "text", Binary: "binary", Encrypted: "encrypted", Class(9): "class(9)",
	}
	for class, want := range cases {
		if got := class.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(class), got, want)
		}
	}
	if len(ClassNames()) != NumClasses {
		t.Errorf("ClassNames length = %d, want %d", len(ClassNames()), NumClasses)
	}
}

func TestFileSizesExact(t *testing.T) {
	g := NewGenerator(1)
	for class := Text; class <= Encrypted; class++ {
		for _, size := range []int{64, 1024, 4096} {
			f, err := g.File(class, size)
			if err != nil {
				t.Fatal(err)
			}
			if len(f.Data) != size {
				t.Errorf("%v size %d: got %d bytes", class, size, len(f.Data))
			}
			if f.Class != class {
				t.Errorf("File class = %v, want %v", f.Class, class)
			}
		}
	}
}

func TestFileUnknownClass(t *testing.T) {
	g := NewGenerator(1)
	if _, err := g.File(Class(42), 100); err == nil {
		t.Error("unknown class: want error")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(7)
	b := NewGenerator(7)
	fa, err := a.File(Binary, 2048)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.File(Binary, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if string(fa.Data) != string(fb.Data) {
		t.Error("same seed produced different files")
	}
	if fa.Kind != fb.Kind {
		t.Errorf("kinds differ: %q vs %q", fa.Kind, fb.Kind)
	}
}

func TestSeedsDiffer(t *testing.T) {
	fa, err := NewGenerator(1).File(Encrypted, 512)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewGenerator(2).File(Encrypted, 512)
	if err != nil {
		t.Fatal(err)
	}
	if string(fa.Data) == string(fb.Data) {
		t.Error("different seeds produced identical ciphertext")
	}
}

// TestEntropyBands is the substitution-fidelity check (DESIGN.md §4): the
// synthetic classes must occupy the paper's ordered, partially overlapping
// entropy bands.
func TestEntropyBands(t *testing.T) {
	g := NewGenerator(11)
	const n = 30
	const size = 4096
	means := make([]float64, NumClasses)
	for class := Text; class <= Encrypted; class++ {
		var hs []float64
		for i := 0; i < n; i++ {
			f, err := g.File(class, size)
			if err != nil {
				t.Fatal(err)
			}
			h, err := entropy.H(f.Data, 1)
			if err != nil {
				t.Fatal(err)
			}
			hs = append(hs, h)
		}
		means[class] = stats.Mean(hs)
	}
	if !(means[Text] < means[Binary] && means[Binary] < means[Encrypted]) {
		t.Errorf("mean entropy bands out of order: text=%.3f binary=%.3f encrypted=%.3f",
			means[Text], means[Binary], means[Encrypted])
	}
	if means[Text] > 0.75 {
		t.Errorf("text mean entropy %.3f too high (want natural-language band < 0.75)", means[Text])
	}
	if means[Encrypted] < 0.9 {
		t.Errorf("encrypted mean entropy %.3f too low (want near-uniform band > 0.9)", means[Encrypted])
	}
}

func TestTextIsPrintableASCII(t *testing.T) {
	g := NewGenerator(13)
	f := g.Text(2048)
	nonPrintable := 0
	for _, b := range f.Data {
		if (b < 0x20 || b > 0x7e) && b != '\n' && b != '\r' && b != '\t' {
			nonPrintable++
		}
	}
	if frac := float64(nonPrintable) / float64(len(f.Data)); frac > 0.01 {
		t.Errorf("text file is %.1f%% non-printable", frac*100)
	}
}

func TestPool(t *testing.T) {
	g := NewGenerator(17)
	files, err := g.Pool(5, 512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 5*NumClasses {
		t.Fatalf("pool size = %d, want %d", len(files), 5*NumClasses)
	}
	counts := make(map[Class]int)
	for _, f := range files {
		counts[f.Class]++
		if len(f.Data) < 512 || len(f.Data) > 1024 {
			t.Errorf("file size %d outside [512, 1024]", len(f.Data))
		}
	}
	for class := Text; class <= Encrypted; class++ {
		if counts[class] != 5 {
			t.Errorf("class %v count = %d, want 5", class, counts[class])
		}
	}
}

func TestPoolValidation(t *testing.T) {
	g := NewGenerator(19)
	if _, err := g.Pool(0, 10, 20); err == nil {
		t.Error("perClass=0: want error")
	}
	if _, err := g.Pool(1, 0, 20); err == nil {
		t.Error("minSize=0: want error")
	}
	if _, err := g.Pool(1, 30, 20); err == nil {
		t.Error("max<min: want error")
	}
}

func TestBinarySubtypesSpreadEntropy(t *testing.T) {
	// Binary files must show a wide entropy spread: some near text (doc),
	// some near encrypted (zip) — the overlap driving the paper's
	// misclassification pattern.
	g := NewGenerator(23)
	var hs []float64
	for i := 0; i < 40; i++ {
		f := g.Binary(4096)
		h, err := entropy.H(f.Data, 1)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	summary, err := stats.Summarize(hs)
	if err != nil {
		t.Fatal(err)
	}
	if spread := summary.Max - summary.Min; spread < 0.15 {
		t.Errorf("binary entropy spread = %.3f, want >= 0.15 (min=%.3f max=%.3f)",
			spread, summary.Min, summary.Max)
	}
}

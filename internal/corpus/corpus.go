// Package corpus synthesizes the three classes of files Iustitia
// classifies — text, binary, and encrypted — standing in for the paper's
// private pool of 90,914 real files (see DESIGN.md §4). The generators are
// deterministic given a seed and are tuned so each class occupies the same
// normalized-entropy band the paper reports: text lowest (word-structured,
// small alphabet), encrypted indistinguishable from uniform, and binary in
// between with a wide spread that overlaps both neighbours (format headers
// and string tables pull entropy down; compressed payload regions push it
// up toward the encrypted band, which is what drives the paper's
// binary<->encrypted confusion).
package corpus

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"math/rand"
)

// Class identifies the content nature of a file or flow. The values double
// as machine-learning labels, so they are zero-based and dense.
type Class int

// The three content natures, in the paper's entropy order.
const (
	Text Class = iota
	Binary
	Encrypted
)

// NumClasses is the number of content natures.
const NumClasses = 3

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Text:
		return "text"
	case Binary:
		return "binary"
	case Encrypted:
		return "encrypted"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ClassNames lists the class names indexed by Class value, for table
// output.
func ClassNames() []string { return []string{"text", "binary", "encrypted"} }

// File is one synthesized corpus file.
type File struct {
	Class Class
	// Kind names the generator subtype, e.g. "html", "exe", "zip".
	Kind string
	Data []byte
}

// Generator deterministically synthesizes corpus files. It is not safe for
// concurrent use; create one per goroutine.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded for reproducibility.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// vocabulary is the word stock for prose synthesis; sampling it with a
// Zipf distribution yields text with the byte-level entropy of natural
// language (~4.0-4.5 bits/byte).
var vocabulary = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
	"at", "be", "this", "have", "from", "or", "one", "had", "by", "word",
	"but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
	"there", "use", "an", "each", "which", "she", "do", "how", "their", "if",
	"will", "up", "other", "about", "out", "many", "then", "them", "these", "so",
	"some", "her", "would", "make", "like", "him", "into", "time", "has", "look",
	"two", "more", "write", "go", "see", "number", "no", "way", "could", "people",
	"my", "than", "first", "water", "been", "call", "who", "oil", "its", "now",
	"find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
	"network", "packet", "flow", "entropy", "classifier", "router", "buffer",
	"protocol", "system", "traffic", "server", "client", "message", "header",
	"payload", "queue", "stream", "byte", "measure", "report",
}

// words appends n Zipf-sampled vocabulary words to buf, with sentence
// casing and punctuation, and returns the extended buffer.
func (g *Generator) words(buf []byte, n int) []byte {
	zipf := rand.NewZipf(g.rng, 1.2, 1, uint64(len(vocabulary)-1))
	sentenceLen := 0
	for i := 0; i < n; i++ {
		w := vocabulary[zipf.Uint64()]
		if sentenceLen == 0 && len(w) > 0 {
			buf = append(buf, w[0]&^0x20) // capitalize
			buf = append(buf, w[1:]...)
		} else {
			buf = append(buf, w...)
		}
		sentenceLen++
		if sentenceLen >= 6+g.rng.Intn(12) {
			buf = append(buf, '.')
			sentenceLen = 0
			if g.rng.Intn(4) == 0 {
				buf = append(buf, '\n')
			} else {
				buf = append(buf, ' ')
			}
		} else {
			buf = append(buf, ' ')
		}
	}
	return buf
}

// prose returns approximately size bytes of natural-language-like text.
func (g *Generator) prose(size int) []byte {
	buf := make([]byte, 0, size+64)
	for len(buf) < size {
		buf = g.words(buf, 32)
	}
	return buf[:size]
}

// Text synthesizes a text-class file of the given size, choosing among
// plain prose, HTML, log-file, email, and email-with-base64-attachment
// subtypes. The attachment subtype matters for fidelity: base64 bodies
// push a text file's entropy toward the binary band, producing the
// text->encrypted/binary confusion tail the paper reports.
func (g *Generator) Text(size int) File {
	kind := []string{"txt", "html", "log", "mail", "b64mail", "b64mail"}[g.rng.Intn(6)]
	var data []byte
	switch kind {
	case "html":
		data = g.htmlFile(size)
	case "log":
		data = g.logFile(size)
	case "mail":
		data = g.mailFile(size)
	case "b64mail":
		data = g.base64MailFile(size)
	default:
		data = g.prose(size)
	}
	return File{Class: Text, Kind: kind, Data: data}
}

// base64Alphabet is the standard encoding alphabet, used to synthesize
// base64-looking runs without paying for real encoding.
const base64Alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

// base64Lines appends n lines of 76-column base64-like data.
func (g *Generator) base64Lines(buf []byte, n int) []byte {
	for line := 0; line < n; line++ {
		for i := 0; i < 76; i++ {
			buf = append(buf, base64Alphabet[g.rng.Intn(64)])
		}
		buf = append(buf, '\r', '\n')
	}
	return buf
}

// base64MailFile mimics a MIME mail with a sizable base64 attachment: a
// prose body followed by an encoded part. The prose fraction is drawn per
// file, so the subtype spans from mostly-prose mail to nearly pure base64
// (which reads like armored ciphertext).
func (g *Generator) base64MailFile(size int) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "From: user%d@example.com\r\nSubject: ", g.rng.Intn(1000))
	buf.Write(g.prose(24))
	buf.WriteString("\r\nMIME-Version: 1.0\r\nContent-Type: multipart/mixed; boundary=b01\r\n\r\n--b01\r\n")
	proseFrac := 0.05 + 0.45*g.rng.Float64()
	buf.Write(g.prose(int(proseFrac * float64(size))))
	buf.WriteString("\r\n--b01\r\nContent-Transfer-Encoding: base64\r\n\r\n")
	out := buf.Bytes()
	for len(out) < size {
		out = g.base64Lines(out, 8)
	}
	return clamp(out, size)
}

func (g *Generator) htmlFile(size int) []byte {
	var buf bytes.Buffer
	buf.WriteString("<!DOCTYPE html>\n<html>\n<head><title>")
	buf.Write(g.prose(24))
	buf.WriteString("</title></head>\n<body>\n")
	for buf.Len() < size {
		buf.WriteString("<p>")
		buf.Write(g.prose(120 + g.rng.Intn(200)))
		buf.WriteString("</p>\n")
	}
	buf.WriteString("</body>\n</html>\n")
	return clamp(buf.Bytes(), size)
}

func (g *Generator) logFile(size int) []byte {
	var buf bytes.Buffer
	levels := []string{"INFO", "WARN", "ERROR", "DEBUG"}
	for buf.Len() < size {
		fmt.Fprintf(&buf, "2009-%02d-%02d %02d:%02d:%02d %s [worker-%d] ",
			1+g.rng.Intn(12), 1+g.rng.Intn(28), g.rng.Intn(24),
			g.rng.Intn(60), g.rng.Intn(60), levels[g.rng.Intn(len(levels))],
			g.rng.Intn(16))
		buf.Write(g.prose(40 + g.rng.Intn(60)))
		buf.WriteByte('\n')
	}
	return clamp(buf.Bytes(), size)
}

func (g *Generator) mailFile(size int) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "From: user%d@example.com\r\nTo: user%d@example.org\r\n",
		g.rng.Intn(1000), g.rng.Intn(1000))
	buf.WriteString("Subject: ")
	buf.Write(g.prose(32))
	buf.WriteString("\r\nMIME-Version: 1.0\r\nContent-Type: text/plain\r\n\r\n")
	for buf.Len() < size {
		buf.Write(g.prose(200))
		buf.WriteString("\r\n\r\n")
	}
	return clamp(buf.Bytes(), size)
}

// Binary synthesizes a binary-class file of the given size, choosing among
// executable-like, compressed-archive-like, image-like, and mixed-document
// subtypes.
func (g *Generator) Binary(size int) File {
	kind := []string{"exe", "zip", "img", "doc"}[g.rng.Intn(4)]
	var data []byte
	switch kind {
	case "zip":
		data = g.archiveFile(size)
	case "img":
		data = g.imageFile(size)
	case "doc":
		data = g.documentFile(size)
	default:
		data = g.executableFile(size)
	}
	return File{Class: Binary, Kind: kind, Data: data}
}

// executableFile mimics machine code plus loader structures: a magic
// header, sections of opcode-skewed bytes, an ASCII string table, and
// zero-padding runs. Section proportions are drawn per file, so the
// binary class spans a continuous band from text-heavy (string-table
// dominated) to dense code — the spread real executables show.
func (g *Generator) executableFile(size int) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0x7f, 'E', 'L', 'F', 2, 1, 1, 0})
	buf.Write(make([]byte, 56)) // header padding
	// Per-file blend: weight of string-table sections vs the rest.
	textWeight := 0.1 + 0.5*g.rng.Float64()
	for buf.Len() < size {
		r := g.rng.Float64()
		switch {
		case r < textWeight: // string table
			buf.Write(g.prose(128 + g.rng.Intn(256)))
			buf.WriteByte(0)
		case r < textWeight+(1-textWeight)*0.55: // code section
			n := 256 + g.rng.Intn(512)
			for i := 0; i < n; i++ {
				if g.rng.Intn(3) == 0 {
					// Common opcodes / small immediates dominate.
					buf.WriteByte(byte(g.rng.Intn(32)))
				} else {
					buf.WriteByte(byte(g.rng.Intn(256)))
				}
			}
		case r < textWeight+(1-textWeight)*0.8: // relocation-like records
			n := 16 + g.rng.Intn(32)
			for i := 0; i < n; i++ {
				buf.Write([]byte{byte(g.rng.Intn(256)), byte(g.rng.Intn(8)), 0, 0,
					byte(g.rng.Intn(256)), byte(g.rng.Intn(4)), 0, 0})
			}
		default: // zero padding
			buf.Write(make([]byte, 64+g.rng.Intn(192)))
		}
	}
	return clamp(buf.Bytes(), size)
}

// archiveFile mimics a ZIP-like container: small structured headers
// wrapping member data that is either DEFLATE-compressed prose or a
// *stored* already-compressed member (incompressible bytes). Stored
// members are byte-for-byte indistinguishable from ciphertext, which is
// exactly the binary<->encrypted confusion source the paper observes for
// ZIP/JPG binaries.
func (g *Generator) archiveFile(size int) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{'P', 'K', 3, 4})
	for buf.Len() < size {
		fmt.Fprintf(&buf, "PK\x01\x02member%04d", g.rng.Intn(10000))
		if g.rng.Float64() < 0.30 {
			// Stored member: already-compressed content, incompressible.
			member := make([]byte, 1<<10+g.rng.Intn(3<<10))
			g.rng.Read(member)
			buf.Write(member)
			continue
		}
		member := g.prose(1<<10 + g.rng.Intn(3<<10))
		var compressed bytes.Buffer
		w, err := flate.NewWriter(&compressed, flate.BestCompression)
		if err == nil {
			if _, err := w.Write(member); err == nil {
				if err := w.Close(); err == nil {
					buf.Write(compressed.Bytes())
					continue
				}
			}
		}
		// flate cannot realistically fail on a bytes.Buffer; fall back to
		// raw prose so the file still reaches its size.
		buf.Write(member)
	}
	return clamp(buf.Bytes(), size)
}

// imageFile mimics lossy-coded media: marker segments plus entropy-coded
// payload with a geometric-ish coefficient distribution.
func (g *Generator) imageFile(size int) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xd8, 0xff, 0xe0}) // SOI/APP0-like
	for buf.Len() < size {
		if g.rng.Intn(16) == 0 {
			buf.Write([]byte{0xff, byte(0xc0 + g.rng.Intn(16)), 0, byte(8 + g.rng.Intn(64))})
			continue
		}
		// Entropy-coded data: geometric magnitudes, frequent small values.
		v := 0
		for g.rng.Intn(3) != 0 && v < 7 {
			v++
		}
		b := byte(g.rng.Intn(1 << uint(v+1)))
		if b == 0xff {
			buf.Write([]byte{0xff, 0x00}) // byte stuffing
		} else {
			buf.WriteByte(b ^ byte(g.rng.Intn(256))&0x3f)
		}
	}
	return clamp(buf.Bytes(), size)
}

// documentFile mimics container documents (PDF/Office): text dictionaries
// interleaved with compressed object streams.
func (g *Generator) documentFile(size int) []byte {
	var buf bytes.Buffer
	buf.WriteString("%PDF-1.4\n")
	obj := 1
	// Per-file blend of dictionary text vs compressed streams.
	textFrac := 0.2 + 0.6*g.rng.Float64()
	for buf.Len() < size {
		if g.rng.Float64() < textFrac {
			fmt.Fprintf(&buf, "%d 0 obj\n<< /Type /Page /Contents %d 0 R >>\nendobj\n", obj, obj+1)
			buf.Write(g.prose(100 + g.rng.Intn(150)))
		} else {
			stream := g.prose(400 + g.rng.Intn(400))
			var compressed bytes.Buffer
			w, err := flate.NewWriter(&compressed, flate.DefaultCompression)
			if err == nil {
				if _, err := w.Write(stream); err == nil && w.Close() == nil {
					fmt.Fprintf(&buf, "%d 0 obj\n<< /Filter /FlateDecode >>\nstream\n", obj)
					buf.Write(compressed.Bytes())
					buf.WriteString("\nendstream\nendobj\n")
				}
			}
		}
		obj++
	}
	return clamp(buf.Bytes(), size)
}

// Encrypted synthesizes an encrypted-class file. Most files are raw
// AES-CTR keystream — computationally indistinguishable from uniform
// bytes; about a quarter are PGP-style ASCII-armored ciphertext, whose
// base64 body drops the byte entropy into the binary band and produces
// the encrypted-class misclassification tail the paper measures for its
// PGP-generated files.
func (g *Generator) Encrypted(size int) File {
	if g.rng.Intn(8) == 0 {
		return File{Class: Encrypted, Kind: "armor", Data: g.armoredFile(size)}
	}
	key := make([]byte, 16)
	iv := make([]byte, aes.BlockSize)
	g.rng.Read(key)
	g.rng.Read(iv)
	block, err := aes.NewCipher(key)
	if err != nil {
		// aes.NewCipher cannot fail on a 16-byte key; guard anyway with a
		// uniform fallback rather than panicking in a generator.
		data := make([]byte, size)
		g.rng.Read(data)
		return File{Class: Encrypted, Kind: "prng", Data: data}
	}
	data := make([]byte, size)
	cipher.NewCTR(block, iv).XORKeyStream(data, data)
	return File{Class: Encrypted, Kind: "aes", Data: data}
}

// armoredFile mimics PGP ASCII armor as found in the wild: a variable
// amount of surrounding plain-text context (the mail or document the
// armored block is embedded in) followed by base64-coded ciphertext. The
// context fraction is drawn per file, making armored ciphertext and
// base64-attachment mail genuinely overlapping distributions — the
// text<->encrypted confusion tail of the paper's Table 1.
func (g *Generator) armoredFile(size int) []byte {
	var buf bytes.Buffer
	if contextFrac := 0.35 * g.rng.Float64(); contextFrac > 0.02 {
		buf.Write(g.prose(int(contextFrac * float64(size))))
		buf.WriteString("\r\n")
	}
	buf.WriteString("-----BEGIN PGP MESSAGE-----\r\nVersion: PGP 8.0\r\n\r\n")
	out := buf.Bytes()
	for len(out) < size {
		out = g.base64Lines(out, 8)
	}
	return clamp(out, size)
}

// File synthesizes one file of the requested class and size.
func (g *Generator) File(class Class, size int) (File, error) {
	switch class {
	case Text:
		return g.Text(size), nil
	case Binary:
		return g.Binary(size), nil
	case Encrypted:
		return g.Encrypted(size), nil
	default:
		return File{}, fmt.Errorf("corpus: unknown class %d", int(class))
	}
}

// Pool synthesizes perClass files of each class with sizes uniform in
// [minSize, maxSize], interleaved by class.
func (g *Generator) Pool(perClass, minSize, maxSize int) ([]File, error) {
	if perClass <= 0 {
		return nil, fmt.Errorf("corpus: perClass %d is not positive", perClass)
	}
	if minSize <= 0 || maxSize < minSize {
		return nil, fmt.Errorf("corpus: invalid size range [%d, %d]", minSize, maxSize)
	}
	files := make([]File, 0, perClass*NumClasses)
	for i := 0; i < perClass; i++ {
		for class := Text; class <= Encrypted; class++ {
			size := minSize
			if maxSize > minSize {
				size += g.rng.Intn(maxSize - minSize + 1)
			}
			f, err := g.File(class, size)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
	}
	return files, nil
}

// clamp trims data to exactly size bytes (generators may overshoot).
func clamp(data []byte, size int) []byte {
	if len(data) > size {
		return data[:size]
	}
	return data
}

package entest

import (
	"fmt"

	"iustitia/internal/persist"
)

// This file is the sketches' durability surface: a mid-flow StreamVector —
// histogram, every sketch's counters, rolling windows, and the sampling
// generator — round-trips through the persist wire codec so stream-mode
// pending flows survive node checkpoints and flow-table migrations exactly
// like buffered flows do. The generator state travels too: a restored
// sketch makes the same reservoir decisions it would have made
// uninterrupted, so a checkpoint/restore cycle is invisible in the
// estimates.

// streamStateVersion guards the sketch state wire format embedded in
// checkpoints and migration blobs.
const streamStateVersion = 1

// ExportState serializes the vector's full mid-stream state. Restore it
// with ImportState on a vector built from the same StreamConfig.
func (v *StreamVector) ExportState() []byte {
	var enc persist.Encoder
	enc.U8(streamStateVersion)
	enc.U8(uint8(v.kind))
	enc.U32(uint32(len(v.widths)))
	for _, k := range v.widths {
		enc.U32(uint32(k))
	}
	enc.I64(int64(v.n1))
	// The h_1 histogram is sparse for small flows: encode only the
	// non-zero byte counts.
	var nz uint32
	for _, c := range v.h1 {
		if c != 0 {
			nz++
		}
	}
	enc.U32(nz)
	for b, c := range v.h1 {
		if c != 0 {
			enc.U8(uint8(b))
			enc.I64(int64(c))
		}
	}
	for _, est := range v.wide {
		var sub persist.Encoder
		est.exportState(&sub)
		enc.Blob(sub.Bytes())
	}
	return enc.Bytes()
}

// ImportState restores state written by ExportState into this vector. The
// receiver must have been built from the same StreamConfig (kind and
// widths are validated; counter geometry is validated per sketch). On
// error the vector is left partially restored and must be discarded —
// callers import into a freshly constructed vector. Hostile input returns
// an error wrapping persist.ErrCorrupt, never a panic.
func (v *StreamVector) ImportState(data []byte) error {
	d := persist.NewDecoder(data)
	if ver := d.U8(); d.Err() == nil && ver != streamStateVersion {
		d.Fail("sketch state version %d, want %d", ver, streamStateVersion)
	}
	if kind := SketchKind(d.U8()); d.Err() == nil && kind != v.kind {
		d.Fail("sketch state kind %s, vector is %s", kind, v.kind)
	}
	if nw := d.U32(); d.Err() == nil && int(nw) != len(v.widths) {
		d.Fail("sketch state has %d widths, vector has %d", nw, len(v.widths))
	}
	for _, k := range v.widths {
		if wk := d.U32(); d.Err() == nil && int(wk) != k {
			d.Fail("sketch state width %d, vector wants %d", wk, k)
		}
	}
	n1 := d.I64()
	if d.Err() == nil && n1 < 0 {
		d.Fail("negative byte count %d", n1)
	}
	var hist [256]int
	var histSum int64
	nz := d.Count(1 + 8)
	for i := 0; i < nz; i++ {
		b := d.U8()
		c := d.I64()
		if d.Err() != nil {
			break
		}
		if c <= 0 {
			d.Fail("histogram count %d for byte %d", c, b)
			break
		}
		hist[b] += int(c)
		histSum += c
	}
	if d.Err() == nil && histSum != n1 {
		d.Fail("histogram sums to %d, byte count is %d", histSum, n1)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("entest: sketch state import: %w", err)
	}
	v.n1 = int(n1)
	v.h1 = hist
	for _, est := range v.wide {
		sub := persist.NewDecoder(d.Blob())
		if err := d.Err(); err != nil {
			return fmt.Errorf("entest: sketch state import: %w", err)
		}
		if err := est.importState(sub); err != nil {
			return fmt.Errorf("entest: sketch state import (k=%d): %w", est.Width(), err)
		}
		if err := sub.Finish(); err != nil {
			return fmt.Errorf("entest: sketch state import (k=%d): %w", est.Width(), err)
		}
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("entest: sketch state import: %w", err)
	}
	return nil
}

// exportWin serializes a rolling window's mid-stream state.
func exportWin(enc *persist.Encoder, w *kgramWin) {
	enc.U64(w.reg)
	enc.U64(w.regHi)
	enc.U32(uint32(w.filled))
	enc.Blob(w.buf)
}

// importWin restores a rolling window, validating against its mode.
func importWin(d *persist.Decoder, w *kgramWin) {
	reg := d.U64()
	regHi := d.U64()
	filled := d.U32()
	buf := d.Blob()
	if d.Err() != nil {
		return
	}
	if int(filled) > w.k-1 {
		d.Fail("window filled %d exceeds k-1 = %d", filled, w.k-1)
		return
	}
	if w.mode == winString {
		if len(buf) > w.k-1 {
			d.Fail("window buffer %d bytes exceeds k-1 = %d", len(buf), w.k-1)
			return
		}
	} else if len(buf) != 0 {
		d.Fail("packed window carries a %d-byte buffer", len(buf))
		return
	}
	w.reg = reg
	w.regHi = regHi
	w.filled = int(filled)
	w.buf = append(w.buf[:0], buf...)
}

// streamSlotWire is the fixed-size portion of one encoded reservoir slot.
const streamSlotWire = 8 + 8 + 4 + 8 + 8

func (s *StreamEstimator) exportState(enc *persist.Encoder) {
	enc.I64(int64(s.n))
	enc.U64(s.rng.state)
	exportWin(enc, &s.win)
	enc.U32(uint32(len(s.slots)))
	for i := range s.slots {
		sl := &s.slots[i]
		enc.U64(sl.key)
		enc.U64(sl.hi)
		enc.Blob([]byte(sl.elem))
		enc.I64(int64(sl.count))
		enc.I64(int64(sl.next))
	}
}

func (s *StreamEstimator) importState(d *persist.Decoder) error {
	n := d.I64()
	if d.Err() == nil && n < 0 {
		d.Fail("negative element count %d", n)
	}
	rngState := d.U64()
	win := newKgramWin(s.k)
	importWin(d, &win)
	if cnt := d.U32(); d.Err() == nil && int(cnt) != len(s.slots) {
		d.Fail("sketch state has %d slots, estimator has %d", cnt, len(s.slots))
	}
	slots := make([]streamSlot, len(s.slots))
	for i := range slots {
		sl := &slots[i]
		sl.key = d.U64()
		sl.hi = d.U64()
		elem := d.Blob()
		sl.count = int(d.I64())
		sl.next = int(d.I64())
		if d.Err() != nil {
			break
		}
		if sl.count < 0 || sl.next < 1 {
			d.Fail("slot %d has count %d, next %d", i, sl.count, sl.next)
			break
		}
		if s.win.mode == winString {
			if sl.count > 0 && len(elem) != s.k {
				d.Fail("slot %d element is %d bytes, want %d", i, len(elem), s.k)
				break
			}
		} else if len(elem) != 0 {
			d.Fail("packed slot %d carries a %d-byte element", i, len(elem))
			break
		}
		sl.elem = string(elem)
	}
	if err := d.Err(); err != nil {
		return err
	}
	s.n = int(n)
	s.rng.state = rngState
	s.win = win
	copy(s.slots, slots)
	return nil
}

func (c *CCSketch) exportState(enc *persist.Encoder) {
	enc.I64(int64(c.n))
	exportWin(enc, &c.win)
	enc.U32(uint32(len(c.counts)))
	for _, cnt := range c.counts {
		enc.U32(cnt)
	}
}

func (c *CCSketch) importState(d *persist.Decoder) error {
	n := d.I64()
	if d.Err() == nil && n < 0 {
		d.Fail("negative element count %d", n)
	}
	win := newKgramWin(c.k)
	importWin(d, &win)
	if cnt := d.U32(); d.Err() == nil && int(cnt) != len(c.counts) {
		d.Fail("sketch state has %d counters, sketch has %d", cnt, len(c.counts))
	}
	counts := make([]uint32, len(c.counts))
	for i := range counts {
		counts[i] = d.U32()
	}
	if err := d.Err(); err != nil {
		return err
	}
	c.n = int(n)
	c.win = win
	copy(c.counts, counts)
	return nil
}

// Package entest implements the (δ,ε)-approximation algorithm Iustitia uses
// to estimate entropy vectors with sublinear counter space (paper §4.4),
// following the data-streaming entropy estimator of Lall et al.
// (SIGMETRICS 2006), which is itself built on the Alon-Matias-Szegedy
// frequency-moment estimation technique.
//
// The estimator approximates S_k = Σ_i m_ik·log2(m_ik) — the only
// data-dependent term of the paper's Formula 1 — and then normalizes the
// estimate into h_k exactly as the exact calculator does. The guarantee is
// Pr(|S - Ŝ| <= ε·S) >= 1-δ, achieved with g groups of z sampled counters:
//
//	z_k = ⌈32·log_{|f_k|}(b) / ε²⌉    g = ⌈2·log2(1/δ)⌉
//
// The algorithm assumes |f_k| >> b, which fails for k=1 (|f_1| = 256), so —
// as in the paper — h_1 is always computed exactly and only widths k >= 2
// use estimation.
package entest

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"iustitia/internal/entropy"
	"iustitia/internal/stats"
)

// Estimator estimates entropy vectors with the (δ,ε)-approximation
// algorithm. An Estimator derives a deterministic random stream per
// (call, width) pair for its sampled buffer locations — so the same width
// samples the same locations no matter what other widths were estimated
// before it — and is not safe for concurrent use; create one per
// goroutine (they are cheap).
type Estimator struct {
	epsilon float64
	delta   float64
	seed    int64
	// calls counts EstimateS invocations per width: the i-th call for
	// width k always draws from the stream derived from (seed, k, i),
	// independent of interleaved calls for other widths. Repeated calls
	// for one width still get fresh independent samples.
	calls map[int]uint64
}

// New returns an Estimator with relative error at most epsilon with
// probability at least 1-delta. Both parameters must lie in (0, 1). The
// seed fixes the sampled locations, making runs reproducible.
func New(epsilon, delta float64, seed int64) (*Estimator, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("entest: epsilon %v outside (0, 1)", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("entest: delta %v outside (0, 1)", delta)
	}
	return &Estimator{
		epsilon: epsilon,
		delta:   delta,
		seed:    seed,
		calls:   make(map[int]uint64),
	}, nil
}

// Epsilon returns the configured relative-error bound.
func (e *Estimator) Epsilon() float64 { return e.epsilon }

// Delta returns the configured failure probability.
func (e *Estimator) Delta() float64 { return e.delta }

// Groups returns g = ⌈2·log2(1/δ)⌉, the number of estimator groups whose
// averages are combined by a median. It is always at least 1.
func (e *Estimator) Groups() int {
	g := int(math.Ceil(2 * math.Log2(1/e.delta)))
	if g < 1 {
		g = 1
	}
	return g
}

// CountersPerGroup returns z_k = ⌈32·log_{|f_k|}(b)/ε²⌉ for element width k
// and buffer size b: the number of sampled counters in each group. It is
// always at least 1.
func (e *Estimator) CountersPerGroup(k, b int) int {
	if k < 1 || b < 2 {
		return 1
	}
	logFk := math.Log2(float64(b)) / entropy.ElementSetBits(k)
	z := int(math.Ceil(32 * logFk / (e.epsilon * e.epsilon)))
	if z < 1 {
		z = 1
	}
	return z
}

// Counters returns the total number of counters g·Σ z_k the estimator uses
// for the given feature widths and buffer size. Widths of 1 are skipped
// because h_1 is computed exactly.
func (e *Estimator) Counters(widths []int, b int) int {
	var total int
	g := e.Groups()
	for _, k := range widths {
		if k == 1 {
			continue
		}
		total += g * e.CountersPerGroup(k, b)
	}
	return total
}

// EstimateS estimates S_k = Σ m_ik·log2(m_ik) over the k-gram stream of
// data using g·z sampled locations. len(data) must be at least k. The
// sampled locations come from a stream derived per (call, width), so
// Vector([2,3]) and Vector([3,2]) agree width for width, and repeated
// calls for one width draw fresh independent samples.
func (e *Estimator) EstimateS(data []byte, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("entest: element width %d is not positive", k)
	}
	if len(data) < k {
		return 0, entropy.ErrShortSequence
	}
	call := e.calls[k]
	e.calls[k] = call + 1
	rng := rand.New(rand.NewSource(deriveSeed(e.seed, k, call)))
	n := len(data) - k + 1 // number of k-gram elements in the stream
	g := e.Groups()
	z := e.CountersPerGroup(k, len(data))

	averages := make([]float64, g)
	for gi := 0; gi < g; gi++ {
		var sum float64
		for zi := 0; zi < z; zi++ {
			// Pick a random location, take the element there, and count
			// its occurrences from that location to the end of the
			// stream (AMS downstream counting).
			loc := rng.Intn(n)
			elem := data[loc : loc+k]
			c := 0
			for i := loc; i < n; i++ {
				if bytes.Equal(data[i:i+k], elem) {
					c++
				}
			}
			sum += unbiasedS(n, c)
		}
		averages[gi] = sum / float64(z)
	}
	return stats.Median(averages), nil
}

// unbiasedS is the AMS-style unbiased estimator of S from a single sampled
// downstream count c over a stream of n elements:
//
//	X = n · (c·log2(c) − (c−1)·log2(c−1))
func unbiasedS(n, c int) float64 {
	if c <= 1 {
		// c==1: 1·log(1) − 0·log(0) = 0 (the paper's 0·log 0 = 0 rule).
		return 0
	}
	return float64(n) * (float64(c)*math.Log2(float64(c)) - float64(c-1)*math.Log2(float64(c-1)))
}

// EstimateH estimates the normalized entropy h_k of data. For k == 1 the
// estimation premise |f_k| >> b does not hold, so the exact value is
// returned instead, mirroring the paper's design.
func (e *Estimator) EstimateH(data []byte, k int) (float64, error) {
	if k == 1 {
		return entropy.H(data, 1)
	}
	s, err := e.EstimateS(data, k)
	if err != nil {
		return 0, err
	}
	return entropy.NormalizeS(s, len(data)-k+1, k), nil
}

// Vector estimates the entropy vector of data at the given feature widths
// (exact for width 1, estimated otherwise), in order.
func (e *Estimator) Vector(data []byte, widths []int) ([]float64, error) {
	vec := make([]float64, len(widths))
	for i, k := range widths {
		h, err := e.EstimateH(data, k)
		if err != nil {
			return nil, err
		}
		vec[i] = h
	}
	return vec, nil
}

// FeatureSetCoefficient returns K_φ = 8·Σ_{k∈widths, k≠1} 1/k, the
// coefficient in the paper's Formula 4 lower bound. For the paper's
// feature sets, K_φSVM ≈ 8.26 (widths {1,2,3,9}) and K_φCART ≈ 6.26
// (widths {1,3,4,10}).
func FeatureSetCoefficient(widths []int) float64 {
	var sum float64
	for _, k := range widths {
		if k != 1 {
			sum += 1 / float64(k)
		}
	}
	return 8 * sum
}

// MinEpsilon returns the Formula 4 lower bound on ε below which the
// estimator would need more counters than exact calculation (alpha
// counters):
//
//	ε > sqrt(K_φ · log2(b)/α · log2(1/δ))
func MinEpsilon(widths []int, b, alpha int, delta float64) (float64, error) {
	if alpha <= 0 {
		return 0, fmt.Errorf("entest: alpha %d is not positive", alpha)
	}
	if b < 2 {
		return 0, fmt.Errorf("entest: buffer size %d too small", b)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("entest: delta %v outside (0, 1)", delta)
	}
	k := FeatureSetCoefficient(widths)
	return math.Sqrt(k * math.Log2(float64(b)) / float64(alpha) * math.Log2(1/delta)), nil
}

package entest

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"iustitia/internal/corpus"
	"iustitia/internal/entropy"
)

// exactS computes S_k = Σ m_ik·log2(m_ik) exactly with a hash map, the
// ground truth the sketches approximate.
func exactS(data []byte, k int) float64 {
	counts := make(map[string]int)
	for i := 0; i+k <= len(data); i++ {
		counts[string(data[i:i+k])]++
	}
	var s float64
	for _, c := range counts {
		if c > 1 {
			s += float64(c) * math.Log2(float64(c))
		}
	}
	return s
}

func TestSketchKindParse(t *testing.T) {
	for _, kind := range []SketchKind{SketchLall, SketchCC} {
		got, err := ParseSketchKind(kind.String())
		if err != nil || got != kind {
			t.Fatalf("ParseSketchKind(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if _, err := ParseSketchKind("bogus"); err == nil {
		t.Fatal("ParseSketchKind accepted an unknown kind")
	}
}

func TestNewSketchKinds(t *testing.T) {
	s, err := NewSketch(SketchLall, 0.3, 0.3, 3, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*StreamEstimator); !ok {
		t.Fatalf("SketchLall built %T", s)
	}
	c, err := NewSketch(SketchCC, 0.3, 0.3, 3, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*CCSketch); !ok {
		t.Fatalf("SketchCC built %T", c)
	}
	if s.Counters() != c.Counters() {
		t.Fatalf("backends not counter-comparable: lall %d, cc %d", s.Counters(), c.Counters())
	}
	if _, err := NewSketch(SketchKind(99), 0.3, 0.3, 3, 256, 1); err == nil {
		t.Fatal("NewSketch accepted an unknown kind")
	}
}

// The CC sketch is deterministic: byte-at-a-time writes must land in the
// same buckets as one whole write, across all three window modes.
func TestCCChunkedMatchesWhole(t *testing.T) {
	data := make([]byte, 600)
	rand.New(rand.NewSource(7)).Read(data)
	for _, k := range []int{2, 8, 9, 16, 17, 20} {
		whole, err := NewCC(0.3, 0.3, k, len(data), 11)
		if err != nil {
			t.Fatal(err)
		}
		whole.Write(data)
		chunked, err := NewCC(0.3, 0.3, k, len(data), 11)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			chunked.Write([]byte{b})
		}
		if whole.EstimateS() != chunked.EstimateS() || whole.Elements() != chunked.Elements() {
			t.Fatalf("k=%d: whole S=%v n=%d, chunked S=%v n=%d",
				k, whole.EstimateS(), whole.Elements(), chunked.EstimateS(), chunked.Elements())
		}
	}
}

// A constant stream has one distinct element, so no row can suffer a
// collision: every row holds exactly n in one bucket and the min-row
// estimate is n·log2(n), the exact S.
func TestCCConstantStream(t *testing.T) {
	data := bytes.Repeat([]byte{'x'}, 300)
	c, err := NewCC(0.3, 0.3, 3, len(data), 5)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(data)
	n := float64(len(data) - 2)
	want := n * math.Log2(n)
	if got := c.EstimateS(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("constant stream: S = %v, want %v", got, want)
	}
	if h := c.EstimateH(); h > 1e-9 {
		t.Fatalf("constant stream: h = %v, want ~0", h)
	}
}

// Collisions can only merge counts, and (a+b)·log(a+b) >= a·log a + b·log b,
// so every CC estimate is bounded below by the exact S.
func TestCCNeverUnderestimates(t *testing.T) {
	gen := corpus.NewGenerator(3)
	for _, class := range []corpus.Class{corpus.Text, corpus.Binary, corpus.Encrypted} {
		f, err := gen.File(class, 1024)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 3, 9} {
			c, err := NewCC(0.25, 0.25, k, len(f.Data), 17)
			if err != nil {
				t.Fatal(err)
			}
			c.Write(f.Data)
			if got, want := c.EstimateS(), exactS(f.Data, k); got < want-1e-9 {
				t.Fatalf("%s k=%d: CC estimate %v below exact %v", class, k, got, want)
			}
		}
	}
}

// Satellite: the paper's guarantee is Pr(|Ŝ − S| <= ε·S) >= 1−δ. Run the
// Lall stream sketch differentially against the exact S over fragments of
// every corpus class and check the bound empirically (with slack for the
// finite trial count; the seeds are fixed, so this is deterministic).
func TestStreamDeltaEpsilonBoundPerClass(t *testing.T) {
	const (
		epsilon = 0.3
		delta   = 0.25
		frag    = 1024
		trials  = 25
		k       = 3
	)
	for _, class := range []corpus.Class{corpus.Text, corpus.Binary, corpus.Encrypted} {
		gen := corpus.NewGenerator(100 + int64(class))
		within := 0
		for trial := 0; trial < trials; trial++ {
			f, err := gen.File(class, frag)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewStream(epsilon, delta, k, frag, int64(1000*int(class)+trial))
			if err != nil {
				t.Fatal(err)
			}
			s.Write(f.Data)
			exact := exactS(f.Data, k)
			if math.Abs(s.EstimateS()-exact) <= epsilon*exact+1e-9 {
				within++
			}
		}
		// The guarantee promises >= (1−δ)·trials = 18.75 successes in
		// expectation-bound terms; allow finite-sample slack down to 0.6.
		if frac := float64(within) / trials; frac < 0.6 {
			t.Fatalf("%s: only %d/%d trials within ε·S (bound wants %.1f)",
				class, within, trials, (1-delta)*trials)
		} else {
			t.Logf("%s: %d/%d trials within ε·S (bound wants %.1f)", class, within, trials, (1-delta)*trials)
		}
	}
}

// Mid-flow sketch state must round-trip through ExportState/ImportState:
// restore at an odd byte offset (partial rolling windows, pending reservoir
// skips) and the resumed vector must match an uninterrupted one bit for bit.
func TestStreamVectorCheckpointRoundTrip(t *testing.T) {
	gen := corpus.NewGenerator(8)
	f, err := gen.File(corpus.Binary, 1200)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SketchKind{SketchLall, SketchCC} {
		cfg := StreamConfig{
			Epsilon: 0.25, Delta: 0.25,
			Widths: []int{1, 3, 9, 17}, ExpectedLen: 1024, Seed: 42, Kind: kind,
		}
		uncut, err := NewStreamVectorConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		uncut.Write(f.Data)

		first, err := NewStreamVectorConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const cut = 517 // odd offset: every window mode mid-element
		first.Write(f.Data[:cut])
		blob := first.ExportState()

		resumed, err := NewStreamVectorConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.ImportState(blob); err != nil {
			t.Fatalf("%s: import: %v", kind, err)
		}
		resumed.Write(f.Data[cut:])

		wantVec, err := uncut.Vector()
		if err != nil {
			t.Fatal(err)
		}
		gotVec, err := resumed.Vector()
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantVec {
			if wantVec[i] != gotVec[i] {
				t.Fatalf("%s: restored vector[%d] = %v, uninterrupted %v", kind, i, gotVec[i], wantVec[i])
			}
		}
		if !bytes.Equal(uncut.ExportState(), resumed.ExportState()) {
			t.Fatalf("%s: restored state diverged from uninterrupted state", kind)
		}
	}
}

// Hostile checkpoint blobs must be rejected with an error, never a panic:
// every strict prefix truncation and a few semantic corruptions.
func TestStreamVectorImportRejectsCorrupt(t *testing.T) {
	cfg := StreamConfig{
		Epsilon: 0.3, Delta: 0.3,
		Widths: []int{1, 2, 9, 17}, ExpectedLen: 256, Seed: 9,
	}
	v, err := NewStreamVectorConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 137)
	rand.New(rand.NewSource(2)).Read(data)
	v.Write(data)
	blob := v.ExportState()

	for cut := 0; cut < len(blob); cut++ {
		fresh, err := NewStreamVectorConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.ImportState(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes imported cleanly", cut, len(blob))
		}
	}
	mutate := func(name string, f func(b []byte)) {
		b := append([]byte{}, blob...)
		f(b)
		fresh, err := NewStreamVectorConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.ImportState(b); err == nil {
			t.Fatalf("%s imported cleanly", name)
		}
	}
	mutate("wrong version", func(b []byte) { b[0] = 99 })
	mutate("wrong kind", func(b []byte) { b[1] = uint8(SketchCC) })
	freshTail, _ := NewStreamVectorConfig(cfg)
	if err := freshTail.ImportState(append(append([]byte{}, blob...), 0xFF)); err == nil {
		t.Fatal("trailing garbage imported cleanly")
	}
	// A vector built with different widths must refuse the blob.
	other, err := NewStreamVectorConfig(StreamConfig{
		Epsilon: 0.3, Delta: 0.3, Widths: []int{1, 3}, ExpectedLen: 256, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.ImportState(blob); err == nil {
		t.Fatal("widths mismatch imported cleanly")
	}
}

// Reset must be indistinguishable from a fresh vector: same estimates and
// same exported state, for both backends (the engine reuses vectors across
// flows only if this holds).
func TestStreamVectorResetReuse(t *testing.T) {
	gen := corpus.NewGenerator(12)
	a, err := gen.File(corpus.Text, 700)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.File(corpus.Encrypted, 700)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SketchKind{SketchLall, SketchCC} {
		cfg := StreamConfig{
			Epsilon: 0.25, Delta: 0.25,
			Widths: []int{1, 3, 9, 17}, ExpectedLen: 512, Seed: 33, Kind: kind,
		}
		reused, err := NewStreamVectorConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reused.Write(a.Data)
		reused.Reset()
		reused.Write(b.Data)

		fresh, err := NewStreamVectorConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh.Write(b.Data)

		rv, err1 := reused.Vector()
		fv, err2 := fresh.Vector()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: vector errors %v, %v", kind, err1, err2)
		}
		for i := range fv {
			if rv[i] != fv[i] {
				t.Fatalf("%s: reused vector[%d] = %v, fresh %v", kind, i, rv[i], fv[i])
			}
		}
		if !bytes.Equal(reused.ExportState(), fresh.ExportState()) {
			t.Fatalf("%s: reused state differs from fresh state", kind)
		}
	}
}

// Satellite: a width wider than the bytes seen must surface as not-ready —
// Vector returns ErrShortSequence instead of a fabricated h_k = 0.
func TestStreamVectorUnreadyWidth(t *testing.T) {
	for _, kind := range []SketchKind{SketchLall, SketchCC} {
		v, err := NewStreamVectorConfig(StreamConfig{
			Epsilon: 0.3, Delta: 0.3,
			Widths: []int{1, 5}, ExpectedLen: 64, Seed: 2, Kind: kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		v.Write([]byte("abcd")) // 4 bytes: h_1 has data, k=5 does not
		if v.Ready() {
			t.Fatalf("%s: Ready with only 4 bytes for a 5-wide feature", kind)
		}
		if _, err := v.Vector(); !errors.Is(err, entropy.ErrShortSequence) {
			t.Fatalf("%s: Vector on unready = %v, want ErrShortSequence", kind, err)
		}
		v.Write([]byte("e")) // fifth byte completes the first 5-gram
		if !v.Ready() {
			t.Fatalf("%s: not Ready after 5 bytes", kind)
		}
		if _, err := v.Vector(); err != nil {
			t.Fatalf("%s: Vector after readiness: %v", kind, err)
		}
	}
}

// The geometric skip draw must obey the reservoir law P(next > m) = n/m:
// check the empirical survival function at several horizons.
func TestNextAdoptionLaw(t *testing.T) {
	s, err := NewStream(0.5, 0.5, 2, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	const (
		n     = 10
		draws = 200000
	)
	exceed := map[int]int{11: 0, 15: 0, 20: 0, 40: 0, 100: 0}
	for i := 0; i < draws; i++ {
		next := s.nextAdoption(n)
		if next <= n {
			t.Fatalf("draw %d: next adoption %d not after current index %d", i, next, n)
		}
		for m := range exceed {
			if next > m {
				exceed[m]++
			}
		}
	}
	for m, cnt := range exceed {
		got := float64(cnt) / draws
		want := float64(n) / float64(m)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("P(next > %d) = %v, reservoir law wants %v", m, got, want)
		}
	}
}

// Satellite: estimation order must not matter — Vector([2,3]) and
// Vector([3,2]) from same-seed estimators agree width for width.
func TestEstimatorOrderIndependence(t *testing.T) {
	data := make([]byte, 300)
	rand.New(rand.NewSource(4)).Read(data)
	e1, err := New(0.3, 0.3, 77)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(0.3, 0.3, 77)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := e1.Vector(data, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e2.Vector(data, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v1[0] != v2[1] || v1[1] != v2[0] {
		t.Fatalf("width order leaked into estimates: [2,3]=%v, [3,2]=%v", v1, v2)
	}
}

// Repeated calls for one width draw fresh samples, but the whole call
// sequence is reproducible from the seed.
func TestEstimatorCallSequenceReproducible(t *testing.T) {
	data := make([]byte, 300)
	rand.New(rand.NewSource(6)).Read(data)
	run := func() []float64 {
		e, err := New(0.3, 0.3, 55)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 4; i++ {
			s, err := e.EstimateS(data, 2)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d not reproducible: %v vs %v", i, a[i], b[i])
		}
	}
}

// Satellite: fixed-seed goldens pin the sketches' sampling streams — any
// change to the prng, the skip-sampling draw, or the bucketing hash shows
// up here before it silently changes every checkpoint in the field.
func TestSketchFixedSeedGolden(t *testing.T) {
	data := make([]byte, 192)
	rand.New(rand.NewSource(41)).Read(data)
	for i := 96; i < len(data); i++ {
		data[i] = data[i%32]
	}
	golden := []struct {
		kind SketchKind
		k    int
		bits uint64
	}{
		{SketchLall, 2, 0x407021017b6e2a4d},
		{SketchLall, 7, 0x406cff5505ef0ae4},
		{SketchLall, 9, 0x4061d96ec92d6d6d},
		{SketchLall, 17, 0x405bc5060fda40f0},
		{SketchCC, 2, 0x4074a93d8d5afd3d},
		{SketchCC, 7, 0x407b630c178894c2},
		{SketchCC, 9, 0x407da051edb62270},
		{SketchCC, 17, 0x40820186140d79ba},
	}
	for _, g := range golden {
		s, err := NewSketch(g.kind, 0.3, 0.5, g.k, len(data), 99)
		if err != nil {
			t.Fatal(err)
		}
		s.Write(data)
		if got := math.Float64bits(s.EstimateS()); got != g.bits {
			t.Fatalf("%s k=%d: S bits %#x, golden %#x (S=%v, golden %v)",
				g.kind, g.k, got, g.bits, s.EstimateS(), math.Float64frombits(g.bits))
		}
	}
}

func benchSketchWrite(b *testing.B, kind SketchKind, k int) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	s, err := NewSketch(kind, 0.25, 0.25, k, len(data), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(data)
	}
}

func BenchmarkStreamEstimatorWrite(b *testing.B) {
	for _, k := range []int{3, 9} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) { benchSketchWrite(b, SketchLall, k) })
	}
}

func BenchmarkCCSketchWrite(b *testing.B) {
	for _, k := range []int{3, 9} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) { benchSketchWrite(b, SketchCC, k) })
	}
}

package entest

// prng is a tiny splitmix64 generator. The sketches use it instead of
// math/rand because its entire state is one word, so a mid-flow sketch —
// generator included — can round-trip through a checkpoint byte for byte
// and resume with exactly the reservoir decisions it would have made
// uninterrupted.
type prng struct{ state uint64 }

// newPRNG seeds a generator. Equal seeds produce equal sequences.
func newPRNG(seed int64) prng { return prng{state: uint64(seed)} }

// next returns the next 64 random bits (splitmix64).
func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	return mix64(p.state)
}

// float64 returns a uniform value in [0, 1) with 53 random bits.
func (p *prng) float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer: a cheap stateless bijective mixer,
// also used to derive hash-row seeds and per-width sampling streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// deriveSeed folds (seed, width, call) into an independent stream seed, so
// the buffered Estimator can give every (call, width) pair its own
// deterministic sampling sequence regardless of call order.
func deriveSeed(seed int64, k int, call uint64) int64 {
	p := prng{state: uint64(seed)}
	p.state += uint64(k) * 0xBF58476D1CE4E5B9
	p.state += call * 0x94D049BB133111EB
	return int64(p.next())
}

package entest

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"iustitia/internal/entropy"
)

var (
	_ io.Writer = (*StreamEstimator)(nil)
	_ io.Writer = (*StreamVector)(nil)
)

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream(0.25, 0.5, 1, 1024, 1); err == nil {
		t.Error("k=1: want error (estimation invalid at |f_1|=256)")
	}
	if _, err := NewStream(0.25, 0.5, 2, 1, 1); err == nil {
		t.Error("expectedLen < k: want error")
	}
	if _, err := NewStream(2, 0.5, 2, 1024, 1); err == nil {
		t.Error("epsilon out of range: want error")
	}
}

func TestStreamCountersMatchBuffered(t *testing.T) {
	base, err := New(0.25, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewStream(0.25, 0.5, 2, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Groups() * base.CountersPerGroup(2, 1024)
	if got := stream.Counters(); got != want {
		t.Errorf("stream counters = %d, want %d (g·z of buffered estimator)", got, want)
	}
}

func TestStreamConstantData(t *testing.T) {
	// All elements identical: every slot's downstream count telescopes,
	// the estimate must land near n·log2(n).
	s, err := NewStream(0.3, 0.5, 2, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 513)
	for i := range data {
		data[i] = 'x'
	}
	if _, err := s.Write(data); err != nil {
		t.Fatal(err)
	}
	if s.Elements() != 512 {
		t.Fatalf("Elements = %d, want 512", s.Elements())
	}
	want := 512 * math.Log2(512)
	if got := s.EstimateS(); math.Abs(got-want) > 0.5*want {
		t.Errorf("EstimateS(constant) = %v, want ~%v", got, want)
	}
	if h := s.EstimateH(); h > 0.1 {
		t.Errorf("EstimateH(constant) = %v, want ~0", h)
	}
}

func TestStreamMatchesOfflineOnSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(rng.Intn(8)) // low-entropy skewed stream
	}
	exact, err := entropy.H(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(0.25, 0.25, 2, len(data), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(data); err != nil {
		t.Fatal(err)
	}
	if got := s.EstimateH(); math.Abs(got-exact) > 0.25*exact+0.03 {
		t.Errorf("stream EstimateH = %v, exact = %v (outside ε bound)", got, exact)
	}
}

func TestStreamChunkedWritesEqualWholeWrite(t *testing.T) {
	// The same bytes split across packet-sized Writes must consume the
	// same elements (k-grams spanning chunk boundaries included).
	data := []byte("the quick brown fox jumps over the lazy dog, twice over")
	whole, err := NewStream(0.3, 0.5, 3, len(data), 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := whole.Write(data); err != nil {
		t.Fatal(err)
	}
	chunked, err := NewStream(0.3, 0.5, 3, len(data), 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i += 7 {
		end := i + 7
		if end > len(data) {
			end = len(data)
		}
		if _, err := chunked.Write(data[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if whole.Elements() != chunked.Elements() {
		t.Errorf("element counts differ: %d vs %d", whole.Elements(), chunked.Elements())
	}
	// Same seed, same element sequence -> identical reservoir decisions
	// and identical estimates.
	if whole.EstimateS() != chunked.EstimateS() {
		t.Errorf("estimates differ: %v vs %v", whole.EstimateS(), chunked.EstimateS())
	}
}

func TestStreamReset(t *testing.T) {
	s, err := NewStream(0.3, 0.5, 2, 256, 17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("some first flow content here")); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Elements() != 0 {
		t.Errorf("Elements after Reset = %d", s.Elements())
	}
	if got := s.EstimateS(); got != 0 {
		t.Errorf("EstimateS after Reset = %v, want 0", got)
	}
	// Reused estimator still works.
	if _, err := s.Write([]byte("aaaaaaaaaaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	if h := s.EstimateH(); h > 0.2 {
		t.Errorf("post-reset constant stream h = %v", h)
	}
}

func TestStreamEstimateBeforeData(t *testing.T) {
	s, err := NewStream(0.3, 0.5, 2, 256, 19)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EstimateS(); got != 0 {
		t.Errorf("EstimateS on empty stream = %v", got)
	}
	if got := s.EstimateH(); got != 0 {
		t.Errorf("EstimateH on empty stream = %v", got)
	}
}

func TestStreamVector(t *testing.T) {
	widths := []int{1, 2, 3}
	v, err := NewStreamVector(0.3, 0.5, widths, 1024, 23)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	data := make([]byte, 1024)
	rng.Read(data)
	for i := 0; i < len(data); i += 128 {
		if _, err := v.Write(data[i : i+128]); err != nil {
			t.Fatal(err)
		}
	}
	vec, err := v.Vector()
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != len(widths) {
		t.Fatalf("vector length = %d, want %d", len(vec), len(widths))
	}
	// h_1 is exact: must match the offline calculation bit for bit.
	exact, err := entropy.H(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vec[0] != exact {
		t.Errorf("streamed h_1 = %v, exact = %v", vec[0], exact)
	}
	for i, h := range vec {
		if h < 0 || h > 1 {
			t.Errorf("vec[%d] = %v outside [0,1]", i, h)
		}
	}
	if v.Counters() <= 256 {
		t.Errorf("Counters = %d, want > 256 (histogram plus slots)", v.Counters())
	}
}

func TestStreamVectorReset(t *testing.T) {
	v, err := NewStreamVector(0.3, 0.5, []int{1, 2}, 256, 31)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write([]byte("abcabcabc")); err != nil {
		t.Fatal(err)
	}
	v.Reset()
	if v.Ready() {
		t.Error("Ready after Reset = true, want false")
	}
	if _, err := v.Vector(); !errors.Is(err, entropy.ErrShortSequence) {
		t.Errorf("Vector after Reset: err = %v, want ErrShortSequence", err)
	}
	if _, err := v.Write([]byte("abcabcabc")); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Vector(); err != nil {
		t.Errorf("Vector after reuse: %v", err)
	}
}

func TestStreamVectorValidation(t *testing.T) {
	if _, err := NewStreamVector(0.3, 0.5, nil, 256, 1); err == nil {
		t.Error("no widths: want error")
	}
	if _, err := NewStreamVector(0.3, 0.5, []int{1, 2}, 1, 1); err == nil {
		t.Error("expectedLen too small: want error")
	}
}

// TestStreamPackedBoundary runs the chunked-equals-whole invariant at the
// packed-register boundary widths: k=8 (the widest single-word register),
// k=9 (the narrowest two-word register), k=16 (the widest), and k=17 (the
// string-window fallback).
func TestStreamPackedBoundary(t *testing.T) {
	data := make([]byte, 512)
	rand.New(rand.NewSource(21)).Read(data)
	for _, k := range []int{2, 8, 9, 12, 16, 17} {
		whole, err := NewStream(0.3, 0.5, k, len(data), 13)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if _, err := whole.Write(data); err != nil {
			t.Fatal(err)
		}
		chunked, err := NewStream(0.3, 0.5, k, len(data), 13)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(data); i += 11 {
			end := i + 11
			if end > len(data) {
				end = len(data)
			}
			if _, err := chunked.Write(data[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		if want := len(data) - k + 1; whole.Elements() != want {
			t.Errorf("k=%d: whole consumed %d elements, want %d", k, whole.Elements(), want)
		}
		if whole.Elements() != chunked.Elements() {
			t.Errorf("k=%d: element counts differ: %d vs %d", k, whole.Elements(), chunked.Elements())
		}
		if whole.EstimateS() != chunked.EstimateS() {
			t.Errorf("k=%d: estimates differ: %v vs %v", k, whole.EstimateS(), chunked.EstimateS())
		}
	}
}

// TestStreamPackedZeroElement guards the empty-slot vs zero-key
// distinction: a stream of zero bytes packs to key 0, which must not be
// confused with never-adopted slots.
func TestStreamPackedZeroElement(t *testing.T) {
	s, err := NewStream(0.3, 0.5, 4, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	zeros := make([]byte, 64)
	if _, err := s.Write(zeros); err != nil {
		t.Fatal(err)
	}
	// A constant stream has S = n*log2(n) exactly; the estimator is
	// unbiased and every sampled element is the same, so the estimate is
	// exact and h must be 0... S_hat = n*(c log c - (c-1) log (c-1))
	// averaged over downstream counts. Just require a sane h in [0, 1]
	// and n correct.
	if want := len(zeros) - 4 + 1; s.Elements() != want {
		t.Fatalf("Elements = %d, want %d", s.Elements(), want)
	}
	h := s.EstimateH()
	if h < 0 || h > 1 {
		t.Errorf("EstimateH(zeros) = %v outside [0,1]", h)
	}
	if h > 0.05 {
		t.Errorf("EstimateH(constant stream) = %v, want near 0", h)
	}
}

// TestStreamVectorWriteContract pins the io.Writer contract fix: Write
// always reports the full chunk consumed with a nil error, and byte
// accounting stays consistent across mixed widths (including a fallback
// width > 8).
func TestStreamVectorWriteContract(t *testing.T) {
	v, err := NewStreamVector(0.3, 0.5, []int{1, 3, 9}, 512, 11)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300)
	rand.New(rand.NewSource(2)).Read(data)
	for i := 0; i < len(data); i += 17 {
		end := i + 17
		if end > len(data) {
			end = len(data)
		}
		n, err := v.Write(data[i:end])
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		if n != end-i {
			t.Fatalf("Write returned %d, want %d", n, end-i)
		}
	}
	if v.n1 != len(data) {
		t.Errorf("h_1 byte accounting = %d, want %d", v.n1, len(data))
	}
	for _, est := range v.wide {
		if want := len(data) - est.Width() + 1; est.Elements() != want {
			t.Errorf("k=%d estimator consumed %d elements, want %d", est.Width(), est.Elements(), want)
		}
	}
}

// TestStreamWidePackedMatchesStringWindow proves the two-word register is
// a pure representation change: a wide-packed estimator and a forced
// string-window estimator with the same seed draw the same reservoir
// decisions and report identical estimates.
func TestStreamWidePackedMatchesStringWindow(t *testing.T) {
	data := make([]byte, 768)
	rand.New(rand.NewSource(33)).Read(data)
	// Low diversity in the tail so slots accumulate counts > 1.
	for i := 512; i < len(data); i++ {
		data[i] = data[i%64]
	}
	for k := 9; k <= 16; k++ {
		wide, err := NewStream(0.3, 0.5, k, len(data), 77)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if wide.win.mode != winWide {
			t.Fatalf("k=%d estimator not wide-packed", k)
		}
		str, err := NewStream(0.3, 0.5, k, len(data), 77)
		if err != nil {
			t.Fatal(err)
		}
		// Force the string-window fallback to serve as the oracle.
		str.win = kgramWin{k: k, mode: winString, buf: make([]byte, 0, k-1)}
		for i := 0; i < len(data); i += 13 {
			end := i + 13
			if end > len(data) {
				end = len(data)
			}
			wide.Write(data[i:end])
			str.Write(data[i:end])
		}
		if wide.Elements() != str.Elements() {
			t.Errorf("k=%d: element counts differ: %d vs %d", k, wide.Elements(), str.Elements())
		}
		if ws, ss := wide.EstimateS(), str.EstimateS(); ws != ss {
			t.Errorf("k=%d: wide-packed estimate %v != string-window %v", k, ws, ss)
		}
	}
}

// TestStreamWriteAllocFree asserts the packed hot paths — single-word and
// two-word registers, on both sketch backends — allocate nothing per Write
// call. This is the alloc-regression gate `make check` runs without -race.
func TestStreamWriteAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	chunk := make([]byte, 256)
	rand.New(rand.NewSource(4)).Read(chunk)
	for _, kind := range []SketchKind{SketchLall, SketchCC} {
		for _, k := range []int{5, 9, 12, 16} {
			s, err := NewSketch(kind, 0.3, 0.5, k, 4096, 3)
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := s.Write(chunk); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s k=%d: packed Write allocs/op = %v, want 0", kind, k, allocs)
			}
		}
	}
}

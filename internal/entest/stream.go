package entest

import (
	"fmt"
	"math"

	"iustitia/internal/entropy"
	"iustitia/internal/stats"
)

// winMode selects how a kgramWin represents the trailing k-1 bytes.
type winMode uint8

const (
	winPacked winMode = iota // k <= entropy.MaxPackedWidth: one-word register
	winWide                  // k <= entropy.MaxWidePackedWidth: two-word register
	winString                // wider: explicit byte window
)

// kgramWin is the rolling k-gram window shared by every sketch backend:
// it folds one byte at a time and reports when a full element has formed.
// For packed modes the element is the (regHi, reg) pair; for string mode
// it is buf, and the caller must slide() after consuming it.
type kgramWin struct {
	k      int
	mode   winMode
	reg    uint64
	regHi  uint64
	mask   uint64
	hiMask uint64
	filled int // bytes folded so far, capped at k-1
	buf    []byte
}

// newKgramWin builds a window for element width k (k >= 2).
func newKgramWin(k int) kgramWin {
	w := kgramWin{k: k}
	switch {
	case k <= entropy.MaxPackedWidth:
		w.mode = winPacked
		if k == 8 {
			w.mask = ^uint64(0)
		} else {
			w.mask = 1<<(8*k) - 1
		}
	case k <= entropy.MaxWidePackedWidth:
		w.mode = winWide
		if k == 16 {
			w.hiMask = ^uint64(0)
		} else {
			w.hiMask = 1<<(8*(k-8)) - 1
		}
	default:
		w.mode = winString
		w.buf = make([]byte, 0, k-1)
	}
	return w
}

// push folds one byte and reports whether a full element is now formed.
func (w *kgramWin) push(b byte) bool {
	switch w.mode {
	case winPacked:
		w.reg = (w.reg<<8 | uint64(b)) & w.mask
		if w.filled < w.k-1 {
			w.filled++
			return false
		}
		return true
	case winWide:
		// The byte leaving the low word becomes the youngest byte of the
		// high word; the low word needs no mask at full width.
		w.regHi = (w.regHi<<8 | w.reg>>56) & w.hiMask
		w.reg = w.reg<<8 | uint64(b)
		if w.filled < w.k-1 {
			w.filled++
			return false
		}
		return true
	default:
		w.buf = append(w.buf, b)
		return len(w.buf) == w.k
	}
}

// slide drops the oldest byte of a string-mode window after its element
// has been consumed.
func (w *kgramWin) slide() {
	copy(w.buf, w.buf[1:])
	w.buf = w.buf[:w.k-1]
}

// reset clears the window for a new stream.
func (w *kgramWin) reset() {
	w.reg = 0
	w.regHi = 0
	w.filled = 0
	w.buf = w.buf[:0]
}

// StreamEstimator is the one-pass form of the (δ,ε)-approximation: it
// consumes a byte stream incrementally — packet by packet, the way a
// router sees a flow — and can report an estimate of S_k (and h_k) at any
// point without ever buffering the stream.
//
// Each of its g·z slots independently samples a uniform stream position by
// reservoir sampling and counts occurrences of its sampled element from
// that position onward; n·(c·log c − (c−1)·log(c−1)) is then the standard
// AMS unbiased estimator, combined by mean-within-group and
// median-of-groups, exactly as in the buffered Estimator.
//
// Rather than drawing a random number per slot per element (g·z draws per
// byte), each slot draws its next adoption position geometrically: after
// adopting at position n, the slot next adopts at ⌊n/u⌋+1 with u uniform
// on (0,1], which satisfies the reservoir law P(next > m) = n/m exactly.
// The expected number of draws over a whole stream is g·z·ln(n) total,
// not g·z·n.
//
// A StreamEstimator is not safe for concurrent use.
type StreamEstimator struct {
	k     int
	g, z  int
	slots []streamSlot

	n int // elements seen so far

	win  kgramWin
	seed int64
	rng  prng
}

// streamSlot is one reservoir sample: the element adopted at the sampled
// position (a one- or two-word packed key or a string, per the window
// mode), the count of its occurrences since, and the element index at
// which the slot will next adopt.
type streamSlot struct {
	key   uint64
	hi    uint64
	elem  string
	count int
	next  int
}

// maxSkip caps a slot's next-adoption index so the ⌊n/u⌋ draw cannot
// overflow when u is vanishingly small.
const maxSkip = 1 << 62

// NewStream builds a one-pass estimator for element width k. The counter
// budget z is sized from expectedLen (the anticipated stream length, e.g.
// the flow buffer size b) using the same z = ⌈32·log_{|f_k|}(len)/ε²⌉
// formula as the buffered estimator; g = ⌈2·log2(1/δ)⌉.
func NewStream(epsilon, delta float64, k, expectedLen int, seed int64) (*StreamEstimator, error) {
	if k < 2 {
		return nil, fmt.Errorf("entest: stream estimation needs k >= 2 (|f_1| is too small), got %d", k)
	}
	if expectedLen < k {
		return nil, fmt.Errorf("entest: expected length %d shorter than element width %d", expectedLen, k)
	}
	base, err := New(epsilon, delta, seed)
	if err != nil {
		return nil, err
	}
	g := base.Groups()
	z := base.CountersPerGroup(k, expectedLen)
	s := &StreamEstimator{
		k:     k,
		g:     g,
		z:     z,
		slots: make([]streamSlot, g*z),
		win:   newKgramWin(k),
		seed:  seed,
		rng:   newPRNG(seed),
	}
	for i := range s.slots {
		s.slots[i].next = 1 // every slot adopts the first element
	}
	return s, nil
}

// Width returns the element width k.
func (s *StreamEstimator) Width() int { return s.k }

// Counters returns the number of sampled counters (g·z) the estimator
// maintains — its memory footprint in counter units.
func (s *StreamEstimator) Counters() int { return len(s.slots) }

// Elements returns how many k-gram elements have been consumed.
func (s *StreamEstimator) Elements() int { return s.n }

// Ready reports whether at least one full element has been consumed, i.e.
// whether EstimateS/EstimateH are meaningful yet. A k-wide estimator is
// unready until k bytes have streamed.
func (s *StreamEstimator) Ready() bool { return s.n > 0 }

// Write consumes the next chunk of the stream. It implements io.Writer and
// never fails.
func (s *StreamEstimator) Write(p []byte) (int, error) {
	if s.win.mode == winString {
		for _, b := range p {
			if !s.win.push(b) {
				continue
			}
			s.consumeKey(0, 0, string(s.win.buf))
			s.win.slide()
		}
		return len(p), nil
	}
	for _, b := range p {
		if !s.win.push(b) {
			continue
		}
		// regHi is always 0 in single-word mode, so one consume path
		// serves both packed representations.
		s.consumeKey(s.win.regHi, s.win.reg, "")
	}
	return len(p), nil
}

// consumeKey feeds one element to every reservoir slot. All window modes
// funnel through here: packed modes pass the register pair with an empty
// elem, string mode passes (0, 0, elem), so a single equality test works
// for every representation and all modes draw identical reservoir
// decisions for identical streams.
func (s *StreamEstimator) consumeKey(hi, lo uint64, elem string) {
	s.n++
	n := s.n
	for i := range s.slots {
		sl := &s.slots[i]
		if n >= sl.next {
			sl.key, sl.hi, sl.elem, sl.count = lo, hi, elem, 1
			sl.next = s.nextAdoption(n)
			continue
		}
		// count > 0 distinguishes an adopted zero key from an empty slot.
		if sl.count > 0 && sl.key == lo && sl.hi == hi && sl.elem == elem {
			sl.count++
		}
	}
}

// nextAdoption draws the element index at which a slot adopts again, given
// it just adopted at index n. The reservoir law requires P(next > m) = n/m
// for every m >= n; next = ⌊n/u⌋+1 with u uniform on (0,1] satisfies it by
// inverse-transform sampling: P(⌊n/u⌋+1 > m) = P(u <= n/m) = n/m.
func (s *StreamEstimator) nextAdoption(n int) int {
	u := 1 - s.rng.float64() // uniform on (0, 1]
	next := math.Floor(float64(n)/u) + 1
	if next > maxSkip {
		return maxSkip
	}
	return int(next)
}

// EstimateS returns the current estimate of S_k = Σ m_ik·log2(m_ik) over
// everything consumed so far. It returns 0 before any element arrives.
func (s *StreamEstimator) EstimateS() float64 {
	if s.n == 0 {
		return 0
	}
	averages := make([]float64, s.g)
	for gi := 0; gi < s.g; gi++ {
		var sum float64
		for zi := 0; zi < s.z; zi++ {
			sum += unbiasedS(s.n, s.slots[gi*s.z+zi].count)
		}
		averages[gi] = sum / float64(s.z)
	}
	return stats.Median(averages)
}

// EstimateH returns the current normalized-entropy estimate h_k.
func (s *StreamEstimator) EstimateH() float64 {
	return entropy.NormalizeS(s.EstimateS(), s.n, s.k)
}

// Reset clears all state — generator included — so the estimator can be
// reused for a new flow without reallocating its counters. A reset
// estimator produces bit-identical estimates to a freshly constructed one.
func (s *StreamEstimator) Reset() {
	for i := range s.slots {
		s.slots[i] = streamSlot{next: 1}
	}
	s.n = 0
	s.win.reset()
	s.rng = newPRNG(s.seed)
}

// StreamVector tracks a full entropy vector online: an exact byte
// histogram for h_1 (estimation is invalid at |f_1| = 256) plus one Sketch
// per wider feature. It is the classification-module front end a router
// runs per flow when even the b-byte buffer is too much state.
type StreamVector struct {
	kind    SketchKind
	widths  []int
	h1      [256]int
	n1      int // total bytes consumed
	wide    []Sketch
	wideIdx []int // positions of estimated widths within widths
}

// NewStreamVector builds an online entropy-vector tracker for the given
// feature widths (width 1 is tracked exactly) using the default Lall
// reservoir backend. Use NewStreamVectorConfig to select a backend.
func NewStreamVector(epsilon, delta float64, widths []int, expectedLen int, seed int64) (*StreamVector, error) {
	return NewStreamVectorConfig(StreamConfig{
		Epsilon:     epsilon,
		Delta:       delta,
		Widths:      widths,
		ExpectedLen: expectedLen,
		Seed:        seed,
	})
}

// NewStreamVectorConfig builds an online entropy-vector tracker from a
// full configuration, including the sketch backend.
func NewStreamVectorConfig(cfg StreamConfig) (*StreamVector, error) {
	if len(cfg.Widths) == 0 {
		return nil, fmt.Errorf("entest: no feature widths")
	}
	v := &StreamVector{kind: cfg.Kind, widths: append([]int{}, cfg.Widths...)}
	for i, k := range cfg.Widths {
		if k == 1 {
			continue
		}
		est, err := NewSketch(cfg.Kind, cfg.Epsilon, cfg.Delta, k, cfg.ExpectedLen, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		v.wide = append(v.wide, est)
		v.wideIdx = append(v.wideIdx, i)
	}
	return v, nil
}

// Kind returns the sketch backend the vector's wide widths use.
func (v *StreamVector) Kind() SketchKind { return v.kind }

// Widths returns a copy of the construction widths.
func (v *StreamVector) Widths() []int { return append([]int{}, v.widths...) }

// Bytes returns how many payload bytes have been consumed.
func (v *StreamVector) Bytes() int { return v.n1 }

// Write consumes the next chunk of the flow. It implements io.Writer and
// never fails: Sketch writes cannot return an error, so every sketch and
// the h_1 histogram always advance together over all of p (the io.Writer
// contract — n == len(p) with a nil error).
func (v *StreamVector) Write(p []byte) (int, error) {
	for _, b := range p {
		v.h1[b]++
	}
	v.n1 += len(p)
	for _, est := range v.wide {
		est.Write(p)
	}
	return len(p), nil
}

// Ready reports whether every width has consumed at least one element —
// i.e. whether Vector can produce a meaningful estimate. A k-wide feature
// is unready until k bytes have streamed.
func (v *StreamVector) Ready() bool {
	if v.n1 == 0 {
		return false
	}
	for _, est := range v.wide {
		if !est.Ready() {
			return false
		}
	}
	return true
}

// Vector returns the current entropy-vector estimate, ordered like the
// construction widths. If any width has not yet consumed a full element it
// returns entropy.ErrShortSequence, matching the exact path's behaviour on
// short payloads — a silent all-zero h_k for an unready width would feed
// fabricated features to a classifier.
func (v *StreamVector) Vector() ([]float64, error) {
	if !v.Ready() {
		return nil, entropy.ErrShortSequence
	}
	out := make([]float64, len(v.widths))
	for i, k := range v.widths {
		if k == 1 {
			out[i] = v.exactH1()
		}
	}
	for j, est := range v.wide {
		out[v.wideIdx[j]] = est.EstimateH()
	}
	return out, nil
}

// exactH1 computes h_1 from the running byte histogram.
func (v *StreamVector) exactH1() float64 {
	if v.n1 == 0 {
		return 0
	}
	var sum float64
	for _, c := range v.h1 {
		if c > 1 {
			sum += float64(c) * math.Log2(float64(c))
		}
	}
	return entropy.NormalizeS(sum, v.n1, 1)
}

// Counters returns the total counter footprint (estimation slots plus the
// 256-entry exact byte histogram when h_1 is tracked).
func (v *StreamVector) Counters() int {
	total := 0
	for _, k := range v.widths {
		if k == 1 {
			total += 256
		}
	}
	for _, est := range v.wide {
		total += est.Counters()
	}
	return total
}

// Reset clears all state for reuse on a new flow. Like the sketches' own
// Reset, a reset vector is bit-identical to a freshly constructed one.
func (v *StreamVector) Reset() {
	v.h1 = [256]int{}
	v.n1 = 0
	for _, est := range v.wide {
		est.Reset()
	}
}

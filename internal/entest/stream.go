package entest

import (
	"fmt"
	"math"
	"math/rand"

	"iustitia/internal/entropy"
	"iustitia/internal/stats"
)

// StreamEstimator is the one-pass form of the (δ,ε)-approximation: it
// consumes a byte stream incrementally — packet by packet, the way a
// router sees a flow — and can report an estimate of S_k (and h_k) at any
// point without ever buffering the stream.
//
// Each of its g·z slots independently samples a uniform stream position by
// reservoir sampling (when the m-th element arrives, a slot adopts it with
// probability 1/m) and counts occurrences of its sampled element from that
// position onward; b·(c·log c − (c−1)·log(c−1)) is then the standard AMS
// unbiased estimator, combined by mean-within-group and median-of-groups,
// exactly as in the buffered Estimator.
//
// A StreamEstimator is not safe for concurrent use.
type StreamEstimator struct {
	k     int
	g, z  int
	slots []streamSlot

	n int // elements seen so far

	// Packed-window state for k <= entropy.MaxPackedWidth: the trailing
	// bytes live in a rolling shift-and-mask register, so forming the next
	// element is two ALU ops and zero allocations per byte. Widths up to
	// entropy.MaxWidePackedWidth keep the trailing bytes in a two-word
	// register instead (regHi holds the oldest k-8 bytes): still
	// allocation-free, a couple more ALU ops per byte.
	packed     bool
	widePacked bool
	reg        uint64
	regHi      uint64
	mask       uint64
	hiMask     uint64
	filled     int // bytes folded into the register so far, capped at k-1

	// String-window fallback for wider elements.
	window []byte // trailing k-1 bytes, to form k-grams across Write calls

	rng *rand.Rand
}

// streamSlot is one reservoir sample: the element adopted at the sampled
// position (a one- or two-word packed key or a string, per the estimator's
// mode) and the count of its occurrences since.
type streamSlot struct {
	key   uint64
	hi    uint64
	elem  string
	count int
}

// NewStream builds a one-pass estimator for element width k. The counter
// budget z is sized from expectedLen (the anticipated stream length, e.g.
// the flow buffer size b) using the same z = ⌈32·log_{|f_k|}(len)/ε²⌉
// formula as the buffered estimator; g = ⌈2·log2(1/δ)⌉.
func NewStream(epsilon, delta float64, k, expectedLen int, seed int64) (*StreamEstimator, error) {
	if k < 2 {
		return nil, fmt.Errorf("entest: stream estimation needs k >= 2 (|f_1| is too small), got %d", k)
	}
	if expectedLen < k {
		return nil, fmt.Errorf("entest: expected length %d shorter than element width %d", expectedLen, k)
	}
	base, err := New(epsilon, delta, seed)
	if err != nil {
		return nil, err
	}
	g := base.Groups()
	z := base.CountersPerGroup(k, expectedLen)
	s := &StreamEstimator{
		k:     k,
		g:     g,
		z:     z,
		slots: make([]streamSlot, g*z),
		rng:   rand.New(rand.NewSource(seed)),
	}
	switch {
	case k <= entropy.MaxPackedWidth:
		s.packed = true
		if k == 8 {
			s.mask = ^uint64(0)
		} else {
			s.mask = 1<<(8*k) - 1
		}
	case k <= entropy.MaxWidePackedWidth:
		s.widePacked = true
		if k == 16 {
			s.hiMask = ^uint64(0)
		} else {
			s.hiMask = 1<<(8*(k-8)) - 1
		}
	default:
		s.window = make([]byte, 0, k-1)
	}
	return s, nil
}

// Counters returns the number of sampled counters (g·z) the estimator
// maintains — its memory footprint in counter units.
func (s *StreamEstimator) Counters() int { return len(s.slots) }

// Elements returns how many k-gram elements have been consumed.
func (s *StreamEstimator) Elements() int { return s.n }

// Write consumes the next chunk of the stream. It implements io.Writer and
// never fails.
func (s *StreamEstimator) Write(p []byte) (int, error) {
	if s.packed {
		for _, b := range p {
			s.reg = (s.reg<<8 | uint64(b)) & s.mask
			if s.filled < s.k-1 {
				s.filled++
				continue
			}
			s.consumePacked(s.reg)
		}
		return len(p), nil
	}
	if s.widePacked {
		for _, b := range p {
			// The byte leaving the low word becomes the youngest byte of
			// the high word; the low word needs no mask at full width.
			s.regHi = (s.regHi<<8 | s.reg>>56) & s.hiMask
			s.reg = s.reg<<8 | uint64(b)
			if s.filled < s.k-1 {
				s.filled++
				continue
			}
			s.consumeWide(s.regHi, s.reg)
		}
		return len(p), nil
	}
	for _, b := range p {
		s.window = append(s.window, b)
		if len(s.window) < s.k {
			continue
		}
		s.consume(string(s.window))
		// Slide the window by one byte.
		copy(s.window, s.window[1:])
		s.window = s.window[:s.k-1]
	}
	return len(p), nil
}

// consumePacked feeds one packed element to every reservoir slot. It is
// the allocation-free twin of consume; the reservoir decisions draw from
// the same rng sequence, so packed and string modes produce identical
// estimates for identical streams.
func (s *StreamEstimator) consumePacked(key uint64) {
	s.n++
	for i := range s.slots {
		// Reservoir: adopt the current position with probability 1/n.
		if s.rng.Intn(s.n) == 0 {
			s.slots[i] = streamSlot{key: key, count: 1}
			continue
		}
		// count > 0 distinguishes an adopted zero key from an empty slot.
		if s.slots[i].count > 0 && s.slots[i].key == key {
			s.slots[i].count++
		}
	}
}

// consumeWide feeds one two-word packed element to every reservoir slot.
// It draws from the same rng sequence as the other consume variants, so
// all three modes produce identical estimates for identical streams.
func (s *StreamEstimator) consumeWide(hi, lo uint64) {
	s.n++
	for i := range s.slots {
		// Reservoir: adopt the current position with probability 1/n.
		if s.rng.Intn(s.n) == 0 {
			s.slots[i] = streamSlot{key: lo, hi: hi, count: 1}
			continue
		}
		sl := &s.slots[i]
		if sl.count > 0 && sl.key == lo && sl.hi == hi {
			sl.count++
		}
	}
}

// consume feeds one element to every reservoir slot (string-window mode,
// k > entropy.MaxWidePackedWidth).
func (s *StreamEstimator) consume(elem string) {
	s.n++
	for i := range s.slots {
		// Reservoir: adopt the current position with probability 1/n.
		if s.rng.Intn(s.n) == 0 {
			s.slots[i] = streamSlot{elem: elem, count: 1}
			continue
		}
		if s.slots[i].count > 0 && s.slots[i].elem == elem {
			s.slots[i].count++
		}
	}
}

// EstimateS returns the current estimate of S_k = Σ m_ik·log2(m_ik) over
// everything consumed so far. It returns 0 before any element arrives.
func (s *StreamEstimator) EstimateS() float64 {
	if s.n == 0 {
		return 0
	}
	averages := make([]float64, s.g)
	for gi := 0; gi < s.g; gi++ {
		var sum float64
		for zi := 0; zi < s.z; zi++ {
			sum += unbiasedS(s.n, s.slots[gi*s.z+zi].count)
		}
		averages[gi] = sum / float64(s.z)
	}
	return stats.Median(averages)
}

// EstimateH returns the current normalized-entropy estimate h_k.
func (s *StreamEstimator) EstimateH() float64 {
	return entropy.NormalizeS(s.EstimateS(), s.n, s.k)
}

// Reset clears all state so the estimator can be reused for a new flow
// without reallocating its counters.
func (s *StreamEstimator) Reset() {
	for i := range s.slots {
		s.slots[i] = streamSlot{}
	}
	s.n = 0
	s.reg = 0
	s.regHi = 0
	s.filled = 0
	s.window = s.window[:0]
}

// StreamVector tracks a full entropy vector online: an exact byte
// histogram for h_1 (estimation is invalid at |f_1| = 256) plus one
// StreamEstimator per wider feature. It is the classification-module front
// end a router would run per flow when even the b-byte buffer is too much
// state.
type StreamVector struct {
	widths  []int
	h1      [256]int
	n1      int
	wide    []*StreamEstimator
	wideIdx []int // positions of estimated widths within widths
}

// NewStreamVector builds an online entropy-vector tracker for the given
// feature widths (width 1 is tracked exactly).
func NewStreamVector(epsilon, delta float64, widths []int, expectedLen int, seed int64) (*StreamVector, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("entest: no feature widths")
	}
	v := &StreamVector{widths: append([]int{}, widths...)}
	for i, k := range widths {
		if k == 1 {
			continue
		}
		est, err := NewStream(epsilon, delta, k, expectedLen, seed+int64(i))
		if err != nil {
			return nil, err
		}
		v.wide = append(v.wide, est)
		v.wideIdx = append(v.wideIdx, i)
	}
	return v, nil
}

// Write consumes the next chunk of the flow. It implements io.Writer and
// never fails: StreamEstimator.Write cannot return an error, so every
// estimator and the h_1 histogram always advance together over all of p
// (the io.Writer contract — n == len(p) with a nil error).
func (v *StreamVector) Write(p []byte) (int, error) {
	for _, b := range p {
		v.h1[b]++
	}
	v.n1 += len(p)
	for _, est := range v.wide {
		est.Write(p)
	}
	return len(p), nil
}

// Vector returns the current entropy-vector estimate, ordered like the
// construction widths.
func (v *StreamVector) Vector() []float64 {
	out := make([]float64, len(v.widths))
	for i, k := range v.widths {
		if k == 1 {
			out[i] = v.exactH1()
		}
	}
	for j, est := range v.wide {
		out[v.wideIdx[j]] = est.EstimateH()
	}
	return out
}

// exactH1 computes h_1 from the running byte histogram.
func (v *StreamVector) exactH1() float64 {
	if v.n1 == 0 {
		return 0
	}
	var sum float64
	for _, c := range v.h1 {
		if c > 1 {
			sum += float64(c) * math.Log2(float64(c))
		}
	}
	return entropy.NormalizeS(sum, v.n1, 1)
}

// Counters returns the total counter footprint (estimation slots plus the
// 256-entry exact byte histogram when h_1 is tracked).
func (v *StreamVector) Counters() int {
	total := 0
	for _, k := range v.widths {
		if k == 1 {
			total += 256
		}
	}
	for _, est := range v.wide {
		total += est.Counters()
	}
	return total
}

// Reset clears all state for reuse on a new flow.
func (v *StreamVector) Reset() {
	v.h1 = [256]int{}
	v.n1 = 0
	for _, est := range v.wide {
		est.Reset()
	}
}
